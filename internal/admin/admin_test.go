package admin

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"nab/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsHealthzPprof(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewCounter("nab_admin_test_total", "t").Add(7)
	degraded := false
	s, err := Serve("127.0.0.1:0", Options{
		Registry: reg,
		Checks: []Check{
			{Name: "engine", Probe: func() error { return nil }},
			{Name: "wal", Probe: func() error {
				if degraded {
					return errors.New("sync lag 9")
				}
				return nil
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "nab_admin_test_total 7") {
		t.Fatalf("metrics: code=%d body=%q", code, body)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type %q", ct)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || body != "engine: ok\nwal: ok\n" {
		t.Fatalf("healthz: code=%d body=%q", code, body)
	}
	degraded = true
	code, body = get(t, base+"/healthz")
	if code != 503 || !strings.Contains(body, "wal: sync lag 9") {
		t.Fatalf("degraded healthz: code=%d body=%q", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof: code=%d", code)
	}
}

func TestNoChecksHealthz(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, fmt.Sprintf("http://%s/healthz", s.Addr()))
	if code != 200 || body != "ok\n" {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestAddCheck(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AddCheck(Check{Name: "late", Probe: func() error { return errors.New("nope") }})
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != 503 || !strings.Contains(body, "late: nope") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", Options{}); err == nil {
		t.Fatal("no error for bad addr")
	}
}
