// Package admin mounts the introspection endpoints every daemon exposes
// when started with an admin address (-admin / -admin-base):
//
//	/metrics       Prometheus text exposition of the default registry
//	/healthz       200 "ok" when all registered checks pass, 503 otherwise
//	/debug/pprof/  the standard net/http/pprof handlers
//	/debug/flight  the flight recorder's current ring as a binary dump
//	               (404 while no recorder is armed; feed to tools/nabtrace)
//
// plus any operator-triggered Actions a daemon registers (POST-only
// endpoints such as a durable daemon's /snapshot).
//
// The server is deliberately tiny: a private mux (so pprof is not mounted
// on http.DefaultServeMux), no TLS, no auth — bind it to loopback.
package admin

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"nab/internal/flight"
	"nab/internal/metrics"
)

// Check is one named health probe. Probe returns nil when healthy; the
// error message is reported verbatim on /healthz.
type Check struct {
	Name  string
	Probe func() error
}

// Action is one operator-triggered endpoint, mounted at its Path and
// accepting POST only. Run returns a one-line summary reported with the
// 200, or an error reported verbatim with a 500.
type Action struct {
	Path string
	Run  func() (string, error)
}

// Options configures Serve.
type Options struct {
	// Registry defaults to metrics.Default().
	Registry *metrics.Registry
	// Checks are evaluated on every /healthz request.
	Checks []Check
	// Actions are mounted at their paths alongside the standard set.
	Actions []Action
}

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	checks []Check
}

// Serve binds addr (e.g. "127.0.0.1:9090"; port 0 picks a free port) and
// serves the admin mux until Close.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	s := &Server{ln: ln, checks: append([]Check(nil), opts.Checks...)}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", s.healthz)
	for _, a := range opts.Actions {
		run := a.Run
		mux.HandleFunc(a.Path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			out, err := run()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, out)
		})
	}
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		buf := flight.Default().DumpBytes("manual", time.Now().UnixNano())
		if buf == nil {
			http.Error(w, "flight recorder not armed (start the daemon with -flight)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="flight.dump"`)
		w.Write(buf)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// AddCheck registers an additional health probe on a running server.
func (s *Server) AddCheck(c Check) {
	s.mu.Lock()
	s.checks = append(s.checks, c)
	s.mu.Unlock()
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	checks := append([]Check(nil), s.checks...)
	s.mu.Unlock()

	type result struct {
		name string
		err  error
	}
	results := make([]result, len(checks))
	healthy := true
	for i, c := range checks {
		results[i] = result{c.Name, c.Probe()}
		if results[i].err != nil {
			healthy = false
		}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].name < results[j].name })

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if len(results) == 0 {
		fmt.Fprintln(w, "ok")
		return
	}
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(w, "%s: %v\n", res.name, res.err)
		} else {
			fmt.Fprintf(w, "%s: ok\n", res.name)
		}
	}
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
