package capacity

import (
	"math/rand"
	"testing"

	"nab/internal/dispute"
	"nab/internal/graph"
	"nab/internal/topo"
)

func TestGammaFig1a(t *testing.T) {
	gamma, err := Gamma(topo.Fig1a(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 2 {
		t.Errorf("gamma = %d, want 2 (paper Section 2)", gamma)
	}
}

func TestUFig1bWorkedExample(t *testing.T) {
	// Paper: with nodes 2,3 in dispute, Omega_k = {1,2,4},{1,3,4} and
	// U_k = 2.
	g := topo.Fig1b()
	s := dispute.NewSet()
	if err := s.Add(2, 3); err != nil {
		t.Fatal(err)
	}
	omega := dispute.Omega(g, s, 3)
	u, err := U(omega)
	if err != nil {
		t.Fatal(err)
	}
	if u != 2 {
		t.Errorf("U_k = %d, want 2 (paper Section 3 example)", u)
	}
	rho, err := Rho(omega)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 1 {
		t.Errorf("rho_k = %d, want 1", rho)
	}
}

func TestUErrors(t *testing.T) {
	if _, err := U(nil); err == nil {
		t.Error("empty omega: expected error")
	}
	// Disconnected subgraph in omega.
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.AddNode(3)
	if _, err := U([]*graph.Directed{g}); err == nil {
		t.Error("disconnected subgraph: expected error")
	}
}

func TestRhoTooSmall(t *testing.T) {
	// A 3-node path has pairwise mincut 1 -> U=1 -> rho error.
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	omega := []*graph.Directed{g}
	if _, err := Rho(omega); err == nil {
		t.Error("U<2: expected error")
	}
}

func TestGammaStarFastFig1a(t *testing.T) {
	// Deleting any single non-source node from Fig1a leaves a triangle
	// (or K3 minus nothing) with unit capacities. After deleting node 3:
	// nodes {1,2,4}, edges 1<->2, 1<->4 only; mincut(1,2)=1 => gamma = 1.
	gs, err := GammaStarFast(topo.Fig1a(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gs != 1 {
		t.Errorf("gammaStarFast = %d, want 1", gs)
	}
}

func TestGammaStarExactAtMostFast(t *testing.T) {
	// Exact explores a superset of the fast family, so exact <= fast.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.RandomConnected(rng, 5, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := GammaStarFast(g, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := GammaStarExact(g, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if exact > fast {
			t.Errorf("seed %d: exact %d > fast %d", seed, exact, fast)
		}
	}
}

func TestGammaStarExactFindsPartialDisputes(t *testing.T) {
	// Construct a graph where a partial dispute (edge removal without node
	// confirmation) hurts gamma more than any node deletion: node deletion
	// removes the target from the "min over j", but an edge deletion keeps
	// the weakened target in place.
	//
	// Take Fig1a: deleting node 2's edges to 1 only (dispute {1,2}) leaves
	// node 2 reachable only via 3 with mincut 1; node deletion of 2 gives
	// min over {3,4} which is 2. The dispute {1,2} is explained by {1} or
	// {2}, so it is reachable with f=1.
	g := topo.Fig1a()
	exact, err := GammaStarExact(g, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 1 {
		t.Errorf("exact gammaStar = %d, want 1", exact)
	}
}

func TestGammaStarValidation(t *testing.T) {
	g := topo.Fig1a()
	if _, err := GammaStarFast(g, 99, 1); err == nil {
		t.Error("missing source: expected error")
	}
	if _, err := GammaStarExact(g, 99, 1, 0); err == nil {
		t.Error("missing source: expected error")
	}
	if _, err := GammaStarExact(g, 1, 1, 3); err == nil {
		t.Error("tiny budget: expected error")
	}
}

func TestRhoStarFig1a(t *testing.T) {
	// Omega_1 = all 3-node subsets. {1,2,4} has undirected edges 1-2:2,
	// 1-4:2 only -> pairwise mincut 2. So U1 = 2, rhoStar = 1.
	rhoStar, u1, err := RhoStar(topo.Fig1a(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if u1 != 2 || rhoStar != 1 {
		t.Errorf("U1 = %d rhoStar = %v, want 2 and 1", u1, rhoStar)
	}
}

func TestAnalyzeFig1a(t *testing.T) {
	r, err := Analyze(topo.Fig1a(), 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gamma1 != 2 || r.U1 != 2 || r.RhoStar != 1 || r.GammaStar != 1 {
		t.Errorf("report = %+v", r)
	}
	// CapacityUB = min(1, 2*1) = 1; TNAB = 1*1/2 = 0.5; ratio >= 1/2
	// because gammaStar <= rhoStar.
	if r.CapacityUB != 1 {
		t.Errorf("CapacityUB = %v, want 1", r.CapacityUB)
	}
	if r.TNABBound != 0.5 {
		t.Errorf("TNABBound = %v, want 0.5", r.TNABBound)
	}
	if r.Guarantee != 0.5 {
		t.Errorf("Guarantee = %v, want 0.5", r.Guarantee)
	}
	// Theorem 3: TNAB >= CapacityUB * Guarantee.
	if r.TNABBound < r.CapacityUB*r.Guarantee-1e-12 {
		t.Errorf("Theorem 3 violated: %v < %v * %v", r.TNABBound, r.CapacityUB, r.Guarantee)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	g := topo.Fig1a()
	if _, err := Analyze(g, 1, -1, false); err == nil {
		t.Error("negative f: expected error")
	}
	if _, err := Analyze(g, 1, 2, false); err == nil {
		t.Error("n < 3f+1: expected error")
	}
}

// TestTheorem3OnRandomNetworks sweeps random networks and checks the
// algebraic content of Theorem 3: TNAB >= min(gamma*, 2rho*)/3 always, and
// >= min(gamma*, 2rho*)/2 when gamma* <= rho*.
func TestTheorem3OnRandomNetworks(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(3)
		g, err := topo.RandomConnected(rng, n, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Analyze(g, 1, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		third := r.CapacityUB / 3
		if r.TNABBound < third-1e-9 {
			t.Errorf("seed %d: TNAB %v < UB/3 %v", seed, r.TNABBound, third)
		}
		if float64(r.GammaStar) <= r.RhoStar && r.TNABBound < r.CapacityUB/2-1e-9 {
			t.Errorf("seed %d: TNAB %v < UB/2 with gamma*<=rho*", seed, r.TNABBound)
		}
	}
}

func TestSubsetsUpTo(t *testing.T) {
	nodes := []graph.NodeID{1, 2, 3}
	subs := subsetsUpTo(nodes, 2)
	// {}, {1}, {2}, {3}, {1,2}, {1,3}, {2,3} = 7
	if len(subs) != 7 {
		t.Errorf("got %d subsets, want 7", len(subs))
	}
}

func BenchmarkAnalyzeFast7(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := topo.RandomConnected(rng, 7, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(g, 1, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGammaStarExact5(b *testing.B) {
	g := topo.Fig1a()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GammaStarExact(g, 1, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
