// Package capacity computes the quantities of the paper's throughput
// analysis (Section 5):
//
//	gamma_k  = min_j MINCUT(G_k, source, j)      Phase-1 broadcast rate
//	U_k      = min_{H in Omega_k} min pairwise mincut of undirected H
//	rho_k    = floor(U_k / 2)                    equality-check parameter
//	gamma*   = min over reachable instance graphs of gamma_k
//	rho*     = U_1 / 2
//	C_BB(G) <= min(gamma*, 2 rho*)               Theorem 2 upper bound
//	T_NAB    = gamma* rho* / (gamma* + rho*)     Theorem 3 lower bound
//
// The reachable-graph family Gamma (Appendix E) is exponential in general.
// Disputes in NAB are node pairs, each containing at least one member of
// the true faulty set F, so reachable instance graphs are exactly
// Apply(D, G) over dispute pair-sets D incident on some F with |F| <= f.
// GammaStarExact enumerates that family with a work budget;
// GammaStarFast evaluates the node-deletion subfamily {G - F} only
// (an optimistic estimate, exact on many graphs; the gap is measured in
// tests and documented in EXPERIMENTS.md).
package capacity

import (
	"fmt"
	"sort"
	"strings"

	"nab/internal/dispute"
	"nab/internal/graph"
)

// Gamma returns gamma_k for the instance graph.
func Gamma(gk *graph.Directed, source graph.NodeID) (int64, error) {
	return gk.BroadcastMincut(source)
}

// U returns U_k: the minimum over the Omega_k subgraphs of the pairwise
// mincut of their undirected versions.
func U(omega []*graph.Directed) (int64, error) {
	if len(omega) == 0 {
		return 0, fmt.Errorf("capacity: empty Omega family")
	}
	best := int64(1) << 62
	for i, h := range omega {
		u, err := h.Undirected().MinPairwiseMincut()
		if err != nil {
			return 0, fmt.Errorf("capacity: Omega subgraph %d: %w", i, err)
		}
		if u < best {
			best = u
		}
	}
	return best, nil
}

// Rho returns rho_k = floor(U_k/2), the paper's optimal equality-check
// parameter. An error is returned when U_k < 2, where the equality check
// cannot be parameterized.
func Rho(omega []*graph.Directed) (int, error) {
	u, err := U(omega)
	if err != nil {
		return 0, err
	}
	if u < 2 {
		return 0, fmt.Errorf("capacity: U = %d < 2; equality check needs rho >= 1 with rho <= U/2", u)
	}
	return int(u / 2), nil
}

// GammaStarFast returns min over {G - F : F subset of V \ {source},
// |F| <= f} of the broadcast mincut. This is the node-deletion subfamily of
// the reachable graphs; it upper-bounds the exact gamma*.
func GammaStarFast(g *graph.Directed, source graph.NodeID, f int) (int64, error) {
	if !g.HasNode(source) {
		return 0, fmt.Errorf("capacity: source %d not in graph", source)
	}
	best, err := g.BroadcastMincut(source)
	if err != nil {
		return 0, err
	}
	var candidates []graph.NodeID
	for _, v := range g.Nodes() {
		if v != source {
			candidates = append(candidates, v)
		}
	}
	subsets := subsetsUpTo(candidates, f)
	for _, fs := range subsets {
		if len(fs) == 0 {
			continue
		}
		keep := diffNodes(g.Nodes(), fs)
		sub := g.Induced(keep)
		if sub.NumNodes() < 2 {
			continue
		}
		gm, err := sub.BroadcastMincut(source)
		if err != nil {
			// Some node unreachable after deletions: that subgraph cannot
			// occur in a valid execution (connectivity >= 2f+1 prevents it)
			// unless the model preconditions fail; surface it.
			return 0, fmt.Errorf("capacity: G-%v: %w", fs, err)
		}
		if gm < best {
			best = gm
		}
	}
	return best, nil
}

// GammaStarExact enumerates the full reachable family: all dispute
// pair-sets D whose pairs are incident on a candidate faulty set F with
// |F| <= f, mapping each through dispute.Apply. maxWork bounds the number
// of graphs evaluated; exceeding it returns an error directing callers to
// GammaStarFast.
func GammaStarExact(g *graph.Directed, source graph.NodeID, f int, maxWork int) (int64, error) {
	if !g.HasNode(source) {
		return 0, fmt.Errorf("capacity: source %d not in graph", source)
	}
	if maxWork <= 0 {
		maxWork = 200000
	}
	best, err := g.BroadcastMincut(source)
	if err != nil {
		return 0, err
	}
	nodes := g.Nodes()
	seen := map[string]struct{}{}
	work := 0
	for _, fs := range subsetsUpTo(nodes, f) {
		if len(fs) == 0 {
			continue
		}
		// Pairs incident on fs (adjacent in g).
		var pairs [][2]graph.NodeID
		pairSeen := map[[2]graph.NodeID]struct{}{}
		for _, a := range fs {
			for _, b := range g.Neighbors(a) {
				key := [2]graph.NodeID{a, b}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if _, dup := pairSeen[key]; !dup {
					pairSeen[key] = struct{}{}
					pairs = append(pairs, key)
				}
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		if len(pairs) > 22 {
			return 0, fmt.Errorf("capacity: %d candidate dispute pairs for F=%v; exact enumeration infeasible, use GammaStarFast", len(pairs), fs)
		}
		for mask := 1; mask < 1<<len(pairs); mask++ {
			key := maskKey(fs, pairs, mask)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			work++
			if work > maxWork {
				return 0, fmt.Errorf("capacity: exact enumeration exceeded %d graphs, use GammaStarFast", maxWork)
			}
			ds := dispute.NewSet()
			for i, p := range pairs {
				if mask&(1<<i) != 0 {
					if err := ds.Add(p[0], p[1]); err != nil {
						return 0, err
					}
				}
			}
			gk, _, err := ds.Apply(g, f)
			if err != nil {
				// Not coverable by f nodes: unreachable dispute set; but
				// pairs are incident on fs with |fs| <= f, so fs itself
				// covers. This cannot happen.
				return 0, fmt.Errorf("capacity: apply: %w", err)
			}
			if !gk.HasNode(source) || gk.NumNodes() < 2 {
				continue // source confirmed faulty: BB trivially default
			}
			gm, err := gk.BroadcastMincut(source)
			if err != nil {
				// Disconnected instance graph: with connectivity >= 2f+1
				// and a valid dispute set this is impossible; skip rather
				// than understate gamma* with a zero from a non-reachable
				// graph.
				continue
			}
			if gm < best {
				best = gm
			}
		}
	}
	return best, nil
}

func maskKey(fs []graph.NodeID, pairs [][2]graph.NodeID, mask int) string {
	var sb strings.Builder
	for i, p := range pairs {
		if mask&(1<<i) != 0 {
			fmt.Fprintf(&sb, "%d-%d;", p[0], p[1])
		}
	}
	return sb.String()
}

// RhoStar returns rho* = U_1/2 as a real number (the paper's asymptotic
// parameter), along with U_1.
func RhoStar(g *graph.Directed, f int) (float64, int64, error) {
	omega := dispute.Omega(g, dispute.NewSet(), g.NumNodes()-f)
	u, err := U(omega)
	if err != nil {
		return 0, 0, err
	}
	return float64(u) / 2, u, nil
}

// Report is the full capacity analysis of a network.
type Report struct {
	N          int
	F          int
	Source     graph.NodeID
	Gamma1     int64   // gamma of G itself
	U1         int64   // U over Omega_1
	RhoStar    float64 // U1/2
	GammaStar  int64
	GammaExact bool    // whether GammaStar came from exact enumeration
	CapacityUB float64 // min(gammaStar, 2 rhoStar), Theorem 2
	TNABBound  float64 // gammaStar*rhoStar/(gammaStar+rhoStar), Theorem 3
	Guarantee  float64 // 1/2 when gammaStar <= rhoStar, else 1/3
}

// Analyze computes a Report. When exact is true the reachable-graph family
// is enumerated exactly (small networks only); otherwise the node-deletion
// family is used.
func Analyze(g *graph.Directed, source graph.NodeID, f int, exact bool) (*Report, error) {
	if f < 0 {
		return nil, fmt.Errorf("capacity: f = %d must be non-negative", f)
	}
	n := g.NumNodes()
	if n < 3*f+1 {
		return nil, fmt.Errorf("capacity: n = %d < 3f+1 = %d", n, 3*f+1)
	}
	gamma1, err := g.BroadcastMincut(source)
	if err != nil {
		return nil, err
	}
	rhoStar, u1, err := RhoStar(g, f)
	if err != nil {
		return nil, err
	}
	var gammaStar int64
	if exact {
		gammaStar, err = GammaStarExact(g, source, f, 0)
	} else {
		gammaStar, err = GammaStarFast(g, source, f)
	}
	if err != nil {
		return nil, err
	}
	r := &Report{
		N: n, F: f, Source: source,
		Gamma1: gamma1, U1: u1, RhoStar: rhoStar,
		GammaStar: gammaStar, GammaExact: exact,
	}
	gs := float64(gammaStar)
	r.CapacityUB = gs
	if 2*rhoStar < gs {
		r.CapacityUB = 2 * rhoStar
	}
	if gs+rhoStar > 0 {
		r.TNABBound = gs * rhoStar / (gs + rhoStar)
	}
	if gs <= rhoStar {
		r.Guarantee = 0.5
	} else {
		r.Guarantee = 1.0 / 3
	}
	return r, nil
}

// subsetsUpTo enumerates all subsets of nodes with size 0..k, sorted by
// size then lexicographically.
func subsetsUpTo(nodes []graph.NodeID, k int) [][]graph.NodeID {
	var out [][]graph.NodeID
	var rec func(start int, cur []graph.NodeID)
	rec = func(start int, cur []graph.NodeID) {
		out = append(out, append([]graph.NodeID(nil), cur...))
		if len(cur) == k {
			return
		}
		for i := start; i < len(nodes); i++ {
			rec(i+1, append(cur, nodes[i]))
		}
	}
	rec(0, nil)
	return out
}

func diffNodes(all, remove []graph.NodeID) []graph.NodeID {
	rm := map[graph.NodeID]struct{}{}
	for _, v := range remove {
		rm[v] = struct{}{}
	}
	var out []graph.NodeID
	for _, v := range all {
		if _, bad := rm[v]; !bad {
			out = append(out, v)
		}
	}
	return out
}
