package spantree

import (
	"fmt"
	"sort"

	"nab/internal/graph"
)

// UnitEdge is one capacity unit of a directed edge, viewed as an undirected
// multigraph edge. Slot distinguishes the units of the same directed edge
// (slot s carries the s-th coded symbol sent on that link in the equality
// check, which is how tree edges map to columns of the C_H matrix).
type UnitEdge struct {
	From graph.NodeID // tail of the backing directed edge
	To   graph.NodeID // head of the backing directed edge
	Slot int          // 0-based unit index within the directed edge
}

// A endpoints in undirected terms.
func (e UnitEdge) endpoints() (graph.NodeID, graph.NodeID) { return e.From, e.To }

// PackUndirectedTrees packs k edge-disjoint spanning trees in the
// undirected version of g, where each directed edge of capacity z
// contributes z undirected unit edges. Trees are edge-disjoint at unit
// granularity, so the same link pair may appear in several trees as long as
// total usage stays within the summed capacity, exactly as in the paper's
// M_H construction.
//
// It returns an error when k trees cannot be packed. By Nash-Williams/Tutte,
// packing always succeeds when k <= U/2 with U the minimum pairwise mincut
// of the undirected version.
func PackUndirectedTrees(g *graph.Directed, k int) ([][]UnitEdge, error) {
	if k <= 0 {
		return nil, fmt.Errorf("spantree: k = %d must be positive", k)
	}
	nodes := g.Nodes()
	n := len(nodes)
	if n < 2 {
		return nil, fmt.Errorf("spantree: need at least 2 nodes, have %d", n)
	}
	idx := make(map[graph.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}

	// Expand capacities into unit edges, deterministically ordered.
	var units []UnitEdge
	for _, e := range g.Edges() {
		for s := int64(0); s < e.Cap; s++ {
			units = append(units, UnitEdge{From: e.From, To: e.To, Slot: int(s)})
		}
	}

	mu := newMatroidUnion(n, k)
	for ui := range units {
		a, b := idx[units[ui].From], idx[units[ui].To]
		mu.insert(ui, a, b)
	}
	if got := mu.totalSize(); got < k*(n-1) {
		return nil, fmt.Errorf("spantree: only %d of %d tree edges packable (graph too sparse for %d trees)", got, k*(n-1), k)
	}
	out := make([][]UnitEdge, k)
	for fi := 0; fi < k; fi++ {
		ids := mu.forestEdges(fi)
		tree := make([]UnitEdge, 0, len(ids))
		for _, id := range ids {
			tree = append(tree, units[id])
		}
		sort.Slice(tree, func(i, j int) bool {
			if tree[i].From != tree[j].From {
				return tree[i].From < tree[j].From
			}
			if tree[i].To != tree[j].To {
				return tree[i].To < tree[j].To
			}
			return tree[i].Slot < tree[j].Slot
		})
		out[fi] = tree
	}
	return out, nil
}

// ValidateTreePacking checks that each returned tree is spanning and acyclic
// over g's nodes and that no capacity unit is used twice.
func ValidateTreePacking(g *graph.Directed, trees [][]UnitEdge) error {
	n := g.NumNodes()
	seen := map[UnitEdge]bool{}
	for ti, tree := range trees {
		if len(tree) != n-1 {
			return fmt.Errorf("spantree: tree %d has %d edges, want %d", ti, len(tree), n-1)
		}
		dsu := newDSU(n)
		idx := map[graph.NodeID]int{}
		for i, v := range g.Nodes() {
			idx[v] = i
		}
		for _, e := range tree {
			if seen[e] {
				return fmt.Errorf("spantree: unit edge %v reused across trees", e)
			}
			seen[e] = true
			if e.Slot < 0 || int64(e.Slot) >= g.Cap(e.From, e.To) {
				return fmt.Errorf("spantree: unit edge %v exceeds capacity %d", e, g.Cap(e.From, e.To))
			}
			if !dsu.union(idx[e.From], idx[e.To]) {
				return fmt.Errorf("spantree: tree %d has a cycle at %v", ti, e)
			}
		}
	}
	return nil
}

// matroidUnion maintains k edge-disjoint forests over n vertices and
// inserts edges with the classic augmenting exchange search: when an edge
// cannot go directly into any forest, breadth-first search over fundamental
// cycles finds an exchange chain freeing a slot.
type matroidUnion struct {
	n, k   int
	forest []map[int][2]int // forest -> edgeID -> endpoints
	owner  map[int]int      // edgeID -> forest index
	adj    []map[int][]int  // forest -> vertex -> incident edgeIDs
	endsOf map[int][2]int   // edgeID -> endpoints (all inserted edges)
}

func newMatroidUnion(n, k int) *matroidUnion {
	m := &matroidUnion{
		n: n, k: k,
		forest: make([]map[int][2]int, k),
		owner:  map[int]int{},
		adj:    make([]map[int][]int, k),
		endsOf: map[int][2]int{},
	}
	for i := 0; i < k; i++ {
		m.forest[i] = map[int][2]int{}
		m.adj[i] = map[int][]int{}
	}
	return m
}

func (m *matroidUnion) totalSize() int {
	total := 0
	for _, f := range m.forest {
		total += len(f)
	}
	return total
}

func (m *matroidUnion) forestEdges(fi int) []int {
	ids := make([]int, 0, len(m.forest[fi]))
	for id := range m.forest[fi] {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (m *matroidUnion) addToForest(fi, id int, a, b int) {
	m.forest[fi][id] = [2]int{a, b}
	m.owner[id] = fi
	m.adj[fi][a] = append(m.adj[fi][a], id)
	m.adj[fi][b] = append(m.adj[fi][b], id)
}

func (m *matroidUnion) removeFromForest(fi, id int) {
	ends := m.forest[fi][id]
	delete(m.forest[fi], id)
	delete(m.owner, id)
	for _, v := range ends[:] {
		list := m.adj[fi][v]
		for i, x := range list {
			if x == id {
				m.adj[fi][v] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// connected reports whether a and b are connected in forest fi and, if so,
// returns the edgeIDs of the path between them.
func (m *matroidUnion) pathInForest(fi, a, b int) ([]int, bool) {
	if a == b {
		return nil, true
	}
	prevEdge := map[int]int{a: -1}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range m.adj[fi][v] {
			ends := m.forest[fi][id]
			w := ends[0] + ends[1] - v
			if _, seen := prevEdge[w]; seen {
				continue
			}
			prevEdge[w] = id
			if w == b {
				var path []int
				cur := b
				for cur != a {
					eid := prevEdge[cur]
					path = append(path, eid)
					e := m.forest[fi][eid]
					cur = e[0] + e[1] - cur
				}
				return path, true
			}
			queue = append(queue, w)
		}
	}
	return nil, false
}

// insert tries to add edge id with endpoints (a, b) to the union of forests,
// performing augmenting exchanges as needed. Returns true if inserted.
func (m *matroidUnion) insert(id, a, b int) bool {
	m.endsOf[id] = [2]int{a, b}
	// Fast path: some forest keeps it acyclic.
	for fi := 0; fi < m.k; fi++ {
		if _, conn := m.pathInForest(fi, a, b); !conn {
			m.addToForest(fi, id, a, b)
			return true
		}
	}
	// Augmenting search: BFS over edges. label[x] = (pred edge, forest in
	// whose fundamental cycle x was found).
	labels := map[int]exchangeLabel{id: {pred: -1, forest: -1}}
	queue := []int{id}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		xe := m.endsOf[x]
		for fi := 0; fi < m.k; fi++ {
			if owner, owned := m.owner[x]; owned && owner == fi {
				continue // x already lives in fi; its cycle there is itself
			}
			path, conn := m.pathInForest(fi, xe[0], xe[1])
			if !conn {
				// x fits in fi: perform the exchange chain.
				m.applyExchange(x, fi, labels)
				return true
			}
			for _, ce := range path {
				if _, seen := labels[ce]; seen {
					continue
				}
				labels[ce] = exchangeLabel{pred: x, forest: fi}
				queue = append(queue, ce)
			}
		}
	}
	return false
}

// exchangeLabel records how an edge was reached during the augmenting BFS:
// it lies on pred's fundamental cycle in the given forest.
type exchangeLabel struct {
	pred   int
	forest int
}

// applyExchange moves x into forest fi, then walks the predecessor chain:
// each predecessor replaces the edge it displaced.
func (m *matroidUnion) applyExchange(x, fi int, labels map[int]exchangeLabel) {
	for x != -1 {
		lb := labels[x]
		// Remove x from its current owner (if any) before re-adding.
		if owner, owned := m.owner[x]; owned {
			m.removeFromForest(owner, x)
		}
		ends := m.endsOf[x]
		m.addToForest(fi, x, ends[0], ends[1])
		// The predecessor (if any) will be inserted into the forest that
		// contained x when x was labeled.
		fi = lb.forest
		x = lb.pred
	}
}

// dsu is a plain disjoint-set union used by validation.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning false if already joined.
func (d *dsu) union(a, b int) bool {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return false
	}
	d.parent[ra] = rb
	return true
}
