package spantree

import (
	"math/rand"
	"testing"

	"nab/internal/graph"
)

// fig2a reconstructs the paper's Figure 2(a): a 4-node directed graph that
// embeds 2 unit-capacity spanning arborescences rooted at node 1, where
// edge (1,2) has capacity 2 and is used by both trees (total usage 2).
func fig2a() *graph.Directed {
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 4, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(4, 3, 1)
	g.MustAddEdge(2, 4, 1)
	g.MustAddEdge(3, 4, 1) // extra capacity; trees may or may not use it
	g.MustAddEdge(3, 2, 1)
	return g
}

func fig1a() *graph.Directed {
	g := graph.NewDirected()
	for _, pair := range [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 1); err != nil {
			panic(err)
		}
	}
	return g
}

func TestPackArborescencesFig2(t *testing.T) {
	g := fig2a()
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma < 2 {
		t.Fatalf("fig2a gamma = %d, want >= 2", gamma)
	}
	trees, err := PackArborescences(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("packed %d trees, want 2", len(trees))
	}
	validatePacking(t, g, 1, trees)
	// Edge (1,2) has capacity 2 and is on every 1->2 route except via 4..3;
	// in this topology node 2's only other in-edge is (3,2).
	use12 := 0
	for _, tr := range trees {
		if tr.Parent[2] == 1 {
			use12++
		}
	}
	if use12 == 0 {
		t.Error("no tree uses edge (1,2); expected at least one")
	}
}

func TestPackArborescencesFig1a(t *testing.T) {
	g := fig1a() // gamma = 2
	trees, err := PackArborescences(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	validatePacking(t, g, 1, trees)
}

// validatePacking checks every tree is a valid spanning arborescence and
// combined usage respects capacities.
func validatePacking(t *testing.T, g *graph.Directed, root graph.NodeID, trees []*Arborescence) {
	t.Helper()
	usage := map[[2]graph.NodeID]int64{}
	for ti, tr := range trees {
		if tr.Root != root {
			t.Fatalf("tree %d root = %d, want %d", ti, tr.Root, root)
		}
		if err := tr.Validate(g); err != nil {
			t.Fatalf("tree %d invalid: %v", ti, err)
		}
		for c, p := range tr.Parent {
			usage[[2]graph.NodeID{p, c}]++
		}
	}
	for key, used := range usage {
		if c := g.Cap(key[0], key[1]); used > c {
			t.Fatalf("edge %v used %d times, capacity %d", key, used, c)
		}
	}
}

func TestPackArborescencesInsufficientCut(t *testing.T) {
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := PackArborescences(g, 1, 2); err == nil {
		t.Error("k=2 with mincut 1: expected error")
	}
}

func TestPackArborescencesArgValidation(t *testing.T) {
	g := fig1a()
	if _, err := PackArborescences(g, 1, 0); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := PackArborescences(g, 99, 1); err == nil {
		t.Error("missing root: expected error")
	}
}

func TestPackArborescencesParallelEdges(t *testing.T) {
	// Two nodes joined by capacity-3 edge: three trees each the single edge.
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 3)
	trees, err := PackArborescences(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("packed %d, want 3", len(trees))
	}
	validatePacking(t, g, 1, trees)
}

func TestPackArborescencesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		g := randomStrongDigraph(rng, n, 3)
		gamma, err := g.BroadcastMincut(1)
		if err != nil {
			t.Fatal(err)
		}
		k := int(gamma)
		trees, err := PackArborescences(g, 1, k)
		if err != nil {
			t.Fatalf("trial %d (gamma=%d): %v\n%s", trial, gamma, err, g)
		}
		validatePacking(t, g, 1, trees)
	}
}

func randomStrongDigraph(rng *rand.Rand, n int, maxCap int64) *graph.Directed {
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		next := i%n + 1
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(next), 1+rng.Int63n(maxCap))
		g.MustAddEdge(graph.NodeID(next), graph.NodeID(i), 1+rng.Int63n(maxCap))
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j || g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				continue
			}
			if rng.Intn(2) == 0 {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), 1+rng.Int63n(maxCap))
			}
		}
	}
	return g
}

func TestArborescenceHelpers(t *testing.T) {
	a := &Arborescence{Root: 1, Parent: map[graph.NodeID]graph.NodeID{2: 1, 3: 2, 4: 1}}
	if d := a.Depth(); d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
	p, err := a.PathFromRoot(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Errorf("PathFromRoot(3) = %v", p)
	}
	if _, err := a.PathFromRoot(9); err == nil {
		t.Error("missing vertex: expected error")
	}
	edges := a.Edges()
	if len(edges) != 3 {
		t.Errorf("Edges = %v", edges)
	}
}

func TestArborescenceValidateRejects(t *testing.T) {
	g := fig1a()
	// wrong edge
	bad := &Arborescence{Root: 1, Parent: map[graph.NodeID]graph.NodeID{2: 1, 3: 1, 4: 2}}
	if err := bad.Validate(g); err == nil {
		t.Error("edge (2,4) not in fig1a; expected error")
	}
	// not spanning
	short := &Arborescence{Root: 1, Parent: map[graph.NodeID]graph.NodeID{2: 1}}
	if err := short.Validate(g); err == nil {
		t.Error("non-spanning: expected error")
	}
	// cycle
	cyc := &Arborescence{Root: 1, Parent: map[graph.NodeID]graph.NodeID{2: 3, 3: 2, 4: 1}}
	if err := cyc.Validate(g); err == nil {
		t.Error("cycle: expected error")
	}
	// missing root
	noRoot := &Arborescence{Root: 42, Parent: map[graph.NodeID]graph.NodeID{}}
	if err := noRoot.Validate(g); err == nil {
		t.Error("missing root: expected error")
	}
}

func TestPackUndirectedTreesFig1a(t *testing.T) {
	g := fig1a()
	// Undirected version: all five pairs at capacity 2; U = min pairwise
	// mincut = 4 (each node has undirected degree >= 4)... compute it.
	u := g.Undirected()
	minCut, err := u.MinPairwiseMincut()
	if err != nil {
		t.Fatal(err)
	}
	k := int(minCut / 2)
	trees, err := PackUndirectedTrees(g, k)
	if err != nil {
		t.Fatalf("packing %d trees (U=%d): %v", k, minCut, err)
	}
	if err := ValidateTreePacking(g, trees); err != nil {
		t.Fatal(err)
	}
}

func TestPackUndirectedTreesSlotGranularity(t *testing.T) {
	// Cap-2 directed edge yields two unit edges usable by different trees.
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 2)
	trees, err := PackUndirectedTrees(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTreePacking(g, trees); err != nil {
		t.Fatal(err)
	}
	slots := map[int]bool{}
	for _, tr := range trees {
		if len(tr) != 1 {
			t.Fatalf("tree = %v, want single edge", tr)
		}
		slots[tr[0].Slot] = true
	}
	if len(slots) != 2 {
		t.Errorf("trees reused the same slot: %v", trees)
	}
}

func TestPackUndirectedTreesInfeasible(t *testing.T) {
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := PackUndirectedTrees(g, 2); err == nil {
		t.Error("path graph cannot pack 2 trees; expected error")
	}
	if _, err := PackUndirectedTrees(g, 0); err == nil {
		t.Error("k=0: expected error")
	}
	single := graph.NewDirected()
	single.AddNode(1)
	if _, err := PackUndirectedTrees(single, 1); err == nil {
		t.Error("single node: expected error")
	}
}

func TestPackUndirectedTreesNashWilliamsGuarantee(t *testing.T) {
	// Property: every random graph packs floor(U/2) trees (Nash-Williams/
	// Tutte via the paper's citation [16]).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(4)
		g := randomStrongDigraph(rng, n, 2)
		u := g.Undirected()
		minCut, err := u.MinPairwiseMincut()
		if err != nil {
			t.Fatal(err)
		}
		k := int(minCut / 2)
		if k == 0 {
			continue
		}
		trees, err := PackUndirectedTrees(g, k)
		if err != nil {
			t.Fatalf("trial %d: U=%d k=%d: %v\n%s", trial, minCut, k, err, g)
		}
		if err := ValidateTreePacking(g, trees); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestValidateTreePackingRejects(t *testing.T) {
	g := fig1a()
	// Build one valid tree then corrupt it.
	trees, err := PackUndirectedTrees(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// duplicate a unit edge across two trees
	dup := [][]UnitEdge{trees[0], trees[0]}
	if err := ValidateTreePacking(g, dup); err == nil {
		t.Error("duplicated tree: expected error")
	}
	// wrong edge count
	if err := ValidateTreePacking(g, [][]UnitEdge{trees[0][:1]}); err == nil {
		t.Error("short tree: expected error")
	}
	// slot beyond capacity
	badSlot := make([]UnitEdge, len(trees[0]))
	copy(badSlot, trees[0])
	badSlot[0].Slot = 99
	if err := ValidateTreePacking(g, [][]UnitEdge{badSlot}); err == nil {
		t.Error("bad slot: expected error")
	}
}

func BenchmarkPackArborescences6(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomStrongDigraph(rng, 6, 3)
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackArborescences(g, 1, int(gamma)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackUndirectedTrees6(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomStrongDigraph(rng, 6, 3)
	u := g.Undirected()
	minCut, err := u.MinPairwiseMincut()
	if err != nil {
		b.Fatal(err)
	}
	k := int(minCut / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackUndirectedTrees(g, k); err != nil {
			b.Fatal(err)
		}
	}
}
