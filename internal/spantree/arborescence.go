// Package spantree packs spanning structures under capacity constraints:
//
//   - PackArborescences implements the constructive form of Edmonds'
//     disjoint-arborescence theorem (via Lovász's proof): in a directed
//     graph where MINCUT(root, v) >= k for every v, it extracts k spanning
//     arborescences whose combined per-edge usage respects capacities.
//     NAB's Phase 1 sends one L/gamma-bit block down each of gamma trees.
//
//   - PackUndirectedTrees implements matroid-union (Roskind–Tarjan style)
//     packing of edge-disjoint undirected spanning trees in the undirected
//     version of a graph, used to build the invertible spanning submatrix
//     M_H in the Theorem 1 soundness argument (a graph with pairwise
//     mincut U packs at least U/2 trees, by Nash-Williams/Tutte).
package spantree

import (
	"fmt"
	"sort"

	"nab/internal/graph"
)

// Arborescence is a spanning out-tree rooted at Root: every non-root vertex
// has exactly one parent and is reachable from Root along tree edges.
type Arborescence struct {
	Root   graph.NodeID
	Parent map[graph.NodeID]graph.NodeID
}

// Edges returns the tree's directed edges (parent -> child), sorted by child.
func (a *Arborescence) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(a.Parent))
	children := make([]graph.NodeID, 0, len(a.Parent))
	for c := range a.Parent {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	for _, c := range children {
		out = append(out, graph.Edge{From: a.Parent[c], To: c, Cap: 1})
	}
	return out
}

// Depth returns the number of hops from the root to the deepest leaf.
func (a *Arborescence) Depth() int {
	depth := 0
	for c := range a.Parent {
		d := 0
		for c != a.Root {
			c = a.Parent[c]
			d++
			if d > len(a.Parent)+1 {
				return -1 // cycle; Validate will report it
			}
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// PathFromRoot returns the vertex sequence root..v along tree edges.
func (a *Arborescence) PathFromRoot(v graph.NodeID) ([]graph.NodeID, error) {
	var rev []graph.NodeID
	cur := v
	for cur != a.Root {
		rev = append(rev, cur)
		p, ok := a.Parent[cur]
		if !ok {
			return nil, fmt.Errorf("spantree: vertex %d not in arborescence", cur)
		}
		cur = p
		if len(rev) > len(a.Parent)+1 {
			return nil, fmt.Errorf("spantree: cycle reaching %d", v)
		}
	}
	out := make([]graph.NodeID, 0, len(rev)+1)
	out = append(out, a.Root)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out, nil
}

// Validate checks that a spans exactly the nodes of g, uses only edges of g,
// and contains no cycles.
func (a *Arborescence) Validate(g *graph.Directed) error {
	if !g.HasNode(a.Root) {
		return fmt.Errorf("spantree: root %d not in graph", a.Root)
	}
	if len(a.Parent) != g.NumNodes()-1 {
		return fmt.Errorf("spantree: tree has %d edges, want %d", len(a.Parent), g.NumNodes()-1)
	}
	for c, p := range a.Parent {
		if !g.HasEdge(p, c) {
			return fmt.Errorf("spantree: tree edge (%d,%d) not in graph", p, c)
		}
	}
	for _, v := range g.Nodes() {
		if v == a.Root {
			continue
		}
		if _, err := a.PathFromRoot(v); err != nil {
			return err
		}
	}
	return nil
}

// PackArborescences returns k spanning arborescences of g rooted at root
// such that the number of trees using each directed edge never exceeds its
// capacity. It returns an error if MINCUT(g, root, v) < k for some v
// (Edmonds' condition) or if extraction fails unexpectedly.
func PackArborescences(g *graph.Directed, root graph.NodeID, k int) ([]*Arborescence, error) {
	if k <= 0 {
		return nil, fmt.Errorf("spantree: k = %d must be positive", k)
	}
	if !g.HasNode(root) {
		return nil, fmt.Errorf("spantree: root %d not in graph", root)
	}
	for _, v := range g.Nodes() {
		if v == root {
			continue
		}
		mc, err := g.MaxFlow(root, v)
		if err != nil {
			return nil, fmt.Errorf("spantree: %w", err)
		}
		if mc < int64(k) {
			return nil, fmt.Errorf("spantree: MINCUT(root,%d) = %d < k = %d", v, mc, k)
		}
	}

	work := g.Clone()
	trees := make([]*Arborescence, 0, k)
	for t := k; t >= 1; t-- {
		// extractArborescence consumes one capacity unit per tree edge from
		// work as it grows, so no further bookkeeping is needed here.
		tree, err := extractArborescence(work, root, t)
		if err != nil {
			return nil, fmt.Errorf("spantree: extracting tree %d: %w", k-t+1, err)
		}
		trees = append(trees, tree)
	}
	return trees, nil
}

// decCap reduces edge capacity by one, removing the edge at zero.
func decCap(g *graph.Directed, from, to graph.NodeID) {
	c := g.Cap(from, to)
	g.RemoveEdge(from, to)
	if c > 1 {
		g.MustAddEdge(from, to, c-1)
	}
}

// extractArborescence grows one spanning arborescence in work (a graph
// whose every vertex has mincut >= t from root) such that after removing
// the tree's edges every vertex retains mincut >= t-1. Candidate edges are
// accepted under the strong Lovász safety condition; if no candidate
// passes, the search backtracks (existence is guaranteed by Edmonds'
// theorem, so backtracking is insurance against pathological tie-breaks).
func extractArborescence(work *graph.Directed, root graph.NodeID, t int) (*Arborescence, error) {
	nodes := work.Nodes()
	parent := map[graph.NodeID]graph.NodeID{}
	inTree := map[graph.NodeID]bool{root: true}

	var grow func() bool
	grow = func() bool {
		if len(inTree) == len(nodes) {
			return true
		}
		for _, e := range candidateEdges(work, inTree) {
			if !safeEdge(work, root, t, inTree, e) {
				continue
			}
			parent[e.To] = e.From
			inTree[e.To] = true
			decCap(work, e.From, e.To)
			if grow() {
				return true
			}
			// backtrack
			delete(parent, e.To)
			delete(inTree, e.To)
			incCap(work, e.From, e.To)
		}
		return false
	}
	if !grow() {
		return nil, fmt.Errorf("spantree: no safe edge sequence found (t=%d)", t)
	}
	return &Arborescence{Root: root, Parent: parent}, nil
}

func incCap(g *graph.Directed, from, to graph.NodeID) {
	c := g.Cap(from, to)
	g.RemoveEdge(from, to)
	g.MustAddEdge(from, to, c+1)
}

// candidateEdges returns edges from inside the partial tree to outside,
// in deterministic order.
func candidateEdges(work *graph.Directed, inTree map[graph.NodeID]bool) []graph.Edge {
	var out []graph.Edge
	for _, e := range work.Edges() {
		if inTree[e.From] && !inTree[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// safeEdge reports whether consuming one unit of e keeps
// MINCUT(root, v) >= t-1 for every vertex v outside the grown tree and
// every vertex already inside it (the strong invariant guaranteeing the
// remaining graph supports the other t-1 trees).
func safeEdge(work *graph.Directed, root graph.NodeID, t int, inTree map[graph.NodeID]bool, e graph.Edge) bool {
	decCap(work, e.From, e.To)
	defer incCap(work, e.From, e.To)
	need := int64(t - 1)
	if need == 0 {
		return true
	}
	for _, v := range work.Nodes() {
		if v == root {
			continue
		}
		mc, err := work.MaxFlow(root, v)
		if err != nil || mc < need {
			return false
		}
	}
	return true
}
