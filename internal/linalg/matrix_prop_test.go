package linalg

import (
	"math/rand"
	"testing"

	"nab/internal/gf"
)

// Property tests over randomized field degrees, shapes and entries: the
// linear-algebra identities the coding layer's soundness rests on.

func TestInvertMulRoundTripProperty(t *testing.T) {
	const trials = 60
	rng := rand.New(rand.NewSource(42))
	degrees := []uint{2, 3, 8, 16, 32, 64}
	for i := 0; i < trials; i++ {
		m := degrees[rng.Intn(len(degrees))]
		f := gf.MustNew(m)
		n := 1 + rng.Intn(6)
		a, err := Random(f, n, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Invertible() {
			// Singular draws are legitimate (probability ~1/2^m per
			// dimension); they must be rejected consistently.
			if _, err := a.Inverse(); err == nil {
				t.Fatalf("GF(2^%d) n=%d: singular matrix inverted", m, n)
			}
			continue
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("GF(2^%d) n=%d: Inverse: %v", m, n, err)
		}
		id, err := Identity(f, n)
		if err != nil {
			t.Fatal(err)
		}
		// invert∘mul round trip, both sides.
		if prod, err := a.Mul(inv); err != nil || !prod.Equal(id) {
			t.Fatalf("GF(2^%d) n=%d: A * A^-1 != I (err %v)", m, n, err)
		}
		if prod, err := inv.Mul(a); err != nil || !prod.Equal(id) {
			t.Fatalf("GF(2^%d) n=%d: A^-1 * A != I (err %v)", m, n, err)
		}
		// Solve(A, A*x) == x for a random x.
		x := make([]gf.Elem, n)
		for j := range x {
			x[j] = f.Rand(rng)
		}
		b, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Solve(b)
		if err != nil {
			t.Fatalf("GF(2^%d) n=%d: Solve: %v", m, n, err)
		}
		for j := range x {
			if got[j] != x[j] {
				t.Fatalf("GF(2^%d) n=%d: Solve(A, Ax) != x at %d", m, n, j)
			}
		}
		// Inverse of the inverse is the original.
		back, err := inv.Inverse()
		if err != nil || !back.Equal(a) {
			t.Fatalf("GF(2^%d) n=%d: (A^-1)^-1 != A (err %v)", m, n, err)
		}
	}
}

func TestMatrixRingIdentitiesProperty(t *testing.T) {
	const trials = 60
	rng := rand.New(rand.NewSource(7))
	degrees := []uint{2, 8, 16, 64}
	for i := 0; i < trials; i++ {
		f := gf.MustNew(degrees[rng.Intn(len(degrees))])
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, _ := Random(f, r, k, rng)
		b, _ := Random(f, k, c, rng)
		cM, _ := Random(f, k, c, rng)

		// (A*B)^T == B^T * A^T.
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := b.Transpose().Mul(a.Transpose())
		if err != nil || !ab.Transpose().Equal(want) {
			t.Fatalf("transpose identity failed (r=%d k=%d c=%d, err %v)", r, k, c, err)
		}

		// Distributivity via entrywise addition: A*(B+C) == A*B + A*C.
		sum := MustNew(f, k, c)
		for x := 0; x < k; x++ {
			for y := 0; y < c; y++ {
				sum.Set(x, y, f.Add(b.At(x, y), cM.At(x, y)))
			}
		}
		left, err := a.Mul(sum)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := a.Mul(cM)
		if err != nil {
			t.Fatal(err)
		}
		right := MustNew(f, r, c)
		for x := 0; x < r; x++ {
			for y := 0; y < c; y++ {
				right.Set(x, y, f.Add(ab.At(x, y), ac.At(x, y)))
			}
		}
		if !left.Equal(right) {
			t.Fatalf("distributivity failed (r=%d k=%d c=%d)", r, k, c)
		}

		// Rank is invariant under transpose and bounded by min(r, k).
		if got, tr := a.Rank(), a.Transpose().Rank(); got != tr || got > minInt(r, k) {
			t.Fatalf("rank invariants failed: rank=%d, rank^T=%d, bound=%d", got, tr, minInt(r, k))
		}
	}
}
