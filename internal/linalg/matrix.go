// Package linalg provides dense matrix arithmetic over binary extension
// fields GF(2^m) supplied by internal/gf.
//
// It implements exactly what the NAB equality-check analysis needs: matrix
// products (coded-symbol generation Y_e = X_i * C_e), rank and invertibility
// via Gaussian elimination (correctness verification of coding matrices,
// Theorem 1), determinants, and random matrix generation.
package linalg

import (
	"fmt"
	"strings"

	"nab/internal/gf"
)

// Matrix is a dense rows x cols matrix over a fixed field. The zero value is
// not usable; construct with New, NewFromRows or Random.
type Matrix struct {
	field *gf.Field
	rows  int
	cols  int
	data  []gf.Elem // row-major
}

// New returns a zero rows x cols matrix over field f.
func New(f *gf.Field, rows, cols int) (*Matrix, error) {
	if f == nil {
		return nil, fmt.Errorf("linalg: nil field")
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: negative dimensions %dx%d", rows, cols)
	}
	return &Matrix{field: f, rows: rows, cols: cols, data: make([]gf.Elem, rows*cols)}, nil
}

// MustNew is New, panicking on error. For constant dimensions in tests.
func MustNew(f *gf.Field, rows, cols int) *Matrix {
	m, err := New(f, rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFromRows builds a matrix from row slices, which must be rectangular and
// contain only canonical field elements.
func NewFromRows(f *gf.Field, rows [][]gf.Elem) (*Matrix, error) {
	if len(rows) == 0 {
		return New(f, 0, 0)
	}
	cols := len(rows[0])
	m, err := New(f, len(rows), cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols)
		}
		for j, v := range r {
			if !f.Valid(v) {
				return nil, fmt.Errorf("linalg: element %#x at (%d,%d) not in %v", v, i, j, f)
			}
			m.data[i*cols+j] = v
		}
	}
	return m, nil
}

// Random returns a rows x cols matrix with entries drawn independently and
// uniformly from the field, matching Theorem 1's random coding matrices.
func Random(f *gf.Field, rows, cols int, src interface{ Uint64() uint64 }) (*Matrix, error) {
	m, err := New(f, rows, cols)
	if err != nil {
		return nil, err
	}
	for i := range m.data {
		m.data[i] = f.Rand(src)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(f *gf.Field, n int) (*Matrix, error) {
	m, err := New(f, n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() *gf.Field { return m.field }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) gf.Elem { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v gf.Elem) { m.data[i*m.cols+j] = v & m.field.Mask() }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{field: m.field, rows: m.rows, cols: m.cols, data: make([]gf.Elem, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m*o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	out, err := New(m.field, m.rows, o.cols)
	if err != nil {
		return nil, err
	}
	if err := m.MulInto(o, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto computes the matrix product m*o into out, which must be
// m.Rows() x o.Cols() over the same field; out is overwritten. out must not
// alias m or o. The inner loop is one AXPY row kernel per nonzero entry of
// m, so repeated products over a reused out matrix do not allocate.
func (m *Matrix) MulInto(o, out *Matrix) error {
	if m.cols != o.rows {
		return fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	if out.rows != m.rows || out.cols != o.cols || out.field != m.field {
		return fmt.Errorf("linalg: MulInto destination is %dx%d over %v, want %dx%d over %v",
			out.rows, out.cols, out.field, m.rows, o.cols, m.field)
	}
	f := m.field
	for i := range out.data {
		out.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		dst := out.data[i*o.cols : (i+1)*o.cols]
		for k := 0; k < m.cols; k++ {
			if a := m.data[i*m.cols+k]; a != 0 {
				f.AXPY(a, dst, o.data[k*o.cols:(k+1)*o.cols])
			}
		}
	}
	return nil
}

// Add returns the entrywise sum m+o (XOR in characteristic 2).
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d + %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] ^= o.data[i]
	}
	return out, nil
}

// MulVec returns the row-vector product x*m, where x has length m.Rows().
// This is the coded-symbol computation Y_e = X_i * C_e of the equality check.
func (m *Matrix) MulVec(x []gf.Elem) ([]gf.Elem, error) {
	out := make([]gf.Elem, m.cols)
	if err := m.MulVecInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes the row-vector product x*m into dst, which must have
// length m.Cols(); dst is overwritten. The allocation-free form of MulVec
// for hot paths that reuse a destination buffer (coding.Scheme.EncodeInto).
func (m *Matrix) MulVecInto(x, dst []gf.Elem) error {
	if len(x) != m.rows {
		return fmt.Errorf("linalg: vector length %d, want %d", len(x), m.rows)
	}
	if len(dst) != m.cols {
		return fmt.Errorf("linalg: destination length %d, want %d", len(dst), m.cols)
	}
	f := m.field
	for j := range dst {
		dst[j] = 0
	}
	for i, a := range x {
		if a != 0 {
			f.AXPY(a, dst, m.data[i*m.cols:(i+1)*m.cols])
		}
	}
	return nil
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{field: m.field, rows: m.cols, cols: m.rows, data: make([]gf.Elem, len(m.data))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// HConcat returns [m | o], the horizontal concatenation.
func (m *Matrix) HConcat(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows {
		return nil, fmt.Errorf("linalg: HConcat row mismatch %d vs %d", m.rows, o.rows)
	}
	out, err := New(m.field, m.rows, m.cols+o.cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:], m.data[i*m.cols:(i+1)*m.cols])
		copy(out.data[i*out.cols+m.cols:], o.data[i*o.cols:(i+1)*o.cols])
	}
	return out, nil
}

// SubMatrix returns the matrix restricted to the given row and column
// indices (in the given order; duplicates allowed).
func (m *Matrix) SubMatrix(rowIdx, colIdx []int) (*Matrix, error) {
	out, err := New(m.field, len(rowIdx), len(colIdx))
	if err != nil {
		return nil, err
	}
	for _, r := range rowIdx {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("linalg: row index %d out of range [0,%d)", r, m.rows)
		}
	}
	for _, c := range colIdx {
		if c < 0 || c >= m.cols {
			return nil, fmt.Errorf("linalg: col index %d out of range [0,%d)", c, m.cols)
		}
	}
	for i, r := range rowIdx {
		for j, c := range colIdx {
			out.data[i*out.cols+j] = m.data[r*m.cols+c]
		}
	}
	return out, nil
}

// Rank returns the rank of m, computed by Gaussian elimination on a copy.
func (m *Matrix) Rank() int {
	w := m.Clone()
	rank, _ := w.eliminate(nil)
	return rank
}

// Invertible reports whether m is square and nonsingular.
func (m *Matrix) Invertible() bool {
	return m.rows == m.cols && m.Rank() == m.rows
}

// Det returns the determinant of a square matrix.
func (m *Matrix) Det() (gf.Elem, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("linalg: determinant of non-square %dx%d matrix", m.rows, m.cols)
	}
	w := m.Clone()
	var det gf.Elem = 1
	rank, pivots := w.eliminate(&det)
	_ = pivots
	if rank < m.rows {
		return 0, nil
	}
	return det, nil
}

// Inverse returns m^-1 or an error if m is singular or non-square.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	id, err := Identity(m.field, n)
	if err != nil {
		return nil, err
	}
	aug, err := m.HConcat(id)
	if err != nil {
		return nil, err
	}
	rank, pivots := aug.eliminateReduced()
	// The augmented matrix always reaches rank n via the identity block;
	// m itself is invertible only if every pivot lies in the left block.
	if rank < n || pivots[n-1] >= n {
		return nil, fmt.Errorf("linalg: matrix is singular")
	}
	inv, err := New(m.field, n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		copy(inv.data[i*n:(i+1)*n], aug.data[i*aug.cols+n:(i+1)*aug.cols])
	}
	return inv, nil
}

// Solve solves x*m = b for a row vector x given square invertible m, i.e.
// x = b * m^-1. Returned slice has length m.Rows().
func (m *Matrix) Solve(b []gf.Elem) ([]gf.Elem, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

// eliminate performs row echelon reduction in place and returns the rank and
// pivot column list. If det is non-nil it accumulates the determinant of the
// leading square part (valid only when the matrix is square and full rank;
// row swaps contribute a factor of 1 since -1 == 1 in characteristic 2).
func (m *Matrix) eliminate(det *gf.Elem) (int, []int) {
	f := m.field
	rank := 0
	pivots := make([]int, 0, minInt(m.rows, m.cols))
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// find pivot
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r*m.cols+col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.swapRows(pivot, rank)
		pv := m.data[rank*m.cols+col]
		if det != nil {
			*det = f.Mul(*det, pv)
		}
		// eliminate below: one AXPY row kernel per row
		pinv, _ := f.Inv(pv)
		prow := m.data[rank*m.cols+col : (rank+1)*m.cols]
		for r := rank + 1; r < m.rows; r++ {
			factor := f.Mul(m.data[r*m.cols+col], pinv)
			if factor == 0 {
				continue
			}
			f.AXPY(factor, m.data[r*m.cols+col:(r+1)*m.cols], prow)
		}
		pivots = append(pivots, col)
		rank++
	}
	return rank, pivots
}

// eliminateReduced performs full Gauss-Jordan reduction (reduced row echelon
// form) in place and returns the rank and pivot columns.
func (m *Matrix) eliminateReduced() (int, []int) {
	f := m.field
	rank, pivots := m.eliminate(nil)
	// normalize pivots to 1 and clear above
	for idx := len(pivots) - 1; idx >= 0; idx-- {
		row, col := idx, pivots[idx]
		pinv, _ := f.Inv(m.data[row*m.cols+col])
		prow := m.data[row*m.cols+col : (row+1)*m.cols]
		f.MulSlice(pinv, prow, prow)
		for r := 0; r < row; r++ {
			factor := m.data[r*m.cols+col]
			if factor == 0 {
				continue
			}
			f.AXPY(factor, m.data[r*m.cols+col:(r+1)*m.cols], prow)
		}
	}
	return rank, pivots
}

func (m *Matrix) swapRows(a, b int) {
	if a == b {
		return
	}
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d over %v\n", m.rows, m.cols, m.field)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%x", m.data[i*m.cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
