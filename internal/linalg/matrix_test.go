package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nab/internal/gf"
)

var testField = gf.MustNew(8)

func randomMatrix(t *testing.T, f *gf.Field, rows, cols int, seed int64) *Matrix {
	t.Helper()
	m, err := Random(f, rows, cols, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Random(%d,%d): %v", rows, cols, err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 2, 2); err == nil {
		t.Error("New(nil field): expected error")
	}
	if _, err := New(testField, -1, 2); err == nil {
		t.Error("New(-1 rows): expected error")
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows(testField, [][]gf.Elem{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %d, want 3", m.At(1, 0))
	}
	if _, err := NewFromRows(testField, [][]gf.Elem{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows: expected error")
	}
	if _, err := NewFromRows(testField, [][]gf.Elem{{1 << 60}}); err == nil {
		t.Error("out-of-field element: expected error")
	}
}

func TestIdentityMul(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		id, err := Identity(testField, n)
		if err != nil {
			t.Fatal(err)
		}
		m := randomMatrix(t, testField, n, n, int64(n))
		left, err := id.Mul(m)
		if err != nil {
			t.Fatal(err)
		}
		right, err := m.Mul(id)
		if err != nil {
			t.Fatal(err)
		}
		if !left.Equal(m) || !right.Equal(m) {
			t.Errorf("n=%d: identity multiplication changed matrix", n)
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := randomMatrix(t, testField, 2, 3, 1)
	b := randomMatrix(t, testField, 2, 3, 2)
	if _, err := a.Mul(b); err == nil {
		t.Error("2x3 * 2x3: expected dimension error")
	}
}

func TestMulAssociativeQuick(t *testing.T) {
	f := gf.MustNew(16)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := Random(f, 3, 4, rng)
		b, _ := Random(f, 4, 2, rng)
		c, _ := Random(f, 2, 5, rng)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAddQuick(t *testing.T) {
	f := gf.MustNew(12)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := Random(f, 3, 3, rng)
		b, _ := Random(f, 3, 3, rng)
		c, _ := Random(f, 3, 3, rng)
		bc, _ := b.Add(c)
		lhs, _ := a.Mul(bc)
		ab, _ := a.Mul(b)
		ac, _ := a.Mul(c)
		rhs, _ := ab.Add(ac)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := gf.MustNew(10)
	rng := rand.New(rand.NewSource(5))
	m, _ := Random(f, 4, 6, rng)
	x := make([]gf.Elem, 4)
	for i := range x {
		x[i] = f.Rand(rng)
	}
	got, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	// compare with 1x4 matrix multiply
	xm, _ := NewFromRows(f, [][]gf.Elem{x})
	want, _ := xm.Mul(m)
	for j := 0; j < 6; j++ {
		if got[j] != want.At(0, j) {
			t.Fatalf("MulVec mismatch at col %d: %d vs %d", j, got[j], want.At(0, j))
		}
	}
	if _, err := m.MulVec(x[:2]); err == nil {
		t.Error("short vector: expected error")
	}
}

func TestRankProperties(t *testing.T) {
	f := gf.MustNew(8)
	// zero matrix has rank 0
	z := MustNew(f, 3, 5)
	if z.Rank() != 0 {
		t.Errorf("zero matrix rank = %d", z.Rank())
	}
	// identity has full rank
	id, _ := Identity(f, 4)
	if id.Rank() != 4 {
		t.Errorf("identity rank = %d", id.Rank())
	}
	// duplicated row drops rank
	m, _ := NewFromRows(f, [][]gf.Elem{{1, 2, 3}, {1, 2, 3}, {0, 1, 0}})
	if m.Rank() != 2 {
		t.Errorf("duplicated-row matrix rank = %d, want 2", m.Rank())
	}
	// rank <= min(rows, cols)
	r := randomMatrix(t, f, 3, 7, 9)
	if r.Rank() > 3 {
		t.Errorf("rank %d > rows 3", r.Rank())
	}
}

func TestRankMulUpperBoundQuick(t *testing.T) {
	f := gf.MustNew(8)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := Random(f, 4, 3, rng)
		b, _ := Random(f, 3, 5, rng)
		ab, _ := a.Mul(b)
		r := ab.Rank()
		return r <= a.Rank() && r <= b.Rank()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInverse(t *testing.T) {
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		m, _ := Random(f, n, n, rng)
		if !m.Invertible() {
			continue
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		prod, _ := m.Mul(inv)
		id, _ := Identity(f, n)
		if !prod.Equal(id) {
			t.Fatalf("m * m^-1 != I for n=%d", n)
		}
		prod2, _ := inv.Mul(m)
		if !prod2.Equal(id) {
			t.Fatalf("m^-1 * m != I for n=%d", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	f := gf.MustNew(8)
	m, _ := NewFromRows(f, [][]gf.Elem{{1, 2}, {1, 2}})
	if _, err := m.Inverse(); err == nil {
		t.Error("singular matrix: expected error")
	}
	r := randomMatrix(t, f, 2, 3, 1)
	if _, err := r.Inverse(); err == nil {
		t.Error("non-square: expected error")
	}
}

func TestDet(t *testing.T) {
	f := gf.MustNew(8)
	// det of identity is 1
	id, _ := Identity(f, 5)
	d, err := id.Det()
	if err != nil || d != 1 {
		t.Errorf("det(I) = %d, %v", d, err)
	}
	// det of singular is 0
	m, _ := NewFromRows(f, [][]gf.Elem{{1, 1}, {1, 1}})
	d, err = m.Det()
	if err != nil || d != 0 {
		t.Errorf("det(singular) = %d, %v", d, err)
	}
	// det nonzero iff invertible
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		r, _ := Random(f, 4, 4, rng)
		d, err := r.Det()
		if err != nil {
			t.Fatal(err)
		}
		if (d != 0) != r.Invertible() {
			t.Fatalf("det=%d but Invertible=%v", d, r.Invertible())
		}
	}
	if _, err := randomMatrix(t, f, 2, 3, 4).Det(); err == nil {
		t.Error("non-square det: expected error")
	}
}

func TestDetMultiplicativeQuick(t *testing.T) {
	f := gf.MustNew(12)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := Random(f, 3, 3, rng)
		b, _ := Random(f, 3, 3, rng)
		ab, _ := a.Mul(b)
		da, _ := a.Det()
		db, _ := b.Det()
		dab, _ := ab.Det()
		return dab == f.Mul(da, db)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolve(t *testing.T) {
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		m, _ := Random(f, n, n, rng)
		if !m.Invertible() {
			continue
		}
		x := make([]gf.Elem, n)
		for i := range x {
			x[i] = f.Rand(rng)
		}
		b, _ := m.MulVec(x) // b = x*m  (x is a row vector)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if got[i] != x[i] {
				t.Fatalf("Solve mismatch at %d: got %d want %d", i, got[i], x[i])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromRows(testField, [][]gf.Elem{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %v", tr)
	}
	if !tr.Transpose().Equal(m) {
		t.Error("double transpose != original")
	}
}

func TestHConcatAndSubMatrix(t *testing.T) {
	a, _ := NewFromRows(testField, [][]gf.Elem{{1, 2}, {3, 4}})
	b, _ := NewFromRows(testField, [][]gf.Elem{{5}, {6}})
	c, err := a.HConcat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cols() != 3 || c.At(1, 2) != 6 {
		t.Errorf("HConcat result wrong: %v", c)
	}
	sub, err := c.SubMatrix([]int{1}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 3 || sub.At(0, 1) != 6 {
		t.Errorf("SubMatrix wrong: %v", sub)
	}
	if _, err := c.SubMatrix([]int{5}, nil); err == nil {
		t.Error("out-of-range row: expected error")
	}
	if _, err := c.SubMatrix(nil, []int{9}); err == nil {
		t.Error("out-of-range col: expected error")
	}
	mismatch, _ := New(testField, 3, 1)
	if _, err := a.HConcat(mismatch); err == nil {
		t.Error("HConcat row mismatch: expected error")
	}
}

func TestRandomFullRankProbability(t *testing.T) {
	// Over GF(2^16), random 4x4 matrices are invertible with probability
	// ~ prod(1 - 2^-16..) > 0.9999; seeing many singular draws would
	// indicate biased generation.
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(99))
	singular := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		m, _ := Random(f, 4, 4, rng)
		if !m.Invertible() {
			singular++
		}
	}
	if singular > 2 {
		t.Errorf("%d/%d random matrices singular; generation looks biased", singular, trials)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := randomMatrix(t, testField, 2, 2, 8)
	c := m.Clone()
	c.Set(0, 0, m.At(0, 0)^1)
	if m.At(0, 0) == c.At(0, 0) {
		t.Error("Clone shares storage with original")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if randomMatrix(t, testField, 2, 2, 1).String() == "" {
		t.Error("String() empty")
	}
}

func BenchmarkMul8x8(b *testing.B) {
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	m1, _ := Random(f, 8, 8, rng)
	m2, _ := Random(f, 8, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m1.Mul(m2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRank16x16(b *testing.B) {
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	m, _ := Random(f, 16, 16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Rank()
	}
}
