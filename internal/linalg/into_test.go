package linalg

import (
	"math/rand"
	"testing"

	"nab/internal/gf"
)

// TestMulIntoMatchesMul checks the scratch-reusing product against Mul and
// that reuse of a dirty destination still yields the clean product.
func TestMulIntoMatchesMul(t *testing.T) {
	for _, deg := range []uint{8, 16, 64} {
		f := gf.MustNew(deg)
		rng := rand.New(rand.NewSource(int64(deg)))
		a, _ := Random(f, 5, 7, rng)
		b, _ := Random(f, 7, 4, rng)
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		out := MustNew(f, 5, 4)
		for round := 0; round < 2; round++ { // second round overwrites a dirty out
			if err := a.MulInto(b, out); err != nil {
				t.Fatalf("GF(2^%d): MulInto: %v", deg, err)
			}
			if !out.Equal(want) {
				t.Fatalf("GF(2^%d) round %d: MulInto != Mul", deg, round)
			}
		}
		if err := a.MulInto(b, MustNew(f, 4, 4)); err == nil {
			t.Error("MulInto with wrong destination shape: expected error")
		}
		if _, err := a.Mul(a); err == nil {
			t.Error("Mul with mismatched dimensions: expected error")
		}
	}
}

// TestMulVecIntoMatchesMulVec checks the allocation-free vector product.
func TestMulVecIntoMatchesMulVec(t *testing.T) {
	for _, deg := range []uint{8, 16, 64} {
		f := gf.MustNew(deg)
		rng := rand.New(rand.NewSource(int64(deg) + 100))
		m, _ := Random(f, 6, 9, rng)
		x := make([]gf.Elem, 6)
		for i := range x {
			x[i] = f.Rand(rng)
		}
		want, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]gf.Elem, 9)
		for i := range dst {
			dst[i] = ^gf.Elem(0) // dirty: MulVecInto must overwrite
		}
		if err := m.MulVecInto(x, dst); err != nil {
			t.Fatalf("GF(2^%d): MulVecInto: %v", deg, err)
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("GF(2^%d): MulVecInto[%d] = %#x, want %#x", deg, j, dst[j], want[j])
			}
		}
		if err := m.MulVecInto(x[:3], dst); err == nil {
			t.Error("MulVecInto with short vector: expected error")
		}
		if err := m.MulVecInto(x, dst[:3]); err == nil {
			t.Error("MulVecInto with short destination: expected error")
		}
	}
}

// TestMulVecIntoZeroAlloc pins the hot vector product at zero allocations.
func TestMulVecIntoZeroAlloc(t *testing.T) {
	f := gf.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	m, _ := Random(f, 33, 8, rng)
	x := make([]gf.Elem, 33)
	for i := range x {
		x[i] = f.Rand(rng)
	}
	dst := make([]gf.Elem, 8)
	if avg := testing.AllocsPerRun(200, func() {
		if err := m.MulVecInto(x, dst); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("MulVecInto allocates %.1f times per call, want 0", avg)
	}
}

// BenchmarkMulVec measures the coded-symbol product Y_e = X * C_e at the
// dimensions the benchmark topologies use (OneThinLink: rho=33 over
// GF(2^16); K7 stripes: rho=4 over GF(2^64)).
func BenchmarkMulVec(b *testing.B) {
	for _, bc := range []struct {
		name       string
		deg        uint
		rows, cols int
	}{
		{"GF16_33x8", 16, 33, 8},
		{"GF64_4x1", 64, 4, 1},
		{"GF64_16x16", 64, 16, 16},
	} {
		f := gf.MustNew(bc.deg)
		rng := rand.New(rand.NewSource(2012))
		m, _ := Random(f, bc.rows, bc.cols, rng)
		x := make([]gf.Elem, bc.rows)
		for i := range x {
			x[i] = f.Rand(rng)
		}
		dst := make([]gf.Elem, bc.cols)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.MulVecInto(x, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEliminate measures Gaussian elimination at scheme-verification
// scale (the C_H rank checks of Theorem 1).
func BenchmarkEliminate(b *testing.B) {
	for _, bc := range []struct {
		name       string
		deg        uint
		rows, cols int
	}{
		{"GF16_165x176", 16, 165, 176}, // OneThinLink C_H scale
		{"GF64_20x30", 64, 20, 30},
	} {
		f := gf.MustNew(bc.deg)
		rng := rand.New(rand.NewSource(7))
		m, _ := Random(f, bc.rows, bc.cols, rng)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.Rank() < 1 {
					b.Fatal("degenerate random matrix")
				}
			}
		})
	}
}
