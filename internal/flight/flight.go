// Package flight is the in-process flight recorder: a fixed-capacity
// ring of typed, nanosecond-stamped events fed by the engines, the
// transport, the WAL and the cluster control plane. It is a passive
// observer — recording never blocks the protocol, never changes frame
// contents or ordering, and costs one atomic load when disabled — so
// every differential byte-identity guarantee holds with it on.
//
// Events are keyed the way the system already keys causality: node,
// instance launch id (epoch<<32|k), dispute generation, and — for
// frames — the per-(link,instance) frame index that the FIFO transport
// invariant makes a deterministic cross-process join key (the chaos
// layer schedules by the same key). tools/nabtrace merges dumps from
// many processes and stitches sends to receives on exactly that key,
// with no wire-format changes.
//
// The recorder is process-global, like the metrics registry: engines
// record into Default() unconditionally, and enabling is a session or
// daemon decision (Session.WithFlightRecorder, nabserve/nabnode
// -flight). Anomaly sites (dispute barrier open, join digest tripwire,
// rejoin/join rounds) additionally request a black-box dump, written
// atomically next to the WAL so a kill -9 post-mortem includes the
// last N thousand events.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType identifies what happened. The zero value marks an unwritten
// ring slot and is never recorded.
type EventType uint8

const (
	evNone EventType = iota
	// EvLaunch: an instance entered the window. Inst is the launch id,
	// K the protocol sequence number, Gen the dispute generation it
	// speculated under.
	EvLaunch
	// EvPhase: a protocol phase began for instance K. Step is a Phase*
	// code; the phase ends where the next one (or the commit) begins.
	EvPhase
	// EvBarrierOpen: a dispute barrier opened (generation bump
	// observed at fold). Gen is the new generation.
	EvBarrierOpen
	// EvReplay: a speculative instance was reaped for replay behind a
	// barrier. Inst is the stale launch id, K its sequence number.
	EvReplay
	// EvBarrierClose: the barrier drained; the window restarts.
	EvBarrierClose
	// EvCommit: instance K folded into the dispute state and was
	// delivered. Arg carries the total wire bits charged.
	EvCommit
	// EvFrameSend / EvFrameRecv: one transport frame left / arrived.
	// Node is the local end, Peer the remote end, Inst the instance,
	// Step the protocol step, and Arg the per-(link,instance) frame
	// index — the cross-process stitch key.
	EvFrameSend
	EvFrameRecv
	// EvWALAppend / EvWALFsync / EvWALSnapshot: durability events.
	// Arg is bytes appended, records synced, or the snapshot K.
	EvWALAppend
	EvWALFsync
	EvWALSnapshot
	// EvRejoinRound: a cluster rollback round. Step is a Round* code,
	// Arg the round id, Inst the rewind watermark when known.
	EvRejoinRound
	// EvJoinRound: a blank-WAL join fetch. Step is a Round* code, Arg
	// the watermark or chunk count.
	EvJoinRound
	// EvAnomaly: an anomaly trigger fired. Arg is a Reason* code.
	EvAnomaly
)

// String names the event type for tools and tests.
func (t EventType) String() string {
	switch t {
	case EvLaunch:
		return "launch"
	case EvPhase:
		return "phase"
	case EvBarrierOpen:
		return "barrier-open"
	case EvReplay:
		return "replay"
	case EvBarrierClose:
		return "barrier-close"
	case EvCommit:
		return "commit"
	case EvFrameSend:
		return "frame-send"
	case EvFrameRecv:
		return "frame-recv"
	case EvWALAppend:
		return "wal-append"
	case EvWALFsync:
		return "wal-fsync"
	case EvWALSnapshot:
		return "wal-snapshot"
	case EvRejoinRound:
		return "rejoin-round"
	case EvJoinRound:
		return "join-round"
	case EvAnomaly:
		return "anomaly"
	}
	return "none"
}

// Phase codes carried in Event.Step by EvPhase events, in causal order.
const (
	PhaseLaunch   uint32 = iota + 1 // window admission (EvLaunch itself)
	Phase1                          // coded sends down the arborescences
	PhaseEquality                   // pairwise equality checks
	PhaseFlags                      // flag broadcast
	PhaseClaims                     // Phase 3 dispute control / audit
)

// PhaseName names a Phase* code.
func PhaseName(code uint32) string {
	switch code {
	case PhaseLaunch:
		return "launch"
	case Phase1:
		return "phase1"
	case PhaseEquality:
		return "equality"
	case PhaseFlags:
		return "flags"
	case PhaseClaims:
		return "claims"
	}
	return "phase?"
}

// Round codes carried in Event.Step by EvRejoinRound / EvJoinRound.
const (
	RoundAnnounce uint32 = iota + 1
	RoundSync
	RoundFetch
	RoundRewind
	RoundResume
)

// RoundName names a Round* code.
func RoundName(code uint32) string {
	switch code {
	case RoundAnnounce:
		return "announce"
	case RoundSync:
		return "sync"
	case RoundFetch:
		return "fetch"
	case RoundRewind:
		return "rewind"
	case RoundResume:
		return "resume"
	}
	return "round?"
}

// Reason codes carried in Event.Arg by EvAnomaly events. They double as
// the black-box dump file discriminator.
const (
	ReasonManual uint64 = iota + 1
	ReasonDispute
	ReasonTripwire
	ReasonRejoin
	ReasonJoin
	ReasonPredicate
)

// ReasonName names a Reason* code; it is embedded in dump filenames, so
// it stays filesystem-safe.
func ReasonName(code uint64) string {
	switch code {
	case ReasonManual:
		return "manual"
	case ReasonDispute:
		return "dispute-barrier"
	case ReasonTripwire:
		return "digest-tripwire"
	case ReasonRejoin:
		return "rejoin"
	case ReasonJoin:
		return "join"
	case ReasonPredicate:
		return "predicate"
	}
	return "anomaly"
}

// Event is one recorded fact. The struct is fixed-size and pointer-free
// so recording is one claim, one stamp and one copy.
type Event struct {
	// TS is the wall-clock nanosecond timestamp, stamped by Record.
	TS int64
	// Seq is the recorder-global claim order, stamped by Record. It
	// breaks TS ties and survives ring wraparound.
	Seq uint64
	// Inst is the instance launch id (epoch<<32|k) where applicable.
	Inst uint64
	// Arg is type-specific: frame index, bytes, round id, reason code.
	Arg uint64
	// K is the protocol sequence number when the event knows it.
	K int32
	// Gen is the dispute generation when the event knows it.
	Gen int32
	// Node is the local node id; -1 for process-scoped events.
	Node int32
	// Peer is the remote node id for frame events.
	Peer int32
	// Step is the protocol step, Phase* code, or Round* code.
	Step uint32
	// Type says which of the above fields mean anything.
	Type EventType
}

// slot is one ring cell. The per-slot mutex makes concurrent writers
// and snapshotters race-clean without a global lock: writers only ever
// contend with a snapshot in flight or with a wrap that lapped them.
type slot struct {
	mu sync.Mutex
	ev Event
}

type ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64
}

// Recorder is a fixed-capacity event ring. The zero value is a valid,
// disabled recorder.
type Recorder struct {
	ring atomic.Pointer[ring]
	pred atomic.Pointer[func(Event) bool]

	mu      sync.Mutex
	label   string
	dumpDir string
	dumpCh  chan uint64
}

var def Recorder

// Default returns the process-global recorder every subsystem records
// into, mirroring the metrics registry's philosophy: instruments are
// global, enablement is a session/daemon decision.
func Default() *Recorder { return &def }

// Record appends ev to the default recorder.
//
//nab:allocfree
func Record(ev Event) { def.Record(ev) }

// Enabled reports whether the default recorder is armed — the one
// atomic load hot paths pay while tracing is off.
//
//nab:allocfree
func Enabled() bool { return def.Enabled() }

// Trigger fires an anomaly on the default recorder.
func Trigger(reason uint64) { def.Trigger(reason) }

func nowNS() int64 { return time.Now().UnixNano() }

// maxRingCapacity caps Enable requests so the power-of-two rounding
// cannot overflow int and a typo'd -flight value cannot demand an
// unallocatable ring. It matches maxDumpEvents: a ring no dump could
// carry would be pointless.
const maxRingCapacity = maxDumpEvents

// ringCapacity rounds a requested capacity to the ring's actual slot
// count: a power of two, minimum 1024, maximum maxRingCapacity.
func ringCapacity(capacity int) uint64 {
	if capacity > maxRingCapacity {
		capacity = maxRingCapacity
	}
	c := uint64(1024)
	for int(c) < capacity {
		c <<= 1
	}
	return c
}

// Enable arms the recorder with a ring of at least capacity events
// (rounded up to a power of two, minimum 1024, clamped to 2^24).
// Enabling an already enabled recorder installs a fresh ring and
// discards prior events.
func (r *Recorder) Enable(capacity int) {
	c := ringCapacity(capacity)
	r.ring.Store(&ring{slots: make([]slot, c), mask: c - 1})
}

// Disable stops recording and drops the ring. In-flight Record calls
// against the old ring complete harmlessly.
func (r *Recorder) Disable() { r.ring.Store(nil) }

// Enabled reports whether a ring is armed.
func (r *Recorder) Enabled() bool { return r.ring.Load() != nil }

// SetLabel names this process in dumps ("node-3", "nabserve", ...).
func (r *Recorder) SetLabel(label string) {
	r.mu.Lock()
	r.label = label
	r.mu.Unlock()
}

// SetPredicate installs a user anomaly predicate evaluated against
// every recorded event except EvAnomaly (the trigger's own record —
// exempting it keeps an always-true predicate from recursing); a true
// return triggers a black-box dump with ReasonPredicate. Pass nil to
// clear. The predicate runs on the record path — keep it cheap and
// non-blocking.
func (r *Recorder) SetPredicate(f func(Event) bool) {
	if f == nil {
		r.pred.Store(nil)
		return
	}
	r.pred.Store(&f)
}

// Record stamps ev with a claim sequence and wall timestamp and stores
// it into the ring, overwriting the event it lapped. It is safe from
// any goroutine and is a no-op while disabled.
//
//nab:allocfree
func (r *Recorder) Record(ev Event) {
	rg := r.ring.Load()
	if rg == nil {
		return
	}
	n := rg.head.Add(1) - 1
	ev.Seq = n
	ev.TS = time.Now().UnixNano()
	s := &rg.slots[n&rg.mask]
	s.mu.Lock()
	s.ev = ev
	s.mu.Unlock()
	// The predicate never sees EvAnomaly: Trigger records one, so an
	// always-true predicate would otherwise recurse Record→Trigger→
	// Record without bound.
	if ev.Type == EvAnomaly {
		return
	}
	if p := r.pred.Load(); p != nil && (*p)(ev) {
		r.Trigger(ReasonPredicate)
	}
}

// Total returns how many events have been recorded since Enable,
// including those the ring has overwritten.
func (r *Recorder) Total() uint64 {
	rg := r.ring.Load()
	if rg == nil {
		return 0
	}
	return rg.head.Load()
}

// Events snapshots the ring's surviving events in claim order. Writers
// proceed concurrently; an event racing its own overwrite lands as
// either the old or the new fact, both of which were true.
func (r *Recorder) Events() []Event {
	rg := r.ring.Load()
	if rg == nil {
		return nil
	}
	out := make([]Event, 0, len(rg.slots))
	for i := range rg.slots {
		s := &rg.slots[i]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Type != evNone {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
