package flight

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nab/internal/obs"
)

func TestRingWraparoundKeepsNewestInOrder(t *testing.T) {
	var r Recorder
	r.Enable(1) // rounds up to the 1024 minimum
	const n = 3000
	for i := 0; i < n; i++ {
		r.Record(Event{Type: EvCommit, K: int32(i), Node: -1})
	}
	if got := r.Total(); got != n {
		t.Fatalf("Total = %d, want %d", got, n)
	}
	evs := r.Events()
	if len(evs) != 1024 {
		t.Fatalf("surviving events = %d, want ring capacity 1024", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(n - 1024 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: Seq = %d, want %d (oldest survivors evicted first)", i, ev.Seq, wantSeq)
		}
		if ev.K != int32(wantSeq) {
			t.Fatalf("event %d: K = %d, want %d", i, ev.K, wantSeq)
		}
		if i > 0 && evs[i-1].TS > ev.TS {
			t.Fatalf("event %d: timestamps regress across claim order", i)
		}
	}
}

func TestConcurrentRecordAndDump(t *testing.T) {
	var r Recorder
	r.Enable(2048)
	const writers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{Type: EvFrameSend, Node: int32(w), Inst: uint64(i), Arg: uint64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			evs := r.Events()
			for j := 1; j < len(evs); j++ {
				if evs[j-1].Seq >= evs[j].Seq {
					t.Errorf("snapshot %d: Seq not strictly increasing at %d", i, j)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Total(); got != writers*per {
		t.Fatalf("Total = %d, want %d", got, writers*per)
	}
}

func TestFlightRecordZeroAlloc(t *testing.T) {
	var r Recorder
	r.Enable(4096)
	ev := Event{Type: EvFrameSend, Node: 1, Peer: 2, Inst: 7, Arg: 3, Step: 2}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(ev) }); avg != 0 {
		t.Fatalf("Record allocates %.1f/op while enabled, want 0", avg)
	}
	r.Disable()
	if avg := testing.AllocsPerRun(1000, func() { r.Record(ev) }); avg != 0 {
		t.Fatalf("Record allocates %.1f/op while disabled, want 0", avg)
	}
	Default().Disable()
	if avg := testing.AllocsPerRun(1000, func() { Record(ev) }); avg != 0 {
		t.Fatalf("package-level Record allocates %.1f/op while disabled, want 0", avg)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	var r Recorder
	r.Enable(1024)
	r.SetLabel("node-3")
	want := []Event{
		{Type: EvLaunch, Inst: 1, K: 1, Gen: 0, Node: -1},
		{Type: EvPhase, K: 1, Step: Phase1, Node: -1},
		{Type: EvFrameSend, Inst: 1, Node: 1, Peer: 2, Step: 3, Arg: 0},
		{Type: EvFrameRecv, Inst: 1, Node: 2, Peer: 1, Step: 3, Arg: 0},
		{Type: EvCommit, Inst: 1, K: 1, Node: -1, Arg: 4096},
		{Type: EvAnomaly, Node: -1, Arg: ReasonDispute},
	}
	for _, ev := range want {
		r.Record(ev)
	}
	buf := r.DumpBytes("manual", 12345)
	d, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Meta.Label != "node-3" || d.Meta.Reason != "manual" || d.Meta.WallNS != 12345 {
		t.Fatalf("meta = %+v", d.Meta)
	}
	if d.Meta.Total != uint64(len(want)) || d.Meta.Capacity != 1024 {
		t.Fatalf("meta totals = %+v", d.Meta)
	}
	if len(d.Events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(d.Events), len(want))
	}
	for i, ev := range d.Events {
		w := want[i]
		w.Seq = uint64(i)
		w.TS = ev.TS // stamped at record time
		if ev != w {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
		if ev.TS <= 0 {
			t.Fatalf("event %d: unstamped TS", i)
		}
	}
}

func TestDecodeRejectsCorruptAndKeepsTornTail(t *testing.T) {
	var r Recorder
	r.Enable(1024)
	for i := 0; i < 10; i++ {
		r.Record(Event{Type: EvCommit, K: int32(i), Node: -1})
	}
	buf := r.DumpBytes("manual", 1)

	if _, err := Decode([]byte("not a dump at all")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	flip := append([]byte(nil), buf...)
	flip[len(dumpMagic)+8] ^= 0xff // corrupt header payload under the CRC
	if _, err := Decode(flip); err == nil {
		t.Fatal("Decode accepted header with bad checksum")
	}
	torn := buf[:len(buf)-eventWire-13] // lose the last event and a bit more
	d, err := Decode(torn)
	if err != nil {
		t.Fatalf("Decode torn tail: %v", err)
	}
	if len(d.Events) != 8 {
		t.Fatalf("torn decode kept %d events, want 8 complete ones", len(d.Events))
	}
}

func TestPredicateTriggersAnomalyEvent(t *testing.T) {
	var r Recorder
	r.Enable(1024)
	r.SetPredicate(func(ev Event) bool { return ev.Type == EvCommit && ev.K == 3 })
	for i := 0; i < 5; i++ {
		r.Record(Event{Type: EvCommit, K: int32(i), Node: -1})
	}
	r.SetPredicate(nil)
	anomalies := 0
	for _, ev := range r.Events() {
		if ev.Type == EvAnomaly && ev.Arg == ReasonPredicate {
			anomalies++
		}
	}
	if anomalies != 1 {
		t.Fatalf("predicate fired %d anomaly events, want 1", anomalies)
	}
}

// TestAlwaysTruePredicateDoesNotRecurse pins the anomaly exemption: the
// predicate never sees the EvAnomaly event Trigger records, so even the
// trivial always-true predicate fires exactly once per recorded event
// instead of recursing Record→Trigger→Record to a stack overflow.
func TestAlwaysTruePredicateDoesNotRecurse(t *testing.T) {
	var r Recorder
	r.Enable(1024)
	r.SetPredicate(func(Event) bool { return true })
	const n = 5
	for i := 0; i < n; i++ {
		r.Record(Event{Type: EvCommit, K: int32(i), Node: -1})
	}
	r.SetPredicate(nil)
	anomalies := 0
	for _, ev := range r.Events() {
		if ev.Type == EvAnomaly {
			anomalies++
		}
	}
	if anomalies != n {
		t.Fatalf("always-true predicate fired %d anomaly events, want one per recorded event (%d)", anomalies, n)
	}
	if got := r.Total(); got != 2*n {
		t.Fatalf("Total = %d, want %d (each event plus its anomaly)", got, 2*n)
	}
}

func TestRingCapacityClampTerminates(t *testing.T) {
	cases := []struct {
		in   int
		want uint64
	}{
		{0, 1024},
		{1, 1024},
		{1024, 1024},
		{1025, 2048},
		{maxRingCapacity, maxRingCapacity},
		{maxRingCapacity + 1, maxRingCapacity},
		{math.MaxInt, maxRingCapacity}, // 2^62<<1 would go negative and loop forever unclamped
	}
	for _, c := range cases {
		if got := ringCapacity(c.in); got != c.want {
			t.Errorf("ringCapacity(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// chanWriter delivers each log line to a channel, so the test can wait
// for the asynchronous dump loop without racing a shared buffer.
type chanWriter chan string

func (w chanWriter) Write(p []byte) (int, error) {
	select {
	case w <- string(p):
	default:
	}
	return len(p), nil
}

func TestAutodumpWriteFailureIsLogged(t *testing.T) {
	lines := make(chan string, 8)
	old := dumpLog
	dumpLog = obs.NewWriter("flight", chanWriter(lines))
	defer func() { dumpLog = old }()

	var r Recorder
	r.Enable(1024)
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r.SetAutodumpDir(filepath.Join(file, "sub")) // a path under a regular file: writes must fail
	r.Trigger(ReasonManual)
	select {
	case line := <-lines:
		if !strings.Contains(line, "autodump-failed") {
			t.Fatalf("logged %q, want an autodump-failed event", line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failing black-box dump was never logged")
	}
}
