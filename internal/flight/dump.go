package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"nab/internal/obs"
)

// dumpLog reports black-box dump write failures. It is force-enabled —
// a misconfigured autodump dir must be visible without NAB_DEBUG, and
// it only ever speaks on a failure streak's first miss (and recovery).
var dumpLog = func() *obs.Logger {
	l := obs.New("flight")
	l.SetEnabled(true)
	return l
}()

// Dump file framing mirrors the WAL's standalone snapshot container: an
// 8-byte magic, a CRC-framed header, then fixed-width event records, so
// a dump survives partial writes detectably and tools/nabtrace can
// reject torn or foreign files by name.
const dumpMagic = "NABFLT01"

// eventWire is the fixed on-disk size of one event record.
const eventWire = 56

// maxDumpEvents bounds how many event records Decode will believe from
// a header, so a corrupt count cannot drive allocation.
const maxDumpEvents = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Meta describes the process and moment a dump was captured.
type Meta struct {
	// Label names the capturing process ("node-3", "nabserve", ...).
	Label string
	// Reason is the trigger ("manual", "dispute-barrier", ...).
	Reason string
	// WallNS is the capture wall-clock time in nanoseconds.
	WallNS int64
	// Total is how many events were recorded since Enable, including
	// those the ring overwrote; Total - len(Events) were lost.
	Total uint64
	// Capacity is the ring size at capture.
	Capacity int
}

// Dump is a decoded flight-recorder capture.
type Dump struct {
	Meta   Meta
	Events []Event
}

// Encode serializes a dump into the NABFLT01 container.
func Encode(d Dump) []byte {
	hdr := binary.AppendUvarint(nil, uint64(len(d.Meta.Label)))
	hdr = append(hdr, d.Meta.Label...)
	hdr = binary.AppendUvarint(hdr, uint64(len(d.Meta.Reason)))
	hdr = append(hdr, d.Meta.Reason...)
	hdr = binary.AppendVarint(hdr, d.Meta.WallNS)
	hdr = binary.AppendUvarint(hdr, d.Meta.Total)
	hdr = binary.AppendUvarint(hdr, uint64(d.Meta.Capacity))
	hdr = binary.AppendUvarint(hdr, uint64(len(d.Events)))

	buf := make([]byte, 0, len(dumpMagic)+8+len(hdr)+eventWire*len(d.Events))
	buf = append(buf, dumpMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(hdr, crcTable))
	buf = append(buf, hdr...)
	for _, ev := range d.Events {
		buf = appendEvent(buf, ev)
	}
	return buf
}

func appendEvent(buf []byte, ev Event) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.TS))
	buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, ev.Inst)
	buf = binary.LittleEndian.AppendUint64(buf, ev.Arg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Gen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Node))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Peer))
	buf = binary.LittleEndian.AppendUint32(buf, ev.Step)
	buf = append(buf, byte(ev.Type), 0, 0, 0)
	return buf
}

// Decode parses a NABFLT01 container. Truncated event tails are
// dropped, not fatal: a black-box dump interrupted by the crash it was
// recording is still worth reading.
func Decode(b []byte) (Dump, error) {
	if len(b) < len(dumpMagic)+8 || string(b[:len(dumpMagic)]) != dumpMagic {
		return Dump{}, fmt.Errorf("flight: not a flight dump (bad magic)")
	}
	hlen := binary.LittleEndian.Uint32(b[len(dumpMagic):])
	hsum := binary.LittleEndian.Uint32(b[len(dumpMagic)+4:])
	rest := b[len(dumpMagic)+8:]
	if uint64(len(rest)) < uint64(hlen) {
		return Dump{}, fmt.Errorf("flight: dump header truncated")
	}
	hdr := rest[:hlen]
	if crc32.Checksum(hdr, crcTable) != hsum {
		return Dump{}, fmt.Errorf("flight: dump header checksum mismatch")
	}
	var d Dump
	var count uint64
	{
		p := hdr
		var err error
		if d.Meta.Label, p, err = cutString(p); err != nil {
			return Dump{}, err
		}
		if d.Meta.Reason, p, err = cutString(p); err != nil {
			return Dump{}, err
		}
		wall, n := binary.Varint(p)
		if n <= 0 {
			return Dump{}, fmt.Errorf("flight: dump header corrupt")
		}
		p = p[n:]
		d.Meta.WallNS = wall
		vals := [3]uint64{}
		for i := range vals {
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return Dump{}, fmt.Errorf("flight: dump header corrupt")
			}
			vals[i], p = v, p[n:]
		}
		d.Meta.Total = vals[0]
		d.Meta.Capacity = int(vals[1])
		count = vals[2]
	}
	if count > maxDumpEvents {
		return Dump{}, fmt.Errorf("flight: dump claims %d events (max %d)", count, maxDumpEvents)
	}
	evb := rest[hlen:]
	if uint64(len(evb)/eventWire) < count {
		count = uint64(len(evb) / eventWire) // torn tail: keep what survived
	}
	d.Events = make([]Event, count)
	for i := range d.Events {
		d.Events[i] = decodeEvent(evb[i*eventWire:])
	}
	return d, nil
}

func cutString(p []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > 4096 || uint64(len(p)-sz) < n {
		return "", nil, fmt.Errorf("flight: dump header corrupt")
	}
	return string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

func decodeEvent(b []byte) Event {
	return Event{
		TS:   int64(binary.LittleEndian.Uint64(b)),
		Seq:  binary.LittleEndian.Uint64(b[8:]),
		Inst: binary.LittleEndian.Uint64(b[16:]),
		Arg:  binary.LittleEndian.Uint64(b[24:]),
		K:    int32(binary.LittleEndian.Uint32(b[32:])),
		Gen:  int32(binary.LittleEndian.Uint32(b[36:])),
		Node: int32(binary.LittleEndian.Uint32(b[40:])),
		Peer: int32(binary.LittleEndian.Uint32(b[44:])),
		Step: binary.LittleEndian.Uint32(b[48:]),
		Type: EventType(b[52]),
	}
}

// DumpBytes captures the recorder's current contents as an encoded
// dump. Returns nil while disabled.
func (r *Recorder) DumpBytes(reason string, wallNS int64) []byte {
	rg := r.ring.Load()
	if rg == nil {
		return nil
	}
	r.mu.Lock()
	label := r.label
	r.mu.Unlock()
	return Encode(Dump{
		Meta: Meta{
			Label:    label,
			Reason:   reason,
			WallNS:   wallNS,
			Total:    rg.head.Load(),
			Capacity: len(rg.slots),
		},
		Events: r.Events(),
	})
}

// SetAutodumpDir arms black-box dumps: anomaly triggers write the
// ring's contents to dir/flight-<reason>.dump (atomically, one file
// per reason so disk stays bounded). Sessions opened durably point
// this at the WAL directory. An empty dir disarms.
func (r *Recorder) SetAutodumpDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dumpDir = dir
	if dir != "" && r.dumpCh == nil {
		r.dumpCh = make(chan uint64, 8)
		go r.dumpLoop(r.dumpCh)
	}
}

// Trigger records an anomaly event and, when an autodump directory is
// armed, requests an asynchronous black-box dump. Dump writing never
// happens on the caller's goroutine; a full request queue drops the
// request (the ring still holds the events for the next trigger).
func (r *Recorder) Trigger(reason uint64) {
	if !r.Enabled() {
		return
	}
	r.Record(Event{Type: EvAnomaly, Node: -1, Arg: reason})
	r.mu.Lock()
	ch := r.dumpCh
	armed := r.dumpDir != ""
	r.mu.Unlock()
	if !armed || ch == nil {
		return
	}
	select {
	case ch <- reason:
	default:
	}
}

func (r *Recorder) dumpLoop(ch chan uint64) {
	failing := map[uint64]bool{} // reasons mid failure-streak, logged once each
	for reason := range ch {
		r.mu.Lock()
		dir := r.dumpDir
		r.mu.Unlock()
		if dir == "" {
			continue
		}
		name := ReasonName(reason)
		buf := r.DumpBytes(name, nowNS())
		if buf == nil {
			continue
		}
		path := filepath.Join(dir, "flight-"+name+".dump")
		if err := writeFileAtomic(path, buf); err != nil {
			if !failing[reason] {
				failing[reason] = true
				dumpLog.Error("autodump-failed", "path", path, "err", err)
			}
		} else if failing[reason] {
			delete(failing, reason)
			dumpLog.Info("autodump-recovered", "path", path)
		}
	}
}

// WriteDumpFile captures the current ring and writes it to path
// atomically (temp + rename + directory sync) — the synchronous
// counterpart of the anomaly autodump, used by daemons on demand.
func (r *Recorder) WriteDumpFile(path, reason string) error {
	buf := r.DumpBytes(reason, nowNS())
	if buf == nil {
		return fmt.Errorf("flight: recorder disabled")
	}
	return writeFileAtomic(path, buf)
}

func writeFileAtomic(path string, buf []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
