package transport_test

import (
	"testing"

	"nab/internal/transport"
)

// TestPeerCloseFlushesQueuedFrames pins the close-drain contract of the
// coalescing writer: every frame Send accepted before Close must reach
// the remote socket — the sender's Close joins its writers' final drain
// and flush before tearing connections down.
func TestPeerCloseFlushesQueuedFrames(t *testing.T) {
	a, b := twoPeers(t, transport.PeerOptions{})

	l, err := a.Dial(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := l.Send(&transport.Message{Instance: 1, Step: uint32(i), From: 1, To: 3, Bits: 8, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: frames may still sit in the writer queue.
	a.Close()

	for i := 0; i < n; i++ {
		m, err := b.Recv(3)
		if err != nil {
			t.Fatalf("frame %d lost at sender close: %v", i, err)
		}
		if m.Step != uint32(i) {
			t.Fatalf("frame %d arrived as step %d", i, m.Step)
		}
	}

	// After Close, Send must refuse rather than silently drop.
	if err := l.Send(&transport.Message{From: 1, To: 3, Bits: 8}); err == nil {
		t.Error("Send after transport Close: expected error")
	}
}
