package transport

import (
	"bufio"
	"errors"
	"sync"
	"time"
)

// frameWriter owns the write half of one connection: Send enqueues frames
// and a single writer goroutine drains the queue into a bufio.Writer,
// flushing only when the queue momentarily empties. Bursts — a node's data
// frames plus the end-of-step markers behind them, across every instance
// sharing the link — coalesce into one syscall instead of one per frame,
// and no frame waits on a timer: the flush happens the instant there is
// nothing left to batch.
//
// The queue preserves enqueue order onto the wire, which makes the writer
// the ordering authority of its connection: whatever order the layer
// above releases — pacer order on a polite link, chaos release order
// under a ChaosConfig — is exactly the order the remote reader sees.
// Chaos therefore sits in front of the writer, never inside it: a
// chaos-delayed stream trickles frames in one at a time (each flushed
// immediately, as a real sparse wire would), while burst traffic still
// coalesces.
//
// Write errors are sticky: the first failure is reported by every later
// Send, and queued frames are discarded so senders never block behind a
// dead connection. A failure on a link's very last frame is therefore
// observable only by the remote side — acceptable here because every
// engine round ends with markers on every out-link (a broken link
// surfaces within one round) and a loss at the true end of a run is
// indistinguishable from a remote crash, which the protocol tolerates by
// design. The goroutine exits when stop (the owning transport's close
// signal) fires, after a final drain and flush; the owning transport must
// join() its writers after signaling stop and before closing
// connections, so every frame accepted before the close signal reaches
// the socket.
type frameWriter struct {
	ch   chan *Message
	stop <-chan struct{}
	// quit retires this writer alone (its connection was replaced by a
	// reconnect); queued frames are abandoned — they were bound for a
	// dead socket.
	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}

	mu  sync.Mutex
	err error
}

// frameQueueDepth bounds per-link enqueued frames; a full queue blocks
// Send, which is the same backpressure a blocking socket write applies.
const frameQueueDepth = 256

// errRetired reports an enqueue onto a writer whose connection was
// replaced by a reconnect; the frame belongs to the dead socket's era.
var errRetired = errors.New("transport: frame writer retired")

func newFrameWriter(bw *bufio.Writer, stop <-chan struct{}) *frameWriter {
	fw := &frameWriter{
		ch:   make(chan *Message, frameQueueDepth),
		stop: stop,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go fw.run(bw)
	return fw
}

// retire ends this writer's goroutine and unblocks pending enqueues —
// used when a reconnecting link replaces the writer's dead connection.
// Idempotent.
func (fw *frameWriter) retire() {
	fw.quitOnce.Do(func() { close(fw.quit) })
}

// enqueue hands one frame to the writer goroutine.
func (fw *frameWriter) enqueue(m *Message) error {
	if err := fw.Err(); err != nil {
		return err
	}
	// Refuse once the transport is closing, even if queue space is free:
	// the writer's final drain may already have run, and a frame accepted
	// after it would be silently dropped.
	select {
	case <-fw.stop:
		return ErrClosed
	default:
	}
	select {
	case fw.ch <- m:
		return nil
	case <-fw.stop:
		return ErrClosed
	case <-fw.quit:
		return errRetired
	}
}

// join blocks until the writer goroutine has drained and flushed after
// stop fired, or until grace expires (a writer stuck in a socket write on
// a dead peer is unblocked by the connection close that follows join).
func (fw *frameWriter) join(grace time.Duration) {
	select {
	case <-fw.done:
	case <-time.After(grace):
	}
}

// Err returns the sticky write error, if any.
func (fw *frameWriter) Err() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.err
}

func (fw *frameWriter) setErr(err error) {
	fw.mu.Lock()
	if fw.err == nil {
		fw.err = err
	}
	fw.mu.Unlock()
}

func (fw *frameWriter) run(bw *bufio.Writer) {
	defer close(fw.done)
	broken := false
	write := func(m *Message) {
		if broken {
			return
		}
		if err := WriteFrame(bw, m); err != nil {
			fw.setErr(err)
			broken = true
			return
		}
		mWriterFrames.Inc()
	}
	flush := func() {
		if broken {
			return
		}
		if err := bw.Flush(); err != nil {
			fw.setErr(err)
			broken = true
			return
		}
		mFlushes.Inc()
	}
	for {
		select {
		case m := <-fw.ch:
			write(m)
		drain:
			for {
				select {
				case m = <-fw.ch:
					write(m)
				default:
					break drain
				}
			}
			flush()
		case <-fw.quit:
			return
		case <-fw.stop:
			for {
				select {
				case m := <-fw.ch:
					write(m)
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}
