package transport

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"nab/internal/graph"
	"nab/internal/metrics"
	"nab/internal/obs"
)

// Chaos is a seeded hostile-network layer that every transport can
// interpose on its links: per-link latency/jitter distributions, reorder
// windows, asymmetric partitions with scheduled heal times, and slow-link
// throttles. It composes with the token-bucket pacer rather than
// replacing it — a chaos-delayed frame still pays its capacity charge
// when it finally enters the wrapped link — and it never loses frames:
// the paper's network is asynchronous but reliable, so chaos only delays
// and reorders; loss is modelled by kill -9 plus the rejoin rollback.
//
// Determinism: every per-frame decision (jitter draw, reorder draw) is a
// pure function of (Seed, link, instance, per-instance frame index).
// Within one (link, instance) stream the frame index is deterministic —
// an instance's node actor emits its frames sequentially — so a replayed
// scenario injects identical physics no matter how the goroutines of
// different in-flight instances interleave.
//
// Ordering: chaos preserves FIFO within each (link, instance) stream and
// deliberately breaks it across instances sharing a link. That is
// exactly the slack the runtime's demux tolerates: frames are buffered
// per (instance, step), but an end-of-step marker is a FIFO promise that
// its instance's earlier emissions are already in flight ahead of it
// (see mailbox.await in internal/runtime), so a marker overtaking its
// own data frames would lose them silently. The per-instance clamp pins
// the load-bearing half of the invariant while fuzzing everything else.
//
// NAB_CHAOS_DEBUG=1 traces partition stalls and link wrapping.
var chaosLog = obs.New("chaos", "NAB_CHAOS_DEBUG")

// Chaos-layer instruments. Counters are global (not per-link): chaos is
// scenario tooling and its hot path should stay two atomic increments.
var (
	mChaosFrames = metrics.NewCounter("nab_chaos_frames_total",
		"Frames routed through the chaos layer.")
	mChaosReordered = metrics.NewCounter("nab_chaos_reordered_total",
		"Frames held back by a reorder window so later frames could overtake.")
	mChaosPartitionStalls = metrics.NewCounter("nab_chaos_partition_stalls_total",
		"Frames stalled until a partition's scheduled heal time.")
	mChaosDelay = metrics.NewHistogram("nab_chaos_delay_seconds",
		"Artificial per-frame delay injected by the chaos layer.", metrics.LatencyBuckets)
)

// Duration is a time.Duration that marshals as a human-readable string
// ("50ms"), so chaos specs read naturally inside cluster.json. Plain
// JSON numbers are accepted as nanoseconds.
type Duration time.Duration

// D unwraps to a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("transport: chaos duration %q: %w", x, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("transport: chaos duration must be a string like \"50ms\"")
	}
	return nil
}

// LinkChaos is the physics profile of one directed link.
type LinkChaos struct {
	// Latency is a fixed one-way delay added to every frame.
	Latency Duration `json:"latency,omitempty"`
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter Duration `json:"jitter,omitempty"`
	// ReorderProb is the probability a frame is additionally held back by
	// up to ReorderDelay, letting frames sent after it overtake. Frames of
	// the same instance never overtake each other (FIFO promise of the
	// end-of-step markers); everything else is fair game.
	ReorderProb float64 `json:"reorderProb,omitempty"`
	// ReorderDelay bounds the reorder hold; zero with a positive
	// ReorderProb defaults to 4x(Latency+Jitter), minimum 1ms.
	ReorderDelay Duration `json:"reorderDelay,omitempty"`
	// RateBits throttles the link to RateBits payload bits per second: a
	// frame of b bits occupies the slow link for b/RateBits seconds and
	// later frames queue behind it — true serialization on top of (not
	// instead of) any token-bucket pacing. Zero disables. Markers are
	// free, exactly as in the paper's accounting.
	RateBits int64 `json:"rateBits,omitempty"`
}

// LinkRule scopes a LinkChaos profile to matching links. A zero From or
// To matches any node; first matching rule wins.
type LinkRule struct {
	From graph.NodeID `json:"from,omitempty"`
	To   graph.NodeID `json:"to,omitempty"`
	LinkChaos
}

// Partition is one scheduled asymmetric partition: frames sent from any
// node in From to any node in To during [Start, Heal) are stalled until
// Heal. An empty node set matches all nodes; direction matters, so a
// partition can sever 2->3 while 3->2 stays healthy.
type Partition struct {
	From []graph.NodeID `json:"from,omitempty"`
	To   []graph.NodeID `json:"to,omitempty"`
	// Start and Heal are measured from transport construction.
	Start Duration `json:"start"`
	Heal  Duration `json:"heal"`
}

// ChaosConfig is a seeded chaos scenario, shared verbatim by every
// process of a cluster (it lives in cluster.json) so all endpoints agree
// on the physics.
type ChaosConfig struct {
	Seed int64 `json:"seed"`
	// Default applies to every link without a matching rule in Links.
	Default LinkChaos `json:"default"`
	// Links overrides the default per directed link.
	Links []LinkRule `json:"links,omitempty"`
	// Partitions schedules asymmetric partitions with heal times.
	Partitions []Partition `json:"partitions,omitempty"`
	// Queue bounds frames in flight inside the chaos layer per link;
	// a full queue blocks Send (physics backpressure). 0 defaults to 4096.
	Queue int `json:"queue,omitempty"`
}

// Validate checks ranges; a nil config is valid (chaos off).
func (c *ChaosConfig) Validate() error {
	if c == nil {
		return nil
	}
	check := func(what string, lc LinkChaos) error {
		if lc.Latency < 0 || lc.Jitter < 0 || lc.ReorderDelay < 0 {
			return fmt.Errorf("transport: chaos %s: negative duration", what)
		}
		if lc.ReorderProb < 0 || lc.ReorderProb > 1 {
			return fmt.Errorf("transport: chaos %s: reorderProb %v outside [0,1]", what, lc.ReorderProb)
		}
		if lc.RateBits < 0 {
			return fmt.Errorf("transport: chaos %s: negative rateBits", what)
		}
		return nil
	}
	if err := check("default", c.Default); err != nil {
		return err
	}
	for i, r := range c.Links {
		if err := check(fmt.Sprintf("links[%d]", i), r.LinkChaos); err != nil {
			return err
		}
	}
	for i, pt := range c.Partitions {
		if pt.Start < 0 || pt.Heal <= pt.Start {
			return fmt.Errorf("transport: chaos partitions[%d]: need 0 <= start < heal", i)
		}
	}
	if c.Queue < 0 {
		return fmt.Errorf("transport: chaos queue must be >= 0")
	}
	return nil
}

// linkParams resolves the effective profile of one directed link.
func (c *ChaosConfig) linkParams(from, to graph.NodeID) LinkChaos {
	for _, r := range c.Links {
		if (r.From == 0 || r.From == from) && (r.To == 0 || r.To == to) {
			return r.LinkChaos
		}
	}
	return c.Default
}

// partitionsFor filters the partitions that cover one directed link.
func (c *ChaosConfig) partitionsFor(from, to graph.NodeID) []Partition {
	var out []Partition
	for _, pt := range c.Partitions {
		if nodeSetHas(pt.From, from) && nodeSetHas(pt.To, to) {
			out = append(out, pt)
		}
	}
	return out
}

func nodeSetHas(set []graph.NodeID, v graph.NodeID) bool {
	if len(set) == 0 {
		return true
	}
	for _, n := range set {
		if n == v {
			return true
		}
	}
	return false
}

// chaosState is the per-transport half of the chaos layer: the validated
// config, the epoch the partition schedule is anchored to, and the owning
// transport's close signal.
type chaosState struct {
	cfg   *ChaosConfig
	epoch time.Time
	stop  <-chan struct{}
}

// newChaosState validates cfg and anchors its partition schedule at the
// owning transport's construction. A nil cfg yields a nil state, and a
// nil state wraps nothing.
func newChaosState(cfg *ChaosConfig, stop <-chan struct{}) (*chaosState, error) {
	if cfg == nil {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	//nab:ignore determinism -- the epoch anchors partition schedules to transport construction; every chaos decision hashes only (seed, link, instance, frame)
	return &chaosState{cfg: cfg, epoch: time.Now(), stop: stop}, nil
}

// wrap interposes chaos physics on the sender half of one directed link.
// Callers must wrap each link at most once (the runtime dials each link
// once and shares it): two wrappers on one link would split the seeded
// per-instance hash stream and race their delivery goroutines.
func (cs *chaosState) wrap(inner Link, from, to graph.NodeID) Link {
	if cs == nil {
		return inner
	}
	par := cs.cfg.linkParams(from, to)
	parts := cs.cfg.partitionsFor(from, to)
	if par == (LinkChaos{}) && len(parts) == 0 {
		return inner
	}
	if par.ReorderProb > 0 && par.ReorderDelay <= 0 {
		d := 4 * (par.Latency.D() + par.Jitter.D())
		if d < time.Millisecond {
			d = time.Millisecond
		}
		par.ReorderDelay = Duration(d)
	}
	queue := cs.cfg.Queue
	if queue <= 0 {
		queue = 4096
	}
	l := &chaosLink{
		inner:   inner,
		cs:      cs,
		key:     [2]graph.NodeID{from, to},
		par:     par,
		parts:   parts,
		ch:      make(chan chaosFrame, queue),
		instSeq: map[uint64]uint32{},
		lastRel: map[uint64]time.Time{},
	}
	go l.run()
	chaosLog.Debug("link-wrapped", "link", linkString(l.key),
		"latency", par.Latency.D(), "jitter", par.Jitter.D(),
		"reorder_prob", par.ReorderProb, "partitions", len(parts))
	return l
}

// chaosFrame is one frame waiting in a link's release heap.
type chaosFrame struct {
	m   *Message
	at  time.Time
	seq uint64
}

// chaosLink delays, reorders and stalls one directed link's frames, then
// feeds them to the wrapped link — token bucket included — from a single
// delivery goroutine, so whatever order chaos releases is exactly the
// order the wire sees.
type chaosLink struct {
	inner Link
	cs    *chaosState
	key   [2]graph.NodeID
	par   LinkChaos
	parts []Partition
	ch    chan chaosFrame

	mu       sync.Mutex
	err      error  // sticky error from the wrapped link
	seq      uint64 // send-order tiebreak for equal release times
	instSeq  map[uint64]uint32
	lastRel  map[uint64]time.Time
	maxInst  uint64
	rateFree time.Time // when the slow link finishes its current frame
}

// Send implements Link: stamp a deterministic release time and hand the
// frame to the delivery goroutine. Frames still undelivered when the
// owning transport closes are lost — like a real network, the air does
// not drain politely; the protocol's shutdown barriers are what keep
// needed frames out of that window.
func (l *chaosLink) Send(m *Message) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	f := l.scheduleLocked(m)
	l.mu.Unlock()
	select {
	case l.ch <- f:
		return nil
	case <-l.cs.stop:
		return ErrClosed
	}
}

// Close implements Link.
func (l *chaosLink) Close() error { return l.inner.Close() }

// scheduleLocked stamps one frame's release time. All randomness is a
// pure function of (seed, link, instance, per-instance frame index).
func (l *chaosLink) scheduleLocked(m *Message) chaosFrame {
	n := l.instSeq[m.Instance]
	l.instSeq[m.Instance] = n + 1
	if m.Instance > l.maxInst {
		l.maxInst = m.Instance
	}
	h := chaosHash(l.cs.cfg.Seed, l.key, m.Instance, n)
	delay := l.par.Latency.D()
	if j := l.par.Jitter.D(); j > 0 {
		delay += time.Duration(unitFromHash(h) * float64(j))
	}
	h = splitmix64(h)
	if p := l.par.ReorderProb; p > 0 && unitFromHash(h) < p {
		h = splitmix64(h)
		delay += time.Duration(unitFromHash(h) * float64(l.par.ReorderDelay.D()))
		mChaosReordered.Inc()
	}
	now := time.Now() //nab:ignore determinism -- release *times* are wall-clock actuation; the delay and ordering above derive purely from the seeded hash
	at := now.Add(delay)
	if r := l.par.RateBits; r > 0 && !m.Marker && m.Bits > 0 {
		// Serialization, not just latency: the frame enters the slow link
		// when the previous frame clears it, and occupies it for
		// bits/RateBits seconds. Propagation delay rides on top.
		start := now
		if l.rateFree.After(start) {
			start = l.rateFree
		}
		l.rateFree = start.Add(time.Duration(float64(m.Bits) / float64(r) * float64(time.Second)))
		at = l.rateFree.Add(delay)
	}
	since := now.Sub(l.cs.epoch)
	for _, pt := range l.parts {
		if since >= pt.Start.D() && since < pt.Heal.D() {
			if healAt := l.cs.epoch.Add(pt.Heal.D()); healAt.After(at) {
				at = healAt
				mChaosPartitionStalls.Inc()
				chaosLog.Debug("partition-stall", "link", linkString(l.key),
					//nab:ignore determinism -- log decoration only; no decision consumes this value
					"instance", m.Instance, "heal_in", time.Until(healAt).Round(time.Millisecond))
			}
		}
	}
	// Per-instance FIFO clamp: release times are monotone within each
	// (link, instance) stream, so a reordered frame never overtakes an
	// earlier frame of its own instance — the end-of-step markers' FIFO
	// promise (the one ordering the runtime's demux genuinely needs).
	if lr := l.lastRel[m.Instance]; at.Before(lr) {
		at = lr
	}
	l.lastRel[m.Instance] = at
	l.pruneLocked()
	l.seq++
	mChaosFrames.Inc()
	mChaosDelay.Observe(at.Sub(now).Seconds())
	return chaosFrame{m: m, at: at, seq: l.seq}
}

// pruneLocked bounds per-instance bookkeeping on unbounded streams:
// instances far below the newest are finished (or demux-dead after a
// rejoin epoch bump) and can never send again.
func (l *chaosLink) pruneLocked() {
	if len(l.instSeq) <= 8192 {
		return
	}
	floor := l.maxInst - 4096
	for k := range l.instSeq {
		if k < floor {
			delete(l.instSeq, k)
			delete(l.lastRel, k)
		}
	}
}

// run is the link's delivery goroutine: frames wait in a release-time
// heap and enter the wrapped link in chaos order.
func (l *chaosLink) run() {
	var h chaosHeap
	for {
		var due <-chan time.Time
		if len(h) > 0 {
			//nab:ignore determinism -- the delivery goroutine actuates already-stamped release times on the wall clock; order was fixed in scheduleLocked
			d := time.Until(h[0].at)
			if d <= 0 {
				l.deliver(heap.Pop(&h).(chaosFrame))
				continue
			}
			due = time.After(d) //nab:ignore determinism -- wall-clock sleep until the stamped release time; not a decision input
		}
		select {
		case f := <-l.ch:
			heap.Push(&h, f)
		case <-due:
			l.deliver(heap.Pop(&h).(chaosFrame))
		case <-l.cs.stop:
			return
		}
	}
}

func (l *chaosLink) deliver(f chaosFrame) {
	if err := l.inner.Send(f.m); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
		if err != ErrClosed {
			chaosLog.Info("deliver-error", "link", linkString(l.key), "err", err)
		}
	}
}

// chaosHeap orders pending frames by (release time, send order).
type chaosHeap []chaosFrame

func (h chaosHeap) Len() int { return len(h) }
func (h chaosHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h chaosHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *chaosHeap) Push(x any)   { *h = append(*h, x.(chaosFrame)) }
func (h *chaosHeap) Pop() any {
	old := *h
	n := len(old) - 1
	f := old[n]
	*h = old[:n]
	return f
}

// splitmix64 is the SplitMix64 finalizer — the same mixing the runtime
// uses for per-launch plan seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosHash folds one frame's stream coordinates into a 64-bit draw.
func chaosHash(seed int64, key [2]graph.NodeID, inst uint64, n uint32) uint64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(int64(key[0]))<<32 ^ uint64(int64(key[1])))
	h = splitmix64(h ^ inst)
	return splitmix64(h ^ uint64(n))
}

// unitFromHash maps a 64-bit draw to [0, 1).
func unitFromHash(h uint64) float64 { return float64(h>>11) / (1 << 53) }
