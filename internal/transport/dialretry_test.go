package transport

import (
	"net"
	"testing"
	"time"
)

// TestRetryJitterDeterministicAndBounded pins the jitter contract: the
// draw is a pure function of (process, addr, attempt), stays inside
// [0, backoff), and actually varies across attempts and addresses — the
// whole point is that a herd of dialers spreads out instead of retrying
// in lockstep.
func TestRetryJitterDeterministicAndBounded(t *testing.T) {
	backoff := 100 * time.Millisecond
	a := retryJitter("127.0.0.1:9000", 3, backoff)
	if b := retryJitter("127.0.0.1:9000", 3, backoff); b != a {
		t.Fatalf("same (addr, attempt) drew %v then %v", a, b)
	}
	varied := false
	for attempt := 0; attempt < 16; attempt++ {
		j := retryJitter("127.0.0.1:9000", attempt, backoff)
		if j < 0 || j >= backoff {
			t.Fatalf("attempt %d: jitter %v outside [0, %v)", attempt, j, backoff)
		}
		if j != a {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter constant across attempts")
	}
	if retryJitter("127.0.0.1:9001", 3, backoff) == a &&
		retryJitter("127.0.0.1:9002", 3, backoff) == a {
		t.Fatal("jitter constant across addresses")
	}
}

// TestDialRetryFinalAttempt is the regression test for the give-up-early
// bug: with the listener coming up late in the timeout window, the old
// loop could compute now+backoff > deadline and bail without spending the
// time it still had. The fixed loop clamps the wait to the remaining
// budget and always makes a final attempt at the deadline.
func TestDialRetryFinalAttempt(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // free the port; nothing listens until late in the window

	up := make(chan net.Listener, 1)
	go func() {
		time.Sleep(450 * time.Millisecond)
		ll, err := net.Listen("tcp", addr)
		if err == nil {
			up <- ll
		} else {
			up <- nil
		}
	}()
	conn, err := DialRetry(addr, 700*time.Millisecond, nil)
	if ll := <-up; ll != nil {
		defer ll.Close()
	}
	if err != nil {
		t.Fatalf("DialRetry gave up with budget left: %v", err)
	}
	conn.Close()
}

// TestDialRetryCancel checks the cancel channel aborts the wait promptly.
func TestDialRetryCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cancel := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	t0 := time.Now()
	if _, err := DialRetry(addr, 10*time.Second, cancel); err != ErrClosed {
		t.Fatalf("canceled DialRetry returned %v, want ErrClosed", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("cancel took %v to abort the retry loop", el)
	}
}
