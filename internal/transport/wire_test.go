package transport

import (
	"bytes"
	"reflect"
	"testing"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/relay"
)

// frameCases covers every body type NAB phases put on a link, plus the
// marker control frame.
func frameCases() []*Message {
	return []*Message{
		{Instance: 7, Step: 3, From: 1, To: 2, Marker: true},
		{Instance: 1, Step: 0, From: 4, To: 5, Bits: 96, Body: []byte("raw payload")},
		{Instance: 2, Step: 9, From: 2, To: 3, Bits: 13, Body: core.Phase1Msg{
			Tree:  4,
			Block: core.BitChunk{Bytes: []byte{0xde, 0xad, 0x80}, BitLen: 17},
		}},
		{Instance: 3, Step: 1, From: 6, To: 1, Bits: 192, Body: core.EqMsg{
			Symbols: []gf.Elem{0, 1, 0xffffffffffffffff, 42},
		}},
		{Instance: 4, Step: 12, From: 3, To: 4, Bits: 352, Body: relay.Packet{
			Origin: 2, Dest: 6, PathIdx: 3, Hop: 2, MsgID: "eig:1", Payload: []byte{1, 2, 3, 0},
		}},
		// Empty-payload edge cases.
		{Instance: 5, Step: 2, From: 1, To: 3, Bits: 0, Body: core.EqMsg{Symbols: []gf.Elem{}}},
		{Instance: 6, Step: 4, From: 2, To: 1, Bits: 0, Body: relay.Packet{
			Origin: 2, Dest: 1, PathIdx: 0, Hop: 1, MsgID: "", Payload: nil,
		}},
	}
}

// bodiesEqual compares decoded bodies, tolerating nil-vs-empty slices
// (wire format cannot distinguish them).
func bodiesEqual(a, b any) bool {
	switch x := a.(type) {
	case []byte:
		y, ok := b.([]byte)
		return ok && bytes.Equal(x, y)
	case core.EqMsg:
		y, ok := b.(core.EqMsg)
		if !ok || len(x.Symbols) != len(y.Symbols) {
			return false
		}
		for i := range x.Symbols {
			if x.Symbols[i] != y.Symbols[i] {
				return false
			}
		}
		return true
	case relay.Packet:
		y, ok := b.(relay.Packet)
		return ok && x.Origin == y.Origin && x.Dest == y.Dest &&
			x.PathIdx == y.PathIdx && x.Hop == y.Hop && x.MsgID == y.MsgID &&
			bytes.Equal(x.Payload, y.Payload)
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range frameCases() {
		raw, err := Encode(m)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Instance != m.Instance || got.Step != m.Step || got.From != m.From ||
			got.To != m.To || got.Marker != m.Marker || got.Bits != m.Bits {
			t.Errorf("case %d: header mismatch: got %+v want %+v", i, got, m)
		}
		if !bodiesEqual(m.Body, got.Body) {
			t.Errorf("case %d: body mismatch: got %#v want %#v", i, got.Body, m.Body)
		}
	}
}

func TestWireFrameStream(t *testing.T) {
	var buf bytes.Buffer
	cases := frameCases()
	for i, m := range cases {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
	}
	for i, m := range cases {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if got.Step != m.Step || !bodiesEqual(m.Body, got.Body) {
			t.Errorf("case %d: stream round-trip mismatch", i)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d trailing bytes after reading all frames", buf.Len())
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short frame accepted")
	}
	m := &Message{From: 1, To: 2, Body: core.EqMsg{Symbols: []gf.Elem{1, 2, 3}}}
	raw, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the symbol vector mid-element.
	if _, err := Decode(raw[:len(raw)-5]); err == nil {
		t.Error("truncated eq frame accepted")
	}
	// Unknown payload kind.
	bad := append([]byte(nil), raw...)
	bad[8+4+8+8+1+8] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Encode(&Message{Body: 3.14}); err == nil {
		t.Error("unencodable body accepted")
	}
	// Oversized length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}
