package transport

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"nab/internal/graph"
)

// recordLink is a fake inner link capturing delivery order and times.
type recordLink struct {
	mu    sync.Mutex
	msgs  []*Message
	times []time.Time
}

func (r *recordLink) Send(m *Message) error {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.times = append(r.times, time.Now())
	r.mu.Unlock()
	return nil
}

func (r *recordLink) Close() error { return nil }

func (r *recordLink) snapshot() []*Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Message(nil), r.msgs...)
}

func (r *recordLink) waitFor(t *testing.T, n int, timeout time.Duration) []*Message {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		got := r.snapshot()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames delivered within %v", len(got), n, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func wrapOn(t *testing.T, cfg *ChaosConfig, from, to graph.NodeID) (*recordLink, Link, chan struct{}) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
	})
	cs, err := newChaosState(cfg, stop)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordLink{}
	return rec, cs.wrap(rec, from, to), stop
}

func TestChaosConfigValidate(t *testing.T) {
	bad := []*ChaosConfig{
		{Default: LinkChaos{Latency: -1}},
		{Default: LinkChaos{ReorderProb: 1.5}},
		{Default: LinkChaos{RateBits: -8}},
		{Partitions: []Partition{{Start: Duration(time.Second), Heal: Duration(time.Second)}}},
		{Partitions: []Partition{{Start: Duration(2 * time.Second), Heal: Duration(time.Second)}}},
		{Queue: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	var nilCfg *ChaosConfig
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config must validate (chaos off): %v", err)
	}
	good := &ChaosConfig{
		Seed:    42,
		Default: LinkChaos{Latency: Duration(time.Millisecond), Jitter: Duration(time.Millisecond), ReorderProb: 0.3},
		Links:   []LinkRule{{From: 1, LinkChaos: LinkChaos{RateBits: 1000}}},
		Partitions: []Partition{
			{From: []graph.NodeID{2}, To: []graph.NodeID{3}, Start: Duration(10 * time.Millisecond), Heal: Duration(20 * time.Millisecond)},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestChaosConfigJSONRoundTrip(t *testing.T) {
	cfg := &ChaosConfig{
		Seed:    7,
		Default: LinkChaos{Latency: Duration(2 * time.Millisecond), Jitter: Duration(5 * time.Millisecond), ReorderProb: 0.25},
		Links:   []LinkRule{{From: 1, To: 2, LinkChaos: LinkChaos{RateBits: 4096}}},
		Partitions: []Partition{
			{From: []graph.NodeID{2}, To: []graph.NodeID{3}, Start: Duration(50 * time.Millisecond), Heal: Duration(300 * time.Millisecond)},
		},
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Durations must read as humans write them in cluster.json.
	if want := `"latency":"2ms"`; !jsonContains(raw, want) {
		t.Errorf("marshaled config %s missing %s", raw, want)
	}
	back := &ChaosConfig{}
	if err := json.Unmarshal(raw, back); err != nil {
		t.Fatal(err)
	}
	if back.Default.Latency != cfg.Default.Latency || back.Partitions[0].Heal != cfg.Partitions[0].Heal {
		t.Errorf("round trip mangled durations: %+v vs %+v", back, cfg)
	}
	// Raw nanosecond numbers are accepted too.
	var d Duration
	if err := json.Unmarshal([]byte("1000000"), &d); err != nil || d.D() != time.Millisecond {
		t.Errorf("numeric duration: %v %v", d.D(), err)
	}
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Error("garbage duration accepted")
	}
}

func jsonContains(raw []byte, sub string) bool {
	s := string(raw)
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestChaosScheduleSeeded pins the determinism contract: per-frame delays
// are a pure function of (seed, link, instance, per-instance index), so
// two links built from one config schedule identical physics, and a
// different seed schedules different physics.
func TestChaosScheduleSeeded(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		cfg := &ChaosConfig{
			Seed:    seed,
			Default: LinkChaos{Latency: Duration(5 * time.Millisecond), Jitter: Duration(100 * time.Millisecond), ReorderProb: 0.4, ReorderDelay: Duration(200 * time.Millisecond)},
		}
		stop := make(chan struct{})
		defer close(stop)
		cs, err := newChaosState(cfg, stop)
		if err != nil {
			t.Fatal(err)
		}
		cl := cs.wrap(&recordLink{}, 1, 2).(*chaosLink)
		out := make([]time.Duration, 0, 24)
		base := time.Now()
		cl.mu.Lock()
		for i := 0; i < 24; i++ {
			f := cl.scheduleLocked(&Message{Instance: uint64(i % 3), Step: uint32(i), From: 1, To: 2, Bits: 8})
			out = append(out, f.at.Sub(base))
		}
		cl.mu.Unlock()
		return out
	}
	a, b := mk(99), mk(99)
	for i := range a {
		if diff := a[i] - b[i]; diff < -20*time.Millisecond || diff > 20*time.Millisecond {
			t.Fatalf("frame %d: same seed scheduled %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(100)
	same := 0
	for i := range a {
		if diff := a[i] - c[i]; diff > -time.Millisecond && diff < time.Millisecond {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds scheduled identical physics")
	}
}

// TestChaosReorderPreservesInstanceFIFO floods a link with interleaved
// frames of several instances under an aggressive reorder window and
// asserts the load-bearing half of the ordering invariant: frames of one
// instance never overtake each other, while the global order does get
// shuffled across instances.
func TestChaosReorderPreservesInstanceFIFO(t *testing.T) {
	cfg := &ChaosConfig{
		Seed:    1,
		Default: LinkChaos{Jitter: Duration(3 * time.Millisecond), ReorderProb: 0.5, ReorderDelay: Duration(40 * time.Millisecond)},
	}
	rec, l, _ := wrapOn(t, cfg, 1, 2)
	const insts, per = 4, 16
	n := 0
	for i := 0; i < per; i++ {
		for inst := 0; inst < insts; inst++ {
			m := &Message{Instance: uint64(inst), Step: uint32(i), From: 1, To: 2, Bits: 8}
			if err := l.Send(m); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	got := rec.waitFor(t, n, 5*time.Second)
	next := map[uint64]uint32{}
	inversions := 0
	pos := 0
	for _, m := range got {
		if m.Step != next[m.Instance] {
			t.Fatalf("instance %d FIFO violated: got step %d, want %d", m.Instance, m.Step, next[m.Instance])
		}
		next[m.Instance]++
		// Count frames delivered out of global send order.
		sendPos := int(m.Step)*insts + int(m.Instance)
		if sendPos != pos {
			inversions++
		}
		pos++
	}
	if inversions == 0 {
		t.Error("reorder chaos delivered everything in exact send order — window had no effect")
	}
}

// TestChaosPartitionStallsAndHeals pins partition semantics: frames sent
// into the window wait for the heal (never lost), the reverse direction
// stays healthy (asymmetry), and post-heal sends flow normally.
func TestChaosPartitionStallsAndHeals(t *testing.T) {
	heal := 400 * time.Millisecond
	cfg := &ChaosConfig{
		Seed: 3,
		Partitions: []Partition{
			{From: []graph.NodeID{1}, To: []graph.NodeID{2}, Start: 0, Heal: Duration(heal)},
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	cs, err := newChaosState(cfg, stop)
	if err != nil {
		t.Fatal(err)
	}
	fwd := &recordLink{}
	rev := &recordLink{}
	lf := cs.wrap(fwd, 1, 2)
	lr := cs.wrap(rev, 2, 1)
	start := time.Now()
	if err := lf.Send(&Message{Instance: 1, From: 1, To: 2, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if err := lr.Send(&Message{Instance: 1, From: 2, To: 1, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	rev.waitFor(t, 1, time.Second)
	if got := fwd.snapshot(); len(got) != 0 && time.Since(start) < heal/2 {
		t.Fatalf("partitioned frame delivered %v after send, before heal", time.Since(start))
	}
	fwd.waitFor(t, 1, 5*time.Second)
	fwd.mu.Lock()
	delivered := fwd.times[0]
	fwd.mu.Unlock()
	if held := delivered.Sub(start); held < heal-20*time.Millisecond {
		t.Errorf("partitioned frame released %v after send, want >= %v", held, heal)
	}
	// The partition has healed; traffic flows promptly again.
	time.Sleep(50 * time.Millisecond)
	t2 := time.Now()
	if err := lf.Send(&Message{Instance: 1, From: 1, To: 2, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	fwd.waitFor(t, 2, time.Second)
	fwd.mu.Lock()
	after := fwd.times[1]
	fwd.mu.Unlock()
	if lag := after.Sub(t2); lag > 200*time.Millisecond {
		t.Errorf("post-heal frame took %v", lag)
	}
}

// TestChaosSlowLinkSerializes pins RateBits as serialization: frames
// queue behind each other on the slow link instead of overlapping.
func TestChaosSlowLinkSerializes(t *testing.T) {
	cfg := &ChaosConfig{
		Seed:  5,
		Links: []LinkRule{{From: 1, To: 2, LinkChaos: LinkChaos{RateBits: 100_000}}},
	}
	rec, l, _ := wrapOn(t, cfg, 1, 2)
	start := time.Now()
	for i := 0; i < 3; i++ {
		// 10_000 bits at 100_000 bits/s = 100ms on the wire each.
		if err := l.Send(&Message{Instance: 1, Step: uint32(i), From: 1, To: 2, Bits: 10_000}); err != nil {
			t.Fatal(err)
		}
	}
	rec.waitFor(t, 3, 5*time.Second)
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Errorf("three 100ms frames cleared the slow link in %v — not serialized", el)
	}
	// Markers are free: they ride the propagation path only.
	m := &Message{Instance: 1, Step: 3, From: 1, To: 2, Marker: true}
	t3 := time.Now()
	if err := l.Send(m); err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, 4, time.Second)
	rec.mu.Lock()
	markerAt := rec.times[3]
	rec.mu.Unlock()
	if lag := markerAt.Sub(t3); lag > 100*time.Millisecond {
		t.Errorf("free marker delayed %v by the throttle", lag)
	}
}

// TestChaosLinkRuleScoping checks per-link overrides: a scoped rule wins
// over the default, and untouched links bypass chaos entirely.
func TestChaosLinkRuleScoping(t *testing.T) {
	cfg := &ChaosConfig{
		Seed:  9,
		Links: []LinkRule{{From: 1, To: 2, LinkChaos: LinkChaos{Latency: Duration(150 * time.Millisecond)}}},
	}
	stop := make(chan struct{})
	defer close(stop)
	cs, err := newChaosState(cfg, stop)
	if err != nil {
		t.Fatal(err)
	}
	slow := &recordLink{}
	ls := cs.wrap(slow, 1, 2)
	if _, ok := ls.(*chaosLink); !ok {
		t.Fatal("matched link not wrapped")
	}
	fast := &recordLink{}
	lf := cs.wrap(fast, 2, 1)
	if _, ok := lf.(*recordLink); !ok {
		t.Fatal("unmatched link should bypass chaos (zero profile, no partitions)")
	}
	start := time.Now()
	if err := ls.Send(&Message{Instance: 1, From: 1, To: 2, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	slow.waitFor(t, 1, time.Second)
	if el := time.Since(start); el < 120*time.Millisecond {
		t.Errorf("scoped latency not applied: delivered after %v", el)
	}
}

// TestChanChaosEndToEnd drives the chaos layer through the real Chan bus:
// delayed frames still arrive, per-link accounting still matches, and
// repeat dials share one wrapped link.
func TestChanChaosEndToEnd(t *testing.T) {
	g := mustParse(t, "1 2 8\n2 1 8")
	tr := NewChan(g, ChanOptions{Chaos: &ChaosConfig{
		Seed:    11,
		Default: LinkChaos{Latency: Duration(5 * time.Millisecond), Jitter: Duration(10 * time.Millisecond), ReorderProb: 0.3},
	}})
	defer tr.Close()
	l1, err := tr.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := tr.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("repeat dial of a chaos link must share the wrapped state")
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l1.Send(&Message{Instance: 7, Step: uint32(i), From: 1, To: 2, Bits: 8}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := tr.Recv(2)
		if err != nil {
			t.Fatal(err)
		}
		if int(m.Step) != i {
			t.Fatalf("single-instance FIFO violated through Chan chaos: step %d at %d", m.Step, i)
		}
	}
	if got := tr.LinkBits()[[2]graph.NodeID{1, 2}]; got != 8*n {
		t.Errorf("accounting through chaos: %d bits, want %d", got, 8*n)
	}
	bad := NewChan(g, ChanOptions{Chaos: &ChaosConfig{Default: LinkChaos{ReorderProb: 2}}})
	defer bad.Close()
	if _, err := bad.Dial(1, 2); err == nil {
		t.Error("invalid chaos config accepted by Dial")
	}
}

func mustParse(t *testing.T, topo string) *graph.Directed {
	t.Helper()
	g, err := graph.ParseDirected(topo)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
