package transport

import (
	"sync"

	"nab/internal/graph"
)

// FlightTap issues the per-(link,instance) frame index the flight
// recorder stamps on send and receive events. The transport's FIFO
// guarantee per (link, instance) — the same invariant the chaos layer
// schedules by — means two taps counting independently at the two ends
// of a link assign every frame the same index, which is what lets
// tools/nabtrace stitch a send in one process's dump to the receive in
// another's with no wire-format changes.
//
// The one causal caveat is frame loss: chaos physics never drops
// intact-link frames and rejoin epochs restart instance numbering
// above anything in flight, so in practice the ends stay aligned; a
// transport that silently lost frames would skew indices from the loss
// point on, and nabtrace surfaces that as unmatched sends.
type FlightTap struct {
	mu      sync.Mutex
	seq     map[tapKey]uint64
	maxInst uint64
}

type tapKey struct {
	from, to graph.NodeID
	inst     uint64
}

// tapMaxEntries / tapKeepInst bound the counter map exactly the way the
// chaos layer bounds its per-instance state: when the map outgrows the
// ceiling, entries older than the newest instance minus the keep window
// are discarded — their executions are long committed or aborted.
const (
	tapMaxEntries = 8192
	tapKeepInst   = 4096
)

// Next returns the index of the next frame on (from→to, inst) and
// advances the counter. Indices start at 0.
func (t *FlightTap) Next(from, to graph.NodeID, inst uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq == nil {
		t.seq = make(map[tapKey]uint64)
	}
	if inst > t.maxInst {
		t.maxInst = inst
	}
	k := tapKey{from: from, to: to, inst: inst}
	n := t.seq[k]
	t.seq[k] = n + 1
	if len(t.seq) > tapMaxEntries {
		t.pruneLocked()
	}
	return n
}

func (t *FlightTap) pruneLocked() {
	if t.maxInst < tapKeepInst {
		return
	}
	floor := t.maxInst - tapKeepInst
	for k := range t.seq {
		if k.inst < floor {
			delete(t.seq, k)
		}
	}
}
