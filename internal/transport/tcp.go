package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"nab/internal/graph"
)

// TCP is the loopback TCP Transport: every node owns a listener on
// 127.0.0.1, every directed link is a dialed connection carrying
// length-prefixed wire frames (see wire.go). Frames addressed to the wrong
// node or claiming a link absent from the topology are dropped on receipt —
// the receiver enforces physics, since a wire cannot.
//
// TCP does not pace: real sockets have their own clocks. Per-link bit
// accounting is kept on the receive side so utilization is still
// comparable against capacity.Report.
// TCPOptions tunes the loopback transport.
type TCPOptions struct {
	// Chaos interposes seeded hostile network physics (latency, jitter,
	// reorder windows, scheduled partitions, slow links) on every dialed
	// link. Nil means a polite network. See ChaosConfig.
	Chaos *ChaosConfig
}

type TCP struct {
	g     *graph.Directed
	chaos *chaosState

	mu        sync.Mutex
	listeners map[graph.NodeID]net.Listener
	addrs     map[graph.NodeID]string
	inboxes   map[graph.NodeID]chan *Message
	conns     []net.Conn
	writers   []*frameWriter
	bits      map[[2]graph.NodeID]int64
	dropped   int64

	closed    chan struct{}
	closeOnce sync.Once
}

// NewTCP listens on an ephemeral loopback port per node of g and starts
// the accept loops.
func NewTCP(g *graph.Directed) (*TCP, error) {
	return NewTCPOpts(g, TCPOptions{})
}

// NewTCPOpts is NewTCP with options.
func NewTCPOpts(g *graph.Directed, opt TCPOptions) (*TCP, error) {
	t := &TCP{
		g:         g.Clone(),
		listeners: map[graph.NodeID]net.Listener{},
		addrs:     map[graph.NodeID]string{},
		inboxes:   map[graph.NodeID]chan *Message{},
		bits:      map[[2]graph.NodeID]int64{},
		closed:    make(chan struct{}),
	}
	var err error
	if t.chaos, err = newChaosState(opt.Chaos, t.closed); err != nil {
		return nil, err
	}
	for _, v := range t.g.Nodes() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen for node %d: %w", v, err)
		}
		t.listeners[v] = l
		t.addrs[v] = l.Addr().String()
		t.inboxes[v] = make(chan *Message, 4096)
		go t.acceptLoop(v, l)
	}
	return t, nil
}

// Addr returns the loopback address node v listens on.
func (t *TCP) Addr(v graph.NodeID) string { return t.addrs[v] }

func (t *TCP) acceptLoop(v graph.NodeID, l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.conns = append(t.conns, conn)
		t.mu.Unlock()
		go t.readLoop(v, conn)
	}
}

func (t *TCP) readLoop(v graph.NodeID, conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		m, err := ReadFrame(br)
		if err != nil {
			return // connection closed or garbage framing
		}
		if m.To != v || !t.g.HasEdge(m.From, m.To) || m.Bits < 0 {
			t.mu.Lock()
			t.dropped++
			t.mu.Unlock()
			mDropped.Inc()
			continue
		}
		if !m.Marker && m.Bits > 0 {
			t.mu.Lock()
			t.bits[[2]graph.NodeID{m.From, m.To}] += m.Bits
			t.mu.Unlock()
		}
		select {
		case t.inboxes[v] <- m:
		case <-t.closed:
			return
		}
	}
}

// Dial implements Transport: one TCP connection per call. Runtime engines
// dial each link once and share it.
func (t *TCP) Dial(from, to graph.NodeID) (Link, error) {
	if !t.g.HasEdge(from, to) {
		return nil, fmt.Errorf("transport: no link (%d,%d) in topology", from, to)
	}
	conn, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial (%d,%d): %w", from, to, err)
	}
	fw := newFrameWriter(bufio.NewWriter(conn), t.closed)
	t.mu.Lock()
	t.conns = append(t.conns, conn)
	t.writers = append(t.writers, fw)
	t.mu.Unlock()
	mDials.Inc()
	return t.chaos.wrap(&tcpLink{from: from, to: to, conn: conn, fw: fw, lm: linkMetricsFor(from, to)}, from, to), nil
}

// Recv implements Transport.
func (t *TCP) Recv(self graph.NodeID) (*Message, error) {
	inbox, ok := t.inboxes[self]
	if !ok {
		return nil, fmt.Errorf("transport: node %d not in topology", self)
	}
	select {
	case m := <-inbox:
		return m, nil
	case <-t.closed:
		select {
		case m := <-inbox:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// LinkBits implements Transport.
func (t *TCP) LinkBits() map[[2]graph.NodeID]int64 {
	out := map[[2]graph.NodeID]int64{}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, b := range t.bits {
		out[key] = b
	}
	return out
}

// Dropped returns how many received frames violated physics.
func (t *TCP) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Close implements Transport: signals every link's coalescing writer,
// waits for their final drain and flush (bounded per writer — a writer
// wedged on a dead peer is unblocked by the connection close below), then
// closes every listener and connection. Frames accepted by Send before
// Close reach the socket.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.mu.Lock()
		writers := append([]*frameWriter(nil), t.writers...)
		t.mu.Unlock()
		for _, fw := range writers {
			fw.join(time.Second)
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, l := range t.listeners {
			l.Close()
		}
		for _, c := range t.conns {
			c.Close()
		}
	})
	return nil
}

// tcpLink is the sender half of one dialed link.
type tcpLink struct {
	from, to graph.NodeID
	conn     net.Conn
	fw       *frameWriter
	lm       linkMetrics
}

// Send implements Link: frames are queued in order onto the link's
// coalescing writer, which batches bursts into single syscalls.
func (l *tcpLink) Send(m *Message) error {
	if m.From != l.from || m.To != l.to {
		return fmt.Errorf("transport: frame (%d,%d) on link (%d,%d)", m.From, m.To, l.from, l.to)
	}
	if err := l.fw.enqueue(m); err != nil {
		return err
	}
	l.lm.count(m)
	return nil
}

// Close implements Link.
func (l *tcpLink) Close() error { return l.conn.Close() }
