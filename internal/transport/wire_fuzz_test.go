package transport

import (
	"bytes"
	"reflect"
	"testing"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/relay"
)

// seedMessages covers every wire frame kind (plus markers) once.
func seedMessages() []*Message {
	return []*Message{
		{Instance: 1, Step: 2, From: 3, To: 4, Marker: true},
		{Instance: 7, Step: 1, From: 1, To: 2, Bits: 8, Body: []byte{0xde, 0xad}},
		{Instance: 2, Step: 9, From: 5, To: 6, Bits: 24, Body: core.Phase1Msg{
			Tree:  1,
			Block: core.BitChunk{Bytes: []byte{0xff, 0x80}, BitLen: 9},
		}},
		{Instance: 3, Step: 0, From: 2, To: 1, Bits: 128, Body: core.EqMsg{
			Symbols: []gf.Elem{0, 1, 0xfffffffffffffffe},
		}},
		{Instance: 4, Step: 5, From: 9, To: 8, Bits: 64, Body: relay.Packet{
			Origin: 1, Dest: 9, PathIdx: 2, Hop: 1, MsgID: "eig:3", Payload: []byte("claims"),
		}},
		{Instance: 0, Step: 0, From: 0, To: 0, Body: nil},
	}
}

// FuzzDecode feeds arbitrary bytes to the frame decoder: it must never
// panic, and whatever it accepts must re-encode and re-decode to the
// same message (the decoder only accepts canonical frames' content).
func FuzzDecode(f *testing.F) {
	for _, m := range seedMessages() {
		raw, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(raw)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		raw2, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		m2, err := Decode(raw2)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode diverged:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the length-prefixed
// reader: no panic, and anything accepted round-trips through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	for _, m := range seedMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 1, 0xff})
	f.Fuzz(func(t *testing.T, stream []byte) {
		m, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("accepted frame does not rewrite: %v", err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("write/read round trip diverged (%v):\n%+v\n%+v", err, m, m2)
		}
	})
}

// FuzzWireRoundTrip builds a structured message per frame kind from the
// fuzzer's primitives and asserts Encode/Decode field fidelity.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), int64(3), int64(4), false, int64(8), byte(1), []byte{1, 2, 3}, int32(0), int32(9))
	f.Add(uint64(9), uint32(0), int64(-1), int64(7), true, int64(0), byte(0), []byte{}, int32(3), int32(-2))
	f.Add(uint64(5), uint32(7), int64(2), int64(3), false, int64(64), byte(2), []byte{0xab}, int32(1), int32(13))
	f.Add(uint64(8), uint32(3), int64(4), int64(5), false, int64(128), byte(3), []byte{1, 2, 3, 4, 5, 6, 7, 8}, int32(0), int32(0))
	f.Add(uint64(6), uint32(1), int64(9), int64(1), false, int64(32), byte(4), []byte("payload"), int32(2), int32(4))
	f.Fuzz(func(t *testing.T, instance uint64, step uint32, from, to int64, marker bool, bits int64, kind byte, payload []byte, a, b int32) {
		if bits < 0 {
			bits = -bits
		}
		m := &Message{
			Instance: instance, Step: step,
			From: graph.NodeID(from), To: graph.NodeID(to),
			Marker: marker, Bits: bits,
		}
		switch kind % 5 {
		case 0:
			m.Body = nil
		case 1:
			m.Body = append([]byte(nil), payload...)
		case 2:
			bitLen := len(payload) * 8
			if int(a) >= 0 && int(a) <= bitLen {
				bitLen = int(a)
			}
			m.Body = core.Phase1Msg{Tree: int(b), Block: core.BitChunk{Bytes: append([]byte(nil), payload...), BitLen: bitLen}}
		case 3:
			syms := make([]gf.Elem, 0, len(payload)/2)
			for i := 0; i+1 < len(payload); i += 2 {
				syms = append(syms, gf.Elem(payload[i])<<8|gf.Elem(payload[i+1]))
			}
			m.Body = core.EqMsg{Symbols: syms}
		case 4:
			id := "m"
			if len(payload) > 0 {
				id = string(payload[:len(payload)/2])
			}
			m.Body = relay.Packet{
				Origin: graph.NodeID(a), Dest: graph.NodeID(b),
				PathIdx: int(a % 16), Hop: int(b % 16),
				MsgID: id, Payload: append([]byte(nil), payload...),
			}
		}
		raw, err := Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("decode of canonical frame: %v", err)
		}
		if got.Instance != m.Instance || got.Step != m.Step || got.From != m.From ||
			got.To != m.To || got.Marker != m.Marker || got.Bits != m.Bits {
			t.Fatalf("header round trip diverged: %+v vs %+v", got, m)
		}
		switch want := m.Body.(type) {
		case nil:
			if got.Body != nil {
				t.Fatalf("nil body round-tripped to %T", got.Body)
			}
		case []byte:
			if !bytes.Equal(got.Body.([]byte), want) {
				t.Fatal("raw body round trip diverged")
			}
		case core.Phase1Msg:
			g := got.Body.(core.Phase1Msg)
			if g.Tree != want.Tree || g.Block.BitLen != want.Block.BitLen || !bytes.Equal(g.Block.Bytes, want.Block.Bytes) {
				t.Fatalf("phase1 body diverged: %+v vs %+v", g, want)
			}
		case core.EqMsg:
			g := got.Body.(core.EqMsg)
			if len(g.Symbols) != len(want.Symbols) {
				t.Fatal("eq symbol count diverged")
			}
			for i := range g.Symbols {
				if g.Symbols[i] != want.Symbols[i] {
					t.Fatal("eq symbols diverged")
				}
			}
		case relay.Packet:
			g := got.Body.(relay.Packet)
			if g.Origin != want.Origin || g.Dest != want.Dest || g.PathIdx != want.PathIdx ||
				g.Hop != want.Hop || g.MsgID != want.MsgID || !bytes.Equal(g.Payload, want.Payload) {
				t.Fatalf("relay body diverged: %+v vs %+v", g, want)
			}
		}
	})
}
