package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"nab/internal/graph"
)

// PeerOptions tunes the multi-process TCP mesh.
type PeerOptions struct {
	// TimeUnit enables send-side per-link token-bucket pacing (the same
	// model as ChanOptions.TimeUnit): even across real sockets, a b-bit
	// frame occupies its link of capacity z_e for b/z_e time units before
	// the next frame may enter it. Zero disables pacing (accounting only).
	TimeUnit time.Duration
	// Burst is the token bucket depth in bits; 0 defaults to z_e.
	Burst int64
	// DialTimeout bounds how long Dial retries a peer that has not come up
	// yet — cluster processes boot in arbitrary order, so the first dials
	// of a full mesh must wait for listeners. Default 20s.
	DialTimeout time.Duration
	// Buffer is the per-node inbox depth; 0 defaults to 4096 frames.
	Buffer int
	// Listener supplies an already-bound listener for the mesh endpoint
	// instead of listening on the configured address — the held-reservation
	// handoff (cluster.ReserveAddrs) that closes the release-then-rebind
	// race of address pre-allocation. The peer takes ownership.
	Listener net.Listener
	// Reconnect makes the mesh survive peer-process crashes: a send onto a
	// dead outbound link drops the frame (counted by LostSends) and redials
	// in the background instead of surfacing a sticky error, and an inbound
	// handshake re-pinning an already-pinned link replaces the dead
	// connection. Dropping is only sound under a recovery protocol that
	// re-executes everything in flight after the peer rejoins (the cluster
	// rejoin rollback); without one, leave Reconnect off so a dead peer
	// fails the run loudly.
	Reconnect bool
	// Chaos interposes seeded hostile network physics (latency, jitter,
	// reorder windows, scheduled partitions, slow links) on every
	// outbound link, local-to-local loops included. All processes of a
	// cluster must share one config (it lives in cluster.json) so the
	// scenario's physics are agreed. Nil means a polite network.
	Chaos *ChaosConfig
}

// Handshake layout: every mesh connection opens with a fixed 21-byte
// frame — 4-byte magic, 1-byte version, 8-byte from, 8-byte to — pinning
// the directed link the connection carries. The accepting side verifies
// the link exists in the topology and terminates at one of its local
// nodes, then answers with a 1-byte verdict. Data frames (wire.go) follow
// on accepted connections, dialer to accepter only.
const (
	peerMagic   = "NABp"
	peerVersion = 1

	peerAccept    = 0x00
	peerRejectBad = 0x01 // malformed or wrong-version handshake
	peerRejectPhy = 0x02 // link not in topology or not terminating here
)

// Peer is the multi-process Transport: this process hosts a subset of the
// topology's nodes, listens on one TCP address for inbound links, and
// dials one TCP connection per outgoing directed link whose receiver is
// hosted by a remote process (local-to-local links short-circuit in
// memory). Frames for links the handshake did not pin, or violating
// physics, are dropped on receipt.
//
// Trust model: the mesh assumes a trusted network boundary. The
// handshake pins each connection to one directed link but does not
// authenticate the dialer, and pacing is enforced on the send side —
// Byzantine behaviour is modelled at the protocol layer (core.Adversary
// hooks scripted in the shared cluster config), not by the transport. A
// deployment across an untrusted network needs an authenticated channel
// (e.g. mTLS) in front of the listeners.
type Peer struct {
	g      *graph.Directed
	locals map[graph.NodeID]bool
	addrs  map[graph.NodeID]string
	opt    PeerOptions

	listener net.Listener
	chaos    *chaosState

	mu      sync.Mutex
	inboxes map[graph.NodeID]chan *Message
	pacers  map[[2]graph.NodeID]*pacer
	recvd   map[[2]graph.NodeID]int64 // receive-side charges from remote peers
	conns   []net.Conn
	writers []*frameWriter
	inbound map[[2]graph.NodeID]net.Conn // live pinned inbound conn per link (Reconnect)
	relinks []*reconnLink                // outbound links for Reestablish (Reconnect)
	dropped int64
	lost    int64 // frames dropped on down outbound links (Reconnect)

	closed    chan struct{}
	closeOnce sync.Once
}

// NewPeer opens this process's mesh endpoint: a listener on listenAddr
// for inbound links, and inboxes for the local nodes. addrs must name the
// listen address of every node's hosting process (local nodes included).
func NewPeer(g *graph.Directed, localNodes []graph.NodeID, addrs map[graph.NodeID]string, listenAddr string, opt PeerOptions) (*Peer, error) {
	if opt.Buffer <= 0 {
		opt.Buffer = 4096
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 20 * time.Second
	}
	p := &Peer{
		g:       g.Clone(),
		locals:  map[graph.NodeID]bool{},
		addrs:   map[graph.NodeID]string{},
		opt:     opt,
		inboxes: map[graph.NodeID]chan *Message{},
		pacers:  map[[2]graph.NodeID]*pacer{},
		recvd:   map[[2]graph.NodeID]int64{},
		inbound: map[[2]graph.NodeID]net.Conn{},
		closed:  make(chan struct{}),
	}
	var err error
	if p.chaos, err = newChaosState(opt.Chaos, p.closed); err != nil {
		return nil, err
	}
	for _, v := range localNodes {
		if !p.g.HasNode(v) {
			return nil, fmt.Errorf("transport: local node %d not in topology", v)
		}
		p.locals[v] = true
		p.inboxes[v] = make(chan *Message, opt.Buffer)
	}
	if len(p.locals) == 0 {
		return nil, fmt.Errorf("transport: peer hosts no nodes")
	}
	for _, v := range p.g.Nodes() {
		a, ok := addrs[v]
		if !ok {
			return nil, fmt.Errorf("transport: no address for node %d", v)
		}
		p.addrs[v] = a
	}
	l := opt.Listener
	if l == nil {
		var err error
		l, err = net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: peer listen %s: %w", listenAddr, err)
		}
	}
	p.listener = l
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address the peer actually listens on (resolving an
// ephemeral ":0" request).
func (p *Peer) Addr() string { return p.listener.Addr().String() }

func (p *Peer) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		p.track(conn)
		go p.serveConn(conn)
	}
}

func (p *Peer) track(conn net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, conn)
	p.mu.Unlock()
}

// serveConn validates one inbound link handshake, then pumps its frames.
func (p *Peer) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(p.opt.DialTimeout))
	from, to, err := readHandshake(conn)
	verdict := byte(peerAccept)
	if err != nil {
		verdict = peerRejectBad
	} else if !p.g.HasEdge(from, to) || !p.locals[to] {
		verdict = peerRejectPhy
	}
	if _, err := conn.Write([]byte{verdict}); err != nil || verdict != peerAccept {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if p.opt.Reconnect {
		// Re-pin: a restarted peer process redials every link it owns; the
		// fresh connection replaces the dead one (whose reader exits when
		// we close it) so the link heals without tearing the mesh down.
		key := [2]graph.NodeID{from, to}
		p.mu.Lock()
		if old := p.inbound[key]; old != nil && old != conn {
			old.Close()
		}
		p.inbound[key] = conn
		p.mu.Unlock()
		defer func() {
			p.mu.Lock()
			if p.inbound[key] == conn {
				delete(p.inbound, key)
			}
			p.mu.Unlock()
		}()
	}
	br := bufio.NewReader(conn)
	for {
		m, err := ReadFrame(br)
		if err != nil {
			return // connection closed or garbage framing
		}
		// The handshake pinned the link; frames claiming any other
		// coordinates, or negative charges, violate physics.
		if m.From != from || m.To != to || m.Bits < 0 {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			mDropped.Inc()
			continue
		}
		if !m.Marker && m.Bits > 0 {
			p.mu.Lock()
			p.recvd[[2]graph.NodeID{from, to}] += m.Bits
			p.mu.Unlock()
		}
		select {
		case p.inboxes[to] <- m:
		case <-p.closed:
			return
		}
	}
}

func readHandshake(conn net.Conn) (from, to graph.NodeID, err error) {
	var buf [21]byte
	if _, err = io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, err
	}
	if string(buf[:4]) != peerMagic || buf[4] != peerVersion {
		return 0, 0, fmt.Errorf("transport: bad handshake magic/version")
	}
	from = graph.NodeID(int64(binary.BigEndian.Uint64(buf[5:13])))
	to = graph.NodeID(int64(binary.BigEndian.Uint64(buf[13:21])))
	return from, to, nil
}

func writeHandshake(conn net.Conn, from, to graph.NodeID) error {
	var buf [21]byte
	copy(buf[:4], peerMagic)
	buf[4] = peerVersion
	binary.BigEndian.PutUint64(buf[5:13], uint64(int64(from)))
	binary.BigEndian.PutUint64(buf[13:21], uint64(int64(to)))
	if _, err := conn.Write(buf[:]); err != nil {
		return err
	}
	var verdict [1]byte
	if _, err := io.ReadFull(conn, verdict[:]); err != nil {
		return err
	}
	if verdict[0] != peerAccept {
		return fmt.Errorf("transport: peer rejected link (%d,%d) with code %d", from, to, verdict[0])
	}
	return nil
}

// pacerFor returns the shared send-side token bucket of one link.
func (p *Peer) pacerFor(key [2]graph.NodeID) *pacer {
	p.mu.Lock()
	defer p.mu.Unlock()
	pc, ok := p.pacers[key]
	if !ok {
		pc = newPacer(p.g.Cap(key[0], key[1]), p.opt.TimeUnit, p.opt.Burst)
		p.pacers[key] = pc
	}
	return pc
}

// Dial implements Transport: the sender half of link (from, to). from
// must be hosted here; a remote receiver gets a dedicated TCP connection
// (retried with backoff while the cluster boots), a local one an
// in-memory enqueue. Both share the link's token bucket.
func (p *Peer) Dial(from, to graph.NodeID) (Link, error) {
	if !p.g.HasEdge(from, to) {
		return nil, fmt.Errorf("transport: no link (%d,%d) in topology", from, to)
	}
	if !p.locals[from] {
		return nil, fmt.Errorf("transport: node %d is not hosted by this process", from)
	}
	key := [2]graph.NodeID{from, to}
	lm := linkMetricsFor(from, to)
	if p.locals[to] {
		return p.chaos.wrap(&peerLoopLink{p: p, key: key, inbox: p.inboxes[to], pace: p.pacerFor(key), lm: lm}, from, to), nil
	}
	conn, fw, err := p.dialLink(from, to)
	if err != nil {
		return nil, err
	}
	if p.opt.Reconnect {
		l := &reconnLink{p: p, key: key, conn: conn, fw: fw, pace: p.pacerFor(key), lm: lm}
		p.mu.Lock()
		p.relinks = append(p.relinks, l)
		p.mu.Unlock()
		// Chaos wraps outside the reconnect machinery: a delayed frame
		// released after a redial (or a rejoin Reestablish) enters
		// whatever connection the link carries at that moment, exactly
		// like a frame that spent the outage in the air.
		return p.chaos.wrap(l, from, to), nil
	}
	return p.chaos.wrap(&peerLink{key: key, conn: conn, fw: fw, pace: p.pacerFor(key), lm: lm}, from, to), nil
}

// Reestablish force-redials every outbound remote link (Reconnect mode):
// the cluster rejoin protocol calls it during the rewind phase, because a
// connection to a peer that was killed and restarted can look healthy
// until the first post-resume write discovers the dead socket — and by
// then the frame is gone. Returns once every link carries a fresh,
// handshaken connection.
func (p *Peer) Reestablish() error {
	p.mu.Lock()
	links := append([]*reconnLink(nil), p.relinks...)
	p.mu.Unlock()
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l *reconnLink) {
			defer wg.Done()
			errs[i] = l.reestablish()
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// dialLink establishes (or re-establishes) the socket and coalescing
// writer of one outbound remote link.
func (p *Peer) dialLink(from, to graph.NodeID) (net.Conn, *frameWriter, error) {
	conn, err := DialRetry(p.addrs[to], p.opt.DialTimeout, p.closed)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: dial link (%d,%d): %w", from, to, err)
	}
	if err := writeHandshake(conn, from, to); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("transport: handshake link (%d,%d): %w", from, to, err)
	}
	fw := newFrameWriter(bufio.NewWriter(conn), p.closed)
	p.mu.Lock()
	p.conns = append(p.conns, conn)
	p.writers = append(p.writers, fw)
	p.mu.Unlock()
	mDials.Inc()
	return conn, fw, nil
}

// untrack retires a replaced connection and its writer — a flapping
// reconnect link must not grow the transport's teardown lists without
// bound.
func (p *Peer) untrack(conn net.Conn, fw *frameWriter) {
	if fw != nil {
		fw.retire()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, c := range p.conns {
		if c == conn {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
	for i, w := range p.writers {
		if w == fw {
			p.writers = append(p.writers[:i], p.writers[i+1:]...)
			break
		}
	}
}

// DialRetry connects to addr with jittered exponential backoff (25ms
// doubling to a 500ms cap) until timeout — the boot-order-independent
// dial every cluster endpoint needs, since peer processes come up in
// arbitrary order. A close of cancel (when non-nil) aborts the wait with
// ErrClosed.
//
// The jitter is seeded per (process, address, attempt): when n-1 peers
// all watch one restarted coordinator, their retry schedules decorrelate
// instead of stampeding the fresh listener's accept backlog in lockstep
// — and each process's schedule is still deterministic, so a replayed
// scenario dials on the same beat.
func DialRetry(addr string, timeout time.Duration, cancel <-chan struct{}) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		d := time.Until(deadline)
		if d < 10*time.Millisecond {
			// Floor the final attempt's budget: DialTimeout treats <= 0
			// as "no timeout", and a micro-budget dial cannot complete a
			// handshake anyway.
			d = 10 * time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", addr, d)
		if err == nil {
			return conn, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, err
		}
		// Wait the jittered backoff, but never past the deadline: when
		// now+backoff barely overshoots it, the link still deserves one
		// final attempt at the deadline rather than giving up early.
		wait := backoff + retryJitter(addr, attempt, backoff)
		if wait > remaining {
			wait = remaining
		}
		select {
		case <-time.After(wait):
		case <-cancel:
			return nil, ErrClosed
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// dialSalt decorrelates retry schedules across OS processes while staying
// fixed within one, so a given process's dial cadence is reproducible.
var dialSalt = splitmix64(uint64(os.Getpid()))

// retryJitter draws a deterministic jitter in [0, backoff) for one
// (process, address, attempt).
func retryJitter(addr string, attempt int, backoff time.Duration) time.Duration {
	h := dialSalt
	for i := 0; i < len(addr); i++ {
		h = splitmix64(h ^ uint64(addr[i]))
	}
	h = splitmix64(h ^ uint64(attempt))
	return time.Duration(unitFromHash(h) * float64(backoff))
}

// Recv implements Transport.
func (p *Peer) Recv(self graph.NodeID) (*Message, error) {
	inbox, ok := p.inboxes[self]
	if !ok {
		return nil, fmt.Errorf("transport: node %d is not hosted by this process", self)
	}
	select {
	case m := <-inbox:
		return m, nil
	case <-p.closed:
		select {
		case m := <-inbox:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// LinkBits implements Transport: send-side charges for local senders plus
// receive-side charges for remote-to-local links, i.e. every link this
// process can observe, each counted once.
func (p *Peer) LinkBits() map[[2]graph.NodeID]int64 {
	out := map[[2]graph.NodeID]int64{}
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, pc := range p.pacers {
		out[key] = pc.Bits()
	}
	for key, b := range p.recvd {
		out[key] += b
	}
	return out
}

// Dropped returns how many inbound frames violated their link pinning.
func (p *Peer) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// LostSends returns how many outbound frames were dropped on down links
// while Reconnect was healing them — work the rejoin rollback re-executes.
func (p *Peer) LostSends() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

func (p *Peer) countLost() {
	p.mu.Lock()
	p.lost++
	p.mu.Unlock()
	mSendsLost.Inc()
}

// Close implements Transport: signals every outbound link's coalescing
// writer, waits for their final drain and flush (bounded per writer — a
// writer wedged on a dead peer is unblocked by the connection close
// below), then closes the listener and every connection. Frames accepted
// by Send before Close reach the socket.
func (p *Peer) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.mu.Lock()
		writers := append([]*frameWriter(nil), p.writers...)
		p.mu.Unlock()
		for _, fw := range writers {
			fw.join(time.Second)
		}
		p.listener.Close()
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, c := range p.conns {
			c.Close()
		}
	})
	return nil
}

// peerLink is the sender half of one remote directed link.
type peerLink struct {
	key  [2]graph.NodeID
	conn net.Conn
	fw   *frameWriter
	pace *pacer
	lm   linkMetrics
}

// Send implements Link: pace, then queue onto the link's coalescing
// writer, which batches bursts into single syscalls.
func (l *peerLink) Send(m *Message) error {
	if m.From != l.key[0] || m.To != l.key[1] {
		return fmt.Errorf("transport: frame (%d,%d) on link (%d,%d)", m.From, m.To, l.key[0], l.key[1])
	}
	if m.Bits < 0 {
		return fmt.Errorf("transport: negative bit charge %d", m.Bits)
	}
	if !m.Marker && m.Bits > 0 {
		l.pace.charge(m.Bits)
	}
	if err := l.fw.enqueue(m); err != nil {
		return err
	}
	l.lm.count(m)
	return nil
}

// Close implements Link.
func (l *peerLink) Close() error { return l.conn.Close() }

// reconnLink is peerLink's self-healing variant (PeerOptions.Reconnect):
// a write failure marks the link down, drops the frame, and redials in
// the background until the peer's listener answers again. Senders never
// observe a peer crash as an error — frames emitted into the outage are
// counted (LostSends) and recovered by the cluster rollback, which
// re-executes every uncommitted instance once the peer rejoins.
type reconnLink struct {
	p    *Peer
	key  [2]graph.NodeID
	pace *pacer
	lm   linkMetrics

	mu      sync.Mutex
	conn    net.Conn
	fw      *frameWriter // nil while down
	dialing bool
}

// Send implements Link.
func (l *reconnLink) Send(m *Message) error {
	if m.From != l.key[0] || m.To != l.key[1] {
		return fmt.Errorf("transport: frame (%d,%d) on link (%d,%d)", m.From, m.To, l.key[0], l.key[1])
	}
	if m.Bits < 0 {
		return fmt.Errorf("transport: negative bit charge %d", m.Bits)
	}
	if !m.Marker && m.Bits > 0 {
		l.pace.charge(m.Bits)
	}
	select {
	case <-l.p.closed:
		return ErrClosed
	default:
	}
	l.mu.Lock()
	fw := l.fw
	l.mu.Unlock()
	if fw != nil {
		err := fw.enqueue(m)
		if err == nil {
			l.lm.count(m)
			return nil
		}
		if err == ErrClosed {
			return err
		}
		l.markDown(fw)
	}
	l.p.countLost()
	return nil
}

// markDown retires a failed writer and starts (at most one) background
// redial.
func (l *reconnLink) markDown(failed *frameWriter) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fw != failed {
		return // another Send already retired it
	}
	conn := l.conn
	l.fw = nil
	l.conn = nil
	if conn != nil {
		conn.Close()
	}
	l.p.untrack(conn, failed)
	reconnLog.Info("link-down", "link", linkString(l.key))
	if !l.dialing {
		l.dialing = true
		go l.redial()
	}
}

// redial re-establishes the link, retrying until the transport closes.
// The retry beat is jittered like DialRetry's: every outbound link of
// every survivor redials a crashed peer, and identical 100ms beats would
// hammer the restarted listener in synchronized waves.
func (l *reconnLink) redial() {
	for attempt := 0; ; attempt++ {
		conn, fw, err := l.p.dialLink(l.key[0], l.key[1])
		if err == nil {
			mRedials.Inc()
			reconnLog.Info("link-redialed", "link", linkString(l.key))
			l.mu.Lock()
			l.conn, l.fw, l.dialing = conn, fw, false
			l.mu.Unlock()
			return
		}
		pause := 100*time.Millisecond + retryJitter(linkString(l.key), attempt, 100*time.Millisecond)
		select {
		case <-l.p.closed:
			l.mu.Lock()
			l.dialing = false
			l.mu.Unlock()
			return
		case <-time.After(pause):
		}
	}
}

// reestablish retires the link's pre-existing connection —
// healthy-looking or not — and dials a fresh one synchronously. If a
// background redial is in flight (or completes while we wait), its
// result IS adopted: that dial succeeded against a live listener, so a
// second handshake would be redundant.
func (l *reconnLink) reestablish() error {
	entryFw := func() *frameWriter {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.fw
	}()
	for {
		l.mu.Lock()
		if l.dialing {
			l.mu.Unlock()
			select {
			case <-l.p.closed:
				return ErrClosed
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		if l.fw != nil && l.fw != entryFw {
			// A redial installed a fresh connection after we entered:
			// adopt it.
			l.mu.Unlock()
			return nil
		}
		oldConn, oldFw := l.conn, l.fw
		if oldConn != nil {
			oldConn.Close()
		}
		l.conn, l.fw = nil, nil
		l.dialing = true
		l.mu.Unlock()
		if oldConn != nil || oldFw != nil {
			l.p.untrack(oldConn, oldFw)
		}
		conn, fw, err := l.p.dialLink(l.key[0], l.key[1])
		l.mu.Lock()
		l.dialing = false
		if err != nil {
			l.mu.Unlock()
			return err
		}
		l.conn, l.fw = conn, fw
		l.mu.Unlock()
		mRedials.Inc()
		reconnLog.Debug("link-reestablished", "link", linkString(l.key))
		return nil
	}
}

// Close implements Link.
func (l *reconnLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		return l.conn.Close()
	}
	return nil
}

// peerLoopLink is the sender half of a local-to-local link: same pacing
// and accounting, no socket.
type peerLoopLink struct {
	p     *Peer
	key   [2]graph.NodeID
	inbox chan *Message
	pace  *pacer
	lm    linkMetrics
}

// Send implements Link.
func (l *peerLoopLink) Send(m *Message) error {
	if m.From != l.key[0] || m.To != l.key[1] {
		return fmt.Errorf("transport: frame (%d,%d) on link (%d,%d)", m.From, m.To, l.key[0], l.key[1])
	}
	if m.Bits < 0 {
		return fmt.Errorf("transport: negative bit charge %d", m.Bits)
	}
	if !m.Marker && m.Bits > 0 {
		l.pace.charge(m.Bits)
	}
	select {
	case l.inbox <- m:
		l.lm.count(m)
		return nil
	case <-l.p.closed:
		return ErrClosed
	}
}

// Close implements Link: link state is owned by the transport.
func (l *peerLoopLink) Close() error { return nil }
