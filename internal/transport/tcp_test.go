package transport

import (
	"net"
	"testing"
	"time"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/topo"
)

func TestTCPRoundTrip(t *testing.T) {
	g := topo.Fig1a()
	tr, err := NewTCP(g)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, err := tr.Dial(2, 5); err == nil {
		t.Error("dialing a non-link succeeded")
	}
	l12, err := tr.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l12.Close()

	sent := []*Message{
		{Instance: 1, Step: 1, From: 1, To: 2, Bits: 13, Body: core.Phase1Msg{
			Tree: 0, Block: core.BitChunk{Bytes: []byte{0xab, 0xcd}, BitLen: 13},
		}},
		{Instance: 1, Step: 2, From: 1, To: 2, Bits: 128, Body: core.EqMsg{Symbols: []gf.Elem{9, 10}}},
		{Instance: 1, Step: 2, From: 1, To: 2, Marker: true},
	}
	for _, m := range sent {
		if err := l12.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		got, err := tr.Recv(2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Step != want.Step || got.Marker != want.Marker || !bodiesEqual(want.Body, got.Body) {
			t.Errorf("frame %d mismatch: got %+v", i, got)
		}
	}
	if got := tr.LinkBits()[[2]graph.NodeID{1, 2}]; got != 141 {
		t.Errorf("link (1,2) accounted %d bits, want 141", got)
	}
}

func TestTCPDropsForgedFrames(t *testing.T) {
	g := topo.Fig1a()
	tr, err := NewTCP(g)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// A raw connection bypassing Link validation: frames claiming a
	// non-existent link or the wrong recipient must be dropped.
	conn, err := net.Dial("tcp", tr.Addr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	forged := []*Message{
		{From: 2, To: 4, Bits: 8, Body: []byte("wrong recipient")}, // addressed to 4, delivered at 2
		{From: 1, To: 2, Bits: -5, Body: []byte("negative bits")},
	}
	for _, m := range forged {
		if err := WriteFrame(conn, m); err != nil {
			t.Fatal(err)
		}
	}
	legit := &Message{From: 1, To: 2, Bits: 8, Body: []byte("ok")}
	if err := WriteFrame(conn, legit); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Recv(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bodiesEqual(legit.Body, got.Body) {
		t.Errorf("received %+v, want the legitimate frame", got)
	}
	deadline := time.Now().Add(time.Second)
	for tr.Dropped() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := tr.Dropped(); d != 2 {
		t.Errorf("dropped %d forged frames, want 2", d)
	}
}
