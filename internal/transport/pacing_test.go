package transport

import (
	"testing"
	"time"
)

// TestPacerBitsPromptDuringStall is the regression test for the lock held
// across the drain sleep: a frame big enough to stall the bucket for over
// a second must not block Bits() (or a concurrent charge) for the
// duration. Before the debt model, this test hung on the mutex until the
// big frame finished draining.
func TestPacerBitsPromptDuringStall(t *testing.T) {
	// 1000 bits per 100ms; 15_000 bits stalls ~1.4s past the burst.
	p := newPacer(1000, 100*time.Millisecond, 1000)
	started := make(chan struct{})
	go func() {
		close(started)
		p.charge(15_000)
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the charge take its debt and enter the sleep
	t0 := time.Now()
	got := p.Bits()
	if el := time.Since(t0); el > 200*time.Millisecond {
		t.Fatalf("Bits() blocked %v behind a draining frame", el)
	}
	if got != 15_000 {
		t.Fatalf("Bits() = %d during the stall, want 15000 (charge is unconditional)", got)
	}
}

// TestPacerDebtSerializes checks the accounting the debt model must
// preserve: two over-budget frames back to back still pay for each other —
// the second frame's deficit includes the first frame's debt, so total
// wall time stays one-frame-at-a-time even though the lock is released.
func TestPacerDebtSerializes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// 10_000 bits per 100ms; burst 1 bit so every frame pays in full.
	p := newPacer(10_000, 100*time.Millisecond, 1)
	t0 := time.Now()
	p.charge(10_000) // ~100ms
	p.charge(10_000) // ~100ms more, inheriting the debt
	if el := time.Since(t0); el < 150*time.Millisecond {
		t.Fatalf("two full-budget frames drained in %v — debt not inherited", el)
	}
}
