package transport

import (
	"sync"
	"time"
)

// pacer is one directed link's token bucket and cumulative bit meter:
// charging b bits on a link of capacity capBits bits per TimeUnit
// occupies the link for b/capBits time units — the paper's capacity
// charge made physical. A zero TimeUnit disables timing (accounting
// only).
//
// One-frame-at-a-time accounting is kept by debt, not by the mutex: a
// frame that overdraws the bucket takes the tokens negative and sleeps
// its own drain time *outside* the lock, so a later frame's deficit
// already includes every earlier frame's debt and serializes behind it —
// while Bits() and concurrent charges stay responsive during the stall.
// (The lock used to be held across the sleep; a chaos-stalled slow link
// then blocked Bits() and every concurrent sender for the full wait.)
type pacer struct {
	capBits int64
	tu      time.Duration
	burst   int64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	bits   int64
}

func newPacer(capBits int64, tu time.Duration, burst int64) *pacer {
	if burst <= 0 {
		burst = capBits
	}
	return &pacer{capBits: capBits, tu: tu, burst: burst, tokens: float64(burst), last: time.Now()}
}

// charge accounts bits against the link and sleeps while it drains. The
// wait is computed under the lock but slept outside it.
func (p *pacer) charge(bits int64) {
	p.mu.Lock()
	p.bits += bits
	if p.tu <= 0 {
		p.mu.Unlock()
		return
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() / p.tu.Seconds() * float64(p.capBits)
	if b := float64(p.burst); p.tokens > b {
		p.tokens = b
	}
	p.last = now
	deficit := float64(bits) - p.tokens
	// Charge unconditionally; a deficit leaves the bucket in debt, which
	// the next frame's deficit inherits — that is what serializes frames
	// on the wire without holding the lock across the sleep.
	p.tokens -= float64(bits)
	p.mu.Unlock()
	if deficit > 0 {
		wait := time.Duration(deficit / float64(p.capBits) * float64(p.tu))
		mPacerStall.Observe(wait.Seconds())
		time.Sleep(wait)
	}
}

// Bits returns the cumulative capacity charge.
func (p *pacer) Bits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bits
}
