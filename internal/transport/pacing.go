package transport

import (
	"sync"
	"time"
)

// pacer is one directed link's token bucket and cumulative bit meter:
// charging b bits on a link of capacity capBits bits per TimeUnit
// occupies the link for b/capBits time units — the paper's capacity
// charge made physical. A zero TimeUnit disables timing (accounting
// only). Holding the mutex across the sleep is deliberate: a link
// transmits one frame at a time, so concurrent senders queue behind each
// other exactly as frames on a wire would.
type pacer struct {
	capBits int64
	tu      time.Duration
	burst   int64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	bits   int64
}

func newPacer(capBits int64, tu time.Duration, burst int64) *pacer {
	if burst <= 0 {
		burst = capBits
	}
	return &pacer{capBits: capBits, tu: tu, burst: burst, tokens: float64(burst), last: time.Now()}
}

// charge accounts bits against the link and sleeps while it drains.
func (p *pacer) charge(bits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bits += bits
	if p.tu <= 0 {
		return
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() / p.tu.Seconds() * float64(p.capBits)
	if b := float64(p.burst); p.tokens > b {
		p.tokens = b
	}
	p.last = now
	if deficit := float64(bits) - p.tokens; deficit > 0 {
		wait := time.Duration(deficit / float64(p.capBits) * float64(p.tu))
		mPacerStall.Observe(wait.Seconds())
		time.Sleep(wait)
		p.tokens = 0
		p.last = time.Now()
	} else {
		p.tokens -= float64(bits)
	}
}

// Bits returns the cumulative capacity charge.
func (p *pacer) Bits() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bits
}
