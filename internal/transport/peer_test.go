package transport_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"nab/internal/graph"
	"nab/internal/topo"
	"nab/internal/transport"
)

// freeAddrs reserves n loopback addresses for a test mesh.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l.Addr().String()
		l.Close()
	}
	return out
}

// twoPeers builds a K3 mesh hosted by two endpoints: {1,2} and {3}.
func twoPeers(t *testing.T, opt transport.PeerOptions) (*transport.Peer, *transport.Peer) {
	t.Helper()
	g := topo.CompleteBi(3, 2)
	addrs := freeAddrs(t, 2)
	addrMap := map[graph.NodeID]string{1: addrs[0], 2: addrs[0], 3: addrs[1]}
	a, err := transport.NewPeer(g, []graph.NodeID{1, 2}, addrMap, addrs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.NewPeer(g, []graph.NodeID{3}, addrMap, addrs[1], opt)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestPeerMeshDelivery(t *testing.T) {
	a, b := twoPeers(t, transport.PeerOptions{})

	// Remote link (1,3): frames cross a real socket, in order.
	l13, err := a.Dial(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l13.Send(&transport.Message{Instance: 1, Step: uint32(i), From: 1, To: 3, Bits: 8, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := b.Recv(3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Step != uint32(i) || !bytes.Equal(m.Body.([]byte), []byte{byte(i)}) {
			t.Fatalf("frame %d arrived out of order or corrupted: %+v", i, m)
		}
	}

	// Local link (1,2): in-memory shortcut with the same semantics.
	l12, err := a.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l12.Send(&transport.Message{From: 1, To: 2, Bits: 16, Body: []byte("xy")}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(2); err != nil || m.From != 1 {
		t.Fatalf("local delivery failed: %v, %+v", err, m)
	}

	// Accounting: sender side for (1,3) and (1,2); receive side on b.
	if bits := a.LinkBits()[[2]graph.NodeID{1, 3}]; bits != 40 {
		t.Errorf("sender accounted %d bits on (1,3), want 40", bits)
	}
	if bits := b.LinkBits()[[2]graph.NodeID{1, 3}]; bits != 40 {
		t.Errorf("receiver accounted %d bits on (1,3), want 40", bits)
	}
	if bits := a.LinkBits()[[2]graph.NodeID{1, 2}]; bits != 16 {
		t.Errorf("sender accounted %d bits on (1,2), want 16", bits)
	}
}

func TestPeerPhysicsEnforcement(t *testing.T) {
	a, b := twoPeers(t, transport.PeerOptions{})

	// Dialing a link the topology lacks, or from a non-local node, fails.
	if _, err := a.Dial(1, 1); err == nil {
		t.Error("self-loop dial succeeded")
	}
	if _, err := a.Dial(3, 1); err == nil {
		t.Error("dial from remotely-hosted node succeeded")
	}

	// A connection's frames are pinned to its handshake link: claiming
	// other coordinates is dropped on receipt.
	l, err := a.Dial(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(&transport.Message{From: 1, To: 3, Bits: 8}); err == nil {
		t.Error("link accepted a frame with forged sender")
	}
	if err := l.Send(&transport.Message{From: 2, To: 3, Bits: 8, Body: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(3); err != nil || m.From != 2 {
		t.Fatalf("legitimate frame lost: %v %+v", err, m)
	}
	if d := b.Dropped(); d != 0 {
		t.Errorf("unexpected receiver drops: %d", d)
	}
}

func TestPeerHandshakeRejects(t *testing.T) {
	_, b := twoPeers(t, transport.PeerOptions{})

	// Garbage handshake: the accepter answers with a non-zero verdict.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage-handshake-bytes__")); err != nil {
		t.Fatal(err)
	}
	verdict := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(verdict); err != nil {
		t.Fatalf("no verdict for bad handshake: %v", err)
	}
	if verdict[0] == 0 {
		t.Error("bad handshake accepted")
	}

	// A link not terminating at the accepter's locals is rejected too:
	// node 2 lives on peer A, so handshaking (1,2) at B must fail.
	g := topo.CompleteBi(3, 2)
	addrMap := map[graph.NodeID]string{1: b.Addr(), 2: b.Addr(), 3: b.Addr()}
	rogue, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap, "127.0.0.1:0", transport.PeerOptions{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	if _, err := rogue.Dial(1, 2); err == nil {
		t.Error("peer accepted a link for a node it does not host")
	}
}

func TestPeerDialRetryWhileBooting(t *testing.T) {
	g := topo.CompleteBi(2, 1)
	addrs := freeAddrs(t, 2)
	addrMap := map[graph.NodeID]string{1: addrs[0], 2: addrs[1]}
	a, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap, addrs[0], transport.PeerOptions{DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Dial before the remote peer exists; bring it up shortly after.
	errCh := make(chan error, 1)
	var late *transport.Peer
	go func() {
		time.Sleep(300 * time.Millisecond)
		p, err := transport.NewPeer(g, []graph.NodeID{2}, addrMap, addrs[1], transport.PeerOptions{})
		late = p
		errCh <- err
	}()
	l, err := a.Dial(1, 2)
	if err != nil {
		t.Fatalf("dial did not survive the boot race: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := l.Send(&transport.Message{From: 1, To: 2, Bits: 8, Body: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	if m, err := late.Recv(2); err != nil || m.Bits != 8 {
		t.Fatalf("frame across late-boot link lost: %v %+v", err, m)
	}
}

func TestPeerPacingOnTheWire(t *testing.T) {
	// Capacity 2 bits per 25ms time unit: a 50-bit frame occupies the
	// link for 25 time units. Sending two after the free burst must take
	// at least ~one full drain.
	g := topo.CompleteBi(2, 2)
	addrs := freeAddrs(t, 2)
	addrMap := map[graph.NodeID]string{1: addrs[0], 2: addrs[1]}
	opt := transport.PeerOptions{TimeUnit: 10 * time.Millisecond}
	a, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap, addrs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.NewPeer(g, []graph.NodeID{2}, addrMap, addrs[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	l, err := a.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := l.Send(&transport.Message{From: 1, To: 2, Bits: 10, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Burst covers the first 2 bits... capacity is 2 bits/unit with a
	// 2-bit default burst: 30 bits sent => ~(30-2)/2 = 14 units = 140ms.
	// Accept half to stay robust under CI scheduling noise.
	if elapsed < 70*time.Millisecond {
		t.Errorf("three paced sends finished in %v; pacing is not biting", elapsed)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Recv(2); err != nil {
			t.Fatal(err)
		}
	}
}
