// Package transport provides pluggable point-to-point message transports
// for the concurrent NAB runtime (internal/runtime): real per-link message
// channels replacing the lockstep simulator's in-memory delivery.
//
// A Transport exposes the paper's network model as an actual substrate:
// nodes may communicate only over the directed links of the topology, each
// link is FIFO, and every transmitted bit is charged against the link —
// optionally enforced in real time by per-link token-bucket pacing that
// reproduces the paper's capacity charge bits/z_e (a b-bit frame on a link
// of capacity z_e occupies it for b/z_e time units).
//
// Three implementations ship:
//
//   - Chan: an in-process goroutine/channel bus, the default substrate for
//     the pipelined runtime and for tests;
//   - TCP: one loopback TCP connection per directed link with
//     encoding/binary wire framing (see wire.go), the realistic-serving
//     substrate used by cmd/nabserve;
//   - Peer: the multi-process full-mesh used by cluster deployments, with
//     handshake-pinned links and optional crash-healing reconnects.
//
// All keep per-link bit accounting, so aggregate utilization can be
// compared against capacity.Report's bounds, and all can interpose the
// seeded hostile-network physics of ChaosConfig (latency, jitter, reorder
// windows, scheduled asymmetric partitions, slow links) for scenario
// testing.
package transport

import (
	"errors"

	"nab/internal/graph"
)

// Message is one frame on a directed link. Frames are tagged with the
// runtime's pipelining coordinates (Instance, Step) so multiple NAB
// instances can share the links concurrently.
type Message struct {
	// Instance identifies the runtime launch this frame belongs to.
	Instance uint64
	// Step is the absolute delivery step within the instance's execution
	// (the runtime's cross-phase round counter).
	Step uint32
	From graph.NodeID
	To   graph.NodeID
	// Marker marks an end-of-step control frame: "From has emitted all of
	// its step-Step messages on this link". Markers carry no payload and
	// are never charged against link capacity.
	Marker bool
	// Bits is the information-theoretic size charged against the link
	// capacity (the paper charges protocol content, not framing).
	Bits int64
	// Body is the protocol payload: core.Phase1Msg, core.EqMsg,
	// relay.Packet, []byte, or nil for markers. Wire transports encode it
	// with the codec in wire.go.
	Body any
}

// Link is the sender half of one directed link. A Link is FIFO: frames
// arrive at the remote node in Send order. Send may block while the link's
// token bucket drains (pacing) but is safe for concurrent use.
//
// Ordering invariant: the runtime genuinely depends on FIFO only *within*
// each (link, instance) stream. An end-of-step marker promises that its
// instance's earlier emissions on the link are already in flight ahead of
// it — the receiving mailbox consumes a step the moment its markers are
// in, so a data frame reordered behind its own marker would be silently
// lost (see mailbox.await in internal/runtime/engine.go). Cross-instance
// and cross-link arrival order is free: frames are buffered per
// (instance, step) and instances demultiplex independently. The chaos
// layer (chaos.go) exploits exactly this slack — it reorders across
// instances while clamping per-instance FIFO — and the Peer mesh's
// 21-byte handshake is pinned the same way: it must precede the data
// frames of its connection, never reordered behind them.
type Link interface {
	Send(m *Message) error
	Close() error
}

// Transport is a point-to-point substrate over a fixed capacitated
// topology.
type Transport interface {
	// Dial opens the sender half of directed link (from, to). Dialing a
	// link absent from the topology fails: physics forbids it.
	Dial(from, to graph.NodeID) (Link, error)
	// Recv blocks until the next frame addressed to self arrives, in
	// arrival order across all of self's in-links. It returns ErrClosed
	// after Close.
	Recv(self graph.NodeID) (*Message, error)
	// LinkBits snapshots the cumulative per-link capacity charges in bits
	// (markers and framing excluded).
	LinkBits() map[[2]graph.NodeID]int64
	Close() error
}

// ErrClosed is returned by Recv and Send after the transport closes.
var ErrClosed = errors.New("transport: closed")
