package transport

import (
	"strconv"

	"nab/internal/graph"
	"nab/internal/metrics"
	"nab/internal/obs"
)

// reconnLog narrates mesh-link healing (down, redialed, reestablished);
// enabled by NAB_TRANSPORT_DEBUG or the rejoin switch, since reconnects
// almost always accompany a rollback round.
var reconnLog = obs.New("transport", "NAB_TRANSPORT_DEBUG", "NAB_REJOIN_DEBUG")

// Wire-layer instruments. Per-link counters are resolved once at Dial
// time (linkMetricsFor) and cached inside the link, so Send performs only
// atomic increments.
var (
	mFramesSent = metrics.NewCounterVec("nab_transport_frames_sent_total",
		"Frames sent per directed link.", "link")
	mLinkBits = metrics.NewCounterVec("nab_transport_link_bits_total",
		"Capacity-charged bits sent per directed link.", "link")
	mFlushes = metrics.NewCounter("nab_transport_flushes_total",
		"Coalesced flushes by frame writers (one per syscall burst).")
	mWriterFrames = metrics.NewCounter("nab_transport_writer_frames_total",
		"Frames drained through coalescing frame writers.")
	mDials = metrics.NewCounter("nab_transport_dials_total",
		"Outbound link connections established, including reconnects.")
	mRedials = metrics.NewCounter("nab_transport_redials_total",
		"Mesh link redials: background reconnects plus forced reestablishments.")
	mDropped = metrics.NewCounter("nab_transport_frames_dropped_total",
		"Inbound frames dropped for violating link pinning or physics.")
	mSendsLost = metrics.NewCounter("nab_transport_sends_lost_total",
		"Outbound frames dropped on down links while reconnect healed them.")
	mPacerStall = metrics.NewHistogram("nab_transport_pacer_stall_seconds",
		"Time senders spent stalled in link token buckets.", metrics.LatencyBuckets)
)

// linkMetrics is one link's pair of hot-path counters.
type linkMetrics struct {
	frames *metrics.Counter
	bits   *metrics.Counter
}

// linkString renders a directed link as its metric/log label, "1->2".
func linkString(key [2]graph.NodeID) string {
	return strconv.Itoa(int(key[0])) + "->" + strconv.Itoa(int(key[1]))
}

// linkMetricsFor resolves (allocating if first use) the counters of the
// directed link from->to.
func linkMetricsFor(from, to graph.NodeID) linkMetrics {
	label := linkString([2]graph.NodeID{from, to})
	return linkMetrics{frames: mFramesSent.With(label), bits: mLinkBits.With(label)}
}

// count records one accepted frame.
func (lm linkMetrics) count(m *Message) {
	lm.frames.Inc()
	if !m.Marker && m.Bits > 0 {
		lm.bits.Add(m.Bits)
	}
}
