package transport

import (
	"sync"
	"testing"
	"time"

	"nab/internal/graph"
	"nab/internal/sim"
	"nab/internal/topo"
)

func TestChanFIFOAndAccounting(t *testing.T) {
	g := topo.Fig1a()
	tr := NewChan(g, ChanOptions{})
	defer tr.Close()

	l12, err := tr.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Dial(2, 5); err == nil {
		t.Error("dialing a non-link succeeded")
	}
	for i := 0; i < 10; i++ {
		if err := l12.Send(&Message{From: 1, To: 2, Step: uint32(i), Bits: 8, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := tr.Recv(2)
		if err != nil {
			t.Fatal(err)
		}
		if int(m.Step) != i {
			t.Fatalf("FIFO violated: got step %d at position %d", m.Step, i)
		}
	}
	if got := tr.LinkBits()[[2]graph.NodeID{1, 2}]; got != 80 {
		t.Errorf("link (1,2) accounted %d bits, want 80", got)
	}
	if err := l12.Send(&Message{From: 2, To: 1}); err == nil {
		t.Error("frame with wrong endpoints accepted")
	}

	tr.Close()
	if _, err := tr.Recv(2); err != ErrClosed {
		t.Errorf("Recv after close: %v, want ErrClosed", err)
	}
}

// TestChanPacingMatchesSimAccounting drives identical per-link loads
// through (a) the sim PhaseStats accounting and (b) the paced transport on
// the Fig. 1(a) graph, and checks that real elapsed time matches the
// model's cut-through phase time within tolerance.
func TestChanPacingMatchesSimAccounting(t *testing.T) {
	g := topo.Fig1a()
	const timeUnit = 2 * time.Millisecond
	const perLinkUnits = 40 // model time units of traffic per link
	const frames = 8

	// The model accounting for the load we are about to replay.
	ps := sim.NewPhaseStats("pacing", g, 1)
	type load struct {
		from, to graph.NodeID
		bits     int64
	}
	var loads []load
	for _, e := range g.Edges() {
		per := e.Cap * perLinkUnits / frames
		for i := 0; i < frames; i++ {
			loads = append(loads, load{e.From, e.To, per})
		}
		for i := 0; i < frames; i++ {
			ps.Charge(0, e.From, e.To, per)
		}
	}
	wantUnits := ps.CutThroughTime()
	if wantUnits != perLinkUnits {
		t.Fatalf("load construction: cut-through %v units, want %v", wantUnits, perLinkUnits)
	}

	tr := NewChan(g, ChanOptions{TimeUnit: timeUnit})
	defer tr.Close()
	// Drain all inboxes so senders never block on delivery.
	var drain sync.WaitGroup
	for _, v := range g.Nodes() {
		drain.Add(1)
		go func(v graph.NodeID) {
			defer drain.Done()
			for {
				if _, err := tr.Recv(v); err != nil {
					return
				}
			}
		}(v)
	}

	byLink := map[[2]graph.NodeID][]load{}
	for _, l := range loads {
		key := [2]graph.NodeID{l.from, l.to}
		byLink[key] = append(byLink[key], l)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for key, ll := range byLink {
		link, err := tr.Dial(key[0], key[1])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(link Link, ll []load) {
			defer wg.Done()
			for _, l := range ll {
				link.Send(&Message{From: l.from, To: l.to, Bits: l.bits})
			}
		}(link, ll)
	}
	wg.Wait()
	elapsed := time.Since(start)
	tr.Close()
	drain.Wait()

	want := time.Duration(wantUnits * float64(timeUnit))
	// The token bucket starts full (one time unit of burst per link) and
	// scheduling adds noise; accept a generous band around the model time.
	lo, hi := want*6/10, want*18/10
	if elapsed < lo || elapsed > hi {
		t.Errorf("paced replay took %v, model cut-through time is %v (accept [%v, %v])", elapsed, want, lo, hi)
	}

	// The transport's capacity accounting must agree with the model's.
	got := tr.LinkBits()
	for key, bits := range ps.BitsPerLink {
		if got[key] != bits {
			t.Errorf("link %v: transport accounted %d bits, sim accounted %d", key, got[key], bits)
		}
	}
}

func TestChanPacingSerializesLink(t *testing.T) {
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 10) // 10 bits per time unit
	const timeUnit = time.Millisecond
	tr := NewChan(g, ChanOptions{TimeUnit: timeUnit})
	defer tr.Close()

	go func() {
		for {
			if _, err := tr.Recv(2); err != nil {
				return
			}
		}
	}()
	link, err := tr.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent senders share the one token bucket: 2 x 20 frames x
	// 10 bits = 400 bits => 40 time units minus the initial burst.
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				link.Send(&Message{From: 1, To: 2, Bits: 10})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if min := 25 * timeUnit; elapsed < min {
		t.Errorf("concurrent senders finished in %v; shared token bucket should enforce >= %v", elapsed, min)
	}
}
