package transport

import (
	"fmt"
	"sync"
	"time"

	"nab/internal/graph"
)

// ChanOptions tunes the in-process bus.
type ChanOptions struct {
	// TimeUnit is the real-time duration of one model time unit. When
	// positive, every link paces sends with a token bucket of rate z_e
	// bits per TimeUnit, so a b-bit frame occupies the link for
	// b/z_e time units — the paper's capacity charge made physical.
	// Zero disables pacing (accounting only), the right setting for
	// throughput benchmarks.
	TimeUnit time.Duration
	// Burst is the token bucket depth in bits; 0 defaults to one
	// TimeUnit's worth (z_e bits).
	Burst int64
	// Buffer is the per-node inbox depth; 0 defaults to 4096 frames.
	Buffer int
	// Chaos interposes seeded hostile network physics (latency, jitter,
	// reorder windows, scheduled partitions, slow links) on every link.
	// Nil means a polite network. See ChaosConfig.
	Chaos *ChaosConfig
}

// Chan is the in-process Transport: one goroutine-safe FIFO per directed
// link, merged into per-node inboxes.
type Chan struct {
	g   *graph.Directed
	opt ChanOptions

	mu      sync.Mutex
	links   map[[2]graph.NodeID]*chanLink
	dialed  map[[2]graph.NodeID]Link // chaos-wrapped view handed to dialers
	inboxes map[graph.NodeID]chan *Message

	chaos    *chaosState
	chaosErr error

	closed    chan struct{}
	closeOnce sync.Once
}

// NewChan builds the bus over topology g. Nodes and links are fixed at
// construction; dialing outside the topology fails.
func NewChan(g *graph.Directed, opt ChanOptions) *Chan {
	if opt.Buffer <= 0 {
		opt.Buffer = 4096
	}
	t := &Chan{
		g:       g.Clone(),
		opt:     opt,
		links:   map[[2]graph.NodeID]*chanLink{},
		dialed:  map[[2]graph.NodeID]Link{},
		inboxes: map[graph.NodeID]chan *Message{},
		closed:  make(chan struct{}),
	}
	t.chaos, t.chaosErr = newChaosState(opt.Chaos, t.closed)
	for _, v := range t.g.Nodes() {
		t.inboxes[v] = make(chan *Message, opt.Buffer)
	}
	return t
}

// Dial implements Transport. Dialing the same link twice returns the same
// underlying link state, so the token bucket stays per-link no matter how
// many senders share it.
func (t *Chan) Dial(from, to graph.NodeID) (Link, error) {
	if !t.g.HasEdge(from, to) {
		return nil, fmt.Errorf("transport: no link (%d,%d) in topology", from, to)
	}
	if t.chaosErr != nil {
		return nil, t.chaosErr
	}
	key := [2]graph.NodeID{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.dialed[key]; ok {
		return l, nil
	}
	l := &chanLink{
		t:     t,
		key:   key,
		inbox: t.inboxes[to],
		pace:  newPacer(t.g.Cap(from, to), t.opt.TimeUnit, t.opt.Burst),
		lm:    linkMetricsFor(from, to),
	}
	t.links[key] = l
	// Chaos wraps outside the pacer: a delayed frame pays its capacity
	// charge when it finally enters the link. The wrapped view is cached
	// so repeat dialers share one seeded per-instance hash stream.
	wrapped := t.chaos.wrap(Link(l), from, to)
	t.dialed[key] = wrapped
	return wrapped, nil
}

// Recv implements Transport.
func (t *Chan) Recv(self graph.NodeID) (*Message, error) {
	t.mu.Lock()
	inbox, ok := t.inboxes[self]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: node %d not in topology", self)
	}
	select {
	case m := <-inbox:
		return m, nil
	case <-t.closed:
		// Drain what was already delivered before reporting closure.
		select {
		case m := <-inbox:
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

// LinkBits implements Transport.
func (t *Chan) LinkBits() map[[2]graph.NodeID]int64 {
	out := map[[2]graph.NodeID]int64{}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, l := range t.links {
		out[key] = l.pace.Bits()
	}
	return out
}

// Close implements Transport. In-flight Sends return ErrClosed.
func (t *Chan) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	return nil
}

// chanLink is one directed link: a token bucket (see pacer) in front of
// the recipient's inbox.
type chanLink struct {
	t     *Chan
	key   [2]graph.NodeID
	inbox chan *Message
	pace  *pacer
	lm    linkMetrics
}

// Send implements Link. The token bucket serializes the link: concurrent
// senders queue behind each other exactly as frames on a wire would.
func (l *chanLink) Send(m *Message) error {
	if m.From != l.key[0] || m.To != l.key[1] {
		return fmt.Errorf("transport: frame (%d,%d) on link (%d,%d)", m.From, m.To, l.key[0], l.key[1])
	}
	if m.Bits < 0 {
		return fmt.Errorf("transport: negative bit charge %d", m.Bits)
	}
	if !m.Marker && m.Bits > 0 {
		l.pace.charge(m.Bits)
	}
	select {
	case l.inbox <- m:
		l.lm.count(m)
		return nil
	case <-l.t.closed:
		return ErrClosed
	}
}

// Close implements Link. Link state is owned by the transport; closing a
// link is a no-op so other dialers of the same link are unaffected.
func (l *chanLink) Close() error { return nil }
