package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/relay"
)

// Wire format: every frame is a 4-byte big-endian length followed by a
// fixed header and a kind-tagged payload, all encoding/binary big-endian.
//
//	header: u64 instance | u32 step | i64 from | i64 to | u8 flags |
//	        i64 bits | u8 kind
//	kindNone:   (no payload; markers and nil bodies)
//	kindRaw:    raw bytes
//	kindPhase1: u32 tree | u32 bitlen | u32 nbytes | bytes
//	kindEq:     u32 count | count x u64 symbols
//	kindRelay:  i64 origin | i64 dest | i32 pathIdx | i32 hop |
//	            u32 idlen | msgID | u32 plen | payload
//
// These cover every body the NAB phases put on a link: Phase-1 tree blocks
// (core.Phase1Msg), Phase-2 equality-check symbol vectors (core.EqMsg),
// and relay path copies (relay.Packet) carrying both step-2.2 flag
// broadcasts and Phase-3 dispute-control transcripts.
const (
	kindNone   = 0
	kindRaw    = 1
	kindPhase1 = 2
	kindEq     = 3
	kindRelay  = 4

	flagMarker = 1 << 0

	// MaxFrameBytes bounds a decoded frame; larger claims are garbage.
	MaxFrameBytes = 1 << 26
)

// headerBytes is the fixed frame header plus the kind tag.
const headerBytes = 8 + 4 + 8 + 8 + 1 + 8 + 1

// encodedSize returns the exact encoded byte count of m (without the
// length prefix), so encode buffers never reallocate mid-encode. Unknown
// body types size as a bare header; Encode rejects them before writing.
func encodedSize(m *Message) int {
	n := headerBytes
	switch body := m.Body.(type) {
	case nil:
	case []byte:
		n += len(body)
	case core.Phase1Msg:
		n += 12 + len(body.Block.Bytes)
	case core.EqMsg:
		n += 4 + 8*len(body.Symbols)
	case relay.Packet:
		n += 8 + 8 + 4 + 4 + 4 + len(body.MsgID) + 4 + len(body.Payload)
	}
	return n
}

// Encode serializes m (without the length prefix). The buffer is sized
// exactly from the payload kind, so even the largest Phase-1 tree blocks
// encode with a single allocation.
func Encode(m *Message) ([]byte, error) {
	return appendMessage(make([]byte, 0, encodedSize(m)), m)
}

// appendMessage appends m's encoding to buf and returns the extended
// slice.
//
//nab:allocfree
func appendMessage(buf []byte, m *Message) ([]byte, error) {
	buf = binary.BigEndian.AppendUint64(buf, m.Instance)
	buf = binary.BigEndian.AppendUint32(buf, m.Step)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.From)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.To)))
	var flags byte
	if m.Marker {
		flags |= flagMarker
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Bits))

	switch body := m.Body.(type) {
	case nil:
		buf = append(buf, kindNone)
	case []byte:
		buf = append(buf, kindRaw)
		buf = append(buf, body...)
	case core.Phase1Msg:
		buf = append(buf, kindPhase1)
		buf = binary.BigEndian.AppendUint32(buf, uint32(body.Tree))
		buf = binary.BigEndian.AppendUint32(buf, uint32(body.Block.BitLen))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(body.Block.Bytes)))
		buf = append(buf, body.Block.Bytes...)
	case core.EqMsg:
		buf = append(buf, kindEq)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(body.Symbols)))
		for _, s := range body.Symbols {
			buf = binary.BigEndian.AppendUint64(buf, uint64(s))
		}
	case relay.Packet:
		buf = append(buf, kindRelay)
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(body.Origin)))
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(body.Dest)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(body.PathIdx)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(body.Hop)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(body.MsgID)))
		buf = append(buf, body.MsgID...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(body.Payload)))
		buf = append(buf, body.Payload...)
	default:
		return nil, fmt.Errorf("transport: cannot encode body type %T", m.Body)
	}
	return buf, nil
}

// Decode parses a frame produced by Encode.
func Decode(raw []byte) (*Message, error) {
	if len(raw) < headerBytes {
		return nil, fmt.Errorf("transport: frame too short (%d bytes)", len(raw))
	}
	pos := 0
	get64 := func() uint64 {
		v := binary.BigEndian.Uint64(raw[pos:])
		pos += 8
		return v
	}
	get32 := func() uint32 {
		v := binary.BigEndian.Uint32(raw[pos:])
		pos += 4
		return v
	}
	m := &Message{}
	m.Instance = get64()
	m.Step = get32()
	m.From = graph.NodeID(int64(get64()))
	m.To = graph.NodeID(int64(get64()))
	flags := raw[pos]
	pos++
	m.Marker = flags&flagMarker != 0
	m.Bits = int64(get64())
	kind := raw[pos]
	pos++

	rest := len(raw) - pos
	need := func(n int) error {
		if n < 0 || len(raw)-pos < n {
			return fmt.Errorf("transport: truncated frame (need %d, have %d)", n, len(raw)-pos)
		}
		return nil
	}
	switch kind {
	case kindNone:
		m.Body = nil
	case kindRaw:
		m.Body = append([]byte(nil), raw[pos:]...)
	case kindPhase1:
		if err := need(12); err != nil {
			return nil, err
		}
		tree := int(int32(get32()))
		bitLen := int(int32(get32()))
		nb := int(get32())
		if err := need(nb); err != nil {
			return nil, err
		}
		m.Body = core.Phase1Msg{
			Tree:  tree,
			Block: core.BitChunk{Bytes: append([]byte(nil), raw[pos:pos+nb]...), BitLen: bitLen},
		}
	case kindEq:
		if err := need(4); err != nil {
			return nil, err
		}
		count := int(get32())
		// Divide instead of multiplying: count*8 can overflow int on
		// 32-bit platforms, bypassing the bound for crafted frames.
		if count < 0 || count > (len(raw)-pos)/8 {
			return nil, fmt.Errorf("transport: truncated frame (%d symbols in %d bytes)", count, len(raw)-pos)
		}
		syms := make([]gf.Elem, count)
		for i := range syms {
			syms[i] = gf.Elem(get64())
		}
		m.Body = core.EqMsg{Symbols: syms}
	case kindRelay:
		if err := need(8 + 8 + 4 + 4 + 4); err != nil {
			return nil, err
		}
		var pkt relay.Packet
		pkt.Origin = graph.NodeID(int64(get64()))
		pkt.Dest = graph.NodeID(int64(get64()))
		pkt.PathIdx = int(int32(get32()))
		pkt.Hop = int(int32(get32()))
		idLen := int(get32())
		if err := need(idLen); err != nil {
			return nil, err
		}
		pkt.MsgID = string(raw[pos : pos+idLen])
		pos += idLen
		if err := need(4); err != nil {
			return nil, err
		}
		plen := int(get32())
		if err := need(plen); err != nil {
			return nil, err
		}
		pkt.Payload = append([]byte(nil), raw[pos:pos+plen]...)
		m.Body = pkt
	default:
		return nil, fmt.Errorf("transport: unknown payload kind %d (%d payload bytes)", kind, rest)
	}
	return m, nil
}

// AppendFrame appends the length-prefixed encoding of m to dst and returns
// the extended slice; on error dst is returned unchanged.
//
//nab:allocfree
func AppendFrame(dst []byte, m *Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	out, err := appendMessage(dst, m)
	if err != nil {
		return dst[:start], err
	}
	n := len(out) - start - 4
	if n > MaxFrameBytes {
		return dst[:start], fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(out[start:], uint32(n))
	return out, nil
}

// frameBufPool recycles encode and read scratch across frames; steady-state
// framing allocates only the decoded Message and its body. Oversized
// buffers are dropped rather than pooled so one giant frame does not pin
// its memory forever.
var frameBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 0, 512)
		return &buf
	},
}

const maxPooledBuf = 1 << 16

func putFrameBuf(bp *[]byte, buf []byte) {
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		frameBufPool.Put(bp)
	}
}

// WriteFrame writes the length-prefixed encoding of m to w as a single
// Write from a pooled buffer.
func WriteFrame(w io.Writer, m *Message) error {
	bp := frameBufPool.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], m)
	if err == nil {
		_, err = w.Write(buf)
	}
	putFrameBuf(bp, buf)
	return err
}

// ReadFrame reads one length-prefixed frame from r through a pooled
// scratch buffer (Decode copies every retained byte out of it).
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	bp := frameBufPool.Get().(*[]byte)
	raw := *bp
	if cap(raw) < int(n) {
		raw = make([]byte, n)
	} else {
		raw = raw[:n]
	}
	var m *Message
	_, err := io.ReadFull(r, raw)
	if err == nil {
		m, err = Decode(raw)
	}
	putFrameBuf(bp, raw)
	return m, err
}
