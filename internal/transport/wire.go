package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/relay"
)

// Wire format: every frame is a 4-byte big-endian length followed by a
// fixed header and a kind-tagged payload, all encoding/binary big-endian.
//
//	header: u64 instance | u32 step | i64 from | i64 to | u8 flags |
//	        i64 bits | u8 kind
//	kindNone:   (no payload; markers and nil bodies)
//	kindRaw:    raw bytes
//	kindPhase1: u32 tree | u32 bitlen | u32 nbytes | bytes
//	kindEq:     u32 count | count x u64 symbols
//	kindRelay:  i64 origin | i64 dest | i32 pathIdx | i32 hop |
//	            u32 idlen | msgID | u32 plen | payload
//
// These cover every body the NAB phases put on a link: Phase-1 tree blocks
// (core.Phase1Msg), Phase-2 equality-check symbol vectors (core.EqMsg),
// and relay path copies (relay.Packet) carrying both step-2.2 flag
// broadcasts and Phase-3 dispute-control transcripts.
const (
	kindNone   = 0
	kindRaw    = 1
	kindPhase1 = 2
	kindEq     = 3
	kindRelay  = 4

	flagMarker = 1 << 0

	// MaxFrameBytes bounds a decoded frame; larger claims are garbage.
	MaxFrameBytes = 1 << 26
)

// Encode serializes m (without the length prefix).
func Encode(m *Message) ([]byte, error) {
	buf := make([]byte, 0, 64)
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:8]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64(m.Instance)
	put32(m.Step)
	put64(uint64(int64(m.From)))
	put64(uint64(int64(m.To)))
	var flags byte
	if m.Marker {
		flags |= flagMarker
	}
	buf = append(buf, flags)
	put64(uint64(m.Bits))

	switch body := m.Body.(type) {
	case nil:
		buf = append(buf, kindNone)
	case []byte:
		buf = append(buf, kindRaw)
		buf = append(buf, body...)
	case core.Phase1Msg:
		buf = append(buf, kindPhase1)
		put32(uint32(body.Tree))
		put32(uint32(body.Block.BitLen))
		put32(uint32(len(body.Block.Bytes)))
		buf = append(buf, body.Block.Bytes...)
	case core.EqMsg:
		buf = append(buf, kindEq)
		put32(uint32(len(body.Symbols)))
		for _, s := range body.Symbols {
			put64(uint64(s))
		}
	case relay.Packet:
		buf = append(buf, kindRelay)
		put64(uint64(int64(body.Origin)))
		put64(uint64(int64(body.Dest)))
		put32(uint32(int32(body.PathIdx)))
		put32(uint32(int32(body.Hop)))
		put32(uint32(len(body.MsgID)))
		buf = append(buf, body.MsgID...)
		put32(uint32(len(body.Payload)))
		buf = append(buf, body.Payload...)
	default:
		return nil, fmt.Errorf("transport: cannot encode body type %T", m.Body)
	}
	return buf, nil
}

// Decode parses a frame produced by Encode.
func Decode(raw []byte) (*Message, error) {
	const header = 8 + 4 + 8 + 8 + 1 + 8 + 1
	if len(raw) < header {
		return nil, fmt.Errorf("transport: frame too short (%d bytes)", len(raw))
	}
	pos := 0
	get64 := func() uint64 {
		v := binary.BigEndian.Uint64(raw[pos:])
		pos += 8
		return v
	}
	get32 := func() uint32 {
		v := binary.BigEndian.Uint32(raw[pos:])
		pos += 4
		return v
	}
	m := &Message{}
	m.Instance = get64()
	m.Step = get32()
	m.From = graph.NodeID(int64(get64()))
	m.To = graph.NodeID(int64(get64()))
	flags := raw[pos]
	pos++
	m.Marker = flags&flagMarker != 0
	m.Bits = int64(get64())
	kind := raw[pos]
	pos++

	rest := len(raw) - pos
	need := func(n int) error {
		if n < 0 || len(raw)-pos < n {
			return fmt.Errorf("transport: truncated frame (need %d, have %d)", n, len(raw)-pos)
		}
		return nil
	}
	switch kind {
	case kindNone:
		m.Body = nil
	case kindRaw:
		m.Body = append([]byte(nil), raw[pos:]...)
	case kindPhase1:
		if err := need(12); err != nil {
			return nil, err
		}
		tree := int(int32(get32()))
		bitLen := int(int32(get32()))
		nb := int(get32())
		if err := need(nb); err != nil {
			return nil, err
		}
		m.Body = core.Phase1Msg{
			Tree:  tree,
			Block: core.BitChunk{Bytes: append([]byte(nil), raw[pos:pos+nb]...), BitLen: bitLen},
		}
	case kindEq:
		if err := need(4); err != nil {
			return nil, err
		}
		count := int(get32())
		// Divide instead of multiplying: count*8 can overflow int on
		// 32-bit platforms, bypassing the bound for crafted frames.
		if count < 0 || count > (len(raw)-pos)/8 {
			return nil, fmt.Errorf("transport: truncated frame (%d symbols in %d bytes)", count, len(raw)-pos)
		}
		syms := make([]gf.Elem, count)
		for i := range syms {
			syms[i] = gf.Elem(get64())
		}
		m.Body = core.EqMsg{Symbols: syms}
	case kindRelay:
		if err := need(8 + 8 + 4 + 4 + 4); err != nil {
			return nil, err
		}
		var pkt relay.Packet
		pkt.Origin = graph.NodeID(int64(get64()))
		pkt.Dest = graph.NodeID(int64(get64()))
		pkt.PathIdx = int(int32(get32()))
		pkt.Hop = int(int32(get32()))
		idLen := int(get32())
		if err := need(idLen); err != nil {
			return nil, err
		}
		pkt.MsgID = string(raw[pos : pos+idLen])
		pos += idLen
		if err := need(4); err != nil {
			return nil, err
		}
		plen := int(get32())
		if err := need(plen); err != nil {
			return nil, err
		}
		pkt.Payload = append([]byte(nil), raw[pos:pos+plen]...)
		m.Body = pkt
	default:
		return nil, fmt.Errorf("transport: unknown payload kind %d (%d payload bytes)", kind, rest)
	}
	return m, nil
}

// WriteFrame writes the length-prefixed encoding of m to w.
func WriteFrame(w io.Writer, m *Message) error {
	raw, err := Encode(m)
	if err != nil {
		return err
	}
	if len(raw) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(raw))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	return Decode(raw)
}
