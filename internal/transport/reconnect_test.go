package transport_test

import (
	"testing"
	"time"

	"nab/internal/graph"
	"nab/internal/topo"
	"nab/internal/transport"
)

// TestPeerReconnectHealsLink is the transport half of crash-recovery: a
// peer process dies, sends onto its links drop without failing the
// sender, and once a replacement process binds the same address the link
// heals and carries frames again.
func TestPeerReconnectHealsLink(t *testing.T) {
	g := topo.CompleteBi(2, 1)
	addrs := freeAddrs(t, 2)
	addrMap := map[graph.NodeID]string{1: addrs[0], 2: addrs[1]}
	opt := transport.PeerOptions{Reconnect: true, DialTimeout: 5 * time.Second}
	a, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap, addrs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.NewPeer(g, []graph.NodeID{2}, addrMap, addrs[1], opt)
	if err != nil {
		t.Fatal(err)
	}

	l, err := a.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(&transport.Message{Instance: 1, From: 1, To: 2, Bits: 8, Body: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(2); err != nil || m.Body.([]byte)[0] != 1 {
		t.Fatalf("pre-crash delivery failed: %v %+v", err, m)
	}

	// Crash the remote process: its listener and conns close.
	b.Close()

	// Sends during the outage must not error — they drop, counted, while
	// the background redial spins.
	deadline := time.Now().Add(10 * time.Second)
	for a.LostSends() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no send was observed dropping on the dead link")
		}
		if err := l.Send(&transport.Message{Instance: 2, From: 1, To: 2, Bits: 8, Body: []byte{2}}); err != nil {
			t.Fatalf("send onto dead link surfaced an error: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart the peer on the same address: the link must heal.
	b2, err := transport.NewPeer(g, []graph.NodeID{2}, addrMap, addrs[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got := make(chan *transport.Message, 1)
	go func() {
		for {
			m, err := b2.Recv(2)
			if err != nil {
				return
			}
			if m.Instance == 3 {
				got <- m
				return
			}
		}
	}()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if err := l.Send(&transport.Message{Instance: 3, From: 1, To: 2, Bits: 8, Body: []byte{3}}); err != nil {
			t.Fatalf("send after restart errored: %v", err)
		}
		select {
		case m := <-got:
			if m.Body.([]byte)[0] != 3 {
				t.Fatalf("healed link delivered corrupted frame: %+v", m)
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("link did not heal after peer restart")
		}
	}
}

// TestPeerInboundRepin: a restarted dialer re-pins a link the accepter
// still holds a (dead) connection for; the accepter must adopt the new
// connection instead of rejecting or ignoring it.
func TestPeerInboundRepin(t *testing.T) {
	g := topo.CompleteBi(2, 1)
	addrs := freeAddrs(t, 3)
	addrMap := map[graph.NodeID]string{1: addrs[0], 2: addrs[1]}
	opt := transport.PeerOptions{Reconnect: true, DialTimeout: 5 * time.Second}
	b, err := transport.NewPeer(g, []graph.NodeID{2}, addrMap, addrs[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a1, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap, addrs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := a1.Dial(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Send(&transport.Message{Instance: 1, From: 1, To: 2, Bits: 8, Body: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(2); err != nil || m.Instance != 1 {
		t.Fatalf("first incarnation delivery failed: %v %+v", err, m)
	}

	// Kill the first incarnation without closing gracefully as far as B
	// can tell (Close also closes conns, which is exactly what an OS
	// process death does), then bring up a second incarnation of node 1's
	// host on a fresh listener address — same addrMap role, new socket.
	a1.Close()
	addrMap2 := map[graph.NodeID]string{1: addrs[2], 2: addrs[1]}
	a2, err := transport.NewPeer(g, []graph.NodeID{1}, addrMap2, addrs[2], opt)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	l2, err := a2.Dial(1, 2)
	if err != nil {
		t.Fatalf("re-pin dial rejected: %v", err)
	}
	if err := l2.Send(&transport.Message{Instance: 2, From: 1, To: 2, Bits: 8, Body: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(2); err != nil || m.Instance != 2 {
		t.Fatalf("re-pinned link delivery failed: %v %+v", err, m)
	}
}
