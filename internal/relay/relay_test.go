package relay

import (
	"fmt"
	"testing"

	"nab/internal/graph"
	"nab/internal/sim"
)

func completeBi(n int, c int64) *graph.Directed {
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i != j {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), c)
			}
		}
	}
	return g
}

func TestNewTableValidation(t *testing.T) {
	g := completeBi(4, 1)
	if _, err := NewTable(g, 0); err == nil {
		t.Error("k=0: expected error")
	}
	// K4 has connectivity 3; k=4 must fail.
	if _, err := NewTable(g, 4); err == nil {
		t.Error("k above connectivity: expected error")
	}
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 3 {
		t.Errorf("K = %d", tab.K())
	}
	if tab.Rounds() < 1 || tab.Rounds() > 3 {
		t.Errorf("Rounds = %d", tab.Rounds())
	}
	if p := tab.Paths(1, 2); len(p) != 3 {
		t.Errorf("Paths(1,2) = %v", p)
	}
	if p := tab.Paths(1, 1); p != nil {
		t.Error("self path should be nil")
	}
}

// runRelay executes one reliable send from src to every other node over the
// engine, with faulty nodes running the given corrupting process.
func runRelay(t *testing.T, g *graph.Directed, tab *Table, src graph.NodeID, payload []byte, faulty map[graph.NodeID]sim.Process) map[graph.NodeID]*Router {
	t.Helper()
	e := sim.New(g)
	routers := map[graph.NodeID]*Router{}
	for _, v := range g.Nodes() {
		if fp, bad := faulty[v]; bad {
			if err := e.SetProcess(v, fp); err != nil {
				t.Fatal(err)
			}
			continue
		}
		v := v
		r := NewRouter(v, tab)
		routers[v] = r
		if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := r.HandleAll(inbox)
			if v == src && round == 0 {
				for _, d := range g.Nodes() {
					if d != v {
						out = append(out, r.Send(d, "m1", payload)...)
					}
				}
			}
			return out
		})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunPhase("relay", tab.Rounds()+1); err != nil {
		t.Fatal(err)
	}
	return routers
}

func TestReliableDeliveryNoFaults(t *testing.T) {
	g := completeBi(5, 2)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("agreement")
	routers := runRelay(t, g, tab, 1, payload, nil)
	for v, r := range routers {
		if v == 1 {
			continue
		}
		got, ok := r.Majority(1, "m1")
		if !ok || string(got) != string(payload) {
			t.Errorf("node %d: got %q ok=%v", v, got, ok)
		}
	}
}

// corruptingRelay forwards packets but rewrites payloads.
func corruptingRelay(self graph.NodeID, tab *Table, garbage []byte) sim.Process {
	r := NewRouter(self, tab)
	return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		out := r.HandleAll(inbox)
		for i := range out {
			pkt := out[i].Body.(Packet)
			pkt.Payload = garbage
			out[i].Body = pkt
			out[i].Bits = int64(len(garbage)) * 8
		}
		return out
	})
}

// silentProcess drops everything.
func silentProcess() sim.Process { return sim.Silent }

func TestReliableDeliveryWithCorruptingFault(t *testing.T) {
	// n=5, f=1, k=3 paths. One faulty intermediate corrupts every copy it
	// relays; majority must still deliver the true payload.
	g := completeBi(5, 2)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("truth")
	for _, faultyNode := range []graph.NodeID{2, 3, 4, 5} {
		faulty := map[graph.NodeID]sim.Process{
			faultyNode: corruptingRelay(faultyNode, tab, []byte("lie!!")),
		}
		routers := runRelay(t, g, tab, 1, payload, faulty)
		for v, r := range routers {
			if v == 1 {
				continue
			}
			got, ok := r.Majority(1, "m1")
			if !ok || string(got) != string(payload) {
				t.Errorf("faulty=%d node %d: got %q ok=%v", faultyNode, v, got, ok)
			}
		}
	}
}

func TestReliableDeliveryWithSilentFault(t *testing.T) {
	g := completeBi(5, 2)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("x")
	faulty := map[graph.NodeID]sim.Process{3: silentProcess()}
	routers := runRelay(t, g, tab, 1, payload, faulty)
	for v, r := range routers {
		if v == 1 {
			continue
		}
		got, ok := r.Majority(1, "m1")
		if !ok || string(got) != string(payload) {
			t.Errorf("node %d: got %q ok=%v", v, got, ok)
		}
	}
}

func TestForgedPacketsDropped(t *testing.T) {
	// A faulty node fabricates packets claiming paths it is not on; honest
	// routers must not accept or forward them.
	g := completeBi(5, 2)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find a path from 1 to 5 that node 2 is NOT on.
	var victim Packet
	found := false
	for idx, p := range tab.Paths(1, 5) {
		onPath := false
		for _, v := range p {
			if v == 2 {
				onPath = true
			}
		}
		if !onPath && len(p) > 2 {
			victim = Packet{Origin: 1, Dest: 5, PathIdx: idx, Hop: len(p) - 1, MsgID: "m1", Payload: []byte("forged")}
			found = true
			break
		}
	}
	if !found {
		// All multi-hop paths include 2 (possible on tiny graphs): fabricate
		// with a wrong hop instead.
		victim = Packet{Origin: 1, Dest: 5, PathIdx: 0, Hop: 99, MsgID: "m1", Payload: []byte("forged")}
	}
	e := sim.New(g)
	r5 := NewRouter(5, tab)
	if err := e.SetProcess(5, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		return r5.HandleAll(inbox)
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.SetProcess(2, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		if round == 0 {
			return []sim.Message{{From: 2, To: 5, Bits: 48, Body: victim}}
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPhase("attack", 3); err != nil {
		t.Fatal(err)
	}
	if got, ok := r5.Majority(1, "m1"); ok {
		t.Errorf("forged packet accepted: %q", got)
	}
}

func TestMajorityRequiresQuorum(t *testing.T) {
	g := completeBi(5, 1)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(5, tab)
	// No copies at all: not ok.
	if _, ok := r.Majority(1, "nothing"); ok {
		t.Error("majority with zero copies")
	}
}

func TestHandleIgnoresGarbage(t *testing.T) {
	g := completeBi(4, 1)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(2, tab)
	cases := []sim.Message{
		{From: 1, To: 2, Bits: 8, Body: "not a packet"},
		{From: 1, To: 2, Bits: 8, Body: Packet{Origin: 9, Dest: 2, PathIdx: 0, Hop: 1}},
		{From: 1, To: 2, Bits: 8, Body: Packet{Origin: 1, Dest: 2, PathIdx: 99, Hop: 1}},
		{From: 1, To: 2, Bits: 8, Body: Packet{Origin: 1, Dest: 2, PathIdx: 0, Hop: -1}},
	}
	for i, m := range cases {
		if fwd := r.Handle(m); fwd != nil {
			t.Errorf("case %d: garbage produced forwards %v", i, fwd)
		}
	}
}

func TestRouterReset(t *testing.T) {
	g := completeBi(4, 1)
	tab, err := NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	routers := runRelayQuick(t, g, tab)
	r := routers[2]
	if _, ok := r.Majority(1, "m"); !ok {
		t.Fatal("pre-reset majority missing")
	}
	r.Reset()
	if _, ok := r.Majority(1, "m"); ok {
		t.Error("post-reset majority still present")
	}
}

func runRelayQuick(t *testing.T, g *graph.Directed, tab *Table) map[graph.NodeID]*Router {
	t.Helper()
	e := sim.New(g)
	routers := map[graph.NodeID]*Router{}
	for _, v := range g.Nodes() {
		v := v
		r := NewRouter(v, tab)
		routers[v] = r
		if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := r.HandleAll(inbox)
			if v == 1 && round == 0 {
				out = append(out, r.Send(2, "m", []byte("z"))...)
			}
			return out
		})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunPhase("q", tab.Rounds()+1); err != nil {
		t.Fatal(err)
	}
	return routers
}

func TestAllPairsSimultaneous(t *testing.T) {
	// Every node reliably sends a distinct value to every other node in one
	// phase; all deliveries must succeed with a corrupting fault present.
	g := completeBi(6, 2)
	tab, err := NewTable(g, 3) // f=1 -> 2f+1=3
	if err != nil {
		t.Fatal(err)
	}
	const faultyNode = graph.NodeID(4)
	e := sim.New(g)
	routers := map[graph.NodeID]*Router{}
	for _, v := range g.Nodes() {
		v := v
		if v == faultyNode {
			if err := e.SetProcess(v, corruptingRelay(v, tab, []byte("evil"))); err != nil {
				t.Fatal(err)
			}
			continue
		}
		r := NewRouter(v, tab)
		routers[v] = r
		if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := r.HandleAll(inbox)
			if round == 0 {
				for _, d := range g.Nodes() {
					if d != v {
						out = append(out, r.Send(d, "pairwise", []byte(fmt.Sprintf("from-%d", v)))...)
					}
				}
			}
			return out
		})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunPhase("all-pairs", tab.Rounds()+1); err != nil {
		t.Fatal(err)
	}
	for d, r := range routers {
		for _, s := range g.Nodes() {
			if s == d || s == faultyNode {
				continue
			}
			got, ok := r.Majority(s, "pairwise")
			want := fmt.Sprintf("from-%d", s)
			if !ok || string(got) != want {
				t.Errorf("delivery %d->%d: got %q ok=%v", s, d, got, ok)
			}
		}
	}
}

func BenchmarkRelayPhase(b *testing.B) {
	g := completeBi(7, 2)
	tab, err := NewTable(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("benchmark-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.New(g)
		e.SetRecording(false)
		routers := map[graph.NodeID]*Router{}
		for _, v := range g.Nodes() {
			v := v
			r := NewRouter(v, tab)
			routers[v] = r
			if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
				out := r.HandleAll(inbox)
				if v == 1 && round == 0 {
					for _, d := range g.Nodes() {
						if d != v {
							out = append(out, r.Send(d, "b", payload)...)
						}
					}
				}
				return out
			})); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.RunPhase("bench", tab.Rounds()+1); err != nil {
			b.Fatal(err)
		}
	}
}
