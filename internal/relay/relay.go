// Package relay implements reliable end-to-end communication between
// fault-free nodes in an incomplete point-to-point network, emulating a
// complete graph: every ordered pair of nodes communicates along 2f+1
// precomputed internally-node-disjoint paths, and the receiver takes the
// majority over path copies.
//
// With at most f faulty nodes and node-disjoint paths, a faulty node can
// corrupt at most one path copy, so at least f+1 of 2f+1 copies arrive
// intact and the majority is the value sent. This is the standard
// construction the paper invokes in Appendix D to run a classic Byzantine
// broadcast algorithm ("Broadcast_Default") over an arbitrary network with
// connectivity >= 2f+1.
package relay

import (
	"fmt"
	"sort"
	"sync"

	"nab/internal/graph"
	"nab/internal/sim"
)

// Table holds the node-disjoint paths for every ordered pair.
type Table struct {
	k      int
	rounds int
	paths  map[[2]graph.NodeID][][]graph.NodeID
}

// NewTable computes k node-disjoint paths for every ordered pair of nodes
// in g. It returns an error if some pair cannot support k paths (the
// network's connectivity is below k).
func NewTable(g *graph.Directed, k int) (*Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("relay: k = %d must be positive", k)
	}
	t := &Table{k: k, paths: map[[2]graph.NodeID][][]graph.NodeID{}}
	nodes := g.Nodes()
	for _, s := range nodes {
		for _, d := range nodes {
			if s == d {
				continue
			}
			paths, err := g.NodeDisjointPaths(s, d, k)
			if err != nil {
				return nil, fmt.Errorf("relay: paths %d->%d: %w", s, d, err)
			}
			if len(paths) < k {
				return nil, fmt.Errorf("relay: only %d node-disjoint paths %d->%d, need %d (connectivity too low)", len(paths), s, d, k)
			}
			t.paths[[2]graph.NodeID{s, d}] = paths
			for _, p := range paths {
				if hops := len(p) - 1; hops > t.rounds {
					t.rounds = hops
				}
			}
		}
	}
	return t, nil
}

// K returns the number of paths per pair.
func (t *Table) K() int { return t.k }

// Rounds returns the number of simulator rounds one reliable exchange
// needs: the maximum hop count over all paths.
func (t *Table) Rounds() int { return t.rounds }

// Paths returns the precomputed paths from s to d (nil if absent).
func (t *Table) Paths(s, d graph.NodeID) [][]graph.NodeID {
	return t.paths[[2]graph.NodeID{s, d}]
}

// Packet is the wire format of one path copy. Engines treat it as an opaque
// body; routers inspect it.
type Packet struct {
	Origin  graph.NodeID // claimed original sender
	Dest    graph.NodeID // final destination
	PathIdx int          // which of the table's paths this copy follows
	Hop     int          // index in the path of the NEXT recipient
	MsgID   string       // protocol-level message identity
	Payload []byte
}

// Router performs the per-node forwarding and majority-assembly duties.
// A Router is owned by a single node's Process; Handle may be called from
// that node's goroutine only.
type Router struct {
	self  graph.NodeID
	table *Table

	mu       sync.Mutex
	received map[recvKey]map[int][]byte // (origin,msgID) -> pathIdx -> payload
}

type recvKey struct {
	origin graph.NodeID
	msgID  string
}

// NewRouter returns a router for node self using the given table.
func NewRouter(self graph.NodeID, table *Table) *Router {
	return &Router{self: self, table: table, received: map[recvKey]map[int][]byte{}}
}

// Table returns the routing table backing this router.
func (r *Router) Table() *Table { return r.table }

// Self returns the node this router belongs to.
func (r *Router) Self() graph.NodeID { return r.self }

// Send builds the first-hop messages that launch payload toward dest along
// all k paths. The caller includes them in its Step output.
func (r *Router) Send(dest graph.NodeID, msgID string, payload []byte) []sim.Message {
	paths := r.table.Paths(r.self, dest)
	out := make([]sim.Message, 0, len(paths))
	for idx, p := range paths {
		pkt := Packet{Origin: r.self, Dest: dest, PathIdx: idx, Hop: 1, MsgID: msgID, Payload: payload}
		out = append(out, sim.Message{
			From: r.self,
			To:   p[1],
			Bits: int64(len(payload)) * 8,
			Body: pkt,
		})
	}
	return out
}

// Handle processes one inbound simulator message. If it carries a relay
// packet addressed onward, Handle returns the forwarding message; if this
// node is the destination, the copy is recorded for Majority. Non-packet
// messages and malformed packets yield nil (a Byzantine neighbour can
// always send garbage; honest nodes ignore it).
func (r *Router) Handle(m sim.Message) []sim.Message {
	pkt, ok := m.Body.(Packet)
	if !ok {
		return nil
	}
	paths := r.table.Paths(pkt.Origin, pkt.Dest)
	if pkt.PathIdx < 0 || pkt.PathIdx >= len(paths) {
		return nil
	}
	path := paths[pkt.PathIdx]
	// The packet claims to be at hop pkt.Hop; we must be that node and the
	// simulator sender must be the previous path node, otherwise the claim
	// is forged and is dropped. A faulty node can therefore only tamper
	// with copies on paths it belongs to.
	if pkt.Hop < 1 || pkt.Hop >= len(path) {
		return nil
	}
	if path[pkt.Hop] != r.self || path[pkt.Hop-1] != m.From {
		return nil
	}
	if pkt.Dest == r.self {
		// Final hop: record the copy (first copy per path wins).
		if pkt.Hop != len(path)-1 {
			return nil
		}
		r.mu.Lock()
		key := recvKey{origin: pkt.Origin, msgID: pkt.MsgID}
		if r.received[key] == nil {
			r.received[key] = map[int][]byte{}
		}
		if _, dup := r.received[key][pkt.PathIdx]; !dup {
			r.received[key][pkt.PathIdx] = pkt.Payload
		}
		r.mu.Unlock()
		return nil
	}
	next := pkt.Hop + 1
	if next >= len(path) {
		return nil
	}
	fwd := pkt
	fwd.Hop = next
	return []sim.Message{{
		From: r.self,
		To:   path[next],
		Bits: int64(len(pkt.Payload)) * 8,
		Body: fwd,
	}}
}

// HandleAll is Handle applied to a whole inbox, concatenating forwards.
func (r *Router) HandleAll(inbox []sim.Message) []sim.Message {
	var out []sim.Message
	for _, m := range inbox {
		out = append(out, r.Handle(m)...)
	}
	return out
}

// Majority returns the payload received from origin for msgID, decided by
// strict majority over path copies; missing copies count as votes for the
// default (nil). ok reports whether a strict majority existed among the k
// expected copies.
func (r *Router) Majority(origin graph.NodeID, msgID string) ([]byte, bool) {
	r.mu.Lock()
	copies := r.received[recvKey{origin: origin, msgID: msgID}]
	counts := map[string]int{}
	for _, payload := range copies {
		counts[string(payload)]++
	}
	missing := r.table.k - len(copies)
	r.mu.Unlock()
	if missing > 0 {
		counts[missingSentinel] += missing
	}
	keys := make([]string, 0, len(counts))
	for s := range counts {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	bestKey, bestCount := "", -1
	for _, s := range keys {
		if counts[s] > bestCount {
			bestKey, bestCount = s, counts[s]
		}
	}
	if bestCount*2 <= r.table.k {
		return nil, false
	}
	if bestKey == missingSentinel {
		return nil, false
	}
	return []byte(bestKey), true
}

// Reset clears received state (between protocol stages reusing a router).
func (r *Router) Reset() {
	r.mu.Lock()
	r.received = map[recvKey]map[int][]byte{}
	r.mu.Unlock()
}

// missingSentinel cannot collide with real payloads because Majority keys
// real payloads by their raw bytes and this value is only used for absent
// copies; a payload equal to the sentinel bytes would still be counted
// separately because present copies are tallied before the sentinel is
// added under a distinct map entry only when missing > 0. The string is
// long and improbable regardless.
const missingSentinel = "\x00relay:missing-copy\x00"
