package texttab

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "col-a", "b")
	tb.Add("x", "y")
	tb.Addf(12, 3.5, true)
	out := tb.String()
	if !strings.Contains(out, "== Title ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "col-a") || !strings.Contains(out, "12") {
		t.Errorf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as wide as the header cell.
	if !strings.HasPrefix(lines[3], "x ") {
		t.Errorf("row misaligned: %q", lines[3])
	}
}

func TestTableNoHeaderNoTitle(t *testing.T) {
	tb := &Table{}
	tb.Add("only", "row")
	out := tb.String()
	if strings.Contains(out, "==") || strings.Contains(out, "---") {
		t.Errorf("unexpected chrome:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("missing row:\n%s", out)
	}
}

func TestAddfTypes(t *testing.T) {
	tb := New("t", "v")
	tb.Addf("s", 1, int64(2), uint(3), 4.25, false, struct{ X int }{7})
	row := tb.Rows[0]
	want := []string{"s", "1", "2", "3", "4.25", "false", "{7}"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("cell %d = %q, want %q", i, row[i], w)
		}
	}
}

func TestRaggedRowsPadOnRender(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.Add("1")
	tb.Add("1", "2", "3", "4") // wider than header
	out := tb.String()
	if !strings.Contains(out, "4") {
		t.Errorf("extra column dropped:\n%s", out)
	}
}

func TestFFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		2:       "2",
		3.14159: "3.1416",
		-0.25:   "-0.25",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.3333); got != "33.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1); got != "100.0%" {
		t.Errorf("Pct = %q", got)
	}
}
