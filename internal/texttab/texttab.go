// Package texttab renders aligned text tables — the shared formatter
// behind cmd/nabexp, cmd/nabcap, cmd/nabsim and tools/nabtrace, so
// EXPERIMENTS.md rows and tool output are regenerated identically
// everywhere. (It was historically named internal/trace, which clashed
// with execution tracing; the flight recorder owns that word now.)
package texttab

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column header.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cell counts need not match the header (short rows are
// padded on render).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row built from formatted values.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = F(v)
		case int:
			row[i] = strconv.Itoa(v)
		case int64:
			row[i] = strconv.FormatInt(v, 10)
		case uint:
			row[i] = strconv.FormatUint(uint64(v), 10)
		case bool:
			row[i] = strconv.FormatBool(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// F formats a float compactly (4 significant decimals, trailing zeros
// trimmed).
func F(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string {
	return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
}
