package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 1, 234e6, time.UTC) }
	return l
}

func TestLogfmtLine(t *testing.T) {
	var sb strings.Builder
	l := fixed(NewWriter("rejoin", &sb))
	l.Info("rewind", "k", 5, "epoch", 2, "err", errors.New("boom boom"))
	want := `ts=2026-08-07T12:00:01.234Z level=info component=rejoin event=rewind k=5 epoch=2 err="boom boom"` + "\n"
	if sb.String() != want {
		t.Fatalf("got %q, want %q", sb.String(), want)
	}
}

func TestBoundFieldsAndLevels(t *testing.T) {
	var sb strings.Builder
	l := fixed(NewWriter("ctrl", &sb)).With("node", "0,1")
	l.Debug("open", "round", 3)
	l.Error("fail", "dur", 1500*time.Millisecond)
	out := sb.String()
	for _, want := range []string{
		"level=debug component=ctrl event=open node=0,1 round=3",
		"level=error component=ctrl event=fail node=0,1 dur=1.5s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDisabledLoggerIsSilent(t *testing.T) {
	var sb strings.Builder
	l := NewWriter("x", &sb)
	l.SetEnabled(false)
	l.Info("noise")
	var nilLogger *Logger
	if nilLogger.Enabled() {
		t.Fatal("nil logger reports enabled")
	}
	if sb.Len() != 0 {
		t.Fatalf("disabled logger wrote %q", sb.String())
	}
}

func TestEnvSwitch(t *testing.T) {
	t.Setenv("NAB_TEST_OBS_ON", "1")
	if !New("a", "NAB_TEST_OBS_ON").Enabled() {
		t.Fatal("env var did not enable logger")
	}
	if New("b", "NAB_TEST_OBS_OFF").Enabled() {
		t.Fatal("logger enabled without env var")
	}
	t.Setenv("NAB_DEBUG", "1")
	if !New("c").Enabled() {
		t.Fatal("NAB_DEBUG did not enable logger")
	}
}

func TestOddPairs(t *testing.T) {
	var sb strings.Builder
	fixed(NewWriter("x", &sb)).Info("e", "lone")
	if !strings.Contains(sb.String(), "lone=!MISSING") {
		t.Fatalf("odd pair not flagged: %q", sb.String())
	}
}

func TestConcurrentEmit(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	l := NewWriter("x", w)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("tick", "g", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	mu.Unlock()
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "event=tick") {
			t.Fatalf("garbled line: %q", line)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
