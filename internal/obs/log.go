// Package obs provides the structured event logger shared by the
// subsystems that act at runtime outside the protocol's data path —
// cluster rejoin, transport reconnect, durability recovery. Events are
// logfmt lines on stderr:
//
//	ts=2026-08-07T12:00:01.234Z level=info component=rejoin event=rewind k=5 epoch=2
//
// so chaos/kill-restart runs produce greppable machine-readable traces
// instead of ad-hoc prints. A logger is enabled by environment variable —
// its component-specific switches (e.g. NAB_REJOIN_DEBUG, kept for
// compatibility) or the global NAB_DEBUG — and disabled loggers are a
// single atomic load per call.
package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities. Debug events are suppressed unless the
// logger is enabled; Info and Error are emitted whenever the logger is.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	}
	return "error"
}

// Logger emits logfmt events for one component. The zero value is a
// disabled logger; construct with New or NewWriter.
type Logger struct {
	component string
	bound     string // pre-rendered " k=v" pairs from With
	enabled   atomic.Bool
	mu        *sync.Mutex
	w         io.Writer
	now       func() time.Time
}

var stderrMu sync.Mutex

// New returns a logger for component, enabled when any of the given
// environment variables — or the global NAB_DEBUG — is non-empty. Output
// goes to stderr, serialized with every other obs logger in the process.
func New(component string, envVars ...string) *Logger {
	l := &Logger{component: component, mu: &stderrMu, w: os.Stderr, now: time.Now}
	on := os.Getenv("NAB_DEBUG") != ""
	for _, v := range envVars {
		on = on || os.Getenv(v) != ""
	}
	l.enabled.Store(on)
	return l
}

// NewWriter returns an always-enabled logger writing to w — for tests.
func NewWriter(component string, w io.Writer) *Logger {
	l := &Logger{component: component, mu: &sync.Mutex{}, w: w, now: time.Now}
	l.enabled.Store(true)
	return l
}

// Enabled reports whether events will be emitted.
func (l *Logger) Enabled() bool { return l != nil && l.enabled.Load() }

// SetEnabled overrides the env-var switch (tests, runtime toggles).
func (l *Logger) SetEnabled(on bool) { l.enabled.Store(on) }

// With returns a logger that appends the given key/value pairs to every
// event — e.g. the cluster node's local instance set.
func (l *Logger) With(kv ...any) *Logger {
	nl := &Logger{
		component: l.component,
		bound:     l.bound + renderPairs(kv),
		mu:        l.mu,
		w:         l.w,
		now:       l.now,
	}
	nl.enabled.Store(l.enabled.Load())
	return nl
}

// Debug emits event at debug level with the given key/value pairs.
func (l *Logger) Debug(event string, kv ...any) { l.emit(LevelDebug, event, kv) }

// Info emits event at info level.
func (l *Logger) Info(event string, kv ...any) { l.emit(LevelInfo, event, kv) }

// Error emits event at error level.
func (l *Logger) Error(event string, kv ...any) { l.emit(LevelError, event, kv) }

func (l *Logger) emit(level Level, event string, kv []any) {
	if !l.Enabled() {
		return
	}
	var sb strings.Builder
	sb.WriteString("ts=")
	sb.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	sb.WriteString(" component=")
	sb.WriteString(l.component)
	sb.WriteString(" event=")
	sb.WriteString(quoteIfNeeded(event))
	sb.WriteString(l.bound)
	sb.WriteString(renderPairs(kv))
	sb.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

// renderPairs renders alternating key, value arguments as " k=v" pairs.
// An odd trailing key is rendered with value "!MISSING".
func renderPairs(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprint(kv[i]))
		sb.WriteByte('=')
		if i+1 < len(kv) {
			sb.WriteString(renderValue(kv[i+1]))
		} else {
			sb.WriteString("!MISSING")
		}
	}
	return sb.String()
}

func renderValue(v any) string {
	switch v := v.(type) {
	case string:
		return quoteIfNeeded(v)
	case error:
		if v == nil {
			return "nil"
		}
		return quoteIfNeeded(v.Error())
	case time.Duration:
		return v.String()
	case nil:
		return "nil"
	default:
		return quoteIfNeeded(fmt.Sprint(v))
	}
}

func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
