package runtime

import (
	"fmt"
	"strings"

	"nab/internal/capacity"
	"nab/internal/graph"
)

// Report is the runtime's aggregate throughput accounting, stated in the
// same model units as capacity.Report so measured rates sit directly next
// to the paper's bounds (Theorems 2 and 3).
type Report struct {
	Instances int
	LenBits   int

	// Wall-clock accounting.
	WallSeconds     float64
	InstancesPerSec float64
	Replays         int

	// Model-time accounting (time units: 1 bit across a capacity-1 link).
	// SequentialTime is the sum of per-instance critical paths — what the
	// lockstep engine would charge executing the committed instances back
	// to back. LinkTime is the busiest link's total charge across the
	// whole run: the cut-through floor for the pipelined execution, since
	// overlapped instances share links.
	SequentialTime float64
	LinkTime       float64
	// PipelineSpeedup is SequentialTime/LinkTime: how much model time the
	// overlap removes (>= 1; the Appendix D construction's gain).
	PipelineSpeedup float64

	// Throughputs in bits per time unit, against the paper's bounds.
	SequentialThroughput float64
	PipelinedThroughput  float64
	CapacityUpperBound   float64 // Theorem 2 (0 when no capacity report given)
	GuaranteeLowerBound  float64 // Theorem 3
}

// Report derives the aggregate accounting for a finished run. cap may be
// nil; pass capacity.Analyze's output to include the Theorem 2/3 bounds.
func (rt *Runtime) Report(res *Result, cap *capacity.Report) *Report {
	return NewReport(rt.proto.Graph(), res, cap)
}

// NewReport derives the aggregate accounting for a finished run over
// topology g — the engine-independent form for callers holding only a
// Session's PipelineResult. cap may be nil; pass capacity.Analyze's
// output to include the Theorem 2/3 bounds.
func NewReport(g *graph.Directed, res *Result, cap *capacity.Report) *Report {
	rep := &Report{
		Instances:       len(res.Instances),
		LenBits:         res.LenBits,
		WallSeconds:     res.Wall.Seconds(),
		InstancesPerSec: res.InstancesPerSec(),
		Replays:         res.Replays,
		SequentialTime:  res.TotalTime(),
	}
	for key, bits := range res.LinkBits {
		if c := g.Cap(key[0], key[1]); c > 0 {
			if t := float64(bits) / float64(c); t > rep.LinkTime {
				rep.LinkTime = t
			}
		}
	}
	totalBits := float64(rep.Instances * res.LenBits)
	if rep.SequentialTime > 0 {
		rep.SequentialThroughput = totalBits / rep.SequentialTime
	}
	if rep.LinkTime > 0 {
		rep.PipelinedThroughput = totalBits / rep.LinkTime
		rep.PipelineSpeedup = rep.SequentialTime / rep.LinkTime
	}
	if cap != nil {
		rep.CapacityUpperBound = cap.CapacityUB
		rep.GuaranteeLowerBound = cap.TNABBound
	}
	return rep
}

// String renders the report as an aligned table.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances            %d x %d bits\n", rep.Instances, rep.LenBits)
	fmt.Fprintf(&b, "wall                 %.3fs (%.1f instances/s, %d replays)\n", rep.WallSeconds, rep.InstancesPerSec, rep.Replays)
	fmt.Fprintf(&b, "model time           sequential %.1f, busiest-link %.1f (overlap x%.2f)\n", rep.SequentialTime, rep.LinkTime, rep.PipelineSpeedup)
	fmt.Fprintf(&b, "throughput           sequential %.3f, pipelined %.3f bits/tu\n", rep.SequentialThroughput, rep.PipelinedThroughput)
	if rep.CapacityUpperBound > 0 {
		fmt.Fprintf(&b, "paper bounds         UB %.3f (Thm 2), guarantee %.3f (Thm 3)\n", rep.CapacityUpperBound, rep.GuaranteeLowerBound)
	}
	return b.String()
}
