package runtime

import "nab/internal/metrics"

// Scheduler instruments. All are passive observers of decisions the
// scheduler already made — the launch/commit/barrier sequence (and thus
// the differential equivalence with the lockstep runner) is unaffected.
var (
	mInflight = metrics.NewGauge("nab_runtime_inflight",
		"Instance executions currently in flight.")
	mBarriers = metrics.NewCounter("nab_runtime_barriers_total",
		"Dispute-control barriers raised by committed MISMATCH instances.")
	mReplays = metrics.NewCounter("nab_runtime_replays_total",
		"Speculative executions discarded at dispute-control barriers.")
	mCommitLatency = metrics.NewHistogram("nab_runtime_commit_latency_seconds",
		"Launch-to-commit latency per instance execution.", metrics.LatencyBuckets)
)
