// Package runtime executes NAB concurrently: per-node actors exchange
// real messages over an internal/transport substrate, and a pipeline
// scheduler keeps a window of W instances in flight — instance t+1's
// Phase 1 overlaps instance t's Phase 2/3, the Appendix D construction
// made operational.
//
// The runtime reuses the exact phase logic of internal/core (Protocol /
// InstancePlan / DisputeState) on a message-driven PhaseEngine, so every
// existing Adversary plugs in unchanged and outputs match the lockstep
// core.Runner byte for byte. Instances later than t execute speculatively
// on instance t's dispute-state snapshot; when an instance's Phase 3
// changes the dispute state (a MISMATCH fired), the scheduler raises a
// barrier: speculative executions are aborted and re-run on the fresh
// snapshot. Clean instances — the common case the paper's throughput
// analysis amortizes toward — never wait.
//
// Across instances of one dispute generation the expensive per-instance
// precomputation (verified coding scheme, packed arborescences) is planned
// once and cached, which the lockstep Runner recomputes every instance.
package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/dispute"
	fr "nab/internal/flight"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/transport"
)

// Config parameterizes a pipelined runtime. The embedded core.Config is
// validated identically to core.NewRunner.
type Config struct {
	core.Config

	// Window is the maximum number of instances in flight (W >= 1).
	// Default 4. W=1 degenerates to sequential execution, which also
	// guarantees deterministic replay for stateful adversaries (see Run).
	Window int

	// Transport overrides the default in-process channel bus — e.g. a
	// *transport.TCP for loopback serving. The runtime takes ownership
	// and closes it. It must be built over the same topology as Graph.
	Transport transport.Transport

	// ChanOptions tunes the default in-process bus when Transport is nil
	// (pacing time unit, token-bucket burst, inbox depth).
	ChanOptions transport.ChanOptions

	// LocalNodes restricts this runtime to hosting the given nodes' actors
	// — the multi-process deployment, where each process runs one (or a
	// few) nodes and the Transport carries the rest of the topology's
	// traffic to peer processes. Nil hosts every node (single-process).
	//
	// Every process of a cluster must drive its runtime with the same
	// configuration and the same Run input sequence: the schedulers make
	// identical launch/commit/barrier decisions (folds are deterministic
	// and agreed), which keeps launch numbering — and therefore frame
	// routing — aligned across processes without any coordination traffic.
	LocalNodes []graph.NodeID

	// Plane resolves mid-instance schedule decisions for partial runtimes
	// whose local nodes cannot decode them (see core.ScheduleView).
	// Required when LocalNodes is set and a local node can be excluded
	// from the instance graph.
	Plane SchedulePlane
}

// ExecutionView is one instance execution's core.ScheduleView; Close is
// called (possibly more than once — it must be idempotent) when the
// execution commits or is abandoned at a dispute barrier, and must
// unblock any pending Need* call.
type ExecutionView interface {
	core.ScheduleView
	Close()
}

// SchedulePlane hands out per-execution schedule views, keyed by the
// instance number and the dispute-state generation it executes on (a
// barrier replay of instance k runs on a later generation).
type SchedulePlane interface {
	Execution(k, gen int) ExecutionView
}

// Runtime hosts the actors, links and scheduler for one topology.
type Runtime struct {
	cfg    Config
	proto  *core.Protocol
	tr     transport.Transport
	locals map[graph.NodeID]bool // nil = all nodes local

	linkMu sync.RWMutex
	links  map[[2]graph.NodeID]transport.Link

	// sendTap/recvTap issue the per-(link,instance) frame indices the
	// flight recorder stamps on EvFrameSend/EvFrameRecv — independent
	// counters at the two choke points, aligned by the FIFO invariant.
	sendTap transport.FlightTap
	recvTap transport.FlightTap

	engMu   sync.RWMutex
	engines map[uint64]*instanceEngine
	// pending buffers frames for launches not registered yet: peer
	// processes number launches identically but register them at their own
	// pace, so a frame may arrive before the local flight exists. Frames
	// for launches at or below maxLaunch belong to completed or aborted
	// executions and are dropped; so are frames claiming a launch further
	// ahead than any honest peer can run (see pendingSlack), which bounds
	// the buffer against a peer streaming garbage launch numbers.
	pending   map[uint64][]*transport.Message
	maxLaunch uint64

	// Scheduler state: ds is mutated only inside Run (folds are
	// serialized); runMu admits one Run at a time.
	runMu      sync.Mutex
	ds         *core.DisputeState
	k          int
	entries    map[int]*planEntry // per-generation plan cache
	nextLaunch uint64

	closeOnce sync.Once
	closeErr  error
}

// New validates cfg, builds the transport (unless supplied) and starts the
// per-node receive loops.
func New(cfg Config) (*Runtime, error) {
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.Window < 1 {
		if cfg.Transport != nil {
			cfg.Transport.Close()
		}
		return nil, fmt.Errorf("runtime: Window = %d must be >= 1", cfg.Window)
	}
	// Stateful adversaries (e.g. adversary.Random) would race when
	// overlapped instances invoke their hooks concurrently; serialize the
	// hooks so any window is memory-safe. Determinism across windows is a
	// separate matter — see Run.
	if len(cfg.Adversaries) > 0 {
		wrapped := make(map[graph.NodeID]core.Adversary, len(cfg.Adversaries))
		for v, a := range cfg.Adversaries {
			wrapped[v] = &syncAdversary{inner: a}
		}
		cfg.Adversaries = wrapped
	}
	proto, err := core.NewProtocol(cfg.Config)
	if err != nil {
		// The runtime owns a supplied transport even on failed
		// construction — the caller was told not to close it.
		if cfg.Transport != nil {
			cfg.Transport.Close()
		}
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		// Surface a bad chaos spec now rather than from the first lazily
		// dialed link mid-run.
		if err := cfg.ChanOptions.Chaos.Validate(); err != nil {
			return nil, err
		}
		tr = transport.NewChan(cfg.Graph, cfg.ChanOptions)
	}
	var locals map[graph.NodeID]bool
	if cfg.LocalNodes != nil {
		locals = make(map[graph.NodeID]bool, len(cfg.LocalNodes))
		for _, v := range cfg.LocalNodes {
			if !cfg.Graph.HasNode(v) {
				tr.Close()
				return nil, fmt.Errorf("runtime: local node %d not in topology", v)
			}
			locals[v] = true
		}
		if len(locals) == 0 {
			tr.Close()
			return nil, fmt.Errorf("runtime: empty LocalNodes (nil means all-local)")
		}
	}
	rt := &Runtime{
		cfg:     cfg,
		proto:   proto,
		tr:      tr,
		locals:  locals,
		links:   map[[2]graph.NodeID]transport.Link{},
		engines: map[uint64]*instanceEngine{},
		pending: map[uint64][]*transport.Message{},
		ds:      core.NewDisputeState(cfg.Graph),
		entries: map[int]*planEntry{},
	}
	for _, v := range cfg.Graph.Nodes() {
		if locals == nil || locals[v] {
			go rt.recvLoop(v)
		}
	}
	return rt, nil
}

// Protocol returns the validated protocol the runtime drives.
func (rt *Runtime) Protocol() *core.Protocol { return rt.proto }

// Window returns the in-flight limit (after defaulting).
func (rt *Runtime) Window() int { return rt.cfg.Window }

// InstanceGraph returns the current G_k.
func (rt *Runtime) InstanceGraph() *graph.Directed {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	return rt.ds.Graph()
}

// Disputes returns the accumulated dispute set.
func (rt *Runtime) Disputes() *dispute.Set {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	return rt.ds.Disputes()
}

// Close shuts the transport down; in-flight Runs fail.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() { rt.closeErr = rt.tr.Close() })
	return rt.closeErr
}

// Committed returns how many instances the runtime has folded.
func (rt *Runtime) Committed() int {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	return rt.k
}

// Restore rewrites the scheduler state between streams: the dispute
// state is rebuilt from scratch by folding the committed history (from a
// WAL replay, or the in-memory history of a cluster rollback), the next
// instance becomes k+1, the per-generation plan cache is dropped, and
// launch numbering restarts at launchBase+1. The history's Ks must be
// increasing and bounded by k; a compacted log's synthetic checkpoint
// result (carrying the accumulated disputes) is a valid first entry.
//
// launchBase exists for the cluster rejoin protocol: after a crash
// + restart every process Restores onto an agreed fresh launch epoch
// (strictly above any number the old epoch used), so in-flight frames of
// abandoned executions can never alias a relaunched instance — the
// demultiplexer drops everything at or below the new base. Single-process
// recovery passes 0.
//
// Restore must not race a RunStream; call it before the first stream or
// after the previous one returned (a canceled stream counts — cancel
// reaps every in-flight execution first).
func (rt *Runtime) Restore(launchBase uint64, k int, committed []*core.InstanceResult) error {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	if k < 0 {
		return fmt.Errorf("runtime: Restore to negative instance %d", k)
	}
	ds := core.NewDisputeState(rt.cfg.Graph)
	prev := 0
	for _, ir := range committed {
		if ir.K <= prev || ir.K > k {
			return fmt.Errorf("runtime: Restore: instance %d out of order (after %d, limit %d)", ir.K, prev, k)
		}
		if err := rt.proto.Fold(ds, ir); err != nil {
			return fmt.Errorf("runtime: Restore: %w", err)
		}
		prev = ir.K
	}
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	if len(rt.engines) != 0 {
		return fmt.Errorf("runtime: Restore with %d executions in flight", len(rt.engines))
	}
	rt.ds = ds
	rt.k = k
	rt.entries = map[int]*planEntry{}
	rt.nextLaunch = launchBase
	rt.maxLaunch = launchBase
	rt.pending = map[uint64][]*transport.Message{}
	return nil
}

// RestoreSnapshot is Restore with a snapshot base instead of a full
// committed history: the dispute state — generation included, which
// keys the plan cache and the per-generation scheme RNG — is rebuilt
// directly from snap, then the tail results (snap.K+1 onward, in order)
// are folded, and the runtime resumes after the tail with no
// per-instance replay below the snapshot. The same no-stream/no-flight
// preconditions as Restore apply.
func (rt *Runtime) RestoreSnapshot(launchBase uint64, snap core.SnapshotState, tail []*core.InstanceResult) error {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	if snap.K < 0 {
		return fmt.Errorf("runtime: RestoreSnapshot to negative instance %d", snap.K)
	}
	ds, err := rt.proto.RestoreState(snap)
	if err != nil {
		return fmt.Errorf("runtime: RestoreSnapshot: %w", err)
	}
	k := snap.K
	for _, ir := range tail {
		if ir.K != k+1 {
			return fmt.Errorf("runtime: RestoreSnapshot: tail instance %d after watermark %d", ir.K, k)
		}
		if err := rt.proto.Fold(ds, ir); err != nil {
			return fmt.Errorf("runtime: RestoreSnapshot: %w", err)
		}
		k = ir.K
	}
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	if len(rt.engines) != 0 {
		return fmt.Errorf("runtime: RestoreSnapshot with %d executions in flight", len(rt.engines))
	}
	rt.ds = ds
	rt.k = k
	rt.entries = map[int]*planEntry{}
	rt.nextLaunch = launchBase
	rt.maxLaunch = launchBase
	rt.pending = map[uint64][]*transport.Message{}
	return nil
}

// pendingSlack bounds how far beyond the newest local launch a buffered
// frame's launch number may run. An honest peer's scheduler is at most
// one window of speculative launches past the oldest uncommitted
// instance, and it cannot commit (hence advance) an instance before this
// process has launched it too, so the honest gap is under two windows of
// launch numbers; the slack is deliberately generous on top of that.
func (rt *Runtime) pendingSlack() uint64 {
	return uint64(4*rt.cfg.Window + 8)
}

// recvLoop demultiplexes node v's inbound frames to the owning instance
// engines. Frames for past launches (aborted or committed speculation)
// are dropped; frames for launches this process has not started yet —
// possible only across processes, where peers run ahead — are buffered
// until the flight registers, within pendingSlack.
func (rt *Runtime) recvLoop(v graph.NodeID) {
	for {
		m, err := rt.tr.Recv(v)
		if err != nil {
			return
		}
		if fr.Enabled() {
			fr.Record(fr.Event{
				Type: fr.EvFrameRecv, Node: int32(m.To), Peer: int32(m.From),
				Inst: m.Instance, Step: m.Step,
				Arg: rt.recvTap.Next(m.From, m.To, m.Instance),
			})
		}
		rt.engMu.RLock()
		eng, ok := rt.engines[m.Instance]
		rt.engMu.RUnlock()
		if ok {
			eng.deliver(m)
			continue
		}
		rt.engMu.Lock()
		if eng, ok = rt.engines[m.Instance]; !ok &&
			m.Instance > rt.maxLaunch && m.Instance <= rt.maxLaunch+rt.pendingSlack() {
			rt.pending[m.Instance] = append(rt.pending[m.Instance], m)
		}
		rt.engMu.Unlock()
		if ok {
			eng.deliver(m)
		}
	}
}

// sendFrame routes one frame onto its (lazily dialed, shared) link. The
// steady state is a read-locked map hit, so concurrent actors across every
// in-flight instance do not serialize on the link cache; the write lock is
// taken only to dial a link the first time it carries traffic.
func (rt *Runtime) sendFrame(m *transport.Message) error {
	key := [2]graph.NodeID{m.From, m.To}
	rt.linkMu.RLock()
	l, ok := rt.links[key]
	rt.linkMu.RUnlock()
	if !ok {
		rt.linkMu.Lock()
		l, ok = rt.links[key]
		if !ok {
			var err error
			l, err = rt.tr.Dial(m.From, m.To)
			if err != nil {
				rt.linkMu.Unlock()
				return err
			}
			rt.links[key] = l
		}
		rt.linkMu.Unlock()
	}
	if fr.Enabled() {
		fr.Record(fr.Event{
			Type: fr.EvFrameSend, Node: int32(m.From), Peer: int32(m.To),
			Inst: m.Instance, Step: m.Step,
			Arg: rt.sendTap.Next(m.From, m.To, m.Instance),
		})
	}
	return l.Send(m)
}

func (rt *Runtime) register(eng *instanceEngine) {
	rt.engMu.Lock()
	defer rt.engMu.Unlock()
	rt.engines[eng.launch] = eng
	if eng.launch > rt.maxLaunch {
		rt.maxLaunch = eng.launch
	}
	// Drain the buffer while still holding engMu: a recvLoop delivering
	// directly (it blocks on the lock until we release) must not slip a
	// later frame — e.g. an end-of-step marker — in front of buffered
	// earlier ones, or an actor could consume a step missing a message.
	for _, m := range rt.pending[eng.launch] {
		eng.deliver(m)
	}
	delete(rt.pending, eng.launch)
}

func (rt *Runtime) unregister(eng *instanceEngine) {
	rt.engMu.Lock()
	delete(rt.engines, eng.launch)
	rt.engMu.Unlock()
}

// planEntry caches one dispute generation's InstancePlan — the verified
// coding scheme and packed arborescences are computed once per generation
// and shared by every instance (and re-execution) running on it.
type planEntry struct {
	gen  int
	snap *core.DisputeState
	once sync.Once
	plan *core.InstancePlan
	err  error
}

func (rt *Runtime) resolve(e *planEntry, k int) (*core.InstancePlan, error) {
	e.once.Do(func() {
		rng := rand.New(rand.NewSource(planSeed(rt.cfg.Seed, e.gen)))
		e.plan, e.err = rt.proto.PlanInstance(e.snap, k, rng)
	})
	return e.plan, e.err
}

// planSeed derives a per-generation RNG seed (splitmix64 finalizer), so a
// re-executed instance draws the same verified scheme regardless of which
// launch planned it first.
func planSeed(seed int64, gen int) int64 {
	z := uint64(seed) + uint64(gen+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// flight is one speculative instance execution.
type flight struct {
	k       int
	gen     int
	eng     *instanceEngine
	view    ExecutionView // nil without a schedule plane
	done    chan struct{}
	ir      *core.InstanceResult
	err     error
	plans   *planEntry
	started time.Time
}

// Result extends the lockstep RunResult with wall-clock and substrate
// accounting.
type Result struct {
	core.RunResult
	// Wall is the real elapsed time of the pipelined run.
	Wall time.Duration
	// Window is the configured in-flight limit.
	Window int
	// Replays counts instance executions discarded at dispute-control
	// barriers (speculation re-run on a fresh snapshot).
	Replays int
	// LinkBits is the per-link capacity charge of this run (including
	// replayed work), i.e. the transport counters' delta over the run.
	LinkBits map[[2]graph.NodeID]int64
	// Dropped counts emissions that violated physics across the run.
	Dropped int64
}

// InstancesPerSec is the run's wall-clock instance rate.
func (res *Result) InstancesPerSec() float64 {
	if res.Wall <= 0 {
		return 0
	}
	return float64(len(res.Instances)) / res.Wall.Seconds()
}

// ValidateInputs checks a batch against the configured input size,
// numbering errors by the instances the batch would run next.
func (rt *Runtime) ValidateInputs(inputs [][]byte) error {
	rt.runMu.Lock()
	base := rt.k
	rt.runMu.Unlock()
	for i, in := range inputs {
		if len(in) != rt.cfg.LenBytes {
			return fmt.Errorf("core: instance %d: input is %d bytes, want %d", base+i+1, len(in), rt.cfg.LenBytes)
		}
	}
	return nil
}

// RunStream executes one pipelined instance per submission pulled from
// subs until the channel closes, and returns once every pulled submission
// has committed, in order. Committed outputs are identical to running the
// same inputs on the lockstep core.Runner. With LocalNodes set, the
// result carries only the local nodes' outputs; every process of the
// cluster must feed its stream the same submission sequence.
//
// The scheduler pulls a submission only when the pipeline has a free
// window slot, so a bounded subs channel gives end-to-end backpressure: a
// producer blocks once W instances are in flight and the channel buffer is
// full. commit (when non-nil) is invoked synchronously as each instance
// commits, in order — a commit error aborts the run. Canceling ctx aborts
// every in-flight execution (mid-dispute included), returns ctx.Err(), and
// leaves the runtime closeable; the transport stays open, so a later
// RunStream may resume from the folded dispute state.
//
// Determinism caveat: an Adversary whose hooks consume hidden shared
// state sees hook interleavings that depend on the window; its behaviour
// is replayed deterministically only with Window=1. Adversaries
// implementing core.InstanceScoped (e.g. adversary.Random with a Seed and
// nil RNG) draw per-instance state instead and are deterministic under
// any window, as are stateless adversaries (Crash, BlockFlipper,
// CodedCorruptor, FalseAlarm, flag liars).
func (rt *Runtime) RunStream(ctx context.Context, subs <-chan []byte, commit func(*core.InstanceResult) error) (*Result, error) {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	startBits := rt.tr.LinkBits()

	res := &Result{
		RunResult: core.RunResult{LenBits: rt.proto.LenBits()},
		Window:    rt.cfg.Window,
	}

	entryFor := func(gen int) *planEntry {
		e, ok := rt.entries[gen]
		if !ok {
			e = &planEntry{gen: gen, snap: rt.ds.Clone()}
			rt.entries[gen] = e
		}
		return e
	}

	// inputs retains every pulled-but-uncommitted submission keyed by its
	// instance number: a dispute barrier aborts speculative executions,
	// which relaunch later from this map on the fresh snapshot.
	inputs := map[int][]byte{}
	inflight := map[int]*flight{}
	launch := func(k int) {
		rt.nextLaunch++
		f := &flight{
			k:       k,
			gen:     rt.ds.Gen(),
			eng:     newInstanceEngine(rt.nextLaunch, rt.cfg.Graph, rt.sendFrame, rt.locals),
			done:    make(chan struct{}),
			plans:   entryFor(rt.ds.Gen()),
			started: time.Now(),
		}
		mInflight.Inc()
		if fr.Enabled() {
			fr.Record(fr.Event{
				Type: fr.EvLaunch, Node: -1,
				Inst: rt.nextLaunch, K: int32(k), Gen: int32(f.gen),
			})
		}
		if rt.cfg.Plane != nil {
			f.view = rt.cfg.Plane.Execution(f.k, f.gen)
		}
		var lv *core.LocalView
		if rt.locals != nil || f.view != nil {
			lv = &core.LocalView{Locals: rt.locals, Sched: f.view}
		}
		inflight[k] = f
		rt.register(f.eng)
		in := inputs[k] // read under the scheduler, not in the goroutine
		go func() {
			defer close(f.done)
			plan, err := rt.resolve(f.plans, f.k)
			if err != nil {
				f.err = err
				return
			}
			f.ir, f.err = plan.ExecuteLocal(f.eng, f.k, in, lv)
		}()
	}
	finish := func(f *flight) {
		rt.unregister(f.eng)
		if f.view != nil {
			f.view.Close()
		}
		res.Dropped += f.eng.Dropped()
		delete(inflight, f.k)
		mInflight.Dec()
	}
	reap := func(f *flight) {
		f.eng.abort()
		if f.view != nil {
			f.view.Close() // unblock a Need* wait between phases
		}
		<-f.done
		finish(f)
	}
	fail := func(err error) (*Result, error) {
		for _, f := range inflight {
			reap(f)
		}
		return nil, err
	}

	// tail is the newest instance number assigned a submission; open means
	// subs may still yield more.
	tail, open := rt.k, true
	for next := rt.k + 1; ; {
		// Fill the window with speculative launches on the live snapshot.
		for next <= tail && next-rt.k <= rt.cfg.Window {
			if _, ok := inflight[next]; !ok {
				launch(next)
			}
			next++
		}
		if !open && tail == rt.k {
			break // stream closed and every pulled submission committed
		}
		// Wait for the oldest in-flight instance (commits are strictly in
		// order) while pulling submissions whenever a window slot is free.
		var doneCh chan struct{}
		if f := inflight[rt.k+1]; f != nil {
			doneCh = f.done
		}
		var subCh <-chan []byte
		if open && tail-rt.k < rt.cfg.Window {
			subCh = subs
		}
		//nab:ignore lockedblock -- runMu serializes entire runs; a second RunStream is meant to wait out the first, and no other path takes runMu
		select {
		case <-ctx.Done():
			return fail(ctx.Err())
		case in, ok := <-subCh:
			if !ok {
				open = false
				continue
			}
			if len(in) != rt.cfg.LenBytes {
				return fail(fmt.Errorf("core: instance %d: input is %d bytes, want %d", tail+1, len(in), rt.cfg.LenBytes))
			}
			tail++
			inputs[tail] = in
			continue
		case <-doneCh:
		}
		f := inflight[rt.k+1]
		finish(f)
		if f.gen != rt.ds.Gen() {
			// Cannot happen: every gen bump is followed by the barrier
			// below, which reaps all speculation before the next wait.
			return fail(fmt.Errorf("runtime: instance %d committed on stale generation %d != %d (scheduler bug)", f.k, f.gen, rt.ds.Gen()))
		}
		if f.err != nil {
			return fail(f.err)
		}
		if err := rt.proto.Fold(rt.ds, f.ir); err != nil {
			return fail(err)
		}
		res.Instances = append(res.Instances, f.ir)
		rt.k++
		delete(inputs, f.k)
		mCommitLatency.Observe(time.Since(f.started).Seconds())
		if fr.Enabled() {
			fr.Record(fr.Event{
				Type: fr.EvCommit, Node: -1,
				Inst: f.eng.launch, K: int32(f.k), Gen: int32(f.gen),
				Arg: uint64(f.ir.TotalBits),
			})
		}
		if commit != nil {
			if err := commit(f.ir); err != nil {
				return fail(err)
			}
		}
		if rt.ds.Gen() != f.gen {
			// Dispute-control barrier: the committed instance changed the
			// dispute state, so every speculative execution planned on the
			// old snapshot is stale. Abort them; the fill loop relaunches
			// on the fresh snapshot.
			mBarriers.Inc()
			if fr.Enabled() {
				fr.Record(fr.Event{
					Type: fr.EvBarrierOpen, Node: -1,
					Inst: f.eng.launch, K: int32(f.k), Gen: int32(rt.ds.Gen()),
				})
				fr.Trigger(fr.ReasonDispute)
			}
			for _, fl := range inflight {
				res.Replays++
				mReplays.Inc()
				if fr.Enabled() {
					fr.Record(fr.Event{
						Type: fr.EvReplay, Node: -1,
						Inst: fl.eng.launch, K: int32(fl.k), Gen: int32(fl.gen),
					})
				}
				reap(fl)
			}
			if fr.Enabled() {
				fr.Record(fr.Event{
					Type: fr.EvBarrierClose, Node: -1,
					K: int32(rt.k), Gen: int32(rt.ds.Gen()),
				})
			}
			next = rt.k + 1
		}
	}
	res.Wall = time.Since(start)
	res.LinkBits = rt.tr.LinkBits()
	for key, before := range startBits {
		if after := res.LinkBits[key] - before; after > 0 {
			res.LinkBits[key] = after
		} else {
			delete(res.LinkBits, key)
		}
	}
	return res, nil
}

// syncAdversary serializes an Adversary's hooks so overlapping instances
// cannot race on adversary-internal state.
type syncAdversary struct {
	mu    sync.Mutex
	inner core.Adversary
}

// ForInstance forwards core.InstanceScoped: a genuinely per-instance
// adversary is used by one execution at a time, so it gets a wrapper of
// its own. An adversary that answers ForInstance with itself (the legacy
// shared-stream form) must keep THIS wrapper — a fresh one would hand
// overlapping instances distinct mutexes around shared state.
func (s *syncAdversary) ForInstance(k int) core.Adversary {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc, ok := s.inner.(core.InstanceScoped); ok {
		if derived := sc.ForInstance(k); derived != s.inner {
			return &syncAdversary{inner: derived}
		}
	}
	return s
}

func (s *syncAdversary) CorruptBlock(tree int, to graph.NodeID, block core.BitChunk) core.BitChunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.CorruptBlock(tree, to, block)
}

func (s *syncAdversary) CorruptCoded(to graph.NodeID, symbols []gf.Elem) []gf.Elem {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.CorruptCoded(to, symbols)
}

func (s *syncAdversary) OverrideFlag(honest bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.OverrideFlag(honest)
}

func (s *syncAdversary) CorruptClaims(claims *core.Claims) *core.Claims {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.CorruptClaims(claims)
}

func (s *syncAdversary) SilentIn(phase string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.SilentIn(phase)
}
