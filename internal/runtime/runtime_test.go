package runtime_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
	"nab/internal/transport"
)

// mkInputs builds q deterministic distinct inputs.
func mkInputs(q, lenBytes int) [][]byte {
	out := make([][]byte, q)
	for i := range out {
		out[i] = make([]byte, lenBytes)
		for j := range out[i] {
			out[i][j] = byte(i*31 + j*7 + 1)
		}
	}
	return out
}

// runBatch feeds a fixed batch through RunStream — the runtime's only
// run entry point — validating up front so a malformed input rejects the
// whole batch before any instance executes or commits.
func runBatch(rt *runtime.Runtime, inputs [][]byte) (*runtime.Result, error) {
	if err := rt.ValidateInputs(inputs); err != nil {
		return nil, err
	}
	subs := make(chan []byte, len(inputs))
	for _, in := range inputs {
		subs <- in
	}
	close(subs)
	return rt.RunStream(context.Background(), subs, nil)
}

// scenario names an adversary assignment; mk builds fresh adversary state
// per runner so lockstep and pipelined replays start identical.
type scenario struct {
	name   string
	window int // 0 = default (4); stateful adversaries need 1 for replay
	mk     func() map[graph.NodeID]core.Adversary
}

func scenarios(victim graph.NodeID) []scenario {
	return []scenario{
		{name: "Honest", mk: func() map[graph.NodeID]core.Adversary { return nil }},
		{name: "Crash", mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: adversary.Crash{}}
		}},
		{name: "BlockFlipper", mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: &adversary.BlockFlipper{}}
		}},
		{name: "CodedCorruptor", mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: &adversary.CodedCorruptor{}}
		}},
		{name: "FalseAlarm", mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: adversary.FalseAlarm{}}
		}},
		{name: "Random", window: 1, mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: &adversary.Random{RNG: rand.New(rand.NewSource(99))}}
		}},
		// The instance-scoped form (core.InstanceScoped) draws fresh
		// per-instance streams, so it byte-matches lockstep at the
		// default window too.
		{name: "SeededRandom", mk: func() map[graph.NodeID]core.Adversary {
			return map[graph.NodeID]core.Adversary{victim: &adversary.Random{Seed: 99}}
		}},
	}
}

type topology struct {
	name   string
	g      *graph.Directed
	source graph.NodeID
	f      int
	victim graph.NodeID
}

func topologies(t *testing.T) []topology {
	circ, err := topo.Circulant(9, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := topo.OneThinLink(7, 2, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []topology{
		{name: "K7", g: topo.CompleteBi(7, 2), source: 1, f: 2, victim: 3},
		{name: "Circulant9", g: circ, source: 1, f: 1, victim: 4},
		{name: "OneThinLink7", g: thin, source: 1, f: 1, victim: 2},
	}
}

// TestOutputsMatchLockstep is the runtime's core acceptance: for every
// adversary scenario on every topology, the pipelined runtime's committed
// outputs (and dispute evolution) byte-match the lockstep core.Runner.
func TestOutputsMatchLockstep(t *testing.T) {
	const q, lenBytes = 5, 24
	for _, tp := range topologies(t) {
		for _, sc := range scenarios(tp.victim) {
			t.Run(fmt.Sprintf("%s/%s", tp.name, sc.name), func(t *testing.T) {
				inputs := mkInputs(q, lenBytes)
				cfg := core.Config{
					Graph: tp.g, Source: tp.source, F: tp.f,
					LenBytes: lenBytes, Seed: 7, Adversaries: sc.mk(),
				}
				lock, err := core.NewRunner(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := lock.Run(inputs)
				if err != nil {
					t.Fatal(err)
				}

				cfg.Adversaries = sc.mk()
				rt, err := runtime.New(runtime.Config{Config: cfg, Window: sc.window})
				if err != nil {
					t.Fatal(err)
				}
				defer rt.Close()
				got, err := runBatch(rt, inputs)
				if err != nil {
					t.Fatal(err)
				}

				if len(got.Instances) != len(want.Instances) {
					t.Fatalf("committed %d instances, want %d", len(got.Instances), len(want.Instances))
				}
				for i, w := range want.Instances {
					g := got.Instances[i]
					if g.K != w.K {
						t.Errorf("instance %d: K = %d, want %d", i+1, g.K, w.K)
					}
					if len(g.Outputs) != len(w.Outputs) {
						t.Errorf("instance %d: %d outputs, want %d", i+1, len(g.Outputs), len(w.Outputs))
					}
					for v, out := range w.Outputs {
						if !bytes.Equal(g.Outputs[v], out) {
							t.Errorf("instance %d: node %d output %x, want %x", i+1, v, g.Outputs[v], out)
						}
					}
					if g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
						t.Errorf("instance %d: mismatch/phase3 = %v/%v, want %v/%v", i+1, g.Mismatch, g.Phase3, w.Mismatch, w.Phase3)
					}
					if !reflect.DeepEqual(g.NewDisputes, w.NewDisputes) {
						t.Errorf("instance %d: disputes %v, want %v", i+1, g.NewDisputes, w.NewDisputes)
					}
					if !reflect.DeepEqual(g.NewFaulty, w.NewFaulty) {
						t.Errorf("instance %d: faulty %v, want %v", i+1, g.NewFaulty, w.NewFaulty)
					}
					if g.Phase1Time != w.Phase1Time || g.EqualityTime != w.EqualityTime || g.FlagTime != w.FlagTime {
						t.Errorf("instance %d: phase times (%v,%v,%v), want (%v,%v,%v)",
							i+1, g.Phase1Time, g.EqualityTime, g.FlagTime, w.Phase1Time, w.EqualityTime, w.FlagTime)
					}
				}
				// Dispute state must have evolved identically.
				if !lock.InstanceGraph().Equal(rt.InstanceGraph()) {
					t.Error("final instance graphs differ")
				}
				if lock.Disputes().String() != rt.Disputes().String() {
					t.Errorf("final dispute sets differ: %v vs %v", lock.Disputes(), rt.Disputes())
				}
			})
		}
	}
}

// TestSeededRandomReplayDeterminism pins the fix for the old
// determinism caveat (stateful adversaries were only reproducible at
// Window=1): the seeded adversary.Random implements core.InstanceScoped,
// so a windowed pipelined run — including barrier replays forced by a
// false alarmer — commits byte-identical outputs run after run, and
// matches the lockstep Runner.
func TestSeededRandomReplayDeterminism(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	mkCfg := func() core.Config {
		return core.Config{
			Graph: g, Source: 1, F: 2, LenBytes: 16, Seed: 5,
			Adversaries: map[graph.NodeID]core.Adversary{
				3: &adversary.Random{Seed: 123},
				5: adversary.FalseAlarm{}, // force dispute barriers + replays
			},
		}
	}
	inputs := mkInputs(6, 16)

	lock, err := core.NewRunner(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	var prev *runtime.Result
	for trial := 0; trial < 2; trial++ {
		rt, err := runtime.New(runtime.Config{Config: mkCfg(), Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := runBatch(rt, inputs)
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want.Instances {
			for v, out := range w.Outputs {
				if !bytes.Equal(got.Instances[i].Outputs[v], out) {
					t.Fatalf("trial %d instance %d: node %d diverged from lockstep", trial, i+1, v)
				}
			}
			if got.Instances[i].Mismatch != w.Mismatch || got.Instances[i].Phase3 != w.Phase3 {
				t.Fatalf("trial %d instance %d: schedule diverged from lockstep", trial, i+1)
			}
		}
		if prev != nil {
			for i := range prev.Instances {
				if !reflect.DeepEqual(prev.Instances[i].Outputs, got.Instances[i].Outputs) {
					t.Fatalf("instance %d: two windowed runs diverged", i+1)
				}
			}
		}
		prev = got
	}
	if prev.Replays == 0 {
		t.Error("scenario exercised no barrier replays; weaken it not")
	}
}

// TestDisputeBarrierReplays checks the speculation machinery: with a
// false-alarming node and a full window, the barrier aborts the
// speculative instances and re-runs them on the fresh snapshot.
func TestDisputeBarrierReplays(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg := core.Config{
		Graph: g, Source: 1, F: 2, LenBytes: 16, Seed: 3,
		Adversaries: map[graph.NodeID]core.Adversary{4: adversary.FalseAlarm{}},
	}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := runBatch(rt, mkInputs(6, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instances[0].Phase3 {
		t.Error("instance 1 should have run dispute control")
	}
	if res.Replays == 0 {
		t.Error("expected speculative replays at the dispute barrier")
	}
	for i, ir := range res.Instances[1:] {
		if ir.Phase3 {
			t.Errorf("instance %d ran dispute control after the alarmer was excluded", i+2)
		}
	}
}

// TestStreamingRuns checks that consecutive Run calls continue the
// instance sequence and dispute state — the daemon's streaming mode.
func TestStreamingRuns(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	const lenBytes = 16
	inputs := mkInputs(6, lenBytes)
	cfg := core.Config{
		Graph: g, Source: 1, F: 2, LenBytes: lenBytes, Seed: 5,
		Adversaries: map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}},
	}
	lock, err := core.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Adversaries = map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var got []*core.InstanceResult
	var batchBits []int64
	for _, batch := range [][][]byte{inputs[:2], inputs[2:5], inputs[5:]} {
		res, err := runBatch(rt, batch)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Instances...)
		var bits int64
		for _, b := range res.LinkBits {
			bits += b
		}
		batchBits = append(batchBits, bits)
	}
	// LinkBits must be per-run deltas: batch 1 contains the dispute-
	// control transcript broadcast and dwarfs the later clean batches;
	// cumulative counters would only ever grow.
	if batchBits[2] >= batchBits[0] {
		t.Errorf("per-run link bits not a delta: batches accounted %v", batchBits)
	}
	if len(got) != len(want.Instances) {
		t.Fatalf("committed %d instances, want %d", len(got), len(want.Instances))
	}
	for i, w := range want.Instances {
		if got[i].K != w.K {
			t.Errorf("instance %d: K = %d, want %d", i, got[i].K, w.K)
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(got[i].Outputs[v], out) {
				t.Errorf("instance %d: node %d output differs across streamed batches", i+1, v)
			}
		}
	}
}

// TestCloseUnblocksRun checks that closing the runtime mid-run fails the
// run instead of deadlocking the actors on never-arriving markers.
func TestCloseUnblocksRun(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg := core.Config{Graph: g, Source: 1, F: 2, LenBytes: 64, Seed: 1}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := runBatch(rt, mkInputs(64, 64))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the pipeline get going
	rt.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("Run succeeded despite mid-run Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Close (actor deadlock)")
	}
}

// TestTCPTransportRun runs the runtime over the loopback TCP transport.
func TestTCPTransportRun(t *testing.T) {
	g := topo.CompleteBi(4, 1)
	tr, err := transport.NewTCP(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Graph: g, Source: 1, F: 1, LenBytes: 8, Seed: 11}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	inputs := mkInputs(3, 8)
	res, err := runBatch(rt, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range res.Instances {
		for v, out := range ir.Outputs {
			if !bytes.Equal(out, inputs[i]) {
				t.Errorf("instance %d: node %d decided %x, want %x", i+1, v, out, inputs[i])
			}
		}
	}
	if res.Dropped != 0 {
		t.Errorf("honest run dropped %d emissions", res.Dropped)
	}
	bits := int64(0)
	for _, b := range res.LinkBits {
		bits += b
	}
	if bits == 0 {
		t.Error("TCP transport accounted no link bits")
	}
}

// TestAggregateReport sanity-checks the throughput accounting against the
// capacity analysis.
func TestAggregateReport(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg := core.Config{Graph: g, Source: 1, F: 2, LenBytes: 64, Seed: 2}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := runBatch(rt, mkInputs(8, 64))
	if err != nil {
		t.Fatal(err)
	}
	// capacity.Analyze is available via the facade; keep the dependency
	// internal here.
	rep := rt.Report(res, nil)
	if rep.Instances != 8 || rep.LenBits != 512 {
		t.Errorf("report counts: %+v", rep)
	}
	if rep.SequentialTime <= 0 || rep.LinkTime <= 0 {
		t.Errorf("report model times: %+v", rep)
	}
	if rep.LinkTime > rep.SequentialTime {
		t.Errorf("busiest-link time %v exceeds sequential time %v", rep.LinkTime, rep.SequentialTime)
	}
	if rep.PipelinedThroughput < rep.SequentialThroughput {
		t.Errorf("pipelining lowered model throughput: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestRunStreamIncremental drives the streaming scheduler the way a live
// session does — submissions trickle in while earlier instances are still
// in flight, across a dispute-heavy scenario — and requires the committed
// sequence to byte-match the lockstep oracle, with per-commit hooks fired
// strictly in order.
func TestRunStreamIncremental(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	mkCfg := func() core.Config {
		return core.Config{
			Graph: g, Source: 1, F: 2, LenBytes: 16, Seed: 5,
			Adversaries: map[graph.NodeID]core.Adversary{
				3: adversary.FalseAlarm{}, // dispute barriers mid-stream
			},
		}
	}
	const q = 6
	inputs := mkInputs(q, 16)

	lock, err := core.NewRunner(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := runtime.New(runtime.Config{Config: mkCfg(), Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	subs := make(chan []byte) // unbuffered: the scheduler pulls one by one
	go func() {
		defer close(subs)
		for _, in := range inputs {
			subs <- in
			time.Sleep(time.Millisecond) // arrivals straggle behind the pipeline
		}
	}()
	var commits []int
	got, err := rt.RunStream(context.Background(), subs, func(ir *core.InstanceResult) error {
		commits = append(commits, ir.K)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Instances) != q || len(commits) != q {
		t.Fatalf("committed %d instances (%d hooks), want %d", len(got.Instances), len(commits), q)
	}
	for i, w := range want.Instances {
		if commits[i] != i+1 {
			t.Errorf("commit hook %d fired for instance %d", i+1, commits[i])
		}
		gi := got.Instances[i]
		if gi.Mismatch != w.Mismatch || gi.Phase3 != w.Phase3 {
			t.Errorf("instance %d: mismatch/phase3 = %v/%v, want %v/%v", i+1, gi.Mismatch, gi.Phase3, w.Mismatch, w.Phase3)
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(gi.Outputs[v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, gi.Outputs[v], out)
			}
		}
	}
	if lock.Disputes().String() != rt.Disputes().String() {
		t.Errorf("final dispute sets differ: %v vs %v", lock.Disputes(), rt.Disputes())
	}
}

// TestRunStreamCancel cancels a stream mid-flight: RunStream must return
// ctx.Err(), reap its speculative executions, and leave the runtime
// usable for a follow-up run on the same dispute state.
func TestRunStreamCancel(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg := core.Config{
		Graph: g, Source: 1, F: 2, LenBytes: 16, Seed: 5,
		Adversaries: map[graph.NodeID]core.Adversary{
			3: adversary.FalseAlarm{}, // cancellation lands mid-dispute
		},
	}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := mkInputs(1, 16)[0]
	subs := make(chan []byte, 8) // never closed: an open-ended stream
	for i := 0; i < 8; i++ {
		subs <- in
	}
	committed := 0
	_, err = rt.RunStream(ctx, subs, func(ir *core.InstanceResult) error {
		committed++
		if committed == 2 {
			cancel() // later instances are speculative in flight right now
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunStream = %v, want context.Canceled", err)
	}
	if committed < 2 {
		t.Fatalf("canceled after %d commits, want >= 2", committed)
	}

	// The runtime survives: a fresh bounded stream commits more instances
	// on the dispute state the canceled run left behind.
	subs2 := make(chan []byte, 2)
	subs2 <- in
	subs2 <- in
	close(subs2)
	res, err := rt.RunStream(context.Background(), subs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("follow-up run committed %d instances, want 2", len(res.Instances))
	}
	if res.Instances[0].K != committed+1 {
		t.Errorf("follow-up resumed at instance %d, want %d", res.Instances[0].K, committed+1)
	}
}

// TestRunBatchRejectsMalformedUpFront pins the deprecated batch
// contract: a bad input anywhere in the batch fails the whole call
// before any instance executes, commits or advances the schedule.
func TestRunBatchRejectsMalformedUpFront(t *testing.T) {
	cfg := core.Config{Graph: topo.CompleteBi(4, 1), Source: 1, F: 1, LenBytes: 16, Seed: 2}
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	good := mkInputs(2, 16)
	if _, err := runBatch(rt, [][]byte{good[0], good[1], []byte("short")}); err == nil {
		t.Fatal("batch with a malformed input accepted")
	}
	// Nothing committed: the next batch still starts at instance 1.
	res, err := runBatch(rt, good[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances[0].K != 1 {
		t.Errorf("failed batch advanced the schedule: next instance %d, want 1", res.Instances[0].K)
	}
}

// TestRestoreResumesMidSequence replays a committed prefix into a fresh
// runtime (the WAL cold-start path) and finishes the workload: the tail
// must commit byte-identically to the uninterrupted run, dispute
// evolution included.
func TestRestoreResumesMidSequence(t *testing.T) {
	cfg := core.Config{
		Graph: topo.CompleteBi(4, 1), Source: 1, F: 1, LenBytes: 16, Seed: 5,
		Adversaries: map[graph.NodeID]core.Adversary{3: adversary.FalseAlarm{}},
	}
	inputs := mkInputs(8, cfg.LenBytes)

	full, err := runtime.New(runtime.Config{Config: cfg, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	want, err := runBatch(full, inputs)
	if err != nil {
		t.Fatal(err)
	}

	const cut = 3
	rt, err := runtime.New(runtime.Config{Config: cfg, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Restore(1<<32, cut, want.Instances[:cut]); err != nil {
		t.Fatal(err)
	}
	if got := rt.Committed(); got != cut {
		t.Fatalf("restored runtime reports %d committed, want %d", got, cut)
	}
	res, err := runBatch(rt, inputs[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(inputs)-cut {
		t.Fatalf("resumed run committed %d instances, want %d", len(res.Instances), len(inputs)-cut)
	}
	for i, ir := range res.Instances {
		w := want.Instances[cut+i]
		if ir.K != w.K || ir.Mismatch != w.Mismatch || ir.Phase3 != w.Phase3 {
			t.Errorf("instance %d: k/mismatch/phase3 diverged after restore", w.K)
		}
		if !reflect.DeepEqual(ir.Outputs, w.Outputs) {
			t.Errorf("instance %d: outputs diverged after restore", w.K)
		}
	}
	if got, want := rt.Disputes().String(), full.Disputes().String(); got != want {
		t.Errorf("dispute set after restore %q, want %q", got, want)
	}

	// Restore validates its history: gaps without a checkpoint, and
	// out-of-order entries, are rejected.
	bad, err := runtime.New(runtime.Config{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Restore(0, 2, want.Instances[:3]); err == nil {
		t.Error("Restore accepted history beyond its target instance")
	}
	if err := bad.Restore(0, 3, []*core.InstanceResult{want.Instances[1], want.Instances[0]}); err == nil {
		t.Error("Restore accepted out-of-order history")
	}
}
