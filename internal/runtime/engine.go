package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nab/internal/graph"
	"nab/internal/sim"
	"nab/internal/transport"
)

// errAborted reports an instance execution cancelled at a dispute-control
// barrier; the scheduler re-executes the instance on the fresh snapshot.
var errAborted = errors.New("runtime: instance aborted")

// mailbox buffers one node's frames for one instance, indexed by delivery
// step. It is unbounded so transport demultiplexing never blocks behind a
// slow actor (which would couple unrelated instances).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	data    map[uint32][]*transport.Message
	markers map[uint32]int
	closed  bool
}

func newMailbox() *mailbox {
	mb := &mailbox{data: map[uint32][]*transport.Message{}, markers: map[uint32]int{}}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) deliver(m *transport.Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	if m.Marker {
		mb.markers[m.Step]++
		mb.cond.Broadcast()
	} else {
		mb.data[m.Step] = append(mb.data[m.Step], m)
	}
}

// await blocks until every in-neighbour has completed step-1 (sent its
// step-1 marker), then returns the messages due for delivery at step.
// This is the actor-model realization of the synchronous round structure:
// a marker from u promises that all of u's step-1 emissions — delivered at
// step — are already in flight behind it on the FIFO link.
func (mb *mailbox) await(step uint32, need int) ([]*transport.Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if step > 0 {
		for mb.markers[step-1] < need && !mb.closed {
			mb.cond.Wait()
		}
	}
	if mb.closed {
		return nil, errAborted
	}
	out := mb.data[step]
	delete(mb.data, step)
	delete(mb.markers, step-1)
	return out, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// instanceEngine is the message-driven core.PhaseEngine: one actor
// goroutine per node per phase, synchronized by per-link end-of-step
// markers rather than a global round loop. Nodes advance as a wavefront —
// a node runs its step as soon as its own in-neighbourhood has finished
// the previous one — and several engines run concurrently over one shared
// transport, which is what makes instance pipelining real.
//
// The engine preserves sim.Engine's semantics exactly: messages emitted in
// round r are delivered in round r+1, inboxes are ordered by sender,
// final-round emissions carry into the next phase, a node can send only on
// its own outgoing links, and every bit is charged to its link.
type instanceEngine struct {
	launch uint64
	g      *graph.Directed
	send   func(*transport.Message) error

	nodes   []graph.NodeID
	inCount map[graph.NodeID]int
	outNbrs map[graph.NodeID][]graph.NodeID
	procs   map[graph.NodeID]sim.Process
	mail    map[graph.NodeID]*mailbox

	stepBase uint32
	dropped  atomic.Int64
	aborted  atomic.Bool
}

// newInstanceEngine builds the engine for one execution. With a non-nil
// locals set, only those nodes get actors and mailboxes: the remaining
// nodes' actors run in peer processes, whose frames (including
// end-of-step markers) arrive over the shared transport exactly like
// local ones — marker synchronization does not care which process a
// neighbour lives in.
func newInstanceEngine(launch uint64, g *graph.Directed, send func(*transport.Message) error, locals map[graph.NodeID]bool) *instanceEngine {
	e := &instanceEngine{
		launch:  launch,
		g:       g,
		send:    send,
		inCount: map[graph.NodeID]int{},
		outNbrs: map[graph.NodeID][]graph.NodeID{},
		procs:   map[graph.NodeID]sim.Process{},
		mail:    map[graph.NodeID]*mailbox{},
	}
	for _, v := range g.Nodes() {
		if locals != nil && !locals[v] {
			continue
		}
		e.nodes = append(e.nodes, v)
		e.inCount[v] = len(g.InEdges(v))
		for _, ed := range g.OutEdges(v) {
			e.outNbrs[v] = append(e.outNbrs[v], ed.To)
		}
		e.procs[v] = sim.Silent
		e.mail[v] = newMailbox()
	}
	return e
}

// SetProcess implements core.PhaseEngine. Only locally hosted nodes
// accept a process.
func (e *instanceEngine) SetProcess(v graph.NodeID, p sim.Process) error {
	if _, ok := e.mail[v]; !ok {
		return fmt.Errorf("runtime: node %d not hosted by this engine", v)
	}
	if p == nil {
		return fmt.Errorf("runtime: nil process for node %d", v)
	}
	e.procs[v] = p
	return nil
}

// deliver routes one frame into the owning node's mailbox.
func (e *instanceEngine) deliver(m *transport.Message) {
	if mb, ok := e.mail[m.To]; ok {
		mb.deliver(m)
	}
}

// abort cancels the execution: every blocked actor unblocks with
// errAborted. Idempotent.
func (e *instanceEngine) abort() {
	if e.aborted.Swap(true) {
		return
	}
	for _, mb := range e.mail {
		mb.close()
	}
}

// Dropped returns how many emissions violated physics.
func (e *instanceEngine) Dropped() int64 { return e.dropped.Load() }

// RunPhase implements core.PhaseEngine: it runs every node's actor for
// `rounds` steps and returns the phase's capacity charges.
func (e *instanceEngine) RunPhase(name string, rounds int) (*sim.PhaseStats, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("runtime: rounds = %d must be positive", rounds)
	}
	ps := sim.NewPhaseStats(name, e.g, rounds)
	errs := make([]error, len(e.nodes))
	var wg sync.WaitGroup
	for i, v := range e.nodes {
		wg.Add(1)
		go func(i int, v graph.NodeID) {
			defer wg.Done()
			errs[i] = e.runNode(v, e.procs[v], rounds, ps)
			if errs[i] != nil {
				// A failed actor can never send its markers; abort the
				// whole engine so peers don't wait for them forever.
				e.abort()
			}
		}(i, v)
	}
	wg.Wait()
	// Prefer the root cause over the cascade of errAborted it provoked.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errAborted) {
			aborted = err
			continue
		}
		return nil, err
	}
	if aborted != nil {
		return nil, aborted
	}
	e.stepBase += uint32(rounds)
	return ps, nil
}

// runNode is one node's actor for one phase.
func (e *instanceEngine) runNode(v graph.NodeID, proc sim.Process, rounds int, ps *sim.PhaseStats) error {
	mb := e.mail[v]
	for r := 0; r < rounds; r++ {
		abs := e.stepBase + uint32(r)
		frames, err := mb.await(abs, e.inCount[v])
		if err != nil {
			return err
		}
		inbox := make([]sim.Message, 0, len(frames))
		for _, f := range frames {
			inbox = append(inbox, sim.Message{From: f.From, To: f.To, Bits: f.Bits, Body: f.Body})
		}
		sim.SortInbox(inbox)
		for _, m := range proc.Step(r, inbox) {
			if m.From != v || !e.g.HasEdge(m.From, m.To) || m.Bits < 0 {
				// A node cannot forge senders or invent links; physics
				// drops it, exactly as the lockstep engine does.
				e.dropped.Add(1)
				continue
			}
			ps.Charge(r, m.From, m.To, m.Bits)
			if err := e.send(&transport.Message{
				Instance: e.launch, Step: abs + 1,
				From: m.From, To: m.To, Bits: m.Bits, Body: m.Body,
			}); err != nil {
				return err
			}
		}
		for _, u := range e.outNbrs[v] {
			if err := e.send(&transport.Message{
				Instance: e.launch, Step: abs, From: v, To: u, Marker: true,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
