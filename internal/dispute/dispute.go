// Package dispute implements the bookkeeping of NAB's Phase 3 (dispute
// control): the accumulated dispute graph, enumeration of "explaining sets"
// (vertex covers of size at most f), the confirmed-faulty computation (the
// intersection of all explaining sets, step DC4), the diminishing-graph
// rule producing G_{k+1}, and the Omega_k family of candidate fault-free
// subgraphs used to parameterize the equality check.
package dispute

import (
	"fmt"
	"sort"
	"strings"

	"nab/internal/graph"
)

// Set is an accumulated set of disputes: unordered node pairs, each
// guaranteed by the protocol to contain at least one faulty node. The zero
// value is not usable; construct with NewSet.
type Set struct {
	pairs map[[2]graph.NodeID]struct{}
}

// NewSet returns an empty dispute set.
func NewSet() *Set {
	return &Set{pairs: map[[2]graph.NodeID]struct{}{}}
}

func normPair(a, b graph.NodeID) [2]graph.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]graph.NodeID{a, b}
}

// Add records a dispute between a and b. Self-disputes are rejected.
func (s *Set) Add(a, b graph.NodeID) error {
	if a == b {
		return fmt.Errorf("dispute: node %d cannot dispute itself", a)
	}
	s.pairs[normPair(a, b)] = struct{}{}
	return nil
}

// Has reports whether a and b are in dispute.
func (s *Set) Has(a, b graph.NodeID) bool {
	_, ok := s.pairs[normPair(a, b)]
	return ok
}

// Len returns the number of disputing pairs.
func (s *Set) Len() int { return len(s.pairs) }

// Pairs returns the disputes sorted lexicographically.
func (s *Set) Pairs() [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, len(s.pairs))
	for p := range s.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := NewSet()
	for p := range s.pairs {
		c.pairs[p] = struct{}{}
	}
	return c
}

// Merge adds all disputes from o.
func (s *Set) Merge(o *Set) {
	for p := range o.pairs {
		s.pairs[p] = struct{}{}
	}
}

// DisputantsOf returns the nodes in dispute with v, sorted.
func (s *Set) DisputantsOf(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for p := range s.pairs {
		switch v {
		case p[0]:
			out = append(out, p[1])
		case p[1]:
			out = append(out, p[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Support returns all nodes appearing in at least one dispute, sorted.
func (s *Set) Support() []graph.NodeID {
	seen := map[graph.NodeID]struct{}{}
	for p := range s.pairs {
		seen[p[0]] = struct{}{}
		seen[p[1]] = struct{}{}
	}
	return graph.SortedNodeSet(seen)
}

// MarkFaulty records that v has been directly identified as faulty (step
// DC3): per the paper, v is deemed in dispute with every neighbour it has
// in g, which forces v into every explaining set when it has more than f
// neighbours (guaranteed by connectivity >= 2f+1).
func (s *Set) MarkFaulty(g *graph.Directed, v graph.NodeID) error {
	for _, w := range g.Neighbors(v) {
		if err := s.Add(v, w); err != nil {
			return err
		}
	}
	return nil
}

// String renders the set deterministically.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteString("Disputes{")
	for i, p := range s.Pairs() {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d-%d", p[0], p[1])
	}
	sb.WriteString("}")
	return sb.String()
}

// CoverExists reports whether the disputes can be explained by at most
// budget nodes, optionally avoiding one banned node (banned < 0 disables).
// This is exact branch-and-bound vertex cover, exponential only in budget.
func (s *Set) CoverExists(budget int, banned graph.NodeID) bool {
	return coverRec(s.Pairs(), budget, banned)
}

func coverRec(pairs [][2]graph.NodeID, budget int, banned graph.NodeID) bool {
	// Find the first uncovered pair.
	if len(pairs) == 0 {
		return true
	}
	if budget == 0 {
		return false
	}
	first := pairs[0]
	for _, pick := range first {
		if pick == banned {
			continue
		}
		var rest [][2]graph.NodeID
		for _, p := range pairs[1:] {
			if p[0] != pick && p[1] != pick {
				rest = append(rest, p)
			}
		}
		if coverRec(rest, budget-1, banned) {
			return true
		}
	}
	return false
}

// ConfirmedFaulty returns the nodes contained in EVERY explaining set of
// size at most f — the paper's DC4 intersection, which is guaranteed to
// consist of faulty nodes. It returns an error if no explaining set of
// size f exists at all, which would mean more than f nodes misbehaved
// (a model violation worth failing loudly on).
func (s *Set) ConfirmedFaulty(f int) ([]graph.NodeID, error) {
	if !s.CoverExists(f, -1) {
		return nil, fmt.Errorf("dispute: no explaining set of size <= %d exists; fault bound violated", f)
	}
	var confirmed []graph.NodeID
	for _, v := range s.Support() {
		if !s.CoverExists(f, v) {
			confirmed = append(confirmed, v)
		}
	}
	return confirmed, nil
}

// Apply computes the diminished graph of the paper's Phase 3: starting from
// base, remove all confirmed-faulty nodes and their edges, then remove both
// directed edges between every disputing pair. It returns the new graph and
// the confirmed-faulty list.
func (s *Set) Apply(base *graph.Directed, f int) (*graph.Directed, []graph.NodeID, error) {
	confirmed, err := s.ConfirmedFaulty(f)
	if err != nil {
		return nil, nil, err
	}
	out := base.Clone()
	for _, v := range confirmed {
		out.RemoveNode(v)
	}
	for _, p := range s.Pairs() {
		out.RemoveBetween(p[0], p[1])
	}
	return out, confirmed, nil
}

// Omega enumerates the paper's Omega_k: every induced subgraph of gk with
// exactly want nodes such that no two of its nodes are in dispute. want is
// n - f with n the ORIGINAL node count (confirmed-faulty removals shrink gk
// but not the subgraph size requirement). The result is ordered
// deterministically.
func Omega(gk *graph.Directed, s *Set, want int) []*graph.Directed {
	nodes := gk.Nodes()
	if want <= 0 || want > len(nodes) {
		return nil
	}
	var out []*graph.Directed
	cur := make([]graph.NodeID, 0, want)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == want {
			out = append(out, gk.Induced(append([]graph.NodeID(nil), cur...)))
			return
		}
		if len(nodes)-start < want-len(cur) {
			return
		}
		for i := start; i < len(nodes); i++ {
			v := nodes[i]
			ok := true
			for _, u := range cur {
				if s.Has(u, v) {
					ok = false
					break
				}
			}
			if ok {
				cur = append(cur, v)
				rec(i + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0)
	return out
}
