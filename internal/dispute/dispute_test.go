package dispute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nab/internal/graph"
)

func fig1a() *graph.Directed {
	g := graph.NewDirected()
	for _, pair := range [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 1); err != nil {
			panic(err)
		}
	}
	return g
}

func mustAdd(t *testing.T, s *Set, a, b graph.NodeID) {
	t.Helper()
	if err := s.Add(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if err := s.Add(1, 1); err == nil {
		t.Error("self-dispute: expected error")
	}
	mustAdd(t, s, 2, 3)
	mustAdd(t, s, 3, 2) // same pair, reversed
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Has(3, 2) || !s.Has(2, 3) {
		t.Error("Has should be symmetric")
	}
	if s.Has(1, 2) {
		t.Error("phantom dispute")
	}
	mustAdd(t, s, 1, 3)
	d := s.DisputantsOf(3)
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Errorf("DisputantsOf(3) = %v", d)
	}
	sup := s.Support()
	if len(sup) != 3 {
		t.Errorf("Support = %v", sup)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestCloneAndMerge(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, 1, 2)
	c := s.Clone()
	mustAdd(t, c, 3, 4)
	if s.Has(3, 4) {
		t.Error("clone shares storage")
	}
	s.Merge(c)
	if !s.Has(3, 4) || s.Len() != 2 {
		t.Error("merge failed")
	}
}

func TestCoverExists(t *testing.T) {
	s := NewSet()
	mustAdd(t, s, 1, 2)
	mustAdd(t, s, 1, 3)
	// {1} covers both.
	if !s.CoverExists(1, -1) {
		t.Error("cover {1} not found")
	}
	// Avoiding 1 needs {2,3}.
	if s.CoverExists(1, 1) {
		t.Error("budget 1 avoiding 1 should fail")
	}
	if !s.CoverExists(2, 1) {
		t.Error("budget 2 avoiding 1 should succeed")
	}
	// Empty set is covered by nothing.
	if !NewSet().CoverExists(0, -1) {
		t.Error("empty set needs no cover")
	}
}

func TestConfirmedFaultyStar(t *testing.T) {
	// Star of f+1 = 3 disputes centered at node 5 with f=2: node 5 is in
	// every explaining set (matching the paper's "in dispute with f+1
	// distinct nodes => faulty").
	s := NewSet()
	mustAdd(t, s, 5, 1)
	mustAdd(t, s, 5, 2)
	mustAdd(t, s, 5, 3)
	confirmed, err := s.ConfirmedFaulty(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 1 || confirmed[0] != 5 {
		t.Errorf("confirmed = %v, want [5]", confirmed)
	}
}

func TestConfirmedFaultySingleDisputeAmbiguous(t *testing.T) {
	// One dispute {2,3} with f=1: either node explains it; intersection
	// is empty (the paper's Figure 1(b) situation).
	s := NewSet()
	mustAdd(t, s, 2, 3)
	confirmed, err := s.ConfirmedFaulty(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 0 {
		t.Errorf("confirmed = %v, want empty", confirmed)
	}
}

func TestConfirmedFaultyBoundViolation(t *testing.T) {
	// Matching of 3 disjoint disputes needs 3 nodes; with f=2 the fault
	// bound is violated and the call must error.
	s := NewSet()
	mustAdd(t, s, 1, 2)
	mustAdd(t, s, 3, 4)
	mustAdd(t, s, 5, 6)
	if _, err := s.ConfirmedFaulty(2); err == nil {
		t.Error("expected fault-bound violation error")
	}
}

func TestMarkFaultyForcesConfirmation(t *testing.T) {
	// fig1a has connectivity 3 >= 2f+1 with f=1; marking node 2 faulty puts
	// it in dispute with its 2 neighbours (1 and 3), so every 1-cover must
	// contain node 2.
	g := fig1a()
	s := NewSet()
	if err := s.MarkFaulty(g, 2); err != nil {
		t.Fatal(err)
	}
	confirmed, err := s.ConfirmedFaulty(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 1 || confirmed[0] != 2 {
		t.Errorf("confirmed = %v, want [2]", confirmed)
	}
}

func TestApplyFig1b(t *testing.T) {
	// The paper's Figure 1(b): G with nodes 2,3 in dispute -> edges between
	// 2 and 3 removed, no node confirmed.
	g := fig1a()
	s := NewSet()
	mustAdd(t, s, 2, 3)
	gk, confirmed, err := s.Apply(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 0 {
		t.Errorf("confirmed = %v", confirmed)
	}
	if gk.HasEdge(2, 3) || gk.HasEdge(3, 2) {
		t.Error("dispute edges not removed")
	}
	if gk.NumNodes() != 4 || !gk.HasEdge(1, 2) {
		t.Error("apply removed too much")
	}
}

func TestApplyRemovesConfirmed(t *testing.T) {
	g := fig1a()
	s := NewSet()
	if err := s.MarkFaulty(g, 3); err != nil {
		t.Fatal(err)
	}
	gk, confirmed, err := s.Apply(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 1 || confirmed[0] != 3 {
		t.Fatalf("confirmed = %v, want [3]", confirmed)
	}
	if gk.HasNode(3) {
		t.Error("node 3 not removed")
	}
	if gk.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", gk.NumNodes())
	}
}

func TestOmegaFig1b(t *testing.T) {
	// Paper worked example: after dispute {2,3}, Omega_k has exactly the
	// two subgraphs {1,2,4} and {1,3,4}.
	g := fig1a()
	s := NewSet()
	mustAdd(t, s, 2, 3)
	gk, _, err := s.Apply(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	omega := Omega(gk, s, 3)
	if len(omega) != 2 {
		t.Fatalf("Omega has %d subgraphs, want 2", len(omega))
	}
	want := [][]graph.NodeID{{1, 2, 4}, {1, 3, 4}}
	for i, h := range omega {
		nodes := h.Nodes()
		for j := range want[i] {
			if nodes[j] != want[i][j] {
				t.Errorf("subgraph %d = %v, want %v", i, nodes, want[i])
			}
		}
	}
}

func TestOmegaNoDisputes(t *testing.T) {
	g := fig1a()
	omega := Omega(g, NewSet(), 3)
	if len(omega) != 4 { // C(4,3)
		t.Errorf("Omega size = %d, want 4", len(omega))
	}
	// Degenerate wants.
	if Omega(g, NewSet(), 0) != nil {
		t.Error("want=0 should be nil")
	}
	if Omega(g, NewSet(), 9) != nil {
		t.Error("want>n should be nil")
	}
}

func TestOmegaSubgraphsExcludeDisputeEdges(t *testing.T) {
	// Subgraphs are induced from gk, which already lost dispute edges.
	g := fig1a()
	s := NewSet()
	mustAdd(t, s, 1, 2)
	gk, _, err := s.Apply(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range Omega(gk, s, 3) {
		if h.HasEdge(1, 2) || h.HasEdge(2, 1) {
			t.Error("Omega subgraph contains dispute edge")
		}
		// No subgraph contains both 1 and 2.
		if h.HasNode(1) && h.HasNode(2) {
			t.Error("Omega subgraph contains disputing pair")
		}
	}
}

// TestConfirmedFaultyNeverHonest is the key safety property: when disputes
// are generated so that every pair contains at least one member of a
// hidden faulty set F (|F| <= f), ConfirmedFaulty must return a subset of F.
func TestConfirmedFaultyNeverHonest(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		f := 1 + rng.Intn(2)
		// Hidden faulty set.
		perm := rng.Perm(n)
		faulty := map[graph.NodeID]bool{}
		for i := 0; i < f; i++ {
			faulty[graph.NodeID(perm[i]+1)] = true
		}
		s := NewSet()
		// Random disputes, each touching a faulty node.
		for i := 0; i < rng.Intn(6)+1; i++ {
			var fn graph.NodeID
			for v := range faulty {
				fn = v
				break
			}
			other := graph.NodeID(rng.Intn(n) + 1)
			if other == fn {
				continue
			}
			if err := s.Add(fn, other); err != nil {
				return false
			}
		}
		confirmed, err := s.ConfirmedFaulty(f)
		if err != nil {
			return false
		}
		for _, v := range confirmed {
			if !faulty[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisputeBoundFF1(t *testing.T) {
	// The paper bounds dispute-control executions by f(f+1): each run adds
	// a new dispute pair or confirms a new faulty node, and a node pairs
	// with at most f+1 others before confirmation. Verify the bound: a
	// dispute set explained by <= f nodes has at most f*(n-1) pairs but
	// once any node reaches f+1 disputants it is confirmed; simulate the
	// worst accumulation.
	g := fig1a()
	_ = g
	s := NewSet()
	f := 1
	added := 0
	// Adversary strategy: node 2 disputes with 1 then 3 (f+1 = 2 pairs).
	mustAdd(t, s, 2, 1)
	added++
	confirmed, err := s.ConfirmedFaulty(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 0 {
		t.Fatal("confirmed too early")
	}
	mustAdd(t, s, 2, 3)
	added++
	confirmed, err = s.ConfirmedFaulty(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) != 1 || confirmed[0] != 2 {
		t.Fatalf("confirmed = %v, want [2]", confirmed)
	}
	if added > f*(f+1) {
		t.Errorf("needed %d dispute rounds, bound is %d", added, f*(f+1))
	}
}
