package core

import (
	"bytes"
	"math/rand"
	"testing"

	"nab/internal/coding"
	"nab/internal/dispute"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/spantree"
	"nab/internal/topo"
)

func cloneChunk(c BitChunk) BitChunk {
	return BitChunk{Bytes: append([]byte(nil), c.Bytes...), BitLen: c.BitLen}
}

// buildAuditFixture assembles a full honest execution's claims on K4 by
// running the node-state machinery directly (no simulator), so audit
// behaviour can be probed with surgical corruptions.
func buildAuditFixture(t *testing.T) (*auditContext, map[graph.NodeID]*Claims, []byte) {
	t.Helper()
	g := topo.CompleteBi(4, 1)
	const (
		lenBytes = 4
		rho      = 2
		f        = 1
	)
	lenBits := 8 * lenBytes
	symBits := uint((lenBits + rho - 1) / rho)
	field, err := gf.New(symBits)
	if err != nil {
		t.Fatal(err)
	}
	omega := dispute.Omega(g, dispute.NewSet(), g.NumNodes()-f)
	rng := rand.New(rand.NewSource(31))
	scheme, _, err := coding.GenerateVerified(g, rho, field, omega, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := spantree.PackArborescences(g, 1, int(gamma))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte{0xDE, 0xAD, 0xBE, 0xEF}

	// Execute the deterministic protocol by hand: source splits, everyone
	// receives exactly what the tree parent sent.
	blocks, err := splitBits(input, lenBits, len(trees))
	if err != nil {
		t.Fatal(err)
	}
	states := map[graph.NodeID]*nodeState{}
	for _, v := range g.Nodes() {
		states[v] = newNodeState(v, Honest{}, 1, input, lenBits, rho, symBits, 1, trees, scheme, g)
	}
	// Phase 1 (no corruption): propagate down each tree in depth order.
	for ti, tree := range trees {
		order := g.Nodes()
		// repeat passes until all assigned (small graphs: two passes max)
		for pass := 0; pass < g.NumNodes(); pass++ {
			for _, c := range order {
				p, ok := tree.Parent[c]
				if !ok || states[c].haveBlock[ti] {
					continue
				}
				if p == 1 || states[p].haveBlock[ti] {
					var blk BitChunk
					if p == 1 {
						blk = blocks[ti]
					} else {
						blk = states[p].myBlocks[ti]
					}
					states[c].myBlocks[ti] = cloneChunk(blk)
					states[c].haveBlock[ti] = true
					// Claims get independent copies so tests can corrupt
					// one record without aliasing others.
					states[c].recvClaims = append(states[c].recvClaims, TreeEdgeClaim{Tree: ti, From: p, To: c, Block: cloneChunk(blk)})
					states[p].sentClaims = append(states[p].sentClaims, TreeEdgeClaim{Tree: ti, From: p, To: c, Block: cloneChunk(blk)})
				}
			}
		}
	}
	for _, st := range states {
		if err := st.finishPhase1(); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: encode on every edge, record and check.
	sent := map[[2]graph.NodeID][]gf.Elem{}
	for _, e := range g.Edges() {
		syms, err := encodeStriped(scheme, e.From, e.To, states[e.From].x)
		if err != nil {
			t.Fatal(err)
		}
		sent[[2]graph.NodeID{e.From, e.To}] = syms
		states[e.From].sentCoded = append(states[e.From].sentCoded, CodedClaim{From: e.From, To: e.To, Symbols: syms})
	}
	for _, e := range g.Edges() {
		syms := sent[[2]graph.NodeID{e.From, e.To}]
		states[e.To].recvCoded = append(states[e.To].recvCoded, CodedClaim{From: e.From, To: e.To, Symbols: syms})
		mm, err := checkStriped(scheme, e.From, e.To, states[e.To].x, syms, e.Cap)
		if err != nil {
			t.Fatal(err)
		}
		if mm {
			states[e.To].flag = true
		}
	}
	claims := map[graph.NodeID]*Claims{}
	for v, st := range states {
		claims[v] = st.buildClaims()
	}
	ac := &auditContext{
		gk: g, source: 1, trees: trees, scheme: scheme,
		lenBits: lenBits, rho: rho, symBits: symBits, stripes: 1,
	}
	return ac, claims, input
}

func TestAuditCleanRun(t *testing.T) {
	ac, claims, input := buildAuditFixture(t)
	res := ac.Audit(claims)
	if !bytes.Equal(res.Output, input) {
		t.Errorf("output = %x, want %x", res.Output, input)
	}
	if len(res.Disputes) != 0 || len(res.Faulty) != 0 {
		t.Errorf("clean run found disputes %v faulty %v", res.Disputes, res.Faulty)
	}
}

func TestAuditMissingClaims(t *testing.T) {
	ac, claims, input := buildAuditFixture(t)
	claims[3] = nil
	res := ac.Audit(claims)
	if len(res.Faulty) != 1 || res.Faulty[0] != 3 {
		t.Errorf("silent claimant: faulty = %v", res.Faulty)
	}
	if !bytes.Equal(res.Output, input) {
		t.Error("output corrupted by missing claim")
	}
}

func TestAuditSendRecvMismatchIsDispute(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	// Node 2 claims it received a different block on some tree in-edge:
	// that contradicts its parent's send claim -> dispute (2, parent) —
	// and having actually built its value from the true block, node 2's
	// own phase-2 claims become inconsistent with the altered receipt, so
	// node 2 is also identified as faulty. Both are safe outcomes.
	rc := &claims[2].RecvBlocks[0]
	rc.Block.Bytes[0] ^= 0x80
	parent := rc.From
	res := ac.Audit(claims)
	foundDispute := false
	for _, d := range res.Disputes {
		if (d[0] == 2 && d[1] == parent) || (d[0] == parent && d[1] == 2) {
			foundDispute = true
		} else {
			t.Errorf("unrelated dispute %v", d)
		}
	}
	foundFaulty := false
	for _, fv := range res.Faulty {
		if fv == 2 {
			foundFaulty = true
		} else {
			t.Errorf("innocent node %d declared faulty", fv)
		}
	}
	if !foundDispute && !foundFaulty {
		t.Errorf("lie produced no progress: %+v", res)
	}
}

func TestAuditSelfInconsistentSenderIsFaulty(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	// Node 3 claims it SENT a block different from what it claims it
	// received on the same tree: self-inconsistent (DC3).
	var victim *TreeEdgeClaim
	for i := range claims[3].SentBlocks {
		victim = &claims[3].SentBlocks[i]
		break
	}
	if victim == nil {
		t.Skip("node 3 has no tree children in this packing")
	}
	victim.Block.Bytes[0] ^= 0x80
	res := ac.Audit(claims)
	found := false
	for _, fv := range res.Faulty {
		if fv == 3 {
			found = true
		} else {
			t.Errorf("innocent node %d declared faulty", fv)
		}
	}
	if !found {
		t.Errorf("self-inconsistent sender not identified: %+v", res)
	}
}

func TestAuditFlagLiarIsFaulty(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	// Node 4 announced MISMATCH (the authoritative agreed flag) while its
	// claims recompute to NULL.
	claims[4].Flag = true
	res := ac.Audit(claims)
	if len(res.Faulty) != 1 || res.Faulty[0] != 4 {
		t.Errorf("flag liar: faulty = %v, disputes = %v", res.Faulty, res.Disputes)
	}
}

func TestAuditSourceInputMismatchIsFaulty(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	// The source's broadcast input contradicts the blocks it claims to
	// have sent down the trees.
	claims[1].SourceInput = []byte{9, 9, 9, 9}
	res := ac.Audit(claims)
	found := false
	for _, fv := range res.Faulty {
		if fv == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("lying source not identified: %+v", res)
	}
	// Agreement still lands on the (lying) source's broadcast value: all
	// honest nodes share it, which is all a faulty source is owed.
	if !bytes.Equal(res.Output, []byte{9, 9, 9, 9}) {
		t.Errorf("output = %x", res.Output)
	}
}

func TestAuditWrongSizeSourceInput(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	claims[1].SourceInput = []byte{1, 2} // wrong length
	res := ac.Audit(claims)
	if !bytes.Equal(res.Output, make([]byte, 4)) {
		t.Errorf("output should default: %x", res.Output)
	}
	found := false
	for _, fv := range res.Faulty {
		if fv == 1 {
			found = true
		}
	}
	if !found {
		t.Error("malformed source input not flagged")
	}
}

func TestAuditCodedClaimMismatchIsDispute(t *testing.T) {
	ac, claims, _ := buildAuditFixture(t)
	// Node 2 lies about the coded symbols it received from node 3.
	for i := range claims[2].RecvCoded {
		if claims[2].RecvCoded[i].From == 3 {
			claims[2].RecvCoded[i].Symbols = append([]gf.Elem(nil), claims[2].RecvCoded[i].Symbols...)
			claims[2].RecvCoded[i].Symbols[0] ^= 1
			break
		}
	}
	res := ac.Audit(claims)
	// Expected: dispute (2,3) from the cross-check, plus node 2 possibly
	// self-inconsistent (its flag no longer matches the altered receipt).
	okDispute := false
	for _, d := range res.Disputes {
		if d == [2]graph.NodeID{2, 3} {
			okDispute = true
		} else {
			t.Errorf("unrelated dispute %v", d)
		}
	}
	for _, fv := range res.Faulty {
		if fv != 2 {
			t.Errorf("innocent node %d declared faulty", fv)
		}
	}
	if !okDispute && len(res.Faulty) == 0 {
		t.Errorf("coded lie made no progress: %+v", res)
	}
}

func TestUnmarshalClaims(t *testing.T) {
	c := &Claims{Node: 5, Flag: true}
	back := UnmarshalClaims(c.Marshal())
	if back == nil || back.Node != 5 || !back.Flag {
		t.Errorf("round trip: %+v", back)
	}
	if UnmarshalClaims(nil) != nil {
		t.Error("nil input should yield nil")
	}
	if UnmarshalClaims([]byte("not json")) != nil {
		t.Error("garbage should yield nil")
	}
}
