package core

import "fmt"

// BitChunk is a bit string: Bytes holds BitLen bits, most significant bit
// of Bytes[0] first; trailing pad bits are zero.
type BitChunk struct {
	Bytes  []byte `json:"b"`
	BitLen int    `json:"l"`
}

func bitOf(data []byte, i int) byte {
	return (data[i/8] >> (7 - i%8)) & 1
}

func setBit(data []byte, i int) {
	data[i/8] |= 1 << (7 - i%8)
}

// splitBits divides the first totalBits bits of data into parts nearly-equal
// chunks: chunk i covers bits [i*totalBits/parts, (i+1)*totalBits/parts).
// This is the paper's Phase-1 split of the L-bit input into gamma blocks of
// ~L/gamma bits, one per spanning tree.
func splitBits(data []byte, totalBits, parts int) ([]BitChunk, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("core: parts = %d must be positive", parts)
	}
	if totalBits < 0 || totalBits > len(data)*8 {
		return nil, fmt.Errorf("core: totalBits = %d out of range [0, %d]", totalBits, len(data)*8)
	}
	out := make([]BitChunk, parts)
	for p := 0; p < parts; p++ {
		lo := p * totalBits / parts
		hi := (p + 1) * totalBits / parts
		chunk := BitChunk{Bytes: make([]byte, (hi-lo+7)/8), BitLen: hi - lo}
		for i := lo; i < hi; i++ {
			if bitOf(data, i) != 0 {
				setBit(chunk.Bytes, i-lo)
			}
		}
		out[p] = chunk
	}
	return out, nil
}

// joinBits reassembles chunks produced by splitBits back into a byte slice
// carrying totalBits bits. Chunks with wrong lengths are an error (callers
// normalize adversarial chunks before joining).
func joinBits(chunks []BitChunk, totalBits int) ([]byte, error) {
	sum := 0
	for _, c := range chunks {
		if c.BitLen < 0 || len(c.Bytes)*8 < c.BitLen {
			return nil, fmt.Errorf("core: malformed chunk (len %d bits in %d bytes)", c.BitLen, len(c.Bytes))
		}
		sum += c.BitLen
	}
	if sum != totalBits {
		return nil, fmt.Errorf("core: chunks carry %d bits, want %d", sum, totalBits)
	}
	out := make([]byte, (totalBits+7)/8)
	pos := 0
	for _, c := range chunks {
		for i := 0; i < c.BitLen; i++ {
			if bitOf(c.Bytes, i) != 0 {
				setBit(out, pos)
			}
			pos++
		}
	}
	return out, nil
}

// normalizeChunk coerces an arbitrary (possibly adversarial) chunk to
// exactly wantBits bits: truncating or zero-padding as needed, matching the
// model's rule that a missing or malformed message is read as a default
// value.
func normalizeChunk(c BitChunk, wantBits int) BitChunk {
	out := BitChunk{Bytes: make([]byte, (wantBits+7)/8), BitLen: wantBits}
	limit := c.BitLen
	if limit > wantBits {
		limit = wantBits
	}
	if limit > len(c.Bytes)*8 {
		limit = len(c.Bytes) * 8
	}
	for i := 0; i < limit; i++ {
		if bitOf(c.Bytes, i) != 0 {
			setBit(out.Bytes, i)
		}
	}
	return out
}

// chunkEqual compares two chunks bit-for-bit.
func chunkEqual(a, b BitChunk) bool {
	if a.BitLen != b.BitLen {
		return false
	}
	for i := 0; i < a.BitLen; i++ {
		if bitOf(a.Bytes, i) != bitOf(b.Bytes, i) {
			return false
		}
	}
	return true
}
