package core

import (
	"bytes"
	"fmt"
	"math/rand"

	"nab/internal/bb"
	"nab/internal/capacity"
	"nab/internal/coding"
	"nab/internal/dispute"
	"nab/internal/flight"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/relay"
	"nab/internal/sim"
	"nab/internal/spantree"
)

// PhaseEngine abstracts the substrate a NAB instance executes on. The
// lockstep sim.Engine satisfies it directly; internal/runtime provides a
// message-driven implementation whose per-node actors advance by arrival
// instead of global rounds. Both must preserve the synchronous-model
// semantics of sim.Engine.RunPhase: messages emitted in round r are
// delivered in round r+1, inboxes are ordered by sender, messages emitted
// in a phase's final round carry over into the next phase's first round,
// and every transmitted bit is charged to its link.
type PhaseEngine interface {
	SetProcess(v graph.NodeID, p sim.Process) error
	RunPhase(name string, rounds int) (*sim.PhaseStats, error)
}

var _ PhaseEngine = (*sim.Engine)(nil)

// Protocol is a validated NAB configuration plus the instance-independent
// precomputation (relay table). It is immutable after construction and safe
// for concurrent use, so one Protocol can drive many concurrent instances.
type Protocol struct {
	cfg      Config
	n        int
	lenBits  int
	relayTab *relay.Table
}

// NewProtocol validates cfg and precomputes the relay substrate.
func NewProtocol(cfg Config) (*Protocol, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	n := cfg.Graph.NumNodes()
	if cfg.F < 0 || n < 3*cfg.F+1 {
		return nil, fmt.Errorf("core: n = %d must be >= 3f+1 = %d", n, 3*cfg.F+1)
	}
	if !cfg.Graph.HasNode(cfg.Source) {
		return nil, fmt.Errorf("core: source %d not in graph", cfg.Source)
	}
	if cfg.LenBytes <= 0 {
		return nil, fmt.Errorf("core: LenBytes = %d must be positive", cfg.LenBytes)
	}
	if len(cfg.Adversaries) > cfg.F {
		return nil, fmt.Errorf("core: %d adversaries exceed fault bound f = %d", len(cfg.Adversaries), cfg.F)
	}
	if cfg.MaxSchemeTries <= 0 {
		cfg.MaxSchemeTries = 64
	}
	if !cfg.SkipConnectivityCheck {
		conn, err := cfg.Graph.VertexConnectivity()
		if err != nil {
			return nil, fmt.Errorf("core: connectivity: %w", err)
		}
		if conn < 2*cfg.F+1 {
			return nil, fmt.Errorf("core: connectivity %d < 2f+1 = %d", conn, 2*cfg.F+1)
		}
	}
	relayPaths := 2*cfg.F + 1
	if cfg.RelayPaths > 0 {
		if cfg.RelayPaths < relayPaths {
			return nil, fmt.Errorf("core: RelayPaths = %d below 2f+1 = %d breaks reliable relaying", cfg.RelayPaths, relayPaths)
		}
		relayPaths = cfg.RelayPaths
	}
	tab, err := relay.NewTable(cfg.Graph, relayPaths)
	if err != nil {
		return nil, fmt.Errorf("core: relay table: %w", err)
	}
	return &Protocol{cfg: cfg, n: n, lenBits: 8 * cfg.LenBytes, relayTab: tab}, nil
}

// Config returns a copy of the validated configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Graph returns the physical topology G (shared, read-only).
func (p *Protocol) Graph() *graph.Directed { return p.cfg.Graph }

// LenBits returns the per-instance input size in bits.
func (p *Protocol) LenBits() int { return p.lenBits }

// honestNodes lists the fault-free nodes (known to the harness, not the
// protocol).
func (p *Protocol) honestNodes() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range p.cfg.Graph.Nodes() {
		if _, bad := p.cfg.Adversaries[v]; !bad {
			out = append(out, v)
		}
	}
	return out
}

func (p *Protocol) adversaryFor(v graph.NodeID) Adversary {
	if a, bad := p.cfg.Adversaries[v]; bad {
		return a
	}
	return Honest{}
}

// DisputeState is the cross-instance protocol state NAB carries between
// instances: the accumulated dispute set, the diminished instance graph
// G_k, and the nodes proven faulty so far. Gen increments on every change,
// so speculative executors can detect stale snapshots.
type DisputeState struct {
	disputes    *dispute.Set
	gk          *graph.Directed
	faultySoFar map[graph.NodeID]bool
	gen         int
}

// NewDisputeState returns the instance-1 state: no disputes, G_1 = G.
func NewDisputeState(g *graph.Directed) *DisputeState {
	return &DisputeState{
		disputes:    dispute.NewSet(),
		gk:          g.Clone(),
		faultySoFar: map[graph.NodeID]bool{},
	}
}

// Clone snapshots the state; speculative executors plan instances on a
// snapshot while the live state keeps folding.
func (ds *DisputeState) Clone() *DisputeState {
	faulty := make(map[graph.NodeID]bool, len(ds.faultySoFar))
	for v, b := range ds.faultySoFar {
		faulty[v] = b
	}
	return &DisputeState{
		disputes:    ds.disputes.Clone(),
		gk:          ds.gk.Clone(),
		faultySoFar: faulty,
		gen:         ds.gen,
	}
}

// Graph returns a copy of the current instance graph G_k.
func (ds *DisputeState) Graph() *graph.Directed { return ds.gk.Clone() }

// Disputes returns a copy of the accumulated dispute set.
func (ds *DisputeState) Disputes() *dispute.Set { return ds.disputes.Clone() }

// Gen returns the state generation, bumped by every Fold that changed the
// dispute state.
func (ds *DisputeState) Gen() int { return ds.gen }

// InstancePlan is the instance-independent part of preparing a NAB
// instance on one dispute-state snapshot: instance parameters (gamma, rho,
// symbol layout), the verified coding scheme, and the packed arborescences.
// A plan is immutable and may be reused (and executed concurrently) for
// every instance that runs on the same snapshot — this is the
// coding-scheme/arborescence cache the pipelined runtime keys by Gen.
type InstancePlan struct {
	p  *Protocol
	gk *graph.Directed

	sourceGone bool
	excluded   int
	tolerance  int
	phase1Only bool

	gamma       int64
	rho         int
	symBits     uint
	stripes     int
	scheme      *coding.Scheme
	trees       []*spantree.Arborescence
	schemeTries int
	maxDepth    int
}

// PlanInstance derives the plan for instance k on the given dispute-state
// snapshot, drawing coding matrices from rng. k is used in error messages
// only.
func (p *Protocol) PlanInstance(ds *DisputeState, k int, rng *rand.Rand) (*InstancePlan, error) {
	pl := &InstancePlan{p: p, gk: ds.gk.Clone()}

	// Source already proven faulty: agree on the default value, no traffic.
	if !pl.gk.HasNode(p.cfg.Source) {
		pl.sourceGone = true
		return pl, nil
	}

	pl.excluded = p.n - pl.gk.NumNodes()
	pl.tolerance = p.cfg.F - pl.excluded
	if pl.tolerance < 0 {
		pl.tolerance = 0
	}
	pl.phase1Only = pl.excluded >= p.cfg.F

	gamma, err := capacity.Gamma(pl.gk, p.cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: gamma: %w", k, err)
	}
	if p.cfg.GammaOverride > 0 && int64(p.cfg.GammaOverride) < gamma {
		gamma = int64(p.cfg.GammaOverride)
	}
	pl.gamma = gamma
	omega := dispute.Omega(pl.gk, ds.disputes, p.n-p.cfg.F)
	rho, err := capacity.Rho(omega)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: rho: %w", k, err)
	}
	if p.cfg.RhoOverride > 0 && p.cfg.RhoOverride < rho {
		rho = p.cfg.RhoOverride
	}
	pl.rho = rho
	// The paper's symbols have L/rho bits. We realize wide symbols as
	// `stripes` machine words over GF(2^symBits), symBits <= 64: the
	// per-bit time cost stays L/rho (up to rounding) and any differing
	// stripe is caught by the per-stripe check.
	symBits := uint((p.lenBits + rho - 1) / rho)
	if symBits > 64 {
		symBits = 64
	}
	stripes := (p.lenBits + rho*int(symBits) - 1) / (rho * int(symBits))
	if stripes < 1 {
		stripes = 1
	}
	pl.symBits = symBits
	pl.stripes = stripes
	field, err := gf.New(symBits)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: field: %w", k, err)
	}
	pl.scheme, pl.schemeTries, err = coding.GenerateVerified(pl.gk, rho, field, omega, rng, p.cfg.MaxSchemeTries)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: scheme: %w", k, err)
	}
	pl.trees, err = spantree.PackArborescences(pl.gk, p.cfg.Source, int(gamma))
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: trees: %w", k, err)
	}
	for _, tr := range pl.trees {
		if d := tr.Depth(); d > pl.maxDepth {
			pl.maxDepth = d
		}
	}
	return pl, nil
}

// ScheduleView supplies or records the two mid-instance schedule decisions
// of one instance execution: whether Phase 3 runs (the agreed MISMATCH
// bit) and the dispute-control audit findings. A partial execution whose
// local nodes all sit outside V_k cannot derive them from its own
// broadcast decodes, yet must still follow the agreed schedule (relays
// participate in Phase 3, and every process folds the same dispute
// deltas); the view is its window onto the rest of the cluster.
//
// Decided* is invoked when the execution derived the decision locally —
// a coordinator's view broadcasts it to the processes that asked.
// Need* is invoked when it could not; the call may block until the
// decision arrives (and should fail rather than block forever once the
// execution is abandoned).
type ScheduleView interface {
	DecidedMismatch(mismatch bool) error
	NeedMismatch() (bool, error)
	DecidedAudit(a *AuditResult) error
	NeedAudit() (*AuditResult, error)
}

// LocalView restricts an instance execution to the nodes one process
// hosts. The nil view (or a nil Locals set) is the classic single-process
// execution: every node is local and no ScheduleView is consulted.
type LocalView struct {
	// Locals are the nodes whose actors this process runs. Remote nodes'
	// processes are never constructed and never given to the engine —
	// their traffic arrives over the transport from the peers hosting
	// them.
	Locals map[graph.NodeID]bool
	// Sched resolves mid-instance schedule decisions no local node can
	// decode. Required only for partial executions that may host
	// excluded-from-V_k nodes.
	Sched ScheduleView
}

// local reports whether node v is hosted by this execution.
func (lv *LocalView) local(v graph.NodeID) bool {
	return lv == nil || lv.Locals == nil || lv.Locals[v]
}

// partial reports whether the execution hosts a strict subset of nodes.
func (lv *LocalView) partial() bool { return lv != nil && lv.Locals != nil }

func (lv *LocalView) sched() ScheduleView {
	if lv == nil {
		return nil
	}
	return lv.Sched
}

// Execute runs instance k broadcasting input on the given engine. It does
// not touch cross-instance state; fold the result with Protocol.Fold.
func (pl *InstancePlan) Execute(engine PhaseEngine, k int, input []byte) (*InstanceResult, error) {
	return pl.ExecuteLocal(engine, k, input, nil)
}

// ExecuteLocal runs instance k's protocol for the nodes in view only —
// the distributed deployment's per-process execution. Every process of a
// cluster calls ExecuteLocal with the same plan and input but its own
// Locals set; the union of their behaviours over a shared transport is
// exactly one Execute, and each InstanceResult carries the outputs of the
// local fault-free nodes plus the (cluster-agreed) mismatch bit and
// dispute findings, so every process can Fold identically. A nil view
// executes every node (identical to Execute).
func (pl *InstancePlan) ExecuteLocal(engine PhaseEngine, k int, input []byte, view *LocalView) (*InstanceResult, error) {
	p := pl.p
	ir := &InstanceResult{K: k, Outputs: map[graph.NodeID][]byte{}}
	if len(input) != p.cfg.LenBytes {
		return nil, fmt.Errorf("core: instance %d: input is %d bytes, want %d", k, len(input), p.cfg.LenBytes)
	}

	if pl.sourceGone {
		def := make([]byte, p.cfg.LenBytes)
		for _, v := range p.honestNodes() {
			if view.local(v) {
				ir.Outputs[v] = def
			}
		}
		return ir, nil
	}

	ir.ExcludedNodes = pl.excluded
	ir.Phase1Only = pl.phase1Only
	ir.Gamma = pl.gamma
	ir.Rho = pl.rho
	ir.SymBits = pl.symBits
	ir.Stripes = pl.stripes
	ir.SchemeTries = pl.schemeTries

	// Node states over the physical graph G; nodes outside V_k participate
	// only as relays. Only local nodes get state: remote actors run in the
	// processes hosting them.
	states := map[graph.NodeID]*nodeState{}
	for _, v := range pl.gk.Nodes() {
		if !view.local(v) {
			continue
		}
		adv := p.adversaryFor(v)
		if sc, ok := adv.(InstanceScoped); ok {
			adv = sc.ForInstance(k)
		}
		states[v] = newNodeState(v, adv, p.cfg.Source, input, p.lenBits, pl.rho, pl.symBits, pl.stripes, pl.trees, pl.scheme, pl.gk)
	}

	// ---- Phase 1: unreliable broadcast over the packed arborescences.
	for _, v := range p.cfg.Graph.Nodes() {
		if !view.local(v) {
			continue
		}
		st, inVk := states[v]
		if !inVk {
			if err := engine.SetProcess(v, sim.Silent); err != nil {
				return nil, err
			}
			continue
		}
		if err := engine.SetProcess(v, st.phase1Process()); err != nil {
			return nil, err
		}
	}
	recordPhase(k, flight.Phase1)
	p1, err := engine.RunPhase("phase1", pl.maxDepth+1)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: phase 1: %w", k, err)
	}
	ir.Phase1Time = p1.CutThroughTime()
	ir.Phase1SFTime = p1.StoreForwardTime()
	ir.Phase1Rounds = pl.maxDepth
	for _, st := range states {
		if err := st.finishPhase1(); err != nil {
			return nil, err
		}
	}

	if pl.phase1Only {
		// All remaining nodes are fault-free: Phase 1 output is final.
		for _, v := range p.honestNodes() {
			if view.local(v) {
				ir.Outputs[v] = states[v].value
			}
		}
		ir.TotalBits = p1.TotalBits()
		return ir, nil
	}

	// ---- Phase 2, step 2.1: equality check.
	for _, v := range p.cfg.Graph.Nodes() {
		if !view.local(v) {
			continue
		}
		st, inVk := states[v]
		if !inVk {
			if err := engine.SetProcess(v, sim.Silent); err != nil {
				return nil, err
			}
			continue
		}
		if err := engine.SetProcess(v, st.equalityProcess()); err != nil {
			return nil, err
		}
	}
	recordPhase(k, flight.PhaseEquality)
	eq, err := engine.RunPhase("equality", 2)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: equality: %w", k, err)
	}
	ir.EqualityTime = eq.CutThroughTime()

	// ---- Phase 2, step 2.2: agree on every node's 1-bit flag.
	participants := pl.gk.Nodes()
	recordPhase(k, flight.PhaseFlags)
	flagNodes, err := p.runBroadcast(engine, states, participants, pl.tolerance, func(st *nodeState) []byte {
		if st.announcedFlag() {
			return []byte{1}
		}
		return []byte{0}
	}, "flags", view)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: flags: %w", k, err)
	}
	fl := flagNodes.stats
	ir.FlagTime = fl.CutThroughTime()

	// Decode agreed flags per local honest node and check agreement.
	honest := p.honestNodes()
	decodeFlags := func(nd *bb.Node) map[graph.NodeID]bool {
		local := map[graph.NodeID]bool{}
		for _, q := range participants {
			dec := nd.Decide(q)
			local[q] = len(dec) == 1 && dec[0] == 1
		}
		return local
	}
	agreedFlags := map[graph.NodeID]bool{}
	haveFlags := false
	for _, v := range honest {
		if !view.local(v) {
			continue
		}
		nd := flagNodes.nodes[v]
		if nd == nil {
			continue
		}
		local := decodeFlags(nd)
		if !haveFlags {
			agreedFlags = local
			haveFlags = true
			continue
		}
		for q, f := range local {
			if agreedFlags[q] != f {
				return nil, fmt.Errorf("core: instance %d: flag agreement violated at node %d for general %d", k, v, q)
			}
		}
	}
	if !haveFlags && view.partial() {
		// No local honest participant; a local faulty node's passive decode
		// still tracks the agreed schedule (the host process is untrusted
		// only to the extent its node already is).
		for _, q := range participants {
			if nd := flagNodes.nodes[q]; nd != nil {
				agreedFlags = decodeFlags(nd)
				haveFlags = true
				break
			}
		}
	}
	switch {
	case haveFlags:
		for _, q := range participants {
			if agreedFlags[q] {
				ir.Mismatch = true
			}
		}
		if s := view.sched(); s != nil {
			if err := s.DecidedMismatch(ir.Mismatch); err != nil {
				return nil, fmt.Errorf("core: instance %d: publish mismatch: %w", k, err)
			}
		}
	case view.partial():
		// Every local node sits outside V_k (relay duty only): the agreed
		// schedule must come from a peer that decoded it.
		s := view.sched()
		if s == nil {
			return nil, fmt.Errorf("core: instance %d: no local participant decoded the flag agreement and no schedule view is configured", k)
		}
		mm, err := s.NeedMismatch()
		if err != nil {
			return nil, fmt.Errorf("core: instance %d: await mismatch: %w", k, err)
		}
		ir.Mismatch = mm
	}

	if !ir.Mismatch {
		for _, v := range honest {
			if view.local(v) {
				ir.Outputs[v] = states[v].value
			}
		}
		ir.TotalBits = p1.TotalBits() + eq.TotalBits() + fl.TotalBits()
		return ir, nil
	}

	// ---- Phase 3: dispute control.
	ir.Phase3 = true
	recordPhase(k, flight.PhaseClaims)
	claimNodes, err := p.runBroadcast(engine, states, participants, pl.tolerance, func(st *nodeState) []byte {
		c := st.buildClaims()
		if c == nil {
			return nil
		}
		return c.Marshal()
	}, "claims", view)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: claims: %w", k, err)
	}
	dc := claimNodes.stats
	ir.DisputeTime = dc.CutThroughTime()

	ac := &auditContext{
		gk: pl.gk, source: p.cfg.Source, trees: pl.trees, scheme: pl.scheme,
		lenBits: p.lenBits, rho: pl.rho, symBits: pl.symBits, stripes: pl.stripes,
	}
	decodeAudit := func(nd *bb.Node) *AuditResult {
		claims := map[graph.NodeID]*Claims{}
		for _, q := range participants {
			c := UnmarshalClaims(nd.Decide(q))
			if c != nil && c.Node != q {
				c = nil // claiming to be someone else: discard
			}
			if c != nil {
				c.Flag = agreedFlags[q] // the announced flag is the agreed one
			}
			claims[q] = c
		}
		return ac.Audit(claims)
	}
	var agreed *AuditResult
	for _, v := range honest {
		if !view.local(v) {
			continue
		}
		nd := claimNodes.nodes[v]
		if nd == nil {
			continue
		}
		res := decodeAudit(nd)
		if agreed == nil {
			agreed = res
		} else if !auditEqual(agreed, res) {
			return nil, fmt.Errorf("core: instance %d: audit divergence at node %d (bug)", k, v)
		}
		ir.Outputs[v] = res.Output
	}
	if agreed == nil && view.partial() {
		// Fall back to a local faulty node's passive decode for the fold.
		for _, q := range participants {
			if nd := claimNodes.nodes[q]; nd != nil {
				agreed = decodeAudit(nd)
				break
			}
		}
	}
	switch {
	case agreed != nil:
		if s := view.sched(); s != nil {
			if err := s.DecidedAudit(agreed); err != nil {
				return nil, fmt.Errorf("core: instance %d: publish audit: %w", k, err)
			}
		}
	case view.partial():
		s := view.sched()
		if s == nil {
			return nil, fmt.Errorf("core: instance %d: no local participant decoded the claims and no schedule view is configured", k)
		}
		agreed, err = s.NeedAudit()
		if err != nil {
			return nil, fmt.Errorf("core: instance %d: await audit: %w", k, err)
		}
	default:
		return nil, fmt.Errorf("core: instance %d: no honest nodes to audit", k)
	}
	ir.NewDisputes = agreed.Disputes
	ir.NewFaulty = agreed.Faulty

	ir.TotalBits = p1.TotalBits() + eq.TotalBits() + fl.TotalBits() + dc.TotalBits()
	return ir, nil
}

// Fold applies an instance's dispute-control findings to the
// cross-instance state, diminishing G_k. A no-op unless Phase 3 ran. The
// caller must fold instances in order; the pipelined runtime serializes
// folds and re-executes instances planned on stale snapshots.
func (p *Protocol) Fold(ds *DisputeState, ir *InstanceResult) error {
	if !ir.Phase3 {
		return nil
	}
	progress := false
	for _, pair := range ir.NewDisputes {
		if !ds.disputes.Has(pair[0], pair[1]) {
			progress = true
		}
		if err := ds.disputes.Add(pair[0], pair[1]); err != nil {
			return err
		}
	}
	for _, v := range ir.NewFaulty {
		if !ds.faultySoFar[v] {
			progress = true
			ds.faultySoFar[v] = true
		}
		if err := ds.disputes.MarkFaulty(p.cfg.Graph, v); err != nil {
			return err
		}
	}
	if !progress {
		return fmt.Errorf("core: instance %d: dispute control made no progress (bug: paper guarantees a new dispute or faulty node)", ir.K)
	}
	next, _, err := ds.disputes.Apply(p.cfg.Graph, p.cfg.F)
	if err != nil {
		return fmt.Errorf("core: instance %d: diminishing graph: %w", ir.K, err)
	}
	ds.gk = next
	ds.gen++
	return nil
}

// broadcastResult couples the per-node EIG states with the phase stats.
type broadcastResult struct {
	nodes map[graph.NodeID]*bb.Node
	stats *sim.PhaseStats
}

// muted wraps a sim.Process so it consumes its inbox but emits nothing —
// the passive decoder a partial execution uses for silent local nodes, so
// the host process still learns the agreed outcome without touching the
// wire. Wire traffic and capacity charges are identical to sim.Silent.
func muted(p sim.Process) sim.Process {
	return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		p.Step(round, inbox)
		return nil
	})
}

// runBroadcast runs one simultaneous classic-BB round (flags or claims)
// among participants, with non-participants relaying. Only the view's
// local nodes are driven; the round count is derived from the relay table
// so relay-only processes agree on it without constructing a BB node.
func (p *Protocol) runBroadcast(engine PhaseEngine, states map[graph.NodeID]*nodeState, participants []graph.NodeID, tolerance int, valueOf func(*nodeState) []byte, phase string, view *LocalView) (*broadcastResult, error) {
	nodes := map[graph.NodeID]*bb.Node{}
	rounds := (tolerance+1)*p.relayTab.Rounds() + 1
	for _, v := range p.cfg.Graph.Nodes() {
		if !view.local(v) {
			continue
		}
		st, inVk := states[v]
		router := relay.NewRouter(v, p.relayTab)
		if !inVk {
			// Relay-only duty.
			if err := engine.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
				return router.HandleAll(inbox)
			})); err != nil {
				return nil, err
			}
			continue
		}
		if st.adv.SilentIn(phase) {
			if !view.partial() {
				if err := engine.SetProcess(v, sim.Silent); err != nil {
					return nil, err
				}
				continue
			}
			// Partial execution: decode passively (valueOf — and its
			// adversary hooks — is not consulted, matching the lockstep
			// hook sequence for silent nodes).
			nd, err := bb.NewNode(v, participants, tolerance, router, nil)
			if err != nil {
				return nil, err
			}
			nodes[v] = nd
			if err := engine.SetProcess(v, muted(nd)); err != nil {
				return nil, err
			}
			continue
		}
		nd, err := bb.NewNode(v, participants, tolerance, router, valueOf(st))
		if err != nil {
			return nil, err
		}
		if nd.Rounds() != rounds {
			return nil, fmt.Errorf("core: %s rounds mismatch: node %d wants %d, schedule says %d (bug)", phase, v, nd.Rounds(), rounds)
		}
		nodes[v] = nd
		if err := engine.SetProcess(v, nd); err != nil {
			return nil, err
		}
	}
	stats, err := engine.RunPhase(phase, rounds)
	if err != nil {
		return nil, err
	}
	for _, nd := range nodes {
		nd.Finish()
	}
	return &broadcastResult{nodes: nodes, stats: stats}, nil
}

func auditEqual(a, b *AuditResult) bool {
	if !bytes.Equal(a.Output, b.Output) {
		return false
	}
	if len(a.Disputes) != len(b.Disputes) || len(a.Faulty) != len(b.Faulty) {
		return false
	}
	for i := range a.Disputes {
		if a.Disputes[i] != b.Disputes[i] {
			return false
		}
	}
	for i := range a.Faulty {
		if a.Faulty[i] != b.Faulty[i] {
			return false
		}
	}
	return true
}
