package core

import "nab/internal/flight"

// recordPhase emits one flight-recorder phase event for instance k —
// the causal boundary markers tools/nabtrace turns into spans (a phase
// ends where the next one, or the commit, begins). Both engines run
// phases through ExecuteLocal, so lockstep sessions trace identically
// to pipelined ones. Recording is a passive observation: it cannot
// affect protocol decisions, so determinism is untouched.
func recordPhase(k int, code uint32) {
	if !flight.Enabled() {
		return
	}
	flight.Record(flight.Event{Type: flight.EvPhase, Node: -1, K: int32(k), Step: code})
}
