package core

import (
	"fmt"

	"nab/internal/coding"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/sim"
	"nab/internal/spantree"
)

// Phase1Msg carries one tree block during unreliable broadcast.
type Phase1Msg struct {
	Tree  int
	Block BitChunk
}

// EqMsg carries the coded symbols of the equality check.
type EqMsg struct {
	Symbols []gf.Elem
}

// nodeState is the per-node, per-instance protocol state shared by the
// phase processes. Honest nodes record truthful claims as they go; the
// adversary hooks let faulty nodes deviate at each decision point while the
// recorded state still reflects what they actually did or pretended.
type nodeState struct {
	id     graph.NodeID
	adv    Adversary
	source graph.NodeID

	lenBits int
	gamma   int
	rho     int
	symBits uint
	stripes int

	trees  []*spantree.Arborescence
	scheme *coding.Scheme
	gk     *graph.Directed

	input []byte // source only

	myBlocks   []BitChunk // one per tree; zero chunk until received
	haveBlock  []bool
	recvClaims []TreeEdgeClaim
	sentClaims []TreeEdgeClaim

	value     []byte
	x         [][]gf.Elem // stripes x rho symbols
	sentCoded []CodedClaim
	recvCoded []CodedClaim
	flag      bool
}

// newNodeState prepares instance state for one node.
func newNodeState(id graph.NodeID, adv Adversary, source graph.NodeID, input []byte, lenBits, rho int, symBits uint, stripes int, trees []*spantree.Arborescence, scheme *coding.Scheme, gk *graph.Directed) *nodeState {
	st := &nodeState{
		id: id, adv: adv, source: source, input: input,
		lenBits: lenBits, gamma: len(trees), rho: rho, symBits: symBits, stripes: stripes,
		trees: trees, scheme: scheme, gk: gk,
		myBlocks:  make([]BitChunk, len(trees)),
		haveBlock: make([]bool, len(trees)),
	}
	for ti := range trees {
		st.myBlocks[ti] = normalizeChunk(BitChunk{}, st.blockBits(ti))
	}
	return st
}

func (st *nodeState) blockBits(tree int) int {
	lo := tree * st.lenBits / st.gamma
	hi := (tree + 1) * st.lenBits / st.gamma
	return hi - lo
}

// phase1Process returns the unreliable-broadcast behaviour: the source
// launches its split input down every tree in round 0; other nodes forward
// each tree's block to their tree children upon first receipt.
func (st *nodeState) phase1Process() sim.Process {
	return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		var out []sim.Message
		if round == 0 && st.id == st.source {
			blocks, err := splitBits(st.input, st.lenBits, st.gamma)
			if err != nil {
				// Config validation guarantees splittable input.
				panic("core: source split: " + err.Error())
			}
			for ti := range st.trees {
				st.myBlocks[ti] = blocks[ti]
				st.haveBlock[ti] = true
				out = append(out, st.forwardBlock(ti)...)
			}
			return out
		}
		for _, m := range inbox {
			pm, ok := m.Body.(Phase1Msg)
			if !ok || pm.Tree < 0 || pm.Tree >= st.gamma {
				continue
			}
			tree := st.trees[pm.Tree]
			parent, inTree := tree.Parent[st.id]
			if !inTree || parent != m.From || st.haveBlock[pm.Tree] {
				continue // not my tree in-edge, or duplicate
			}
			block := normalizeChunk(pm.Block, st.blockBits(pm.Tree))
			st.myBlocks[pm.Tree] = block
			st.haveBlock[pm.Tree] = true
			st.recvClaims = append(st.recvClaims, TreeEdgeClaim{Tree: pm.Tree, From: parent, To: st.id, Block: block})
			out = append(out, st.forwardBlock(pm.Tree)...)
		}
		return out
	})
}

// forwardBlock emits the block of the given tree to the node's children,
// applying the adversary's corruption hook per child.
func (st *nodeState) forwardBlock(tree int) []sim.Message {
	if st.adv.SilentIn("phase1") {
		return nil
	}
	var out []sim.Message
	for _, e := range st.trees[tree].Edges() {
		if e.From != st.id {
			continue
		}
		block := st.adv.CorruptBlock(tree, e.To, st.myBlocks[tree])
		st.sentClaims = append(st.sentClaims, TreeEdgeClaim{Tree: tree, From: st.id, To: e.To, Block: block})
		out = append(out, sim.Message{
			From: st.id,
			To:   e.To,
			Bits: int64(block.BitLen),
			Body: Phase1Msg{Tree: tree, Block: block},
		})
	}
	return out
}

// finishPhase1 assembles the node's value from its (normalized) blocks; the
// source uses its own input.
func (st *nodeState) finishPhase1() error {
	if st.id == st.source {
		st.value = st.input
	} else {
		v, err := joinBits(st.myBlocks, st.lenBits)
		if err != nil {
			return fmt.Errorf("core: node %d join: %w", st.id, err)
		}
		st.value = v
		// Record "received nothing" claims for trees that never delivered,
		// so the audit sees the default-value reads.
		for ti, ok := range st.haveBlock {
			if !ok {
				parent := st.trees[ti].Parent[st.id]
				st.recvClaims = append(st.recvClaims, TreeEdgeClaim{Tree: ti, From: parent, To: st.id, Block: st.myBlocks[ti]})
			}
		}
	}
	x, err := packStriped(st.value, st.rho, st.symBits, st.stripes)
	if err != nil {
		return fmt.Errorf("core: node %d pack: %w", st.id, err)
	}
	st.x = x
	return nil
}

// packStriped views data as stripes x rho symbols of symBits bits: the
// paper's single GF(2^(L/rho)) symbol vector, realized as multiple words
// over a machine-sized field. Any stripe differing between two values is
// caught by the per-stripe equality check, so soundness is preserved while
// the per-bit time cost stays L/rho.
func packStriped(data []byte, rho int, symBits uint, stripes int) ([][]gf.Elem, error) {
	flat, err := coding.PackValue(data, rho*stripes, symBits)
	if err != nil {
		return nil, err
	}
	out := make([][]gf.Elem, stripes)
	for s := 0; s < stripes; s++ {
		out[s] = flat[s*rho : (s+1)*rho]
	}
	return out, nil
}

// encodeStriped computes the concatenated coded symbols for one edge:
// stripe s contributes X_s * C_e (z_e symbols each). The result is one
// exactly-sized allocation (it escapes into the outgoing message and the
// node's sent-claims record) filled in place by EncodeInto.
func encodeStriped(scheme *coding.Scheme, from, to graph.NodeID, x [][]gf.Elem) ([]gf.Elem, error) {
	m := scheme.EdgeMatrix(from, to)
	if m == nil {
		return nil, fmt.Errorf("core: no coding matrix for edge (%d,%d)", from, to)
	}
	cols := m.Cols()
	flat := make([]gf.Elem, len(x)*cols)
	for s, stripe := range x {
		if err := scheme.EncodeInto(from, to, stripe, flat[s*cols:(s+1)*cols]); err != nil {
			return nil, err
		}
	}
	return flat, nil
}

// checkStriped runs the receiver-side comparison for all stripes; any
// stripe mismatch (or a malformed symbol count) is a MISMATCH.
func checkStriped(scheme *coding.Scheme, from, to graph.NodeID, x [][]gf.Elem, flat []gf.Elem, edgeCap int64) (bool, error) {
	want := int(edgeCap) * len(x)
	if len(flat) != want {
		return true, nil
	}
	for s, stripe := range x {
		seg := flat[s*int(edgeCap) : (s+1)*int(edgeCap)]
		mm, err := scheme.Check(from, to, stripe, seg)
		if err != nil {
			return false, err
		}
		if mm {
			return true, nil
		}
	}
	return false, nil
}

// equalityProcess returns the two-round equality-check behaviour:
// round 0 sends X_i * C_e on every outgoing edge of G_k, round 1 verifies
// every incoming edge's symbols and sets the MISMATCH flag.
func (st *nodeState) equalityProcess() sim.Process {
	return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
		switch round {
		case 0:
			if st.adv.SilentIn("equality") {
				return nil
			}
			var out []sim.Message
			for _, e := range st.gk.OutEdges(st.id) {
				syms, err := encodeStriped(st.scheme, st.id, e.To, st.x)
				if err != nil {
					panic("core: encode: " + err.Error())
				}
				syms = st.adv.CorruptCoded(e.To, syms)
				st.sentCoded = append(st.sentCoded, CodedClaim{From: st.id, To: e.To, Symbols: syms})
				out = append(out, sim.Message{
					From: st.id,
					To:   e.To,
					Bits: int64(len(syms)) * int64(st.symBits),
					Body: EqMsg{Symbols: syms},
				})
			}
			return out
		case 1:
			got := map[graph.NodeID][]gf.Elem{}
			for _, m := range inbox {
				em, ok := m.Body.(EqMsg)
				if !ok {
					continue
				}
				if !st.gk.HasEdge(m.From, st.id) {
					continue // not an instance-graph link; protocol ignores it
				}
				if _, dup := got[m.From]; !dup {
					got[m.From] = em.Symbols
				}
			}
			for _, e := range st.gk.InEdges(st.id) {
				syms := got[e.From] // nil if missing: counts as mismatch
				st.recvCoded = append(st.recvCoded, CodedClaim{From: e.From, To: st.id, Symbols: syms})
				mm, err := checkStriped(st.scheme, e.From, st.id, st.x, syms, e.Cap)
				if err != nil {
					panic("core: check: " + err.Error())
				}
				if mm {
					st.flag = true
				}
			}
			return nil
		}
		return nil
	})
}

// buildClaims assembles the node's Phase-3 transcript from its records.
func (st *nodeState) buildClaims() *Claims {
	c := &Claims{
		Node:       st.id,
		SentBlocks: append([]TreeEdgeClaim(nil), st.sentClaims...),
		RecvBlocks: append([]TreeEdgeClaim(nil), st.recvClaims...),
		SentCoded:  append([]CodedClaim(nil), st.sentCoded...),
		RecvCoded:  append([]CodedClaim(nil), st.recvCoded...),
		Flag:       st.announcedFlag(),
	}
	if st.id == st.source {
		c.SourceInput = st.input
	}
	return st.adv.CorruptClaims(c)
}

// announcedFlag is the flag the node presents to the world: honest nodes
// announce their computed flag; the adversary may override.
func (st *nodeState) announcedFlag() bool {
	return st.adv.OverrideFlag(st.flag)
}
