package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTripQuick(t *testing.T) {
	check := func(data []byte, partsSeed uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 64 {
			data = data[:64]
		}
		totalBits := len(data) * 8
		parts := 1 + int(partsSeed)%(totalBits)
		chunks, err := splitBits(data, totalBits, parts)
		if err != nil {
			return false
		}
		if len(chunks) != parts {
			return false
		}
		back, err := joinBits(chunks, totalBits)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitBitsBlockSizes(t *testing.T) {
	// 32 bits into 3 parts: 10/11/11 per the floor-boundary rule.
	chunks, err := splitBits(make([]byte, 4), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 11}
	for i, c := range chunks {
		if c.BitLen != want[i] {
			t.Errorf("chunk %d: %d bits, want %d", i, c.BitLen, want[i])
		}
	}
	// More parts than bits: some chunks are empty, reassembly still works.
	chunks, err = splitBits([]byte{0xFF}, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	back, err := joinBits(chunks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 0xFF {
		t.Errorf("back = %x", back)
	}
}

func TestSplitBitsValidation(t *testing.T) {
	if _, err := splitBits([]byte{1}, 8, 0); err == nil {
		t.Error("parts=0: expected error")
	}
	if _, err := splitBits([]byte{1}, 9, 1); err == nil {
		t.Error("totalBits beyond data: expected error")
	}
	if _, err := splitBits([]byte{1}, -1, 1); err == nil {
		t.Error("negative totalBits: expected error")
	}
}

func TestJoinBitsValidation(t *testing.T) {
	good := BitChunk{Bytes: []byte{0xAB}, BitLen: 8}
	if _, err := joinBits([]BitChunk{good}, 16); err == nil {
		t.Error("bit-count mismatch: expected error")
	}
	bad := BitChunk{Bytes: []byte{0xAB}, BitLen: 99}
	if _, err := joinBits([]BitChunk{bad}, 99); err == nil {
		t.Error("malformed chunk: expected error")
	}
	neg := BitChunk{Bytes: nil, BitLen: -1}
	if _, err := joinBits([]BitChunk{neg}, -1); err == nil {
		t.Error("negative chunk: expected error")
	}
}

func TestNormalizeChunk(t *testing.T) {
	// Truncation keeps the leading bits.
	in := BitChunk{Bytes: []byte{0b10110000}, BitLen: 8}
	out := normalizeChunk(in, 4)
	if out.BitLen != 4 || out.Bytes[0] != 0b10110000&0xF0 {
		t.Errorf("truncate: %+v", out)
	}
	// Padding appends zeros.
	out = normalizeChunk(in, 12)
	if out.BitLen != 12 || out.Bytes[0] != 0b10110000 || out.Bytes[1] != 0 {
		t.Errorf("pad: %+v", out)
	}
	// Lying BitLen beyond the backing bytes is clamped, not trusted.
	lie := BitChunk{Bytes: []byte{0xFF}, BitLen: 64}
	out = normalizeChunk(lie, 16)
	if out.Bytes[0] != 0xFF || out.Bytes[1] != 0x00 {
		t.Errorf("clamp: %+v", out)
	}
	// Zero-width requests yield an empty chunk.
	out = normalizeChunk(in, 0)
	if out.BitLen != 0 {
		t.Errorf("zero: %+v", out)
	}
}

func TestChunkEqual(t *testing.T) {
	a := BitChunk{Bytes: []byte{0xF0}, BitLen: 4}
	b := BitChunk{Bytes: []byte{0xFF}, BitLen: 4} // differs only in pad bits
	if !chunkEqual(a, b) {
		t.Error("pad bits should not affect equality")
	}
	c := BitChunk{Bytes: []byte{0x70}, BitLen: 4}
	if chunkEqual(a, c) {
		t.Error("differing payload bits reported equal")
	}
	d := BitChunk{Bytes: []byte{0xF0}, BitLen: 5}
	if chunkEqual(a, d) {
		t.Error("differing lengths reported equal")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	check := func(data []byte, bitsSeed uint8) bool {
		want := int(bitsSeed) % 65
		c := normalizeChunk(BitChunk{Bytes: data, BitLen: len(data) * 8}, want)
		again := normalizeChunk(c, want)
		return chunkEqual(c, again) && c.BitLen == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
