// Package core implements NAB — the paper's Network-Aware Byzantine
// broadcast algorithm — as a multi-instance driver over the synchronous
// simulator: Phase 1 unreliable broadcast over packed spanning
// arborescences, Phase 2 equality check with local linear coding plus
// 1-bit flag agreement via classic BB, and Phase 3 dispute control with
// transcript audit and diminishing instance graphs.
package core

import (
	"bytes"
	"fmt"
	"math/rand"

	"nab/internal/bb"
	"nab/internal/capacity"
	"nab/internal/coding"
	"nab/internal/dispute"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/relay"
	"nab/internal/sim"
	"nab/internal/spantree"
)

// Config parameterizes a NAB run.
type Config struct {
	Graph    *graph.Directed // G = G_1
	Source   graph.NodeID    // the broadcasting node (node 1 in the paper)
	F        int             // global fault bound, n >= 3F+1, connectivity >= 2F+1
	LenBytes int             // input size L = 8*LenBytes bits per instance
	Seed     int64           // randomness for coding matrices
	// MaxSchemeTries bounds coding-matrix redraws per instance (Theorem 1
	// makes one draw succeed w.h.p.; tiny fields may need more). Default 64.
	MaxSchemeTries int
	// Adversaries maps faulty nodes to their behaviours. Nodes absent from
	// the map are fault-free. len(Adversaries) must be <= F.
	Adversaries map[graph.NodeID]Adversary
	// SkipConnectivityCheck disables the vertex-connectivity precondition
	// check (useful when the caller already verified it).
	SkipConnectivityCheck bool

	// Ablation overrides (0 = use the paper's parameter choice):
	// RhoOverride forces the equality-check parameter below the optimal
	// floor(U_k/2); GammaOverride caps the number of Phase-1 spanning
	// trees below gamma_k; RelayPaths overrides the 2f+1 disjoint-path
	// count of the complete-graph emulation (must be >= 2f+1 to stay
	// correct; larger values trade bandwidth for nothing, which is the
	// point of the ablation).
	RhoOverride   int
	GammaOverride int
	RelayPaths    int
}

// InstanceResult reports one NAB instance.
type InstanceResult struct {
	K       int
	Gamma   int64
	Rho     int
	SymBits uint
	Stripes int
	// Outputs maps each fault-free node to its decided value.
	Outputs map[graph.NodeID][]byte
	// Mismatch reports whether any (agreed) flag was MISMATCH.
	Mismatch bool
	// Phase3 reports whether dispute control ran.
	Phase3 bool
	// NewDisputes / NewFaulty are Phase 3 findings.
	NewDisputes [][2]graph.NodeID
	NewFaulty   []graph.NodeID
	// SchemeTries counts coding-matrix draws used this instance.
	SchemeTries int
	// Times per phase in the cut-through model (time units); the
	// store-and-forward variant for Phase 1 enables pipelining analysis.
	Phase1Time    float64
	Phase1SFTime  float64
	Phase1Rounds  int
	EqualityTime  float64
	FlagTime      float64
	DisputeTime   float64
	TotalBits     int64
	ExcludedNodes int
	Phase1Only    bool
}

// TotalTime returns the instance's duration in the cut-through model.
func (ir *InstanceResult) TotalTime() float64 {
	return ir.Phase1Time + ir.EqualityTime + ir.FlagTime + ir.DisputeTime
}

// RunResult aggregates a sequence of instances.
type RunResult struct {
	Instances []*InstanceResult
	LenBits   int
}

// TotalTime sums instance durations (cut-through).
func (rr *RunResult) TotalTime() float64 {
	var t float64
	for _, ir := range rr.Instances {
		t += ir.TotalTime()
	}
	return t
}

// Throughput returns bits broadcast per time unit over the whole run.
func (rr *RunResult) Throughput() float64 {
	t := rr.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(len(rr.Instances)*rr.LenBits) / t
}

// DisputePhases counts instances where Phase 3 ran.
func (rr *RunResult) DisputePhases() int {
	n := 0
	for _, ir := range rr.Instances {
		if ir.Phase3 {
			n++
		}
	}
	return n
}

// Runner drives repeated NAB instances, carrying dispute state across them.
type Runner struct {
	cfg      Config
	n        int
	lenBits  int
	rng      *rand.Rand
	relayTab *relay.Table

	disputes    *dispute.Set
	gk          *graph.Directed
	k           int
	faultySoFar map[graph.NodeID]bool
}

// NewRunner validates the configuration and prepares instance 1.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	n := cfg.Graph.NumNodes()
	if cfg.F < 0 || n < 3*cfg.F+1 {
		return nil, fmt.Errorf("core: n = %d must be >= 3f+1 = %d", n, 3*cfg.F+1)
	}
	if !cfg.Graph.HasNode(cfg.Source) {
		return nil, fmt.Errorf("core: source %d not in graph", cfg.Source)
	}
	if cfg.LenBytes <= 0 {
		return nil, fmt.Errorf("core: LenBytes = %d must be positive", cfg.LenBytes)
	}
	if len(cfg.Adversaries) > cfg.F {
		return nil, fmt.Errorf("core: %d adversaries exceed fault bound f = %d", len(cfg.Adversaries), cfg.F)
	}
	if cfg.MaxSchemeTries <= 0 {
		cfg.MaxSchemeTries = 64
	}
	if !cfg.SkipConnectivityCheck {
		conn, err := cfg.Graph.VertexConnectivity()
		if err != nil {
			return nil, fmt.Errorf("core: connectivity: %w", err)
		}
		if conn < 2*cfg.F+1 {
			return nil, fmt.Errorf("core: connectivity %d < 2f+1 = %d", conn, 2*cfg.F+1)
		}
	}
	relayPaths := 2*cfg.F + 1
	if cfg.RelayPaths > 0 {
		if cfg.RelayPaths < relayPaths {
			return nil, fmt.Errorf("core: RelayPaths = %d below 2f+1 = %d breaks reliable relaying", cfg.RelayPaths, relayPaths)
		}
		relayPaths = cfg.RelayPaths
	}
	tab, err := relay.NewTable(cfg.Graph, relayPaths)
	if err != nil {
		return nil, fmt.Errorf("core: relay table: %w", err)
	}
	return &Runner{
		cfg:         cfg,
		n:           n,
		lenBits:     8 * cfg.LenBytes,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		relayTab:    tab,
		disputes:    dispute.NewSet(),
		gk:          cfg.Graph.Clone(),
		k:           0,
		faultySoFar: map[graph.NodeID]bool{},
	}, nil
}

// InstanceGraph returns the current G_k.
func (r *Runner) InstanceGraph() *graph.Directed { return r.gk.Clone() }

// Disputes returns the accumulated dispute set.
func (r *Runner) Disputes() *dispute.Set { return r.disputes.Clone() }

// honestNodes lists the fault-free nodes (known to the harness, not the
// protocol).
func (r *Runner) honestNodes() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range r.cfg.Graph.Nodes() {
		if _, bad := r.cfg.Adversaries[v]; !bad {
			out = append(out, v)
		}
	}
	return out
}

func (r *Runner) adversaryFor(v graph.NodeID) Adversary {
	if a, bad := r.cfg.Adversaries[v]; bad {
		return a
	}
	return Honest{}
}

// Run executes one instance per input.
func (r *Runner) Run(inputs [][]byte) (*RunResult, error) {
	rr := &RunResult{LenBits: r.lenBits}
	for _, in := range inputs {
		ir, err := r.RunInstance(in)
		if err != nil {
			return nil, err
		}
		rr.Instances = append(rr.Instances, ir)
	}
	return rr, nil
}

// RunInstance executes the k-th NAB instance broadcasting input.
func (r *Runner) RunInstance(input []byte) (*InstanceResult, error) {
	r.k++
	ir := &InstanceResult{K: r.k, Outputs: map[graph.NodeID][]byte{}}
	if len(input) != r.cfg.LenBytes {
		return nil, fmt.Errorf("core: instance %d: input is %d bytes, want %d", r.k, len(input), r.cfg.LenBytes)
	}

	// Source already proven faulty: agree on the default value, no traffic.
	if !r.gk.HasNode(r.cfg.Source) {
		def := make([]byte, r.cfg.LenBytes)
		for _, v := range r.honestNodes() {
			ir.Outputs[v] = def
		}
		return ir, nil
	}

	excluded := r.n - r.gk.NumNodes()
	ir.ExcludedNodes = excluded
	tolerance := r.cfg.F - excluded
	if tolerance < 0 {
		tolerance = 0
	}
	ir.Phase1Only = excluded >= r.cfg.F

	// Instance parameters.
	gamma, err := capacity.Gamma(r.gk, r.cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: gamma: %w", r.k, err)
	}
	if r.cfg.GammaOverride > 0 && int64(r.cfg.GammaOverride) < gamma {
		gamma = int64(r.cfg.GammaOverride)
	}
	ir.Gamma = gamma
	omega := dispute.Omega(r.gk, r.disputes, r.n-r.cfg.F)
	rho, err := capacity.Rho(omega)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: rho: %w", r.k, err)
	}
	if r.cfg.RhoOverride > 0 && r.cfg.RhoOverride < rho {
		rho = r.cfg.RhoOverride
	}
	ir.Rho = rho
	// The paper's symbols have L/rho bits. We realize wide symbols as
	// `stripes` machine words over GF(2^symBits), symBits <= 64: the
	// per-bit time cost stays L/rho (up to rounding) and any differing
	// stripe is caught by the per-stripe check.
	symBits := uint((r.lenBits + rho - 1) / rho)
	if symBits > 64 {
		symBits = 64
	}
	stripes := (r.lenBits + rho*int(symBits) - 1) / (rho * int(symBits))
	if stripes < 1 {
		stripes = 1
	}
	ir.SymBits = symBits
	ir.Stripes = stripes
	field, err := gf.New(symBits)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: field: %w", r.k, err)
	}
	scheme, tries, err := coding.GenerateVerified(r.gk, rho, field, omega, r.rng, r.cfg.MaxSchemeTries)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: scheme: %w", r.k, err)
	}
	ir.SchemeTries = tries
	trees, err := spantree.PackArborescences(r.gk, r.cfg.Source, int(gamma))
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: trees: %w", r.k, err)
	}

	// Node states over the physical graph G; nodes outside V_k participate
	// only as relays.
	states := map[graph.NodeID]*nodeState{}
	for _, v := range r.gk.Nodes() {
		states[v] = newNodeState(v, r.adversaryFor(v), r.cfg.Source, input, r.lenBits, rho, symBits, stripes, trees, scheme, r.gk)
	}
	engine := sim.New(r.cfg.Graph)
	engine.SetRecording(false)

	// ---- Phase 1: unreliable broadcast over the packed arborescences.
	maxDepth := 0
	for _, tr := range trees {
		if d := tr.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	for _, v := range r.cfg.Graph.Nodes() {
		st, inVk := states[v]
		if !inVk {
			if err := engine.SetProcess(v, sim.Silent); err != nil {
				return nil, err
			}
			continue
		}
		if err := engine.SetProcess(v, st.phase1Process()); err != nil {
			return nil, err
		}
	}
	p1, err := engine.RunPhase("phase1", maxDepth+1)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: phase 1: %w", r.k, err)
	}
	ir.Phase1Time = p1.CutThroughTime()
	ir.Phase1SFTime = p1.StoreForwardTime()
	ir.Phase1Rounds = maxDepth
	for _, st := range states {
		if err := st.finishPhase1(); err != nil {
			return nil, err
		}
	}

	if ir.Phase1Only {
		// All remaining nodes are fault-free: Phase 1 output is final.
		for _, v := range r.honestNodes() {
			ir.Outputs[v] = states[v].value
		}
		ir.TotalBits = p1.TotalBits()
		return ir, nil
	}

	// ---- Phase 2, step 2.1: equality check.
	for _, v := range r.cfg.Graph.Nodes() {
		st, inVk := states[v]
		if !inVk {
			if err := engine.SetProcess(v, sim.Silent); err != nil {
				return nil, err
			}
			continue
		}
		if err := engine.SetProcess(v, st.equalityProcess()); err != nil {
			return nil, err
		}
	}
	eq, err := engine.RunPhase("equality", 2)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: equality: %w", r.k, err)
	}
	ir.EqualityTime = eq.CutThroughTime()

	// ---- Phase 2, step 2.2: agree on every node's 1-bit flag.
	participants := r.gk.Nodes()
	flagNodes, err := r.runBroadcast(engine, states, participants, tolerance, func(st *nodeState) []byte {
		if st.announcedFlag() {
			return []byte{1}
		}
		return []byte{0}
	}, "flags")
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: flags: %w", r.k, err)
	}
	fl := flagNodes.stats
	ir.FlagTime = fl.CutThroughTime()

	// Decode agreed flags per honest node and check agreement.
	honest := r.honestNodes()
	agreedFlags := map[graph.NodeID]bool{}
	first := true
	for _, v := range honest {
		nd := flagNodes.nodes[v]
		local := map[graph.NodeID]bool{}
		for _, p := range participants {
			dec := nd.Decide(p)
			local[p] = len(dec) == 1 && dec[0] == 1
		}
		if first {
			agreedFlags = local
			first = false
			continue
		}
		for p, f := range local {
			if agreedFlags[p] != f {
				return nil, fmt.Errorf("core: instance %d: flag agreement violated at node %d for general %d", r.k, v, p)
			}
		}
	}
	for _, p := range participants {
		if agreedFlags[p] {
			ir.Mismatch = true
		}
	}

	if !ir.Mismatch {
		for _, v := range honest {
			ir.Outputs[v] = states[v].value
		}
		ir.TotalBits = p1.TotalBits() + eq.TotalBits() + fl.TotalBits()
		return ir, nil
	}

	// ---- Phase 3: dispute control.
	ir.Phase3 = true
	claimNodes, err := r.runBroadcast(engine, states, participants, tolerance, func(st *nodeState) []byte {
		c := st.buildClaims()
		if c == nil {
			return nil
		}
		return c.Marshal()
	}, "claims")
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: claims: %w", r.k, err)
	}
	dc := claimNodes.stats
	ir.DisputeTime = dc.CutThroughTime()

	ac := &auditContext{
		gk: r.gk, source: r.cfg.Source, trees: trees, scheme: scheme,
		lenBits: r.lenBits, rho: rho, symBits: symBits, stripes: stripes,
	}
	var agreed *AuditResult
	for _, v := range honest {
		nd := claimNodes.nodes[v]
		claims := map[graph.NodeID]*Claims{}
		for _, p := range participants {
			c := UnmarshalClaims(nd.Decide(p))
			if c != nil && c.Node != p {
				c = nil // claiming to be someone else: discard
			}
			if c != nil {
				c.Flag = agreedFlags[p] // the announced flag is the agreed one
			}
			claims[p] = c
		}
		res := ac.Audit(claims)
		if agreed == nil {
			agreed = res
		} else if !auditEqual(agreed, res) {
			return nil, fmt.Errorf("core: instance %d: audit divergence at node %d (bug)", r.k, v)
		}
		ir.Outputs[v] = res.Output
	}
	if agreed == nil {
		return nil, fmt.Errorf("core: instance %d: no honest nodes to audit", r.k)
	}
	ir.NewDisputes = agreed.Disputes
	ir.NewFaulty = agreed.Faulty

	// Fold findings into the accumulated dispute state and diminish G_k.
	progress := false
	for _, p := range agreed.Disputes {
		if !r.disputes.Has(p[0], p[1]) {
			progress = true
		}
		if err := r.disputes.Add(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	for _, v := range agreed.Faulty {
		if !r.faultySoFar[v] {
			progress = true
			r.faultySoFar[v] = true
		}
		if err := r.disputes.MarkFaulty(r.cfg.Graph, v); err != nil {
			return nil, err
		}
	}
	if !progress {
		return nil, fmt.Errorf("core: instance %d: dispute control made no progress (bug: paper guarantees a new dispute or faulty node)", r.k)
	}
	next, _, err := r.disputes.Apply(r.cfg.Graph, r.cfg.F)
	if err != nil {
		return nil, fmt.Errorf("core: instance %d: diminishing graph: %w", r.k, err)
	}
	r.gk = next

	ir.TotalBits = p1.TotalBits() + eq.TotalBits() + fl.TotalBits() + dc.TotalBits()
	return ir, nil
}

// broadcastResult couples the per-node EIG states with the phase stats.
type broadcastResult struct {
	nodes map[graph.NodeID]*bb.Node
	stats *sim.PhaseStats
}

// runBroadcast runs one simultaneous classic-BB round (flags or claims)
// among participants, with non-participants relaying.
func (r *Runner) runBroadcast(engine *sim.Engine, states map[graph.NodeID]*nodeState, participants []graph.NodeID, tolerance int, valueOf func(*nodeState) []byte, phase string) (*broadcastResult, error) {
	nodes := map[graph.NodeID]*bb.Node{}
	var rounds int
	for _, v := range r.cfg.Graph.Nodes() {
		st, inVk := states[v]
		router := relay.NewRouter(v, r.relayTab)
		if !inVk {
			// Relay-only duty.
			if err := engine.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
				return router.HandleAll(inbox)
			})); err != nil {
				return nil, err
			}
			continue
		}
		if st.adv.SilentIn(phase) {
			if err := engine.SetProcess(v, sim.Silent); err != nil {
				return nil, err
			}
			continue
		}
		nd, err := bb.NewNode(v, participants, tolerance, router, valueOf(st))
		if err != nil {
			return nil, err
		}
		nodes[v] = nd
		rounds = nd.Rounds()
		if err := engine.SetProcess(v, nd); err != nil {
			return nil, err
		}
	}
	stats, err := engine.RunPhase(phase, rounds)
	if err != nil {
		return nil, err
	}
	for _, nd := range nodes {
		nd.Finish()
	}
	return &broadcastResult{nodes: nodes, stats: stats}, nil
}

func auditEqual(a, b *AuditResult) bool {
	if !bytes.Equal(a.Output, b.Output) {
		return false
	}
	if len(a.Disputes) != len(b.Disputes) || len(a.Faulty) != len(b.Faulty) {
		return false
	}
	for i := range a.Disputes {
		if a.Disputes[i] != b.Disputes[i] {
			return false
		}
	}
	for i := range a.Faulty {
		if a.Faulty[i] != b.Faulty[i] {
			return false
		}
	}
	return true
}
