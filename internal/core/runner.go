// Package core implements NAB — the paper's Network-Aware Byzantine
// broadcast algorithm — as a multi-instance driver over pluggable phase
// engines: Phase 1 unreliable broadcast over packed spanning
// arborescences, Phase 2 equality check with local linear coding plus
// 1-bit flag agreement via classic BB, and Phase 3 dispute control with
// transcript audit and diminishing instance graphs.
//
// The per-instance logic lives in Protocol / InstancePlan / DisputeState
// and runs on any PhaseEngine. Runner drives it on the lockstep
// synchronous simulator (internal/sim); internal/runtime drives the same
// logic concurrently on per-node actors over internal/transport.
package core

import (
	"fmt"
	"math/rand"

	"nab/internal/dispute"
	"nab/internal/flight"
	"nab/internal/graph"
	"nab/internal/sim"
)

// Config parameterizes a NAB run.
type Config struct {
	Graph    *graph.Directed // G = G_1
	Source   graph.NodeID    // the broadcasting node (node 1 in the paper)
	F        int             // global fault bound, n >= 3F+1, connectivity >= 2F+1
	LenBytes int             // input size L = 8*LenBytes bits per instance
	Seed     int64           // randomness for coding matrices
	// MaxSchemeTries bounds coding-matrix redraws per instance (Theorem 1
	// makes one draw succeed w.h.p.; tiny fields may need more). Default 64.
	MaxSchemeTries int
	// Adversaries maps faulty nodes to their behaviours. Nodes absent from
	// the map are fault-free. len(Adversaries) must be <= F.
	Adversaries map[graph.NodeID]Adversary
	// SkipConnectivityCheck disables the vertex-connectivity precondition
	// check (useful when the caller already verified it).
	SkipConnectivityCheck bool

	// Ablation overrides (0 = use the paper's parameter choice):
	// RhoOverride forces the equality-check parameter below the optimal
	// floor(U_k/2); GammaOverride caps the number of Phase-1 spanning
	// trees below gamma_k; RelayPaths overrides the 2f+1 disjoint-path
	// count of the complete-graph emulation (must be >= 2f+1 to stay
	// correct; larger values trade bandwidth for nothing, which is the
	// point of the ablation).
	RhoOverride   int
	GammaOverride int
	RelayPaths    int
}

// InstanceResult reports one NAB instance.
type InstanceResult struct {
	K       int
	Gamma   int64
	Rho     int
	SymBits uint
	Stripes int
	// Outputs maps each fault-free node to its decided value.
	Outputs map[graph.NodeID][]byte
	// Mismatch reports whether any (agreed) flag was MISMATCH.
	Mismatch bool
	// Phase3 reports whether dispute control ran.
	Phase3 bool
	// NewDisputes / NewFaulty are Phase 3 findings.
	NewDisputes [][2]graph.NodeID
	NewFaulty   []graph.NodeID
	// SchemeTries counts coding-matrix draws used this instance.
	SchemeTries int
	// Times per phase in the cut-through model (time units); the
	// store-and-forward variant for Phase 1 enables pipelining analysis.
	Phase1Time    float64
	Phase1SFTime  float64
	Phase1Rounds  int
	EqualityTime  float64
	FlagTime      float64
	DisputeTime   float64
	TotalBits     int64
	ExcludedNodes int
	Phase1Only    bool
}

// TotalTime returns the instance's duration in the cut-through model.
func (ir *InstanceResult) TotalTime() float64 {
	return ir.Phase1Time + ir.EqualityTime + ir.FlagTime + ir.DisputeTime
}

// RunResult aggregates a sequence of instances.
type RunResult struct {
	Instances []*InstanceResult
	LenBits   int
}

// TotalTime sums instance durations (cut-through).
func (rr *RunResult) TotalTime() float64 {
	var t float64
	for _, ir := range rr.Instances {
		t += ir.TotalTime()
	}
	return t
}

// Throughput returns bits broadcast per time unit over the whole run.
func (rr *RunResult) Throughput() float64 {
	t := rr.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(len(rr.Instances)*rr.LenBits) / t
}

// DisputePhases counts instances where Phase 3 ran.
func (rr *RunResult) DisputePhases() int {
	n := 0
	for _, ir := range rr.Instances {
		if ir.Phase3 {
			n++
		}
	}
	return n
}

// Runner drives repeated NAB instances on the lockstep simulator, carrying
// dispute state across them.
type Runner struct {
	proto *Protocol
	ds    *DisputeState
	rng   *rand.Rand
	k     int
}

// NewRunner validates the configuration and prepares instance 1.
func NewRunner(cfg Config) (*Runner, error) {
	proto, err := NewProtocol(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{
		proto: proto,
		ds:    NewDisputeState(cfg.Graph),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Protocol returns the validated protocol this runner drives.
func (r *Runner) Protocol() *Protocol { return r.proto }

// InstanceGraph returns the current G_k.
func (r *Runner) InstanceGraph() *graph.Directed { return r.ds.Graph() }

// Disputes returns the accumulated dispute set.
func (r *Runner) Disputes() *dispute.Set { return r.ds.Disputes() }

// Restore replays a committed-instance history into a fresh runner: the
// dispute-control findings of each result are folded in increasing-K
// order and the runner resumes at instance k+1 — the lockstep half of
// WAL crash-recovery. The history must come from an earlier run with an
// identical Config; it may start with a synthetic checkpoint result
// carrying the accumulated disputes (a compacted log), so Ks need not be
// contiguous, only increasing and bounded by k.
//
// The coding-matrix RNG restarts from Seed rather than from its
// pre-crash position; scheme draws are verified before use, so committed
// outputs and dispute evolution are unaffected (the same tolerance the
// pipelined engine's per-generation seeding already relies on).
func (r *Runner) Restore(k int, committed []*InstanceResult) error {
	if r.k != 0 {
		return fmt.Errorf("core: Restore on a runner that already executed %d instances", r.k)
	}
	if k < 0 {
		return fmt.Errorf("core: Restore to negative instance %d", k)
	}
	for _, ir := range committed {
		if ir.K <= r.k || ir.K > k {
			return fmt.Errorf("core: Restore: instance %d out of order (after %d, limit %d)", ir.K, r.k, k)
		}
		if err := r.proto.Fold(r.ds, ir); err != nil {
			return fmt.Errorf("core: Restore: %w", err)
		}
		r.k = ir.K
	}
	r.k = k
	return nil
}

// RestoreSnapshot boots a fresh runner directly at snap.K with no
// per-instance replay: the dispute state (generation included) is
// rebuilt from the snapshot, then any post-snapshot tail results are
// folded in order, and the runner resumes at the tail's end + 1. A nil
// tail resumes exactly at snap.K + 1.
func (r *Runner) RestoreSnapshot(snap SnapshotState, tail []*InstanceResult) error {
	if r.k != 0 {
		return fmt.Errorf("core: RestoreSnapshot on a runner that already executed %d instances", r.k)
	}
	if snap.K < 0 {
		return fmt.Errorf("core: RestoreSnapshot to negative instance %d", snap.K)
	}
	ds, err := r.proto.RestoreState(snap)
	if err != nil {
		return err
	}
	r.ds, r.k = ds, snap.K
	for _, ir := range tail {
		if ir.K != r.k+1 {
			return fmt.Errorf("core: RestoreSnapshot: tail instance %d after watermark %d", ir.K, r.k)
		}
		if err := r.proto.Fold(r.ds, ir); err != nil {
			return fmt.Errorf("core: RestoreSnapshot: %w", err)
		}
		r.k = ir.K
	}
	return nil
}

// Run executes one instance per input.
func (r *Runner) Run(inputs [][]byte) (*RunResult, error) {
	rr := &RunResult{LenBits: r.proto.lenBits}
	for _, in := range inputs {
		ir, err := r.RunInstance(in)
		if err != nil {
			return nil, err
		}
		rr.Instances = append(rr.Instances, ir)
	}
	return rr, nil
}

// RunInstance executes the k-th NAB instance broadcasting input.
func (r *Runner) RunInstance(input []byte) (*InstanceResult, error) {
	r.k++
	if len(input) != r.proto.cfg.LenBytes {
		return nil, fmt.Errorf("core: instance %d: input is %d bytes, want %d", r.k, len(input), r.proto.cfg.LenBytes)
	}
	if flight.Enabled() {
		flight.Record(flight.Event{Type: flight.EvLaunch, Node: -1,
			Inst: uint64(r.k), K: int32(r.k), Gen: int32(r.ds.Gen())})
	}
	plan, err := r.proto.PlanInstance(r.ds, r.k, r.rng)
	if err != nil {
		return nil, err
	}
	engine := sim.New(r.proto.cfg.Graph)
	engine.SetRecording(false)
	ir, err := plan.Execute(engine, r.k, input)
	if err != nil {
		return nil, err
	}
	gen := r.ds.Gen()
	if err := r.proto.Fold(r.ds, ir); err != nil {
		return nil, err
	}
	if flight.Enabled() {
		flight.Record(flight.Event{Type: flight.EvCommit, Node: -1,
			Inst: uint64(r.k), K: int32(r.k), Gen: int32(gen), Arg: uint64(ir.TotalBits)})
	}
	return ir, nil
}
