package core

import "fmt"

// PipelineSchedule models the Appendix D construction: the time horizon is
// divided into rounds of duration RoundTime = phase-1 hop time + phase-2
// time (equality check + flag broadcast). Each instance's Phase-1 payload
// advances one hop per round, so an instance completes Hops rounds after
// it starts, and a new instance starts every round right behind it.
type PipelineSchedule struct {
	// Hops is the Phase-1 depth (max arborescence depth).
	Hops int
	// HopTime is the time to push one instance's payload across one hop:
	// L/gamma in the paper's notation (cut-through Phase-1 time).
	HopTime float64
	// Phase2Time is the per-instance equality check + flag agreement time
	// appended to the final round: L/rho + O(n^alpha).
	Phase2Time float64
}

// ScheduleFromInstance derives the pipeline parameters from a measured
// instance.
func ScheduleFromInstance(ir *InstanceResult) PipelineSchedule {
	return PipelineSchedule{
		Hops:       ir.Phase1Rounds,
		HopTime:    ir.Phase1Time,
		Phase2Time: ir.EqualityTime + ir.FlagTime,
	}
}

// RoundTime is the duration of one pipeline round.
func (p PipelineSchedule) RoundTime() float64 { return p.HopTime + p.Phase2Time }

// TotalTime returns the time to complete q pipelined instances:
// (q + Hops - 1) rounds, each of RoundTime (Appendix D).
func (p PipelineSchedule) TotalTime(q int) (float64, error) {
	if q <= 0 {
		return 0, fmt.Errorf("core: q = %d must be positive", q)
	}
	hops := p.Hops
	if hops < 1 {
		hops = 1
	}
	return float64(q+hops-1) * p.RoundTime(), nil
}

// UnpipelinedTotalTime returns the sequential (store-and-forward) cost of
// q instances: every hop waits for the full payload.
func (p PipelineSchedule) UnpipelinedTotalTime(q int) (float64, error) {
	if q <= 0 {
		return 0, fmt.Errorf("core: q = %d must be positive", q)
	}
	hops := p.Hops
	if hops < 1 {
		hops = 1
	}
	return float64(q) * (float64(hops)*p.HopTime + p.Phase2Time), nil
}

// Throughput returns bits per time unit for q pipelined instances of
// lenBits each. As q grows this approaches lenBits/RoundTime — the
// gamma*rho/(gamma+rho) rate of Theorem 3 when HopTime = L/gamma and
// Phase2Time ~ L/rho.
func (p PipelineSchedule) Throughput(lenBits, q int) (float64, error) {
	t, err := p.TotalTime(q)
	if err != nil {
		return 0, err
	}
	if t == 0 {
		return 0, fmt.Errorf("core: zero schedule time")
	}
	return float64(lenBits*q) / t, nil
}
