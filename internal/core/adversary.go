package core

import (
	"nab/internal/gf"
	"nab/internal/graph"
)

// Adversary customizes a faulty node's behaviour at the protocol's decision
// points. Honest behaviour is the zero customization (see Honest); the
// adversary package provides concrete strategies.
//
// Scope: these hooks cover corruption of Phase-1 blocks (including source
// equivocation), equality-check symbols, announced flags, and
// dispute-control claims, plus going silent per phase. Byzantine behaviour
// inside the EIG transport itself (equivocating reports) is exercised by
// the bb package's own tests; at the core layer EIG runs on the declared
// inputs.
type Adversary interface {
	// CorruptBlock may replace the Phase-1 block this node is about to send
	// to child `to` on tree `tree`. Return the input unchanged for honest
	// forwarding.
	CorruptBlock(tree int, to graph.NodeID, block BitChunk) BitChunk
	// CorruptCoded may replace the equality-check symbols sent on edge
	// (self, to).
	CorruptCoded(to graph.NodeID, symbols []gf.Elem) []gf.Elem
	// OverrideFlag may replace the MISMATCH flag this node announces in
	// step 2.2.
	OverrideFlag(honest bool) bool
	// CorruptClaims may replace the dispute-control transcript this node
	// broadcasts in Phase 3. Returning nil makes the node stay silent
	// there (it will be identified as faulty).
	CorruptClaims(claims *Claims) *Claims
	// SilentIn reports whether the node sends nothing during the named
	// phase ("phase1", "equality", "flags", "claims").
	SilentIn(phase string) bool
}

// InstanceScoped is implemented by adversaries whose behaviour consumes
// hidden state (e.g. an RNG): before instance k executes, ForInstance(k)
// is asked for the adversary to drive that instance with. Returning a
// fresh strategy derived from k makes every execution of instance k
// reproducible — under pipelined speculation and barrier replays at any
// window, and across process boundaries in a cluster — because the hook
// sequence no longer depends on how instances interleave. Adversaries
// without the interface keep their shared state (and its Window=1
// determinism caveat).
type InstanceScoped interface {
	ForInstance(k int) Adversary
}

// Honest is the identity Adversary: a node driven by it follows the
// protocol exactly. It is the base for partial overrides.
type Honest struct{}

var _ Adversary = Honest{}

// CorruptBlock returns the block unchanged.
func (Honest) CorruptBlock(_ int, _ graph.NodeID, block BitChunk) BitChunk { return block }

// CorruptCoded returns the symbols unchanged.
func (Honest) CorruptCoded(_ graph.NodeID, symbols []gf.Elem) []gf.Elem { return symbols }

// OverrideFlag returns the honestly computed flag.
func (Honest) OverrideFlag(honest bool) bool { return honest }

// CorruptClaims returns the claims unchanged.
func (Honest) CorruptClaims(claims *Claims) *Claims { return claims }

// SilentIn always participates.
func (Honest) SilentIn(string) bool { return false }
