package core

import (
	"fmt"
	"sort"

	"nab/internal/dispute"
	"nab/internal/graph"
)

// SnapshotState is the portable cross-instance engine state at a commit
// watermark: everything an engine needs to boot at instance K+1 with no
// per-instance replay. Unlike a Checkpoint fold, the dispute-graph
// generation is carried explicitly — plan-cache seeds derive from it, so
// an engine restored from a snapshot plans byte-identical coding schemes
// to one that folded the full history. The zero value is the fresh
// pre-instance-1 state.
type SnapshotState struct {
	// K is the watermark: every instance <= K is committed and folded.
	K int
	// Gen is the dispute-state generation at K.
	Gen int
	// Disputes holds the accumulated pairs, MarkFaulty expansions
	// included; Faulty the nodes proven faulty. Order is irrelevant for
	// restoration (callers canonicalize for wire encoding).
	Disputes [][2]graph.NodeID
	Faulty   []graph.NodeID
}

// RestoreState rebuilds the DisputeState a full in-order fold of the
// first s.K instances would have produced, trusting s.Gen rather than
// re-deriving it (the per-fold progress history is not recoverable from
// the accumulated sets alone).
func (p *Protocol) RestoreState(s SnapshotState) (*DisputeState, error) {
	ds := NewDisputeState(p.cfg.Graph)
	for _, pair := range s.Disputes {
		if err := ds.disputes.Add(pair[0], pair[1]); err != nil {
			return nil, fmt.Errorf("core: restore snapshot: %w", err)
		}
	}
	for _, v := range s.Faulty {
		ds.faultySoFar[v] = true
		if err := ds.disputes.MarkFaulty(p.cfg.Graph, v); err != nil {
			return nil, fmt.Errorf("core: restore snapshot: %w", err)
		}
	}
	if len(s.Disputes) > 0 || len(s.Faulty) > 0 {
		next, _, err := ds.disputes.Apply(p.cfg.Graph, p.cfg.F)
		if err != nil {
			return nil, fmt.Errorf("core: restore snapshot: diminishing graph: %w", err)
		}
		ds.gk = next
	}
	if s.Gen < 0 {
		return nil, fmt.Errorf("core: restore snapshot: negative generation %d", s.Gen)
	}
	ds.gen = s.Gen
	return ds, nil
}

// SnapshotBuilder mirrors dispute-state evolution outside a live engine:
// seed it with a base snapshot (or nothing, for instance 0), fold
// committed results in order, and read back the SnapshotState at any
// watermark along the way. The generation accounting replicates
// Protocol.Fold's progress rule exactly — a Phase 3 result bumps the
// generation iff it contributed a new pair or a newly proven-faulty
// node — which is what keeps snapshots synthesized by different
// processes (from different bases) byte-identical.
type SnapshotBuilder struct {
	g        *graph.Directed
	disputes *dispute.Set
	faulty   map[graph.NodeID]bool
	k        int
	gen      int
}

// NewSnapshotBuilder returns a builder at the fresh pre-instance-1 state
// of topology g.
func NewSnapshotBuilder(g *graph.Directed) *SnapshotBuilder {
	return &SnapshotBuilder{g: g, disputes: dispute.NewSet(), faulty: map[graph.NodeID]bool{}}
}

// Seed resets the builder to base. Returns the builder for chaining.
func (b *SnapshotBuilder) Seed(base SnapshotState) (*SnapshotBuilder, error) {
	b.disputes = dispute.NewSet()
	b.faulty = map[graph.NodeID]bool{}
	for _, pair := range base.Disputes {
		if err := b.disputes.Add(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	for _, v := range base.Faulty {
		b.faulty[v] = true
		if err := b.disputes.MarkFaulty(b.g, v); err != nil {
			return nil, err
		}
	}
	b.k, b.gen = base.K, base.Gen
	return b, nil
}

// Fold advances the mirror by one committed instance. Results must be
// folded in commit order starting at the seed watermark + 1.
func (b *SnapshotBuilder) Fold(ir *InstanceResult) error {
	if ir.K != b.k+1 {
		return fmt.Errorf("core: snapshot builder: fold of instance %d at watermark %d", ir.K, b.k)
	}
	b.k = ir.K
	if !ir.Phase3 {
		return nil
	}
	progress := false
	for _, pair := range ir.NewDisputes {
		if !b.disputes.Has(pair[0], pair[1]) {
			progress = true
		}
		if err := b.disputes.Add(pair[0], pair[1]); err != nil {
			return err
		}
	}
	for _, v := range ir.NewFaulty {
		if !b.faulty[v] {
			progress = true
			b.faulty[v] = true
		}
		if err := b.disputes.MarkFaulty(b.g, v); err != nil {
			return err
		}
	}
	if progress {
		b.gen++
	}
	return nil
}

// K returns the builder's current watermark.
func (b *SnapshotBuilder) K() int { return b.k }

// Gen returns the builder's current generation.
func (b *SnapshotBuilder) Gen() int { return b.gen }

// State captures the snapshot at the current watermark. Disputes and
// Faulty come out in the canonical sorted order, so equal states encode
// to equal bytes everywhere.
func (b *SnapshotBuilder) State() SnapshotState {
	s := SnapshotState{K: b.k, Gen: b.gen, Disputes: b.disputes.Pairs()}
	for v := range b.faulty {
		s.Faulty = append(s.Faulty, v)
	}
	sort.Slice(s.Faulty, func(i, j int) bool { return s.Faulty[i] < s.Faulty[j] })
	return s
}
