package core

import (
	"encoding/json"
	"sort"

	"nab/internal/coding"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/spantree"
)

// TreeEdgeClaim is a node's statement about one Phase-1 tree-edge transfer.
type TreeEdgeClaim struct {
	Tree  int          `json:"t"`
	From  graph.NodeID `json:"f"`
	To    graph.NodeID `json:"o"`
	Block BitChunk     `json:"b"`
}

// CodedClaim is a node's statement about one equality-check transfer.
type CodedClaim struct {
	From    graph.NodeID `json:"f"`
	To      graph.NodeID `json:"o"`
	Symbols []gf.Elem    `json:"s"`
}

// Claims is the full transcript a node broadcasts during dispute control
// (step DC1): everything it claims to have sent and received in Phases 1
// and 2 of the instance, its announced flag, and — for the source — its
// input.
type Claims struct {
	Node        graph.NodeID    `json:"n"`
	SentBlocks  []TreeEdgeClaim `json:"sb"`
	RecvBlocks  []TreeEdgeClaim `json:"rb"`
	SentCoded   []CodedClaim    `json:"sc"`
	RecvCoded   []CodedClaim    `json:"rc"`
	Flag        bool            `json:"fl"`
	SourceInput []byte          `json:"si,omitempty"`
}

// Marshal encodes claims for the EIG broadcast.
func (c *Claims) Marshal() []byte {
	raw, err := json.Marshal(c)
	if err != nil {
		// All fields are JSON-safe; a failure is a programming error.
		panic("core: marshal claims: " + err.Error())
	}
	return raw
}

// UnmarshalClaims decodes a broadcast transcript; nil or undecodable input
// yields nil (the auditor treats that node as faulty).
func UnmarshalClaims(raw []byte) *Claims {
	if len(raw) == 0 {
		return nil
	}
	var c Claims
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil
	}
	return &c
}

// AuditResult is the deterministic outcome of dispute control, identical at
// every fault-free node because it is computed from BB-agreed claims.
type AuditResult struct {
	// Output is the instance's agreed output: the source's broadcast input
	// (or the default zero value if the source's claim was missing).
	Output []byte
	// Disputes are the newly discovered disputing pairs.
	Disputes [][2]graph.NodeID
	// Faulty are nodes whose own claims are self-inconsistent (DC3).
	Faulty []graph.NodeID
}

// auditContext carries the instance parameters the audit re-derives
// behaviour from.
type auditContext struct {
	gk      *graph.Directed
	source  graph.NodeID
	trees   []*spantree.Arborescence
	scheme  *coding.Scheme
	lenBits int
	rho     int
	symBits uint
	stripes int
}

// Audit performs steps DC2 and DC3 of dispute control: cross-check all
// claims to find disputing pairs, and re-execute each node's deterministic
// duties from its claimed inputs to find provably faulty nodes. claims maps
// every node of gk to its agreed transcript (nil for nodes whose broadcast
// was undecodable — they are immediately faulty).
//
// The guarantees proved in the paper hold here: two fault-free nodes are
// never put in dispute (their claims are true and consistent), and a
// fault-free node is never declared faulty (its claims re-execute cleanly).
func (ac *auditContext) Audit(claims map[graph.NodeID]*Claims) *AuditResult {
	res := &AuditResult{}
	faulty := map[graph.NodeID]bool{}
	nodes := ac.gk.Nodes()

	for _, v := range nodes {
		if claims[v] == nil {
			faulty[v] = true
		}
	}

	// Source input defines the instance output (validity: an honest source
	// broadcast its true input; agreement: everyone sees the same claim).
	defaultOut := make([]byte, (ac.lenBits+7)/8)
	res.Output = defaultOut
	if sc := claims[ac.source]; sc != nil {
		if len(sc.SourceInput) == len(defaultOut) {
			res.Output = sc.SourceInput
		} else {
			faulty[ac.source] = true
		}
	}

	// Index claims for cross-checking.
	sentB := map[blockKey]BitChunk{}
	recvB := map[blockKey]BitChunk{}
	sentC := map[[2]graph.NodeID][]gf.Elem{}
	recvC := map[[2]graph.NodeID][]gf.Elem{}
	for _, v := range nodes {
		c := claims[v]
		if c == nil {
			continue
		}
		for _, tc := range c.SentBlocks {
			if tc.From == v {
				sentB[blockKey{tc.Tree, tc.From, tc.To}] = tc.Block
			}
		}
		for _, tc := range c.RecvBlocks {
			if tc.To == v {
				recvB[blockKey{tc.Tree, tc.From, tc.To}] = tc.Block
			}
		}
		for _, cc := range c.SentCoded {
			if cc.From == v {
				sentC[[2]graph.NodeID{cc.From, cc.To}] = cc.Symbols
			}
		}
		for _, cc := range c.RecvCoded {
			if cc.To == v {
				recvC[[2]graph.NodeID{cc.From, cc.To}] = cc.Symbols
			}
		}
	}

	// DC2: disputes wherever a sender's claim and receiver's claim differ.
	disputes := map[[2]graph.NodeID]bool{}
	addDispute := func(a, b graph.NodeID) {
		if a == b {
			return
		}
		key := [2]graph.NodeID{a, b}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		disputes[key] = true
	}
	expectedBlocks := ac.expectedBlockBits()
	for ti, tree := range ac.trees {
		for c, p := range tree.Parent {
			if claims[p] == nil || claims[c] == nil {
				continue // missing claimant already faulty
			}
			want := expectedBlocks[ti]
			s := normalizeChunk(sentB[blockKey{ti, p, c}], want)
			r := normalizeChunk(recvB[blockKey{ti, p, c}], want)
			if !chunkEqual(s, r) {
				addDispute(p, c)
			}
		}
	}
	for _, e := range ac.gk.Edges() {
		if claims[e.From] == nil || claims[e.To] == nil {
			continue
		}
		s := sentC[[2]graph.NodeID{e.From, e.To}]
		r := recvC[[2]graph.NodeID{e.From, e.To}]
		if !symbolsEqual(s, r) {
			addDispute(e.From, e.To)
		}
	}

	// DC3: re-execute each node's deterministic duties from its claims.
	for _, v := range nodes {
		c := claims[v]
		if c == nil || faulty[v] {
			continue
		}
		if !ac.selfConsistent(v, c, expectedBlocks, sentB, recvB, sentC, recvC) {
			faulty[v] = true
		}
	}

	for p := range disputes {
		res.Disputes = append(res.Disputes, p)
	}
	sort.Slice(res.Disputes, func(i, j int) bool {
		if res.Disputes[i][0] != res.Disputes[j][0] {
			return res.Disputes[i][0] < res.Disputes[j][0]
		}
		return res.Disputes[i][1] < res.Disputes[j][1]
	})
	for v := range faulty {
		res.Faulty = append(res.Faulty, v)
	}
	sort.Slice(res.Faulty, func(i, j int) bool { return res.Faulty[i] < res.Faulty[j] })
	return res
}

// expectedBlockBits returns the bit length of each tree's block.
func (ac *auditContext) expectedBlockBits() []int {
	gamma := len(ac.trees)
	out := make([]int, gamma)
	for i := range out {
		lo := i * ac.lenBits / gamma
		hi := (i + 1) * ac.lenBits / gamma
		out[i] = hi - lo
	}
	return out
}

// selfConsistent re-derives node v's sends from its claimed receipts.
func (ac *auditContext) selfConsistent(
	v graph.NodeID, c *Claims, expectedBlocks []int,
	sentB map[blockKey]BitChunk,
	recvB map[blockKey]BitChunk,
	sentC map[[2]graph.NodeID][]gf.Elem,
	recvC map[[2]graph.NodeID][]gf.Elem,
) bool {
	// Phase 1 duty: for each tree, what v received on its in-edge (or, for
	// the source, the corresponding split of its input) must equal what v
	// sent to each of its tree children.
	myBlocks := make([]BitChunk, len(ac.trees))
	if v == ac.source {
		split, err := splitBits(c.SourceInput, ac.lenBits, len(ac.trees))
		if err != nil {
			return false
		}
		copy(myBlocks, split)
	} else {
		for ti, tree := range ac.trees {
			parent, ok := tree.Parent[v]
			if !ok {
				return false // v not spanned: cannot happen for valid trees
			}
			myBlocks[ti] = normalizeChunk(recvB[blockKey{ti, parent, v}], expectedBlocks[ti])
		}
	}
	for ti, tree := range ac.trees {
		for child, parent := range tree.Parent {
			if parent != v {
				continue
			}
			sent := normalizeChunk(sentB[blockKey{ti, v, child}], expectedBlocks[ti])
			if !chunkEqual(sent, myBlocks[ti]) {
				return false
			}
		}
	}

	// Phase 2 duty: v's value is the join of its blocks; its coded sends
	// must match Encode, and its flag must match the checks against its
	// claimed receipts.
	data, err := joinBits(myBlocks, ac.lenBits)
	if err != nil {
		return false
	}
	x, err := packStriped(data, ac.rho, ac.symBits, ac.stripes)
	if err != nil {
		return false
	}
	for _, e := range ac.gk.OutEdges(v) {
		want, err := encodeStriped(ac.scheme, v, e.To, x)
		if err != nil {
			return false
		}
		if !symbolsEqual(sentC[[2]graph.NodeID{v, e.To}], want) {
			return false
		}
	}
	flag := false
	for _, e := range ac.gk.InEdges(v) {
		mm, err := checkStriped(ac.scheme, e.From, v, x, recvC[[2]graph.NodeID{e.From, v}], e.Cap)
		if err != nil {
			return false
		}
		if mm {
			flag = true
		}
	}
	return flag == c.Flag
}

// blockKey identifies one tree-edge transfer in the audit's claim indexes.
type blockKey struct {
	tree     int
	from, to graph.NodeID
}

func symbolsEqual(a, b []gf.Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
