package core

import (
	"math"
	"testing"
)

func TestPipelineScheduleTotals(t *testing.T) {
	p := PipelineSchedule{Hops: 4, HopTime: 10, Phase2Time: 5}
	if p.RoundTime() != 15 {
		t.Errorf("RoundTime = %v", p.RoundTime())
	}
	// One instance: (1+4-1)*15 = 60 pipelined; 4*10+5 = 45 sequential:
	// pipelining only pays off with several instances in flight.
	got, err := p.TotalTime(1)
	if err != nil || got != 60 {
		t.Errorf("TotalTime(1) = %v, %v", got, err)
	}
	seq, err := p.UnpipelinedTotalTime(1)
	if err != nil || seq != 45 {
		t.Errorf("Unpipelined(1) = %v, %v", seq, err)
	}
	// Many instances: pipelined per-instance time approaches RoundTime,
	// sequential stays at hops*hopTime + phase2.
	const q = 1000
	pip, err := p.TotalTime(q)
	if err != nil {
		t.Fatal(err)
	}
	unp, err := p.UnpipelinedTotalTime(q)
	if err != nil {
		t.Fatal(err)
	}
	perPip, perUnp := pip/q, unp/q
	if math.Abs(perPip-15) > 0.1 {
		t.Errorf("pipelined per-instance = %v, want ~15", perPip)
	}
	if perUnp != 45 {
		t.Errorf("sequential per-instance = %v, want 45", perUnp)
	}
}

func TestPipelineThroughputApproachesRoundRate(t *testing.T) {
	// HopTime = L/gamma, Phase2Time = L/rho: throughput must approach
	// gamma*rho/(gamma+rho) (Theorem 3's T_NAB with negligible overhead).
	const (
		lenBits = 1200
		gamma   = 4.0
		rho     = 2.0
	)
	p := PipelineSchedule{Hops: 7, HopTime: lenBits / gamma, Phase2Time: lenBits / rho}
	want := gamma * rho / (gamma + rho)
	tp, err := p.Throughput(lenBits, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-want)/want > 0.001 {
		t.Errorf("throughput = %v, want ~%v", tp, want)
	}
}

func TestPipelineScheduleValidation(t *testing.T) {
	p := PipelineSchedule{Hops: 2, HopTime: 1, Phase2Time: 1}
	if _, err := p.TotalTime(0); err == nil {
		t.Error("q=0: expected error")
	}
	if _, err := p.UnpipelinedTotalTime(-1); err == nil {
		t.Error("q<0: expected error")
	}
	if _, err := p.Throughput(8, 0); err == nil {
		t.Error("q=0 throughput: expected error")
	}
	// Degenerate hop counts clamp to 1.
	z := PipelineSchedule{Hops: 0, HopTime: 3, Phase2Time: 1}
	got, err := z.TotalTime(2)
	if err != nil || got != 8 {
		t.Errorf("clamped total = %v, %v", got, err)
	}
}

func TestScheduleFromInstance(t *testing.T) {
	ir := &InstanceResult{Phase1Rounds: 5, Phase1Time: 7, EqualityTime: 3, FlagTime: 2}
	p := ScheduleFromInstance(ir)
	if p.Hops != 5 || p.HopTime != 7 || p.Phase2Time != 5 {
		t.Errorf("schedule = %+v", p)
	}
}
