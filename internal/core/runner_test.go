package core_test

import (
	"bytes"
	"testing"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/topo"
)

// baseConfig uses K4: with n=4 and f=1 the paper requires vertex
// connectivity >= 2f+1 = 3, which the Figure 1(a) example graph (used in
// the paper only to illustrate mincut quantities) does not satisfy.
func baseConfig(advs map[graph.NodeID]core.Adversary) core.Config {
	return core.Config{
		Graph:       topo.CompleteBi(4, 1),
		Source:      1,
		F:           1,
		LenBytes:    4,
		Seed:        42,
		Adversaries: advs,
	}
}

func input4(b byte) []byte { return []byte{b, b + 1, b + 2, b + 3} }

func checkAgreement(t *testing.T, ir *core.InstanceResult) []byte {
	t.Helper()
	var agreed []byte
	first := true
	for v, out := range ir.Outputs {
		if first {
			agreed = out
			first = false
			continue
		}
		if !bytes.Equal(agreed, out) {
			t.Fatalf("agreement violated: node %d has %x, others %x", v, out, agreed)
		}
	}
	if first {
		t.Fatal("no outputs recorded")
	}
	return agreed
}

func TestNewRunnerValidation(t *testing.T) {
	good := baseConfig(nil)
	if _, err := core.NewRunner(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Graph = nil
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("nil graph accepted")
	}
	bad = good
	bad.F = 2 // n=4 < 3*2+1
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("n < 3f+1 accepted")
	}
	bad = good
	bad.Source = 99
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("missing source accepted")
	}
	bad = good
	bad.LenBytes = 0
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("LenBytes=0 accepted")
	}
	bad = good
	bad.Adversaries = map[graph.NodeID]core.Adversary{2: core.Honest{}, 3: core.Honest{}}
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("more adversaries than f accepted")
	}
	// Connectivity below 2f+1: a 4-cycle has connectivity 2 < 3.
	ring := graph.NewDirected()
	for i := 1; i <= 4; i++ {
		next := graph.NodeID(i%4 + 1)
		if err := ring.AddBiEdge(graph.NodeID(i), next, 1); err != nil {
			t.Fatal(err)
		}
	}
	bad = good
	bad.Graph = ring
	if _, err := core.NewRunner(bad); err == nil {
		t.Error("insufficient connectivity accepted")
	}
}

func TestFaultFreeValidity(t *testing.T) {
	r, err := core.NewRunner(baseConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(10)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Mismatch || ir.Phase3 {
		t.Errorf("fault-free run triggered mismatch=%v phase3=%v", ir.Mismatch, ir.Phase3)
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: got %x want %x", agreed, in)
	}
	if len(ir.Outputs) != 4 {
		t.Errorf("outputs for %d nodes, want 4", len(ir.Outputs))
	}
}

func TestFaultFreeTimingMatchesPaper(t *testing.T) {
	// K4 unit capacities: gamma=3; U1=4 (undirected triangle subgraphs at
	// capacity 2 per pair), so rho=2. L = 32 bits. Phase 1 splits into
	// blocks of 10/11/11 bits -> 11 cut-through time units (~L/gamma); the
	// equality check costs L/rho = 16.
	r, err := core.NewRunner(baseConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	ir, err := r.RunInstance(input4(1))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Gamma != 3 || ir.Rho != 2 {
		t.Fatalf("gamma=%d rho=%d, want 3 and 2", ir.Gamma, ir.Rho)
	}
	if ir.Phase1Time != 11 {
		t.Errorf("Phase1Time = %v, want ceil-split L/gamma = 11", ir.Phase1Time)
	}
	if ir.EqualityTime != 16 {
		t.Errorf("EqualityTime = %v, want L/rho = 16", ir.EqualityTime)
	}
	if ir.SymBits != 16 {
		t.Errorf("SymBits = %d, want 16", ir.SymBits)
	}
	// Flag broadcast cost is constant in L (amortizes away).
	if ir.FlagTime <= 0 {
		t.Errorf("FlagTime = %v, want positive", ir.FlagTime)
	}
}

func TestPhase1CorruptionTriggersDisputeControl(t *testing.T) {
	// Node 3 flips every block it forwards. Some honest node must detect
	// the mismatch, Phase 3 must run, and outputs must still satisfy
	// agreement AND validity (source is honest).
	advs := map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(77)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Mismatch || !ir.Phase3 {
		t.Fatalf("corruption not detected: mismatch=%v phase3=%v", ir.Mismatch, ir.Phase3)
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated after dispute control: got %x want %x", agreed, in)
	}
	// Progress: a new dispute or faulty node involving node 3.
	touches3 := false
	for _, d := range ir.NewDisputes {
		if d[0] == 3 || d[1] == 3 {
			touches3 = true
		}
	}
	for _, v := range ir.NewFaulty {
		if v == 3 {
			touches3 = true
		}
		// An honest node must never be identified as faulty.
		if v != 3 {
			t.Errorf("honest node %d declared faulty", v)
		}
	}
	if !touches3 {
		t.Errorf("findings do not involve the culprit: disputes=%v faulty=%v", ir.NewDisputes, ir.NewFaulty)
	}
	// Honest pairs never dispute.
	for _, d := range ir.NewDisputes {
		if d[0] != 3 && d[1] != 3 {
			t.Errorf("honest pair in dispute: %v", d)
		}
	}
}

func TestEquivocatingSourceAgreement(t *testing.T) {
	// The source equivocates in Phase 1 (different blocks to different
	// children). Agreement must still hold; validity is not required since
	// the source is faulty.
	advs := map[graph.NodeID]core.Adversary{1: &adversary.BlockFlipper{Victims: map[graph.NodeID]bool{2: true}}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	ir, err := r.RunInstance(input4(5))
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Mismatch || !ir.Phase3 {
		t.Fatalf("equivocation not detected: mismatch=%v phase3=%v", ir.Mismatch, ir.Phase3)
	}
	checkAgreement(t, ir)
	for _, v := range ir.NewFaulty {
		if v != 1 {
			t.Errorf("honest node %d declared faulty", v)
		}
	}
	for _, d := range ir.NewDisputes {
		if d[0] != 1 && d[1] != 1 {
			t.Errorf("honest pair in dispute: %v", d)
		}
	}
}

func TestCodedCorruptionDetected(t *testing.T) {
	advs := map[graph.NodeID]core.Adversary{4: &adversary.CodedCorruptor{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(9)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 was clean, so values agree; the corrupted equality check
	// must still trigger dispute control and preserve validity.
	if !ir.Phase3 {
		t.Fatal("coded corruption did not trigger dispute control")
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: got %x want %x", agreed, in)
	}
}

func TestFalseAlarmIdentified(t *testing.T) {
	// A faulty node cries MISMATCH on a clean instance: Phase 3 runs, the
	// audit must identify it (announced flag contradicts its own claims),
	// and validity holds.
	advs := map[graph.NodeID]core.Adversary{2: adversary.FalseAlarm{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(30)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Phase3 {
		t.Fatal("false alarm did not trigger phase 3")
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: got %x want %x", agreed, in)
	}
	if len(ir.NewFaulty) != 1 || ir.NewFaulty[0] != 2 {
		t.Errorf("false alarmist not identified: faulty=%v disputes=%v", ir.NewFaulty, ir.NewDisputes)
	}
	// Next instance should run without node 2.
	ir2, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if ir2.ExcludedNodes != 1 {
		t.Errorf("excluded = %d, want 1", ir2.ExcludedNodes)
	}
	if !ir2.Phase1Only {
		t.Error("with f nodes excluded the instance should be Phase-1-only")
	}
	agreed2 := checkAgreement(t, ir2)
	if !bytes.Equal(agreed2, in) {
		t.Errorf("post-exclusion validity violated: got %x", agreed2)
	}
}

func TestCrashAdversary(t *testing.T) {
	advs := map[graph.NodeID]core.Adversary{4: adversary.Crash{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(60)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	// Node 4's silence in phase 1 gives downstream nodes default blocks ->
	// mismatch -> dispute control; validity must hold.
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: got %x want %x", agreed, in)
	}
	for _, v := range ir.NewFaulty {
		if v != 4 {
			t.Errorf("honest node %d declared faulty", v)
		}
	}
}

func TestMuteClaimsIdentified(t *testing.T) {
	// Corrupt phase 1, then refuse to broadcast claims: instant
	// identification.
	advs := map[graph.NodeID]core.Adversary{3: muteFlipper{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(90)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Phase3 {
		t.Fatal("phase 3 did not run")
	}
	found := false
	for _, v := range ir.NewFaulty {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("mute claimant not identified: %v", ir.NewFaulty)
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: got %x", agreed)
	}
}

// muteFlipper corrupts Phase-1 blocks and stays silent in Phase 3.
type muteFlipper struct{ core.Honest }

func (muteFlipper) CorruptBlock(_ int, _ graph.NodeID, block core.BitChunk) core.BitChunk {
	if block.BitLen == 0 {
		return block
	}
	out := core.BitChunk{Bytes: append([]byte(nil), block.Bytes...), BitLen: block.BitLen}
	out.Bytes[0] ^= 0x80
	return out
}

func (muteFlipper) CorruptClaims(*core.Claims) *core.Claims { return nil }

func TestMultiInstanceAmortization(t *testing.T) {
	// A persistent block-flipper is neutralized within f(f+1) dispute
	// phases; afterwards instances run clean.
	advs := map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	var inputs [][]byte
	for q := 0; q < 8; q++ {
		inputs = append(inputs, input4(byte(q*4)))
	}
	rr, err := r.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	f := 1
	if got := rr.DisputePhases(); got > f*(f+1) {
		t.Errorf("dispute phases = %d, exceeds f(f+1) = %d", got, f*(f+1))
	}
	// Validity every instance.
	for q, ir := range rr.Instances {
		agreed := checkAgreement(t, ir)
		if !bytes.Equal(agreed, inputs[q]) {
			t.Errorf("instance %d: got %x want %x", q, agreed, inputs[q])
		}
	}
	// The tail instances must be clean (adversary neutralized or silent).
	last := rr.Instances[len(rr.Instances)-1]
	if last.Phase3 {
		t.Error("last instance still runs dispute control")
	}
	if rr.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
}

func TestSourceRemovedDefaultsOutput(t *testing.T) {
	// A thoroughly faulty source is eventually excluded; subsequent
	// instances agree on the default value with zero cost.
	advs := map[graph.NodeID]core.Adversary{1: muteFlipper{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(200)
	var sawDefault bool
	for q := 0; q < 4; q++ {
		ir, err := r.RunInstance(in)
		if err != nil {
			t.Fatal(err)
		}
		agreed := checkAgreement(t, ir)
		if !r.InstanceGraph().HasNode(1) {
			// Source excluded: next outputs must be the default.
			_ = agreed
		}
		if ir.TotalTime() == 0 && bytes.Equal(agreed, make([]byte, 4)) {
			sawDefault = true
			break
		}
	}
	if !sawDefault {
		t.Error("faulty source never excluded into default-output mode")
	}
}

func TestRunInstanceInputValidation(t *testing.T) {
	r, err := core.NewRunner(baseConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInstance([]byte{1}); err == nil {
		t.Error("short input accepted")
	}
}

func TestWideValuesStripe(t *testing.T) {
	// L = 800 bits with rho = 2 exceeds the 64-bit field cap; the check
	// stripes into ceil(800/128) = 7 words of GF(2^64) and still works.
	cfg := baseConfig(nil)
	cfg.LenBytes = 100
	r, err := core.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 100)
	for i := range in {
		in[i] = byte(i * 7)
	}
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if ir.SymBits != 64 || ir.Stripes != 7 {
		t.Errorf("symBits=%d stripes=%d, want 64 and 7", ir.SymBits, ir.Stripes)
	}
	if ir.Mismatch {
		t.Error("clean striped run flagged mismatch")
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Error("striped validity violated")
	}
	// Striped corruption is still detected and resolved.
	cfg2 := baseConfig(map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}})
	cfg2.LenBytes = 100
	r2, err := core.NewRunner(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ir2, err := r2.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ir2.Phase3 {
		t.Error("striped corruption not detected")
	}
	agreed2 := checkAgreement(t, ir2)
	if !bytes.Equal(agreed2, in) {
		t.Error("striped validity violated after dispute control")
	}
}

func TestSevenNodeTwoFaults(t *testing.T) {
	// Larger network: n=7, f=2, two simultaneous adversaries with
	// different strategies.
	cfg := core.Config{
		Graph:    topo.CompleteBi(7, 2),
		Source:   1,
		F:        2,
		LenBytes: 4,
		Seed:     7,
		Adversaries: map[graph.NodeID]core.Adversary{
			3: &adversary.BlockFlipper{},
			5: adversary.FalseAlarm{},
		},
	}
	r, err := core.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inputs [][]byte
	for q := 0; q < 10; q++ {
		inputs = append(inputs, input4(byte(q)))
	}
	rr, err := r.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	f := 2
	if got := rr.DisputePhases(); got > f*(f+1) {
		t.Errorf("dispute phases = %d > f(f+1) = %d", got, f*(f+1))
	}
	for q, ir := range rr.Instances {
		agreed := checkAgreement(t, ir)
		if !bytes.Equal(agreed, inputs[q]) {
			t.Errorf("instance %d: validity violated (%x != %x)", q, agreed, inputs[q])
		}
	}
	if rr.Instances[len(rr.Instances)-1].Phase3 {
		t.Error("adversaries not neutralized by instance 10")
	}
}

func BenchmarkInstanceFaultFree(b *testing.B) {
	r, err := core.NewRunner(baseConfig(nil))
	if err != nil {
		b.Fatal(err)
	}
	in := input4(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunInstance(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstanceWithDisputeControl(b *testing.B) {
	in := input4(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := core.NewRunner(baseConfig(map[graph.NodeID]core.Adversary{3: &adversary.BlockFlipper{}}))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := r.RunInstance(in); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunnerDeterministic guards the whole stack against nondeterminism
// from goroutine scheduling or map iteration: identical configurations must
// produce bit-identical results, including dispute-control findings.
func TestRunnerDeterministic(t *testing.T) {
	build := func() *core.RunResult {
		cfg := core.Config{
			Graph: topo.CompleteBi(5, 2), Source: 1, F: 1, LenBytes: 16, Seed: 99,
			Adversaries: map[graph.NodeID]core.Adversary{4: &adversary.BlockFlipper{}},
		}
		r, err := core.NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var inputs [][]byte
		for q := 0; q < 4; q++ {
			in := make([]byte, 16)
			in[0] = byte(q)
			inputs = append(inputs, in)
		}
		rr, err := r.Run(inputs)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	a, b := build(), build()
	if len(a.Instances) != len(b.Instances) {
		t.Fatal("instance count differs")
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.TotalTime() != ib.TotalTime() || ia.TotalBits != ib.TotalBits {
			t.Errorf("instance %d timing diverged: %v/%d vs %v/%d",
				i, ia.TotalTime(), ia.TotalBits, ib.TotalTime(), ib.TotalBits)
		}
		if ia.Phase3 != ib.Phase3 || len(ia.NewDisputes) != len(ib.NewDisputes) || len(ia.NewFaulty) != len(ib.NewFaulty) {
			t.Errorf("instance %d findings diverged", i)
		}
		for v, out := range ia.Outputs {
			if !bytes.Equal(out, ib.Outputs[v]) {
				t.Errorf("instance %d node %d output diverged", i, v)
			}
		}
	}
}

// TestRhoRecomputedAfterDispute verifies the per-instance parameter
// recomputation: disputes shrink Omega_k, which can lower U_k and hence
// rho_k and the symbol layout, and the instance must still complete.
func TestRhoRecomputedAfterDispute(t *testing.T) {
	// K4 unit: rho_1 = 2. After the flipper (node 3) is excluded, the
	// 3-node instance graph is Phase-1-only. To observe a rho change with
	// the node still present, dispute edges must survive: use a flipper
	// that corrupts only one victim so a single dispute pair appears.
	cfg := baseConfig(map[graph.NodeID]core.Adversary{
		3: &adversary.BlockFlipper{Victims: map[graph.NodeID]bool{4: true}},
	})
	r, err := core.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.RunInstance(input4(1))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Phase3 {
		t.Skip("corruption travelled only on undisturbed trees this packing")
	}
	second, err := r.RunInstance(input4(2))
	if err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, second)
	if second.Phase3 {
		// Allowed (another dispute round), but by f(f+1)=2 the third must
		// be clean.
		third, err := r.RunInstance(input4(3))
		if err != nil {
			t.Fatal(err)
		}
		if third.Phase3 {
			t.Error("dispute phases exceeded f(f+1)")
		}
	}
}

// TestSuppressedFlagStillDetected: a faulty node that corrupts Phase 1 but
// announces NULL cannot hide — the EC property guarantees some fault-free
// node raises the flag.
func TestSuppressedFlagStillDetected(t *testing.T) {
	advs := map[graph.NodeID]core.Adversary{3: suppressingFlipper{}}
	r, err := core.NewRunner(baseConfig(advs))
	if err != nil {
		t.Fatal(err)
	}
	in := input4(111)
	ir, err := r.RunInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.Mismatch || !ir.Phase3 {
		t.Fatalf("suppressed corruption went undetected: mismatch=%v phase3=%v", ir.Mismatch, ir.Phase3)
	}
	agreed := checkAgreement(t, ir)
	if !bytes.Equal(agreed, in) {
		t.Errorf("validity violated: %x", agreed)
	}
	if ds := r.Disputes(); ds.Len() == 0 && len(ir.NewFaulty) == 0 {
		t.Error("no dispute state accumulated")
	}
}

// suppressingFlipper corrupts Phase-1 blocks and lies that it saw no
// mismatch.
type suppressingFlipper struct{ core.Honest }

func (suppressingFlipper) CorruptBlock(_ int, _ graph.NodeID, block core.BitChunk) core.BitChunk {
	if block.BitLen == 0 {
		return block
	}
	out := core.BitChunk{Bytes: append([]byte(nil), block.Bytes...), BitLen: block.BitLen}
	out.Bytes[0] ^= 0x80 // flip a payload bit, not byte padding
	return out
}

func (suppressingFlipper) OverrideFlag(bool) bool { return false }
