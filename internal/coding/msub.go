package coding

import (
	"fmt"

	"nab/internal/graph"
	"nab/internal/linalg"
	"nab/internal/spantree"
)

// SpanningSubmatrix builds M_H, the square submatrix of C_H whose columns
// correspond to rho edge-disjoint undirected spanning trees of H's
// undirected version (Appendix C.1). Theorem 1 shows M_H is invertible with
// high probability over the random coding matrices; M_H invertible implies
// C_H has full row rank, i.e. the equality check is sound on H.
//
// Trees must be unit-edge-disjoint (as produced by
// spantree.PackUndirectedTrees on H) and there must be exactly rho of them.
func (s *Scheme) SpanningSubmatrix(h *graph.Directed, trees [][]spantree.UnitEdge) (*linalg.Matrix, error) {
	if len(trees) != s.rho {
		return nil, fmt.Errorf("coding: %d trees, want rho = %d", len(trees), s.rho)
	}
	ch, err := s.AssembleCH(h)
	if err != nil {
		return nil, err
	}
	offsets := ColumnOffsets(h)
	nBlocks := h.NumNodes() - 1
	var cols []int
	seen := map[int]bool{}
	for ti, tree := range trees {
		if len(tree) != nBlocks {
			return nil, fmt.Errorf("coding: tree %d has %d edges, want %d", ti, len(tree), nBlocks)
		}
		for _, ue := range tree {
			off, ok := offsets[EdgeKey{ue.From, ue.To}]
			if !ok {
				return nil, fmt.Errorf("coding: tree %d uses edge (%d,%d) not in subgraph", ti, ue.From, ue.To)
			}
			if int64(ue.Slot) >= h.Cap(ue.From, ue.To) || ue.Slot < 0 {
				return nil, fmt.Errorf("coding: tree %d slot %d out of range for edge (%d,%d)", ti, ue.Slot, ue.From, ue.To)
			}
			col := off + ue.Slot
			if seen[col] {
				return nil, fmt.Errorf("coding: column %d (edge (%d,%d) slot %d) reused; trees not disjoint", col, ue.From, ue.To, ue.Slot)
			}
			seen[col] = true
			cols = append(cols, col)
		}
	}
	rows := make([]int, ch.Rows())
	for i := range rows {
		rows[i] = i
	}
	return ch.SubMatrix(rows, cols)
}

// BuildSpanningSubmatrix packs rho disjoint undirected spanning trees in h
// and returns M_H, the trees used, and an error if h cannot support rho
// trees (which, by Nash-Williams/Tutte, cannot happen when
// rho <= U_H / 2 — the paper's parameter constraint).
func (s *Scheme) BuildSpanningSubmatrix(h *graph.Directed) (*linalg.Matrix, [][]spantree.UnitEdge, error) {
	trees, err := spantree.PackUndirectedTrees(h, s.rho)
	if err != nil {
		return nil, nil, fmt.Errorf("coding: packing %d trees: %w", s.rho, err)
	}
	m, err := s.SpanningSubmatrix(h, trees)
	if err != nil {
		return nil, nil, err
	}
	return m, trees, nil
}
