package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nab/internal/gf"
	"nab/internal/graph"
)

// fig1a is the reconstructed Figure 1(a): K4 minus the 2-4 edge, unit
// bidirectional capacities (see internal/graph tests for the derivation).
func fig1a() *graph.Directed {
	g := graph.NewDirected()
	for _, pair := range [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 1); err != nil {
			panic(err)
		}
	}
	return g
}

// omega1 returns all (n-f)-node induced subgraphs of g — Omega_1 before any
// disputes exist.
func omega1(g *graph.Directed, f int) []*graph.Directed {
	nodes := g.Nodes()
	keep := len(nodes) - f
	var out []*graph.Directed
	var rec func(start int, cur []graph.NodeID)
	rec = func(start int, cur []graph.NodeID) {
		if len(cur) == keep {
			out = append(out, g.Induced(append([]graph.NodeID(nil), cur...)))
			return
		}
		for i := start; i < len(nodes); i++ {
			rec(i+1, append(cur, nodes[i]))
		}
	}
	rec(0, nil)
	return out
}

func TestNewSchemeShapes(t *testing.T) {
	g := fig1a()
	field := gf.MustNew(16)
	s, err := NewScheme(g, 2, field, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rho() != 2 || s.Field() != field {
		t.Error("scheme accessors wrong")
	}
	for _, e := range g.Edges() {
		m := s.EdgeMatrix(e.From, e.To)
		if m == nil {
			t.Fatalf("missing matrix for %v", e)
		}
		if m.Rows() != 2 || int64(m.Cols()) != e.Cap {
			t.Fatalf("matrix for %v is %dx%d", e, m.Rows(), m.Cols())
		}
	}
	if s.EdgeMatrix(2, 4) != nil {
		t.Error("matrix for absent edge should be nil")
	}
}

func TestNewSchemeValidation(t *testing.T) {
	g := fig1a()
	if _, err := NewScheme(g, 0, gf.MustNew(8), rand.New(rand.NewSource(1))); err == nil {
		t.Error("rho=0: expected error")
	}
	if _, err := NewScheme(g, 1, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil field: expected error")
	}
}

func TestEncodeCheckRoundTrip(t *testing.T) {
	g := fig1a()
	field := gf.MustNew(16)
	rng := rand.New(rand.NewSource(2))
	s, err := NewScheme(g, 2, field, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []gf.Elem{field.Rand(rng), field.Rand(rng)}
	y, err := s.Encode(1, 2, x)
	if err != nil {
		t.Fatal(err)
	}
	// Same value on both sides: no mismatch.
	mismatch, err := s.Check(1, 2, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mismatch {
		t.Error("identical values flagged MISMATCH")
	}
	// Corrupted symbols: mismatch.
	bad := append([]gf.Elem(nil), y...)
	bad[0] ^= 1
	mismatch, err = s.Check(1, 2, x, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !mismatch {
		t.Error("corrupted symbols not flagged")
	}
	// Truncated symbols: mismatch (missing message -> default).
	mismatch, err = s.Check(1, 2, x, y[:0])
	if err != nil {
		t.Fatal(err)
	}
	if !mismatch {
		t.Error("missing symbols not flagged")
	}
}

func TestEncodeErrors(t *testing.T) {
	g := fig1a()
	s, err := NewScheme(g, 2, gf.MustNew(8), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encode(2, 4, []gf.Elem{1, 2}); err == nil {
		t.Error("absent edge: expected error")
	}
	if _, err := s.Encode(1, 2, []gf.Elem{1}); err == nil {
		t.Error("short value: expected error")
	}
}

func TestAssembleCHDimensions(t *testing.T) {
	g := fig1a()
	s, err := NewScheme(g, 2, gf.MustNew(16), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// H = subgraph on {1,3,4}: edges 1<->3, 1<->4, 3<->4 (6 directed), total
	// capacity 6. Blocks: nodes 1 and 3 (ref = 4). Rows = 2*rho = 4.
	h := g.Induced([]graph.NodeID{1, 3, 4})
	ch, err := s.AssembleCH(h)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Rows() != 4 || ch.Cols() != 6 {
		t.Fatalf("C_H is %dx%d, want 4x6", ch.Rows(), ch.Cols())
	}
}

func TestAssembleCHErrors(t *testing.T) {
	g := fig1a()
	s, err := NewScheme(g, 1, gf.MustNew(8), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Subgraph with an edge the scheme has no matrix for.
	h := graph.NewDirected()
	h.MustAddEdge(1, 2, 1)
	h.MustAddEdge(2, 4, 1) // not in fig1a
	if _, err := s.AssembleCH(h); err == nil {
		t.Error("missing matrix: expected error")
	}
	// Single node subgraph.
	single := graph.NewDirected()
	single.AddNode(1)
	if _, err := s.AssembleCH(single); err == nil {
		t.Error("tiny subgraph: expected error")
	}
}

func TestVerifyAndGenerateVerified(t *testing.T) {
	g := fig1a()
	omega := omega1(g, 1) // f=1: four 3-node subgraphs
	if len(omega) != 4 {
		t.Fatalf("omega has %d subgraphs, want 4", len(omega))
	}
	field := gf.MustNew(16)
	rng := rand.New(rand.NewSource(5))
	// U_1: min over H in Omega_1 of pairwise mincut. Subgraph {1,2,4} has
	// no 2-4 edge, undirected caps 2 => U = 2, rho = 1.
	s, tries, err := GenerateVerified(g, 1, field, omega, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tries < 1 {
		t.Errorf("tries = %d", tries)
	}
	bad, err := s.Verify(omega)
	if err != nil {
		t.Fatal(err)
	}
	if bad != -1 {
		t.Errorf("verified scheme fails on subgraph %d", bad)
	}
}

func TestGenerateVerifiedValidation(t *testing.T) {
	g := fig1a()
	if _, _, err := GenerateVerified(g, 1, gf.MustNew(8), nil, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("maxTries=0: expected error")
	}
}

// TestEqualityCheckSoundness is the core EC property of the paper: if two
// fault-free nodes hold different values, some fault-free node detects a
// mismatch — equivalently, for the true fault-free subgraph H, if all
// pairwise checks inside H pass then all values in H are equal.
func TestEqualityCheckSoundness(t *testing.T) {
	g := fig1a()
	omega := omega1(g, 1)
	field := gf.MustNew(16)
	rng := rand.New(rand.NewSource(7))
	s, _, err := GenerateVerified(g, 1, field, omega, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range omega {
		nodes := h.Nodes()
		for trial := 0; trial < 50; trial++ {
			// Random values, sometimes identical, sometimes not.
			vals := map[graph.NodeID][]gf.Elem{}
			base := []gf.Elem{field.Rand(rng)}
			differ := false
			for _, v := range nodes {
				if rng.Intn(2) == 0 {
					vals[v] = append([]gf.Elem(nil), base...)
				} else {
					x := []gf.Elem{field.Rand(rng)}
					vals[v] = x
					if x[0] != base[0] {
						differ = true
					}
				}
			}
			// Honest exchange inside H: mismatch detected anywhere?
			detected := false
			for _, e := range h.Edges() {
				y, err := s.Encode(e.From, e.To, vals[e.From])
				if err != nil {
					t.Fatal(err)
				}
				mm, err := s.Check(e.From, e.To, vals[e.To], y)
				if err != nil {
					t.Fatal(err)
				}
				if mm {
					detected = true
				}
			}
			if differ && !detected {
				t.Fatalf("EC violated on %v: values %v differ but no mismatch", nodes, vals)
			}
			if !differ && detected {
				t.Fatalf("false positive on %v: identical values flagged", nodes)
			}
		}
	}
}

// TestSoundnessFailureRateSmallField verifies Theorem 1 quantitatively: with
// a tiny field the failure probability of a single random draw is visible
// and must not exceed the paper's bound by more than sampling noise.
func TestSoundnessFailureRateSmallField(t *testing.T) {
	g := fig1a()
	omega := omega1(g, 1)
	const symBits = 4
	field := gf.MustNew(symBits)
	rng := rand.New(rand.NewSource(11))
	const draws = 400
	failures := 0
	for i := 0; i < draws; i++ {
		s, err := NewScheme(g, 1, field, rng)
		if err != nil {
			t.Fatal(err)
		}
		bad, err := s.Verify(omega)
		if err != nil {
			t.Fatal(err)
		}
		if bad >= 0 {
			failures++
		}
	}
	bound := Theorem1Bound(4, 1, 1, symBits)
	rate := float64(failures) / draws
	t.Logf("empirical failure rate %.4f, Theorem 1 bound %.4f", rate, bound)
	// Allow generous sampling slack (3 sigma of binomial at the bound).
	slack := 3 * 0.5 / 20 // ~0.075
	if rate > bound+slack {
		t.Errorf("failure rate %.4f exceeds bound %.4f + slack", rate, bound)
	}
}

func TestTheorem1Bound(t *testing.T) {
	// n=4, f=1, rho=1: C(4,3)*(3-1)*1 = 8; at m=4 bound = 8/16 = 0.5.
	if got := Theorem1Bound(4, 1, 1, 4); got != 0.5 {
		t.Errorf("bound = %v, want 0.5", got)
	}
	// Saturates at 1.
	if got := Theorem1Bound(10, 3, 4, 1); got != 1 {
		t.Errorf("bound = %v, want 1 (saturated)", got)
	}
	// Large m drives the bound toward 0.
	if got := Theorem1Bound(4, 1, 1, 60); got > 1e-15 {
		t.Errorf("bound = %v, want ~0", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{4, 3, 4}, {10, 5, 252}, {5, 0, 1}, {5, 5, 1}, {3, 7, 0}, {3, -1, 0}}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestSpanningSubmatrixInvertible(t *testing.T) {
	// On the full K4-minus-one-edge graph with rho = 2 (its own undirected
	// mincut is 4): M_H for H = G itself should be square and, with a
	// 16-bit field, invertible with overwhelming probability.
	g := fig1a()
	field := gf.MustNew(16)
	rng := rand.New(rand.NewSource(13))
	s, err := NewScheme(g, 2, field, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, trees, err := s.BuildSpanningSubmatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("got %d trees", len(trees))
	}
	want := (g.NumNodes() - 1) * 2
	if m.Rows() != want || m.Cols() != want {
		t.Fatalf("M_H is %dx%d, want %dx%d", m.Rows(), m.Cols(), want, want)
	}
	if !m.Invertible() {
		t.Error("M_H singular (probability ~2^-13; treat as failure)")
	}
}

func TestSpanningSubmatrixValidation(t *testing.T) {
	g := fig1a()
	s, err := NewScheme(g, 2, gf.MustNew(16), rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpanningSubmatrix(g, nil); err == nil {
		t.Error("wrong tree count: expected error")
	}
}

func TestMHInvertibleImpliesFullRank(t *testing.T) {
	// Whenever M_H is invertible, C_H must have full row rank — the logical
	// step of the Theorem 1 proof, checked empirically.
	g := fig1a()
	field := gf.MustNew(8)
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		s, err := NewScheme(g, 2, field, rng)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := s.BuildSpanningSubmatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := s.AssembleCH(g)
		if err != nil {
			t.Fatal(err)
		}
		if m.Invertible() && ch.Rank() != ch.Rows() {
			t.Fatal("M_H invertible but C_H rank-deficient")
		}
	}
}

func TestPackUnpackValueRoundTrip(t *testing.T) {
	data := []byte("byzantine broadcast")
	symbols, err := PackValue(data, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnpackValue(symbols, 8, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, back) {
		t.Errorf("round trip: %q != %q", back, data)
	}
}

func TestPackValueQuick(t *testing.T) {
	check := func(data []byte, rhoSeed uint8, bitsSeed uint8) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		symbolBits := uint(1 + bitsSeed%64)
		need := (uint64(len(data))*8 + uint64(symbolBits) - 1) / uint64(symbolBits)
		rho := int(need) + int(rhoSeed%4)
		if rho == 0 {
			rho = 1
		}
		symbols, err := PackValue(data, rho, symbolBits)
		if err != nil {
			return false
		}
		back, err := UnpackValue(symbols, symbolBits, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(data, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackValueErrors(t *testing.T) {
	if _, err := PackValue([]byte{1}, 0, 8); err == nil {
		t.Error("rho=0: expected error")
	}
	if _, err := PackValue([]byte{1}, 1, 0); err == nil {
		t.Error("bits=0: expected error")
	}
	if _, err := PackValue([]byte{1, 2, 3}, 1, 8); err == nil {
		t.Error("overflow: expected error")
	}
	if _, err := UnpackValue([]gf.Elem{1}, 0, 1); err == nil {
		t.Error("bits=0: expected error")
	}
	if _, err := UnpackValue([]gf.Elem{1}, 8, 5); err == nil {
		t.Error("overflow: expected error")
	}
}

func TestValuesEqual(t *testing.T) {
	if !ValuesEqual([]gf.Elem{1, 2}, []gf.Elem{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if ValuesEqual([]gf.Elem{1}, []gf.Elem{1, 2}) {
		t.Error("length mismatch reported equal")
	}
	if ValuesEqual([]gf.Elem{1, 3}, []gf.Elem{1, 2}) {
		t.Error("different slices reported equal")
	}
}

func BenchmarkGenerateVerified(b *testing.B) {
	g := fig1a()
	omega := omega1(g, 1)
	field := gf.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateVerified(g, 1, field, omega, rng, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	g := fig1a()
	field := gf.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	s, err := NewScheme(g, 2, field, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := []gf.Elem{field.Rand(rng), field.Rand(rng)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(1, 2, x); err != nil {
			b.Fatal(err)
		}
	}
}
