package coding

import (
	"math/rand"
	"testing"

	"nab/internal/gf"
	"nab/internal/graph"
)

// schemeForInto draws a verified scheme on Figure 1(a) for the Into tests.
func schemeForInto(t testing.TB, deg uint) (*Scheme, *graph.Directed) {
	t.Helper()
	g := fig1a()
	field := gf.MustNew(deg)
	s, _, err := GenerateVerified(g, 2, field, omega1(g, 1), rand.New(rand.NewSource(2012)), 16)
	if err != nil {
		t.Fatalf("GenerateVerified: %v", err)
	}
	return s, g
}

// TestEncodeIntoMatchesEncode checks the in-place encode against the
// allocating form on every edge, and its error cases.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	s, g := schemeForInto(t, 16)
	rng := rand.New(rand.NewSource(5))
	x := []gf.Elem{s.Field().Rand(rng), s.Field().Rand(rng)}
	for _, e := range g.Edges() {
		want, err := s.Encode(e.From, e.To, x)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]gf.Elem, len(want))
		for i := range dst {
			dst[i] = ^gf.Elem(0)
		}
		if err := s.EncodeInto(e.From, e.To, x, dst); err != nil {
			t.Fatalf("EncodeInto(%d,%d): %v", e.From, e.To, err)
		}
		if !ValuesEqual(dst, want) {
			t.Fatalf("EncodeInto(%d,%d) != Encode", e.From, e.To)
		}
	}
	if err := s.EncodeInto(1, 99, x, nil); err == nil {
		t.Error("EncodeInto on missing edge: expected error")
	}
	if err := s.EncodeInto(1, 2, x[:1], make([]gf.Elem, 1)); err == nil {
		t.Error("EncodeInto with short value: expected error")
	}
}

// TestCheckIntoMatchesCheck checks the scratch form against Check for both
// verdicts, plus the scratch-size guard.
func TestCheckIntoMatchesCheck(t *testing.T) {
	s, g := schemeForInto(t, 16)
	rng := rand.New(rand.NewSource(6))
	x := []gf.Elem{s.Field().Rand(rng), s.Field().Rand(rng)}
	scratch := make([]gf.Elem, s.MaxCap())
	for _, e := range g.Edges() {
		y, err := s.Encode(e.From, e.To, x)
		if err != nil {
			t.Fatal(err)
		}
		for _, corrupt := range []bool{false, true} {
			probe := append([]gf.Elem(nil), y...)
			if corrupt {
				probe[0] ^= 1
			}
			want, err := s.Check(e.From, e.To, x, probe)
			if err != nil {
				t.Fatal(err)
			}
			if want != corrupt {
				t.Fatalf("Check(%d,%d) corrupt=%v: mismatch=%v", e.From, e.To, corrupt, want)
			}
			got, err := s.CheckInto(e.From, e.To, x, probe, scratch)
			if err != nil {
				t.Fatalf("CheckInto(%d,%d): %v", e.From, e.To, err)
			}
			if got != want {
				t.Fatalf("CheckInto(%d,%d) = %v, Check = %v", e.From, e.To, got, want)
			}
		}
	}
	if _, err := s.CheckInto(1, 2, x, nil, make([]gf.Elem, 0)); err == nil {
		t.Error("CheckInto with short scratch: expected error")
	}
}

// TestEncodeCheckZeroAlloc pins the steady-state coding hot path — the
// per-edge EncodeInto and the receiver-side Check of every instance — at
// zero allocations per operation.
func TestEncodeCheckZeroAlloc(t *testing.T) {
	for _, deg := range []uint{16, 64} {
		s, g := schemeForInto(t, deg)
		rng := rand.New(rand.NewSource(9))
		x := []gf.Elem{s.Field().Rand(rng), s.Field().Rand(rng)}
		e := g.Edges()[0]
		dst := make([]gf.Elem, s.EdgeMatrix(e.From, e.To).Cols())
		if err := s.EncodeInto(e.From, e.To, x, dst); err != nil {
			t.Fatal(err)
		}
		y := append([]gf.Elem(nil), dst...)
		scratch := make([]gf.Elem, s.MaxCap())

		if avg := testing.AllocsPerRun(200, func() {
			if err := s.EncodeInto(e.From, e.To, x, dst); err != nil {
				t.Fatal(err)
			}
			mm, err := s.CheckInto(e.From, e.To, x, y, scratch)
			if err != nil || mm {
				t.Fatalf("CheckInto: mismatch=%v err=%v", mm, err)
			}
		}); avg != 0 {
			t.Errorf("GF(2^%d): Encode+Check steady state allocates %.1f times per op, want 0", deg, avg)
		}

		// The pooled Check form must also settle at zero steady-state
		// allocations (the pool is warm after the first call).
		if avg := testing.AllocsPerRun(200, func() {
			mm, err := s.Check(e.From, e.To, x, y)
			if err != nil || mm {
				t.Fatalf("Check: mismatch=%v err=%v", mm, err)
			}
		}); avg != 0 {
			t.Errorf("GF(2^%d): pooled Check allocates %.1f times per op, want 0", deg, avg)
		}
	}
}

// BenchmarkSchemeEncode measures the per-edge coded-symbol computation on
// both field regimes.
func BenchmarkSchemeEncode(b *testing.B) {
	for _, deg := range []uint{16, 64} {
		s, g := schemeForInto(b, deg)
		rng := rand.New(rand.NewSource(2012))
		x := []gf.Elem{s.Field().Rand(rng), s.Field().Rand(rng)}
		e := g.Edges()[0]
		dst := make([]gf.Elem, s.EdgeMatrix(e.From, e.To).Cols())
		name := map[uint]string{16: "GF16", 64: "GF64"}[deg]
		b.Run(name+"/into", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.EncodeInto(e.From, e.To, x, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/alloc", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Encode(e.From, e.To, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
