package coding

import (
	"fmt"

	"nab/internal/gf"
)

// PackValue converts a byte string into rho symbols of symbolBits bits each,
// reading bits most-significant-first. The data must fit: len(data)*8 <=
// rho*symbolBits; missing trailing bits are zero-padded. This realizes the
// paper's view of an L-bit value x as a vector X of rho symbols over
// GF(2^(L/rho)).
func PackValue(data []byte, rho int, symbolBits uint) ([]gf.Elem, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("coding: rho = %d must be positive", rho)
	}
	if symbolBits < 1 || symbolBits > 64 {
		return nil, fmt.Errorf("coding: symbolBits = %d out of range [1,64]", symbolBits)
	}
	capacity := uint64(rho) * uint64(symbolBits)
	if uint64(len(data))*8 > capacity {
		return nil, fmt.Errorf("coding: %d bytes exceed capacity %d bits (rho=%d, m=%d)", len(data), capacity, rho, symbolBits)
	}
	out := make([]gf.Elem, rho)
	bitPos := uint64(0)
	for _, b := range data {
		for k := 7; k >= 0; k-- {
			bit := uint64(b>>uint(k)) & 1
			sym := bitPos / uint64(symbolBits)
			off := bitPos % uint64(symbolBits)
			if bit != 0 {
				out[sym] |= 1 << (uint64(symbolBits) - 1 - off)
			}
			bitPos++
		}
	}
	return out, nil
}

// UnpackValue is the inverse of PackValue, returning byteLen bytes.
func UnpackValue(symbols []gf.Elem, symbolBits uint, byteLen int) ([]byte, error) {
	if symbolBits < 1 || symbolBits > 64 {
		return nil, fmt.Errorf("coding: symbolBits = %d out of range [1,64]", symbolBits)
	}
	capacity := uint64(len(symbols)) * uint64(symbolBits)
	if uint64(byteLen)*8 > capacity {
		return nil, fmt.Errorf("coding: %d bytes exceed %d available bits", byteLen, capacity)
	}
	out := make([]byte, byteLen)
	for bitPos := uint64(0); bitPos < uint64(byteLen)*8; bitPos++ {
		sym := bitPos / uint64(symbolBits)
		off := bitPos % uint64(symbolBits)
		bit := (symbols[sym] >> (uint64(symbolBits) - 1 - off)) & 1
		if bit != 0 {
			out[bitPos/8] |= 1 << (7 - bitPos%8)
		}
	}
	return out, nil
}

// ValuesEqual reports whether two symbol vectors are identical.
func ValuesEqual(a, b []gf.Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
