// Package coding implements the local linear coding used by NAB's equality
// check (Algorithm 1 of the paper) and the machinery of Theorem 1's
// soundness proof.
//
// A Scheme fixes, for each directed edge e of capacity z_e in the instance
// graph G_k, a rho x z_e coding matrix C_e over GF(2^m) (m = L/rho). During
// the equality check each node i sends Y_e = X_i * C_e on every outgoing
// edge and verifies Y_d = X_i * C_d for every incoming edge d.
//
// The paper specifies correct matrices as part of the algorithm, proving
// existence by the probabilistic method (Theorem 1). We mirror that: draw
// matrices at random and *verify* correctness deterministically — full row
// rank of the assembled C_H matrix for every potential fault-free subgraph
// H in Omega_k — redrawing until verification passes.
package coding

import (
	"fmt"
	"math"
	"sync"

	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/linalg"
)

// EdgeKey identifies a directed edge.
type EdgeKey [2]graph.NodeID

// Scheme holds the per-edge coding matrices for one instance graph.
type Scheme struct {
	field  *gf.Field
	rho    int
	mats   map[EdgeKey]*linalg.Matrix
	maxCap int // widest edge matrix, sizes pooled Check scratch

	// scratch pools maxCap-symbol buffers so the steady-state equality
	// check (Check on every incoming edge, every instance) allocates
	// nothing. Buffers never escape a call.
	scratch sync.Pool
}

// NewScheme draws a fresh random scheme for graph g with parameter rho over
// field: each C_e is rho x cap(e) with i.i.d. uniform entries (Theorem 1's
// distribution).
func NewScheme(g *graph.Directed, rho int, field *gf.Field, src interface{ Uint64() uint64 }) (*Scheme, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("coding: rho = %d must be positive", rho)
	}
	if field == nil {
		return nil, fmt.Errorf("coding: nil field")
	}
	s := &Scheme{field: field, rho: rho, mats: map[EdgeKey]*linalg.Matrix{}}
	for _, e := range g.Edges() {
		m, err := linalg.Random(field, rho, int(e.Cap), src)
		if err != nil {
			return nil, fmt.Errorf("coding: edge (%d,%d): %w", e.From, e.To, err)
		}
		s.mats[EdgeKey{e.From, e.To}] = m
		if int(e.Cap) > s.maxCap {
			s.maxCap = int(e.Cap)
		}
	}
	maxCap := s.maxCap
	s.scratch.New = func() any {
		buf := make([]gf.Elem, maxCap)
		return &buf
	}
	return s, nil
}

// Rho returns the equality-check parameter rho (symbols per value).
func (s *Scheme) Rho() int { return s.rho }

// Field returns the symbol field GF(2^m).
func (s *Scheme) Field() *gf.Field { return s.field }

// EdgeMatrix returns C_e for edge (from, to), or nil if the scheme has no
// matrix for it.
func (s *Scheme) EdgeMatrix(from, to graph.NodeID) *linalg.Matrix {
	return s.mats[EdgeKey{from, to}]
}

// MaxCap returns the widest edge capacity z_e of the scheme — the largest
// symbol count Encode can produce, which sizes reusable Check/Encode
// scratch buffers.
func (s *Scheme) MaxCap() int { return s.maxCap }

// Encode computes the coded symbols Y_e = X * C_e a node sends on edge
// (from, to). X must have exactly rho symbols.
func (s *Scheme) Encode(from, to graph.NodeID, x []gf.Elem) ([]gf.Elem, error) {
	m := s.EdgeMatrix(from, to)
	if m == nil {
		return nil, fmt.Errorf("coding: no matrix for edge (%d,%d)", from, to)
	}
	if len(x) != s.rho {
		return nil, fmt.Errorf("coding: value has %d symbols, want rho = %d", len(x), s.rho)
	}
	return m.MulVec(x)
}

// EncodeInto is Encode writing into dst, which must hold exactly the
// edge's z_e symbols; dst is overwritten. The allocation-free form for hot
// paths that place coded symbols directly into a larger frame buffer.
//
//nab:allocfree
func (s *Scheme) EncodeInto(from, to graph.NodeID, x, dst []gf.Elem) error {
	m := s.EdgeMatrix(from, to)
	if m == nil {
		return fmt.Errorf("coding: no matrix for edge (%d,%d)", from, to)
	}
	if len(x) != s.rho {
		return fmt.Errorf("coding: value has %d symbols, want rho = %d", len(x), s.rho)
	}
	return m.MulVecInto(x, dst)
}

// Check performs the receiver-side comparison of Algorithm 1 step 2: node i
// holding value x checks the symbols y received on incoming edge
// (from, to=i) against x * C_d. It reports mismatch = true when the check
// fails (the node would set its flag to MISMATCH). Steady-state calls are
// allocation-free: the expected symbols are computed into a pooled buffer.
func (s *Scheme) Check(from, to graph.NodeID, x []gf.Elem, y []gf.Elem) (bool, error) {
	bp := s.scratch.Get().(*[]gf.Elem)
	mm, err := s.CheckInto(from, to, x, y, *bp)
	s.scratch.Put(bp)
	return mm, err
}

// CheckInto is Check computing the expected symbols into the caller's
// scratch buffer, which must hold at least the edge's z_e symbols (MaxCap
// suffices for every edge) and is clobbered.
//
//nab:allocfree
func (s *Scheme) CheckInto(from, to graph.NodeID, x, y, scratch []gf.Elem) (bool, error) {
	m := s.EdgeMatrix(from, to)
	if m == nil {
		return false, fmt.Errorf("coding: no matrix for edge (%d,%d)", from, to)
	}
	if len(scratch) < m.Cols() {
		return false, fmt.Errorf("coding: scratch of %d symbols, edge (%d,%d) needs %d", len(scratch), from, to, m.Cols())
	}
	want := scratch[:m.Cols()]
	if err := s.EncodeInto(from, to, x, want); err != nil {
		return false, err
	}
	if len(y) != len(want) {
		// Missing or truncated symbols are treated as a mismatch, matching
		// the model's "missing message becomes a default value".
		return true, nil
	}
	for i := range want {
		if y[i] != want[i] {
			return true, nil
		}
	}
	return false, nil
}

// blockIndex maps the nodes of subgraph H to row-block positions for the
// expanded matrices: nodes sorted ascending; the last (reference) node has
// no block. Returns the ordering, block index map, and reference node.
func blockIndex(h *graph.Directed) ([]graph.NodeID, map[graph.NodeID]int, graph.NodeID) {
	nodes := h.Nodes()
	ref := nodes[len(nodes)-1]
	blocks := map[graph.NodeID]int{}
	for i, v := range nodes[:len(nodes)-1] {
		blocks[v] = i
	}
	return nodes, blocks, ref
}

// AssembleCH builds the (|H|-1)*rho x m matrix C_H of Appendix C.1 for
// subgraph H: the horizontal concatenation of the expanded matrices B_e of
// every edge of H, where B_e places C_e in the tail node's block and -C_e
// (= C_e in characteristic 2) in the head node's block, the reference node
// contributing no block. Column order follows h.Edges() with slot order
// inside each edge, which is the canonical column indexing used by
// ColumnOffsets and SpanningSubmatrix.
func (s *Scheme) AssembleCH(h *graph.Directed) (*linalg.Matrix, error) {
	_, blocks, ref := blockIndex(h)
	nBlocks := len(blocks)
	if nBlocks == 0 {
		return nil, fmt.Errorf("coding: subgraph has fewer than 2 nodes")
	}
	totalCols := int(h.TotalCapacity())
	ch, err := linalg.New(s.field, nBlocks*s.rho, totalCols)
	if err != nil {
		return nil, err
	}
	col := 0
	for _, e := range h.Edges() {
		ce := s.EdgeMatrix(e.From, e.To)
		if ce == nil {
			return nil, fmt.Errorf("coding: missing matrix for subgraph edge (%d,%d)", e.From, e.To)
		}
		if int64(ce.Cols()) != e.Cap {
			return nil, fmt.Errorf("coding: matrix for (%d,%d) has %d cols, capacity %d", e.From, e.To, ce.Cols(), e.Cap)
		}
		for c := 0; c < int(e.Cap); c++ {
			if e.From != ref {
				bi := blocks[e.From]
				for r := 0; r < s.rho; r++ {
					ch.Set(bi*s.rho+r, col, ce.At(r, c))
				}
			}
			if e.To != ref {
				bi := blocks[e.To]
				for r := 0; r < s.rho; r++ {
					// -C_e equals C_e in characteristic 2.
					ch.Set(bi*s.rho+r, col, ce.At(r, c))
				}
			}
			col++
		}
	}
	return ch, nil
}

// ColumnOffsets returns, for each edge of h (in h.Edges() order), the first
// C_H column carrying that edge's coded symbols.
func ColumnOffsets(h *graph.Directed) map[EdgeKey]int {
	out := map[EdgeKey]int{}
	col := 0
	for _, e := range h.Edges() {
		out[EdgeKey{e.From, e.To}] = col
		col += int(e.Cap)
	}
	return out
}

// Verifysubgraph reports whether the equality check is sound on subgraph H
// under this scheme: C_H must have full row rank (|H|-1)*rho, which is
// exactly the condition "D_H C_H = 0 implies D_H = 0" of the Theorem 1
// proof.
func (s *Scheme) VerifySubgraph(h *graph.Directed) (bool, error) {
	ch, err := s.AssembleCH(h)
	if err != nil {
		return false, err
	}
	return ch.Rank() == ch.Rows(), nil
}

// Verify checks soundness on every subgraph in omega (the Omega_k family:
// all candidate fault-free node sets). It returns the first failing
// subgraph index, or -1 if all pass.
func (s *Scheme) Verify(omega []*graph.Directed) (int, error) {
	for i, h := range omega {
		ok, err := s.VerifySubgraph(h)
		if err != nil {
			return i, fmt.Errorf("coding: verifying subgraph %d: %w", i, err)
		}
		if !ok {
			return i, nil
		}
	}
	return -1, nil
}

// GenerateVerified draws schemes until one passes Verify, up to maxTries.
// It returns the scheme and the number of draws used. By Theorem 1 a single
// draw succeeds with probability at least 1 - 2^-m * |Omega|(n-f-1)rho, so
// for reasonable field sizes tries == 1 almost always.
func GenerateVerified(g *graph.Directed, rho int, field *gf.Field, omega []*graph.Directed, src interface{ Uint64() uint64 }, maxTries int) (*Scheme, int, error) {
	if maxTries <= 0 {
		return nil, 0, fmt.Errorf("coding: maxTries = %d must be positive", maxTries)
	}
	for try := 1; try <= maxTries; try++ {
		s, err := NewScheme(g, rho, field, src)
		if err != nil {
			return nil, try, err
		}
		bad, err := s.Verify(omega)
		if err != nil {
			return nil, try, err
		}
		if bad < 0 {
			return s, try, nil
		}
	}
	return nil, maxTries, fmt.Errorf("coding: no correct scheme found in %d draws (field too small for this graph?)", maxTries)
}

// Theorem1Bound returns the paper's upper bound on the probability that a
// single random draw of coding matrices is NOT correct:
//
//	2^(-m) * C(n, n-f) * (n-f-1) * rho
//
// where m is the symbol width L/rho. Values above 1 are truncated to 1
// (the bound is vacuous there).
func Theorem1Bound(n, f, rho int, symbolBits uint) float64 {
	b := binomial(n, n-f) * float64(n-f-1) * float64(rho) * math.Pow(2, -float64(symbolBits))
	if b > 1 {
		return 1
	}
	return b
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}
