// Package gf implements arithmetic in binary extension fields GF(2^m) for
// 1 <= m <= 64.
//
// Field elements are represented as uint64 bit vectors: bit i holds the
// coefficient of x^i of the residue polynomial. Multiplication is carry-less
// (polynomial) multiplication followed by reduction modulo a fixed
// irreducible polynomial of degree m: degrees up to 16 resolve products
// through shared log/antilog tables, larger degrees through a 4-bit-window
// carry-less multiply with sparse reduction, and the bulk kernels MulSlice
// and AXPY amortize the per-scalar setup over whole rows. Irreducible
// polynomials are found by deterministic search using Rabin's
// irreducibility test, so no hard-coded table is required; the search
// result is cached per m.
//
// The package is the symbol substrate for the local linear coding equality
// check of NAB: values received in Phase 1 are interpreted as vectors of
// rho symbols over GF(2^(L/rho)).
package gf

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Elem is an element of some GF(2^m), valid only relative to the Field that
// produced or consumed it. Only the low m bits may be set.
type Elem = uint64

// Field is an arithmetic context for GF(2^m). It is immutable after
// construction and safe for concurrent use.
type Field struct {
	m   uint    // extension degree, 1..64
	mod uint64  // irreducible polynomial without the x^m term (low m bits)
	max uint64  // mask of m low bits; also the maximum element value
	tab *tables // discrete-log tables, non-nil iff m <= tableMaxDegree
}

const maxDegree = 64

// New returns the field GF(2^m) using the lexicographically smallest
// irreducible polynomial of degree m. It returns an error if m is outside
// [1, 64]. Degrees up to 16 get precomputed log/antilog tables (built once
// per degree and shared), so their Mul/Inv are single lookups; larger
// degrees use carry-less window multiplication.
func New(m uint) (*Field, error) {
	if m < 1 || m > maxDegree {
		return nil, fmt.Errorf("gf: degree %d out of range [1,%d]", m, maxDegree)
	}
	f := &Field{m: m, mod: irreducibleTail(m), max: maskBits(m)}
	if m <= tableMaxDegree {
		f.tab = tablesFor(m, f)
	}
	return f, nil
}

// MustNew is New, panicking on invalid m. Intended for package-level setup
// in tests and examples where the degree is a constant.
func MustNew(m uint) *Field {
	f, err := New(m)
	if err != nil {
		panic(err)
	}
	return f
}

// Degree returns m, the extension degree.
func (f *Field) Degree() uint { return f.m }

// Order returns the number of elements 2^m as a float64. The count itself
// is a power of two and therefore exactly representable for every supported
// m, but note that for m > 53 neighbouring integers are not — use Mask for
// exact bit math.
func (f *Field) Order() float64 { return math.Ldexp(1, int(f.m)) }

// Mask returns the bit mask covering valid element bits (2^m - 1).
func (f *Field) Mask() uint64 { return f.max }

// Modulus returns the reduction polynomial's low coefficients: the returned
// value r encodes x^m + r where bit i of r is the coefficient of x^i.
func (f *Field) Modulus() uint64 { return f.mod }

// Valid reports whether a is a canonical element of the field.
func (f *Field) Valid(a Elem) bool { return a&^f.max == 0 }

// Add returns a + b. In characteristic 2 addition is XOR and is its own
// inverse, so Add also implements subtraction.
func (f *Field) Add(a, b Elem) Elem { return (a ^ b) & f.max }

// Sub returns a - b (identical to Add in characteristic 2).
func (f *Field) Sub(a, b Elem) Elem { return (a ^ b) & f.max }

// Mul returns the product a*b in the field. Tabled degrees resolve it as
// exp[log a + log b]; larger degrees take a carry-less window multiply
// followed by sparse modular reduction. Both agree with the bit-serial
// reference loop mulRef (asserted exhaustively in tests).
func (f *Field) Mul(a, b Elem) Elem {
	a &= f.max
	b &= f.max
	if a == 0 || b == 0 {
		return 0
	}
	if t := f.tab; t != nil {
		return Elem(t.exp[uint32(t.log[a])+uint32(t.log[b])])
	}
	hi, lo := clMul64(a, b)
	return f.reduceWide(hi, lo)
}

// mulRef is the bit-serial reference multiply: carry-less multiplication
// interleaved with modular reduction so the accumulator never exceeds m
// bits (classic Russian-peasant loop). It is the correctness oracle for the
// table-driven and windowed kernels and the substrate table construction
// itself runs on.
func (f *Field) mulRef(a, b Elem) Elem {
	a &= f.max
	b &= f.max
	if a == 0 || b == 0 {
		return 0
	}
	var acc uint64
	hi := uint64(1) << (f.m - 1)
	for b != 0 {
		if b&1 != 0 {
			acc ^= a
		}
		b >>= 1
		carry := a & hi
		a = (a << 1) & f.max
		if carry != 0 {
			a ^= f.mod
		}
	}
	return acc & f.max
}

// Square returns a*a.
func (f *Field) Square(a Elem) Elem { return f.Mul(a, a) }

// Pow returns a^e using binary exponentiation. Pow(0, 0) == 1 by the usual
// empty-product convention.
func (f *Field) Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a & f.max
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, or an error if a == 0.
// It uses Fermat's little theorem: a^(2^m - 2) = a^-1. The exponent
// 2^m - 2 equals Mask() - 1 and fits in a uint64 for every supported m.
func (f *Field) Inv(a Elem) (Elem, error) {
	a &= f.max
	if a == 0 {
		return 0, fmt.Errorf("gf: zero has no inverse in GF(2^%d)", f.m)
	}
	if t := f.tab; t != nil {
		order := uint32(f.max) // 2^m - 1, the multiplicative group order
		return Elem(t.exp[order-uint32(t.log[a])]), nil
	}
	return f.Pow(a, f.max-1), nil
}

// Div returns a/b, or an error if b == 0.
func (f *Field) Div(a, b Elem) (Elem, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, fmt.Errorf("gf: division by zero: %w", err)
	}
	return f.Mul(a, bi), nil
}

// Rand returns a uniformly random field element drawn from src. src must
// return uniformly random uint64 values (e.g. (*math/rand.Rand).Uint64).
func (f *Field) Rand(src interface{ Uint64() uint64 }) Elem {
	return src.Uint64() & f.max
}

// String implements fmt.Stringer.
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d) mod x^%d+%#x", f.m, f.m, f.mod)
}

func maskBits(m uint) uint64 {
	if m >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << m) - 1
}

// --- irreducible polynomial search -----------------------------------------

var (
	irredMu    sync.Mutex
	irredCache = map[uint]uint64{}
)

// irreducibleTail returns the low coefficients r of the lexicographically
// smallest irreducible polynomial x^m + r of degree m. Results are cached.
func irreducibleTail(m uint) uint64 {
	irredMu.Lock()
	defer irredMu.Unlock()
	if r, ok := irredCache[m]; ok {
		return r
	}
	r := searchIrreducible(m)
	irredCache[m] = r
	return r
}

func searchIrreducible(m uint) uint64 {
	if m == 1 {
		return 1 // x + 1, keeping the odd-tail invariant uniform
	}
	// A polynomial with zero constant term is divisible by x, so the tail
	// must be odd. Iterate odd tails in increasing order.
	for r := uint64(1); ; r += 2 {
		if r > maskBits(m) {
			// Cannot happen: irreducible polynomials of every degree exist.
			panic(fmt.Sprintf("gf: no irreducible polynomial of degree %d found", m))
		}
		if rabinIrreducible(m, r) {
			return r
		}
	}
}

// rabinIrreducible reports whether x^m + r is irreducible over GF(2), using
// Rabin's test: p is irreducible iff x^(2^m) == x (mod p) and for every
// prime divisor q of m, gcd(x^(2^(m/q)) - x, p) == 1.
func rabinIrreducible(m uint, r uint64) bool {
	// Work with polynomials modulo p = x^m + r, elements as m-bit vectors.
	f := Field{m: m, mod: r, max: maskBits(m)}
	x := Elem(2) // the polynomial "x"

	// frob computes x^(2^k) mod p by repeated squaring.
	frob := func(k uint) Elem {
		e := x
		for i := uint(0); i < k; i++ {
			e = f.Mul(e, e)
		}
		return e
	}

	if frob(m) != x {
		return false
	}
	for _, q := range primeFactors(m) {
		h := f.Sub(frob(m/q), x) // x^(2^(m/q)) - x as a residue
		if polyGCDWithModulus(m, r, h) != 1 {
			return false
		}
	}
	return true
}

// polyGCDWithModulus returns gcd(p, h) where p = x^m + r (degree m) and h is
// a residue polynomial of degree < m, both over GF(2). The result is the
// gcd's bit representation; 1 means coprime. h == 0 yields p itself, which
// is reported as a non-unit sentinel (2).
func polyGCDWithModulus(m uint, r, h uint64) uint64 {
	if h == 0 {
		return 2 // gcd is p, definitely not a unit
	}
	// First reduction step: p mod h, computed without materializing the
	// degree-m bit (which may not fit when m == 64).
	a := polyModHighBit(m, r, h)
	b := h
	for a != 0 {
		a, b = polyMod(b, a), a
	}
	return b
}

// polyModHighBit computes (x^m + r) mod h for h != 0 of degree < m.
func polyModHighBit(m uint, r, h uint64) uint64 {
	dh := uint(bits.Len64(h)) - 1
	if dh == 0 {
		return 0 // h == 1: everything is 0 mod 1
	}
	// Compute x^m mod h by shifting x^dh repeatedly.
	// Start with x^dh mod h = h ^ (1<<dh) (strip the leading term).
	cur := h ^ (uint64(1) << dh)
	for i := uint(0); i < m-dh; i++ {
		carry := cur & (uint64(1) << (dh - 1)) // about to shift into degree dh
		cur <<= 1
		if carry != 0 {
			cur ^= h
		}
		cur &= maskBits(dh)
	}
	return cur ^ polyMod(r, h)
}

// polyMod returns a mod b over GF(2), b != 0.
func polyMod(a, b uint64) uint64 {
	db := bits.Len64(b) - 1
	for bits.Len64(a)-1 >= db && a != 0 {
		a ^= b << (uint(bits.Len64(a)-1) - uint(db))
	}
	return a
}

func primeFactors(m uint) []uint {
	var out []uint
	for p := uint(2); p*p <= m; p++ {
		if m%p == 0 {
			out = append(out, p)
			for m%p == 0 {
				m /= p
			}
		}
	}
	if m > 1 {
		out = append(out, m)
	}
	return out
}
