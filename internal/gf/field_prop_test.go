package gf

import (
	"math/rand"
	"testing"
)

// Property tests: the field axioms must hold for random elements over a
// spread of extension degrees, including the machine-word corner m=64 —
// the widths the equality check actually instantiates (symBits in
// [1,64]).

var propDegrees = []uint{1, 2, 3, 5, 8, 13, 16, 24, 32, 47, 63, 64}

func randElems(t *testing.T, f *Field, rng *rand.Rand, n int) []Elem {
	t.Helper()
	out := make([]Elem, n)
	for i := range out {
		out[i] = f.Rand(rng)
		if !f.Valid(out[i]) {
			t.Fatalf("GF(2^%d): Rand produced invalid element %#x", f.Degree(), out[i])
		}
	}
	return out
}

func TestFieldAxiomsProperty(t *testing.T) {
	const trials = 200
	for _, m := range propDegrees {
		f := MustNew(m)
		rng := rand.New(rand.NewSource(int64(m) * 7919))
		for i := 0; i < trials; i++ {
			abc := randElems(t, f, rng, 3)
			a, b, c := abc[0], abc[1], abc[2]

			// Commutativity.
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("GF(2^%d): a+b != b+a for %#x, %#x", m, a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("GF(2^%d): a*b != b*a for %#x, %#x", m, a, b)
			}
			// Associativity.
			if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
				t.Fatalf("GF(2^%d): (a+b)+c != a+(b+c) for %#x, %#x, %#x", m, a, b, c)
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				t.Fatalf("GF(2^%d): (a*b)*c != a*(b*c) for %#x, %#x, %#x", m, a, b, c)
			}
			// Distributivity.
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				t.Fatalf("GF(2^%d): a*(b+c) != a*b + a*c for %#x, %#x, %#x", m, a, b, c)
			}
			// Identities and additive inverse (characteristic 2).
			if f.Add(a, 0) != a || f.Mul(a, 1) != a || f.Mul(a, 0) != 0 {
				t.Fatalf("GF(2^%d): identity axioms failed for %#x", m, a)
			}
			if f.Add(a, a) != 0 {
				t.Fatalf("GF(2^%d): a+a != 0 for %#x", m, a)
			}
			// Multiplicative inverse.
			if a != 0 {
				inv, err := f.Inv(a)
				if err != nil {
					t.Fatalf("GF(2^%d): Inv(%#x): %v", m, a, err)
				}
				if f.Mul(a, inv) != 1 {
					t.Fatalf("GF(2^%d): a * a^-1 = %#x != 1 for %#x", m, f.Mul(a, inv), a)
				}
			}
			// Sub is Add in characteristic 2, and Div inverts Mul.
			if f.Sub(f.Add(a, b), b) != a {
				t.Fatalf("GF(2^%d): (a+b)-b != a for %#x, %#x", m, a, b)
			}
			if b != 0 {
				q, err := f.Div(f.Mul(a, b), b)
				if err != nil || q != a {
					t.Fatalf("GF(2^%d): (a*b)/b = %#x (err %v), want %#x", m, q, err, a)
				}
			}
		}
		// Pow agrees with iterated Mul, and Fermat holds on a sample
		// (a^(2^m) == a via square-chain).
		a := f.Rand(rng)
		want := Elem(1)
		for i := 0; i < 13; i++ {
			if got := f.Pow(a, uint64(i)); got != want {
				t.Fatalf("GF(2^%d): Pow(a,%d) = %#x, want %#x", m, i, got, want)
			}
			want = f.Mul(want, a)
		}
		frob := a
		for i := uint(0); i < m; i++ {
			frob = f.Square(frob)
		}
		if frob != a {
			t.Fatalf("GF(2^%d): Frobenius a^(2^m) = %#x != a = %#x", m, frob, a)
		}
	}
}

func TestInvZeroRejectedProperty(t *testing.T) {
	for _, m := range propDegrees {
		f := MustNew(m)
		if _, err := f.Inv(0); err == nil {
			t.Errorf("GF(2^%d): Inv(0) did not fail", m)
		}
		if _, err := f.Div(1, 0); err == nil {
			t.Errorf("GF(2^%d): Div by zero did not fail", m)
		}
	}
}
