package gf

import (
	"math/rand"
	"testing"
)

// TestMulMatchesReferenceExhaustive proves the table-driven product equals
// the bit-serial reference loop on every pair of elements for m <= 8
// (at most 65536 pairs per degree).
func TestMulMatchesReferenceExhaustive(t *testing.T) {
	for m := uint(1); m <= 8; m++ {
		f := MustNew(m)
		for a := Elem(0); a <= f.max; a++ {
			for b := Elem(0); b <= f.max; b++ {
				if got, want := f.Mul(a, b), f.mulRef(a, b); got != want {
					t.Fatalf("GF(2^%d): Mul(%#x,%#x) = %#x, reference %#x", m, a, b, got, want)
				}
			}
		}
	}
}

// TestMulMatchesReferenceRandom cross-checks the fast paths (tables for
// m <= 16, carry-less window beyond) against the reference loop on random
// pairs for every supported degree.
func TestMulMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for m := uint(1); m <= 64; m++ {
		f := MustNew(m)
		for trial := 0; trial < 2000; trial++ {
			a, b := f.Rand(rng), f.Rand(rng)
			if got, want := f.Mul(a, b), f.mulRef(a, b); got != want {
				t.Fatalf("GF(2^%d): Mul(%#x,%#x) = %#x, reference %#x", m, a, b, got, want)
			}
		}
	}
}

// TestInvMatchesReference checks the table-driven inverse against the
// Fermat exponentiation it replaced.
func TestInvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for m := uint(1); m <= tableMaxDegree; m++ {
		f := MustNew(m)
		for trial := 0; trial < 500; trial++ {
			a := f.Rand(rng)
			if a == 0 {
				continue
			}
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("GF(2^%d): Inv(%#x): %v", m, a, err)
			}
			if want := f.powRef(a, f.max-1); inv != want {
				t.Fatalf("GF(2^%d): Inv(%#x) = %#x, reference %#x", m, a, inv, want)
			}
		}
	}
}

// TestMulSliceAXPYMatchScalar checks the bulk kernels element-by-element
// against scalar Mul on representative degrees from both regimes.
func TestMulSliceAXPYMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, m := range []uint{1, 2, 7, 8, 15, 16, 17, 24, 32, 33, 48, 63, 64} {
		f := MustNew(m)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(40)
			src := make([]Elem, n)
			for i := range src {
				src[i] = f.Rand(rng)
			}
			a := f.Rand(rng)
			if trial%5 == 0 {
				a = Elem(trial / 5 % 2) // exercise the 0 and 1 fast paths
			}

			got := make([]Elem, n)
			f.MulSlice(a, got, src)
			for i := range src {
				if want := f.Mul(a, src[i]); got[i] != want {
					t.Fatalf("GF(2^%d): MulSlice a=%#x src[%d]=%#x: got %#x want %#x", m, a, i, src[i], got[i], want)
				}
			}

			acc := make([]Elem, n)
			for i := range acc {
				acc[i] = f.Rand(rng)
			}
			want := make([]Elem, n)
			for i := range want {
				want[i] = acc[i] ^ f.Mul(a, src[i])
			}
			f.AXPY(a, acc, src)
			for i := range acc {
				if acc[i] != want[i] {
					t.Fatalf("GF(2^%d): AXPY a=%#x src[%d]=%#x: got %#x want %#x", m, a, i, src[i], acc[i], want[i])
				}
			}
		}
	}
}

// TestMulSliceInPlace checks dst == src aliasing (row normalization).
func TestMulSliceInPlace(t *testing.T) {
	f := MustNew(16)
	rng := rand.New(rand.NewSource(3))
	row := make([]Elem, 20)
	for i := range row {
		row[i] = f.Rand(rng)
	}
	a := f.Rand(rng)
	want := make([]Elem, len(row))
	for i := range row {
		want[i] = f.Mul(a, row[i])
	}
	f.MulSlice(a, row, row)
	for i := range row {
		if row[i] != want[i] {
			t.Fatalf("in-place MulSlice: row[%d] = %#x, want %#x", i, row[i], want[i])
		}
	}
}

// TestOrderExact pins Order to the exact power of two for every degree.
func TestOrderExact(t *testing.T) {
	for m := uint(1); m <= 53; m++ {
		if got, want := MustNew(m).Order(), float64(uint64(1)<<m); got != want {
			t.Fatalf("GF(2^%d): Order = %v, want %v", m, got, want)
		}
	}
	// 2^64 is itself exactly representable even though 2^64-1 is not.
	if got := MustNew(64).Order(); got != 18446744073709551616.0 {
		t.Fatalf("GF(2^64): Order = %v, want 2^64", got)
	}
}

// BenchmarkGFMul measures the scalar product on a tabled field, a windowed
// field, and the bit-serial reference loop.
func BenchmarkGFMul(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeedGF))
	for _, bc := range []struct {
		name string
		m    uint
		ref  bool
	}{
		{"m16/table", 16, false},
		{"m64/clmul", 64, false},
		{"m16/reference", 16, true},
		{"m64/reference", 64, true},
	} {
		f := MustNew(bc.m)
		xs := make([]Elem, 1024)
		for i := range xs {
			for xs[i] == 0 {
				xs[i] = f.Rand(rng)
			}
		}
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var acc Elem
			for i := 0; i < b.N; i++ {
				x, y := xs[i&1023], xs[(i+7)&1023]
				if bc.ref {
					acc ^= f.mulRef(x, y)
				} else {
					acc ^= f.Mul(x, y)
				}
			}
			sinkElem = acc
		})
	}
}

// BenchmarkGFAXPY measures the bulk row kernel on both regimes.
func BenchmarkGFAXPY(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeedGF))
	for _, m := range []uint{16, 64} {
		f := MustNew(m)
		src := make([]Elem, 256)
		dst := make([]Elem, 256)
		for i := range src {
			src[i] = f.Rand(rng)
		}
		a := f.Rand(rng) | 2
		b.Run(map[uint]string{16: "m16", 64: "m64"}[m], func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(src) * 8))
			for i := 0; i < b.N; i++ {
				f.AXPY(a, dst, src)
			}
			sinkElem = dst[0]
		})
	}
}

const benchSeedGF = 2012

// sinkElem defeats dead-code elimination in benchmarks.
var sinkElem Elem
