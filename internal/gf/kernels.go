package gf

import "math/bits"

// Bulk kernels for the coding hot path. Matrix products, encodes and
// Gaussian elimination all reduce to rows scaled by one scalar, so the
// kernels amortize the per-scalar setup (a table lookup for m <= 16, a
// carry-less window for larger m) over a whole row.

// MulSlice sets dst[i] = a * src[i] for every i. dst and src must have the
// same length; dst may alias src (in-place row normalization).
func (f *Field) MulSlice(a Elem, dst, src []Elem) {
	a &= f.max
	switch {
	case a == 0:
		for i := range dst {
			dst[i] = 0
		}
	case a == 1:
		copy(dst, src)
	case f.tab != nil:
		t := f.tab
		la := uint32(t.log[a])
		for i, s := range src {
			if s == 0 {
				dst[i] = 0
				continue
			}
			dst[i] = Elem(t.exp[la+uint32(t.log[s])])
		}
	default:
		var w window
		w.init(a)
		for i, s := range src {
			hi, lo := w.mul(s)
			dst[i] = f.reduceWide(hi, lo)
		}
	}
}

// AXPY accumulates dst[i] ^= a * src[i] for every i — the row update of
// Gaussian elimination and the inner step of matrix products (XOR is
// addition in characteristic 2). dst and src must have the same length and
// must not overlap unless identical.
func (f *Field) AXPY(a Elem, dst, src []Elem) {
	a &= f.max
	switch {
	case a == 0:
		return
	case a == 1:
		for i, s := range src {
			dst[i] ^= s
		}
	case f.tab != nil:
		t := f.tab
		la := uint32(t.log[a])
		for i, s := range src {
			if s == 0 {
				continue
			}
			dst[i] ^= Elem(t.exp[la+uint32(t.log[s])])
		}
	default:
		var w window
		w.init(a)
		for i, s := range src {
			if s == 0 {
				continue
			}
			hi, lo := w.mul(s)
			dst[i] ^= f.reduceWide(hi, lo)
		}
	}
}

// window is the 4-bit carry-less multiplication table of one fixed scalar:
// entry v holds the unreduced polynomial product a*v, split into low and
// high words (degree can reach 63+3 = 66). Building it costs a handful of
// shifts and xors, after which each 64-bit product takes 16 table steps
// instead of up to 64 shift-reduce iterations.
type window struct {
	lo [16]uint64
	hi [16]uint64
}

func (w *window) init(a Elem) {
	w.lo[1] = a
	for v := 2; v < 16; v++ {
		if v&1 == 0 {
			h := v >> 1
			w.lo[v] = w.lo[h] << 1
			w.hi[v] = w.hi[h]<<1 | w.lo[h]>>63
		} else {
			w.lo[v] = w.lo[v^1] ^ a
			w.hi[v] = w.hi[v^1]
		}
	}
}

// mul returns the unreduced 128-bit carry-less product a*b, processing b
// one nibble at a time.
func (w *window) mul(b Elem) (hi, lo uint64) {
	for k := uint(0); b != 0; k += 4 {
		nib := b & 15
		b >>= 4
		if nib == 0 {
			continue
		}
		lo ^= w.lo[nib] << k
		hi ^= w.hi[nib]<<k | w.lo[nib]>>(64-k)
	}
	return hi, lo
}

// clMul64 is the one-shot carry-less 64x64 -> 128 multiply used by scalar
// Mul on table-less fields.
func clMul64(a, b uint64) (hi, lo uint64) {
	var w window
	w.init(a)
	return w.mul(b)
}

// reduceWide reduces a 128-bit polynomial value modulo x^m + mod. Each
// fold replaces the bits at degree >= m with their residue top*mod,
// iterating the (sparse) set bits of mod; the degree drops by at least
// m - deg(mod) per fold, so two or three folds suffice for every supported
// polynomial.
func (f *Field) reduceWide(hi, lo uint64) Elem {
	m := f.m
	for {
		var top uint64
		if m == 64 {
			top = hi
		} else {
			top = hi<<(64-m) | lo>>m
		}
		if top == 0 {
			return lo & f.max
		}
		lo &= f.max
		hi = 0
		for t := f.mod; t != 0; t &= t - 1 {
			i := uint(bits.TrailingZeros64(t))
			lo ^= top << i
			if i > 0 {
				hi ^= top >> (64 - i)
			}
		}
	}
}
