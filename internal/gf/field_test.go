package gf

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDegrees(t *testing.T) {
	for _, m := range []uint{0, 65, 100} {
		if _, err := New(m); err == nil {
			t.Errorf("New(%d): expected error, got nil", m)
		}
	}
}

func TestNewAcceptsAllSupportedDegrees(t *testing.T) {
	for m := uint(1); m <= 64; m++ {
		f, err := New(m)
		if err != nil {
			t.Fatalf("New(%d): %v", m, err)
		}
		if f.Degree() != m {
			t.Errorf("New(%d).Degree() = %d", m, f.Degree())
		}
	}
}

func TestKnownIrreducibles(t *testing.T) {
	// Cross-check the search against well-known minimal irreducible
	// polynomials: x^2+x+1, x^3+x+1, x^4+x+1, x^8+x^4+x^3+x+1 is NOT the
	// lexicographically smallest for m=8 (that is x^8+x^4+x^3+x^2+1 = 0x1D,
	// the Rijndael-adjacent 0x11B has tail 0x1B).
	cases := map[uint]uint64{
		1: 0x1, // x+1
		2: 0x3, // x^2+x+1
		3: 0x3, // x^3+x+1
		4: 0x3, // x^4+x+1
	}
	for m, want := range cases {
		f := MustNew(m)
		if f.Modulus() != want {
			t.Errorf("GF(2^%d) modulus tail = %#x, want %#x", m, f.Modulus(), want)
		}
	}
}

func TestIrreducibleHasNoRoots(t *testing.T) {
	// An irreducible polynomial of degree >= 2 has no roots in GF(2):
	// constant term 1 (no root 0) and an odd number of terms (no root 1).
	for m := uint(2); m <= 64; m++ {
		tail := irreducibleTail(m)
		if tail&1 == 0 {
			t.Errorf("m=%d: tail %#x has zero constant term", m, tail)
		}
		// total terms = popcount(tail) + 1 (the x^m term) must be odd
		if (bits.OnesCount64(tail)+1)%2 == 0 {
			t.Errorf("m=%d: polynomial has even weight, root at 1", m)
		}
	}
}

func TestMulSmallFieldExhaustive(t *testing.T) {
	// GF(2^4) with x^4+x+1 is a standard textbook field; exhaustively
	// verify group structure of nonzero elements under Mul.
	f := MustNew(4)
	// Every nonzero element must have multiplicative order dividing 15.
	for a := Elem(1); a <= 15; a++ {
		if got := f.Pow(a, 15); got != 1 {
			t.Errorf("a=%d: a^15 = %d, want 1", a, got)
		}
	}
	// x = 2 must be primitive in GF(16) with modulus x^4+x+1.
	seen := map[Elem]bool{}
	e := Elem(1)
	for i := 0; i < 15; i++ {
		seen[e] = true
		e = f.Mul(e, 2)
	}
	if len(seen) != 15 {
		t.Errorf("x generates %d elements, want 15", len(seen))
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []uint{1, 3, 8, 16, 31, 32, 53, 64} {
		f := MustNew(m)
		mask := f.Mask()

		assoc := func(a, b, c uint64) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		if err := quick.Check(assoc, nil); err != nil {
			t.Errorf("m=%d associativity: %v", m, err)
		}

		distrib := func(a, b, c uint64) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		if err := quick.Check(distrib, nil); err != nil {
			t.Errorf("m=%d distributivity: %v", m, err)
		}

		comm := func(a, b uint64) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a)
		}
		if err := quick.Check(comm, nil); err != nil {
			t.Errorf("m=%d commutativity: %v", m, err)
		}

		identity := func(a uint64) bool {
			a &= mask
			return f.Mul(a, 1) == a && f.Add(a, 0) == a
		}
		if err := quick.Check(identity, nil); err != nil {
			t.Errorf("m=%d identity: %v", m, err)
		}

		inverse := func(a uint64) bool {
			a &= mask
			if a == 0 {
				return true
			}
			inv, err := f.Inv(a)
			return err == nil && f.Mul(a, inv) == 1
		}
		if err := quick.Check(inverse, nil); err != nil {
			t.Errorf("m=%d inverse: %v", m, err)
		}

		addSelfInverse := func(a uint64) bool {
			a &= mask
			return f.Add(a, a) == 0 && f.Sub(a, a) == 0
		}
		if err := quick.Check(addSelfInverse, nil); err != nil {
			t.Errorf("m=%d characteristic 2: %v", m, err)
		}
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := MustNew(13)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a := f.Rand(rng)
		want := Elem(1)
		for e := uint64(0); e <= 20; e++ {
			if got := f.Pow(a, e); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
}

func TestInvZeroFails(t *testing.T) {
	f := MustNew(8)
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0): expected error")
	}
	if _, err := f.Div(1, 0); err == nil {
		t.Error("Div(1,0): expected error")
	}
}

func TestDiv(t *testing.T) {
	f := MustNew(9)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a, b := f.Rand(rng), f.Rand(rng)
		if b == 0 {
			continue
		}
		q, err := f.Div(a, b)
		if err != nil {
			t.Fatalf("Div(%d,%d): %v", a, b, err)
		}
		if f.Mul(q, b) != a {
			t.Fatalf("Div(%d,%d) = %d but q*b = %d", a, b, q, f.Mul(q, b))
		}
	}
}

func TestValid(t *testing.T) {
	f := MustNew(4)
	if !f.Valid(15) || f.Valid(16) {
		t.Error("Valid mask check failed for GF(2^4)")
	}
	f64 := MustNew(64)
	if !f64.Valid(^uint64(0)) {
		t.Error("GF(2^64) should accept all uint64 values")
	}
}

func TestRandStaysInField(t *testing.T) {
	f := MustNew(5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if e := f.Rand(rng); !f.Valid(e) {
			t.Fatalf("Rand produced out-of-field element %d", e)
		}
	}
}

func TestFrobeniusFixedField(t *testing.T) {
	// In GF(2^m), a^(2^m) == a for all a (the Frobenius map iterated m
	// times is the identity).
	for _, m := range []uint{2, 5, 8, 12} {
		f := MustNew(m)
		rng := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 25; i++ {
			a := f.Rand(rng)
			e := a
			for j := uint(0); j < m; j++ {
				e = f.Square(e)
			}
			if e != a {
				t.Errorf("m=%d: a^(2^m) = %d != a = %d", m, e, a)
			}
		}
	}
}

func TestStringFormat(t *testing.T) {
	f := MustNew(8)
	if f.String() == "" {
		t.Error("String() should be non-empty")
	}
}

func TestOrderSmall(t *testing.T) {
	if got := MustNew(10).Order(); got != 1024 {
		t.Errorf("Order of GF(2^10) = %v, want 1024", got)
	}
}

func BenchmarkMul16(b *testing.B) { benchMul(b, 16) }
func BenchmarkMul64(b *testing.B) { benchMul(b, 64) }

func benchMul(b *testing.B, m uint) {
	f := MustNew(m)
	rng := rand.New(rand.NewSource(1))
	x, y := f.Rand(rng), f.Rand(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y|1)
	}
	_ = x
}

func BenchmarkInv32(b *testing.B) {
	f := MustNew(32)
	rng := rand.New(rand.NewSource(1))
	x := f.Rand(rng) | 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, _ = f.Inv(x)
		x |= 1
	}
}
