package gf

import (
	"fmt"
	"sync"
)

// tableMaxDegree is the largest extension degree that gets log/antilog
// tables. At m = 16 the two tables cost ~384 KiB and cover every practical
// NAB symbol width below a machine word; larger degrees fall back to the
// carry-less kernels (see kernels.go).
const tableMaxDegree = 16

// tables holds one degree's discrete-log representation: exp[i] = g^i for a
// primitive g, log[a] the inverse map. exp is doubled so Mul can index
// log[a]+log[b] without reducing modulo 2^m-1. Entries fit uint16 because
// m <= 16.
type tables struct {
	log []uint16 // indexed by element, log[0] unused
	exp []uint16 // length 2*(2^m-1), exp[i] = g^(i mod 2^m-1)
}

var (
	tableMu    sync.Mutex
	tableCache = map[uint]*tables{}
)

// tablesFor returns the (cached) tables for degree m <= tableMaxDegree.
// Construction is deterministic: the field polynomial is fixed per m and
// the smallest primitive element is used.
func tablesFor(m uint, f *Field) *tables {
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[m]; ok {
		return t
	}
	t := buildTables(m, f)
	tableCache[m] = t
	return t
}

func buildTables(m uint, f *Field) *tables {
	order := (uint64(1) << m) - 1 // multiplicative group order
	g := findPrimitive(f, order)
	t := &tables{
		log: make([]uint16, order+1),
		exp: make([]uint16, 2*order),
	}
	e := Elem(1)
	for i := uint64(0); i < order; i++ {
		t.exp[i] = uint16(e)
		t.exp[i+order] = uint16(e)
		t.log[e] = uint16(i)
		e = f.mulRef(e, g)
	}
	if e != 1 {
		panic(fmt.Sprintf("gf: element %#x is not primitive in GF(2^%d) (bug)", g, m))
	}
	return t
}

// findPrimitive returns the smallest generator of the multiplicative group:
// g is primitive iff g^(order/p) != 1 for every prime divisor p of order.
func findPrimitive(f *Field, order uint64) Elem {
	primes := primeFactors64(order)
	for g := Elem(2); ; g++ {
		if g > f.max {
			// order == 1 (m == 1): the only nonzero element generates.
			return 1
		}
		primitive := true
		for _, p := range primes {
			if f.powRef(g, order/p) == 1 {
				primitive = false
				break
			}
		}
		if primitive {
			return g
		}
	}
}

// powRef is binary exponentiation on the reference multiply, used before
// tables exist.
func (f *Field) powRef(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a & f.max
	for e > 0 {
		if e&1 != 0 {
			result = f.mulRef(result, base)
		}
		base = f.mulRef(base, base)
		e >>= 1
	}
	return result
}

// primeFactors64 factors n (<= 2^16-1 in practice) by trial division.
func primeFactors64(n uint64) []uint64 {
	var out []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}
