package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"nab/internal/graph"
)

// TypeSnapshot is a compact serialization of the full cross-instance
// engine state at a commit watermark: the accumulated dispute pairs,
// proven-faulty set, dispute-graph generation, launch epoch and the
// committed-sequence chain digest. Unlike TypeCheckpoint (which it
// supersedes) a snapshot restores the engine exactly — generation
// included — so recovery needs no per-instance replay below it, and a
// blank node can adopt one fetched from peers. Segments before the
// latest snapshot are compactable.
const TypeSnapshot byte = 0x05

// DigestSeed anchors the committed-sequence chain digest: the digest at
// watermark 0, before any instance committed.
const DigestSeed uint64 = 0x6e61622d64696701 // "nab-dig"

// Snapshot is a decoded TypeSnapshot payload.
type Snapshot struct {
	// K is the commit watermark the state was captured at.
	K int
	// Epoch is the launch epoch agreed by the last rollback round (0 for
	// single-process sessions, which never roll back).
	Epoch uint64
	// Gen is the dispute-graph generation at K — the number of
	// Phase 3 folds that made progress. Plan-cache seeds derive from it,
	// so restoring it exactly keeps coding schemes byte-identical across
	// processes that restored from different bases.
	Gen int
	// Disputes/Faulty are the accumulated dispute pairs (MarkFaulty
	// expansions included) and proven-faulty nodes, in canonical sorted
	// order.
	Disputes [][2]graph.NodeID
	Faulty   []graph.NodeID
	// Digest is the committed-sequence chain digest at K (see Chain):
	// identical on every honest process, which is what lets a joiner
	// cross-validate a fetched snapshot against f+1 peers.
	Digest uint64
}

// Canonicalize sorts Disputes and Faulty into the canonical encoding
// order, so AppendSnapshot yields byte-identical payloads for equal
// states regardless of how they were accumulated.
func (s *Snapshot) Canonicalize() {
	sort.Slice(s.Disputes, func(i, j int) bool {
		if s.Disputes[i][0] != s.Disputes[j][0] {
			return s.Disputes[i][0] < s.Disputes[j][0]
		}
		return s.Disputes[i][1] < s.Disputes[j][1]
	})
	sort.Slice(s.Faulty, func(i, j int) bool { return s.Faulty[i] < s.Faulty[j] })
}

// AppendSnapshot appends a TypeSnapshot payload to buf. Call
// Canonicalize first when the payload bytes must be comparable across
// processes (digest cross-validation does).
//
//nab:allocfree
func AppendSnapshot(buf []byte, s Snapshot) []byte {
	buf = binary.AppendVarint(buf, int64(s.K))
	buf = binary.AppendUvarint(buf, s.Epoch)
	buf = binary.AppendVarint(buf, int64(s.Gen))
	buf = binary.AppendUvarint(buf, uint64(len(s.Disputes)))
	for _, p := range s.Disputes {
		buf = binary.AppendVarint(buf, int64(p[0]))
		buf = binary.AppendVarint(buf, int64(p[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Faulty)))
	for _, v := range s.Faulty {
		buf = binary.AppendVarint(buf, int64(v))
	}
	buf = binary.AppendUvarint(buf, s.Digest)
	return buf
}

// DecodeSnapshot decodes a TypeSnapshot payload. Duplicate entries in
// the Faulty set are dropped (a node is proven faulty once; a corrupt or
// hostile encoder must not inflate the set).
func DecodeSnapshot(b []byte) (Snapshot, error) {
	d := decoder{b: b}
	s := Snapshot{K: int(d.varint()), Epoch: d.uvarint(), Gen: int(d.varint())}
	nd := d.count(2)
	for i := uint64(0); i < nd && d.err == nil; i++ {
		s.Disputes = append(s.Disputes, [2]graph.NodeID{
			graph.NodeID(d.varint()), graph.NodeID(d.varint()),
		})
	}
	nf := d.count(1)
	for i := uint64(0); i < nf && d.err == nil; i++ {
		s.Faulty = appendFaulty(s.Faulty, graph.NodeID(d.varint()))
	}
	s.Digest = d.uvarint()
	if s.K < 0 || s.Gen < 0 {
		return Snapshot{}, fmt.Errorf("wal: snapshot record: negative watermark or generation")
	}
	return s, d.finish("snapshot")
}

// SnapshotDigest hashes a snapshot's canonical payload bytes — the value
// a joiner compares against f+1 peer claims before trusting fetched
// content.
func SnapshotDigest(s Snapshot) uint64 {
	s.Canonicalize()
	h := fnv.New64a()
	h.Write(AppendSnapshot(nil, s))
	return h.Sum64()
}

// Chain advances the committed-sequence chain digest by one record
// payload: D_k = fnv64a(D_{k-1} || payload), with D_0 = DigestSeed. The
// session log chains full TypeCommit payloads; cluster processes chain
// the cross-process fold projection (AppendCommitFold) instead, since
// full commit records carry per-process fields (local outputs, transfer
// accounting) that legitimately differ between hosts.
func Chain(prev uint64, payload []byte) uint64 {
	h := fnv.New64a()
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], prev)
	h.Write(p[:])
	h.Write(payload)
	return h.Sum64()
}

func appendFaulty(list []graph.NodeID, v graph.NodeID) []graph.NodeID {
	for _, have := range list {
		if have == v {
			return list
		}
	}
	return append(list, v)
}

// snapshot file framing: a standalone CRC-framed container for one
// snapshot payload, used to stage state outside a log (benchmarks,
// operational exports). Layout: 8-byte magic, 4-byte LE payload length,
// 4-byte CRC32-C of the payload, payload.
const snapFileMagic = "NABSNAP1"

// SaveSnapshotFile writes s to path atomically (write temp + rename).
func SaveSnapshotFile(path string, s Snapshot) error {
	payload := AppendSnapshot(nil, s)
	buf := make([]byte, 0, len(snapFileMagic)+8+len(payload))
	buf = append(buf, snapFileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadSnapshotFile reads a snapshot written by SaveSnapshotFile.
func LoadSnapshotFile(path string) (Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	if len(buf) < len(snapFileMagic)+8 || string(buf[:len(snapFileMagic)]) != snapFileMagic {
		return Snapshot{}, fmt.Errorf("wal: %s: not a snapshot file: %w", path, ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(buf[len(snapFileMagic):])
	sum := binary.LittleEndian.Uint32(buf[len(snapFileMagic)+4:])
	payload := buf[len(snapFileMagic)+8:]
	if uint32(len(payload)) != n || crc32.Checksum(payload, crcTable) != sum {
		return Snapshot{}, fmt.Errorf("wal: %s: snapshot length or checksum mismatch: %w", path, ErrCorrupt)
	}
	return DecodeSnapshot(payload)
}
