package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nab/internal/core"
	"nab/internal/graph"
)

// collect replays the whole log into (type, payload-copy) pairs.
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	err := l.Replay(func(typ byte, payload []byte, _ Pos) error {
		out = append(out, Record{Typ: typ, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// Record is a test-side decoded record.
type Record struct {
	Typ     byte
	Payload []byte
}

func TestAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{}
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		typ := byte(1 + i%4)
		if _, err := l.Append(typ, p); err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Typ: typ, Payload: p})
	}
	if got := collect(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay before close: got %d records, want %d", len(got), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, verify, append more, verify again.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen diverged")
	}
	if _, err := l2.AppendSync(9, []byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	want = append(want, Record{Typ: 9, Payload: []byte("after-reopen")})
	if got := collect(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen+append diverged")
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeCommit, bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop a few bytes off the segment, as a crash
	// mid-write would.
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 20, 50} {
		if err := os.WriteFile(seg, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("open with %d-byte tear: %v", cut, err)
		}
		got := collect(t, l2)
		if len(got) != 9 {
			t.Fatalf("tear of %d bytes: replayed %d records, want 9 (torn final dropped)", cut, len(got))
		}
		// The log must accept appends cleanly after the truncation.
		if _, err := l2.Append(TypeCommit, []byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if got := collect(t, l2); len(got) != 10 || string(got[9].Payload) != "fresh" {
			t.Fatalf("tear of %d bytes: append after recovery not replayed", cut)
		}
		l2.Close()
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornWriteAcrossSegments pins the crash mode where the rotation and
// the tear land in different files: the process died after creating a
// fresh segment but before its first record became durable, and the
// previous segment's final record was torn mid-write (the rotation's
// seal write was itself lost). Open must step backward past record-free
// trailing segments, truncate the torn record in the file that really
// holds the tail, and leave a cleanly appendable log — anchoring the
// lenient tail scan to the empty trailing file would instead freeze the
// torn record into a segment where replay is strict, and fail forever.
func TestTornWriteAcrossSegments(t *testing.T) {
	build := func(t *testing.T) (string, []Record, []uint64) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, err := l.Append(TypeCommit, bytes.Repeat([]byte{byte(i)}, 30)); err != nil {
				t.Fatal(err)
			}
		}
		var recs []Record
		var segOf []uint64
		err = l.Replay(func(typ byte, p []byte, pos Pos) error {
			recs = append(recs, Record{Typ: typ, Payload: append([]byte(nil), p...)})
			segOf = append(segOf, pos.Seg)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
		return dir, recs, segOf
	}

	// trailing mutates the last segment (the one the crash left without a
	// durable record) and returns how the surviving replay must look.
	cases := []struct {
		name     string
		trailing func(t *testing.T, path string)
	}{
		{"empty trailing segment", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"trailing segment with torn first record", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:5], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, recs, segOf := build(t)
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if err != nil || len(segs) < 3 {
				t.Fatalf("need >= 3 segments, have %v (%v)", segs, err)
			}
			final, prev := segs[len(segs)-1], segs[len(segs)-2]
			tc.trailing(t, final)
			// Tear the true tail: chop into the previous segment's last
			// record.
			raw, err := os.ReadFile(prev)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(prev, raw[:len(raw)-7], 0o644); err != nil {
				t.Fatal(err)
			}

			// Survivors: everything before the final segment, minus the
			// previous segment's torn last record.
			finalSeg := segOf[len(segOf)-1]
			var want []Record
			for i, r := range recs {
				if segOf[i] < finalSeg {
					want = append(want, r)
				}
			}
			want = want[:len(want)-1]

			l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
			if err != nil {
				t.Fatalf("open after cross-segment tear: %v", err)
			}
			defer l.Close()
			if got := collect(t, l); !reflect.DeepEqual(got, want) {
				t.Fatalf("replayed %d records, want %d (torn tail + dead trailing segment dropped)", len(got), len(want))
			}
			// The log must append and survive another reopen cleanly.
			if _, err := l.AppendSync(TypeCommit, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			l.Close()
			l2, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			got := collect(t, l2)
			if len(got) != len(want)+1 || string(got[len(got)-1].Payload) != "fresh" {
				t.Fatalf("append after recovery lost: %d records", len(got))
			}
		})
	}
}

func TestBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(TypeSubmit, bytes.Repeat([]byte{0xAA}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the LAST record's payload: recovery treats it as
	// a torn tail — dropped, never replayed with damaged content.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-10] ^= 0x01
	if err := os.WriteFile(seg, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2)
	l2.Close()
	if len(got) != 4 {
		t.Fatalf("bit-flipped final record: replayed %d records, want 4", len(got))
	}
	for _, r := range got {
		if !bytes.Equal(r.Payload, bytes.Repeat([]byte{0xAA}, 40)) {
			t.Fatalf("a damaged record was mis-replayed: %x", r.Payload)
		}
	}

	// Flip a bit in an EARLIER record: that is not a tail tear, and the
	// replay must fail loudly instead of skipping it.
	flipped = append([]byte(nil), raw...)
	flipped[headerBytes+5] ^= 0x80
	if err := os.WriteFile(seg, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	// The flip invalidates record 0; recovery truncates there, so only
	// the damage is dropped — and nothing damaged is ever surfaced.
	for _, r := range collect(t, l3) {
		if !bytes.Equal(r.Payload, bytes.Repeat([]byte{0xAA}, 40)) {
			t.Fatalf("a damaged record was mis-replayed: %x", r.Payload)
		}
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var mark Pos
	for i := 0; i < 60; i++ {
		pos, err := l.Append(TypeCommit, bytes.Repeat([]byte{byte(i)}, 30))
		if err != nil {
			t.Fatal(err)
		}
		if i == 40 {
			mark = pos
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	if mark.Seg <= segs[0] {
		t.Fatalf("checkpoint position %d not past first segment %d", mark.Seg, segs[0])
	}
	if err := l.Compact(mark); err != nil {
		t.Fatal(err)
	}
	after, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != mark.Seg {
		t.Fatalf("compaction kept segment %d, want oldest %d", after[0], mark.Seg)
	}
	// Replay still works over the surviving suffix.
	var first byte
	seen := 0
	l.Replay(func(_ byte, payload []byte, _ Pos) error {
		if seen == 0 {
			first = payload[0]
		}
		seen++
		return nil
	})
	if seen == 0 || seen >= 60 {
		t.Fatalf("post-compaction replay saw %d records", seen)
	}
	if first > 41 {
		t.Fatalf("compaction dropped the checkpoint segment (first surviving record %d)", first)
	}
}

func TestGroupCommitSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, err := l.AppendSync(TypeSubmit, []byte{byte(i)})
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, l); len(got) != 16 {
		t.Fatalf("synced %d records, want 16", len(got))
	}
}

func sampleIR(k int) *core.InstanceResult {
	return &core.InstanceResult{
		K: k, Gamma: 6, Rho: 3, SymBits: 9, Stripes: 2,
		Outputs: map[graph.NodeID][]byte{
			1: bytes.Repeat([]byte{0x17}, 24),
			2: bytes.Repeat([]byte{0x2a}, 24),
			4: bytes.Repeat([]byte{0x99}, 24),
		},
		Mismatch: true, Phase3: true,
		NewDisputes: [][2]graph.NodeID{{2, 3}, {1, 3}},
		NewFaulty:   []graph.NodeID{3},
		SchemeTries: 2, Phase1Time: 12.5, Phase1SFTime: 30, Phase1Rounds: 4,
		EqualityTime: 3.25, FlagTime: 9, DisputeTime: 17,
		TotalBits: 4096, ExcludedNodes: 1, Phase1Only: false,
	}
}

func TestCommitCodecRoundTrip(t *testing.T) {
	for _, ir := range []*core.InstanceResult{
		sampleIR(7),
		{K: 1},
		{K: 3, Outputs: map[graph.NodeID][]byte{5: nil, 6: {}}},
	} {
		buf := AppendCommit(nil, ir)
		got, err := DecodeCommit(buf)
		if err != nil {
			t.Fatalf("decode k=%d: %v", ir.K, err)
		}
		// nil and empty outputs are equivalent on the wire.
		norm := func(m map[graph.NodeID][]byte) map[graph.NodeID]string {
			if len(m) == 0 {
				return nil
			}
			out := map[graph.NodeID]string{}
			for v, b := range m {
				out[v] = string(b)
			}
			return out
		}
		if !reflect.DeepEqual(norm(ir.Outputs), norm(got.Outputs)) {
			t.Fatalf("outputs diverged: %v vs %v", ir.Outputs, got.Outputs)
		}
		ir2, got2 := *ir, *got
		ir2.Outputs, got2.Outputs = nil, nil
		if !reflect.DeepEqual(ir2, got2) {
			t.Fatalf("commit round trip diverged:\n%+v\n%+v", ir2, got2)
		}
	}
}

func TestMetaSubmitCheckpointCodecs(t *testing.T) {
	m := Meta{Fingerprint: Fingerprint("1 2 3\n2 1 3\n", 1, 1, 24, 7, "3=alarm;"), Node: 3}
	gm, err := DecodeMeta(AppendMeta(nil, m))
	if err != nil || gm != m {
		t.Fatalf("meta round trip: %+v %v", gm, err)
	}
	if Fingerprint("1 2 3\n", 1, 1, 24, 7, "") == Fingerprint("1 2 3\n", 1, 1, 24, 8, "") {
		t.Fatal("fingerprint ignores seed")
	}
	if Fingerprint("1 2 3\n", 1, 1, 24, 7, "3=flip;") == Fingerprint("1 2 3\n", 1, 1, 24, 7, "") {
		t.Fatal("fingerprint ignores the adversary assignment")
	}

	s := Submit{K: 12, Payload: []byte("hello world")}
	gs, err := DecodeSubmit(AppendSubmit(nil, s.K, s.Payload))
	if err != nil || gs.K != s.K || !bytes.Equal(gs.Payload, s.Payload) {
		t.Fatalf("submit round trip: %+v %v", gs, err)
	}

	cp := Checkpoint{K: 40, Disputes: [][2]graph.NodeID{{1, 2}, {3, 4}}, Faulty: []graph.NodeID{4}}
	gc, err := DecodeCheckpoint(AppendCheckpoint(nil, cp))
	if err != nil || !reflect.DeepEqual(gc, cp) {
		t.Fatalf("checkpoint round trip: %+v %v", gc, err)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := Snapshot{
		K: 40, Epoch: 3, Gen: 5,
		Disputes: [][2]graph.NodeID{{3, 1}, {1, 2}},
		Faulty:   []graph.NodeID{4, 3},
		Digest:   0xfeedbeefcafe,
	}
	s.Canonicalize()
	if s.Disputes[0] != [2]graph.NodeID{1, 2} || s.Faulty[0] != 3 {
		t.Fatalf("canonicalize did not sort: %+v", s)
	}
	got, err := DecodeSnapshot(AppendSnapshot(nil, s))
	if err != nil || !reflect.DeepEqual(got, s) {
		t.Fatalf("snapshot round trip: %+v vs %+v (%v)", got, s, err)
	}
	// Canonical bytes are order-independent: the digest a joiner compares
	// must not depend on accumulation order.
	shuffled := Snapshot{
		K: 40, Epoch: 3, Gen: 5,
		Disputes: [][2]graph.NodeID{{1, 2}, {3, 1}},
		Faulty:   []graph.NodeID{3, 4},
		Digest:   0xfeedbeefcafe,
	}
	if SnapshotDigest(shuffled) != SnapshotDigest(s) {
		t.Fatal("snapshot digest depends on accumulation order")
	}

	// Duplicate-Faulty entries (hostile or corrupt encoder) are dropped on
	// decode, never inflating the restored set.
	dup := AppendSnapshot(nil, Snapshot{K: 2, Faulty: []graph.NodeID{4, 4, 2, 4}})
	ds, err := DecodeSnapshot(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Faulty, []graph.NodeID{4, 2}) {
		t.Fatalf("duplicate faulty entries survived decode: %v", ds.Faulty)
	}
	dcp, err := DecodeCheckpoint(AppendCheckpoint(nil, Checkpoint{K: 2, Faulty: []graph.NodeID{4, 4, 2, 4}}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dcp.Faulty, []graph.NodeID{4, 2}) {
		t.Fatalf("duplicate faulty entries survived checkpoint decode: %v", dcp.Faulty)
	}

	// Negative watermark/generation are rejected outright.
	if _, err := DecodeSnapshot(AppendSnapshot(nil, Snapshot{K: -1})); err == nil {
		t.Fatal("negative watermark decoded")
	}

	// The standalone file container round-trips and rejects damage.
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveSnapshotFile(path, s); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadSnapshotFile(path)
	if err != nil || !reflect.DeepEqual(fromFile, s) {
		t.Fatalf("snapshot file round trip: %+v (%v)", fromFile, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped snapshot file loaded: %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := AppendCommit(nil, sampleIR(9))
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := DecodeCommit(full[:len(full)-cut]); err == nil {
			t.Fatalf("truncation of %d bytes decoded successfully", cut)
		}
	}
	if _, err := DecodeCommit(append(full, 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

// TestWALCommitAppendZeroAlloc pins the acceptance criterion: encoding
// and appending a commit record in steady state allocates nothing.
func TestWALCommitAppendZeroAlloc(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ir := sampleIR(3)
	buf := make([]byte, 0, 1024)
	var failed error
	allocs := testing.AllocsPerRun(2000, func() {
		buf = AppendCommit(buf[:0], ir)
		if _, err := l.Append(TypeCommit, buf); err != nil {
			failed = err
		}
	})
	if failed != nil {
		t.Fatal(failed)
	}
	if allocs != 0 {
		t.Fatalf("commit append allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkWALAppendCommit(b *testing.B) {
	l, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	ir := sampleIR(3)
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendCommit(buf[:0], ir)
		if _, err := l.Append(TypeCommit, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendSyncBatched(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0x42}, 128)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.AppendSync(TypeSubmit, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
