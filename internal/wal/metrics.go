package wal

import "nab/internal/metrics"

// Durability instruments. The append-path counters are atomic increments
// only, keeping the zero-allocation guarantee of the commit hot path
// (TestWALCommitAppendZeroAlloc); the fsync histograms are updated once
// per group commit, off the append path.
var (
	mAppends = metrics.NewCounter("nab_wal_appends_total",
		"Records framed into the log buffer.")
	mAppendBytes = metrics.NewCounter("nab_wal_append_bytes_total",
		"Bytes framed into the log buffer, headers included.")
	mFsync = metrics.NewHistogram("nab_wal_fsync_seconds",
		"Latency of WAL fsyncs (group commits and rotations).", metrics.LatencyBuckets)
	mFsyncBatch = metrics.NewHistogram("nab_wal_fsync_batch_records",
		"Records made durable per group-commit fsync.", metrics.SizeBuckets)
)

// FsyncQuantile reports the q-quantile of process-wide WAL fsync latency
// in seconds — the Session.Metrics snapshot path.
func FsyncQuantile(q float64) float64 { return mFsync.Quantile(q) }

// AppendedBytes reports the process-wide bytes framed into WAL buffers.
func AppendedBytes() int64 { return mAppendBytes.Value() }
