// Package wal is the durable commit/progress log behind NAB's
// crash-recovery: an append-only sequence of CRC-framed records spread
// over segment files, with group-committed fsyncs so a stream of small
// commit records amortizes durability cost, torn-write recovery on open
// (a record cut short by a crash is detected and dropped, never
// mis-replayed), a full-log replay iterator, and segment-level compaction
// above a caller-chosen checkpoint position.
//
// The log is content-agnostic: records are (type byte, payload) pairs.
// The NAB-specific record codecs — session metadata, submissions,
// committed instances, dispute checkpoints — live in records.go; the
// session layer (nab.WithDurability / nab.Recover) and the cluster rejoin
// protocol are built on both.
//
// On-disk format, per record:
//
//	[4B little-endian length n][4B CRC32-C][1B type][n-1 bytes payload]
//
// where the CRC covers type+payload. Segments are named wal-%016x.seg and
// numbered from 1; a record never spans segments. Only the final segment
// can carry a torn tail (the log is append-only), so recovery truncates
// the final segment at the first invalid record and fails loudly on
// corruption anywhere earlier.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nab/internal/flight"
)

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 8 MiB.
	SegmentBytes int64
	// SyncInterval batches background durability for plain Appends: a
	// syncer goroutine fsyncs at most once per interval while appends
	// keep arriving. Zero disables the background syncer — records are
	// durable only when AppendSync or Sync is called. Sync/AppendSync
	// group-commit regardless: concurrent callers share one fsync.
	SyncInterval time.Duration
	// NoSync skips fsyncs entirely (benchmarks, tests that simulate
	// post-crash states by hand).
	NoSync bool
}

const (
	headerBytes = 8
	// maxRecordBytes bounds one record's framed length; a header claiming
	// more is treated as torn/corrupt rather than allocated.
	maxRecordBytes = 64 << 20

	defaultSegmentBytes = 8 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an invalid record before the final segment's tail —
// damage recovery must not paper over.
var ErrCorrupt = errors.New("wal: corrupt record")

// Pos addresses a record's segment for compaction: Compact(pos) drops
// every segment older than pos.Seg.
type Pos struct {
	// Seg is the segment index (1-based) the record was appended to.
	Seg uint64
}

// Log is one process's write-ahead log directory. Safe for concurrent
// use.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	bw       *bufio.Writer
	seg      uint64 // active segment index
	segBytes int64
	appended uint64 // records accepted into the buffer
	synced   uint64 // records known durable
	syncing  bool
	err      error // sticky write/sync failure
	// hdr is the reusable record-header scratch; a stack array would be
	// forced to the heap on every Append by bufio's interface write.
	hdr [headerBytes + 1]byte

	kick      chan struct{} // wakes the background syncer
	closed    chan struct{}
	closeOnce sync.Once
}

// Open opens (or creates) the log in dir, truncating a torn tail off the
// final segment. Records appended before the crash and fully framed are
// preserved; a half-written final record is dropped.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir:    dir,
		opt:    opt,
		kick:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	// A crash between creating a fresh segment and making its first
	// record durable leaves a trailing segment with no valid prefix; the
	// preceding segment then still holds the true tail — possibly torn,
	// if the rotation's seal fsync itself was lost. Anchoring the lenient
	// scan to the empty trailing file would freeze torn records into an
	// earlier segment, where replay is strict, so step backward past
	// record-free trailing segments and re-anchor the tail scan.
	for len(segs) > 1 {
		end, err := scanSegment(l.segPath(segs[len(segs)-1]), true)
		if err != nil {
			return nil, err
		}
		if end != 0 {
			break
		}
		if err := os.Remove(l.segPath(segs[len(segs)-1])); err != nil {
			return nil, fmt.Errorf("wal: drop empty trailing segment: %w", err)
		}
		segs = segs[:len(segs)-1]
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		end, err := scanSegment(l.segPath(last), true)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(l.segPath(last), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seg, l.segBytes = f, last, end
		l.bw = bufio.NewWriterSize(f, 1<<16)
	}
	if opt.SyncInterval > 0 && !opt.NoSync {
		go l.backgroundSync()
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) segPath(idx uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", idx))
}

// segments lists existing segment indices in order.
func (l *Log) segments() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var out []uint64
	for _, e := range ents {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%016x.seg", &idx); n == 1 {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openSegment creates and activates segment idx. Callers hold mu (or own
// the log exclusively during Open).
func (l *Log) openSegment(idx uint64) error {
	f, err := os.OpenFile(l.segPath(idx), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if !l.opt.NoSync {
		// Make the directory entry itself durable, so a crash right after
		// rotation cannot lose the whole new segment.
		if d, derr := os.Open(l.dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	l.f, l.seg, l.segBytes = f, idx, 0
	l.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// Append frames one record into the log buffer and returns its position.
// Durability is deferred to the next Sync/AppendSync (or the background
// syncer); the steady-state path performs no allocation.
func (l *Log) Append(typ byte, payload []byte) (Pos, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//nab:ignore lockedblock -- rotation fsyncs under l.mu only at segment boundaries (sealing the old file before appends resume); steady-state commits use Sync's unlock-around-fsync
	return l.appendLocked(typ, payload)
}

//nab:allocfree
func (l *Log) appendLocked(typ byte, payload []byte) (Pos, error) {
	if l.err != nil {
		return Pos{}, l.err
	}
	n := len(payload) + 1
	if n > maxRecordBytes {
		return Pos{}, fmt.Errorf("wal: record of %d bytes exceeds limit", n)
	}
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, err
		}
	}
	hdr := l.hdr[:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[8] = typ
	crc := crc32.Update(0, crcTable, hdr[8:9])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.bw.Write(hdr); err != nil {
		l.fail(err)
		return Pos{}, err
	}
	if _, err := l.bw.Write(payload); err != nil {
		l.fail(err)
		return Pos{}, err
	}
	l.segBytes += int64(headerBytes + n)
	l.appended++
	mAppends.Inc()
	mAppendBytes.Add(int64(headerBytes + n))
	if flight.Enabled() {
		et := flight.EvWALAppend
		if typ == TypeSnapshot {
			et = flight.EvWALSnapshot
		}
		flight.Record(flight.Event{Type: et, Node: -1,
			Arg: uint64(headerBytes + n), Step: uint32(typ)})
	}
	pos := Pos{Seg: l.seg}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return pos, nil
}

// rotateLocked seals the active segment (flush+fsync) and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.bw.Flush(); err != nil {
		l.fail(err)
		return err
	}
	if !l.opt.NoSync {
		start := time.Now()
		err := l.f.Sync()
		mFsync.Observe(time.Since(start).Seconds())
		if err != nil {
			l.fail(err)
			return err
		}
	}
	l.synced = l.appended
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return err
	}
	return l.openSegment(l.seg + 1)
}

func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
}

// Sync makes every record appended so far durable. Concurrent callers
// group-commit: while one fsync is in flight, later callers wait and are
// covered by the next one, so a burst of commits costs O(1) fsyncs.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	for {
		if l.err != nil {
			return l.err
		}
		if l.synced >= target {
			return nil
		}
		if !l.syncing {
			break
		}
		l.cond.Wait()
	}
	l.syncing = true
	upto := l.appended
	batch := upto - l.synced
	if err := l.bw.Flush(); err != nil {
		l.syncing = false
		l.fail(err)
		return err
	}
	f, seg := l.f, l.seg
	l.mu.Unlock()
	var err error
	if !l.opt.NoSync {
		start := time.Now()
		err = f.Sync()
		mFsync.Observe(time.Since(start).Seconds())
		mFsyncBatch.Observe(float64(batch))
		if flight.Enabled() {
			flight.Record(flight.Event{Type: flight.EvWALFsync, Node: -1, Arg: batch})
		}
	}
	l.mu.Lock()
	l.syncing = false
	if err != nil && seg == l.seg {
		l.fail(err)
		return err
	}
	// seg != l.seg: a concurrent Append rotated while we fsynced — the
	// rotation flushed, fsynced and closed our file (possibly failing our
	// Sync with ErrClosed), and already advanced l.synced past upto.
	if upto > l.synced {
		l.synced = upto
	}
	l.cond.Broadcast()
	if l.err != nil {
		return l.err
	}
	return nil
}

// Lag returns how many appended records are not yet known durable — the
// WAL sync lag surfaced by /healthz.
func (l *Log) Lag() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended - l.synced
}

// AppendSync appends one record and returns once it is durable —
// the submission-accept path, where acknowledging a payload promises it
// survives a crash.
func (l *Log) AppendSync(typ byte, payload []byte) (Pos, error) {
	pos, err := l.Append(typ, payload)
	if err != nil {
		return pos, err
	}
	return pos, l.Sync()
}

// backgroundSync batches durability for plain Appends: at most one fsync
// per SyncInterval while records keep arriving.
func (l *Log) backgroundSync() {
	for {
		select {
		case <-l.closed:
			return
		case <-l.kick:
		}
		select {
		case <-l.closed:
			return
		case <-time.After(l.opt.SyncInterval):
		}
		l.Sync()
	}
}

// Replay iterates every record currently in the log, oldest first,
// calling fn(type, payload, pos); the payload slice is reused between
// calls. Replay is meant for the recovery path, before this process
// appends; it reads the segment files directly. A non-nil fn error
// aborts the replay and is returned.
func (l *Log) Replay(fn func(typ byte, payload []byte, pos Pos) error) error {
	l.mu.Lock()
	if err := l.bw.Flush(); err != nil {
		l.fail(err)
		l.mu.Unlock()
		return err
	}
	segs, err := l.segments()
	last := l.seg
	l.mu.Unlock()
	if err != nil {
		return err
	}
	var buf []byte
	for _, idx := range segs {
		f, err := os.Open(l.segPath(idx))
		if err != nil {
			return fmt.Errorf("wal: replay segment %d: %w", idx, err)
		}
		err = replayReader(bufio.NewReaderSize(f, 1<<16), idx != last, func(typ byte, payload []byte) error {
			return fn(typ, payload, Pos{Seg: idx})
		}, &buf)
		f.Close()
		if err != nil {
			return fmt.Errorf("wal: segment %d: %w", idx, err)
		}
	}
	return nil
}

// replayReader decodes records from r. In the final segment (strict ==
// false) a torn or invalid tail ends the replay cleanly; anywhere else it
// is ErrCorrupt.
func replayReader(r *bufio.Reader, strict bool, fn func(typ byte, payload []byte) error, buf *[]byte) error {
	for {
		typ, payload, err := readRecord(r, buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if strict || errors.Is(err, errReplayAbort) {
				return err
			}
			return nil // torn tail: ignore, recovery truncated or will truncate it
		}
		if err := fn(typ, payload); err != nil {
			return fmt.Errorf("%w: %w", errReplayAbort, err)
		}
	}
}

// errReplayAbort marks an error returned by the caller's replay fn, as
// opposed to a framing error, so a lenient tail scan does not swallow it.
var errReplayAbort = errors.New("wal: replay aborted")

// readRecord reads one framed record. io.EOF means a clean end;
// ErrCorrupt wraps every framing violation.
func readRecord(r *bufio.Reader, buf *[]byte) (byte, []byte, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxRecordBytes {
		return 0, nil, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: short body: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	//nab:ignore wirebounds -- len(body) == n and 1 <= n <= maxRecordBytes is enforced right after the header parse
	return body[0], body[1:], nil
}

// scanSegment walks one segment and returns the byte offset of its valid
// end. With lenientTail (the final segment), the first invalid record
// marks the end; otherwise it is ErrCorrupt.
func scanSegment(path string, lenientTail bool) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: scan segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var end int64
	var buf []byte
	for {
		_, payload, err := readRecord(br, &buf)
		if err == io.EOF {
			return end, nil
		}
		if err != nil {
			if lenientTail {
				return end, nil
			}
			return 0, err
		}
		end += int64(headerBytes + 1 + len(payload))
	}
}

// Compact removes every segment strictly older than keep.Seg — typically
// the position of the latest checkpoint record, making startup replay
// proportional to the live suffix instead of the full history. The active
// segment is never removed.
func (l *Log) Compact(keep Pos) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	l.mu.Lock()
	active := l.seg
	l.mu.Unlock()
	for _, idx := range segs {
		if idx >= keep.Seg || idx == active {
			continue
		}
		if err := os.Remove(l.segPath(idx)); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (l *Log) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		err = l.Sync()
		l.mu.Lock()
		defer l.mu.Unlock()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		if l.err == nil {
			l.err = errors.New("wal: log closed")
		}
	})
	return err
}
