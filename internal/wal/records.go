package wal

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"nab/internal/core"
	"nab/internal/graph"
)

// Record types of NAB's durable session log.
const (
	// TypeMeta opens every log: the session/config fingerprint replay is
	// validated against, so a WAL cannot silently resume a different
	// cluster or topology.
	TypeMeta byte = 0x01
	// TypeSubmit is one accepted submission: instance number + payload.
	// It is made durable before Submit acknowledges.
	TypeSubmit byte = 0x02
	// TypeCommit is one committed instance: the full InstanceResult,
	// appended before the commit is delivered to the consumer.
	TypeCommit byte = 0x03
	// TypeCheckpoint snapshots the cross-instance dispute state at a
	// committed instance; segments before the latest checkpoint are
	// compactable.
	TypeCheckpoint byte = 0x04
)

// Meta identifies the session a log belongs to.
type Meta struct {
	// Fingerprint ties the log to one configuration (see Fingerprint).
	Fingerprint uint64
	// Node is the hosting node id for cluster processes, -1 for
	// single-process sessions (topology node ids are positive, so the
	// sentinel can never collide).
	Node int64
}

// Fingerprint hashes the replay-relevant configuration: the marshaled
// topology, source, fault bound, input size, seed and the adversary
// assignment (committed sequences depend on who misbehaves — restarting
// under a different assignment would silently break byte-identity).
// Engines with the same fingerprint commit byte-identical sequences for
// identical submissions, which is exactly what makes a WAL
// transplantable across restarts (and nothing else). adversaries is a
// caller-derived canonical string — cluster sessions use the config's
// node=spec list, in-process sessions the node=type list (a best effort:
// two adversaries of one type with different internal parameters hash
// alike).
func Fingerprint(topology string, source graph.NodeID, f, lenBytes int, seed int64, adversaries string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(topology))
	h.Write([]byte{0})
	h.Write([]byte(adversaries))
	h.Write([]byte{0})
	var tail [40]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(int64(source)))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(int64(f)))
	binary.LittleEndian.PutUint64(tail[16:24], uint64(int64(lenBytes)))
	binary.LittleEndian.PutUint64(tail[24:32], uint64(seed))
	binary.LittleEndian.PutUint64(tail[32:40], 0x6e61622d77616c00) // "nab-wal"
	h.Write(tail[:])
	return h.Sum64()
}

// Submit is a decoded TypeSubmit record.
type Submit struct {
	K       int
	Payload []byte
}

// Checkpoint is a decoded TypeCheckpoint record: the accumulated dispute
// pairs (MarkFaulty expansions included) and proven-faulty nodes as of
// committed instance K. Folding it as a synthetic instance result
// reproduces the engine's dispute state; the generation counter is
// recomputed by the fold rather than stored (plan-cache seeds tolerate
// the difference — schemes are verified before use).
type Checkpoint struct {
	K        int
	Disputes [][2]graph.NodeID
	Faulty   []graph.NodeID
}

// AppendMeta appends a TypeMeta payload to buf.
//
//nab:allocfree
func AppendMeta(buf []byte, m Meta) []byte {
	buf = binary.AppendUvarint(buf, m.Fingerprint)
	buf = binary.AppendVarint(buf, m.Node)
	return buf
}

// DecodeMeta decodes a TypeMeta payload.
func DecodeMeta(b []byte) (Meta, error) {
	d := decoder{b: b}
	m := Meta{Fingerprint: d.uvarint(), Node: d.varint()}
	return m, d.finish("meta")
}

// AppendSubmit appends a TypeSubmit payload to buf.
//
//nab:allocfree
func AppendSubmit(buf []byte, k int, payload []byte) []byte {
	buf = binary.AppendVarint(buf, int64(k))
	return append(buf, payload...)
}

// DecodeSubmit decodes a TypeSubmit payload. The payload slice aliases b.
func DecodeSubmit(b []byte) (Submit, error) {
	d := decoder{b: b}
	k := d.varint()
	if d.err != nil {
		return Submit{}, d.wrap("submit")
	}
	return Submit{K: int(k), Payload: d.rest()}, nil
}

// AppendCheckpoint appends a TypeCheckpoint payload to buf.
//
//nab:allocfree
func AppendCheckpoint(buf []byte, cp Checkpoint) []byte {
	buf = binary.AppendVarint(buf, int64(cp.K))
	buf = binary.AppendUvarint(buf, uint64(len(cp.Disputes)))
	for _, p := range cp.Disputes {
		buf = binary.AppendVarint(buf, int64(p[0]))
		buf = binary.AppendVarint(buf, int64(p[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(cp.Faulty)))
	for _, v := range cp.Faulty {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// DecodeCheckpoint decodes a TypeCheckpoint payload.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	d := decoder{b: b}
	cp := Checkpoint{K: int(d.varint())}
	nd := d.count(2)
	for i := uint64(0); i < nd && d.err == nil; i++ {
		cp.Disputes = append(cp.Disputes, [2]graph.NodeID{
			graph.NodeID(d.varint()), graph.NodeID(d.varint()),
		})
	}
	nf := d.count(1)
	for i := uint64(0); i < nf && d.err == nil; i++ {
		// A node is proven faulty at most once; a duplicate is an encoder
		// bug or corruption that must not inflate the restored set.
		cp.Faulty = appendFaulty(cp.Faulty, graph.NodeID(d.varint()))
	}
	return cp, d.finish("checkpoint")
}

// AppendCommitFold appends the cross-process fold projection of a
// commit: the fields every process of a cluster commits identically for
// instance K — the schedule outcome and the Phase 3 findings that drive
// dispute-state evolution. Per-process fields (local outputs, timings,
// transfer accounting) are excluded, so the bytes — and the chain digest
// built over them — agree across hosts and across restore bases.
//
//nab:allocfree
func AppendCommitFold(buf []byte, ir *core.InstanceResult) []byte {
	buf = binary.AppendVarint(buf, int64(ir.K))
	buf = appendBool(buf, ir.Mismatch)
	buf = appendBool(buf, ir.Phase3)
	buf = binary.AppendUvarint(buf, uint64(len(ir.NewDisputes)))
	for _, p := range ir.NewDisputes {
		buf = binary.AppendVarint(buf, int64(p[0]))
		buf = binary.AppendVarint(buf, int64(p[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ir.NewFaulty)))
	for _, v := range ir.NewFaulty {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// DecodeCommitFold decodes an AppendCommitFold payload into a synthetic
// InstanceResult carrying exactly the fold-relevant fields. It is what a
// joiner reconstructs from a peer's WAL-tail transfer: enough to fold
// dispute state forward and to serve future joins, with no per-process
// residue.
func DecodeCommitFold(b []byte) (*core.InstanceResult, error) {
	d := decoder{b: b}
	ir := &core.InstanceResult{K: int(d.varint())}
	ir.Mismatch = d.bool()
	ir.Phase3 = d.bool()
	nd := d.count(2)
	for i := uint64(0); i < nd && d.err == nil; i++ {
		ir.NewDisputes = append(ir.NewDisputes, [2]graph.NodeID{
			graph.NodeID(d.varint()), graph.NodeID(d.varint()),
		})
	}
	nf := d.count(1)
	for i := uint64(0); i < nf && d.err == nil; i++ {
		ir.NewFaulty = append(ir.NewFaulty, graph.NodeID(d.varint()))
	}
	if err := d.finish("commit-fold"); err != nil {
		return nil, err
	}
	return ir, nil
}

// maxInlineOutputs is the stack budget for sorting a commit's output keys
// without allocating; larger maps (none of the shipped topologies come
// close) fall back to a heap slice.
const maxInlineOutputs = 64

// AppendCommit appends a TypeCommit payload — the full InstanceResult —
// to buf. The steady-state path (buf with capacity, <= maxInlineOutputs
// outputs) performs no allocation, which keeps the commit hot path
// alloc-free end to end.
//
//nab:allocfree
func AppendCommit(buf []byte, ir *core.InstanceResult) []byte {
	buf = binary.AppendVarint(buf, int64(ir.K))
	buf = binary.AppendVarint(buf, ir.Gamma)
	buf = binary.AppendVarint(buf, int64(ir.Rho))
	buf = binary.AppendUvarint(buf, uint64(ir.SymBits))
	buf = binary.AppendVarint(buf, int64(ir.Stripes))
	buf = appendBool(buf, ir.Mismatch)
	buf = appendBool(buf, ir.Phase3)
	buf = appendBool(buf, ir.Phase1Only)
	buf = binary.AppendVarint(buf, int64(ir.SchemeTries))
	buf = binary.AppendVarint(buf, int64(ir.Phase1Rounds))
	buf = binary.AppendVarint(buf, int64(ir.ExcludedNodes))
	buf = binary.AppendVarint(buf, ir.TotalBits)
	for _, t := range [...]float64{ir.Phase1Time, ir.Phase1SFTime, ir.EqualityTime, ir.FlagTime, ir.DisputeTime} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
	}

	var inline [maxInlineOutputs]graph.NodeID
	keys := inline[:0]
	if len(ir.Outputs) > maxInlineOutputs {
		//nab:ignore allocfree -- cold fallback past the inline budget; no shipped topology exceeds maxInlineOutputs
		keys = make([]graph.NodeID, 0, len(ir.Outputs))
	}
	for v := range ir.Outputs {
		keys = append(keys, v)
	}
	// Insertion sort: key sets are tiny and this keeps sort.Slice's
	// closure allocation off the hot path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, v := range keys {
		out := ir.Outputs[v]
		buf = binary.AppendVarint(buf, int64(v))
		buf = binary.AppendUvarint(buf, uint64(len(out)))
		buf = append(buf, out...)
	}

	buf = binary.AppendUvarint(buf, uint64(len(ir.NewDisputes)))
	for _, p := range ir.NewDisputes {
		buf = binary.AppendVarint(buf, int64(p[0]))
		buf = binary.AppendVarint(buf, int64(p[1]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ir.NewFaulty)))
	for _, v := range ir.NewFaulty {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// DecodeCommit decodes a TypeCommit payload into a fresh InstanceResult.
func DecodeCommit(b []byte) (*core.InstanceResult, error) {
	d := decoder{b: b}
	ir := &core.InstanceResult{
		K:       int(d.varint()),
		Gamma:   d.varint(),
		Rho:     int(d.varint()),
		SymBits: uint(d.uvarint()),
		Stripes: int(d.varint()),
	}
	ir.Mismatch = d.bool()
	ir.Phase3 = d.bool()
	ir.Phase1Only = d.bool()
	ir.SchemeTries = int(d.varint())
	ir.Phase1Rounds = int(d.varint())
	ir.ExcludedNodes = int(d.varint())
	ir.TotalBits = d.varint()
	ir.Phase1Time = d.float()
	ir.Phase1SFTime = d.float()
	ir.EqualityTime = d.float()
	ir.FlagTime = d.float()
	ir.DisputeTime = d.float()

	no := d.count(2)
	if no > 0 && d.err == nil {
		ir.Outputs = make(map[graph.NodeID][]byte, no)
	}
	for i := uint64(0); i < no && d.err == nil; i++ {
		v := graph.NodeID(d.varint())
		ir.Outputs[v] = d.bytes()
	}
	nd := d.count(2)
	for i := uint64(0); i < nd && d.err == nil; i++ {
		ir.NewDisputes = append(ir.NewDisputes, [2]graph.NodeID{
			graph.NodeID(d.varint()), graph.NodeID(d.varint()),
		})
	}
	nf := d.count(1)
	for i := uint64(0); i < nf && d.err == nil; i++ {
		ir.NewFaulty = append(ir.NewFaulty, graph.NodeID(d.varint()))
	}
	if err := d.finish("commit"); err != nil {
		return nil, err
	}
	return ir, nil
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// decoder is a bounds-checked cursor over one record payload. The first
// violation latches err and every later read yields zero values, so
// callers can decode a full struct and check once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed field")
	}
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a collection length and rejects one that cannot fit in the
// remaining bytes at minBytes per element — the guard that keeps a
// corrupt record from inducing a huge allocation.
func (d *decoder) count(minBytes int) uint64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)/minBytes+1) {
		d.fail()
		return 0
	}
	return n
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 || d.b[0] > 1 {
		d.fail()
		return false
	}
	v := d.b[0] == 1
	d.b = d.b[1:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// bytes reads a length-prefixed byte string, copying out of the record
// buffer (records are reused across Replay calls).
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	out := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return out
}

// rest returns the remaining payload.
func (d *decoder) rest() []byte { return d.b }

func (d *decoder) finish(what string) error {
	if err := d.wrap(what); err != nil {
		return err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wal: %s record: %d trailing bytes", what, len(d.b))
	}
	return nil
}

func (d *decoder) wrap(what string) error {
	if d.err != nil {
		return fmt.Errorf("wal: %s record: %w", what, d.err)
	}
	return nil
}
