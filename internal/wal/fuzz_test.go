package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nab/internal/graph"
)

// FuzzWALRecord hammers the typed record decoders with raw payloads: they
// must never panic, never allocate absurdly, and every successfully
// decoded commit must re-encode to an equivalent record (no silent field
// loss or aliasing bugs a replay could mis-apply).
func FuzzWALRecord(f *testing.F) {
	f.Add(byte(TypeMeta), AppendMeta(nil, Meta{Fingerprint: 0xfeed, Node: 2}))
	f.Add(byte(TypeSubmit), AppendSubmit(nil, 3, []byte("payload")))
	f.Add(byte(TypeCommit), AppendCommit(nil, sampleIR(5)))
	f.Add(byte(TypeCheckpoint), AppendCheckpoint(nil, Checkpoint{K: 9}))
	f.Add(byte(TypeCheckpoint), AppendCheckpoint(nil, Checkpoint{K: 9, Faulty: []graph.NodeID{4, 4}}))
	f.Add(byte(TypeSnapshot), AppendSnapshot(nil, Snapshot{
		K: 12, Epoch: 2, Gen: 3,
		Disputes: [][2]graph.NodeID{{1, 2}}, Faulty: []graph.NodeID{2, 2},
		Digest: DigestSeed,
	}))
	f.Add(byte(TypeCommit), []byte{})
	f.Add(byte(0xFF), bytes.Repeat([]byte{0x80}, 64)) // unterminated varints
	noDup := func(t *testing.T, kind string, faulty []graph.NodeID) {
		t.Helper()
		seen := map[graph.NodeID]bool{}
		for _, v := range faulty {
			if seen[v] {
				t.Fatalf("%s decode surfaced duplicate faulty node %d: %v", kind, v, faulty)
			}
			seen[v] = true
		}
	}
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		switch typ {
		case TypeMeta:
			if m, err := DecodeMeta(payload); err == nil {
				if got, err := DecodeMeta(AppendMeta(nil, m)); err != nil || got != m {
					t.Fatalf("meta re-encode diverged: %+v vs %+v (%v)", m, got, err)
				}
			}
		case TypeSubmit:
			if s, err := DecodeSubmit(payload); err == nil {
				got, err := DecodeSubmit(AppendSubmit(nil, s.K, s.Payload))
				if err != nil || got.K != s.K || !bytes.Equal(got.Payload, s.Payload) {
					t.Fatalf("submit re-encode diverged")
				}
			}
		case TypeCommit:
			if ir, err := DecodeCommit(payload); err == nil {
				got, err := DecodeCommit(AppendCommit(nil, ir))
				if err != nil {
					t.Fatalf("re-encode of decoded commit rejected: %v", err)
				}
				if got.K != ir.K || got.Phase3 != ir.Phase3 || len(got.Outputs) != len(ir.Outputs) ||
					!reflect.DeepEqual(got.NewDisputes, ir.NewDisputes) || !reflect.DeepEqual(got.NewFaulty, ir.NewFaulty) {
					t.Fatalf("commit re-encode diverged: %+v vs %+v", ir, got)
				}
			}
		case TypeCheckpoint:
			if cp, err := DecodeCheckpoint(payload); err == nil {
				noDup(t, "checkpoint", cp.Faulty)
				if got, err := DecodeCheckpoint(AppendCheckpoint(nil, cp)); err != nil || !reflect.DeepEqual(got, cp) {
					t.Fatalf("checkpoint re-encode diverged")
				}
			}
		case TypeSnapshot:
			if s, err := DecodeSnapshot(payload); err == nil {
				noDup(t, "snapshot", s.Faulty)
				if s.K < 0 || s.Gen < 0 {
					t.Fatalf("snapshot decode surfaced negative watermark/generation: %+v", s)
				}
				if got, err := DecodeSnapshot(AppendSnapshot(nil, s)); err != nil || !reflect.DeepEqual(got, s) {
					t.Fatalf("snapshot re-encode diverged: %+v vs %+v (%v)", s, got, err)
				}
			}
		}
	})
}

// FuzzSegmentReplay writes arbitrary bytes as a segment file and opens a
// log over it: recovery must never panic, must drop (not mis-replay)
// torn tails and bit-flipped CRCs, and every record it does replay must
// carry a valid checksum — by construction of the scan, a record whose
// CRC does not match its content can never be surfaced.
func FuzzSegmentReplay(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var out []byte
		body := append([]byte{typ}, payload...)
		out = append(out, byte(len(body)), byte(len(body)>>8), byte(len(body)>>16), byte(len(body)>>24))
		crc := crc32.Checksum(body, crcTable)
		out = append(out, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
		return append(out, body...)
	}
	good := frame(TypeSubmit, []byte("alpha"))
	good2 := append(append([]byte(nil), good...), frame(TypeCommit, AppendCommit(nil, sampleIR(1)))...)
	f.Add(good)
	f.Add(good2)
	f.Add(good2[:len(good2)-3]) // torn tail
	flipped := append([]byte(nil), good2...)
	flipped[len(flipped)-2] ^= 0x40 // bit-flipped CRC region
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), segment, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // a reported corruption is a valid outcome; crashing is not
		}
		defer l.Close()
		var replayed [][]byte
		rerr := l.Replay(func(typ byte, payload []byte, _ Pos) error {
			replayed = append(replayed, append([]byte{typ}, payload...))
			return nil
		})
		if rerr != nil && !errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("replay failed with non-corruption error: %v", rerr)
		}
		// Independently re-scan the (truncated) file: every replayed
		// record must sit at the expected offset with a matching CRC.
		raw, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.seg"))
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for i, rec := range replayed {
			if off+headerBytes+len(rec) > len(raw) {
				t.Fatalf("record %d replayed beyond the recovered file", i)
			}
			body := raw[off+headerBytes : off+headerBytes+len(rec)]
			if !bytes.Equal(body, rec) {
				t.Fatalf("record %d content diverged from the file", i)
			}
			wantCRC := uint32(raw[off+4]) | uint32(raw[off+5])<<8 | uint32(raw[off+6])<<16 | uint32(raw[off+7])<<24
			if crc32.Checksum(body, crcTable) != wantCRC {
				t.Fatalf("record %d replayed with a mismatched checksum", i)
			}
			off += headerBytes + len(rec)
		}
		// Appending after any recovered state must keep the log readable.
		if _, err := l.Append(TypeSubmit, []byte("post")); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := l.Replay(func(byte, []byte, Pos) error { n++; return nil }); err != nil {
			t.Fatalf("replay after post-recovery append: %v", err)
		}
		if n != len(replayed)+1 {
			t.Fatalf("post-recovery append lost records: %d vs %d+1", n, len(replayed))
		}
	})
}
