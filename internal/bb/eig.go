// Package bb implements classic (capacity-oblivious) Byzantine broadcast —
// the "Broadcast_Default" black box the paper plugs in for step 2.2 (1-bit
// flag agreement) and Phase 3 (dispute-control transcript agreement).
//
// The algorithm is Exponential Information Gathering (Pease–Shostak–
// Lamport): t+1 rounds among participants P with |P| >= 3t+1, where t is
// the residual fault tolerance. Every participant acts as the general of
// its own simultaneous instance, so one run agrees on a value per node.
//
// Point-to-point links between participants are emulated with the relay
// package (2f+1 node-disjoint paths + majority), exactly the construction
// of the paper's Appendix D.
package bb

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nab/internal/graph"
	"nab/internal/relay"
	"nab/internal/sim"
)

// Node is the per-node state of one simultaneous-EIG execution. It
// implements sim.Process. After the final round, Decide returns the agreed
// value for any general.
type Node struct {
	self         graph.NodeID
	participants []graph.NodeID
	inP          map[graph.NodeID]bool
	t            int // residual fault tolerance; t+1 EIG rounds
	router       *relay.Router
	relayRounds  int
	myValue      []byte

	vals      map[string][]byte // label key -> reported value
	harvested map[int]bool      // EIG rounds already harvested
}

// labelVal is the wire form of one EIG tree report.
type labelVal struct {
	Path []graph.NodeID
	Val  []byte
}

// roundMsg is the wire form of one EIG round's report batch. It uses a
// compact varint framing (not JSON): the flag broadcast's cost is the
// paper's O(n^alpha) additive overhead, so every byte of framing is pure
// throughput loss at finite L.
type roundMsg struct {
	K       int
	Reports []labelVal
}

// marshalRound encodes a roundMsg: varint K, varint report count, then per
// report varint path length, varint node ids, varint value length, value.
func marshalRound(m roundMsg) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putInt := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putInt(int64(m.K))
	putInt(int64(len(m.Reports)))
	for _, r := range m.Reports {
		putInt(int64(len(r.Path)))
		for _, id := range r.Path {
			putInt(int64(id))
		}
		putInt(int64(len(r.Val)))
		buf = append(buf, r.Val...)
	}
	return buf
}

// unmarshalRound decodes marshalRound's format; malformed input returns an
// error (Byzantine senders can emit garbage).
func unmarshalRound(raw []byte) (roundMsg, error) {
	var m roundMsg
	pos := 0
	getInt := func() (int64, error) {
		v, n := binary.Varint(raw[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bb: truncated varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	k, err := getInt()
	if err != nil {
		return m, err
	}
	m.K = int(k)
	count, err := getInt()
	if err != nil {
		return m, err
	}
	if count < 0 || count > int64(len(raw)) {
		return m, fmt.Errorf("bb: implausible report count %d", count)
	}
	m.Reports = make([]labelVal, 0, count)
	for i := int64(0); i < count; i++ {
		plen, err := getInt()
		if err != nil {
			return m, err
		}
		if plen < 0 || plen > int64(len(raw)) {
			return m, fmt.Errorf("bb: implausible path length %d", plen)
		}
		path := make([]graph.NodeID, plen)
		for j := range path {
			id, err := getInt()
			if err != nil {
				return m, err
			}
			path[j] = graph.NodeID(id)
		}
		vlen, err := getInt()
		if err != nil {
			return m, err
		}
		if vlen < 0 || int64(pos)+vlen > int64(len(raw)) {
			return m, fmt.Errorf("bb: implausible value length %d", vlen)
		}
		val := raw[pos : pos+int(vlen)]
		pos += int(vlen)
		m.Reports = append(m.Reports, labelVal{Path: path, Val: val})
	}
	return m, nil
}

// NewNode builds the EIG state for node self broadcasting myValue, among
// participants (each of whom is also a general), with residual tolerance t.
// The router must be backed by a relay table with 2f+1 paths where f is the
// global fault bound (faulty nodes outside participants can still relay).
func NewNode(self graph.NodeID, participants []graph.NodeID, t int, router *relay.Router, myValue []byte) (*Node, error) {
	if t < 0 {
		return nil, fmt.Errorf("bb: tolerance t = %d must be non-negative", t)
	}
	if len(participants) < 3*t+1 {
		return nil, fmt.Errorf("bb: %d participants cannot tolerate t = %d faults (need >= %d)", len(participants), t, 3*t+1)
	}
	inP := map[graph.NodeID]bool{}
	for _, p := range participants {
		inP[p] = true
	}
	if !inP[self] {
		return nil, fmt.Errorf("bb: node %d not among participants", self)
	}
	sorted := append([]graph.NodeID(nil), participants...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Node{
		self:         self,
		participants: sorted,
		inP:          inP,
		t:            t,
		router:       router,
		relayRounds:  routerRounds(router),
		myValue:      myValue,
		vals:         map[string][]byte{},
		harvested:    map[int]bool{},
	}, nil
}

// routerRounds extracts the relay round count; kept behind a helper so the
// Node constructor reads clearly.
func routerRounds(r *relay.Router) int { return r.Table().Rounds() }

// Rounds returns the number of simulator rounds one full execution needs.
func (nd *Node) Rounds() int { return (nd.t+1)*nd.relayRounds + 1 }

// msgID labels the relay traffic of EIG round k.
func msgID(k int) string { return "eig:" + strconv.Itoa(k) }

func labelKey(path []graph.NodeID) string {
	parts := make([]string, len(path))
	for i, v := range path {
		parts[i] = strconv.Itoa(int(v))
	}
	return strings.Join(parts, ",")
}

// Step implements sim.Process: it forwards relay traffic every round and,
// on EIG round boundaries, harvests the previous round's majorities and
// emits the next round's reports.
func (nd *Node) Step(round int, inbox []sim.Message) []sim.Message {
	out := nd.router.HandleAll(inbox)
	if round%nd.relayRounds != 0 {
		return out
	}
	k := round / nd.relayRounds // EIG round about to start (0-based)
	if k > 0 {
		nd.harvest(k - 1)
	}
	if k <= nd.t {
		out = append(out, nd.sendRound(k)...)
	}
	return out
}

// Finish harvests any remaining rounds; call after the simulator phase
// completes (Step at round (t+1)*relayRounds already harvests the last
// round, Finish is idempotent insurance for drivers running extra rounds).
func (nd *Node) Finish() {
	for k := 0; k <= nd.t; k++ {
		nd.harvest(k)
	}
}

// sendRound emits EIG round k's reports to every other participant.
func (nd *Node) sendRound(k int) []sim.Message {
	var reports []labelVal
	if k == 0 {
		// Generals announce their own value.
		nd.vals[labelKey([]graph.NodeID{nd.self})] = nd.myValue
		reports = append(reports, labelVal{Path: []graph.NodeID{nd.self}, Val: nd.myValue})
	} else {
		for _, lv := range nd.storedAtLevel(k) {
			if containsNode(lv.Path, nd.self) {
				continue
			}
			reports = append(reports, lv)
		}
	}
	payload := marshalRound(roundMsg{K: k, Reports: reports})
	var out []sim.Message
	for _, q := range nd.participants {
		if q == nd.self {
			continue
		}
		out = append(out, nd.router.Send(q, msgID(k), payload)...)
	}
	return out
}

// storedAtLevel returns stored reports whose label has length k, sorted.
func (nd *Node) storedAtLevel(k int) []labelVal {
	keys := make([]string, 0, len(nd.vals))
	for key := range nd.vals {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []labelVal
	for _, key := range keys {
		path := parseKey(key)
		if len(path) == k {
			out = append(out, labelVal{Path: path, Val: nd.vals[key]})
		}
	}
	return out
}

func parseKey(key string) []graph.NodeID {
	parts := strings.Split(key, ",")
	out := make([]graph.NodeID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil
		}
		out = append(out, graph.NodeID(v))
	}
	return out
}

// harvest consumes the relay majorities of EIG round k and updates the
// tree. Invalid or missing reports are simply not stored; resolve treats
// them as the default value.
func (nd *Node) harvest(k int) {
	if nd.harvested[k] {
		return
	}
	nd.harvested[k] = true
	for _, p := range nd.participants {
		if p == nd.self {
			continue
		}
		raw, ok := nd.router.Majority(p, msgID(k))
		if !ok {
			continue
		}
		msg, err := unmarshalRound(raw)
		if err != nil || msg.K != k {
			continue
		}
		for _, lv := range msg.Reports {
			if !nd.validLabel(lv.Path, k, p) {
				continue
			}
			// Round 0 carries the general's own label [g]; later rounds
			// extend the reported label by the reporting sender.
			stored := lv.Path
			if k > 0 {
				stored = append(append([]graph.NodeID(nil), lv.Path...), p)
			}
			key := labelKey(stored)
			if _, dup := nd.vals[key]; !dup {
				nd.vals[key] = lv.Val
			}
		}
	}
	// Self-report: val(alpha . self) = val(alpha) for labels of length k+1
	// ending at self (a node trusts what it already knows).
	for _, lv := range nd.storedAtLevel(k + 1) {
		if containsNode(lv.Path, nd.self) {
			continue
		}
		ext := append(append([]graph.NodeID(nil), lv.Path...), nd.self)
		key := labelKey(ext)
		if _, dup := nd.vals[key]; !dup {
			nd.vals[key] = lv.Val
		}
	}
}

// validLabel checks an incoming report's label. Round-0 reports carry the
// general's own single-element label; round-k (k >= 1) reports from p carry
// labels of length k over distinct participants, not containing p.
func (nd *Node) validLabel(path []graph.NodeID, k int, from graph.NodeID) bool {
	if k == 0 {
		return len(path) == 1 && path[0] == from
	}
	if len(path) != k {
		return false
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range path {
		if !nd.inP[v] || seen[v] {
			return false
		}
		seen[v] = true
	}
	return !seen[from]
}

func containsNode(path []graph.NodeID, v graph.NodeID) bool {
	for _, p := range path {
		if p == v {
			return true
		}
	}
	return false
}

// Decide returns the agreed value for the given general, after all rounds
// completed (call Finish first if the driver added slack rounds). The nil
// default is returned when the general never delivered anything decodable.
func (nd *Node) Decide(general graph.NodeID) []byte {
	if !nd.inP[general] {
		return nil
	}
	return nd.resolve([]graph.NodeID{general})
}

// resolve implements the recursive EIG decision rule: leaves return their
// stored value; interior labels return the strict majority of their
// children's resolved values, defaulting to nil.
func (nd *Node) resolve(label []graph.NodeID) []byte {
	if len(label) == nd.t+1 {
		return nd.vals[labelKey(label)]
	}
	counts := map[string]int{}
	children := 0
	for _, q := range nd.participants {
		if containsNode(label, q) {
			continue
		}
		children++
		child := nd.resolve(append(append([]graph.NodeID(nil), label...), q))
		counts[string(child)]++
	}
	if children == 0 {
		return nd.vals[labelKey(label)]
	}
	keys := make([]string, 0, len(counts))
	for s := range counts {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, s := range keys {
		if counts[s]*2 > children {
			if s == "" {
				return nil
			}
			return []byte(s)
		}
	}
	return nil
}
