package bb

import (
	"testing"

	"nab/internal/graph"
	"nab/internal/relay"
	"nab/internal/sim"
)

func completeBi(n int, c int64) *graph.Directed {
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i != j {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), c)
			}
		}
	}
	return g
}

// runEIG executes a full simultaneous EIG over the graph. values maps each
// node to the value it broadcasts as general; byz maps faulty nodes to
// their process factory. Returns the honest nodes' EIG states.
func runEIG(t *testing.T, g *graph.Directed, f int, tol int, values map[graph.NodeID][]byte, byz map[graph.NodeID]func(*relay.Table) sim.Process) map[graph.NodeID]*Node {
	t.Helper()
	tab, err := relay.NewTable(g, 2*f+1)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(g)
	nodes := map[graph.NodeID]*Node{}
	participants := g.Nodes()
	for _, v := range participants {
		if mk, bad := byz[v]; bad {
			if err := e.SetProcess(v, mk(tab)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		router := relay.NewRouter(v, tab)
		nd, err := NewNode(v, participants, tol, router, values[v])
		if err != nil {
			t.Fatal(err)
		}
		nodes[v] = nd
		if err := e.SetProcess(v, nd); err != nil {
			t.Fatal(err)
		}
	}
	var rounds int
	for _, nd := range nodes {
		rounds = nd.Rounds()
		break
	}
	if _, err := e.RunPhase("eig", rounds); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		nd.Finish()
	}
	return nodes
}

func TestNewNodeValidation(t *testing.T) {
	g := completeBi(4, 1)
	tab, err := relay.NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := relay.NewRouter(1, tab)
	parts := g.Nodes()
	if _, err := NewNode(1, parts, -1, r, nil); err == nil {
		t.Error("negative t: expected error")
	}
	if _, err := NewNode(1, parts, 2, r, nil); err == nil {
		t.Error("4 participants with t=2: expected error")
	}
	if _, err := NewNode(99, parts, 1, r, nil); err == nil {
		t.Error("self not participant: expected error")
	}
}

func TestAllHonestAgreement(t *testing.T) {
	g := completeBi(4, 2)
	values := map[graph.NodeID][]byte{
		1: []byte("alpha"), 2: []byte("beta"), 3: []byte("gamma"), 4: []byte("delta"),
	}
	nodes := runEIG(t, g, 1, 1, values, nil)
	for _, nd := range nodes {
		for g2, want := range values {
			got := nd.Decide(g2)
			if string(got) != string(want) {
				t.Errorf("node %d decides %q for general %d, want %q", nd.self, got, g2, want)
			}
		}
	}
	// Unknown general decides nil.
	for _, nd := range nodes {
		if nd.Decide(99) != nil {
			t.Error("unknown general should decide nil")
		}
		break
	}
}

// equivocatingGeneral sends different round-0 values to different peers and
// behaves honestly afterwards (worst case for validity of others).
func equivocatingGeneral(self graph.NodeID, participants []graph.NodeID, tol int) func(*relay.Table) sim.Process {
	return func(tab *relay.Table) sim.Process {
		router := relay.NewRouter(self, tab)
		nd, err := NewNode(self, participants, tol, router, []byte("X"))
		if err != nil {
			panic(err)
		}
		return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := nd.Step(round, inbox)
			if round == 0 {
				// Rewrite the round-0 payload per destination: half get "X",
				// half get "Y".
				for i := range out {
					pkt, ok := out[i].Body.(relay.Packet)
					if !ok || pkt.MsgID != msgID(0) {
						continue
					}
					if pkt.Dest%2 == 0 {
						msg, err := unmarshalRound(pkt.Payload)
						if err != nil {
							continue
						}
						for j := range msg.Reports {
							msg.Reports[j].Val = []byte("Y")
						}
						raw := marshalRound(msg)
						pkt.Payload = raw
						out[i].Body = pkt
						out[i].Bits = int64(len(raw)) * 8
					}
				}
			}
			return out
		})
	}
}

func TestAgreementUnderEquivocatingGeneral(t *testing.T) {
	// n=4, f=1: the faulty general sends X to odd nodes and Y to even
	// nodes. All honest nodes must still agree on SOME common value for it.
	g := completeBi(4, 2)
	participants := g.Nodes()
	values := map[graph.NodeID][]byte{1: []byte("one"), 2: []byte("two"), 4: []byte("four")}
	byz := map[graph.NodeID]func(*relay.Table) sim.Process{
		3: equivocatingGeneral(3, participants, 1),
	}
	nodes := runEIG(t, g, 1, 1, values, byz)
	var agreed *string
	for _, nd := range nodes {
		got := string(nd.Decide(3))
		if agreed == nil {
			agreed = &got
		} else if got != *agreed {
			t.Fatalf("agreement violated: %q vs %q", got, *agreed)
		}
	}
	// Validity for honest generals must be unaffected.
	for _, nd := range nodes {
		for gen, want := range values {
			if got := nd.Decide(gen); string(got) != string(want) {
				t.Errorf("node %d decides %q for honest general %d, want %q", nd.self, got, gen, want)
			}
		}
	}
}

// lyingRelayer behaves honestly as general but lies in later rounds about
// what it heard from others.
func lyingRelayer(self graph.NodeID, participants []graph.NodeID, tol int) func(*relay.Table) sim.Process {
	return func(tab *relay.Table) sim.Process {
		router := relay.NewRouter(self, tab)
		nd, err := NewNode(self, participants, tol, router, []byte("honest-looking"))
		if err != nil {
			panic(err)
		}
		return sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := nd.Step(round, inbox)
			for i := range out {
				pkt, ok := out[i].Body.(relay.Packet)
				if !ok || pkt.MsgID == msgID(0) {
					continue
				}
				msg, err := unmarshalRound(pkt.Payload)
				if err != nil {
					continue
				}
				for j := range msg.Reports {
					msg.Reports[j].Val = []byte("poison")
				}
				raw := marshalRound(msg)
				pkt.Payload = raw
				out[i].Body = pkt
				out[i].Bits = int64(len(raw)) * 8
			}
			return out
		})
	}
}

func TestValidityUnderLyingRelayer(t *testing.T) {
	// Honest generals' values must survive a relayer that poisons every
	// second-round report.
	g := completeBi(4, 2)
	participants := g.Nodes()
	values := map[graph.NodeID][]byte{1: []byte("v1"), 3: []byte("v3"), 4: []byte("v4")}
	byz := map[graph.NodeID]func(*relay.Table) sim.Process{
		2: lyingRelayer(2, participants, 1),
	}
	nodes := runEIG(t, g, 1, 1, values, byz)
	for _, nd := range nodes {
		for gen, want := range values {
			if got := nd.Decide(gen); string(got) != string(want) {
				t.Errorf("node %d decides %q for general %d, want %q", nd.self, got, gen, want)
			}
		}
	}
}

func TestSilentGeneralAgreesOnDefault(t *testing.T) {
	g := completeBi(4, 2)
	values := map[graph.NodeID][]byte{1: []byte("a"), 2: []byte("b"), 3: []byte("c")}
	byz := map[graph.NodeID]func(*relay.Table) sim.Process{
		4: func(*relay.Table) sim.Process { return sim.Silent },
	}
	nodes := runEIG(t, g, 1, 1, values, byz)
	for _, nd := range nodes {
		if got := nd.Decide(4); got != nil {
			t.Errorf("node %d decides %q for silent general, want nil default", nd.self, got)
		}
	}
}

func TestSevenNodesTwoFaults(t *testing.T) {
	// n=7, f=2: equivocator + silent node simultaneously.
	g := completeBi(7, 2)
	participants := g.Nodes()
	values := map[graph.NodeID][]byte{}
	for _, v := range []graph.NodeID{1, 2, 4, 6, 7} {
		values[v] = []byte{byte('a' + v)}
	}
	byz := map[graph.NodeID]func(*relay.Table) sim.Process{
		3: equivocatingGeneral(3, participants, 2),
		5: func(*relay.Table) sim.Process { return sim.Silent },
	}
	nodes := runEIG(t, g, 2, 2, values, byz)
	// Agreement on both faulty generals, validity for honest ones.
	var d3, d5 *string
	for _, nd := range nodes {
		g3, g5 := string(nd.Decide(3)), string(nd.Decide(5))
		if d3 == nil {
			d3, d5 = &g3, &g5
		} else if g3 != *d3 || g5 != *d5 {
			t.Fatalf("agreement violated: node %d has (%q,%q) vs (%q,%q)", nd.self, g3, g5, *d3, *d5)
		}
		for gen, want := range values {
			if got := nd.Decide(gen); string(got) != string(want) {
				t.Errorf("node %d: general %d: got %q want %q", nd.self, gen, got, want)
			}
		}
	}
}

func TestToleranceZeroFastPath(t *testing.T) {
	// t=0 (all faults already identified elsewhere): single round.
	g := completeBi(3, 2)
	values := map[graph.NodeID][]byte{1: []byte("x"), 2: []byte("y"), 3: []byte("z")}
	nodes := runEIG(t, g, 0, 0, values, nil)
	for _, nd := range nodes {
		for gen, want := range values {
			if got := nd.Decide(gen); string(got) != string(want) {
				t.Errorf("node %d: general %d: got %q want %q", nd.self, gen, got, want)
			}
		}
	}
}

func TestLabelKeyRoundTrip(t *testing.T) {
	path := []graph.NodeID{3, 1, 4}
	back := parseKey(labelKey(path))
	if len(back) != 3 || back[0] != 3 || back[1] != 1 || back[2] != 4 {
		t.Errorf("round trip failed: %v", back)
	}
	if parseKey("not,a,number") != nil {
		t.Error("parseKey should reject garbage")
	}
}

func TestValidLabelRules(t *testing.T) {
	g := completeBi(4, 1)
	tab, err := relay.NewTable(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNode(1, g.Nodes(), 1, relay.NewRouter(1, tab), nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path []graph.NodeID
		k    int
		from graph.NodeID
		want bool
	}{
		{[]graph.NodeID{2}, 0, 2, true},
		{[]graph.NodeID{3}, 0, 2, false},     // round 0 must be self-label
		{[]graph.NodeID{2, 3}, 0, 2, false},  // wrong length
		{[]graph.NodeID{2}, 1, 3, true},      // round 1 label of length 1
		{[]graph.NodeID{2}, 1, 2, false},     // sender in label
		{[]graph.NodeID{2, 2}, 2, 3, false},  // duplicate
		{[]graph.NodeID{2, 99}, 2, 3, false}, // non-participant
		{[]graph.NodeID{2, 4}, 2, 3, true},
		{[]graph.NodeID{2, 4}, 1, 3, false}, // wrong length for round
	}
	for i, c := range cases {
		if got := nd.validLabel(c.path, c.k, c.from); got != c.want {
			t.Errorf("case %d: validLabel(%v,%d,%d) = %v, want %v", i, c.path, c.k, c.from, got, c.want)
		}
	}
}

func BenchmarkEIG7(b *testing.B) {
	g := completeBi(7, 2)
	tab, err := relay.NewTable(g, 5)
	if err != nil {
		b.Fatal(err)
	}
	participants := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.New(g)
		e.SetRecording(false)
		var sample *Node
		for _, v := range participants {
			router := relay.NewRouter(v, tab)
			nd, err := NewNode(v, participants, 2, router, []byte{byte(v)})
			if err != nil {
				b.Fatal(err)
			}
			if sample == nil {
				sample = nd
			}
			if err := e.SetProcess(v, nd); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.RunPhase("eig", sample.Rounds()); err != nil {
			b.Fatal(err)
		}
	}
}
