package topo

import (
	"math/rand"
	"testing"

	"nab/internal/graph"
)

func TestFig1aPaperNumbers(t *testing.T) {
	g := Fig1a()
	if g.NumNodes() != 4 || g.HasEdge(2, 4) || g.HasEdge(4, 2) {
		t.Fatal("Fig1a shape wrong")
	}
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 2 {
		t.Errorf("gamma = %d, want 2", gamma)
	}
	mc3, err := g.MinCut(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mc3 != 3 {
		t.Errorf("MINCUT(1,3) = %d, want 3", mc3)
	}
}

func TestFig1bRemovesDispute(t *testing.T) {
	g := Fig1b()
	if g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Error("dispute edges still present")
	}
	if !g.HasEdge(1, 2) {
		t.Error("unrelated edge removed")
	}
}

func TestFig2aSupportsTwoTrees(t *testing.T) {
	g := Fig2a()
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 2 {
		t.Errorf("gamma = %d, want 2", gamma)
	}
	if g.Cap(1, 2) != 2 {
		t.Errorf("cap(1,2) = %d, want 2", g.Cap(1, 2))
	}
}

func TestCompleteBi(t *testing.T) {
	g := CompleteBi(5, 3)
	if g.NumNodes() != 5 || g.NumEdges() != 20 {
		t.Errorf("K5: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Cap(2, 5) != 3 {
		t.Error("capacity wrong")
	}
	k, err := g.VertexConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("K5 connectivity = %d, want 4", k)
	}
}

func TestCirculant(t *testing.T) {
	g, err := Circulant(8, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// C8(1,2) is 4-regular in each direction.
	for _, v := range g.Nodes() {
		if len(g.OutEdges(v)) != 4 || len(g.InEdges(v)) != 4 {
			t.Errorf("node %d degree wrong", v)
		}
	}
	k, err := g.VertexConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("C8(1,2) connectivity = %d, want 4", k)
	}
	// Validation.
	if _, err := Circulant(2, 1, 1); err == nil {
		t.Error("n=2: expected error")
	}
	if _, err := Circulant(8, 1); err == nil {
		t.Error("no offsets: expected error")
	}
	if _, err := Circulant(8, 1, 4); err == nil {
		t.Error("offset n/2: expected error")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g, err := RandomConnected(rng, 7, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		k, err := g.VertexConnectivity()
		if err != nil {
			t.Fatal(err)
		}
		if k < 3 {
			t.Errorf("trial %d: connectivity %d < 3", trial, k)
		}
		for _, e := range g.Edges() {
			if e.Cap < 1 || e.Cap > 4 {
				t.Errorf("capacity %d out of range", e.Cap)
			}
		}
	}
	if _, err := RandomConnected(rng, 4, 0, 1); err == nil {
		t.Error("minConn=0: expected error")
	}
	if _, err := RandomConnected(rng, 4, 4, 1); err == nil {
		t.Error("minConn >= n: expected error")
	}
	if _, err := RandomConnected(rng, 4, 3, 1); err == nil {
		t.Error("n too small for connectivity: expected error")
	}
}

func TestHeterogeneous(t *testing.T) {
	g, err := Heterogeneous(5, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap(1, 2) != 8 || g.Cap(1, 4) != 1 || g.Cap(4, 5) != 1 {
		t.Error("capacity assignment wrong")
	}
	if _, err := Heterogeneous(5, 6, 8, 1); err == nil {
		t.Error("fatNodes > n: expected error")
	}
	if _, err := Heterogeneous(5, 3, 1, 8); err == nil {
		t.Error("fat < thin: expected error")
	}
}

func TestOneThinLink(t *testing.T) {
	g, err := OneThinLink(5, 4, 5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap(4, 5) != 1 || g.Cap(5, 4) != 1 {
		t.Error("thin link wrong")
	}
	if g.Cap(1, 2) != 16 || g.Cap(1, 4) != 16 {
		t.Error("fat links wrong")
	}
	// Broadcast mincut grows with fat capacity despite the thin link.
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 3*16+1 {
		t.Errorf("gamma = %d, want 49", gamma)
	}
	if _, err := OneThinLink(5, 4, 4, 16, 1); err == nil {
		t.Error("same endpoints: expected error")
	}
	if _, err := OneThinLink(5, 4, 5, 1, 16); err == nil {
		t.Error("fat < thin: expected error")
	}
	if _, err := OneThinLink(5, 8, 9, 16, 1); err == nil {
		t.Error("thin pair outside graph: expected error")
	}
}

func TestGraphsHaveNodeOne(t *testing.T) {
	// Every generator numbers nodes from 1 (the paper's source).
	graphs := []*graph.Directed{Fig1a(), Fig1b(), Fig2a(), CompleteBi(4, 1)}
	circ, err := Circulant(6, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, circ)
	for i, g := range graphs {
		if !g.HasNode(1) {
			t.Errorf("graph %d lacks node 1", i)
		}
	}
}
