// Package topo builds the network topologies used across examples, tests
// and benchmarks: the paper's worked-example graphs (reconstructed from the
// numbers stated in the text, since the figures are not reproduced in it),
// cliques, circulants (for multi-hop pipelining experiments), random
// networks with guaranteed connectivity, and heterogeneous-capacity WANs
// (the intro's motivation for network awareness).
package topo

import (
	"fmt"
	"math/rand"

	"nab/internal/graph"
)

// Fig1a reconstructs the paper's Figure 1(a): K4 minus the 2-4 edge with
// unit bidirectional links. It satisfies every number the paper states:
// MINCUT(G,1,2) = MINCUT(G,1,4) = 2, MINCUT(G,1,3) = 3 (so gamma = 2), no
// edge between nodes 2 and 4, and after the 2-3 dispute U_k = 2 with
// Omega_k = {{1,2,4}, {1,3,4}}.
func Fig1a() *graph.Directed {
	g := graph.NewDirected()
	for _, pair := range [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 1); err != nil {
			panic(err) // static topology; cannot fail
		}
	}
	return g
}

// Fig1b returns the paper's Figure 1(b): Fig1a after nodes 2 and 3 have
// been found in dispute (their edges removed).
func Fig1b() *graph.Directed {
	g := Fig1a()
	g.RemoveBetween(2, 3)
	return g
}

// Fig2a reconstructs the paper's Figure 2(a): a 4-node directed graph whose
// numbers-next-to-edges include capacity 2 on link (1,2), supporting two
// unit-capacity spanning arborescences rooted at node 1 whose combined
// usage of (1,2) is exactly its capacity.
func Fig2a() *graph.Directed {
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(1, 4, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(2, 4, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(4, 3, 1)
	return g
}

// CompleteBi returns the complete bidirectional graph on n nodes (ids
// 1..n) with uniform link capacity c.
func CompleteBi(n int, c int64) *graph.Directed {
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i != j {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), c)
			}
		}
	}
	return g
}

// Circulant returns the bidirectional circulant graph C_n(offsets...) with
// uniform capacity c: node i links to i+d and i-d (mod n) for each offset
// d. With offsets 1..k it has vertex connectivity 2k and diameter ~n/(2k),
// giving the multi-hop topologies the pipelining analysis (Appendix D)
// is about.
func Circulant(n int, c int64, offsets ...int) (*graph.Directed, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: circulant needs n >= 3, got %d", n)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("topo: circulant needs at least one offset")
	}
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for _, d := range offsets {
		if d <= 0 || 2*d >= n {
			return nil, fmt.Errorf("topo: offset %d out of range (0, %d)", d, (n+1)/2)
		}
		for i := 1; i <= n; i++ {
			j := (i-1+d)%n + 1
			if !g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), c)
			}
			if !g.HasEdge(graph.NodeID(j), graph.NodeID(i)) {
				g.MustAddEdge(graph.NodeID(j), graph.NodeID(i), c)
			}
		}
	}
	return g, nil
}

// RandomConnected returns a random bidirectional network on n nodes with
// vertex connectivity at least minConn and capacities in [1, maxCap],
// seeded deterministically. It layers random chords over a circulant
// skeleton that already guarantees the connectivity bound.
func RandomConnected(rng *rand.Rand, n, minConn int, maxCap int64) (*graph.Directed, error) {
	if minConn < 1 || minConn >= n {
		return nil, fmt.Errorf("topo: minConn = %d out of range [1, %d)", minConn, n)
	}
	need := (minConn + 1) / 2 // circulant with offsets 1..need has connectivity 2*need >= minConn
	if 2*need >= n {
		return nil, fmt.Errorf("topo: n = %d too small for connectivity %d", n, minConn)
	}
	offsets := make([]int, need)
	for i := range offsets {
		offsets[i] = i + 1
	}
	g, err := Circulant(n, 1, offsets...)
	if err != nil {
		return nil, err
	}
	// Re-randomize skeleton capacities and add chords.
	out := graph.NewDirected()
	for _, e := range g.Edges() {
		out.MustAddEdge(e.From, e.To, 1+rng.Int63n(maxCap))
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j || out.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				continue
			}
			if rng.Intn(3) == 0 {
				out.MustAddEdge(graph.NodeID(i), graph.NodeID(j), 1+rng.Int63n(maxCap))
			}
		}
	}
	return out, nil
}

// OneThinLink returns the complete bidirectional graph on n nodes with
// capacity fatCap everywhere except the (thinA, thinB) pair, which gets
// thinCap in both directions. As fatCap grows, every broadcast mincut and
// pairwise subset mincut grows with it, so NAB's throughput scales up —
// while any capacity-oblivious algorithm whose fixed routes cross the thin
// link stays pinned to thinCap. This realizes the intro's "arbitrarily
// worse than optimal" comparison (experiment E7).
func OneThinLink(n int, thinA, thinB graph.NodeID, fatCap, thinCap int64) (*graph.Directed, error) {
	if thinA == thinB {
		return nil, fmt.Errorf("topo: thin pair must be distinct")
	}
	if fatCap < thinCap {
		return nil, fmt.Errorf("topo: fatCap %d < thinCap %d", fatCap, thinCap)
	}
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			c := fatCap
			a, b := graph.NodeID(i), graph.NodeID(j)
			if (a == thinA && b == thinB) || (a == thinB && b == thinA) {
				c = thinCap
			}
			g.MustAddEdge(a, b, c)
		}
	}
	if !g.HasNode(thinA) || !g.HasNode(thinB) {
		return nil, fmt.Errorf("topo: thin pair (%d,%d) outside 1..%d", thinA, thinB, n)
	}
	return g, nil
}

// Heterogeneous returns a complete bidirectional network where links among
// the first fatNodes nodes (a well-provisioned core including the source)
// have capacity fatCap and every other link has capacity thinCap. The
// capacity-oblivious baselines bottleneck on the thin links while NAB
// routes around them — the intro's "arbitrarily worse than optimal"
// scenario, swept in experiment E7.
func Heterogeneous(n, fatNodes int, fatCap, thinCap int64) (*graph.Directed, error) {
	if fatNodes < 0 || fatNodes > n {
		return nil, fmt.Errorf("topo: fatNodes = %d out of range [0, %d]", fatNodes, n)
	}
	if fatCap < thinCap {
		return nil, fmt.Errorf("topo: fatCap %d < thinCap %d", fatCap, thinCap)
	}
	g := graph.NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			c := thinCap
			if i <= fatNodes && j <= fatNodes {
				c = fatCap
			}
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), c)
		}
	}
	return g, nil
}
