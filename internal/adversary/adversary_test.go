package adversary

import (
	"math/rand"
	"testing"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
)

func chunk(bits int, fill byte) core.BitChunk {
	c := core.BitChunk{Bytes: make([]byte, (bits+7)/8), BitLen: bits}
	for i := range c.Bytes {
		c.Bytes[i] = fill
	}
	return c
}

func TestCrashSilentEverywhere(t *testing.T) {
	a := Crash{}
	for _, phase := range []string{"phase1", "equality", "flags", "claims"} {
		if !a.SilentIn(phase) {
			t.Errorf("Crash participates in %s", phase)
		}
	}
}

func TestBlockFlipper(t *testing.T) {
	a := &BlockFlipper{}
	in := chunk(16, 0x00)
	out := a.CorruptBlock(0, 2, in)
	if out.Bytes[0] != 0x80 {
		t.Errorf("first bit not flipped: %x", out.Bytes)
	}
	if in.Bytes[0] != 0x00 {
		t.Error("input mutated in place")
	}
	// Empty blocks pass through.
	empty := a.CorruptBlock(0, 2, core.BitChunk{})
	if empty.BitLen != 0 {
		t.Error("empty block mangled")
	}
	// Victim targeting.
	targeted := &BlockFlipper{Victims: map[graph.NodeID]bool{3: true}}
	if got := targeted.CorruptBlock(0, 2, in); got.Bytes[0] != 0 {
		t.Error("non-victim corrupted")
	}
	if got := targeted.CorruptBlock(0, 3, in); got.Bytes[0] != 0x80 {
		t.Error("victim not corrupted")
	}
}

func TestCodedCorruptor(t *testing.T) {
	a := &CodedCorruptor{Delta: 0x5}
	in := []gf.Elem{1, 2, 3}
	out := a.CorruptCoded(2, in)
	for i := range in {
		if out[i] != in[i]^0x5 {
			t.Errorf("symbol %d: %d", i, out[i])
		}
	}
	// Zero delta defaults to 1.
	d := &CodedCorruptor{}
	if got := d.CorruptCoded(2, []gf.Elem{7}); got[0] != 6 {
		t.Errorf("default delta: %d", got[0])
	}
	// Victim targeting leaves others alone.
	tg := &CodedCorruptor{Victims: map[graph.NodeID]bool{9: true}}
	if got := tg.CorruptCoded(2, []gf.Elem{7}); got[0] != 7 {
		t.Error("non-victim corrupted")
	}
}

func TestFlagAdversaries(t *testing.T) {
	if !(FalseAlarm{}).OverrideFlag(false) {
		t.Error("FalseAlarm should announce MISMATCH")
	}
	if (Suppressor{}).OverrideFlag(true) {
		t.Error("Suppressor should announce NULL")
	}
}

func TestClaimLiar(t *testing.T) {
	silent := &ClaimLiar{}
	if silent.CorruptClaims(&core.Claims{Node: 1}) != nil {
		t.Error("nil Rewrite should drop claims")
	}
	rewriter := &ClaimLiar{Rewrite: func(c *core.Claims) *core.Claims {
		c.Flag = !c.Flag
		return c
	}}
	out := rewriter.CorruptClaims(&core.Claims{Node: 1, Flag: false})
	if out == nil || !out.Flag {
		t.Error("rewrite not applied")
	}
	if (MuteClaims{}).CorruptClaims(&core.Claims{}) != nil {
		t.Error("MuteClaims should drop claims")
	}
}

func TestRandomAdversaryDeterministic(t *testing.T) {
	a1 := &Random{RNG: rand.New(rand.NewSource(5))}
	a2 := &Random{RNG: rand.New(rand.NewSource(5))}
	in := chunk(32, 0xAA)
	for i := 0; i < 50; i++ {
		b1 := a1.CorruptBlock(0, 2, in)
		b2 := a2.CorruptBlock(0, 2, in)
		if b1.BitLen != b2.BitLen || string(b1.Bytes) != string(b2.Bytes) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestHonestDefaults(t *testing.T) {
	// The embedded Honest passes everything through for hooks the
	// strategies don't override.
	bf := &BlockFlipper{}
	if bf.OverrideFlag(true) != true || bf.OverrideFlag(false) != false {
		t.Error("BlockFlipper should not touch flags")
	}
	if bf.SilentIn("phase1") {
		t.Error("BlockFlipper should participate")
	}
	c := &core.Claims{Node: 3}
	if bf.CorruptClaims(c) != c {
		t.Error("BlockFlipper should not touch claims")
	}
}
