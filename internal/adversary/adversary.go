// Package adversary provides concrete Byzantine strategies for NAB's fault
// model: Phase-1 corruption and source equivocation, equality-check symbol
// corruption, false-flag announcements, transcript lies, and crashes.
// Every strategy embeds core.Honest and overrides only the hooks it
// attacks, so composition stays explicit.
package adversary

import (
	"math/rand"

	"nab/internal/core"
	"nab/internal/gf"
	"nab/internal/graph"
)

// Crash never sends anything in any phase (fail-stop).
type Crash struct{ core.Honest }

var _ core.Adversary = Crash{}

// SilentIn reports every phase silent.
func (Crash) SilentIn(string) bool { return true }

// BlockFlipper corrupts Phase-1 blocks forwarded to the victims by flipping
// their first bit. With Victims nil, every child is attacked. A faulty
// source with this strategy equivocates: different children receive
// different values.
type BlockFlipper struct {
	core.Honest
	Victims map[graph.NodeID]bool // nil = everyone
}

var _ core.Adversary = (*BlockFlipper)(nil)

// CorruptBlock flips the leading bit of the block for targeted children.
func (b *BlockFlipper) CorruptBlock(_ int, to graph.NodeID, block core.BitChunk) core.BitChunk {
	if b.Victims != nil && !b.Victims[to] {
		return block
	}
	if block.BitLen == 0 || len(block.Bytes) == 0 {
		return block
	}
	out := core.BitChunk{Bytes: append([]byte(nil), block.Bytes...), BitLen: block.BitLen}
	out.Bytes[0] ^= 0x80
	return out
}

// CodedCorruptor corrupts the equality-check symbols sent to the victims
// (XORing a constant into each symbol), attacking Phase 2's detection
// itself.
type CodedCorruptor struct {
	core.Honest
	Victims map[graph.NodeID]bool // nil = everyone
	Delta   gf.Elem               // 0 treated as 1
}

var _ core.Adversary = (*CodedCorruptor)(nil)

// CorruptCoded XORs Delta into every symbol for targeted receivers.
func (c *CodedCorruptor) CorruptCoded(to graph.NodeID, symbols []gf.Elem) []gf.Elem {
	if c.Victims != nil && !c.Victims[to] {
		return symbols
	}
	d := c.Delta
	if d == 0 {
		d = 1
	}
	out := make([]gf.Elem, len(symbols))
	for i, s := range symbols {
		out[i] = s ^ d
	}
	return out
}

// FalseAlarm always announces MISMATCH, forcing Phase 3 even when Phases 1
// and 2 were clean — the griefing attack whose cost the dispute-control
// bound f(f+1) caps.
type FalseAlarm struct{ core.Honest }

var _ core.Adversary = FalseAlarm{}

// OverrideFlag announces MISMATCH regardless of the honest computation.
func (FalseAlarm) OverrideFlag(bool) bool { return true }

// Suppressor always announces NULL, hiding mismatches it observed (safe for
// the protocol: the EC property only needs one fault-free detector).
type Suppressor struct{ core.Honest }

var _ core.Adversary = Suppressor{}

// OverrideFlag announces NULL regardless of the honest computation.
func (Suppressor) OverrideFlag(bool) bool { return false }

// ClaimLiar broadcasts dispute-control claims that deny responsibility: it
// reports its honest duties (as if it forwarded everything correctly),
// regardless of what it actually sent. Combined with BlockFlipper this
// yields the classic "he said / she said" dispute between the liar and its
// honest victims.
type ClaimLiar struct {
	core.Honest
	Rewrite func(*core.Claims) *core.Claims
}

var _ core.Adversary = (*ClaimLiar)(nil)

// CorruptClaims applies the rewrite (nil Rewrite = stay silent in Phase 3).
func (cl *ClaimLiar) CorruptClaims(c *core.Claims) *core.Claims {
	if cl.Rewrite == nil {
		return nil
	}
	return cl.Rewrite(c)
}

// MuteClaims participates everywhere but refuses to broadcast claims,
// guaranteeing identification in the audit.
type MuteClaims struct{ core.Honest }

var _ core.Adversary = MuteClaims{}

// CorruptClaims drops the transcript.
func (MuteClaims) CorruptClaims(*core.Claims) *core.Claims { return nil }

// Random flips coins for every decision, driven by a seeded RNG — the
// fuzzing adversary for correctness sweeps (E8).
//
// Set Seed (and leave RNG nil) for the instance-scoped form: every
// instance k draws from a fresh RNG derived from (Seed, k), so hook
// sequences are reproducible under pipelined speculation, barrier replays
// and multi-process clusters at any window. A non-nil RNG is the legacy
// shared-stream form, deterministic only under Window=1.
type Random struct {
	core.Honest
	RNG  *rand.Rand
	Seed int64
}

var _ core.Adversary = (*Random)(nil)
var _ core.InstanceScoped = (*Random)(nil)

// ForInstance implements core.InstanceScoped: with no shared RNG, each
// instance gets its own stream seeded by (Seed, k) via a splitmix64
// finalizer, so re-executions of instance k behave identically.
func (r *Random) ForInstance(k int) core.Adversary {
	if r.RNG != nil {
		return r // legacy shared-stream form
	}
	z := uint64(r.Seed) + uint64(k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Random{RNG: rand.New(rand.NewSource(int64(z ^ (z >> 31))))}
}

// rng returns the stream to draw from, lazily deriving the instance-0
// stream when a zero-value Random is used directly (callers should prefer
// ForInstance via the core executor).
func (r *Random) rng() *rand.Rand {
	if r.RNG == nil {
		r.RNG = rand.New(rand.NewSource(r.Seed))
	}
	return r.RNG
}

// CorruptBlock randomly flips one bit half the time.
func (r *Random) CorruptBlock(_ int, _ graph.NodeID, block core.BitChunk) core.BitChunk {
	if r.rng().Intn(2) == 0 || block.BitLen == 0 {
		return block
	}
	out := core.BitChunk{Bytes: append([]byte(nil), block.Bytes...), BitLen: block.BitLen}
	bit := r.rng().Intn(block.BitLen)
	out.Bytes[bit/8] ^= 1 << (7 - bit%8)
	return out
}

// CorruptCoded randomly perturbs one symbol a third of the time.
func (r *Random) CorruptCoded(_ graph.NodeID, symbols []gf.Elem) []gf.Elem {
	if len(symbols) == 0 || r.rng().Intn(3) != 0 {
		return symbols
	}
	out := append([]gf.Elem(nil), symbols...)
	out[r.rng().Intn(len(out))] ^= 1 + uint64(r.rng().Intn(7))
	return out
}

// OverrideFlag lies about the flag a quarter of the time.
func (r *Random) OverrideFlag(honest bool) bool {
	if r.rng().Intn(4) == 0 {
		return !honest
	}
	return honest
}

// SilentIn crashes out of a phase a tenth of the time.
func (r *Random) SilentIn(string) bool { return r.rng().Intn(10) == 0 }
