package graph

import (
	"fmt"
	"math"
)

// NodeDisjointPaths returns up to want internally-node-disjoint directed
// paths from s to t (each path a node sequence starting at s and ending at
// t). It uses unit-capacity node splitting so no two returned paths share an
// intermediate node; the direct edge s->t, if present, yields the
// single-hop path. Fewer than want paths are returned when the graph cannot
// support them; callers check len(result).
//
// This is the substrate for the paper's complete-graph emulation: with
// connectivity >= 2f+1 and at most f faults, sending a message along 2f+1
// node-disjoint paths and taking the majority at the receiver implements
// reliable end-to-end communication between fault-free nodes.
func (g *Directed) NodeDisjointPaths(s, t NodeID, want int) ([][]NodeID, error) {
	if !g.HasNode(s) || !g.HasNode(t) {
		return nil, fmt.Errorf("graph: path endpoints %d,%d not both present", s, t)
	}
	if s == t {
		return nil, fmt.Errorf("graph: path source equals sink (%d)", s)
	}
	if want <= 0 {
		return nil, fmt.Errorf("graph: want %d paths, must be positive", want)
	}

	// Split every node v into v_in -> v_out with capacity 1, except s and t
	// which get infinite internal capacity. Each original edge (u,v) becomes
	// u_out -> v_in with capacity 1 (a path uses an edge at most once).
	nodes := g.Nodes()
	ix := newIndexer(nodes)
	n := len(nodes)
	inOf := func(i int) int { return 2 * i }
	outOf := func(i int) int { return 2*i + 1 }
	fn := newFlowNet(2 * n)
	const inf = int64(math.MaxInt32)
	for i, v := range nodes {
		c := int64(1)
		if v == s || v == t {
			c = inf
		}
		fn.addArc(inOf(i), outOf(i), c)
	}
	type arcEdge struct {
		arc  int
		from NodeID
		to   NodeID
	}
	var arcs []arcEdge
	for _, e := range g.Edges() {
		id := fn.addArc(outOf(ix.idx[e.From]), inOf(ix.idx[e.To]), 1)
		arcs = append(arcs, arcEdge{arc: id, from: e.From, to: e.To})
	}
	// Limit total flow to want paths via a super-source arc.
	// Simpler: run full maxflow and trim.
	val := fn.maxflow(outOf(ix.idx[s]), inOf(ix.idx[t]))
	if val == 0 {
		return nil, nil
	}

	// Collect used edges and decompose into paths by walking from s.
	usedOut := map[NodeID][]NodeID{}
	for _, ae := range arcs {
		if fn.cap[ae.arc] == 0 { // saturated unit arc => used
			usedOut[ae.from] = append(usedOut[ae.from], ae.to)
		}
	}
	paths := make([][]NodeID, 0, val)
	for p := int64(0); p < val && len(paths) < want; p++ {
		path := []NodeID{s}
		cur := s
		for cur != t {
			outs := usedOut[cur]
			if len(outs) == 0 {
				return nil, fmt.Errorf("graph: internal error decomposing flow at node %d", cur)
			}
			next := outs[len(outs)-1]
			usedOut[cur] = outs[:len(outs)-1]
			path = append(path, next)
			cur = next
			if len(path) > g.NumNodes()+1 {
				return nil, fmt.Errorf("graph: internal error: path exceeds node count (cycle in flow)")
			}
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// VertexConnectivityPair returns the maximum number of internally
// node-disjoint paths from s to t (Menger's theorem).
func (g *Directed) VertexConnectivityPair(s, t NodeID) (int, error) {
	paths, err := g.NodeDisjointPaths(s, t, g.NumNodes()*g.NumNodes()+1)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}

// VertexConnectivity returns the minimum over all ordered vertex pairs of
// the internally node-disjoint path count. The paper requires this to be at
// least 2f+1 for Byzantine broadcast to exist.
func (g *Directed) VertexConnectivity() (int, error) {
	nodes := g.Nodes()
	if len(nodes) < 2 {
		return 0, fmt.Errorf("graph: connectivity needs at least 2 nodes")
	}
	best := math.MaxInt
	for _, s := range nodes {
		for _, t := range nodes {
			if s == t {
				continue
			}
			k, err := g.VertexConnectivityPair(s, t)
			if err != nil {
				return 0, err
			}
			if k < best {
				best = k
			}
		}
	}
	return best, nil
}

// DisjointPathsDecycled detects whether flow decomposition produced any
// cycle remnants; exposed for tests. A correct unit-capacity decomposition
// never needs it, it exists to make failures loud.
func validatePaths(paths [][]NodeID, s, t NodeID) error {
	seen := map[NodeID]int{}
	for pi, p := range paths {
		if len(p) < 2 || p[0] != s || p[len(p)-1] != t {
			return fmt.Errorf("graph: path %d malformed: %v", pi, p)
		}
		for _, v := range p[1 : len(p)-1] {
			if prev, dup := seen[v]; dup {
				return fmt.Errorf("graph: node %d shared by paths %d and %d", v, prev, pi)
			}
			seen[v] = pi
		}
	}
	return nil
}
