package graph

import (
	"fmt"
	"math"
	"sort"
)

// flowNet is a Dinic max-flow solver over an arbitrary arc list. It is built
// fresh per query; graphs at NAB scale are small so clarity wins.
type flowNet struct {
	n     int
	to    []int   // arc head
	cap   []int64 // residual capacity (arcs stored in pairs: i, i^1 reverse)
	head  [][]int // adjacency: node -> arc indices
	level []int
	iter  []int
}

func newFlowNet(n int) *flowNet {
	return &flowNet{n: n, head: make([][]int, n), level: make([]int, n), iter: make([]int, n)}
}

func (fn *flowNet) addArc(from, to int, c int64) int {
	id := len(fn.to)
	fn.to = append(fn.to, to, from)
	fn.cap = append(fn.cap, c, 0)
	fn.head[from] = append(fn.head[from], id)
	fn.head[to] = append(fn.head[to], id+1)
	return id
}

func (fn *flowNet) bfs(s, t int) bool {
	for i := range fn.level {
		fn.level[i] = -1
	}
	queue := make([]int, 0, fn.n)
	fn.level[s] = 0
	queue = append(queue, s)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range fn.head[v] {
			if fn.cap[id] > 0 && fn.level[fn.to[id]] < 0 {
				fn.level[fn.to[id]] = fn.level[v] + 1
				queue = append(queue, fn.to[id])
			}
		}
	}
	return fn.level[t] >= 0
}

func (fn *flowNet) dfs(v, t int, limit int64) int64 {
	if v == t {
		return limit
	}
	for ; fn.iter[v] < len(fn.head[v]); fn.iter[v]++ {
		id := fn.head[v][fn.iter[v]]
		w := fn.to[id]
		if fn.cap[id] <= 0 || fn.level[w] != fn.level[v]+1 {
			continue
		}
		pushed := fn.dfs(w, t, minI64(limit, fn.cap[id]))
		if pushed > 0 {
			fn.cap[id] -= pushed
			fn.cap[id^1] += pushed
			return pushed
		}
	}
	return 0
}

func (fn *flowNet) maxflow(s, t int) int64 {
	var flow int64
	for fn.bfs(s, t) {
		for i := range fn.iter {
			fn.iter[i] = 0
		}
		for {
			pushed := fn.dfs(s, t, math.MaxInt64)
			if pushed == 0 {
				break
			}
			flow += pushed
		}
	}
	return flow
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// indexer maps NodeIDs to dense ints.
type indexer struct {
	ids []NodeID
	idx map[NodeID]int
}

func newIndexer(nodes []NodeID) *indexer {
	ix := &indexer{ids: nodes, idx: make(map[NodeID]int, len(nodes))}
	for i, v := range nodes {
		ix.idx[v] = i
	}
	return ix
}

// MaxFlow returns the maximum s-t flow value in g. By the max-flow/min-cut
// theorem this equals MINCUT(g, s, t). An error is returned if either
// endpoint is missing or s == t.
func (g *Directed) MaxFlow(s, t NodeID) (int64, error) {
	if !g.HasNode(s) || !g.HasNode(t) {
		return 0, fmt.Errorf("graph: maxflow endpoints %d,%d not both present", s, t)
	}
	if s == t {
		return 0, fmt.Errorf("graph: maxflow source equals sink (%d)", s)
	}
	ix := newIndexer(g.Nodes())
	fn := newFlowNet(len(ix.ids))
	for _, e := range g.Edges() {
		fn.addArc(ix.idx[e.From], ix.idx[e.To], e.Cap)
	}
	return fn.maxflow(ix.idx[s], ix.idx[t]), nil
}

// MinCut is an alias for MaxFlow, named for readability at call sites that
// reason about cuts (MINCUT(G, s, t) in the paper).
func (g *Directed) MinCut(s, t NodeID) (int64, error) { return g.MaxFlow(s, t) }

// BroadcastMincut returns gamma = min over all other nodes j of
// MINCUT(g, src, j): the highest rate at which src can (unreliably)
// broadcast to every node, by Edmonds' theorem. An error is returned if any
// node is unreachable (mincut 0) so callers never divide by zero silently.
func (g *Directed) BroadcastMincut(src NodeID) (int64, error) {
	if !g.HasNode(src) {
		return 0, fmt.Errorf("graph: source %d not in graph", src)
	}
	best := int64(math.MaxInt64)
	for _, v := range g.Nodes() {
		if v == src {
			continue
		}
		mc, err := g.MaxFlow(src, v)
		if err != nil {
			return 0, err
		}
		if mc < best {
			best = mc
		}
	}
	if g.NumNodes() < 2 {
		return 0, fmt.Errorf("graph: broadcast mincut needs at least 2 nodes")
	}
	if best == 0 {
		return 0, fmt.Errorf("graph: some node unreachable from %d", src)
	}
	return best, nil
}

// MaxFlow returns the maximum flow between a and b treating each undirected
// edge as a pair of antiparallel arcs of the same capacity.
func (u *Undirected) MaxFlow(a, b NodeID) (int64, error) {
	if !u.HasNode(a) || !u.HasNode(b) {
		return 0, fmt.Errorf("graph: maxflow endpoints %d,%d not both present", a, b)
	}
	if a == b {
		return 0, fmt.Errorf("graph: maxflow source equals sink (%d)", a)
	}
	ix := newIndexer(u.Nodes())
	fn := newFlowNet(len(ix.ids))
	for _, e := range u.Edges() {
		fn.addArc(ix.idx[e.From], ix.idx[e.To], e.Cap)
		fn.addArc(ix.idx[e.To], ix.idx[e.From], e.Cap)
	}
	return fn.maxflow(ix.idx[a], ix.idx[b]), nil
}

// MinCut is an alias for MaxFlow on undirected graphs.
func (u *Undirected) MinCut(a, b NodeID) (int64, error) { return u.MaxFlow(a, b) }

// MinPairwiseMincut returns min over all vertex pairs {i,j} of
// MINCUT(u, i, j); this is U_H in the paper (via the undirected version of
// each candidate subgraph H). Returns 0 with an error when u is
// disconnected or has fewer than two nodes.
func (u *Undirected) MinPairwiseMincut() (int64, error) {
	nodes := u.Nodes()
	if len(nodes) < 2 {
		return 0, fmt.Errorf("graph: pairwise mincut needs at least 2 nodes")
	}
	best := int64(math.MaxInt64)
	// Global minimum pairwise mincut can be found with n-1 flows against a
	// fixed node: for any i, min_j MINCUT(i,j) over j != i realizes the
	// global min for some pair containing the overall argmin side... To stay
	// exact and simple at NAB scales we check pairs (nodes[0], v) for all v
	// plus all pairs — but the former is enough: the global minimum cut
	// separates nodes[0] from some vertex, so min over v of
	// MINCUT(nodes[0], v) equals the global minimum.
	for _, v := range nodes[1:] {
		mc, err := u.MaxFlow(nodes[0], v)
		if err != nil {
			return 0, err
		}
		if mc < best {
			best = mc
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("graph: graph is disconnected")
	}
	return best, nil
}

// MaxFlowAssignment returns the max s-t flow value together with the per-edge
// flow amounts, for flow decomposition (spanning-tree packing, disjoint
// paths). Flows are keyed by [2]NodeID{from,to}.
func (g *Directed) MaxFlowAssignment(s, t NodeID) (int64, map[[2]NodeID]int64, error) {
	if !g.HasNode(s) || !g.HasNode(t) {
		return 0, nil, fmt.Errorf("graph: maxflow endpoints %d,%d not both present", s, t)
	}
	if s == t {
		return 0, nil, fmt.Errorf("graph: maxflow source equals sink (%d)", s)
	}
	ix := newIndexer(g.Nodes())
	fn := newFlowNet(len(ix.ids))
	edges := g.Edges()
	arcIDs := make([]int, len(edges))
	for i, e := range edges {
		arcIDs[i] = fn.addArc(ix.idx[e.From], ix.idx[e.To], e.Cap)
	}
	val := fn.maxflow(ix.idx[s], ix.idx[t])
	flows := map[[2]NodeID]int64{}
	for i, e := range edges {
		used := e.Cap - fn.cap[arcIDs[i]]
		if used > 0 {
			flows[[2]NodeID{e.From, e.To}] = used
		}
	}
	return val, flows, nil
}

// ReachableFrom returns the set of nodes reachable from src (including src)
// following directed edges.
func (g *Directed) ReachableFrom(src NodeID) map[NodeID]struct{} {
	seen := map[NodeID]struct{}{}
	if !g.HasNode(src) {
		return seen
	}
	adj := map[NodeID][]NodeID{}
	for key := range g.caps {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	stack := []NodeID{src}
	seen[src] = struct{}{}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// SortedNodeSet converts a node set to a sorted slice, for deterministic
// iteration in algorithms and tests.
func SortedNodeSet(set map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
