package graph

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseDirected reads a directed graph from a simple text format: one edge
// per line as "from to capacity", '#' comments and blank lines ignored.
// A line "node v" declares an isolated vertex. Example:
//
//	# Fig. 1(a)
//	1 2 2
//	1 3 1
//	2 3 1
//
// Bidirectional links are written as two lines.
func ParseDirected(text string) (*Directed, error) {
	g := NewDirected()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "node" {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", lineNo, fields[1], err)
			}
			g.AddNode(NodeID(v))
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"from to cap\", got %q", lineNo, line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from %q: %w", lineNo, fields[0], err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to %q: %w", lineNo, fields[1], err)
		}
		c, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad capacity %q: %w", lineNo, fields[2], err)
		}
		if err := g.AddEdge(NodeID(from), NodeID(to), c); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	return g, nil
}

// Marshal renders g in the ParseDirected text format, deterministically.
func (g *Directed) Marshal() string {
	var sb strings.Builder
	edgeTouched := map[NodeID]bool{}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d %d\n", e.From, e.To, e.Cap)
		edgeTouched[e.From] = true
		edgeTouched[e.To] = true
	}
	for _, v := range g.Nodes() {
		if !edgeTouched[v] {
			fmt.Fprintf(&sb, "node %d\n", v)
		}
	}
	return sb.String()
}

// DOT renders g in Graphviz format with capacities as edge labels, for
// documentation and debugging.
func (g *Directed) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", name)
	for _, v := range g.Nodes() {
		fmt.Fprintf(&sb, "  %d;\n", v)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -> %d [label=%d];\n", e.From, e.To, e.Cap)
	}
	sb.WriteString("}\n")
	return sb.String()
}
