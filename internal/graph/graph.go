// Package graph implements capacitated directed and undirected graphs and
// the flow algorithms NAB's analysis is built on: Dinic max-flow/min-cut,
// per-source broadcast mincut (gamma), all-pairs undirected mincut (U),
// vertex connectivity and node-disjoint path extraction (for the 2f+1
// disjoint-path relay substrate).
//
// Graphs follow the paper's model: simple directed graphs with positive
// integer link capacities; the undirected version of a directed graph merges
// antiparallel edges by summing their capacities.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a vertex. The paper numbers nodes 1..n with node 1 the
// broadcast source, but any distinct ints work.
type NodeID int

// Edge is a directed capacitated link.
type Edge struct {
	From NodeID
	To   NodeID
	Cap  int64
}

// Directed is a simple directed graph with integer edge capacities.
// The zero value is an empty graph ready to use.
type Directed struct {
	nodes map[NodeID]struct{}
	caps  map[[2]NodeID]int64
}

// NewDirected returns an empty directed graph.
func NewDirected() *Directed {
	return &Directed{nodes: map[NodeID]struct{}{}, caps: map[[2]NodeID]int64{}}
}

func (g *Directed) ensure() {
	if g.nodes == nil {
		g.nodes = map[NodeID]struct{}{}
	}
	if g.caps == nil {
		g.caps = map[[2]NodeID]int64{}
	}
}

// AddNode inserts a vertex (no-op if present).
func (g *Directed) AddNode(v NodeID) {
	g.ensure()
	g.nodes[v] = struct{}{}
}

// AddEdge inserts a directed edge with the given capacity, adding endpoints
// as needed. It returns an error for non-positive capacity, self-loops, or
// duplicate edges (the model is a simple graph).
func (g *Directed) AddEdge(from, to NodeID, capacity int64) error {
	g.ensure()
	if capacity <= 0 {
		return fmt.Errorf("graph: edge (%d,%d) capacity %d must be positive", from, to, capacity)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop at node %d", from)
	}
	key := [2]NodeID{from, to}
	if _, dup := g.caps[key]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", from, to)
	}
	g.nodes[from] = struct{}{}
	g.nodes[to] = struct{}{}
	g.caps[key] = capacity
	return nil
}

// MustAddEdge is AddEdge, panicking on error; for literal topologies in
// tests and examples.
func (g *Directed) MustAddEdge(from, to NodeID, capacity int64) {
	if err := g.AddEdge(from, to, capacity); err != nil {
		panic(err)
	}
}

// AddBiEdge adds edges in both directions with the same capacity.
func (g *Directed) AddBiEdge(a, b NodeID, capacity int64) error {
	if err := g.AddEdge(a, b, capacity); err != nil {
		return err
	}
	return g.AddEdge(b, a, capacity)
}

// RemoveEdge deletes the directed edge (from, to) if present.
func (g *Directed) RemoveEdge(from, to NodeID) {
	delete(g.caps, [2]NodeID{from, to})
}

// RemoveBetween deletes both directed edges between a and b, matching the
// paper's dispute-control edge removal (pairs in dispute lose their links).
func (g *Directed) RemoveBetween(a, b NodeID) {
	g.RemoveEdge(a, b)
	g.RemoveEdge(b, a)
}

// RemoveNode deletes a vertex and all incident edges.
func (g *Directed) RemoveNode(v NodeID) {
	if g.nodes == nil {
		return
	}
	delete(g.nodes, v)
	for key := range g.caps {
		if key[0] == v || key[1] == v {
			delete(g.caps, key)
		}
	}
}

// HasNode reports whether v is a vertex of g.
func (g *Directed) HasNode(v NodeID) bool {
	_, ok := g.nodes[v]
	return ok
}

// Cap returns the capacity of edge (from,to), or 0 if absent.
func (g *Directed) Cap(from, to NodeID) int64 {
	return g.caps[[2]NodeID{from, to}]
}

// HasEdge reports whether the directed edge exists.
func (g *Directed) HasEdge(from, to NodeID) bool {
	_, ok := g.caps[[2]NodeID{from, to}]
	return ok
}

// NumNodes returns the vertex count.
func (g *Directed) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Directed) NumEdges() int { return len(g.caps) }

// Nodes returns the vertices in ascending order.
func (g *Directed) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for v := range g.nodes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges sorted by (From, To).
func (g *Directed) Edges() []Edge {
	out := make([]Edge, 0, len(g.caps))
	for key, c := range g.caps {
		out = append(out, Edge{From: key[0], To: key[1], Cap: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// OutEdges returns edges leaving v, sorted by destination.
func (g *Directed) OutEdges(v NodeID) []Edge {
	var out []Edge
	for key, c := range g.caps {
		if key[0] == v {
			out = append(out, Edge{From: v, To: key[1], Cap: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// InEdges returns edges entering v, sorted by origin.
func (g *Directed) InEdges(v NodeID) []Edge {
	var out []Edge
	for key, c := range g.caps {
		if key[1] == v {
			out = append(out, Edge{From: key[0], To: v, Cap: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// Neighbors returns nodes adjacent to v by an edge in either direction.
func (g *Directed) Neighbors(v NodeID) []NodeID {
	seen := map[NodeID]struct{}{}
	for key := range g.caps {
		switch v {
		case key[0]:
			seen[key[1]] = struct{}{}
		case key[1]:
			seen[key[0]] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Directed) Clone() *Directed {
	c := NewDirected()
	for v := range g.nodes {
		c.nodes[v] = struct{}{}
	}
	for k, v := range g.caps {
		c.caps[k] = v
	}
	return c
}

// Induced returns the subgraph induced by keep: only vertices in keep and
// edges between them survive.
func (g *Directed) Induced(keep []NodeID) *Directed {
	in := map[NodeID]struct{}{}
	for _, v := range keep {
		if g.HasNode(v) {
			in[v] = struct{}{}
		}
	}
	c := NewDirected()
	for v := range in {
		c.nodes[v] = struct{}{}
	}
	for key, cp := range g.caps {
		if _, a := in[key[0]]; !a {
			continue
		}
		if _, b := in[key[1]]; !b {
			continue
		}
		c.caps[key] = cp
	}
	return c
}

// Equal reports whether g and o have identical vertex and edge sets.
func (g *Directed) Equal(o *Directed) bool {
	if len(g.nodes) != len(o.nodes) || len(g.caps) != len(o.caps) {
		return false
	}
	for v := range g.nodes {
		if !o.HasNode(v) {
			return false
		}
	}
	for k, c := range g.caps {
		if o.caps[k] != c {
			return false
		}
	}
	return true
}

// TotalCapacity returns the sum of all edge capacities (the "m" of the
// Theorem 1 proof when applied to a subgraph).
func (g *Directed) TotalCapacity() int64 {
	var sum int64
	for _, c := range g.caps {
		sum += c
	}
	return sum
}

// Undirected converts g per the paper's definition: undirected edge (i,j)
// exists iff either directed edge exists, with capacity equal to the sum of
// the two directed capacities.
func (g *Directed) Undirected() *Undirected {
	u := NewUndirected()
	for v := range g.nodes {
		u.AddNode(v)
	}
	for key, c := range g.caps {
		u.addCap(key[0], key[1], c)
	}
	return u
}

// String renders a deterministic edge-list form "a->b:cap, ...".
func (g *Directed) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Directed{n=%d:", g.NumNodes())
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, " %d->%d:%d", e.From, e.To, e.Cap)
	}
	sb.WriteString("}")
	return sb.String()
}

// Undirected is a simple undirected graph with integer edge capacities.
type Undirected struct {
	nodes map[NodeID]struct{}
	caps  map[[2]NodeID]int64 // key normalized: smaller id first
}

// NewUndirected returns an empty undirected graph.
func NewUndirected() *Undirected {
	return &Undirected{nodes: map[NodeID]struct{}{}, caps: map[[2]NodeID]int64{}}
}

func ukey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// AddNode inserts a vertex.
func (u *Undirected) AddNode(v NodeID) {
	u.nodes[v] = struct{}{}
}

// AddEdge inserts an undirected edge with the given capacity.
func (u *Undirected) AddEdge(a, b NodeID, capacity int64) error {
	if capacity <= 0 {
		return fmt.Errorf("graph: undirected edge (%d,%d) capacity %d must be positive", a, b, capacity)
	}
	if a == b {
		return fmt.Errorf("graph: self-loop at node %d", a)
	}
	if _, dup := u.caps[ukey(a, b)]; dup {
		return fmt.Errorf("graph: duplicate undirected edge (%d,%d)", a, b)
	}
	u.addCap(a, b, capacity)
	return nil
}

func (u *Undirected) addCap(a, b NodeID, capacity int64) {
	u.nodes[a] = struct{}{}
	u.nodes[b] = struct{}{}
	u.caps[ukey(a, b)] += capacity
}

// Cap returns the capacity between a and b (0 if no edge).
func (u *Undirected) Cap(a, b NodeID) int64 { return u.caps[ukey(a, b)] }

// HasEdge reports whether an edge joins a and b.
func (u *Undirected) HasEdge(a, b NodeID) bool {
	_, ok := u.caps[ukey(a, b)]
	return ok
}

// HasNode reports whether v is a vertex.
func (u *Undirected) HasNode(v NodeID) bool {
	_, ok := u.nodes[v]
	return ok
}

// NumNodes returns the vertex count.
func (u *Undirected) NumNodes() int { return len(u.nodes) }

// NumEdges returns the edge count.
func (u *Undirected) NumEdges() int { return len(u.caps) }

// Nodes returns vertices in ascending order.
func (u *Undirected) Nodes() []NodeID {
	out := make([]NodeID, 0, len(u.nodes))
	for v := range u.nodes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns edges as (smaller, larger, cap) triples sorted
// lexicographically.
func (u *Undirected) Edges() []Edge {
	out := make([]Edge, 0, len(u.caps))
	for key, c := range u.caps {
		out = append(out, Edge{From: key[0], To: key[1], Cap: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Neighbors returns the adjacent vertices of v in ascending order.
func (u *Undirected) Neighbors(v NodeID) []NodeID {
	var out []NodeID
	for key := range u.caps {
		switch v {
		case key[0]:
			out = append(out, key[1])
		case key[1]:
			out = append(out, key[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy.
func (u *Undirected) Clone() *Undirected {
	c := NewUndirected()
	for v := range u.nodes {
		c.nodes[v] = struct{}{}
	}
	for k, v := range u.caps {
		c.caps[k] = v
	}
	return c
}

// Induced returns the subgraph induced by keep.
func (u *Undirected) Induced(keep []NodeID) *Undirected {
	in := map[NodeID]struct{}{}
	for _, v := range keep {
		if u.HasNode(v) {
			in[v] = struct{}{}
		}
	}
	c := NewUndirected()
	for v := range in {
		c.nodes[v] = struct{}{}
	}
	for key, cp := range u.caps {
		if _, a := in[key[0]]; !a {
			continue
		}
		if _, b := in[key[1]]; !b {
			continue
		}
		c.caps[key] = cp
	}
	return c
}

// Connected reports whether the graph is connected (true for graphs with
// fewer than two vertices).
func (u *Undirected) Connected() bool {
	nodes := u.Nodes()
	if len(nodes) < 2 {
		return true
	}
	adj := map[NodeID][]NodeID{}
	for key := range u.caps {
		adj[key[0]] = append(adj[key[0]], key[1])
		adj[key[1]] = append(adj[key[1]], key[0])
	}
	seen := map[NodeID]struct{}{nodes[0]: {}}
	stack := []NodeID{nodes[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(nodes)
}

// String renders a deterministic form.
func (u *Undirected) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Undirected{n=%d:", u.NumNodes())
	for _, e := range u.Edges() {
		fmt.Fprintf(&sb, " %d-%d:%d", e.From, e.To, e.Cap)
	}
	sb.WriteString("}")
	return sb.String()
}
