package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1a builds the directed graph of the paper's Figure 1(a): K4 minus the
// 2-4 edge with unit bidirectional links. The figure itself is not printed
// in the text, so the graph is reconstructed from every number the paper
// states: MINCUT(G,1,2) = MINCUT(G,1,4) = 2, MINCUT(G,1,3) = 3 (gamma = 2),
// no edge between nodes 2 and 4, and U_k = 2 once nodes 2 and 3 are in
// dispute (Omega_k = {1,2,4}, {1,3,4}).
func fig1a() *Directed {
	g := NewDirected()
	for _, pair := range [][2]NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 1); err != nil {
			panic(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewDirected()
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Error("self-loop: expected error")
	}
	if err := g.AddEdge(1, 2, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if err := g.AddEdge(1, 2, -3); err == nil {
		t.Error("negative capacity: expected error")
	}
	if err := g.AddEdge(1, 2, 5); err != nil {
		t.Fatalf("valid edge: %v", err)
	}
	if err := g.AddEdge(1, 2, 5); err == nil {
		t.Error("duplicate edge: expected error")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g Directed
	g.AddNode(7)
	if !g.HasNode(7) {
		t.Error("zero-value Directed should accept AddNode")
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Errorf("zero-value Directed AddEdge: %v", err)
	}
}

func TestBasicAccessors(t *testing.T) {
	g := fig1a()
	if g.NumNodes() != 4 || g.NumEdges() != 10 {
		t.Fatalf("fig1a has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Cap(1, 2) != 1 || g.Cap(2, 4) != 0 {
		t.Error("Cap lookup wrong")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 4) {
		t.Error("HasEdge wrong")
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Error("Nodes not sorted")
		}
	}
	out := g.OutEdges(1)
	if len(out) != 3 {
		t.Errorf("OutEdges(1) = %v", out)
	}
	in := g.InEdges(3)
	if len(in) != 3 {
		t.Errorf("InEdges(3) = %v", in)
	}
	nb := g.Neighbors(2)
	if len(nb) != 2 {
		t.Errorf("Neighbors(2) = %v", nb)
	}
	if g.TotalCapacity() != 10 {
		t.Errorf("TotalCapacity = %d, want 10", g.TotalCapacity())
	}
}

func TestRemoveOperations(t *testing.T) {
	g := fig1a()
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("RemoveEdge failed")
	}
	g.RemoveBetween(2, 3)
	if g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Error("RemoveBetween failed")
	}
	g.RemoveNode(4)
	if g.HasNode(4) || g.HasEdge(3, 4) || g.HasEdge(4, 2) {
		t.Error("RemoveNode left residue")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := fig1a()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.RemoveEdge(1, 2)
	if g.Equal(c) {
		t.Error("Equal after divergence")
	}
	if !g.HasEdge(1, 2) {
		t.Error("clone shares storage")
	}
}

func TestInduced(t *testing.T) {
	g := fig1a()
	h := g.Induced([]NodeID{1, 2, 4})
	if h.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d", h.NumNodes())
	}
	if h.HasEdge(2, 3) || h.HasEdge(1, 3) {
		t.Error("induced kept edges to removed node")
	}
	if !h.HasEdge(1, 2) || !h.HasEdge(1, 4) || !h.HasEdge(4, 1) {
		t.Error("induced dropped internal edges")
	}
	// Inducing on nodes not in g ignores them.
	h2 := g.Induced([]NodeID{1, 99})
	if h2.NumNodes() != 1 {
		t.Errorf("induced with foreign node: %d nodes", h2.NumNodes())
	}
}

func TestFig1aMincuts(t *testing.T) {
	// The paper's Section 2 worked example: MINCUT(Gk,1,2) =
	// MINCUT(Gk,1,4) = 2, MINCUT(Gk,1,3) = 3, gamma_k = 2.
	g := fig1a()
	cases := map[NodeID]int64{2: 2, 3: 3, 4: 2}
	for target, want := range cases {
		got, err := g.MinCut(1, target)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("MINCUT(G,1,%d) = %d, want %d", target, got, want)
		}
	}
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 2 {
		t.Errorf("gamma = %d, want 2", gamma)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := fig1a()
	if _, err := g.MaxFlow(1, 1); err == nil {
		t.Error("s==t: expected error")
	}
	if _, err := g.MaxFlow(1, 99); err == nil {
		t.Error("missing node: expected error")
	}
	if _, err := g.BroadcastMincut(99); err == nil {
		t.Error("missing source: expected error")
	}
	lone := NewDirected()
	lone.AddNode(1)
	if _, err := lone.BroadcastMincut(1); err == nil {
		t.Error("single node: expected error")
	}
	disc := NewDirected()
	disc.MustAddEdge(1, 2, 1)
	disc.AddNode(3)
	if _, err := disc.BroadcastMincut(1); err == nil {
		t.Error("unreachable node: expected error")
	}
}

func TestMaxFlowKnownValues(t *testing.T) {
	// Classic diamond: 1->2, 1->3 cap 10; 2->4, 3->4 cap 10; 2->3 cap 1.
	g := NewDirected()
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(2, 4, 10)
	g.MustAddEdge(3, 4, 10)
	g.MustAddEdge(2, 3, 1)
	got, err := g.MaxFlow(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("diamond maxflow = %d, want 20", got)
	}
	// Bottleneck path 1->2->3 with caps 5, 3.
	p := NewDirected()
	p.MustAddEdge(1, 2, 5)
	p.MustAddEdge(2, 3, 3)
	got, err = p.MaxFlow(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("path maxflow = %d, want 3", got)
	}
}

func TestMaxFlowAssignmentConservation(t *testing.T) {
	g := fig1a()
	val, flows, err := g.MaxFlowAssignment(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if val != 2 {
		t.Fatalf("flow value %d, want 2", val)
	}
	// conservation: for every node except 1 and 4, inflow == outflow
	net := map[NodeID]int64{}
	for key, fl := range flows {
		if fl < 0 || fl > g.Cap(key[0], key[1]) {
			t.Fatalf("flow %d on edge %v out of bounds", fl, key)
		}
		net[key[0]] -= fl
		net[key[1]] += fl
	}
	for v, b := range net {
		switch v {
		case 1:
			if b != -val {
				t.Errorf("source balance %d, want %d", b, -val)
			}
		case 4:
			if b != val {
				t.Errorf("sink balance %d, want %d", b, val)
			}
		default:
			if b != 0 {
				t.Errorf("node %d balance %d, want 0", v, b)
			}
		}
	}
}

func TestMaxFlowRandomDualityQuick(t *testing.T) {
	// Property: maxflow value is at most total capacity out of s and at
	// most total capacity into t, and removing the source kills all flow.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedDigraph(rng, 6, 3)
		val, err := g.MaxFlow(1, 6)
		if err != nil {
			return false
		}
		var outCap, inCap int64
		for _, e := range g.OutEdges(1) {
			outCap += e.Cap
		}
		for _, e := range g.InEdges(6) {
			inCap += e.Cap
		}
		return val <= outCap && val <= inCap
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomConnectedDigraph builds a digraph on nodes 1..n that includes a
// bidirectional ring (so everything is reachable) plus random chords with
// capacities in [1, maxCap].
func randomConnectedDigraph(rng *rand.Rand, n int, maxCap int64) *Directed {
	g := NewDirected()
	for i := 1; i <= n; i++ {
		next := i%n + 1
		g.MustAddEdge(NodeID(i), NodeID(next), 1+rng.Int63n(maxCap))
		g.MustAddEdge(NodeID(next), NodeID(i), 1+rng.Int63n(maxCap))
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j || g.HasEdge(NodeID(i), NodeID(j)) {
				continue
			}
			if rng.Intn(3) == 0 {
				g.MustAddEdge(NodeID(i), NodeID(j), 1+rng.Int63n(maxCap))
			}
		}
	}
	return g
}

func TestUndirectedConversion(t *testing.T) {
	// Paper: undirected capacity = sum of the two directed capacities.
	g := NewDirected()
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 1, 3)
	g.MustAddEdge(2, 3, 1)
	u := g.Undirected()
	if u.Cap(1, 2) != 5 || u.Cap(2, 1) != 5 {
		t.Errorf("undirected cap(1,2) = %d, want 5", u.Cap(1, 2))
	}
	if u.Cap(2, 3) != 1 {
		t.Errorf("undirected cap(2,3) = %d, want 1", u.Cap(2, 3))
	}
	if u.NumEdges() != 2 {
		t.Errorf("undirected edges = %d, want 2", u.NumEdges())
	}
}

func TestUndirectedBasics(t *testing.T) {
	u := NewUndirected()
	if err := u.AddEdge(1, 1, 1); err == nil {
		t.Error("self-loop: expected error")
	}
	if err := u.AddEdge(1, 2, 0); err == nil {
		t.Error("zero cap: expected error")
	}
	if err := u.AddEdge(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := u.AddEdge(2, 1, 4); err == nil {
		t.Error("duplicate (reversed) edge: expected error")
	}
	if !u.HasEdge(2, 1) {
		t.Error("HasEdge should be symmetric")
	}
	if got := u.Neighbors(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(2) = %v", got)
	}
	c := u.Clone()
	if !c.HasEdge(1, 2) || c.NumNodes() != 2 {
		t.Error("clone wrong")
	}
}

func TestUndirectedConnected(t *testing.T) {
	u := NewUndirected()
	if !u.Connected() {
		t.Error("empty graph should be connected")
	}
	u.AddNode(1)
	if !u.Connected() {
		t.Error("singleton should be connected")
	}
	u.AddNode(2)
	if u.Connected() {
		t.Error("two isolated nodes connected?")
	}
	if err := u.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !u.Connected() {
		t.Error("edge should connect")
	}
}

func TestUndirectedMaxFlowAndPairwiseMincut(t *testing.T) {
	// Triangle with capacities 1-2:3, 2-3:1, 1-3:1. MINCUT(2,3) = 1+... :
	// cut isolating 3 has weight 1+1=2; cut isolating 2 has 3+1=4; so
	// mincut(2,3)=2. Global min pairwise mincut = 2 (isolating 3).
	u := NewUndirected()
	if err := u.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := u.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.AddEdge(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	mc, err := u.MaxFlow(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mc != 2 {
		t.Errorf("mincut(2,3) = %d, want 2", mc)
	}
	min, err := u.MinPairwiseMincut()
	if err != nil {
		t.Fatal(err)
	}
	if min != 2 {
		t.Errorf("min pairwise mincut = %d, want 2", min)
	}
}

func TestMinPairwiseMincutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedDigraph(rng, 5, 4)
		u := g.Undirected()
		got, err := u.MinPairwiseMincut()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1 << 60)
		nodes := u.Nodes()
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				mc, err := u.MaxFlow(nodes[i], nodes[j])
				if err != nil {
					t.Fatal(err)
				}
				if mc < want {
					want = mc
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: MinPairwiseMincut = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestMinPairwiseMincutErrors(t *testing.T) {
	u := NewUndirected()
	u.AddNode(1)
	if _, err := u.MinPairwiseMincut(); err == nil {
		t.Error("single node: expected error")
	}
	u.AddNode(2)
	if _, err := u.MinPairwiseMincut(); err == nil {
		t.Error("disconnected: expected error")
	}
}

func TestNodeDisjointPaths(t *testing.T) {
	// Complete bidirectional graph on 5 nodes: 4 node-disjoint paths
	// between any pair (1 direct + 3 via distinct intermediates).
	g := completeBi(5, 1)
	paths, err := g.NodeDisjointPaths(1, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d disjoint paths, want 4: %v", len(paths), paths)
	}
	if err := validatePaths(paths, 1, 5); err != nil {
		t.Fatal(err)
	}
	// Trimming works.
	paths, err = g.NodeDisjointPaths(1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Errorf("want=2 got %d", len(paths))
	}
}

func TestNodeDisjointPathsErrors(t *testing.T) {
	g := completeBi(3, 1)
	if _, err := g.NodeDisjointPaths(1, 1, 1); err == nil {
		t.Error("s==t: expected error")
	}
	if _, err := g.NodeDisjointPaths(1, 9, 1); err == nil {
		t.Error("missing node: expected error")
	}
	if _, err := g.NodeDisjointPaths(1, 2, 0); err == nil {
		t.Error("want=0: expected error")
	}
}

func TestNodeDisjointPathsNone(t *testing.T) {
	g := NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.AddNode(3)
	paths, err := g.NodeDisjointPaths(1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("unreachable target returned paths: %v", paths)
	}
}

func completeBi(n int, c int64) *Directed {
	g := NewDirected()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i != j {
				g.MustAddEdge(NodeID(i), NodeID(j), c)
			}
		}
	}
	return g
}

func TestVertexConnectivity(t *testing.T) {
	// K5 bidirectional has vertex connectivity 4.
	k, err := completeBi(5, 1).VertexConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("K5 connectivity = %d, want 4", k)
	}
	// Bidirectional ring on 5 nodes has connectivity 2.
	ring := NewDirected()
	for i := 1; i <= 5; i++ {
		next := i%5 + 1
		ring.MustAddEdge(NodeID(i), NodeID(next), 1)
		ring.MustAddEdge(NodeID(next), NodeID(i), 1)
	}
	k, err = ring.VertexConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("ring connectivity = %d, want 2", k)
	}
}

func TestVertexConnectivityPairDirect(t *testing.T) {
	// Path graph 1->2->3: connectivity pair (1,3) = 1, (1,2) = 1.
	g := NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	k, err := g.VertexConnectivityPair(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("path pair connectivity = %d, want 1", k)
	}
}

func TestReachableFrom(t *testing.T) {
	g := NewDirected()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(4, 1, 1)
	r := g.ReachableFrom(1)
	if len(r) != 3 {
		t.Errorf("reachable from 1 = %v, want {1,2,3}", SortedNodeSet(r))
	}
	if _, ok := r[4]; ok {
		t.Error("4 should not be reachable from 1")
	}
	if len(g.ReachableFrom(99)) != 0 {
		t.Error("missing node should have empty reach")
	}
}

func TestParseMarshalRoundTrip(t *testing.T) {
	g := fig1a()
	g.AddNode(9) // isolated node survives round trip
	text := g.Marshal()
	back, err := ParseDirected(text)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", g, back)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 2",          // missing field
		"a 2 3",        // bad from
		"1 b 3",        // bad to
		"1 2 x",        // bad cap
		"1 2 0",        // zero cap
		"1 1 3",        // self loop
		"node xyz",     // bad node id
		"1 2 3\n1 2 4", // duplicate
	}
	for _, text := range bad {
		if _, err := ParseDirected(text); err == nil {
			t.Errorf("ParseDirected(%q): expected error", text)
		}
	}
}

func TestParseComments(t *testing.T) {
	g, err := ParseDirected("# header\n\n1 2 3\n  # indented comment\nnode 7\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || !g.HasNode(7) {
		t.Errorf("parsed graph wrong: %v", g)
	}
}

func TestDOTOutput(t *testing.T) {
	dot := fig1a().DOT("g")
	if dot == "" || dot[:7] != "digraph" {
		t.Errorf("DOT output malformed: %q", dot)
	}
}

func TestStringDeterministic(t *testing.T) {
	a, b := fig1a().String(), fig1a().String()
	if a != b {
		t.Error("String not deterministic")
	}
}

func BenchmarkMaxFlow10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedDigraph(rng, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MaxFlow(1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVertexConnectivity8(b *testing.B) {
	g := completeBi(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.VertexConnectivity(); err != nil {
			b.Fatal(err)
		}
	}
}
