// Package exp regenerates every reproducible artifact of the paper — the
// worked examples of Figures 1 and 2, the pipelining construction of
// Figure 3 / Appendix D, and the quantitative content of Theorems 1-3 —
// as text tables. cmd/nabexp prints them; bench_test.go wraps each in a
// benchmark; EXPERIMENTS.md (repo root) records paper-vs-measured,
// including the lockstep-vs-pipelined runtime comparison whose raw
// numbers live in BENCH_pipeline.json.
package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"nab/internal/adversary"
	"nab/internal/baseline"
	"nab/internal/capacity"
	"nab/internal/coding"
	"nab/internal/core"
	"nab/internal/dispute"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/spantree"
	"nab/internal/texttab"
	"nab/internal/topo"
)

// E1Fig1 regenerates the Section 2/3 worked example on the Figure 1
// graphs: per-node mincuts, gamma, the Omega_k family after the 2-3
// dispute, and U_k.
func E1Fig1(w io.Writer) error {
	g := topo.Fig1a()
	t := texttab.New("E1: Figure 1 worked example (n=4, f=1)",
		"quantity", "paper", "measured")
	for _, j := range []graph.NodeID{2, 3, 4} {
		mc, err := g.MinCut(1, j)
		if err != nil {
			return err
		}
		want := int64(2)
		if j == 3 {
			want = 3
		}
		t.Addf(fmt.Sprintf("MINCUT(G,1,%d)", j), want, mc)
	}
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		return err
	}
	t.Addf("gamma", int64(2), gamma)

	// Figure 1(b): dispute {2,3}.
	ds := dispute.NewSet()
	if err := ds.Add(2, 3); err != nil {
		return err
	}
	gk, _, err := ds.Apply(g, 1)
	if err != nil {
		return err
	}
	omega := dispute.Omega(gk, ds, 3)
	t.Addf("|Omega_k| after dispute {2,3}", 2, len(omega))
	for i, h := range omega {
		t.Addf(fmt.Sprintf("Omega_k[%d] nodes", i), []string{"{1 2 4}", "{1 3 4}"}[i], fmt.Sprint(h.Nodes()))
	}
	u, err := capacity.U(omega)
	if err != nil {
		return err
	}
	t.Addf("U_k", int64(2), u)
	_, err = fmt.Fprintln(w, t)
	return err
}

// E2Fig2 regenerates the Figure 2 constructions: packing gamma
// unit-capacity spanning arborescences in the directed graph (edge (1,2)
// shared by both trees), the undirected conversion, and undirected
// spanning-tree packing.
func E2Fig2(w io.Writer) error {
	g := topo.Fig2a()
	gamma, err := g.BroadcastMincut(1)
	if err != nil {
		return err
	}
	t := texttab.New("E2: Figure 2 spanning structures", "quantity", "paper", "measured")
	t.Addf("gamma (directed trees packable)", 2, gamma)
	trees, err := spantree.PackArborescences(g, 1, int(gamma))
	if err != nil {
		return err
	}
	use12 := int64(0)
	for i, tr := range trees {
		if err := tr.Validate(g); err != nil {
			return fmt.Errorf("tree %d invalid: %w", i, err)
		}
		t.Addf(fmt.Sprintf("tree %d edges", i+1), "unit-capacity spanning", fmt.Sprint(tr.Edges()))
		if tr.Parent[2] == 1 {
			use12++
		}
	}
	t.Addf("usage of edge (1,2)", "<= capacity 2", use12)
	if use12 > g.Cap(1, 2) {
		return fmt.Errorf("edge (1,2) over capacity")
	}

	u := g.Undirected()
	t.Addf("undirected cap(1,2) (sum of directions)", int64(2), u.Cap(1, 2))
	minCut, err := u.MinPairwiseMincut()
	if err != nil {
		return err
	}
	k := int(minCut / 2)
	t.Addf("undirected pairwise mincut U", "-", minCut)
	utrees, err := spantree.PackUndirectedTrees(g, k)
	if err != nil {
		return err
	}
	if err := spantree.ValidateTreePacking(g, utrees); err != nil {
		return err
	}
	t.Addf("undirected trees packed (U/2)", k, len(utrees))
	_, err = fmt.Fprintln(w, t)
	return err
}

// E3Theorem1 measures the probability that one random draw of coding
// matrices fails verification, against the Theorem 1 bound
// 2^-m * C(n,n-f) * (n-f-1) * rho, sweeping the symbol width m.
func E3Theorem1(w io.Writer, draws int, seed int64) error {
	if draws <= 0 {
		draws = 200
	}
	g := topo.CompleteBi(4, 1) // n=4, f=1, U1=4 -> rho=2
	const f = 1
	omega := dispute.Omega(g, dispute.NewSet(), g.NumNodes()-f)
	rho, err := capacity.Rho(omega)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	t := texttab.New(fmt.Sprintf("E3: Theorem 1 soundness (K4, f=1, rho=%d, %d draws/row)", rho, draws),
		"symbol bits m", "bound", "measured failure rate", "redraws needed (mean)")
	for _, m := range []uint{2, 3, 4, 6, 8, 10, 12} {
		field, err := gf.New(m)
		if err != nil {
			return err
		}
		failures := 0
		totalTries := 0
		for d := 0; d < draws; d++ {
			s, err := coding.NewScheme(g, rho, field, rng)
			if err != nil {
				return err
			}
			bad, err := s.Verify(omega)
			if err != nil {
				return err
			}
			if bad >= 0 {
				failures++
			}
			// Count expected redraw effort.
			_, tries, err := coding.GenerateVerified(g, rho, field, omega, rng, 1000)
			if err != nil {
				return err
			}
			totalTries += tries
		}
		bound := coding.Theorem1Bound(4, f, rho, m)
		rate := float64(failures) / float64(draws)
		t.Addf(int(m), bound, rate, float64(totalTries)/float64(draws))
		// The bound must hold up to sampling noise (3 sigma).
		sigma := 3 * math.Sqrt(bound*(1-bound)/float64(draws))
		if rate > bound+sigma+0.05 {
			return fmt.Errorf("m=%d: measured %.4f exceeds bound %.4f", m, rate, bound)
		}
	}
	_, err = fmt.Fprintln(w, t)
	return err
}

// E4Row is one network's Theorem 2/3 comparison.
type E4Row struct {
	Name       string
	GammaStar  int64
	RhoStar    float64
	CapacityUB float64
	TNABBound  float64
	// Asymptotic is L/(per-instance time) of a clean post-neutralization
	// instance at large L — the paper's lim L->inf throughput, with the
	// bounded dispute cost already amortized away.
	Asymptotic float64
	// AdvFiniteQ is the finite-Q adversarial amortized rate at moderate L,
	// still carrying dispute-control cost (E6 shows its convergence).
	AdvFiniteQ float64
	Guarantee  float64
}

// E4ThroughputVsCapacity evaluates Theorems 2+3 on a family of networks.
// Two measurements per network: the asymptotic rate (clean instance at
// large L, the quantity Theorem 3 lower-bounds) and the finite-Q
// adversarial amortized rate (which approaches it as Q grows, see E6).
func E4ThroughputVsCapacity(w io.Writer, lenBytes, q int, seed int64) ([]E4Row, error) {
	if lenBytes <= 0 {
		lenBytes = 8192 // large L: the asymptotic regime of Theorem 3
	}
	if q <= 0 {
		q = 10
	}
	advLenBytes := lenBytes / 32
	if advLenBytes < 8 {
		advLenBytes = 8
	}
	type net struct {
		name  string
		g     *graph.Directed
		f     int
		bad   graph.NodeID
		exact bool
	}
	rng := rand.New(rand.NewSource(seed))
	rnd6, err := topo.RandomConnected(rng, 6, 3, 4)
	if err != nil {
		return nil, err
	}
	het, err := topo.OneThinLink(5, 4, 5, 8, 1)
	if err != nil {
		return nil, err
	}
	circ, err := topo.Circulant(8, 2, 1, 2)
	if err != nil {
		return nil, err
	}
	nets := []net{
		{name: "K4 unit", g: topo.CompleteBi(4, 1), f: 1, bad: 3, exact: true},
		{name: "K5 cap2", g: topo.CompleteBi(5, 2), f: 1, bad: 4, exact: true},
		{name: "K7 cap2 (f=2)", g: topo.CompleteBi(7, 2), f: 2, bad: 5, exact: false},
		{name: "random n=6", g: rnd6, f: 1, bad: 4, exact: false},
		{name: "one-thin-link n=5", g: het, f: 1, bad: 4, exact: false},
		{name: "circulant C8(1,2)", g: circ, f: 1, bad: 5, exact: false},
	}
	t := texttab.New(fmt.Sprintf("E4: Theorems 2+3 — measured vs capacity bound (asymptotic at L=%d bits; adversarial at L=%d bits, Q=%d)",
		8*lenBytes, 8*advLenBytes, q),
		"network", "gamma*", "rho*", "UB=min(g*,2r*)", "T_NAB bound", "asym rate", "asym/UB", "adv rate (finite Q)", "guarantee")
	var rows []E4Row
	for _, nc := range nets {
		rep, err := capacity.Analyze(nc.g, 1, nc.f, nc.exact)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.name, err)
		}

		// Asymptotic rate: one clean instance at large L on G_1. Instance
		// graphs reached under attack keep gamma_k >= gamma* and
		// rho_k >= rho*, and dispute phases are bounded, so the worst-case
		// limit throughput lies between the T_NAB bound and this rate.
		cleanRunner, err := core.NewRunner(core.Config{
			Graph: nc.g, Source: 1, F: nc.f, LenBytes: lenBytes, Seed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.name, err)
		}
		in := make([]byte, lenBytes)
		rng.Read(in)
		cir, err := cleanRunner.RunInstance(in)
		if err != nil {
			return nil, fmt.Errorf("%s clean: %w", nc.name, err)
		}
		asym := float64(8*lenBytes) / cir.TotalTime()

		// Finite-Q adversarial amortized rate at moderate L.
		advRunner, err := core.NewRunner(core.Config{
			Graph: nc.g, Source: 1, F: nc.f, LenBytes: advLenBytes, Seed: seed,
			Adversaries: map[graph.NodeID]core.Adversary{nc.bad: &adversary.BlockFlipper{}},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.name, err)
		}
		inputs := make([][]byte, q)
		for i := range inputs {
			inputs[i] = make([]byte, advLenBytes)
			rng.Read(inputs[i])
		}
		rr, err := advRunner.Run(inputs)
		if err != nil {
			return nil, fmt.Errorf("%s adv: %w", nc.name, err)
		}
		adv := rr.Throughput()

		row := E4Row{
			Name: nc.name, GammaStar: rep.GammaStar, RhoStar: rep.RhoStar,
			CapacityUB: rep.CapacityUB, TNABBound: rep.TNABBound,
			Asymptotic: asym, AdvFiniteQ: adv, Guarantee: rep.Guarantee,
		}
		rows = append(rows, row)
		t.Addf(nc.name, rep.GammaStar, rep.RhoStar, rep.CapacityUB, rep.TNABBound,
			asym, texttab.Pct(asym/rep.CapacityUB), adv, texttab.Pct(rep.Guarantee))
	}
	_, err = fmt.Fprintln(w, t)
	return rows, err
}

// E5Row is one topology's pipelining comparison.
type E5Row struct {
	N           int
	Hops        int
	Unpipelined float64 // per-instance time, store-and-forward Phase 1
	Pipelined   float64 // per-instance time under Appendix D pipelining
	// SimSeq and SimPipe are *measured* Phase-1 totals for Q streamed
	// instances: sequential injection vs one-instance-per-round pipelining
	// flowing through the simulator concurrently.
	SimQ    int
	SimSeq  float64
	SimPipe float64
}

// E5Pipelining reproduces the Figure 3 / Appendix D effect on multi-hop
// circulant rings: without pipelining Phase 1 pays depth * L/gamma per
// instance; with pipelining (an instance advances one hop per round while
// later instances stream behind it) the amortized per-instance time
// returns to ~L/gamma + L/rho + O(n^alpha).
func E5Pipelining(w io.Writer, lenBytes int, seed int64) ([]E5Row, error) {
	if lenBytes <= 0 {
		// Phase 1 must dominate the constant flag broadcast for the
		// multi-hop effect to be visible.
		lenBytes = 8192
	}
	const simQ = 8
	t := texttab.New(fmt.Sprintf("E5: Figure 3 pipelining on circulants C_n(1,2) (f=1, L=%d bits)", 8*lenBytes),
		"n", "phase-1 hops", "per-instance time unpipelined", "pipelined", "speedup",
		fmt.Sprintf("measured seq ph-1 (Q=%d)", simQ), "measured pipelined ph-1", "ph-1 speedup")
	var rows []E5Row
	for _, n := range []int{6, 9, 12} {
		g, err := topo.Circulant(n, 1, 1, 2)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Graph: g, Source: 1, F: 1, LenBytes: lenBytes, Seed: seed, SkipConnectivityCheck: true}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		in := make([]byte, lenBytes)
		ir, err := runner.RunInstance(in)
		if err != nil {
			return nil, err
		}
		// Unpipelined: every hop of Phase 1 is sequential.
		unp := ir.Phase1SFTime + ir.EqualityTime + ir.FlagTime
		// Pipelined (Appendix D): one round per instance of duration
		// L/gamma + L/rho + O(n^alpha); Phase 1 cut-through time is L/gamma.
		pip := ir.Phase1Time + ir.EqualityTime + ir.FlagTime
		// Direct measurement: stream Q instances' Phase-1 payloads through
		// the simulator, sequentially vs one hop apart.
		seq, spipe, err := simulatePipelinedPhase1(g, 1, 8*lenBytes, simQ)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E5Row{
			N: n, Hops: ir.Phase1Rounds, Unpipelined: unp, Pipelined: pip,
			SimQ: simQ, SimSeq: seq, SimPipe: spipe,
		})
		t.Addf(n, ir.Phase1Rounds, unp, pip, texttab.F(unp/pip)+"x",
			seq, spipe, texttab.F(seq/spipe)+"x")
	}
	_, err := fmt.Fprintln(w, t)
	return rows, err
}

// E6Row is one Q value of the amortization sweep.
type E6Row struct {
	Q             int
	DisputePhases int
	DisputeShare  float64 // fraction of total time spent in Phase 3
	Throughput    float64
	TNABBound     float64
}

// E6Amortization sweeps the instance count Q under a persistent adversary
// and shows (a) dispute control runs at most f(f+1) times and (b) its time
// share vanishes, so throughput converges toward the Theorem 3 bound.
// The dispute-control transcript broadcast costs O(L n^beta) bits, so the
// crossover Q grows with n and f; f=1 on K5 makes the convergence visible
// at laptop scale (the f=2 trend is identical, just further out).
func E6Amortization(w io.Writer, lenBytes int, qs []int, seed int64) ([]E6Row, error) {
	if lenBytes <= 0 {
		lenBytes = 256
	}
	if len(qs) == 0 {
		qs = []int{1, 4, 16, 64, 256}
	}
	g := topo.CompleteBi(5, 2)
	const f = 1
	rep, err := capacity.Analyze(g, 1, f, false)
	if err != nil {
		return nil, err
	}
	t := texttab.New(fmt.Sprintf("E6: dispute-control amortization (K5, f=1, persistent adversary, L=%d bits)", 8*lenBytes),
		"Q", "dispute phases (<= f(f+1)="+fmt.Sprint(f*(f+1))+")", "phase-3 time share", "throughput", "T_NAB bound")
	var rows []E6Row
	for _, q := range qs {
		cfg := core.Config{
			Graph: g, Source: 1, F: f, LenBytes: lenBytes, Seed: seed,
			Adversaries: map[graph.NodeID]core.Adversary{
				4: &adversary.BlockFlipper{},
			},
		}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		inputs := make([][]byte, q)
		for i := range inputs {
			inputs[i] = make([]byte, lenBytes)
			inputs[i][0] = byte(i)
		}
		rr, err := runner.Run(inputs)
		if err != nil {
			return nil, err
		}
		var disputeTime float64
		for _, ir := range rr.Instances {
			disputeTime += ir.DisputeTime
		}
		total := rr.TotalTime()
		share := 0.0
		if total > 0 {
			share = disputeTime / total
		}
		dp := rr.DisputePhases()
		if dp > f*(f+1) {
			return nil, fmt.Errorf("Q=%d: %d dispute phases exceed f(f+1)", q, dp)
		}
		rows = append(rows, E6Row{Q: q, DisputePhases: dp, DisputeShare: share, Throughput: rr.Throughput(), TNABBound: rep.TNABBound})
		t.Addf(q, dp, texttab.Pct(share), rr.Throughput(), rep.TNABBound)
	}
	_, err = fmt.Fprintln(w, t)
	return rows, err
}

// E7Row is one capacity point of the baseline comparison.
type E7Row struct {
	FatCap int64
	NAB    float64
	EIG    float64
	Flood  float64
	Ratio  float64 // NAB / EIG
}

// E7Baselines sweeps the fat-link capacity of a one-thin-link clique: NAB's
// throughput scales with capacity while the capacity-oblivious baselines
// stay pinned to the thin link — the intro's "arbitrarily worse than
// optimal" claim, measured.
func E7Baselines(w io.Writer, lenBytes int, seed int64) ([]E7Row, error) {
	if lenBytes <= 0 {
		// The separation is asymptotic in L (the constant-size flag
		// broadcast must be amortized), so default to a large input.
		lenBytes = 2048
	}
	t := texttab.New(fmt.Sprintf("E7: NAB vs capacity-oblivious baselines (K5 with one thin link, f=1, L=%d bits)", 8*lenBytes),
		"fat cap", "NAB rate", "EIG rate", "Flood rate", "NAB/EIG")
	var rows []E7Row
	in := make([]byte, lenBytes)
	for i := range in {
		in[i] = byte(3 * i)
	}
	for _, c := range []int64{1, 2, 4, 8, 16, 32} {
		g, err := topo.OneThinLink(5, 4, 5, c, 1)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Graph: g, Source: 1, F: 1, LenBytes: lenBytes, Seed: seed}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		rr, err := runner.Run([][]byte{in, in})
		if err != nil {
			return nil, err
		}
		nabRate := rr.Throughput()
		eig, err := baseline.RunEIG(g, 1, 1, in)
		if err != nil {
			return nil, err
		}
		flood, err := baseline.RunFlood(g, 1, 1, in)
		if err != nil {
			return nil, err
		}
		eigRate := eig.Throughput(8 * lenBytes)
		floodRate := flood.Throughput(8 * lenBytes)
		ratio := 0.0
		if eigRate > 0 {
			ratio = nabRate / eigRate
		}
		rows = append(rows, E7Row{FatCap: c, NAB: nabRate, EIG: eigRate, Flood: floodRate, Ratio: ratio})
		t.Addf(c, nabRate, eigRate, floodRate, texttab.F(ratio)+"x")
	}
	_, err := fmt.Fprintln(w, t)
	return rows, err
}

// E8Correctness fuzzes NAB with random topologies, fault placements and
// adversary strategies, asserting termination, agreement, validity (for
// honest sources) and the f(f+1) dispute bound on every run.
func E8Correctness(w io.Writer, trials, lenBytes int, seed int64) error {
	if trials <= 0 {
		trials = 20
	}
	if lenBytes <= 0 {
		lenBytes = 8
	}
	rng := rand.New(rand.NewSource(seed))
	violations := 0
	runs := 0
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(3) // 5..7
		f := 1
		if n >= 7 && rng.Intn(2) == 0 {
			f = 2
		}
		g, err := topo.RandomConnected(rng, n, 2*f+1, 3)
		if err != nil {
			return err
		}
		advs := map[graph.NodeID]core.Adversary{}
		perm := rng.Perm(n)
		for i := 0; i < f; i++ {
			v := graph.NodeID(perm[i] + 1)
			switch rng.Intn(5) {
			case 0:
				advs[v] = adversary.Crash{}
			case 1:
				advs[v] = &adversary.BlockFlipper{}
			case 2:
				advs[v] = adversary.FalseAlarm{}
			case 3:
				advs[v] = &adversary.CodedCorruptor{}
			default:
				advs[v] = &adversary.Random{RNG: rand.New(rand.NewSource(rng.Int63()))}
			}
		}
		cfg := core.Config{
			Graph: g, Source: 1, F: f, LenBytes: lenBytes,
			Seed: rng.Int63(), Adversaries: advs, SkipConnectivityCheck: true,
		}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return fmt.Errorf("trial %d: %w", trial, err)
		}
		sourceHonest := true
		if _, bad := advs[1]; bad {
			sourceHonest = false
		}
		q := 3
		disputePhases := 0
		for inst := 0; inst < q; inst++ {
			in := make([]byte, lenBytes)
			rng.Read(in)
			ir, err := runner.RunInstance(in)
			if err != nil {
				return fmt.Errorf("trial %d instance %d: %w", trial, inst, err)
			}
			runs++
			if ir.Phase3 {
				disputePhases++
			}
			var agreedVal []byte
			first := true
			for _, out := range ir.Outputs {
				if first {
					agreedVal = out
					first = false
				} else if !bytesEqual(agreedVal, out) {
					violations++
				}
			}
			if sourceHonest && !bytesEqual(agreedVal, in) {
				violations++
			}
		}
		if disputePhases > f*(f+1) {
			violations++
		}
	}
	t := texttab.New("E8: correctness sweep (random topologies, faults, strategies)",
		"metric", "value")
	t.Addf("instances executed", runs)
	t.Addf("agreement/validity/bound violations", violations)
	if violations > 0 {
		return fmt.Errorf("E8: %d violations detected", violations)
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
