package exp

import (
	"fmt"
	"io"

	"nab/internal/coding"
	"nab/internal/core"
	"nab/internal/texttab"
	"nab/internal/topo"
)

// AblationRho sweeps the equality-check parameter rho below the paper's
// optimal floor(U_k/2) on K7: smaller rho widens symbols (better per-draw
// soundness) but costs L/rho time — showing why the paper runs at the cap.
func AblationRho(w io.Writer, lenBytes int, seed int64) error {
	if lenBytes <= 0 {
		lenBytes = 512
	}
	g := topo.CompleteBi(7, 2)
	const f = 2
	t := texttab.New(fmt.Sprintf("Ablation: equality-check rho (K7, f=2, L=%d bits)", 8*lenBytes),
		"rho", "symbol bits", "equality time (~L/rho)", "theorem-1 bound per draw", "scheme tries")
	in := make([]byte, lenBytes)
	for rho := 1; rho <= 8; rho++ {
		cfg := core.Config{
			Graph: g, Source: 1, F: f, LenBytes: lenBytes, Seed: seed,
			RhoOverride: rho, SkipConnectivityCheck: true,
		}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return err
		}
		ir, err := runner.RunInstance(in)
		if err != nil {
			return err
		}
		if ir.Rho > rho {
			return fmt.Errorf("override ignored: rho = %d", ir.Rho)
		}
		bound := coding.Theorem1Bound(7, f, ir.Rho, ir.SymBits)
		t.Addf(ir.Rho, ir.SymBits, ir.EqualityTime, bound, ir.SchemeTries)
		if ir.Rho < rho {
			break // hit the U_k/2 cap; larger requests clamp to it
		}
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// AblationPacking compares Phase 1 over the full gamma-tree packing against
// crippled packings (fewer trees), quantifying the value of Edmonds-optimal
// unreliable broadcast.
func AblationPacking(w io.Writer, lenBytes int, seed int64) error {
	if lenBytes <= 0 {
		lenBytes = 64
	}
	g := topo.CompleteBi(6, 2)
	t := texttab.New(fmt.Sprintf("Ablation: Phase-1 tree packing (K6 cap 2, f=1, L=%d bits)", 8*lenBytes),
		"trees", "phase-1 time", "vs full packing")
	in := make([]byte, lenBytes)
	var full float64
	for _, gcap := range []int{0, 4, 2, 1} { // 0 = paper's gamma
		cfg := core.Config{
			Graph: g, Source: 1, F: 1, LenBytes: lenBytes, Seed: seed,
			GammaOverride: gcap, SkipConnectivityCheck: true,
		}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return err
		}
		ir, err := runner.RunInstance(in)
		if err != nil {
			return err
		}
		if full == 0 {
			full = ir.Phase1Time
		}
		ratio := "1x"
		if full > 0 && ir.Phase1Time > 0 {
			ratio = texttab.F(ir.Phase1Time/full) + "x"
		}
		t.Addf(ir.Gamma, ir.Phase1Time, ratio)
	}
	_, err := fmt.Fprintln(w, t)
	return err
}

// AblationRelayPaths sweeps the disjoint-path count of the complete-graph
// emulation above the required 2f+1, showing the added flag-broadcast cost
// buys nothing.
func AblationRelayPaths(w io.Writer, lenBytes int, seed int64) error {
	if lenBytes <= 0 {
		lenBytes = 16
	}
	g := topo.CompleteBi(6, 2)
	t := texttab.New(fmt.Sprintf("Ablation: relay path count (K6 cap 2, f=1, L=%d bits)", 8*lenBytes),
		"paths", "flag-broadcast time", "total bits", "total time")
	in := make([]byte, lenBytes)
	for _, k := range []int{3, 4, 5} {
		cfg := core.Config{
			Graph: g, Source: 1, F: 1, LenBytes: lenBytes, Seed: seed,
			RelayPaths: k, SkipConnectivityCheck: true,
		}
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return err
		}
		ir, err := runner.RunInstance(in)
		if err != nil {
			return err
		}
		t.Addf(k, ir.FlagTime, ir.TotalBits, ir.TotalTime())
	}
	_, err := fmt.Fprintln(w, t)
	return err
}
