package exp

import (
	"fmt"

	"nab/internal/graph"
	"nab/internal/sim"
	"nab/internal/spantree"
)

// pipeMsg tags a Phase-1 block with its instance, so many instances can
// stream through the network simultaneously.
type pipeMsg struct {
	Instance int
	Tree     int
	Bits     int64
}

// simulatePipelinedPhase1 measures the Appendix D effect directly: q
// instances' Phase-1 broadcasts are injected one round apart and flow
// through the arborescences concurrently, so hop h of instance i shares
// round i+h with hop h-1 of instance i+1. The store-and-forward time of
// the combined run is the pipelined total; the sequential total is q times
// a single instance's store-and-forward time.
func simulatePipelinedPhase1(g *graph.Directed, source graph.NodeID, lenBits, q int) (sequential, pipelined float64, err error) {
	gamma, err := g.BroadcastMincut(source)
	if err != nil {
		return 0, 0, err
	}
	trees, err := spantree.PackArborescences(g, source, int(gamma))
	if err != nil {
		return 0, 0, err
	}
	depth := 0
	for _, tr := range trees {
		if d := tr.Depth(); d > depth {
			depth = d
		}
	}
	blockBits := func(tree int) int64 {
		lo := tree * lenBits / len(trees)
		hi := (tree + 1) * lenBits / len(trees)
		return int64(hi - lo)
	}

	run := func(instances int, injectEvery int) (float64, error) {
		e := sim.New(g)
		e.SetRecording(false)
		for _, v := range g.Nodes() {
			v := v
			if v == source {
				if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
					if round%injectEvery != 0 {
						return nil
					}
					inst := round / injectEvery
					if inst >= instances {
						return nil
					}
					var out []sim.Message
					for ti, tr := range trees {
						for _, ed := range tr.Edges() {
							if ed.From != source {
								continue
							}
							out = append(out, sim.Message{
								From: source, To: ed.To, Bits: blockBits(ti),
								Body: pipeMsg{Instance: inst, Tree: ti, Bits: blockBits(ti)},
							})
						}
					}
					return out
				})); err != nil {
					return 0, err
				}
				continue
			}
			if err := e.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
				var out []sim.Message
				for _, m := range inbox {
					pm, ok := m.Body.(pipeMsg)
					if !ok || pm.Tree < 0 || pm.Tree >= len(trees) {
						continue
					}
					tr := trees[pm.Tree]
					if parent, inTree := tr.Parent[v]; !inTree || parent != m.From {
						continue
					}
					for _, ed := range tr.Edges() {
						if ed.From != v {
							continue
						}
						out = append(out, sim.Message{From: v, To: ed.To, Bits: pm.Bits, Body: pm})
					}
				}
				return out
			})); err != nil {
				return 0, err
			}
		}
		rounds := instances*injectEvery + depth + 1
		stats, err := e.RunPhase("pipe", rounds)
		if err != nil {
			return 0, err
		}
		return stats.StoreForwardTime(), nil
	}

	// Sequential baseline: one instance at a time (inject every depth+1
	// rounds so instances never overlap).
	seq, err := run(q, depth+1)
	if err != nil {
		return 0, 0, fmt.Errorf("sequential: %w", err)
	}
	// Pipelined: a new instance every round.
	pip, err := run(q, 1)
	if err != nil {
		return 0, 0, fmt.Errorf("pipelined: %w", err)
	}
	return seq, pip, nil
}
