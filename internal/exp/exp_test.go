package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1Fig1(t *testing.T) {
	var buf bytes.Buffer
	if err := E1Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MINCUT(G,1,2)", "gamma", "U_k", "{1 2 4}"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestE2Fig2(t *testing.T) {
	var buf bytes.Buffer
	if err := E2Fig2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tree 1 edges") {
		t.Errorf("E2 output malformed:\n%s", buf.String())
	}
}

func TestE3Theorem1Small(t *testing.T) {
	var buf bytes.Buffer
	if err := E3Theorem1(&buf, 60, 11); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bound") {
		t.Errorf("E3 output malformed:\n%s", buf.String())
	}
}

func TestE4Small(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E4ThroughputVsCapacity(&buf, 0, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no E4 rows")
	}
	for _, r := range rows {
		// Theorem 3 (algebra): bound >= UB * guarantee.
		if r.TNABBound < r.CapacityUB*r.Guarantee-1e-9 {
			t.Errorf("%s: TNAB %v < UB*guarantee %v", r.Name, r.TNABBound, r.CapacityUB*r.Guarantee)
		}
		// Theorem 2 sanity: no measurement beats the capacity bound.
		if r.Asymptotic > r.CapacityUB+1e-9 {
			t.Errorf("%s: asymptotic rate %v exceeds capacity UB %v", r.Name, r.Asymptotic, r.CapacityUB)
		}
		// Theorem 3, finite-L: the clean rate must reach the guaranteed
		// fraction up to the flag-broadcast overhead (generous 40%% slack
		// absorbs it at L=32k bits; EXPERIMENTS.md records exact numbers).
		if r.Asymptotic < r.CapacityUB*r.Guarantee*0.6 {
			t.Errorf("%s: asymptotic rate %v below 60%%%% of guaranteed %v", r.Name, r.Asymptotic, r.CapacityUB*r.Guarantee)
		}
		if r.AdvFiniteQ <= 0 {
			t.Errorf("%s: adversarial throughput %v", r.Name, r.AdvFiniteQ)
		}
	}
}

func TestE5Small(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E5Pipelining(&buf, 2048, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("need at least two topology points")
	}
	// Pipelining must never be slower, and the gap must widen with hops.
	for _, r := range rows {
		if r.Pipelined > r.Unpipelined+1e-9 {
			t.Errorf("n=%d: pipelined %v slower than unpipelined %v", r.N, r.Pipelined, r.Unpipelined)
		}
	}
	firstGap := rows[0].Unpipelined - rows[0].Pipelined
	lastGap := rows[len(rows)-1].Unpipelined - rows[len(rows)-1].Pipelined
	if lastGap < firstGap {
		t.Errorf("pipelining gap shrank with hop count: %v -> %v", firstGap, lastGap)
	}
	// The measured streaming simulation must match the Appendix D formula:
	// sequential ~ Q*hops*hopTime, pipelined ~ (Q+hops-1)*hopTime.
	for _, r := range rows {
		if r.SimPipe >= r.SimSeq {
			t.Errorf("n=%d: measured pipelining not faster: %v vs %v", r.N, r.SimPipe, r.SimSeq)
		}
		hopTime := r.SimSeq / float64(r.SimQ*r.Hops)
		wantPipe := float64(r.SimQ+r.Hops-1) * hopTime
		if r.SimPipe > wantPipe*1.15 || r.SimPipe < wantPipe*0.85 {
			t.Errorf("n=%d: measured pipelined %v deviates from Appendix D prediction %v", r.N, r.SimPipe, wantPipe)
		}
	}
}

func TestE6Small(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E6Amortization(&buf, 32, []int{1, 8, 64}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Dispute share must shrink as Q grows; throughput must rise.
	if rows[len(rows)-1].DisputeShare > rows[0].DisputeShare {
		t.Errorf("dispute share grew with Q: %v -> %v", rows[0].DisputeShare, rows[len(rows)-1].DisputeShare)
	}
	if rows[len(rows)-1].Throughput < rows[0].Throughput {
		t.Errorf("throughput fell with Q: %v -> %v", rows[0].Throughput, rows[len(rows)-1].Throughput)
	}
}

func TestE7Small(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E7Baselines(&buf, 2048, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatal("not enough capacity points")
	}
	// The intro's "arbitrarily worse" behaviour, at finite L: NAB's rate
	// grows with capacity while the oblivious baseline stays pinned to the
	// thin link, so the ratio widens (the separation is unbounded as
	// L -> infinity; the constant-size flag broadcast caps it at finite L).
	first, last := rows[0], rows[len(rows)-1]
	if last.NAB <= first.NAB*1.5 {
		t.Errorf("NAB rate did not grow with capacity: %v -> %v", first.NAB, last.NAB)
	}
	if last.EIG > first.EIG*1.5 || first.EIG > last.EIG*1.5 {
		t.Errorf("EIG rate not pinned by thin link: %v -> %v", first.EIG, last.EIG)
	}
	if last.Ratio < 2*first.Ratio {
		t.Errorf("ratio growth too weak: %v -> %v", first.Ratio, last.Ratio)
	}
}

func TestE8Small(t *testing.T) {
	var buf bytes.Buffer
	if err := E8Correctness(&buf, 6, 8, 17); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "violations") {
		t.Errorf("E8 output malformed:\n%s", buf.String())
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationRho(&buf, 32, 2); err != nil {
		t.Fatalf("rho: %v", err)
	}
	if err := AblationPacking(&buf, 32, 2); err != nil {
		t.Fatalf("packing: %v", err)
	}
	if err := AblationRelayPaths(&buf, 8, 2); err != nil {
		t.Fatalf("relay: %v", err)
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("ablation output missing")
	}
}
