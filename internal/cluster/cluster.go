package cluster

import (
	"fmt"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/transport"
)

// Options tunes one process's cluster endpoint.
type Options struct {
	// TimeUnit/Burst enable per-link capacity pacing on the wire (see
	// transport.PeerOptions).
	TimeUnit time.Duration
	Burst    int64
	// BootTimeout bounds how long link and control dials wait for peer
	// processes to come up. Default 20s.
	BootTimeout time.Duration
}

// Node is one process's membership in a cluster: the transport endpoint,
// the control-plane endpoint and the (partial) pipelined runtime driving
// the locally hosted topology nodes.
type Node struct {
	cfg    *Config
	locals []graph.NodeID
	tr     *transport.Peer
	ctrl   *ctrlPlane
	rt     *runtime.Runtime
}

// Start brings this process into the cluster as the host of node id (and
// every node colocated at id's address): it opens the mesh listener,
// joins the control plane (serving it if id's process hosts the source),
// and starts the partial runtime. Peers may be started in any order;
// link dials retry until the mesh is up.
func Start(cfg *Config, id graph.NodeID, opt Options) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Spec(id)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d has no spec", id)
	}
	locals := cfg.Colocated(id)
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		return nil, err
	}

	tr, err := transport.NewPeer(coreCfg.Graph, locals, cfg.Addrs(), spec.Addr, transport.PeerOptions{
		TimeUnit:    opt.TimeUnit,
		Burst:       opt.Burst,
		DialTimeout: opt.BootTimeout,
	})
	if err != nil {
		return nil, err
	}

	// The source's host coordinates: it can decode every schedule
	// decision itself (the source never leaves the instance graph while
	// instances still run phases) and streams them to followers.
	isCoord := false
	for _, v := range locals {
		if v == cfg.Source {
			isCoord = true
		}
	}
	procs := map[string]bool{}
	for _, ns := range cfg.Nodes {
		procs[ns.Addr] = true
	}
	var ctrl *ctrlPlane
	if isCoord {
		ctrl, err = newCoordinator(cfg.CtrlAddr, len(procs))
	} else {
		ctrl, err = newFollower(cfg.CtrlAddr, opt.BootTimeout)
	}
	if err != nil {
		tr.Close()
		return nil, err
	}

	rt, err := runtime.New(runtime.Config{
		Config:     coreCfg,
		Window:     cfg.Window,
		Transport:  tr,
		LocalNodes: locals,
		Plane:      ctrl,
	})
	if err != nil {
		ctrl.Close()
		return nil, err // runtime owns (and closed) the transport
	}
	return &Node{cfg: cfg, locals: locals, tr: tr, ctrl: ctrl, rt: rt}, nil
}

// Locals returns the topology nodes this process hosts.
func (n *Node) Locals() []graph.NodeID { return append([]graph.NodeID(nil), n.locals...) }

// Runtime exposes the underlying partial runtime (e.g. for RunFunc
// streaming commits).
func (n *Node) Runtime() *runtime.Runtime { return n.rt }

// Run executes the config's deterministic workload. Every process of the
// cluster calls Run; each result carries the outputs of the local
// fault-free nodes, with mismatch bits and dispute evolution agreed
// cluster-wide.
func (n *Node) Run() (*runtime.Result, error) {
	return n.RunInputs(n.cfg.Inputs())
}

// RunInputs executes an explicit input sequence (all processes must pass
// identical inputs). After the local commits it holds the process at the
// cluster's shutdown barrier, keeping sockets open while stragglers flush
// their final frames.
func (n *Node) RunInputs(inputs [][]byte) (*runtime.Result, error) {
	return n.RunStream(inputs, nil)
}

// RunStream is RunInputs with a per-commit hook invoked synchronously as
// each instance commits, in order (see runtime.RunFunc) — the handle for
// streaming a node's decisions out while the pipeline keeps running.
func (n *Node) RunStream(inputs [][]byte, commit func(*core.InstanceResult) error) (*runtime.Result, error) {
	res, err := n.rt.RunFunc(inputs, commit)
	timeout := 30 * time.Second
	if err != nil {
		// Still announce done (peers should not wait for a failed
		// process), but do not linger.
		timeout = time.Second
	}
	n.ctrl.barrier(timeout)
	return res, err
}

// Dropped reports inbound frames the transport rejected as violating
// their handshake pinning.
func (n *Node) Dropped() int64 { return n.tr.Dropped() }

// Close leaves the cluster: shuts the runtime (and its transport) and
// the control plane down.
func (n *Node) Close() error {
	err := n.rt.Close()
	n.ctrl.Close()
	return err
}
