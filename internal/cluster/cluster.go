package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/obs"
	"nab/internal/runtime"
	"nab/internal/transport"
	"nab/internal/wal"
)

// Options tunes one process's cluster endpoint.
type Options struct {
	// TimeUnit/Burst enable per-link capacity pacing on the wire (see
	// transport.PeerOptions).
	TimeUnit time.Duration
	Burst    int64
	// BootTimeout bounds how long link and control dials wait for peer
	// processes to come up. Default 20s.
	BootTimeout time.Duration
	// Reservation supplies held listeners from ReserveAddrs: the bootstrap
	// takes this process's mesh endpoint (and, on the coordinator, the
	// control-plane endpoint) from it instead of re-binding the configured
	// addresses, closing the release-then-rebind race.
	Reservation *Reservation

	// Durable switches the process to crash-recovery mode: mesh links
	// heal (transport.PeerOptions.Reconnect), the control plane carries
	// the rejoin protocol, and Stream supervises rollback rounds — a peer
	// process killed and restarted re-enters the cluster mid-stream with
	// the committed sequence staying byte-identical to the uninterrupted
	// run. Every process of the cluster must agree on Durable.
	Durable bool
	// Recovered is the committed-instance prefix replayed from this
	// process's WAL when it restarts (nil on first boot). The runtime is
	// restored to it before streaming and a rejoin round is announced.
	Recovered []*core.InstanceResult
	// RecoveredInputs maps instance numbers to submitted payloads
	// recovered from the WAL — needed when a rollback round rewinds below
	// this process's own watermark, so it can re-execute instances it
	// committed before the crash.
	RecoveredInputs map[int][]byte
	// Rejoining marks a process restarting over an existing WAL: Start
	// announces a rejoin round so the (possibly stalled) cluster rolls
	// back and re-drives the frames this process missed. It must be set
	// whenever the WAL shows a previous incarnation — even one that
	// crashed before its first commit became durable, since its peers may
	// already be stalled waiting for its frames.
	Rejoining bool
	// RejoinLinger bounds how long a process that finished its workload
	// stays parked at the shutdown barrier, mesh intact, ready to serve a
	// rollback for a peer that crashed near the end. Default 2 minutes
	// (durable mode only).
	RejoinLinger time.Duration

	// Join marks a blank-WAL process entering a live cluster: instead of
	// replaying history it announces a join round, fetches a snapshot
	// (cross-validated against F+1 peers) plus the WAL-fold tail over the
	// control plane, and enters the stream at the cluster's rewind
	// watermark. Requires Durable (the transferred state is persisted so
	// the process's own restarts recover) and a genuinely blank WAL —
	// combining Join with Rejoining is an error.
	Join bool
	// RecoveredBase is the snapshot the WAL is anchored on (nil for a
	// full-history log): this process's floor. Rollbacks below the floor
	// are impossible by the floor-safety rule — every process fsyncs its
	// WAL before acknowledging a rewind, so no later round can target a
	// watermark below any persisted floor.
	RecoveredBase *core.SnapshotState
	// RecoveredEpoch is the launch epoch stored with RecoveredBase.
	RecoveredEpoch uint64
	// RecoveredDigest is the commit-chain digest at the floor.
	RecoveredDigest uint64
	// PersistFloor (set by the session layer) writes a snapshot record
	// into this process's WAL and compacts behind it — called with a join
	// base and after rollback rounds establish a new floor.
	PersistFloor func(wal.Snapshot) error
	// SyncWAL (set by the session layer) fsyncs the WAL; called before a
	// rewind ack so every process's durable watermark provably reaches
	// the round's floor.
	SyncWAL func() error
}

// Node is one process's membership in a cluster: the transport endpoint,
// the control-plane endpoint and the (partial) pipelined runtime driving
// the locally hosted topology nodes.
type Node struct {
	cfg    *Config
	opt    Options
	locals []graph.NodeID
	tr     *transport.Peer
	ctrl   *ctrlPlane
	rt     *runtime.Runtime
	log    *obs.Logger // rejoin/rollback event log, bound to the local node set

	// Crash-recovery supervision state (Durable mode); all touched only
	// by the single Stream call.
	epoch         uint64                 // launch epoch agreed by the last rollback
	lastRound     int                    // last rollback round this process acked
	rejoinPending bool                   // announce a rejoin when the supervisor starts
	committed     []*core.InstanceResult // committed results above the floor, recovery + live
	inputs        *inputBuffer           // retained submissions for re-execution

	// Snapshot state-sync bookkeeping (Durable mode). The floor is the
	// watermark of the base snapshot everything below is folded into;
	// committed[i] holds instance floor+1+i. chain[i] is the commit-chain
	// digest (over AppendCommitFold payloads) at instance floor+i, with
	// chain[0] the base digest — identical across honest processes, the
	// substance of join-round cross-validation.
	blank   bool // a joiner that has not completed its join round yet
	lead    int64
	floor   int
	base    core.SnapshotState
	chain   []uint64
	encBuf  []byte      // AppendCommitFold scratch
	pending *joinResult // transferred state awaiting the rewind

	// Re-execution tripwire armed by a join rewind: once the chain reaches
	// checkK, its digest must equal checkDigest — the f+1 quorum's value at
	// the pre-join watermark. Zero checkK means disarmed.
	checkK      int
	checkDigest uint64

	// joinBegan stamps a blank joiner's announce, so the resume that
	// completes its first round can observe the announce→resume join
	// duration. Zero for plain rejoins (applyRewind clears blank before
	// the resume lands, so the flag alone cannot carry this).
	joinBegan time.Time

	// testServeTamper lets in-package tests play a Byzantine snapshot
	// server: it mutates the serve state after the honest digests are
	// computed (see buildServe).
	testServeTamper func(*serveState)

	stopOnce sync.Once
	stop     chan struct{} // releases the context watchdog
}

// Start brings this process into the cluster as the host of node id (and
// every node colocated at id's address): it opens the mesh listener,
// joins the control plane (serving it if id's process hosts the source),
// and starts the partial runtime. Peers may be started in any order;
// link dials retry until the mesh is up. Start is StartContext with a
// background context.
func Start(cfg *Config, id graph.NodeID, opt Options) (*Node, error) {
	return StartContext(context.Background(), cfg, id, opt)
}

// StartContext is Start bounded by ctx: canceling it aborts the boot-time
// dial retries (a follower waiting for the coordinator to come up) and
// makes the control plane's pending schedule waits fail, so a canceled
// session tears down instead of waiting out BootTimeout.
func StartContext(ctx context.Context, cfg *Config, id graph.NodeID, opt Options) (*Node, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Spec(id)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d has no spec", id)
	}
	locals := cfg.Colocated(id)
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		return nil, err
	}

	popt := transport.PeerOptions{
		TimeUnit:    opt.TimeUnit,
		Burst:       opt.Burst,
		DialTimeout: opt.BootTimeout,
		Reconnect:   opt.Durable,
		Chaos:       cfg.Chaos,
	}
	if opt.Reservation != nil {
		popt.Listener = opt.Reservation.Take(spec.Addr)
	}
	tr, err := transport.NewPeer(coreCfg.Graph, locals, cfg.Addrs(), spec.Addr, popt)
	if err != nil {
		return nil, err
	}

	// The source's host coordinates: it can decode every schedule
	// decision itself (the source never leaves the instance graph while
	// instances still run phases) and streams them to followers.
	isCoord := false
	for _, v := range locals {
		if v == cfg.Source {
			isCoord = true
		}
	}
	procs := map[string]bool{}
	for _, ns := range cfg.Nodes {
		procs[ns.Addr] = true
	}
	var ctrl *ctrlPlane
	if isCoord {
		var cl net.Listener
		if opt.Reservation != nil {
			cl = opt.Reservation.Take(cfg.CtrlAddr)
		}
		ctrl, err = newCoordinator(cfg.CtrlAddr, len(procs), cl, opt.Durable, cfg.F+1, cfg.SnapshotInterval)
	} else {
		ctrl, err = newFollower(ctx, cfg.CtrlAddr, opt.BootTimeout, opt.Durable)
	}
	if err != nil {
		tr.Close()
		return nil, err
	}

	rt, err := runtime.New(runtime.Config{
		Config:     coreCfg,
		Window:     cfg.Window,
		Transport:  tr,
		LocalNodes: locals,
		Plane:      ctrl,
	})
	if err != nil {
		ctrl.Close()
		return nil, err // runtime owns (and closed) the transport
	}
	n := &Node{
		cfg: cfg, opt: opt, locals: locals, tr: tr, ctrl: ctrl, rt: rt,
		log:  rejoinLog.With("node", fmt.Sprint(locals)),
		stop: make(chan struct{}),
	}
	if opt.Join && !opt.Durable {
		ctrl.Close()
		rt.Close()
		return nil, fmt.Errorf("cluster: Join requires Durable")
	}
	if opt.Join && (opt.Rejoining || opt.RecoveredBase != nil || len(opt.Recovered) > 0) {
		ctrl.Close()
		rt.Close()
		return nil, fmt.Errorf("cluster: Join requires a blank WAL; a process with history rejoins with Recover")
	}
	if opt.Durable {
		n.lead = int64(cfg.Lead(spec.Addr))
		n.base = core.SnapshotState{}
		n.chain = append(n.chain, wal.DigestSeed)
		if opt.RecoveredBase != nil {
			n.base = *opt.RecoveredBase
			n.floor = n.base.K
			n.epoch = opt.RecoveredEpoch
			n.chain[0] = opt.RecoveredDigest
		}
		n.committed = append(n.committed, opt.Recovered...)
		for i, ir := range n.committed {
			if ir.K != n.floor+1+i {
				ctrl.Close()
				rt.Close()
				return nil, fmt.Errorf("cluster: recovered commit %d does not continue floor %d", ir.K, n.floor)
			}
			n.encBuf = wal.AppendCommitFold(n.encBuf[:0], ir)
			n.chain = append(n.chain, wal.Chain(n.chain[len(n.chain)-1], n.encBuf))
		}
		n.inputs = newInputBuffer(opt.RecoveredInputs)
		if err := rt.RestoreSnapshot(0, n.base, n.committed); err != nil {
			ctrl.Close()
			rt.Close()
			return nil, err
		}
		// A restarting process announces its rejoin from the stream
		// supervisor (streamDurable), where a control link that dies under
		// the announcement — e.g. a dial that landed in the dead
		// coordinator's lingering accept backlog and gets reset on first
		// write — is retried like any other control-plane loss. A blank
		// joiner announces the same way; blankness rides its sync ack.
		n.blank = opt.Join
		n.rejoinPending = opt.Rejoining || opt.Join
	}
	// The watchdog force-closes the endpoints on cancellation, so actors
	// blocked in link dials (a peer process that never came up) or paced
	// sends abort promptly instead of waiting out their timeouts.
	go func() {
		select {
		case <-ctx.Done():
			n.Close()
		case <-n.stop:
		}
	}()
	return n, nil
}

// Locals returns the topology nodes this process hosts.
func (n *Node) Locals() []graph.NodeID { return append([]graph.NodeID(nil), n.locals...) }

// Runtime exposes the underlying partial runtime (e.g. for dispute-set
// introspection or input validation before a Stream).
func (n *Node) Runtime() *runtime.Runtime { return n.rt }

// Stream executes submissions pulled from subs until the channel closes
// (see runtime.RunStream: a bounded channel gives backpressure; every
// process of the cluster must feed the same sequence). After the local
// commits it holds the process at the cluster's shutdown barrier, keeping
// sockets open while stragglers flush their final frames. Canceling ctx
// aborts in-flight executions — mid-dispute included — and skips the
// lingering barrier wait.
func (n *Node) Stream(ctx context.Context, subs <-chan []byte, commit func(*core.InstanceResult) error) (*runtime.Result, error) {
	if n.opt.Durable {
		return n.streamDurable(ctx, subs, commit)
	}
	res, err := n.rt.RunStream(ctx, subs, commit)
	timeout := 30 * time.Second
	if err != nil {
		// Still announce done (peers should not wait for a failed or
		// canceled process), but do not linger.
		timeout = time.Second
	}
	n.ctrl.barrier(ctx, timeout)
	return res, err
}

// Dropped reports inbound frames the transport rejected as violating
// their handshake pinning.
func (n *Node) Dropped() int64 { return n.tr.Dropped() }

// Close leaves the cluster: shuts the runtime (and its transport) and
// the control plane down. Idempotent.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	err := n.rt.Close()
	n.ctrl.Close()
	return err
}
