package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/obs"
	"nab/internal/runtime"
	"nab/internal/transport"
)

// Options tunes one process's cluster endpoint.
type Options struct {
	// TimeUnit/Burst enable per-link capacity pacing on the wire (see
	// transport.PeerOptions).
	TimeUnit time.Duration
	Burst    int64
	// BootTimeout bounds how long link and control dials wait for peer
	// processes to come up. Default 20s.
	BootTimeout time.Duration
	// Reservation supplies held listeners from ReserveAddrs: the bootstrap
	// takes this process's mesh endpoint (and, on the coordinator, the
	// control-plane endpoint) from it instead of re-binding the configured
	// addresses, closing the release-then-rebind race.
	Reservation *Reservation

	// Durable switches the process to crash-recovery mode: mesh links
	// heal (transport.PeerOptions.Reconnect), the control plane carries
	// the rejoin protocol, and Stream supervises rollback rounds — a peer
	// process killed and restarted re-enters the cluster mid-stream with
	// the committed sequence staying byte-identical to the uninterrupted
	// run. Every process of the cluster must agree on Durable.
	Durable bool
	// Recovered is the committed-instance prefix replayed from this
	// process's WAL when it restarts (nil on first boot). The runtime is
	// restored to it before streaming and a rejoin round is announced.
	Recovered []*core.InstanceResult
	// RecoveredInputs maps instance numbers to submitted payloads
	// recovered from the WAL — needed when a rollback round rewinds below
	// this process's own watermark, so it can re-execute instances it
	// committed before the crash.
	RecoveredInputs map[int][]byte
	// Rejoining marks a process restarting over an existing WAL: Start
	// announces a rejoin round so the (possibly stalled) cluster rolls
	// back and re-drives the frames this process missed. It must be set
	// whenever the WAL shows a previous incarnation — even one that
	// crashed before its first commit became durable, since its peers may
	// already be stalled waiting for its frames.
	Rejoining bool
	// RejoinLinger bounds how long a process that finished its workload
	// stays parked at the shutdown barrier, mesh intact, ready to serve a
	// rollback for a peer that crashed near the end. Default 2 minutes
	// (durable mode only).
	RejoinLinger time.Duration
}

// Node is one process's membership in a cluster: the transport endpoint,
// the control-plane endpoint and the (partial) pipelined runtime driving
// the locally hosted topology nodes.
type Node struct {
	cfg    *Config
	opt    Options
	locals []graph.NodeID
	tr     *transport.Peer
	ctrl   *ctrlPlane
	rt     *runtime.Runtime
	log    *obs.Logger // rejoin/rollback event log, bound to the local node set

	// Crash-recovery supervision state (Durable mode); all touched only
	// by the single Stream call.
	epoch         uint64                 // launch epoch agreed by the last rollback
	lastRound     int                    // last rollback round this process acked
	rejoinPending bool                   // announce a rejoin when the supervisor starts
	committed     []*core.InstanceResult // full committed prefix, recovery + live
	inputs        *inputBuffer           // retained submissions for re-execution

	stopOnce sync.Once
	stop     chan struct{} // releases the context watchdog
}

// Start brings this process into the cluster as the host of node id (and
// every node colocated at id's address): it opens the mesh listener,
// joins the control plane (serving it if id's process hosts the source),
// and starts the partial runtime. Peers may be started in any order;
// link dials retry until the mesh is up. Start is StartContext with a
// background context.
func Start(cfg *Config, id graph.NodeID, opt Options) (*Node, error) {
	return StartContext(context.Background(), cfg, id, opt)
}

// StartContext is Start bounded by ctx: canceling it aborts the boot-time
// dial retries (a follower waiting for the coordinator to come up) and
// makes the control plane's pending schedule waits fail, so a canceled
// session tears down instead of waiting out BootTimeout.
func StartContext(ctx context.Context, cfg *Config, id graph.NodeID, opt Options) (*Node, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, ok := cfg.Spec(id)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d has no spec", id)
	}
	locals := cfg.Colocated(id)
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		return nil, err
	}

	popt := transport.PeerOptions{
		TimeUnit:    opt.TimeUnit,
		Burst:       opt.Burst,
		DialTimeout: opt.BootTimeout,
		Reconnect:   opt.Durable,
		Chaos:       cfg.Chaos,
	}
	if opt.Reservation != nil {
		popt.Listener = opt.Reservation.Take(spec.Addr)
	}
	tr, err := transport.NewPeer(coreCfg.Graph, locals, cfg.Addrs(), spec.Addr, popt)
	if err != nil {
		return nil, err
	}

	// The source's host coordinates: it can decode every schedule
	// decision itself (the source never leaves the instance graph while
	// instances still run phases) and streams them to followers.
	isCoord := false
	for _, v := range locals {
		if v == cfg.Source {
			isCoord = true
		}
	}
	procs := map[string]bool{}
	for _, ns := range cfg.Nodes {
		procs[ns.Addr] = true
	}
	var ctrl *ctrlPlane
	if isCoord {
		var cl net.Listener
		if opt.Reservation != nil {
			cl = opt.Reservation.Take(cfg.CtrlAddr)
		}
		ctrl, err = newCoordinator(cfg.CtrlAddr, len(procs), cl, opt.Durable)
	} else {
		ctrl, err = newFollower(ctx, cfg.CtrlAddr, opt.BootTimeout, opt.Durable)
	}
	if err != nil {
		tr.Close()
		return nil, err
	}

	rt, err := runtime.New(runtime.Config{
		Config:     coreCfg,
		Window:     cfg.Window,
		Transport:  tr,
		LocalNodes: locals,
		Plane:      ctrl,
	})
	if err != nil {
		ctrl.Close()
		return nil, err // runtime owns (and closed) the transport
	}
	n := &Node{
		cfg: cfg, opt: opt, locals: locals, tr: tr, ctrl: ctrl, rt: rt,
		log:  rejoinLog.With("node", fmt.Sprint(locals)),
		stop: make(chan struct{}),
	}
	if opt.Durable {
		n.committed = append(n.committed, opt.Recovered...)
		n.inputs = newInputBuffer(opt.RecoveredInputs)
		if err := rt.Restore(0, len(n.committed), n.committed); err != nil {
			ctrl.Close()
			rt.Close()
			return nil, err
		}
		// A restarting process announces its rejoin from the stream
		// supervisor (streamDurable), where a control link that dies under
		// the announcement — e.g. a dial that landed in the dead
		// coordinator's lingering accept backlog and gets reset on first
		// write — is retried like any other control-plane loss.
		n.rejoinPending = opt.Rejoining
	}
	// The watchdog force-closes the endpoints on cancellation, so actors
	// blocked in link dials (a peer process that never came up) or paced
	// sends abort promptly instead of waiting out their timeouts.
	go func() {
		select {
		case <-ctx.Done():
			n.Close()
		case <-n.stop:
		}
	}()
	return n, nil
}

// Locals returns the topology nodes this process hosts.
func (n *Node) Locals() []graph.NodeID { return append([]graph.NodeID(nil), n.locals...) }

// Runtime exposes the underlying partial runtime (e.g. for dispute-set
// introspection or input validation before a Stream).
func (n *Node) Runtime() *runtime.Runtime { return n.rt }

// Stream executes submissions pulled from subs until the channel closes
// (see runtime.RunStream: a bounded channel gives backpressure; every
// process of the cluster must feed the same sequence). After the local
// commits it holds the process at the cluster's shutdown barrier, keeping
// sockets open while stragglers flush their final frames. Canceling ctx
// aborts in-flight executions — mid-dispute included — and skips the
// lingering barrier wait.
func (n *Node) Stream(ctx context.Context, subs <-chan []byte, commit func(*core.InstanceResult) error) (*runtime.Result, error) {
	if n.opt.Durable {
		return n.streamDurable(ctx, subs, commit)
	}
	res, err := n.rt.RunStream(ctx, subs, commit)
	timeout := 30 * time.Second
	if err != nil {
		// Still announce done (peers should not wait for a failed or
		// canceled process), but do not linger.
		timeout = time.Second
	}
	n.ctrl.barrier(ctx, timeout)
	return res, err
}

// Dropped reports inbound frames the transport rejected as violating
// their handshake pinning.
func (n *Node) Dropped() int64 { return n.tr.Dropped() }

// Close leaves the cluster: shuts the runtime (and its transport) and
// the control plane down. Idempotent.
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	err := n.rt.Close()
	n.ctrl.Close()
	return err
}
