package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
	"nab/internal/wal"
)

// joinConfig assembles a one-node-per-process K4 loopback cluster with a
// join snapshot boundary small enough that mid-stream joins fetch a real
// (non-empty) snapshot.
func joinConfig(t *testing.T, q, snapEvery int, advs map[graph.NodeID]string) (*Config, *Reservation) {
	t.Helper()
	g := topo.CompleteBi(4, 1)
	nodes := g.Nodes()
	rsv, err := ReserveAddrs(len(nodes) + 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsv.Close() })
	addrs := rsv.Addrs()
	cfg := &Config{
		Topology: g.Marshal(), Source: 1, F: 1,
		LenBytes: 24, Seed: 9, Window: 2, Instances: q,
		CtrlAddr:         addrs[len(nodes)],
		SnapshotInterval: snapEvery,
	}
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, NodeSpec{ID: v, Addr: addrs[i], Adversary: advs[v]})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg, rsv
}

// durableRun is one in-process stand-in for a durable OS process: a
// started Node plus its supervised stream.
type durableRun struct {
	n      *Node
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	commits []*core.InstanceResult
	res     *runtime.Result
	err     error
}

// stream launches the run's Stream over the full workload; killAt > 0
// cancels the stream's context from inside the commit callback once that
// many fresh commits have been delivered (a deterministic mid-stream
// crash).
func (dr *durableRun) stream(cfg *Config, killAt int) {
	ctx, cancel := context.WithCancel(context.Background())
	dr.cancel = cancel
	dr.done = make(chan struct{})
	subs := make(chan []byte, cfg.Instances)
	for _, in := range cfg.Inputs() {
		subs <- in
	}
	close(subs)
	go func() {
		defer close(dr.done)
		res, err := dr.n.Stream(ctx, subs, func(ir *core.InstanceResult) error {
			dr.mu.Lock()
			dr.commits = append(dr.commits, ir)
			cnt := len(dr.commits)
			dr.mu.Unlock()
			if killAt > 0 && cnt >= killAt {
				cancel()
			}
			return nil
		})
		dr.mu.Lock()
		dr.res, dr.err = res, err
		dr.mu.Unlock()
	}()
}

// runJoinScenario drives the in-process join round: boot a durable
// 4-process cluster, crash the victim after killAt commits, start a
// blank replacement with Join, and verify the union of everyone's
// commits (and final dispute state) is byte-identical to the lockstep
// oracle. tamper, when non-nil, is installed on the coordinator's node
// as a Byzantine snapshot server before any stream starts.
//
// The parameters are chosen so the join boundary is deterministic: with
// snapshot granularity 8, pipeline window 2 and the kill at 10 delivered
// commits, every survivor watermark lies in [8, 14] (the victim's frame
// dependencies bound the skew to the window on each side), so the round's
// boundary is exactly 8 — and 8 never exceeds the victim's delivered
// count, so the joiner's re-execution covers every output the dead
// incarnation left unemitted.
func runJoinScenario(t *testing.T, q, killAt int, tamper func(*serveState)) {
	t.Helper()
	cfg, rsv := joinConfig(t, q, 8, map[graph.NodeID]string{3: "alarm"})
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	lock, err := core.NewRunner(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(cfg.Inputs())
	if err != nil {
		t.Fatal(err)
	}

	const victim = graph.NodeID(2)
	opts := Options{BootTimeout: 30 * time.Second, Reservation: rsv, Durable: true,
		RejoinLinger: 2 * time.Minute}
	runs := map[graph.NodeID]*durableRun{}
	// The coordinator first, so follower control dials land immediately.
	order := []graph.NodeID{1, 2, 3, 4}
	for _, v := range order {
		n, err := Start(cfg, v, opts)
		if err != nil {
			t.Fatalf("start node %d: %v", v, err)
		}
		t.Cleanup(func() { n.Close() })
		runs[v] = &durableRun{n: n}
	}
	if tamper != nil {
		runs[1].n.testServeTamper = tamper
	}
	for _, v := range order {
		kill := 0
		if v == victim {
			kill = killAt
		}
		runs[v].stream(cfg, kill)
	}

	// The victim crashes itself at killAt; reap it and close its sockets.
	vr := runs[victim]
	select {
	case <-vr.done:
	case <-time.After(time.Minute):
		t.Fatal("victim never reached its kill point")
	}
	if vr.err == nil {
		t.Fatal("victim finished the workload before the kill point; raise q")
	}
	vr.n.Close()
	t.Logf("killed victim after %d commits", len(vr.commits))

	// The blank replacement: no reservation (the victim's listener died
	// with it; the joiner rebinds the configured address itself).
	jopt := Options{BootTimeout: 30 * time.Second, Durable: true, Join: true,
		RejoinLinger: 2 * time.Minute}
	jn, err := Start(cfg, victim, jopt)
	if err != nil {
		t.Fatalf("start joiner: %v", err)
	}
	t.Cleanup(func() { jn.Close() })
	joiner := &durableRun{n: jn}
	joiner.stream(cfg, 0)
	runs[victim] = joiner

	for _, v := range order {
		select {
		case <-runs[v].done:
		case <-time.After(3 * time.Minute):
			t.Fatalf("node %d did not finish after the join", v)
		}
		if err := runs[v].err; err != nil {
			t.Fatalf("node %d stream failed: %v", v, err)
		}
	}

	// The joiner entered at the snapshot boundary, never replaying history.
	floor := joiner.n.floor
	if floor != 8 {
		t.Fatalf("joiner floor = %d; want the deterministic boundary 8", floor)
	}
	if first := joiner.commits[0].K; first != floor+1 {
		t.Fatalf("joiner's first commit is instance %d, want %d (floor %d)", first, floor+1, floor)
	}
	if last := joiner.commits[len(joiner.commits)-1].K; last != q {
		t.Fatalf("joiner's last commit is instance %d, want %d", last, q)
	}
	t.Logf("joiner entered at floor %d (%d live commits)", floor, len(joiner.commits))

	// Union of all processes' commit streams vs the lockstep oracle. The
	// victim's pre-crash commits were delivered (instances the joiner's
	// floor hides from its own stream), so its first incarnation merges
	// alongside the replacement.
	merged := make([]map[graph.NodeID][]byte, q)
	for i := range merged {
		merged[i] = map[graph.NodeID][]byte{}
	}
	streams := map[graph.NodeID]*durableRun{}
	for v, dr := range runs {
		streams[v] = dr
	}
	streams[victim+100] = vr // distinct key; node ids are 1..4
	for v, dr := range streams {
		if v > 100 {
			v -= 100
		}
		prev := 0
		for _, ir := range dr.commits {
			if prev > 0 && ir.K != prev+1 {
				t.Errorf("node %d: commit %d after %d (duplicated or skipped)", v, ir.K, prev)
			}
			prev = ir.K
			w := want.Instances[ir.K-1]
			if ir.Mismatch != w.Mismatch || ir.Phase3 != w.Phase3 {
				t.Errorf("node %d instance %d: schedule diverged from lockstep", v, ir.K)
			}
			for nv, out := range ir.Outputs {
				if old, dup := merged[ir.K-1][nv]; dup && !bytes.Equal(old, out) {
					t.Errorf("instance %d: node %d output reported twice with different values", ir.K, nv)
				}
				merged[ir.K-1][nv] = out
			}
		}
	}
	// The live processes (the joiner included) must end at the oracle's
	// dispute state; the crashed incarnation's is frozen mid-run.
	for v, dr := range runs {
		if got, wantD := dr.n.Runtime().Disputes().String(), lock.Disputes().String(); got != wantD {
			t.Errorf("node %d dispute set %q, want %q", v, got, wantD)
		}
	}
	for i, w := range want.Instances {
		if len(merged[i]) != len(w.Outputs) {
			t.Errorf("instance %d: cluster committed %d outputs, lockstep %d", i+1, len(merged[i]), len(w.Outputs))
		}
		for nv, out := range w.Outputs {
			if !bytes.Equal(merged[i][nv], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, nv, merged[i][nv], out)
			}
		}
	}
}

// TestClusterJoinMidStream crashes one process of a live durable cluster
// and replaces it with a blank joiner: the joiner fetches a snapshot +
// fold tail over the control plane, enters at the rewind floor without
// replaying history, and the cluster-wide commit union stays
// byte-identical to the lockstep oracle (dispute evolution included —
// the workload excludes a false alarmer before the crash).
func TestClusterJoinMidStream(t *testing.T) {
	runJoinScenario(t, 20, 10, nil)
}

// TestClusterJoinByzantineDigests makes the coordinator's own node a
// Byzantine snapshot server: it votes corrupted digests during the
// fetch phase. With f = 1 the joiner demands 2 matching copies, the two
// honest survivors outvote the liar, and the join completes
// byte-identically anyway.
func TestClusterJoinByzantineDigests(t *testing.T) {
	var fired atomic.Bool
	runJoinScenario(t, 20, 10, func(sv *serveState) {
		fired.Store(true)
		sv.snapDigest ^= 0xdead
		sv.tailDigest ^= 0xbeef
	})
	if !fired.Load() {
		t.Fatal("the Byzantine server was never asked to serve; the scenario did not exercise the fetch phase")
	}
}

// TestJoinFetchRefusesShortQuorum pins the fault-model floor of the join
// round: with fewer than f+1 eligible snapshot servers, every digest vote
// could be Byzantine, so the joiner must refuse the transfer outright
// rather than silently cross-validating against whatever is there.
func TestJoinFetchRefusesShortQuorum(t *testing.T) {
	cfg, _ := joinConfig(t, 4, 0, nil) // F = 1: the quorum needs 2 servers
	n := &Node{cfg: cfg}
	for _, servers := range [][]int64{nil, {7}} {
		_, err := n.joinFetch(1, ctrlMsg{Type: "fetch", K: 0, M: 2, Servers: servers}, nil)
		if err == nil || !strings.Contains(err.Error(), "eligible snapshot servers") {
			t.Errorf("servers %v: err = %v, want a short-quorum refusal", servers, err)
		}
	}
}

// fakeTransfer builds an honest server's transfer for [j, m] out of
// crafted fold records, returning the serve bytes and agreed digests.
func fakeTransfer(t *testing.T, j, m int, irs []*core.InstanceResult) (snapBytes, tailBytes []byte, snapDigest, tailDigest uint64) {
	t.Helper()
	snap := wal.Snapshot{K: j, Digest: wal.DigestSeed}
	snap.Canonicalize()
	snapBytes = wal.AppendSnapshot(nil, snap)
	digest := snap.Digest
	for _, ir := range irs {
		p := wal.AppendCommitFold(nil, ir)
		tailBytes = binary.AppendUvarint(tailBytes, uint64(len(p)))
		tailBytes = append(tailBytes, p...)
		digest = wal.Chain(digest, p)
	}
	return snapBytes, tailBytes, fnvSum(snapBytes), digest
}

// TestJoinFetchValidation unit-tests the joiner's content validation
// against a scripted server: the honest transfer folds to the target,
// and every Byzantine variation — corrupted snapshot bytes, wrong
// anchor, truncated or re-keyed tail, trailing junk, broken chain — is
// convicted with a descriptive error.
func TestJoinFetchValidation(t *testing.T) {
	cfg, _ := joinConfig(t, 4, 0, nil)
	n := &Node{cfg: cfg}
	irs := []*core.InstanceResult{{K: 1}, {K: 2}}
	snapBytes, tailBytes, snapDigest, tailDigest := fakeTransfer(t, 0, 2, irs)

	mkPull := func(snap, tail []byte) pullFn {
		return func(server int64, kind string) ([]byte, uint64, uint64, *ctrlMsg, error) {
			switch kind {
			case "snap":
				return append([]byte(nil), snap...), 0, 0, nil, nil
			case "tail":
				return append([]byte(nil), tail...), 0, 0, nil, nil
			}
			t.Fatalf("unexpected pull kind %q", kind)
			return nil, 0, 0, nil, nil
		}
	}

	res, abort, err := n.fetchFrom(mkPull(snapBytes, tailBytes), 1, 0, 2, snapDigest, tailDigest)
	if err != nil || abort != nil {
		t.Fatalf("honest transfer rejected: %v (abort %v)", err, abort)
	}
	if res.base.K != 0 || res.baseDigest != wal.DigestSeed || res.mDigest != tailDigest || res.m != 2 {
		t.Fatalf("honest transfer: base K=%d baseDigest=%x mDigest=%x m=%d", res.base.K, res.baseDigest, res.mDigest, res.m)
	}

	flippedSnap := append([]byte(nil), snapBytes...)
	flippedSnap[len(flippedSnap)-1] ^= 1
	cases := []struct {
		name string
		snap []byte
		tail []byte
		want string
	}{
		{"flipped snapshot byte", flippedSnap, tailBytes, "do not hash"},
		{"truncated tail", snapBytes, tailBytes[:len(tailBytes)-1], "truncated fold tail"},
		{"trailing junk", snapBytes, append(append([]byte(nil), tailBytes...), 0xff), "trailing bytes"},
	}
	for _, tc := range cases {
		_, abort, err := n.fetchFrom(mkPull(tc.snap, tc.tail), 1, 0, 2, snapDigest, tailDigest)
		if abort != nil {
			t.Fatalf("%s: unexpected abort", tc.name)
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Wrong anchor: a snapshot encoded at K=1 offered for boundary 0.
	wrongSnap := wal.Snapshot{K: 1, Digest: wal.DigestSeed}
	wrongSnap.Canonicalize()
	wb := wal.AppendSnapshot(nil, wrongSnap)
	if _, _, err := n.fetchFrom(mkPull(wb, nil), 1, 0, 0, fnvSum(wb), wrongSnap.Digest); err == nil || !strings.Contains(err.Error(), "snapshot at 1, want 0") {
		t.Errorf("wrong anchor: error %v", err)
	}

	// Re-keyed tail: the second fold claims instance 3.
	_, badTail, _, _ := fakeTransfer(t, 0, 2, []*core.InstanceResult{{K: 1}, {K: 3}})
	if _, _, err := n.fetchFrom(mkPull(snapBytes, badTail), 1, 0, 2, snapDigest, tailDigest); err == nil || !strings.Contains(err.Error(), "carries instance 3, want 2") {
		t.Errorf("re-keyed tail: error %v", err)
	}

	// Chain break: honest-looking bytes that chain to a different digest.
	if _, _, err := n.fetchFrom(mkPull(snapBytes, tailBytes), 1, 0, 2, snapDigest, tailDigest^1); err == nil || !strings.Contains(err.Error(), "chains to") {
		t.Errorf("chain break: error %v", err)
	}
}
