package cluster

import (
	"nab/internal/metrics"
	"nab/internal/obs"
)

// Control-plane instruments and the rejoin/ctrl structured loggers.
// NAB_REJOIN_DEBUG remains the enable switch it always was; the ad-hoc
// stderr prints it used to gate are now logfmt events (see internal/obs).
var (
	mRollbackRounds = metrics.NewCounter("nab_cluster_rollback_rounds_total",
		"Rollback rounds this process has been pulled through.")
	mRejoinDuration = metrics.NewHistogram("nab_cluster_rejoin_seconds",
		"Duration of completed rollback rounds, sync to resume.", metrics.LatencyBuckets)
	mJoinDuration = metrics.NewHistogram("nab_cluster_join_duration_seconds",
		"Blank-WAL join duration as the joiner saw it, announce to resume.", metrics.LatencyBuckets)
	mJoinRounds = metrics.NewCounter("nab_cluster_join_fetches_total",
		"Join-round state transfers this process completed as the joiner.")
	mJoinServerRejects = metrics.NewCounter("nab_cluster_join_server_rejects_total",
		"Serving peers rejected during a join fetch (content failed digest cross-validation).")
	mJoinQuorumShort = metrics.NewCounter("nab_cluster_join_quorum_short_total",
		"Join fetches refused because fewer than f+1 eligible snapshot servers existed.")
	mFloorSnapshots = metrics.NewCounter("nab_cluster_floor_snapshots_total",
		"Rollback-floor snapshots persisted into this process's WAL.")

	rejoinLog = obs.New("rejoin", "NAB_REJOIN_DEBUG")
	ctrlLog   = obs.New("ctrl", "NAB_REJOIN_DEBUG")
)
