package cluster_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
)

// The differential scenario matrix is the PR's hardening instrument: for
// every adversary scenario on every topology, the same workload runs on
// three engines —
//
//	lockstep   core.Runner on the synchronous simulator,
//	pipelined  internal/runtime with W=4 over the in-process bus,
//	cluster    one process per hosting address over real TCP sockets,
//
// and the committed outputs must be byte-identical, with identical
// mismatch/phase3 schedules and identical final dispute sets.

type matrixTopology struct {
	name   string
	g      *graph.Directed
	source graph.NodeID
	f      int
	victim graph.NodeID // non-source node the scenario scripts
	procs  int          // hosting processes for the cluster engine
}

func matrixTopologies(t *testing.T) []matrixTopology {
	t.Helper()
	circ, err := topo.Circulant(9, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := topo.OneThinLink(7, 2, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []matrixTopology{
		// Fig1a has vertex connectivity 2, so the paper's precondition
		// (>= 2f+1) only admits f=0 on it: adversarial cells are skipped.
		{name: "Fig1a", g: topo.Fig1a(), source: 1, f: 0, victim: 3, procs: 4},
		{name: "K7", g: topo.CompleteBi(7, 1), source: 1, f: 2, victim: 3, procs: 7},
		// 9 nodes on 3 processes: mixed in-memory and TCP links.
		{name: "Circulant9", g: circ, source: 1, f: 1, victim: 4, procs: 3},
		{name: "OneThinLink7", g: thin, source: 1, f: 1, victim: 2, procs: 7},
	}
}

// matrixScenarios scripts the victim node. Specs are cluster.Config
// adversary strings, so the same scenario definition drives all three
// engines; "random:<seed>" is the instance-scoped form, reproducible at
// any pipeline window.
func matrixScenarios() []struct{ name, spec string } {
	return []struct{ name, spec string }{
		{"Honest", ""},
		{"Crash", "crash"},
		{"BlockFlipper", "flip"},
		{"CodedCorruptor", "coded"},
		{"FalseAlarm", "alarm"},
		{"Random", "random:99"},
	}
}

// pipelinedRun executes the workload on the W=4 in-process runtime.
func pipelinedRun(t *testing.T, cfg *cluster.Config) (*core.RunResult, string) {
	t.Helper()
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(runtime.Config{Config: coreCfg, Window: cfg.Window})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := runBatch(rt, cfg.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	return &res.RunResult, rt.Disputes().String()
}

func TestDifferentialScenarioMatrix(t *testing.T) {
	for _, tp := range matrixTopologies(t) {
		for _, sc := range matrixScenarios() {
			t.Run(fmt.Sprintf("%s/%s", tp.name, sc.name), func(t *testing.T) {
				if tp.f == 0 && sc.spec != "" {
					t.Skipf("%s only satisfies the connectivity precondition for f=0; no faults to script", tp.name)
				}
				advs := map[graph.NodeID]string{}
				if sc.spec != "" {
					advs[tp.victim] = sc.spec
				}
				cfg, rsv := mkConfig(t, tp.g, tp.source, tp.f, tp.procs, 4, advs)

				want, wantDisputes := lockstepRun(t, cfg)

				pipe, pipeDisputes := pipelinedRun(t, cfg)
				comparePipelined(t, want, pipe)
				if pipeDisputes != wantDisputes {
					t.Errorf("pipelined dispute set %q, want %q", pipeDisputes, wantDisputes)
				}

				results := runCluster(t, cfg, rsv)
				checkAgainstLockstep(t, cfg, results, want, wantDisputes)
			})
		}
	}
}

// comparePipelined asserts full instance-level equality between the
// lockstep and pipelined engines (both see every node, so phase times and
// dispute findings are directly comparable).
func comparePipelined(t *testing.T, want, got *core.RunResult) {
	t.Helper()
	if len(got.Instances) != len(want.Instances) {
		t.Fatalf("pipelined committed %d instances, want %d", len(got.Instances), len(want.Instances))
	}
	for i, w := range want.Instances {
		g := got.Instances[i]
		if g.K != w.K || g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
			t.Errorf("pipelined instance %d: K/mismatch/phase3 = %d/%v/%v, want %d/%v/%v",
				i+1, g.K, g.Mismatch, g.Phase3, w.K, w.Mismatch, w.Phase3)
		}
		if len(g.Outputs) != len(w.Outputs) {
			t.Errorf("pipelined instance %d: %d outputs, want %d", i+1, len(g.Outputs), len(w.Outputs))
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(g.Outputs[v], out) {
				t.Errorf("pipelined instance %d: node %d output %x, want %x", i+1, v, g.Outputs[v], out)
			}
		}
		if !reflect.DeepEqual(g.NewDisputes, w.NewDisputes) || !reflect.DeepEqual(g.NewFaulty, w.NewFaulty) {
			t.Errorf("pipelined instance %d: findings (%v,%v), want (%v,%v)",
				i+1, g.NewDisputes, g.NewFaulty, w.NewDisputes, w.NewFaulty)
		}
		if g.Phase1Time != w.Phase1Time || g.EqualityTime != w.EqualityTime || g.FlagTime != w.FlagTime {
			t.Errorf("pipelined instance %d: phase times differ from lockstep", i+1)
		}
	}
}

// TestDifferentialAlarmThenFlip drives the deepest control-plane path:
// on K7 with f=2, the alarmer is proven faulty (and excluded) in
// instance 1, while the block flipper keeps forcing dispute phases
// afterwards — so dispute control runs while a node is already excluded,
// and that node's host must fetch both the mismatch bit AND the audit
// findings from the coordinator (NeedAudit), then fold identically.
func TestDifferentialAlarmThenFlip(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg, rsv := mkConfig(t, g, 1, 2, 7, 5, map[graph.NodeID]string{3: "alarm", 5: "flip"})
	want, wantDisputes := lockstepRun(t, cfg)

	phase3AfterExclusion := false
	excluded := 0
	for _, ir := range want.Instances {
		if excluded > 0 && ir.Phase3 {
			phase3AfterExclusion = true
		}
		excluded += len(ir.NewFaulty)
	}
	if !phase3AfterExclusion {
		t.Fatal("scenario does not run dispute control after an exclusion; pick different adversaries")
	}

	pipe, pipeDisputes := pipelinedRun(t, cfg)
	comparePipelined(t, want, pipe)
	if pipeDisputes != wantDisputes {
		t.Errorf("pipelined dispute set %q, want %q", pipeDisputes, wantDisputes)
	}

	results := runCluster(t, cfg, rsv)
	checkAgainstLockstep(t, cfg, results, want, wantDisputes)
}
