// Package cluster bootstraps a multi-process NAB deployment: every node
// of the topology runs in an OS process of its own (or a few nodes share
// one), full-mesh TCP links carry the protocol frames between processes,
// and a light control plane distributes the few schedule decisions a
// process cannot decode locally. The runtime engine (internal/runtime)
// plugs in unchanged — markers, dispute barriers and pipelined windows
// all flow over real sockets — and the committed outputs are
// byte-identical to the single-process lockstep core.Runner.
//
// A cluster is described by one shared Config (typically a cluster.json
// file): node IDs with their hosting addresses, the capacitated topology,
// the broadcast source, the fault bound, and the deterministic workload.
// Every process loads the same config and drives the same scheduler, so
// launch numbering — and therefore frame routing — stays aligned across
// processes with no coordination traffic.
package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"nab/internal/adversary"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/transport"
)

// NodeSpec places one node of the topology.
type NodeSpec struct {
	ID graph.NodeID `json:"id"`
	// Addr is the TCP address the node's hosting process listens on for
	// inbound links. Nodes sharing an Addr are hosted by one process.
	Addr string `json:"addr"`
	// Adversary optionally scripts the node's Byzantine strategy:
	// "crash", "flip", "coded", "alarm", "suppress", or "random:<seed>".
	// Empty means fault-free. Scripted adversaries live in the cluster
	// config so every process agrees on who is faulty — the harness's
	// omniscient view, exactly like core.Config.Adversaries.
	Adversary string `json:"adversary,omitempty"`
}

// Config is the shared description of one cluster. All processes must
// load an identical Config.
type Config struct {
	// Topology is the capacitated edge list in graph.ParseDirected format
	// ("from to capacity" per line).
	Topology string       `json:"topology"`
	Nodes    []NodeSpec   `json:"nodes"`
	Source   graph.NodeID `json:"source"`
	F        int          `json:"f"`
	LenBytes int          `json:"lenBytes"`
	// Seed drives coding-matrix draws and the deterministic workload.
	Seed int64 `json:"seed"`
	// Window is the pipeline depth (instances in flight per process).
	Window int `json:"window"`
	// Instances is the workload size: every process generates the same
	// Instances inputs from Seed and runs them through its scheduler.
	Instances int `json:"instances"`
	// CtrlAddr is the control-plane address of the coordinator (the
	// process hosting Source): followers whose local nodes fall out of
	// the instance graph fetch the agreed mismatch/audit decisions there.
	CtrlAddr string `json:"ctrlAddr"`
	// SnapshotInterval is the snapshot boundary granularity for join
	// rounds: a blank process fetches the newest snapshot at a multiple
	// of the interval at or below the rewind watermark, plus the WAL-fold
	// tail above it. Shared config because the boundary must be the same
	// in every process for digest cross-validation. 0 means
	// DefaultSnapshotInterval.
	SnapshotInterval int `json:"snapshotInterval,omitempty"`
	// Chaos optionally scripts hostile network physics for the scenario:
	// seeded per-link latency/jitter, reorder windows, asymmetric
	// partitions with scheduled heal times, slow-link throttles. Living
	// in the shared config means every process injects the same physics
	// — chaos is part of the scenario, like the adversaries. Nil means a
	// polite network.
	Chaos *transport.ChaosConfig `json:"chaos,omitempty"`
}

// Load reads and validates a cluster.json.
func Load(path string) (*Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read config: %w", err)
	}
	cfg := &Config{}
	if err := json.Unmarshal(raw, cfg); err != nil {
		return nil, fmt.Errorf("cluster: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Save writes the config as indented JSON.
func (c *Config) Save(path string) error {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Graph parses the topology.
func (c *Config) Graph() (*graph.Directed, error) {
	return graph.ParseDirected(c.Topology)
}

// Validate checks the config's internal consistency (protocol
// preconditions are checked again by core.NewProtocol).
func (c *Config) Validate() error {
	g, err := c.Graph()
	if err != nil {
		return fmt.Errorf("cluster: topology: %w", err)
	}
	if len(c.Nodes) != g.NumNodes() {
		return fmt.Errorf("cluster: %d node specs for %d topology nodes", len(c.Nodes), g.NumNodes())
	}
	seen := map[graph.NodeID]bool{}
	bad := 0
	for _, ns := range c.Nodes {
		if !g.HasNode(ns.ID) {
			return fmt.Errorf("cluster: node %d not in topology", ns.ID)
		}
		if seen[ns.ID] {
			return fmt.Errorf("cluster: duplicate node spec %d", ns.ID)
		}
		seen[ns.ID] = true
		if ns.Addr == "" {
			return fmt.Errorf("cluster: node %d has no address", ns.ID)
		}
		if ns.Adversary != "" {
			if _, err := ParseAdversary(ns.Adversary); err != nil {
				return fmt.Errorf("cluster: node %d: %w", ns.ID, err)
			}
			bad++
		}
	}
	if !seen[c.Source] {
		return fmt.Errorf("cluster: source %d has no node spec", c.Source)
	}
	if bad > c.F {
		return fmt.Errorf("cluster: %d scripted adversaries exceed fault bound f = %d", bad, c.F)
	}
	if c.LenBytes <= 0 {
		return fmt.Errorf("cluster: lenBytes = %d must be positive", c.LenBytes)
	}
	if c.Instances < 0 {
		return fmt.Errorf("cluster: instances = %d must be non-negative", c.Instances)
	}
	if c.CtrlAddr == "" {
		return fmt.Errorf("cluster: no control-plane address")
	}
	if c.SnapshotInterval < 0 {
		return fmt.Errorf("cluster: snapshotInterval = %d must be non-negative", c.SnapshotInterval)
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if c.Chaos != nil {
		for i, pt := range c.Chaos.Partitions {
			for _, v := range append(append([]graph.NodeID{}, pt.From...), pt.To...) {
				if !g.HasNode(v) {
					return fmt.Errorf("cluster: chaos partitions[%d]: node %d not in topology", i, v)
				}
			}
		}
		for i, r := range c.Chaos.Links {
			if r.From != 0 && !g.HasNode(r.From) {
				return fmt.Errorf("cluster: chaos links[%d]: node %d not in topology", i, r.From)
			}
			if r.To != 0 && !g.HasNode(r.To) {
				return fmt.Errorf("cluster: chaos links[%d]: node %d not in topology", i, r.To)
			}
		}
	}
	return nil
}

// Spec returns the node spec for id.
func (c *Config) Spec(id graph.NodeID) (NodeSpec, bool) {
	for _, ns := range c.Nodes {
		if ns.ID == id {
			return ns, true
		}
	}
	return NodeSpec{}, false
}

// Addrs maps every node to its hosting address.
func (c *Config) Addrs() map[graph.NodeID]string {
	out := make(map[graph.NodeID]string, len(c.Nodes))
	for _, ns := range c.Nodes {
		out[ns.ID] = ns.Addr
	}
	return out
}

// Colocated lists the nodes hosted at the same address as id — the local
// set a process started for node id must drive.
func (c *Config) Colocated(id graph.NodeID) []graph.NodeID {
	spec, ok := c.Spec(id)
	if !ok {
		return nil
	}
	var out []graph.NodeID
	for _, ns := range c.Nodes {
		if ns.Addr == spec.Addr {
			out = append(out, ns.ID)
		}
	}
	return out
}

// DefaultSnapshotInterval is the join-round snapshot boundary used when
// the config leaves SnapshotInterval zero.
const DefaultSnapshotInterval = 64

// defaultJoinBoundary is DefaultSnapshotInterval under its
// control-plane-internal name.
const defaultJoinBoundary = DefaultSnapshotInterval

// Lead returns the smallest node id hosted at addr — the stable process
// identity state-transfer messages route by (order-independent, so every
// process derives the same lead for every peer).
func (c *Config) Lead(addr string) graph.NodeID {
	lead, found := graph.NodeID(0), false
	for _, ns := range c.Nodes {
		if ns.Addr == addr && (!found || ns.ID < lead) {
			lead, found = ns.ID, true
		}
	}
	return lead
}

// Adversaries builds the full scripted-adversary map.
func (c *Config) Adversaries() (map[graph.NodeID]core.Adversary, error) {
	out := map[graph.NodeID]core.Adversary{}
	for _, ns := range c.Nodes {
		if ns.Adversary == "" {
			continue
		}
		a, err := ParseAdversary(ns.Adversary)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", ns.ID, err)
		}
		out[ns.ID] = a
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// Inputs derives the cluster's agreed workload: Instances deterministic
// inputs of LenBytes each, seeded by Seed, identical in every process.
func (c *Config) Inputs() [][]byte {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x1abe11ed))
	out := make([][]byte, c.Instances)
	for i := range out {
		out[i] = make([]byte, c.LenBytes)
		rng.Read(out[i])
	}
	return out
}

// CoreConfig assembles the core configuration every process validates.
func (c *Config) CoreConfig() (core.Config, error) {
	g, err := c.Graph()
	if err != nil {
		return core.Config{}, err
	}
	advs, err := c.Adversaries()
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Graph: g, Source: c.Source, F: c.F,
		LenBytes: c.LenBytes, Seed: c.Seed, Adversaries: advs,
	}, nil
}

// ParseAdversary resolves a NodeSpec.Adversary string.
func ParseAdversary(spec string) (core.Adversary, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "crash":
		return adversary.Crash{}, nil
	case "flip":
		return &adversary.BlockFlipper{}, nil
	case "coded":
		return &adversary.CodedCorruptor{}, nil
	case "alarm":
		return adversary.FalseAlarm{}, nil
	case "suppress":
		return adversary.Suppressor{}, nil
	case "random":
		seed := int64(0)
		if hasArg {
			s, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad random seed %q: %w", arg, err)
			}
			seed = s
		}
		// Seeded instance-scoped form: reproducible at any window and
		// across processes.
		return &adversary.Random{Seed: seed}, nil
	}
	return nil, fmt.Errorf("unknown adversary strategy %q", spec)
}
