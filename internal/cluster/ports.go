package cluster

import (
	"fmt"
	"net"
)

// FreeAddrs reserves n distinct loopback TCP addresses by briefly
// listening on ephemeral ports. The usual caveat applies — the ports are
// released before the cluster binds them — but loopback clusters built
// immediately afterwards (tests, -spawn-local) make collisions
// practically impossible.
func FreeAddrs(n int) ([]string, error) {
	out := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: reserve port: %w", err)
		}
		listeners = append(listeners, l)
		out = append(out, l.Addr().String())
	}
	return out, nil
}
