package cluster

import (
	"fmt"
	"net"
	"os"
	"sync"
)

// Reservation holds bound listeners for a set of addresses, to be handed
// off to the endpoints that will serve them. Reserving addresses this way
// — instead of listening, reading the port, and closing the listener —
// closes the TOCTOU window in which another process could bind a released
// port before the cluster rebinds it.
//
// A Reservation is safe for concurrent use: in-process cluster tests
// share one across all their Start calls, each taking its own endpoints.
type Reservation struct {
	mu    sync.Mutex
	held  map[string]net.Listener
	order []string
}

// NewReservation returns an empty reservation; Add listeners bound
// elsewhere (e.g. inherited from a parent process) to it.
func NewReservation() *Reservation {
	return &Reservation{held: map[string]net.Listener{}}
}

// ReserveAddrs binds n distinct loopback TCP listeners on ephemeral ports
// and keeps them open. Hand them to the node bootstrap via
// Options.Reservation (in-process) or Reservation.File + net.FileListener
// (across a fork/exec boundary); Close whatever remains.
func ReserveAddrs(n int) (*Reservation, error) {
	r := NewReservation()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: reserve port: %w", err)
		}
		r.Add(l.Addr().String(), l)
	}
	return r, nil
}

// Add registers a bound listener under addr. The reservation takes
// ownership until the listener is taken.
func (r *Reservation) Add(addr string, l net.Listener) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.held[addr]; !ok {
		r.order = append(r.order, addr)
	}
	r.held[addr] = l
}

// Addrs lists the reserved addresses in reservation order.
func (r *Reservation) Addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.order))
	for _, a := range r.order {
		if _, ok := r.held[a]; ok {
			out = append(out, a)
		}
	}
	return out
}

// Take removes and returns the held listener for addr; nil when addr is
// not (or no longer) reserved. The caller assumes ownership.
func (r *Reservation) Take(addr string) net.Listener {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.held[addr]
	delete(r.held, addr)
	return l
}

// File removes the listener for addr and returns it as a dup'ed *os.File
// for handing to a child process (exec.Cmd.ExtraFiles); the child rebuilds
// it with net.FileListener. The reservation-side listener is closed — the
// dup keeps the socket bound, so the address stays held across the
// handoff.
func (r *Reservation) File(addr string) (*os.File, error) {
	l := r.Take(addr)
	if l == nil {
		return nil, fmt.Errorf("cluster: address %s is not reserved", addr)
	}
	tl, ok := l.(*net.TCPListener)
	if !ok {
		return nil, fmt.Errorf("cluster: listener for %s is not TCP", addr)
	}
	f, err := tl.File()
	tl.Close()
	if err != nil {
		return nil, fmt.Errorf("cluster: dup listener %s: %w", addr, err)
	}
	return f, nil
}

// Close releases every listener still held. Taken listeners are the new
// owners' responsibility.
func (r *Reservation) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for addr, l := range r.held {
		l.Close()
		delete(r.held, addr)
	}
	return nil
}
