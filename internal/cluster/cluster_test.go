package cluster_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nab/internal/cluster"
	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/topo"
)

// batchChan turns a fixed workload into the pre-closed submission channel
// the streaming entry points consume.
func batchChan(inputs [][]byte) chan []byte {
	subs := make(chan []byte, len(inputs))
	for _, in := range inputs {
		subs <- in
	}
	close(subs)
	return subs
}

// runBatch feeds a fixed batch through the runtime's streaming entry
// point and returns once every instance has committed.
func runBatch(rt *runtime.Runtime, inputs [][]byte) (*runtime.Result, error) {
	if err := rt.ValidateInputs(inputs); err != nil {
		return nil, err
	}
	return rt.RunStream(context.Background(), batchChan(inputs), nil)
}

// streamNode drives a cluster node through Stream over the whole
// workload, as every process of a cluster must.
func streamNode(n *cluster.Node, inputs [][]byte) (*runtime.Result, error) {
	if err := n.Runtime().ValidateInputs(inputs); err != nil {
		return nil, err
	}
	return n.Stream(context.Background(), batchChan(inputs), nil)
}

// mkConfig assembles a loopback cluster config: nodes are assigned to
// hosting processes round-robin over `procs` addresses (procs == n gives
// every node its own process). The endpoints are reserved as held
// listeners; runCluster hands them to the node bootstraps.
func mkConfig(t *testing.T, g *graph.Directed, source graph.NodeID, f, procs, instances int, advs map[graph.NodeID]string) (*cluster.Config, *cluster.Reservation) {
	t.Helper()
	nodes := g.Nodes()
	rsv, err := cluster.ReserveAddrs(procs + 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsv.Close() })
	addrs := rsv.Addrs()
	cfg := &cluster.Config{
		Topology:  g.Marshal(),
		Source:    source,
		F:         f,
		LenBytes:  24,
		Seed:      7,
		Window:    4,
		Instances: instances,
		CtrlAddr:  addrs[procs],
	}
	// The source must land in process 0's group only by accident of
	// round-robin; that is fine — any process may coordinate, as long as
	// it is the one hosting the source.
	for i, v := range nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.NodeSpec{
			ID:        v,
			Addr:      addrs[i%procs],
			Adversary: advs[v],
		})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg, rsv
}

// clusterResult is one hosting process's view of the run.
type clusterResult struct {
	locals   []graph.NodeID
	res      *runtime.Result
	disputes string
	dropped  int64
	err      error
}

// runCluster boots one cluster.Node per distinct hosting address (each
// standing in for one OS process, with node-to-node traffic on real TCP
// sockets), runs the configured workload everywhere, and collects every
// process's view.
func runCluster(t *testing.T, cfg *cluster.Config, rsv *cluster.Reservation) []clusterResult {
	t.Helper()
	hosts := map[string]graph.NodeID{} // one Start per address
	var order []string
	for _, ns := range cfg.Nodes {
		if _, ok := hosts[ns.Addr]; !ok {
			hosts[ns.Addr] = ns.ID
			order = append(order, ns.Addr)
		}
	}
	results := make([]clusterResult, len(order))
	var wg sync.WaitGroup
	for i, addr := range order {
		wg.Add(1)
		go func(i int, lead graph.NodeID) {
			defer wg.Done()
			n, err := cluster.Start(cfg, lead, cluster.Options{BootTimeout: 30 * time.Second, Reservation: rsv})
			if err != nil {
				results[i] = clusterResult{err: err}
				return
			}
			defer n.Close()
			res, err := streamNode(n, cfg.Inputs())
			results[i] = clusterResult{
				locals:   n.Locals(),
				res:      res,
				disputes: n.Runtime().Disputes().String(),
				dropped:  n.Dropped(),
				err:      err,
			}
		}(i, hosts[addr])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("cluster run timed out (likely a cross-process deadlock)")
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("process %d (%s): %v", i, order[i], r.err)
		}
	}
	return results
}

// lockstepRun executes the same workload on the lockstep Runner.
func lockstepRun(t *testing.T, cfg *cluster.Config) (*core.RunResult, string) {
	t.Helper()
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	lock, err := core.NewRunner(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lock.Run(cfg.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	return want, lock.Disputes().String()
}

// checkAgainstLockstep asserts that the union of the processes' committed
// outputs byte-matches the lockstep run, and that every process saw the
// same mismatch/phase3 schedule and dispute evolution.
func checkAgainstLockstep(t *testing.T, cfg *cluster.Config, results []clusterResult, want *core.RunResult, wantDisputes string) {
	t.Helper()
	for pi, r := range results {
		if got, wantN := len(r.res.Instances), len(want.Instances); got != wantN {
			t.Fatalf("process %d committed %d instances, want %d", pi, got, wantN)
		}
		if r.dropped != 0 {
			t.Errorf("process %d transport dropped %d frames", pi, r.dropped)
		}
		if r.disputes != wantDisputes {
			t.Errorf("process %d dispute set %q, want %q", pi, r.disputes, wantDisputes)
		}
	}
	for i, w := range want.Instances {
		merged := map[graph.NodeID][]byte{}
		for pi, r := range results {
			g := r.res.Instances[i]
			if g.K != w.K || g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
				t.Errorf("process %d instance %d: K/mismatch/phase3 = %d/%v/%v, want %d/%v/%v",
					pi, i+1, g.K, g.Mismatch, g.Phase3, w.K, w.Mismatch, w.Phase3)
			}
			for v, out := range g.Outputs {
				if prev, dup := merged[v]; dup && string(prev) != string(out) {
					t.Errorf("instance %d: node %d output reported twice with different values", i+1, v)
				}
				merged[v] = out
			}
		}
		if len(merged) != len(w.Outputs) {
			t.Errorf("instance %d: cluster committed %d outputs, lockstep %d", i+1, len(merged), len(w.Outputs))
		}
		for v, out := range w.Outputs {
			if string(merged[v]) != string(out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, merged[v], out)
			}
		}
	}
}

// TestClusterHonestK4 is the smoke test: 4 single-node processes over
// real TCP, fault-free, byte-identical to lockstep.
func TestClusterHonestK4(t *testing.T) {
	g := topo.CompleteBi(4, 1)
	cfg, rsv := mkConfig(t, g, 1, 1, 4, 3, nil)
	want, wantDisputes := lockstepRun(t, cfg)
	results := runCluster(t, cfg, rsv)
	checkAgainstLockstep(t, cfg, results, want, wantDisputes)
}

// TestClusterFalseAlarmExclusion exercises the control plane: the
// alarmer is proven faulty in instance 1 and excluded; its host then
// follows the coordinator's schedule decisions for the remaining
// instances (K7, f=2, so phases keep running after the exclusion).
func TestClusterFalseAlarmExclusion(t *testing.T) {
	g := topo.CompleteBi(7, 2)
	cfg, rsv := mkConfig(t, g, 1, 2, 7, 4, map[graph.NodeID]string{4: "alarm"})
	want, wantDisputes := lockstepRun(t, cfg)
	results := runCluster(t, cfg, rsv)
	checkAgainstLockstep(t, cfg, results, want, wantDisputes)
	if !want.Instances[0].Phase3 {
		t.Fatal("scenario did not exercise dispute control")
	}
}

// TestClusterColocatedHosts runs 9 nodes on 3 processes (3 nodes each):
// local links short-circuit in memory, remote ones ride TCP.
func TestClusterColocatedHosts(t *testing.T) {
	g, err := topo.Circulant(9, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg, rsv := mkConfig(t, g, 1, 1, 3, 3, map[graph.NodeID]string{4: "flip"})
	want, wantDisputes := lockstepRun(t, cfg)
	results := runCluster(t, cfg, rsv)
	checkAgainstLockstep(t, cfg, results, want, wantDisputes)
}

// TestConfigRoundTrip checks Save/Load fidelity.
func TestConfigRoundTrip(t *testing.T) {
	g := topo.CompleteBi(4, 1)
	cfg, _ := mkConfig(t, g, 1, 1, 4, 2, map[graph.NodeID]string{3: "crash"})
	path := t.TempDir() + "/cluster.json"
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topology != cfg.Topology || len(got.Nodes) != len(cfg.Nodes) || got.CtrlAddr != cfg.CtrlAddr {
		t.Errorf("round-trip mismatch: %+v vs %+v", got, cfg)
	}
	if _, err := cluster.ParseAdversary("bogus"); err == nil {
		t.Error("ParseAdversary accepted a bogus strategy")
	}
	if cfg2 := *cfg; true {
		cfg2.CtrlAddr = ""
		if err := cfg2.Validate(); err == nil {
			t.Error("Validate accepted a config with no control address")
		}
	}
}

func ExampleConfig_Inputs() {
	cfg := &cluster.Config{Seed: 1, LenBytes: 4, Instances: 2}
	a, b := cfg.Inputs(), cfg.Inputs()
	fmt.Println(len(a) == len(b) && string(a[0]) == string(b[0]) && string(a[1]) == string(b[1]))
	// Output: true
}
