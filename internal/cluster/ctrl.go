package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/transport"
)

// The control plane distributes the two per-instance schedule decisions a
// process cannot always decode from its own nodes' broadcasts: the agreed
// MISMATCH bit (does Phase 3 run?) and the audit findings (what does
// every process fold?). The coordinator — the process hosting the source
// — decodes both locally for every instance and streams them to
// followers as JSON lines; followers buffer them keyed by (instance,
// generation) and only consult the buffer when a local node has fallen
// out of the instance graph (i.e. was proven faulty), so trusting the
// coordinator for them weakens nothing: honest nodes always decode their
// own decisions.
//
// Decisions are replayed to late-connecting followers, making process
// start order irrelevant.

// ctrlMsg is one decision or rejoin-protocol message on the wire.
//
// Decision types ("mismatch", "audit") are logged and replayed to
// late-connecting followers. The crash-recovery rollback types —
// "rejoin" (a restarted process announcing itself, follower to
// coordinator), "sync"/"synced", "rewind"/"rewound" and "resume" — are
// live-only: each belongs to one rollback round (Round), and replaying a
// stale round to a later subscriber could re-trigger a rollback that
// already completed.
type ctrlMsg struct {
	Type     string            `json:"type"` // "mismatch" or "audit"
	K        int               `json:"k"`
	Gen      int               `json:"gen"`
	Mismatch bool              `json:"mismatch,omitempty"`
	Output   []byte            `json:"output,omitempty"`
	Disputes [][2]graph.NodeID `json:"disputes,omitempty"`
	Faulty   []graph.NodeID    `json:"faulty,omitempty"`
	// Rollback-round coordinates (rejoin protocol).
	Round int    `json:"round,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Join-round coordinates (snapshot state transfer). A blank process
	// announcing itself turns the rollback round into a join round: the
	// coordinator inserts a "fetch" phase between sync and rewind, during
	// which the joiner pulls a boundary snapshot plus the WAL-fold tail
	// from serving peers ("pull"/"chunk", coordinator-relayed broadcasts
	// addressed by lead node id) and acknowledges with "joined".
	Blank      bool    `json:"blank,omitempty"`      // synced: the acker is a blank joiner
	Floor      int     `json:"floor,omitempty"`      // synced: acker's rewind floor
	Peer       int64   `json:"peer,omitempty"`       // lead node id of the sender/addressee
	M          int     `json:"m,omitempty"`          // fetch/pull: watermark the tail runs to
	Kind       string  `json:"kind,omitempty"`       // pull/chunk: "digest", "snap" or "tail"
	Server     int64   `json:"server,omitempty"`     // pull/chunk: lead node id of the server
	Off        int     `json:"off,omitempty"`        // chunk byte offset
	N          int     `json:"n,omitempty"`          // chunk: total transfer bytes
	Data       []byte  `json:"data,omitempty"`       // chunk payload
	SnapDigest uint64  `json:"snapDigest,omitempty"` // digest chunk: snapshot payload hash at K
	TailDigest uint64  `json:"tailDigest,omitempty"` // digest chunk: chain digest at M
	Servers    []int64 `json:"servers,omitempty"`    // fetch: eligible serving processes
}

// decisionKey identifies one execution: barrier replays of instance k run
// on a later dispute generation.
type decisionKey struct{ k, gen int }

// decisions is the shared buffer of received (or locally made) decisions.
type decisions struct {
	mu       sync.Mutex
	cond     *sync.Cond
	mismatch map[decisionKey]bool
	audits   map[decisionKey]*core.AuditResult
	failed   error // control connection broken: all waits fail
}

func newDecisions() *decisions {
	d := &decisions{
		mismatch: map[decisionKey]bool{},
		audits:   map[decisionKey]*core.AuditResult{},
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *decisions) put(m ctrlMsg) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := decisionKey{m.K, m.Gen}
	switch m.Type {
	case "mismatch":
		d.mismatch[key] = m.Mismatch
	case "audit":
		d.audits[key] = &core.AuditResult{Output: m.Output, Disputes: m.Disputes, Faulty: m.Faulty}
	}
	d.cond.Broadcast()
}

func (d *decisions) fail(err error) {
	d.mu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// view is one execution's runtime.ExecutionView over the decision
// buffer. closed is guarded by the decisions mutex, so a waiter that has
// checked it cannot miss the Close broadcast (a wakeup fired between the
// check and cond.Wait would be lost under a separate lock).
type view struct {
	d      *decisions
	key    decisionKey
	pub    func(ctrlMsg) error // non-nil on the coordinator: broadcast
	closed bool                // guarded by d.mu
}

var _ runtime.ExecutionView = (*view)(nil)

// Close implements runtime.ExecutionView (idempotent).
func (v *view) Close() {
	v.d.mu.Lock()
	v.closed = true
	v.d.cond.Broadcast()
	v.d.mu.Unlock()
}

// wait blocks until ready() yields a value, the view closes, or the
// control plane fails. Caller-side state is all under d.mu.
func wait[T any](v *view, what string, ready func() (T, bool)) (T, error) {
	v.d.mu.Lock()
	defer v.d.mu.Unlock()
	for {
		if val, ok := ready(); ok {
			return val, nil
		}
		var zero T
		if v.d.failed != nil {
			return zero, fmt.Errorf("cluster: control plane: %w", v.d.failed)
		}
		if v.closed {
			return zero, fmt.Errorf("cluster: execution (k=%d, gen=%d) abandoned while awaiting %s", v.key.k, v.key.gen, what)
		}
		v.d.cond.Wait()
	}
}

// DecidedMismatch implements core.ScheduleView: record, and on the
// coordinator broadcast to the followers.
func (v *view) DecidedMismatch(mismatch bool) error {
	msg := ctrlMsg{Type: "mismatch", K: v.key.k, Gen: v.key.gen, Mismatch: mismatch}
	v.d.put(msg)
	if v.pub != nil {
		return v.pub(msg)
	}
	return nil
}

// NeedMismatch implements core.ScheduleView.
func (v *view) NeedMismatch() (bool, error) {
	return wait(v, "mismatch decision", func() (bool, bool) {
		mm, ok := v.d.mismatch[v.key]
		return mm, ok
	})
}

// DecidedAudit implements core.ScheduleView.
func (v *view) DecidedAudit(a *core.AuditResult) error {
	msg := ctrlMsg{Type: "audit", K: v.key.k, Gen: v.key.gen, Output: a.Output, Disputes: a.Disputes, Faulty: a.Faulty}
	v.d.put(msg)
	if v.pub != nil {
		return v.pub(msg)
	}
	return nil
}

// NeedAudit implements core.ScheduleView.
func (v *view) NeedAudit() (*core.AuditResult, error) {
	return wait(v, "audit decision", func() (*core.AuditResult, bool) {
		a, ok := v.d.audits[v.key]
		return a, ok
	})
}

// ctrlPlane is the per-process control-plane endpoint; it implements
// runtime.SchedulePlane. Besides the decision stream it hosts the
// shutdown barrier: a process that finished its workload must keep its
// sockets open until every peer finished too (stragglers still flush
// final-round frames to early finishers), so each process announces
// "done" and tears down only after the coordinator's "alldone".
type ctrlPlane struct {
	d *decisions

	// durable enables the crash-recovery behaviours: follower control
	// connections redial instead of failing the decision stream, and the
	// rollback-round messages flow.
	durable bool
	addr    string
	// events surfaces rollback-round messages (and control-link loss,
	// Type "ctrldown") to the process's stream supervisor. Only written
	// in durable mode, where the supervisor is guaranteed to consume.
	events chan ctrlMsg

	// Coordinator side.
	listener net.Listener
	expect   int // processes counted at the shutdown barrier
	subMu    sync.Mutex
	log      []ctrlMsg
	subs     []chan ctrlMsg

	// Coordinator rollback-round state.
	rbMu     sync.Mutex
	rbRound  int
	rbPhase  int // 0 idle, 1 awaiting synced, 2 awaiting rewound, 3 awaiting joined
	rbAcks   int
	rbMinK   int
	rbEpoch  uint64 // max epoch reported this round
	rbTarget ctrlMsg
	// Join-round state: the per-round sync acks (eligibility of serving
	// peers is judged on their reported floors), the number of blank
	// joiners and their "joined" acks, and the snapshot parameters.
	rbSynced  []ctrlMsg
	rbJoins   int
	rbJoined  int
	snapNeed  int // f+1: matching snapshot copies a joiner must see
	snapEvery int // snapshot boundary interval for join bases

	// Follower side.
	conn    net.Conn
	connGen int        // bumped per replacement; stamps ctrldown events
	connMu  sync.Mutex // guards conn replacement on durable redial
	sendMu  sync.Mutex

	doneMu    sync.Mutex
	doneCount int
	allDone   chan struct{}
	doneOnce  sync.Once

	closed    chan struct{}
	closeOnce sync.Once
}

var _ runtime.SchedulePlane = (*ctrlPlane)(nil)

// Execution implements runtime.SchedulePlane.
func (p *ctrlPlane) Execution(k, gen int) runtime.ExecutionView {
	v := &view{d: p.d, key: decisionKey{k, gen}}
	if p.listener != nil {
		v.pub = p.broadcast
	}
	return v
}

// newCoordinator opens the control-plane listener (or adopts a held one
// from a reservation) and starts serving decision streams to followers.
// expect is the number of processes the shutdown barrier waits for (the
// coordinator included).
func newCoordinator(addr string, expect int, l net.Listener, durable bool, snapNeed, snapEvery int) (*ctrlPlane, error) {
	if l == nil {
		var err error
		l, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: control listen %s: %w", addr, err)
		}
	}
	p := &ctrlPlane{
		d: newDecisions(), durable: durable, addr: addr,
		events: make(chan ctrlMsg, 64), listener: l, expect: expect,
		snapNeed: snapNeed, snapEvery: snapEvery,
		allDone: make(chan struct{}), closed: make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

func (p *ctrlPlane) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		// Register the subscriber and replay the decision log so far; the
		// writer goroutine owns the connection's write half, the reader
		// counts the follower's barrier announcement and feeds the
		// rejoin protocol.
		ch := make(chan ctrlMsg, 4096)
		p.subMu.Lock()
		backlog := append([]ctrlMsg(nil), p.log...)
		p.subs = append(p.subs, ch)
		p.subMu.Unlock()
		go func() {
			defer conn.Close()
			bw := bufio.NewWriter(conn)
			enc := json.NewEncoder(bw)
			for _, m := range backlog {
				if enc.Encode(m) != nil {
					return
				}
			}
			if bw.Flush() != nil {
				return
			}
			for m := range ch {
				if enc.Encode(m) != nil || bw.Flush() != nil {
					return
				}
			}
		}()
		go func() {
			dec := json.NewDecoder(bufio.NewReader(conn))
			for {
				var m ctrlMsg
				if err := dec.Decode(&m); err != nil {
					return
				}
				switch m.Type {
				case "done":
					p.countDone(m.Round)
				case "rejoin":
					p.startRollback()
				case "synced":
					p.onSynced(m)
				case "rewound":
					p.onRewound(m)
				case "joined":
					p.onJoined(m)
				case "pull", "chunk":
					// State-transfer messages are addressed by lead node
					// id but routed by rebroadcast: the coordinator fans
					// them to every process (followers filter), which
					// keeps the anonymous-follower control plane free of
					// identity bookkeeping.
					p.broadcastCtl(m)
				}
			}
		}()
	}
}

// pushEvent hands a rollback message to the local stream supervisor.
func (p *ctrlPlane) pushEvent(m ctrlMsg) {
	select {
	case p.events <- m:
	case <-p.closed:
	}
}

// Events returns the supervisor's rollback-message stream (durable mode).
func (p *ctrlPlane) Events() <-chan ctrlMsg { return p.events }

// broadcastCtl fans a live-only rollback message out to every follower
// and to the local supervisor, without entering the replay log.
func (p *ctrlPlane) broadcastCtl(m ctrlMsg) {
	p.subMu.Lock()
	keep := p.subs[:0]
	for _, ch := range p.subs {
		select {
		case ch <- m:
			keep = append(keep, ch)
		default:
			close(ch)
		}
	}
	p.subs = keep
	p.subMu.Unlock()
	p.pushEvent(m)
}

// startRollback opens a fresh rollback round: every process is told to
// abort its stream and report its committed watermark. A rejoin arriving
// mid-round restarts the round (the newcomer must be counted), which is
// what makes process reconnection order irrelevant.
func (p *ctrlPlane) startRollback() {
	if !p.durable {
		return
	}
	ctrlLog.Info("rollback-open", "role", "coordinator")
	p.rbMu.Lock()
	p.rbRound++
	p.rbPhase = 1
	p.rbAcks = 0
	p.rbMinK = -1
	p.rbEpoch = 0
	p.rbSynced = nil
	p.rbJoins = 0
	p.rbJoined = 0
	round := p.rbRound
	p.rbMu.Unlock()
	// Every process re-announces "done" after its post-rollback stream,
	// so the shutdown barrier restarts its count.
	p.doneMu.Lock()
	p.doneCount = 0
	p.doneMu.Unlock()
	p.broadcastCtl(ctrlMsg{Type: "sync", Round: round})
}

// onSynced tallies one process's watermark for the current round; the
// last ack fixes the rollback target — the cluster-wide minimum
// committed instance and a launch epoch above every epoch in use — and
// broadcasts the rewind.
func (p *ctrlPlane) onSynced(m ctrlMsg) {
	p.rbMu.Lock()
	if m.Round != p.rbRound || p.rbPhase != 1 {
		p.rbMu.Unlock()
		return
	}
	p.rbAcks++
	p.rbSynced = append(p.rbSynced, m)
	if m.Blank {
		// A blank joiner has no history: its zero watermark must not drag
		// the rewind target down (its peers pruned re-execution inputs
		// below their past floors), and it cannot serve state.
		p.rbJoins++
	} else {
		if p.rbMinK < 0 || m.K < p.rbMinK {
			p.rbMinK = m.K
		}
	}
	if m.Epoch > p.rbEpoch {
		p.rbEpoch = m.Epoch
	}
	if p.rbAcks < p.expect {
		p.rbMu.Unlock()
		return
	}
	if p.rbMinK < 0 {
		p.rbMinK = 0 // every process is blank: a fresh cluster
	}
	p.rbTarget = ctrlMsg{Type: "rewind", Round: p.rbRound, K: p.rbMinK, Epoch: p.rbEpoch + 1}
	if p.rbJoins > 0 && p.rbJoins < p.rbAcks {
		// Join round: insert the fetch phase, and rewind the whole cluster
		// to the snapshot boundary rather than the minimum watermark. The
		// joiner re-executes (boundary, minimum] live — that re-drive is
		// what re-emits the commits a dead incarnation took to its grave —
		// while the fold tail it fetched extends the f+1 digest
		// cross-validation to the minimum watermark, pinning the
		// re-execution it is about to do.
		fetch := p.fetchTargetLocked()
		p.rbTarget.K = fetch.K
		p.rbPhase = 3
		p.rbJoined = 0
		p.rbMu.Unlock()
		p.broadcastCtl(fetch)
		return
	}
	p.rbPhase = 2
	p.rbAcks = 0
	target := p.rbTarget
	p.rbMu.Unlock()
	// Decisions at or below the target are never consulted again and
	// later ones are re-made identically by the re-execution; dropping
	// the log keeps replay to future re-subscribers from growing without
	// bound across rollbacks.
	p.subMu.Lock()
	p.log = nil
	p.subMu.Unlock()
	p.broadcastCtl(target)
}

// fetchTargetLocked computes the join round's "fetch" broadcast: the
// snapshot boundary J the whole round rewinds to, the pre-join minimum
// watermark m the fold tail must reach, and the serving processes. The
// boundary starts at the newest snapshot granule at or below m and is
// raised to the highest non-blank floor: no process can rewind below its
// own floor, and floors never exceed m (each is a previous round's
// target, and watermarks only grow), so after the clamp every non-blank
// process is an eligible server. Callers hold rbMu.
func (p *ctrlPlane) fetchTargetLocked() ctrlMsg {
	m := p.rbMinK
	every := p.snapEvery
	if every <= 0 {
		every = defaultJoinBoundary
	}
	j := m - m%every
	for _, ack := range p.rbSynced {
		if !ack.Blank && ack.Floor > j {
			j = ack.Floor
		}
	}
	return ctrlMsg{Type: "fetch", Round: p.rbRound, K: j, M: m, Servers: p.serversLocked(j)}
}

// serversLocked lists the non-blank processes whose floor allows serving
// a snapshot at watermark j. Callers hold rbMu.
func (p *ctrlPlane) serversLocked(j int) []int64 {
	var out []int64
	for _, ack := range p.rbSynced {
		if !ack.Blank && ack.Floor <= j {
			out = append(out, ack.Peer)
		}
	}
	return out
}

// onJoined counts blank joiners that finished their state transfer; the
// last one lets the round proceed to the rewind phase.
func (p *ctrlPlane) onJoined(m ctrlMsg) {
	p.rbMu.Lock()
	if m.Round != p.rbRound || p.rbPhase != 3 {
		p.rbMu.Unlock()
		return
	}
	p.rbJoined++
	if p.rbJoined < p.rbJoins {
		p.rbMu.Unlock()
		return
	}
	p.rbPhase = 2
	p.rbAcks = 0
	target := p.rbTarget
	p.rbMu.Unlock()
	p.subMu.Lock()
	p.log = nil
	p.subMu.Unlock()
	p.broadcastCtl(target)
}

// onRewound counts rewind completions; the last one releases the cluster.
func (p *ctrlPlane) onRewound(m ctrlMsg) {
	p.rbMu.Lock()
	if m.Round != p.rbRound || p.rbPhase != 2 {
		p.rbMu.Unlock()
		return
	}
	p.rbAcks++
	if p.rbAcks < p.expect {
		p.rbMu.Unlock()
		return
	}
	p.rbPhase = 0
	round := p.rbRound
	p.rbMu.Unlock()
	p.broadcastCtl(ctrlMsg{Type: "resume", Round: round})
}

// announceDone announces this process at the shutdown barrier for the
// given rollback round (0 outside durable mode).
func (p *ctrlPlane) announceDone(round int) error {
	if p.listener != nil {
		p.countDone(round) // the coordinator counts itself
		return nil
	}
	return p.sendCtl(ctrlMsg{Type: "done", Round: round})
}

// sendCtl ships one message up to the coordinator (follower side).
func (p *ctrlPlane) sendCtl(m ctrlMsg) error {
	p.connMu.Lock()
	conn := p.conn
	p.connMu.Unlock()
	if conn == nil {
		return fmt.Errorf("cluster: control connection down")
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return json.NewEncoder(conn).Encode(m)
}

// Rejoin announces this process to the rollback protocol: a restarted
// process calls it at boot, and a follower whose control link died calls
// it after reconnecting. On the coordinator it opens the round directly.
func (p *ctrlPlane) Rejoin() error {
	if p.listener != nil {
		p.startRollback()
		return nil
	}
	ctrlLog.Info("send-rejoin", "role", "follower")
	return p.sendCtl(ctrlMsg{Type: "rejoin"})
}

// AckSync reports this process's committed watermark, launch epoch,
// rewind floor and blankness for one rollback round. peer is the
// process's lead node id, the address state-transfer messages route by.
func (p *ctrlPlane) AckSync(round, watermark int, epoch uint64, floor int, blank bool, peer int64) error {
	m := ctrlMsg{Type: "synced", Round: round, K: watermark, Epoch: epoch, Floor: floor, Blank: blank, Peer: peer}
	if p.listener != nil {
		p.onSynced(m)
		return nil
	}
	return p.sendCtl(m)
}

// AckJoined reports a blank joiner's completed state transfer.
func (p *ctrlPlane) AckJoined(round int, peer int64) error {
	m := ctrlMsg{Type: "joined", Round: round, Peer: peer}
	if p.listener != nil {
		p.onJoined(m)
		return nil
	}
	return p.sendCtl(m)
}

// sendTransfer ships a pull or chunk: followers send up to the
// coordinator (which rebroadcasts); the coordinator broadcasts directly.
// Either way every process — the addressee included — sees the message
// on its event stream and filters by Server/Peer.
func (p *ctrlPlane) sendTransfer(m ctrlMsg) error {
	if p.listener != nil {
		p.broadcastCtl(m)
		return nil
	}
	return p.sendCtl(m)
}

// AckRewound reports this process rewound for one rollback round.
func (p *ctrlPlane) AckRewound(round int) error {
	m := ctrlMsg{Type: "rewound", Round: round}
	if p.listener != nil {
		p.onRewound(m)
		return nil
	}
	return p.sendCtl(m)
}

// Reconnect re-establishes a durable follower's control connection after
// the coordinator restarted, and restarts the decision reader.
func (p *ctrlPlane) Reconnect(ctx context.Context, timeout time.Duration) error {
	if p.listener != nil || !p.durable {
		return fmt.Errorf("cluster: reconnect on a non-durable or coordinator control plane")
	}
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	conn, err := transport.DialRetry(p.addr, timeout, ctx.Done())
	if err != nil {
		return fmt.Errorf("cluster: control redial %s: %w", p.addr, err)
	}
	p.connMu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.connGen++
	p.connMu.Unlock()
	go p.readLoop()
	return nil
}

// staleCtrldown reports a control-loss event that belongs to a
// connection this plane has already replaced; acting on it would tear
// down the healthy successor and spin the reconnect cycle forever.
func (p *ctrlPlane) staleCtrldown(m ctrlMsg) bool {
	if m.Type != "ctrldown" {
		return false
	}
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return m.K < p.connGen
}

// ctrldownNow synthesizes a control-loss event for the CURRENT
// connection (a send on it just failed).
func (p *ctrlPlane) ctrldownNow() ctrlMsg {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return ctrlMsg{Type: "ctrldown", K: p.connGen}
}

// countDone tallies one process at the shutdown barrier; the last one
// releases everyone. The announcement carries the rollback round it was
// made in: a "done" sent just before a crash-triggered rollback may land
// after the round reset the count, and counting it would release the
// barrier while a straggler still needs its peers' sockets.
func (p *ctrlPlane) countDone(round int) {
	p.rbMu.Lock()
	current := p.rbRound
	p.rbMu.Unlock()
	if round != current {
		return
	}
	p.doneMu.Lock()
	p.doneCount++
	reached := p.doneCount >= p.expect
	p.doneMu.Unlock()
	if reached {
		p.doneOnce.Do(func() {
			p.broadcast(ctrlMsg{Type: "alldone"})
			close(p.allDone)
		})
	}
}

// broadcast appends to the log and fans out to every follower. A
// follower too far behind to keep a 4096-decision buffer is cut off
// rather than silently skipped: closing its channel makes its writer
// goroutine exit and close the connection, so the follower's decision
// stream fails fast instead of hanging a later Need* forever.
func (p *ctrlPlane) broadcast(m ctrlMsg) error {
	p.subMu.Lock()
	defer p.subMu.Unlock()
	p.log = append(p.log, m)
	keep := p.subs[:0]
	for _, ch := range p.subs {
		select {
		case ch <- m:
			keep = append(keep, ch)
		default:
			close(ch)
		}
	}
	p.subs = keep
	return nil
}

// newFollower dials the coordinator (retrying while the cluster boots)
// and starts buffering its decision stream. Canceling ctx aborts the
// boot-time retry loop.
func newFollower(ctx context.Context, addr string, timeout time.Duration, durable bool) (*ctrlPlane, error) {
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	conn, err := transport.DialRetry(addr, timeout, ctx.Done())
	if err != nil {
		return nil, fmt.Errorf("cluster: control dial %s: %w", addr, err)
	}
	p := &ctrlPlane{
		d: newDecisions(), durable: durable, addr: addr,
		events: make(chan ctrlMsg, 64), conn: conn,
		allDone: make(chan struct{}), closed: make(chan struct{}),
	}
	go p.readLoop()
	return p, nil
}

func (p *ctrlPlane) readLoop() {
	p.connMu.Lock()
	conn, gen := p.conn, p.connGen
	p.connMu.Unlock()
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var m ctrlMsg
		if err := dec.Decode(&m); err != nil {
			if p.durable {
				// The coordinator process died. Tell the supervisor —
				// which will redial and rejoin once the coordinator is
				// back — instead of failing every pending decision wait.
				// The event is stamped with this connection's generation,
				// so a loss reported by an already-replaced connection
				// cannot tear down its healthy successor.
				select {
				case <-p.closed:
				default:
					p.pushEvent(ctrlMsg{Type: "ctrldown", K: gen})
				}
				return
			}
			p.d.fail(fmt.Errorf("decision stream ended: %w", err))
			p.doneOnce.Do(func() { close(p.allDone) })
			return
		}
		switch m.Type {
		case "alldone":
			p.doneOnce.Do(func() { close(p.allDone) })
		case "sync", "rewind", "resume", "fetch", "pull", "chunk":
			p.pushEvent(m)
		default:
			p.d.put(m)
		}
	}
}

// barrier announces this process done and waits (bounded) for the rest of
// the cluster, so sockets stay open while stragglers flush their last
// frames. Best effort: on timeout, context cancellation or a dead control
// link it returns anyway — the local results are already committed.
func (p *ctrlPlane) barrier(ctx context.Context, timeout time.Duration) {
	if err := p.announceDone(0); err != nil {
		return
	}
	select {
	case <-p.allDone:
	case <-time.After(timeout):
	case <-ctx.Done():
	}
}

// Close tears the control plane down; pending waits fail.
func (p *ctrlPlane) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		if p.listener != nil {
			p.listener.Close()
			p.subMu.Lock()
			for _, ch := range p.subs {
				close(ch)
			}
			p.subs = nil
			p.subMu.Unlock()
		}
		p.connMu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.connMu.Unlock()
		p.d.fail(fmt.Errorf("control plane closed"))
		p.doneOnce.Do(func() { close(p.allDone) })
	})
	return nil
}
