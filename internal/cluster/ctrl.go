package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/graph"
	"nab/internal/runtime"
	"nab/internal/transport"
)

// The control plane distributes the two per-instance schedule decisions a
// process cannot always decode from its own nodes' broadcasts: the agreed
// MISMATCH bit (does Phase 3 run?) and the audit findings (what does
// every process fold?). The coordinator — the process hosting the source
// — decodes both locally for every instance and streams them to
// followers as JSON lines; followers buffer them keyed by (instance,
// generation) and only consult the buffer when a local node has fallen
// out of the instance graph (i.e. was proven faulty), so trusting the
// coordinator for them weakens nothing: honest nodes always decode their
// own decisions.
//
// Decisions are replayed to late-connecting followers, making process
// start order irrelevant.

// ctrlMsg is one decision on the wire.
type ctrlMsg struct {
	Type     string            `json:"type"` // "mismatch" or "audit"
	K        int               `json:"k"`
	Gen      int               `json:"gen"`
	Mismatch bool              `json:"mismatch,omitempty"`
	Output   []byte            `json:"output,omitempty"`
	Disputes [][2]graph.NodeID `json:"disputes,omitempty"`
	Faulty   []graph.NodeID    `json:"faulty,omitempty"`
}

// decisionKey identifies one execution: barrier replays of instance k run
// on a later dispute generation.
type decisionKey struct{ k, gen int }

// decisions is the shared buffer of received (or locally made) decisions.
type decisions struct {
	mu       sync.Mutex
	cond     *sync.Cond
	mismatch map[decisionKey]bool
	audits   map[decisionKey]*core.AuditResult
	failed   error // control connection broken: all waits fail
}

func newDecisions() *decisions {
	d := &decisions{
		mismatch: map[decisionKey]bool{},
		audits:   map[decisionKey]*core.AuditResult{},
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *decisions) put(m ctrlMsg) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := decisionKey{m.K, m.Gen}
	switch m.Type {
	case "mismatch":
		d.mismatch[key] = m.Mismatch
	case "audit":
		d.audits[key] = &core.AuditResult{Output: m.Output, Disputes: m.Disputes, Faulty: m.Faulty}
	}
	d.cond.Broadcast()
}

func (d *decisions) fail(err error) {
	d.mu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// view is one execution's runtime.ExecutionView over the decision
// buffer. closed is guarded by the decisions mutex, so a waiter that has
// checked it cannot miss the Close broadcast (a wakeup fired between the
// check and cond.Wait would be lost under a separate lock).
type view struct {
	d      *decisions
	key    decisionKey
	pub    func(ctrlMsg) error // non-nil on the coordinator: broadcast
	closed bool                // guarded by d.mu
}

var _ runtime.ExecutionView = (*view)(nil)

// Close implements runtime.ExecutionView (idempotent).
func (v *view) Close() {
	v.d.mu.Lock()
	v.closed = true
	v.d.cond.Broadcast()
	v.d.mu.Unlock()
}

// wait blocks until ready() yields a value, the view closes, or the
// control plane fails. Caller-side state is all under d.mu.
func wait[T any](v *view, what string, ready func() (T, bool)) (T, error) {
	v.d.mu.Lock()
	defer v.d.mu.Unlock()
	for {
		if val, ok := ready(); ok {
			return val, nil
		}
		var zero T
		if v.d.failed != nil {
			return zero, fmt.Errorf("cluster: control plane: %w", v.d.failed)
		}
		if v.closed {
			return zero, fmt.Errorf("cluster: execution (k=%d, gen=%d) abandoned while awaiting %s", v.key.k, v.key.gen, what)
		}
		v.d.cond.Wait()
	}
}

// DecidedMismatch implements core.ScheduleView: record, and on the
// coordinator broadcast to the followers.
func (v *view) DecidedMismatch(mismatch bool) error {
	msg := ctrlMsg{Type: "mismatch", K: v.key.k, Gen: v.key.gen, Mismatch: mismatch}
	v.d.put(msg)
	if v.pub != nil {
		return v.pub(msg)
	}
	return nil
}

// NeedMismatch implements core.ScheduleView.
func (v *view) NeedMismatch() (bool, error) {
	return wait(v, "mismatch decision", func() (bool, bool) {
		mm, ok := v.d.mismatch[v.key]
		return mm, ok
	})
}

// DecidedAudit implements core.ScheduleView.
func (v *view) DecidedAudit(a *core.AuditResult) error {
	msg := ctrlMsg{Type: "audit", K: v.key.k, Gen: v.key.gen, Output: a.Output, Disputes: a.Disputes, Faulty: a.Faulty}
	v.d.put(msg)
	if v.pub != nil {
		return v.pub(msg)
	}
	return nil
}

// NeedAudit implements core.ScheduleView.
func (v *view) NeedAudit() (*core.AuditResult, error) {
	return wait(v, "audit decision", func() (*core.AuditResult, bool) {
		a, ok := v.d.audits[v.key]
		return a, ok
	})
}

// ctrlPlane is the per-process control-plane endpoint; it implements
// runtime.SchedulePlane. Besides the decision stream it hosts the
// shutdown barrier: a process that finished its workload must keep its
// sockets open until every peer finished too (stragglers still flush
// final-round frames to early finishers), so each process announces
// "done" and tears down only after the coordinator's "alldone".
type ctrlPlane struct {
	d *decisions

	// Coordinator side.
	listener net.Listener
	expect   int // processes counted at the shutdown barrier
	subMu    sync.Mutex
	log      []ctrlMsg
	subs     []chan ctrlMsg

	// Follower side.
	conn   net.Conn
	sendMu sync.Mutex

	doneMu    sync.Mutex
	doneCount int
	allDone   chan struct{}
	doneOnce  sync.Once

	closeOnce sync.Once
}

var _ runtime.SchedulePlane = (*ctrlPlane)(nil)

// Execution implements runtime.SchedulePlane.
func (p *ctrlPlane) Execution(k, gen int) runtime.ExecutionView {
	v := &view{d: p.d, key: decisionKey{k, gen}}
	if p.listener != nil {
		v.pub = p.broadcast
	}
	return v
}

// newCoordinator opens the control-plane listener (or adopts a held one
// from a reservation) and starts serving decision streams to followers.
// expect is the number of processes the shutdown barrier waits for (the
// coordinator included).
func newCoordinator(addr string, expect int, l net.Listener) (*ctrlPlane, error) {
	if l == nil {
		var err error
		l, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: control listen %s: %w", addr, err)
		}
	}
	p := &ctrlPlane{d: newDecisions(), listener: l, expect: expect, allDone: make(chan struct{})}
	go p.acceptLoop()
	return p, nil
}

func (p *ctrlPlane) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		// Register the subscriber and replay the decision log so far; the
		// writer goroutine owns the connection's write half, the reader
		// counts the follower's barrier announcement.
		ch := make(chan ctrlMsg, 4096)
		p.subMu.Lock()
		backlog := append([]ctrlMsg(nil), p.log...)
		p.subs = append(p.subs, ch)
		p.subMu.Unlock()
		go func() {
			defer conn.Close()
			bw := bufio.NewWriter(conn)
			enc := json.NewEncoder(bw)
			for _, m := range backlog {
				if enc.Encode(m) != nil {
					return
				}
			}
			if bw.Flush() != nil {
				return
			}
			for m := range ch {
				if enc.Encode(m) != nil || bw.Flush() != nil {
					return
				}
			}
		}()
		go func() {
			dec := json.NewDecoder(bufio.NewReader(conn))
			for {
				var m ctrlMsg
				if err := dec.Decode(&m); err != nil {
					return
				}
				if m.Type == "done" {
					p.countDone()
				}
			}
		}()
	}
}

// countDone tallies one process at the shutdown barrier; the last one
// releases everyone.
func (p *ctrlPlane) countDone() {
	p.doneMu.Lock()
	p.doneCount++
	reached := p.doneCount >= p.expect
	p.doneMu.Unlock()
	if reached {
		p.doneOnce.Do(func() {
			p.broadcast(ctrlMsg{Type: "alldone"})
			close(p.allDone)
		})
	}
}

// broadcast appends to the log and fans out to every follower. A
// follower too far behind to keep a 4096-decision buffer is cut off
// rather than silently skipped: closing its channel makes its writer
// goroutine exit and close the connection, so the follower's decision
// stream fails fast instead of hanging a later Need* forever.
func (p *ctrlPlane) broadcast(m ctrlMsg) error {
	p.subMu.Lock()
	defer p.subMu.Unlock()
	p.log = append(p.log, m)
	keep := p.subs[:0]
	for _, ch := range p.subs {
		select {
		case ch <- m:
			keep = append(keep, ch)
		default:
			close(ch)
		}
	}
	p.subs = keep
	return nil
}

// newFollower dials the coordinator (retrying while the cluster boots)
// and starts buffering its decision stream. Canceling ctx aborts the
// boot-time retry loop.
func newFollower(ctx context.Context, addr string, timeout time.Duration) (*ctrlPlane, error) {
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	conn, err := transport.DialRetry(addr, timeout, ctx.Done())
	if err != nil {
		return nil, fmt.Errorf("cluster: control dial %s: %w", addr, err)
	}
	p := &ctrlPlane{d: newDecisions(), conn: conn, allDone: make(chan struct{})}
	go p.readLoop()
	return p, nil
}

func (p *ctrlPlane) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(p.conn))
	for {
		var m ctrlMsg
		if err := dec.Decode(&m); err != nil {
			p.d.fail(fmt.Errorf("decision stream ended: %w", err))
			p.doneOnce.Do(func() { close(p.allDone) })
			return
		}
		if m.Type == "alldone" {
			p.doneOnce.Do(func() { close(p.allDone) })
			continue
		}
		p.d.put(m)
	}
}

// barrier announces this process done and waits (bounded) for the rest of
// the cluster, so sockets stay open while stragglers flush their last
// frames. Best effort: on timeout, context cancellation or a dead control
// link it returns anyway — the local results are already committed.
func (p *ctrlPlane) barrier(ctx context.Context, timeout time.Duration) {
	if p.listener != nil {
		p.countDone() // the coordinator counts itself
	} else {
		p.sendMu.Lock()
		err := json.NewEncoder(p.conn).Encode(ctrlMsg{Type: "done"})
		p.sendMu.Unlock()
		if err != nil {
			return
		}
	}
	select {
	case <-p.allDone:
	case <-time.After(timeout):
	case <-ctx.Done():
	}
}

// Close tears the control plane down; pending waits fail.
func (p *ctrlPlane) Close() error {
	p.closeOnce.Do(func() {
		if p.listener != nil {
			p.listener.Close()
			p.subMu.Lock()
			for _, ch := range p.subs {
				close(ch)
			}
			p.subs = nil
			p.subMu.Unlock()
		}
		if p.conn != nil {
			p.conn.Close()
		}
		p.d.fail(fmt.Errorf("control plane closed"))
		p.doneOnce.Do(func() { close(p.allDone) })
	})
	return nil
}
