package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/flight"
	"nab/internal/runtime"
	"nab/internal/wal"
)

// This file is the process-side half of the cluster's crash-recovery: a
// supervised stream loop that re-enters the pipelined runtime across
// rollback rounds.
//
// NAB is a synchronous-model protocol: when a peer process dies outside
// the fault model (kill -9), the survivors stall waiting for its frames —
// there is nothing to decide, only work to re-drive. The rejoin protocol
// therefore rolls the whole cluster back to its minimum committed
// instance m and re-executes everything above it:
//
//  1. the restarted process replays its WAL, restores its runtime to its
//     own watermark and announces "rejoin" on the control plane;
//  2. the coordinator broadcasts "sync": every process aborts its stream
//     (in-flight speculation reaped exactly like a dispute barrier) and
//     answers with its committed watermark and launch epoch;
//  3. the coordinator fixes m = min(watermarks) and a fresh launch epoch
//     E above every epoch in use, and broadcasts "rewind": every process
//     restores its runtime to its own committed prefix [:m] on launch
//     base E<<32 — stale frames of abandoned executions demultiplex
//     below the base and are dropped;
//  4. once every process acknowledges, "resume" restarts the streams.
//     Instances a process had already committed re-execute (their frames
//     are what the rolled-back peers are missing) with their commits
//     suppressed locally, so consumers never see a duplicate; instances
//     above the old watermark commit normally. Determinism of the
//     engines makes the re-driven sequence byte-identical.
//
// The same machinery covers a coordinator restart: followers observe the
// dead control connection ("ctrldown"), redial until the coordinator is
// back, and announce "rejoin" themselves.

// inputBuffer retains every submission pulled from the session so
// rollback rounds can re-feed instances the runtime already consumed.
// Entries at or below the cluster-wide rollback floor are pruned at each
// rewind; retention between rollbacks is the cost of durability.
type inputBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   map[int][]byte
	tail   int // highest instance with a known input
	closed bool
}

func newInputBuffer(recovered map[int][]byte) *inputBuffer {
	b := &inputBuffer{data: map[int][]byte{}}
	b.cond = sync.NewCond(&b.mu)
	for k, in := range recovered {
		b.data[k] = in
		if k > b.tail {
			b.tail = k
		}
	}
	return b
}

// put appends the next submission and returns its instance number.
func (b *inputBuffer) put(in []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tail++
	b.data[b.tail] = in
	b.cond.Broadcast()
	return b.tail
}

func (b *inputBuffer) closeBuf() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// prune drops inputs at or below floor — instances every process of the
// cluster has committed can never be rolled back to again.
func (b *inputBuffer) prune(floor int) {
	b.mu.Lock()
	for k := range b.data {
		if k <= floor {
			delete(b.data, k)
		}
	}
	b.mu.Unlock()
}

// feed pumps inputs from+1, from+2, ... into out, closing it when the
// buffer is closed and drained. A close of stop aborts the feed (the
// stream it supplies was canceled).
func (b *inputBuffer) feed(stop <-chan struct{}, out chan<- []byte, from int) {
	defer close(out)
	go func() {
		<-stop
		// Broadcast under the mutex: an unlocked wakeup can fire between
		// the feeder's stop-check and its cond.Wait and be lost forever.
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}()
	next := from + 1
	for {
		b.mu.Lock()
		for {
			if _, ok := b.data[next]; ok || b.closed {
				break
			}
			select {
			case <-stop:
				b.mu.Unlock()
				return
			default:
			}
			b.cond.Wait()
		}
		in, ok := b.data[next]
		b.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		select {
		case out <- in:
			next++
		case <-stop:
			return
		}
	}
}

// streamDurable is Stream's crash-recovery form: RunStream supervised
// across rollback rounds, commits suppressed below the delivered
// watermark, the whole committed history (recovered + live) aggregated
// into the result.
func (n *Node) streamDurable(ctx context.Context, subs <-chan []byte, commit func(*core.InstanceResult) error) (*runtime.Result, error) {
	linger := n.opt.RejoinLinger
	if linger <= 0 {
		linger = 2 * time.Minute
	}
	// Pump the session's submissions into the retained buffer.
	go func() {
		for {
			select {
			case in, ok := <-subs:
				if !ok {
					n.inputs.closeBuf()
					return
				}
				n.inputs.put(in)
			case <-ctx.Done():
				n.inputs.closeBuf()
				return
			}
		}
	}()

	events := n.ctrl.Events()
	commitFn := func(ir *core.InstanceResult) error {
		if ir.K <= n.floor+len(n.committed) {
			// Re-execution below the delivered watermark: the wire
			// traffic is the point; the commit was delivered (and
			// persisted) before the rollback.
			return nil
		}
		n.committed = append(n.committed, ir)
		// Extend the commit-chain digest over the cross-process fold
		// projection — the cheap per-commit work that makes this process a
		// valid snapshot server for any future join round.
		n.encBuf = wal.AppendCommitFold(n.encBuf[:0], ir)
		n.chain = append(n.chain, wal.Chain(n.chain[len(n.chain)-1], n.encBuf))
		if n.checkK == ir.K {
			// The join-round tripwire: this process's own re-execution of
			// the fetched tail just reached the pre-join watermark, and its
			// chain must land on the digest f+1 servers agreed on.
			if got := n.chain[len(n.chain)-1]; got != n.checkDigest {
				flight.Trigger(flight.ReasonTripwire)
				return fmt.Errorf("cluster: re-executed chain digest %016x at instance %d diverges from the join quorum's %016x", got, ir.K, n.checkDigest)
			}
			n.checkK = 0
			n.log.Info("join-reexec-verified", "k", ir.K)
		}
		if commit != nil {
			return commit(ir)
		}
		return nil
	}

	// A restarted process opens its rejoin round now, from inside the
	// supervisor: an announcement that dies with its control connection
	// (a redial raced the dead coordinator's lingering accept backlog)
	// re-enters through the ctrldown path instead of failing the boot.
	if n.rejoinPending {
		n.rejoinPending = false
		n.log.Info("announce-rejoin", "watermark", n.floor+len(n.committed), "blank", n.blank)
		if n.blank {
			n.joinBegan = time.Now()
			flight.Trigger(flight.ReasonJoin)
		} else {
			flight.Trigger(flight.ReasonRejoin)
		}
		if flight.Enabled() {
			et := flight.EvRejoinRound
			if n.blank {
				et = flight.EvJoinRound
			}
			flight.Record(flight.Event{Type: et, Node: -1,
				Step: flight.RoundAnnounce, Inst: uint64(n.floor + len(n.committed))})
		}
		if err := n.ctrl.Rejoin(); err != nil {
			n.log.Error("announce-failed", "err", err, "action", "reconnect")
			if err := n.rollback(ctx, n.ctrl.ctrldownNow(), linger); err != nil {
				n.ctrl.barrier(ctx, time.Second)
				return nil, err
			}
		}
	}

	var lastRes *runtime.Result
	for {
		innerCtx, cancel := context.WithCancel(ctx)
		innerSubs := make(chan []byte, max(1, n.rt.Window()))
		go n.inputs.feed(innerCtx.Done(), innerSubs, n.rt.Committed())
		type streamRes struct {
			res *runtime.Result
			err error
		}
		done := make(chan streamRes, 1)
		go func() {
			res, err := n.rt.RunStream(innerCtx, innerSubs, commitFn)
			done <- streamRes{res, err}
		}()

		var sr streamRes
		var rollEv *ctrlMsg
	wait:
		for {
			select {
			case sr = <-done:
				n.log.Debug("stream-returned", "err", sr.err, "committed", len(n.committed))
				break wait
			case ev := <-events:
				if (ev.Type == "sync" || ev.Type == "ctrldown") && !n.ctrl.staleCtrldown(ev) {
					n.log.Info("stream-interrupted", "by", ev.Type, "round", ev.Round)
					cancel()
					sr = <-done
					rollEv = &ev
					break wait
				}
				// rewind/resume of a round we already left, or a loss
				// reported by an already-replaced control conn: stale.
			case <-ctx.Done():
				cancel()
				<-done
				n.ctrl.barrier(ctx, time.Second)
				return nil, ctx.Err()
			}
		}
		cancel()

		if rollEv != nil {
			if err := n.rollback(ctx, *rollEv, linger); err != nil {
				n.ctrl.barrier(ctx, time.Second)
				return nil, err
			}
			continue
		}
		if sr.err != nil {
			n.ctrl.barrier(ctx, time.Second)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, sr.err
		}
		lastRes = sr.res

		// Workload complete: park at the shutdown barrier, mesh intact,
		// still answering rollbacks for peers that crashed near the end.
		n.log.Debug("parking", "round", n.lastRound, "committed", len(n.committed))
		ev, err := n.park(ctx, events, linger)
		if err != nil {
			return nil, err
		}
		if ev == nil {
			n.log.Debug("released")
			res := lastRes
			res.Instances = append([]*core.InstanceResult(nil), n.committed...)
			return res, nil
		}
		if err := n.rollback(ctx, *ev, linger); err != nil {
			n.ctrl.barrier(ctx, time.Second)
			return nil, err
		}
	}
}

// park announces this process done and waits for the cluster to finish —
// or for a rollback round that pulls it back in. A nil event means the
// process is released.
func (n *Node) park(ctx context.Context, events <-chan ctrlMsg, linger time.Duration) (*ctrlMsg, error) {
	if err := n.ctrl.announceDone(n.lastRound); err != nil {
		// The control link died while announcing: treat as a pending
		// coordinator restart.
		ev := n.ctrl.ctrldownNow()
		return &ev, nil
	}
	timeout := time.After(linger)
	for {
		select {
		case <-n.ctrl.allDone:
			return nil, nil
		case ev := <-events:
			if (ev.Type == "sync" || ev.Type == "ctrldown") && !n.ctrl.staleCtrldown(ev) {
				return &ev, nil
			}
		case <-timeout:
			return nil, nil
		case <-ctx.Done():
			return nil, nil
		}
	}
}

// rollback drives this process through one rollback round (possibly
// restarted by further rejoins): ack the sync with our watermark, serve —
// or, blank, run — the join round's state transfer if the coordinator
// inserts one, rewind the runtime to the agreed floor on the agreed
// launch epoch, ack, and wait for the cluster-wide resume.
func (n *Node) rollback(ctx context.Context, ev ctrlMsg, linger time.Duration) error {
	events := n.ctrl.Events()
	deadline := time.After(linger)
	began := time.Now()
	next := func() (ctrlMsg, error) {
		for {
			select {
			case ev := <-events:
				if n.ctrl.staleCtrldown(ev) {
					continue // a replaced conn's loss; the successor is live
				}
				return ev, nil
			case <-deadline:
				return ctrlMsg{}, fmt.Errorf("cluster: rollback round timed out after %v", linger)
			case <-ctx.Done():
				return ctrlMsg{}, ctx.Err()
			}
		}
	}
	for {
		switch ev.Type {
		case "ctrldown":
			// Coordinator restart: redial until it is back, announce
			// ourselves, then wait for its sync. A connection that dies
			// again under the announcement — a dial raced into the dead
			// listener's backlog — just loops back here, bounded by the
			// round deadline.
			select {
			case <-deadline:
				return fmt.Errorf("cluster: control-plane reconnect timed out after %v", linger)
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			if err := n.ctrl.Reconnect(ctx, n.opt.BootTimeout); err != nil {
				return err
			}
			if err := n.ctrl.Rejoin(); err != nil {
				n.log.Error("rejoin-after-reconnect-failed", "err", err, "action", "retry")
				ev = n.ctrl.ctrldownNow()
				continue
			}
			var err error
			if ev, err = next(); err != nil {
				return err
			}
		case "sync":
			round := ev.Round
			n.lastRound = round
			mRollbackRounds.Inc()
			watermark := n.floor + len(n.committed)
			if flight.Enabled() {
				flight.Record(flight.Event{Type: flight.EvRejoinRound, Node: -1,
					Step: flight.RoundSync, Arg: uint64(round), Inst: uint64(watermark)})
			}
			n.log.Info("ack-sync", "round", round, "watermark", watermark, "floor", n.floor, "blank", n.blank, "epoch", n.epoch)
			if err := n.ctrl.AckSync(round, watermark, n.epoch, n.floor, n.blank, n.lead); err != nil {
				ev = n.ctrl.ctrldownNow()
				continue
			}
			// The round's event loop: state-transfer traffic (a join round's
			// fetch phase) flows between the sync ack and the rewind, and
			// the resume only lands after our rewound ack. A fresh sync or a
			// control loss at any point restarts the round via the outer
			// dispatch.
			var serve *serveState
			var err error
			m, rewound := 0, false
		round:
			for {
				if ev, err = next(); err != nil {
					return err
				}
				switch {
				case ev.Type == "sync" || ev.Type == "ctrldown":
					break round // round restarted under us, or dead coordinator
				case ev.Round != round:
					// A stale round's straggler; ignore.
				case ev.Type == "fetch" && n.blank:
					if flight.Enabled() {
						flight.Record(flight.Event{Type: flight.EvJoinRound, Node: -1,
							Step: flight.RoundFetch, Arg: uint64(round), Inst: uint64(ev.K)})
					}
					abort, err := n.joinFetch(round, ev, next)
					if err != nil {
						return err
					}
					if abort != nil {
						ev = *abort
						break round
					}
				case ev.Type == "fetch":
					if serve, err = n.buildServe(ev); err != nil {
						return err
					}
				case ev.Type == "pull" && ev.Server == n.lead && serve != nil:
					if err := n.servePull(serve, ev); err != nil {
						ev = n.ctrl.ctrldownNow()
						break round
					}
				case ev.Type == "rewind" && !rewound:
					m = ev.K
					if flight.Enabled() {
						flight.Record(flight.Event{Type: flight.EvRejoinRound, Node: -1,
							Step: flight.RoundRewind, Arg: uint64(round), Inst: uint64(m)})
					}
					if err := n.applyRewind(m, ev.Epoch); err != nil {
						return err
					}
					rewound = true
					if err := n.ctrl.AckRewound(round); err != nil {
						ev = n.ctrl.ctrldownNow()
						break round
					}
				case ev.Type == "resume" && rewound:
					if err := n.persistFloorAt(m); err != nil {
						return err
					}
					dur := time.Since(began)
					mRejoinDuration.Observe(dur.Seconds())
					if !n.joinBegan.IsZero() {
						// First resume after a blank join: the satellite
						// instrument measures the joiner's whole
						// announce→resume arc, not just this round.
						mJoinDuration.Observe(time.Since(n.joinBegan).Seconds())
						n.joinBegan = time.Time{}
					}
					if flight.Enabled() {
						flight.Record(flight.Event{Type: flight.EvRejoinRound, Node: -1,
							Step: flight.RoundResume, Arg: uint64(round), Inst: uint64(m)})
					}
					n.log.Info("resume", "round", round, "dur", dur)
					return nil
				}
			}
			// Loop with the event that broke the round.
		default:
			var err error
			if ev, err = next(); err != nil {
				return err
			}
		}
	}
}
