package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nab/internal/core"
	"nab/internal/runtime"
)

// This file is the process-side half of the cluster's crash-recovery: a
// supervised stream loop that re-enters the pipelined runtime across
// rollback rounds.
//
// NAB is a synchronous-model protocol: when a peer process dies outside
// the fault model (kill -9), the survivors stall waiting for its frames —
// there is nothing to decide, only work to re-drive. The rejoin protocol
// therefore rolls the whole cluster back to its minimum committed
// instance m and re-executes everything above it:
//
//  1. the restarted process replays its WAL, restores its runtime to its
//     own watermark and announces "rejoin" on the control plane;
//  2. the coordinator broadcasts "sync": every process aborts its stream
//     (in-flight speculation reaped exactly like a dispute barrier) and
//     answers with its committed watermark and launch epoch;
//  3. the coordinator fixes m = min(watermarks) and a fresh launch epoch
//     E above every epoch in use, and broadcasts "rewind": every process
//     restores its runtime to its own committed prefix [:m] on launch
//     base E<<32 — stale frames of abandoned executions demultiplex
//     below the base and are dropped;
//  4. once every process acknowledges, "resume" restarts the streams.
//     Instances a process had already committed re-execute (their frames
//     are what the rolled-back peers are missing) with their commits
//     suppressed locally, so consumers never see a duplicate; instances
//     above the old watermark commit normally. Determinism of the
//     engines makes the re-driven sequence byte-identical.
//
// The same machinery covers a coordinator restart: followers observe the
// dead control connection ("ctrldown"), redial until the coordinator is
// back, and announce "rejoin" themselves.

// inputBuffer retains every submission pulled from the session so
// rollback rounds can re-feed instances the runtime already consumed.
// Entries at or below the cluster-wide rollback floor are pruned at each
// rewind; retention between rollbacks is the cost of durability.
type inputBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   map[int][]byte
	tail   int // highest instance with a known input
	closed bool
}

func newInputBuffer(recovered map[int][]byte) *inputBuffer {
	b := &inputBuffer{data: map[int][]byte{}}
	b.cond = sync.NewCond(&b.mu)
	for k, in := range recovered {
		b.data[k] = in
		if k > b.tail {
			b.tail = k
		}
	}
	return b
}

// put appends the next submission and returns its instance number.
func (b *inputBuffer) put(in []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tail++
	b.data[b.tail] = in
	b.cond.Broadcast()
	return b.tail
}

func (b *inputBuffer) closeBuf() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// prune drops inputs at or below floor — instances every process of the
// cluster has committed can never be rolled back to again.
func (b *inputBuffer) prune(floor int) {
	b.mu.Lock()
	for k := range b.data {
		if k <= floor {
			delete(b.data, k)
		}
	}
	b.mu.Unlock()
}

// feed pumps inputs from+1, from+2, ... into out, closing it when the
// buffer is closed and drained. A close of stop aborts the feed (the
// stream it supplies was canceled).
func (b *inputBuffer) feed(stop <-chan struct{}, out chan<- []byte, from int) {
	defer close(out)
	go func() {
		<-stop
		// Broadcast under the mutex: an unlocked wakeup can fire between
		// the feeder's stop-check and its cond.Wait and be lost forever.
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}()
	next := from + 1
	for {
		b.mu.Lock()
		for {
			if _, ok := b.data[next]; ok || b.closed {
				break
			}
			select {
			case <-stop:
				b.mu.Unlock()
				return
			default:
			}
			b.cond.Wait()
		}
		in, ok := b.data[next]
		b.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		select {
		case out <- in:
			next++
		case <-stop:
			return
		}
	}
}

// streamDurable is Stream's crash-recovery form: RunStream supervised
// across rollback rounds, commits suppressed below the delivered
// watermark, the whole committed history (recovered + live) aggregated
// into the result.
func (n *Node) streamDurable(ctx context.Context, subs <-chan []byte, commit func(*core.InstanceResult) error) (*runtime.Result, error) {
	linger := n.opt.RejoinLinger
	if linger <= 0 {
		linger = 2 * time.Minute
	}
	// Pump the session's submissions into the retained buffer.
	go func() {
		for {
			select {
			case in, ok := <-subs:
				if !ok {
					n.inputs.closeBuf()
					return
				}
				n.inputs.put(in)
			case <-ctx.Done():
				n.inputs.closeBuf()
				return
			}
		}
	}()

	events := n.ctrl.Events()
	commitFn := func(ir *core.InstanceResult) error {
		if ir.K <= len(n.committed) {
			// Re-execution below the delivered watermark: the wire
			// traffic is the point; the commit was delivered (and
			// persisted) before the rollback.
			return nil
		}
		n.committed = append(n.committed, ir)
		if commit != nil {
			return commit(ir)
		}
		return nil
	}

	// A restarted process opens its rejoin round now, from inside the
	// supervisor: an announcement that dies with its control connection
	// (a redial raced the dead coordinator's lingering accept backlog)
	// re-enters through the ctrldown path instead of failing the boot.
	if n.rejoinPending {
		n.rejoinPending = false
		n.log.Info("announce-rejoin", "watermark", len(n.committed))
		if err := n.ctrl.Rejoin(); err != nil {
			n.log.Error("announce-failed", "err", err, "action", "reconnect")
			if err := n.rollback(ctx, n.ctrl.ctrldownNow(), linger); err != nil {
				n.ctrl.barrier(ctx, time.Second)
				return nil, err
			}
		}
	}

	var lastRes *runtime.Result
	for {
		innerCtx, cancel := context.WithCancel(ctx)
		innerSubs := make(chan []byte, max(1, n.rt.Window()))
		go n.inputs.feed(innerCtx.Done(), innerSubs, n.rt.Committed())
		type streamRes struct {
			res *runtime.Result
			err error
		}
		done := make(chan streamRes, 1)
		go func() {
			res, err := n.rt.RunStream(innerCtx, innerSubs, commitFn)
			done <- streamRes{res, err}
		}()

		var sr streamRes
		var rollEv *ctrlMsg
	wait:
		for {
			select {
			case sr = <-done:
				n.log.Debug("stream-returned", "err", sr.err, "committed", len(n.committed))
				break wait
			case ev := <-events:
				if (ev.Type == "sync" || ev.Type == "ctrldown") && !n.ctrl.staleCtrldown(ev) {
					n.log.Info("stream-interrupted", "by", ev.Type, "round", ev.Round)
					cancel()
					sr = <-done
					rollEv = &ev
					break wait
				}
				// rewind/resume of a round we already left, or a loss
				// reported by an already-replaced control conn: stale.
			case <-ctx.Done():
				cancel()
				<-done
				n.ctrl.barrier(ctx, time.Second)
				return nil, ctx.Err()
			}
		}
		cancel()

		if rollEv != nil {
			if err := n.rollback(ctx, *rollEv, linger); err != nil {
				n.ctrl.barrier(ctx, time.Second)
				return nil, err
			}
			continue
		}
		if sr.err != nil {
			n.ctrl.barrier(ctx, time.Second)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, sr.err
		}
		lastRes = sr.res

		// Workload complete: park at the shutdown barrier, mesh intact,
		// still answering rollbacks for peers that crashed near the end.
		n.log.Debug("parking", "round", n.lastRound, "committed", len(n.committed))
		ev, err := n.park(ctx, events, linger)
		if err != nil {
			return nil, err
		}
		if ev == nil {
			n.log.Debug("released")
			res := lastRes
			res.Instances = append([]*core.InstanceResult(nil), n.committed...)
			return res, nil
		}
		if err := n.rollback(ctx, *ev, linger); err != nil {
			n.ctrl.barrier(ctx, time.Second)
			return nil, err
		}
	}
}

// park announces this process done and waits for the cluster to finish —
// or for a rollback round that pulls it back in. A nil event means the
// process is released.
func (n *Node) park(ctx context.Context, events <-chan ctrlMsg, linger time.Duration) (*ctrlMsg, error) {
	if err := n.ctrl.announceDone(n.lastRound); err != nil {
		// The control link died while announcing: treat as a pending
		// coordinator restart.
		ev := n.ctrl.ctrldownNow()
		return &ev, nil
	}
	timeout := time.After(linger)
	for {
		select {
		case <-n.ctrl.allDone:
			return nil, nil
		case ev := <-events:
			if (ev.Type == "sync" || ev.Type == "ctrldown") && !n.ctrl.staleCtrldown(ev) {
				return &ev, nil
			}
		case <-timeout:
			return nil, nil
		case <-ctx.Done():
			return nil, nil
		}
	}
}

// rollback drives this process through one rollback round (possibly
// restarted by further rejoins): ack the sync with our watermark, rewind
// the runtime to the agreed floor on the agreed launch epoch, ack, and
// wait for the cluster-wide resume.
func (n *Node) rollback(ctx context.Context, ev ctrlMsg, linger time.Duration) error {
	events := n.ctrl.Events()
	deadline := time.After(linger)
	began := time.Now()
	next := func() (ctrlMsg, error) {
		for {
			select {
			case ev := <-events:
				if n.ctrl.staleCtrldown(ev) {
					continue // a replaced conn's loss; the successor is live
				}
				return ev, nil
			case <-deadline:
				return ctrlMsg{}, fmt.Errorf("cluster: rollback round timed out after %v", linger)
			case <-ctx.Done():
				return ctrlMsg{}, ctx.Err()
			}
		}
	}
	for {
		switch ev.Type {
		case "ctrldown":
			// Coordinator restart: redial until it is back, announce
			// ourselves, then wait for its sync. A connection that dies
			// again under the announcement — a dial raced into the dead
			// listener's backlog — just loops back here, bounded by the
			// round deadline.
			select {
			case <-deadline:
				return fmt.Errorf("cluster: control-plane reconnect timed out after %v", linger)
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			if err := n.ctrl.Reconnect(ctx, n.opt.BootTimeout); err != nil {
				return err
			}
			if err := n.ctrl.Rejoin(); err != nil {
				n.log.Error("rejoin-after-reconnect-failed", "err", err, "action", "retry")
				ev = n.ctrl.ctrldownNow()
				continue
			}
			var err error
			if ev, err = next(); err != nil {
				return err
			}
		case "sync":
			round := ev.Round
			n.lastRound = round
			mRollbackRounds.Inc()
			n.log.Info("ack-sync", "round", round, "watermark", len(n.committed), "epoch", n.epoch)
			if err := n.ctrl.AckSync(round, len(n.committed), n.epoch); err != nil {
				ev = n.ctrl.ctrldownNow()
				continue
			}
			var err error
			if ev, err = next(); err != nil {
				return err
			}
			if ev.Type == "rewind" && ev.Round == round {
				m := ev.K
				if m > len(n.committed) {
					return fmt.Errorf("cluster: rewind to %d beyond local watermark %d", m, len(n.committed))
				}
				n.log.Info("rewind", "k", m, "epoch", ev.Epoch, "round", round)
				n.epoch = ev.Epoch
				if err := n.rt.Restore(n.epoch<<32, m, n.committed[:m]); err != nil {
					return err
				}
				n.inputs.prune(m)
				// Re-pin every outbound mesh link before acknowledging: a
				// connection to the restarted peer can look healthy until
				// the first post-resume write discovers the dead socket.
				if err := n.tr.Reestablish(); err != nil {
					return fmt.Errorf("cluster: re-pin mesh links: %w", err)
				}
				if err := n.ctrl.AckRewound(round); err != nil {
					ev = n.ctrl.ctrldownNow()
					continue
				}
				for {
					if ev, err = next(); err != nil {
						return err
					}
					if ev.Type == "resume" && ev.Round == round {
						dur := time.Since(began)
						mRejoinDuration.Observe(dur.Seconds())
						n.log.Info("resume", "round", round, "dur", dur)
						return nil
					}
					if ev.Type == "sync" || ev.Type == "ctrldown" {
						break // round restarted under us
					}
				}
			}
			// Anything else: a restarted round or a dead coordinator;
			// loop with the new event.
		default:
			var err error
			if ev, err = next(); err != nil {
				return err
			}
		}
	}
}
