package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"nab/internal/core"
	"nab/internal/wal"
)

// This file is the join round's state transfer: the machinery that brings
// a blank-WAL process into a live cluster without replaying the whole
// committed history.
//
// A blank process announces an ordinary rejoin, but its sync ack carries
// Blank, so the coordinator inserts a "fetch" phase between sync and
// rewind (see ctrlPlane.onSynced). During that phase every process is
// parked inside its rollback round — streams canceled, sockets open — so
// non-blank processes double as snapshot servers. The joiner pulls, over
// the coordinator-relayed control plane:
//
//  1. digests: each eligible server's hash of the canonical snapshot at
//     the boundary J plus the commit-chain digest at the rewind target m.
//     The joiner needs f+1 matching pairs before trusting any content —
//     with at most f Byzantine processes, a winning vote always contains
//     an honest server, so the agreed digests are the honest state's.
//  2. the snapshot bytes at J, from one winning voter. Content that does
//     not hash to the agreed digest convicts the server (it voted for
//     bytes it will not produce) and the joiner moves to the next voter.
//  3. the fold tail: the cross-process commit projections for (J, m],
//     chained from the snapshot's digest and checked against the agreed
//     chain digest at m. The tail is validation, not state: a join round
//     rewinds the whole cluster to J (not m), so the joiner re-executes
//     (J, m] live — that re-drive re-emits any commits a dead
//     incarnation's local outputs took with it. The agreed digest at m is
//     kept as a tripwire: when the joiner's own re-executed chain reaches
//     m it must land on exactly that digest, extending the f+1
//     cross-validation over everything it replays.
//
// The transferred snapshot is installed at the round's rewind (the
// joiner's floor becomes J) and persisted into its WAL at resume, when
// every process has provably fsynced past the target — so no future
// rollback can strand an instance below any process's log.

// transferChunk bounds one chunk's payload on the control plane.
const transferChunk = 32 << 10

// maxTransferBytes bounds a whole snapshot or tail transfer — a Byzantine
// server must not balloon the joiner's memory.
const maxTransferBytes = 64 << 20

// joinResult is the state a blank process fetched during a join round,
// held until the rewind installs it as the process's floor.
type joinResult struct {
	base       core.SnapshotState // the snapshot at the boundary J, installed as the floor
	baseDigest uint64             // commit-chain digest at J (the snapshot's Digest)
	m          int                // the fold tail's end: the round's pre-join minimum watermark
	mDigest    uint64             // agreed chain digest at m, checked once re-execution reaches it
}

// serveState is a non-blank process's materialized join transfer: the
// canonical snapshot bytes at the boundary and the framed fold tail up to
// the rewind target, built once per fetch phase and chunked out on demand.
type serveState struct {
	snapBytes  []byte
	tailBytes  []byte
	snapDigest uint64 // fnv64a over snapBytes
	tailDigest uint64 // commit-chain digest at m
}

func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// stateAt folds this process's base and committed prefix to the snapshot
// state at watermark m.
func (n *Node) stateAt(m int) (core.SnapshotState, error) {
	if m < n.floor || m > n.floor+len(n.committed) {
		return core.SnapshotState{}, fmt.Errorf("cluster: snapshot watermark %d outside [floor %d, watermark %d]", m, n.floor, n.floor+len(n.committed))
	}
	if m == n.floor {
		return n.base, nil
	}
	g, err := n.cfg.Graph()
	if err != nil {
		return core.SnapshotState{}, err
	}
	b, err := core.NewSnapshotBuilder(g).Seed(n.base)
	if err != nil {
		return core.SnapshotState{}, err
	}
	for _, ir := range n.committed[:m-n.floor] {
		if err := b.Fold(ir); err != nil {
			return core.SnapshotState{}, err
		}
	}
	return b.State(), nil
}

// buildServe materializes this process's serve state for one fetch phase,
// or nil when it is not among the round's eligible servers. The snapshot
// is encoded with Epoch 0: epochs are per-process until the round's
// rewind agrees on a new one, and the transfer bytes must be identical on
// every honest server.
func (n *Node) buildServe(ev ctrlMsg) (*serveState, error) {
	eligible := false
	for _, s := range ev.Servers {
		if s == n.lead {
			eligible = true
		}
	}
	if !eligible {
		return nil, nil
	}
	j, m := ev.K, ev.M
	if j > m {
		return nil, fmt.Errorf("cluster: fetch boundary %d above rewind target %d", j, m)
	}
	st, err := n.stateAt(j)
	if err != nil {
		return nil, err
	}
	if _, err := n.stateAt(m); err != nil { // bounds check the tail end
		return nil, err
	}
	snap := wal.Snapshot{K: st.K, Gen: st.Gen, Disputes: st.Disputes, Faulty: st.Faulty, Digest: n.chain[j-n.floor]}
	snap.Canonicalize()
	sv := &serveState{snapBytes: wal.AppendSnapshot(nil, snap), tailDigest: n.chain[m-n.floor]}
	for _, ir := range n.committed[j-n.floor : m-n.floor] {
		p := wal.AppendCommitFold(nil, ir)
		sv.tailBytes = binary.AppendUvarint(sv.tailBytes, uint64(len(p)))
		sv.tailBytes = append(sv.tailBytes, p...)
	}
	sv.snapDigest = fnvSum(sv.snapBytes)
	if n.testServeTamper != nil {
		// Test hook: a Byzantine snapshot server. Tampering with the bytes
		// alone makes content validation convict it; tampering with the
		// digests makes the quorum outvote it.
		n.testServeTamper(sv)
	}
	n.log.Info("serve-join", "j", j, "m", m, "snapBytes", len(sv.snapBytes), "tailBytes", len(sv.tailBytes))
	return sv, nil
}

// servePull answers one pull addressed to this process with a chunk.
func (n *Node) servePull(sv *serveState, ev ctrlMsg) error {
	reply := ctrlMsg{Type: "chunk", Round: ev.Round, Kind: ev.Kind, Server: n.lead, Peer: ev.Peer}
	switch ev.Kind {
	case "digest":
		reply.SnapDigest, reply.TailDigest = sv.snapDigest, sv.tailDigest
	case "snap", "tail":
		data := sv.snapBytes
		if ev.Kind == "tail" {
			data = sv.tailBytes
		}
		off := ev.Off
		if off < 0 || off > len(data) {
			off = len(data)
		}
		end := off + transferChunk
		if end > len(data) {
			end = len(data)
		}
		reply.Off, reply.N, reply.Data = off, len(data), data[off:end]
	default:
		return nil
	}
	return n.ctrl.sendTransfer(reply)
}

// pullFn transfers one complete item of kind from server: returns the
// raw bytes (snap/tail kinds) or the digest pair (digest kind). A non-nil
// abort event means the round was restarted (or the control link died)
// mid-transfer; an error convicts the server or reports a fatal wait
// failure.
type pullFn func(server int64, kind string) (data []byte, snapDigest, tailDigest uint64, abort *ctrlMsg, err error)

// joinFetch runs the blank process's side of one fetch phase: digest
// quorum, content fetch with Byzantine fallback, fold to the rewind
// target, and the "joined" ack. The fetched state lands in n.pending for
// the rewind to install.
func (n *Node) joinFetch(round int, fetch ctrlMsg, next func() (ctrlMsg, error)) (*ctrlMsg, error) {
	j, m, servers := fetch.K, fetch.M, fetch.Servers
	need := n.cfg.F + 1
	if len(servers) < need {
		// With fewer than f+1 eligible servers, every digest vote could be
		// Byzantine and a "quorum" would prove nothing — refusing the join
		// is the only safe answer under the fault model. The operator must
		// bring more non-blank processes up (or lower f) before a blank
		// node can be trusted with transferred state.
		mJoinQuorumShort.Inc()
		return nil, fmt.Errorf("cluster: join needs %d eligible snapshot servers to cross-validate against up to %d Byzantine processes; the round offers %d", need, n.cfg.F, len(servers))
	}
	n.log.Info("join-fetch", "j", j, "m", m, "servers", fmt.Sprint(servers), "need", need)

	pull := func(server int64, kind string) ([]byte, uint64, uint64, *ctrlMsg, error) {
		var buf []byte
		off := 0
		for {
			req := ctrlMsg{Type: "pull", Round: round, Kind: kind, Server: server, Peer: n.lead, K: j, M: m, Off: off}
			if err := n.ctrl.sendTransfer(req); err != nil {
				ev := n.ctrl.ctrldownNow()
				return nil, 0, 0, &ev, nil
			}
			for {
				ev, err := next()
				if err != nil {
					return nil, 0, 0, nil, err
				}
				if ev.Type == "sync" || ev.Type == "ctrldown" {
					return nil, 0, 0, &ev, nil
				}
				if ev.Type != "chunk" || ev.Round != round || ev.Server != server || ev.Peer != n.lead || ev.Kind != kind {
					continue // someone else's transfer, or decision noise
				}
				if kind == "digest" {
					return nil, ev.SnapDigest, ev.TailDigest, nil, nil
				}
				if ev.Off != off || ev.N < 0 || ev.N > maxTransferBytes || (len(ev.Data) == 0 && off < ev.N) {
					return nil, 0, 0, nil, fmt.Errorf("cluster: server %d: malformed %s chunk (off %d n %d)", server, kind, ev.Off, ev.N)
				}
				buf = append(buf, ev.Data...)
				off += len(ev.Data)
				if off >= ev.N {
					return buf, 0, 0, nil, nil
				}
				break // pull the next chunk
			}
		}
	}

	// Digest quorum: collect (snapshot hash, chain digest) votes until one
	// pair reaches need matching copies.
	type vote struct{ snap, tail uint64 }
	votes := map[vote][]int64{}
	var winner *vote
	for _, sv := range servers {
		_, sd, td, abort, err := pull(sv, "digest")
		if abort != nil || err != nil {
			return abort, err
		}
		v := vote{sd, td}
		votes[v] = append(votes[v], sv)
		if len(votes[v]) >= need {
			winner = &v
			break
		}
	}
	if winner == nil {
		return nil, fmt.Errorf("cluster: no snapshot digest reached %d matching copies across %d servers", need, len(servers))
	}

	// Content, from the winning voters in turn: a server whose bytes fail
	// the agreed digests (or do not parse, chain or fold) is Byzantine —
	// it voted for state it will not produce — and the next voter is tried.
	var firstErr error
	for _, sv := range votes[*winner] {
		res, abort, err := n.fetchFrom(pull, sv, j, m, winner.snap, winner.tail)
		if abort != nil {
			return abort, nil
		}
		if err != nil {
			n.log.Error("join-server-rejected", "server", sv, "err", err)
			mJoinServerRejects.Inc()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n.pending = res
		mJoinRounds.Inc()
		n.log.Info("join-fetched", "j", j, "m", m, "gen", res.base.Gen, "digest", fmt.Sprintf("%x", res.mDigest))
		if err := n.ctrl.AckJoined(round, n.lead); err != nil {
			ev := n.ctrl.ctrldownNow()
			return &ev, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("cluster: every digest-matching server failed content validation: %w", firstErr)
}

// fetchFrom pulls and validates one server's snapshot + fold tail against
// the quorum-agreed digests. The snapshot becomes the joiner's base at J;
// the tail is folded only to prove it parses, chains from the snapshot,
// and lands on the agreed digest at m — the instances it covers are
// re-executed live after the rewind, not installed.
func (n *Node) fetchFrom(pull pullFn, server int64, j, m int, wantSnap, wantTail uint64) (*joinResult, *ctrlMsg, error) {
	snapBytes, _, _, abort, err := pull(server, "snap")
	if abort != nil || err != nil {
		return nil, abort, err
	}
	if fnvSum(snapBytes) != wantSnap {
		return nil, nil, fmt.Errorf("cluster: server %d: snapshot bytes do not hash to the agreed digest", server)
	}
	snap, err := wal.DecodeSnapshot(snapBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: server %d: %w", server, err)
	}
	if snap.K != j {
		return nil, nil, fmt.Errorf("cluster: server %d: snapshot at %d, want %d", server, snap.K, j)
	}
	tailBytes, _, _, abort, err := pull(server, "tail")
	if abort != nil || err != nil {
		return nil, abort, err
	}
	g, err := n.cfg.Graph()
	if err != nil {
		return nil, nil, err
	}
	seed := core.SnapshotState{K: snap.K, Gen: snap.Gen, Disputes: snap.Disputes, Faulty: snap.Faulty}
	b, err := core.NewSnapshotBuilder(g).Seed(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: server %d: %w", server, err)
	}
	digest := snap.Digest
	rest := tailBytes
	for k := j + 1; k <= m; k++ {
		ln, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < ln {
			return nil, nil, fmt.Errorf("cluster: server %d: truncated fold tail at instance %d", server, k)
		}
		payload := rest[sz : sz+int(ln)]
		rest = rest[sz+int(ln):]
		ir, err := wal.DecodeCommitFold(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: server %d: %w", server, err)
		}
		if ir.K != k {
			return nil, nil, fmt.Errorf("cluster: server %d: fold tail carries instance %d, want %d", server, ir.K, k)
		}
		digest = wal.Chain(digest, payload)
		if err := b.Fold(ir); err != nil {
			return nil, nil, fmt.Errorf("cluster: server %d: %w", server, err)
		}
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("cluster: server %d: %d trailing bytes after the fold tail", server, len(rest))
	}
	if digest != wantTail {
		return nil, nil, fmt.Errorf("cluster: server %d: fold tail chains to %x, agreed digest is %x", server, digest, wantTail)
	}
	return &joinResult{base: seed, baseDigest: snap.Digest, m: m, mDigest: digest}, nil, nil
}

// applyRewind rewinds this process to the round's floor m on the agreed
// epoch: a blank joiner first installs its fetched state as its floor,
// then every durable process restores its runtime, prunes its input
// retention, re-pins the mesh and fsyncs its WAL — the fsync is the floor
// safety rule: when the round completes, the whole cluster is durably at
// or past m, so a floor snapshot persisted at resume can never strand a
// future rollback below someone's log.
func (n *Node) applyRewind(m int, epoch uint64) error {
	n.epoch = epoch
	if n.blank {
		if n.pending != nil {
			if n.pending.base.K != m {
				return fmt.Errorf("cluster: rewind to %d but the join fetch anchored at %d", m, n.pending.base.K)
			}
			n.floor = n.pending.base.K
			n.base = n.pending.base
			n.chain = append(n.chain[:0], n.pending.baseDigest)
			n.committed = nil
			if n.pending.m > n.floor {
				// Arm the re-execution tripwire: when this process's own
				// chain reaches the pre-join watermark, it must land on the
				// quorum-agreed digest.
				n.checkK, n.checkDigest = n.pending.m, n.pending.mDigest
			}
		} else if m != 0 {
			return fmt.Errorf("cluster: blank process rewound to %d with no fetched state", m)
		}
		n.blank = false
		n.pending = nil
	}
	if m < n.floor || m > n.floor+len(n.committed) {
		return fmt.Errorf("cluster: rewind to %d outside [floor %d, watermark %d]", m, n.floor, n.floor+len(n.committed))
	}
	n.log.Info("rewind", "k", m, "epoch", epoch, "floor", n.floor)
	if err := n.rt.RestoreSnapshot(n.epoch<<32, n.base, n.committed[:m-n.floor]); err != nil {
		return err
	}
	n.inputs.prune(m)
	// Re-pin every outbound mesh link before acknowledging: a connection
	// to the restarted peer can look healthy until the first post-resume
	// write discovers the dead socket.
	if err := n.tr.Reestablish(); err != nil {
		return fmt.Errorf("cluster: re-pin mesh links: %w", err)
	}
	if n.opt.SyncWAL != nil {
		if err := n.opt.SyncWAL(); err != nil {
			return fmt.Errorf("cluster: wal sync before rewound ack: %w", err)
		}
	}
	return nil
}

// persistFloorAt writes the round's floor snapshot into this process's
// WAL (compacting the log behind it) once the round has resumed — only
// then has every process provably fsynced past m.
func (n *Node) persistFloorAt(m int) error {
	if n.opt.PersistFloor == nil {
		return nil
	}
	st, err := n.stateAt(m)
	if err != nil {
		return err
	}
	s := wal.Snapshot{K: st.K, Epoch: n.epoch, Gen: st.Gen, Disputes: st.Disputes, Faulty: st.Faulty, Digest: n.chain[m-n.floor]}
	if err := n.opt.PersistFloor(s); err != nil {
		return fmt.Errorf("cluster: persist floor snapshot: %w", err)
	}
	mFloorSnapshots.Inc()
	n.log.Info("floor-persisted", "k", m, "gen", st.Gen)
	return nil
}
