package metrics

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus writes every family in registration order in the
// Prometheus text exposition format (version 0.0.4): one # HELP and
// # TYPE header per family, then one sample line per child — histograms
// expand to cumulative _bucket{le=...} lines plus _sum and _count. This
// is the snapshot path, not the hot path; it takes the registry and
// family locks briefly and may allocate.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		for i, key := range keys {
			switch c := children[i].(type) {
			case *Counter:
				writeSample(bw, f.name, "", key, "", float64(c.Value()))
			case *Gauge:
				writeSample(bw, f.name, "", key, "", float64(c.Value()))
			case *Histogram:
				var cum uint64
				for b := range c.counts {
					cum += c.counts[b].Load()
					le := "+Inf"
					if b < len(c.upper) {
						le = formatFloat(c.upper[b])
					}
					writeSample(bw, f.name, "_bucket", key, le, float64(cum))
				}
				writeSample(bw, f.name, "_sum", key, "", c.Sum())
				writeSample(bw, f.name, "_count", key, "", float64(cum))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one line: name[suffix]{key[,le="..."]} value. key is
// the pre-escaped label assignment ("" for unlabeled instruments).
func writeSample(bw *bufio.Writer, name, suffix, key, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if key != "" || le != "" {
		bw.WriteByte('{')
		bw.WriteString(key)
		if le != "" {
			if key != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
