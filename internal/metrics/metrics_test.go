package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestMetricsHotPathZeroAlloc pins the hot-path operations at 0 allocs/op,
// like the coding and WAL fast paths: instruments must be free to sit
// inside Send/Append/commit loops.
func TestMetricsHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nab_test_ops_total", "ops")
	g := r.NewGauge("nab_test_inflight", "inflight")
	h := r.NewHistogram("nab_test_latency_seconds", "latency", LatencyBuckets)
	vec := r.NewCounterVec("nab_test_link_frames_total", "frames", "link")
	link := vec.With("1->2") // resolved at setup time, cached by the caller

	n := testing.AllocsPerRun(2000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Inc()
		g.Dec()
		h.Observe(0.0042)
		h.Observe(123.0) // overflow bucket
		link.Inc()
	})
	if n != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", n)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nab_test_total", "t")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.NewGauge("nab_test_gauge", "g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("nab_test_h_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// ranks: p50 → 3rd obs → bucket le=2; p99 → 5th obs → overflow,
	// reported as the largest finite bound.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}

// TestWritePrometheusGolden locks the exposition output byte-for-byte:
// HELP/TYPE headers, registration ordering, label escaping, histogram
// _bucket/_sum/_count with +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nab_test_commits_total", "Total commits.")
	c.Add(3)
	g := r.NewGauge("nab_test_inflight", "Instances in flight.")
	g.Set(2)
	vec := r.NewCounterVec("nab_test_frames_total", "Frames per link.", "link")
	vec.With("0->1").Add(5)
	vec.With("1->0").Add(7)
	h := r.NewHistogram("nab_test_wait_seconds", "Wait time.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP nab_test_commits_total Total commits.
# TYPE nab_test_commits_total counter
nab_test_commits_total 3
# HELP nab_test_inflight Instances in flight.
# TYPE nab_test_inflight gauge
nab_test_inflight 2
# HELP nab_test_frames_total Frames per link.
# TYPE nab_test_frames_total counter
nab_test_frames_total{link="0->1"} 5
nab_test_frames_total{link="1->0"} 7
# HELP nab_test_wait_seconds Wait time.
# TYPE nab_test_wait_seconds histogram
nab_test_wait_seconds_bucket{le="0.5"} 1
nab_test_wait_seconds_bucket{le="2"} 2
nab_test_wait_seconds_bucket{le="+Inf"} 3
nab_test_wait_seconds_sum 10.25
nab_test_wait_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	vec := r.NewCounterVec("nab_test_esc_total", "esc", "name")
	vec.With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `nab_test_esc_total{name="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"commits_total", "nab_Upper", "nab_sp ace", "nab-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %q", name)
				}
			}()
			NewRegistry().NewCounter(name, "x")
		}()
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("nab_test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate registration")
		}
	}()
	r.NewCounter("nab_test_dup_total", "y")
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nab_test_r_total", "x")
	h := r.NewHistogram("nab_test_r_seconds", "x", []float64{1})
	c.Add(9)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left state: c=%d count=%d sum=%v", c.Value(), h.Count(), h.Sum())
	}
	// instruments stay registered and usable
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter unusable after reset")
	}
}

// TestConcurrentRegistryRace exercises registration, vec-child resolution,
// hot-path updates, Reset and exposition concurrently; meaningful under
// -race (CI runs the race job over this package).
func TestConcurrentRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nab_test_race_total", "x")
	h := r.NewHistogram("nab_test_race_seconds", "x", LatencyBuckets)
	vec := r.NewCounterVec("nab_test_race_link_total", "x", "link")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			link := vec.With(string(rune('a' + i)))
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-5)
				link.Inc()
			}
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			r.Reset()
		}
	}()
	wg.Wait()
}
