// Package metrics is the repo's dependency-free instrumentation layer:
// atomic counters, gauges and fixed-bucket histograms collected in a
// registry and exposed in the Prometheus text format (internal/admin
// serves it at /metrics). The hot-path operations — Counter.Inc/Add,
// Gauge.Set and Histogram.Observe — are single atomic updates and perform
// no allocation (pinned by TestMetricsHotPathZeroAlloc), so instruments
// can sit inside the coding, wire and WAL fast paths without perturbing
// them.
//
// Instruments are registered once (typically package-level vars) and live
// for the process; labeled families (Vec types) resolve their children at
// setup time — e.g. one counter per transport link at Dial — so the send
// path never touches a map. All names must follow the repo convention
// nab_<subsystem>_<metric>[_total|_seconds|_bytes], enforced at
// registration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
//
//nab:allocfree
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced on
// the hot path).
//
//nab:allocfree
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//nab:allocfree
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds 1.
//
//nab:allocfree
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
//
//nab:allocfree
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n.
//
//nab:allocfree
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. The bucket
// layout is immutable after construction; Observe is a linear scan over
// at most a few dozen bounds plus two atomic updates, with no allocation.
type Histogram struct {
	upper  []float64 // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
//
//nab:allocfree
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper bound of the bucket the quantile falls in, or the largest
// finite bound for the overflow bucket. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			break
		}
	}
	if len(h.upper) == 0 {
		return 0
	}
	return h.upper[len(h.upper)-1]
}

// LatencyBuckets is the default bucket layout for sub-second latencies
// (10µs to 10s), used by the commit, fsync and stall histograms.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 100e-6, 250e-6,
	1e-3, 2.5e-3, 10e-3, 25e-3,
	0.1, 0.25, 1, 2.5, 10,
}

// SizeBuckets is a power-of-two layout for batch sizes and small counts.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	}
	return "histogram"
}

// family is one metric name: its metadata plus the labeled children (one
// unlabeled child for plain instruments).
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64
	labels  []string

	mu       sync.Mutex
	order    []string // child keys in first-seen order
	children map[string]any
}

// Registry holds families in registration order. The zero value is not
// usable; use NewRegistry or the package Default.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry — tests and embedders that want
// isolation from the process-wide Default.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level
// constructor registers into and /metrics serves.
func Default() *Registry { return defaultRegistry }

// validName enforces the exposition grammar and the repo convention: all
// instrument names are nab_*.
func validName(name string) bool {
	if !strings.HasPrefix(name, "nab_") {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}

// register creates (or fails on a duplicate) one family. Instruments are
// package-level singletons, so a duplicate name is a programmer error.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid name %q (want nab_[a-z0-9_]+)", name))
	}
	for _, l := range labels {
		if l == "" || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{
		name: name, help: help, kind: k,
		buckets: buckets, labels: labels,
		children: map[string]any{},
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// child returns (creating on first use) the instrument for one label-value
// key.
func (f *family) child(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case counterKind:
		c = &Counter{}
	case gaugeKind:
		c = &Gauge{}
	case histogramKind:
		c = &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).child("").(*Counter)
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).child("").(*Gauge)
}

// NewHistogram registers an unlabeled histogram over the given ascending
// bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: unsorted buckets on %q", name))
	}
	b := append([]float64(nil), buckets...)
	return r.register(name, help, histogramKind, b, nil).child("").(*Histogram)
}

// CounterVec is a labeled counter family; resolve children with With at
// setup time and keep the returned *Counter for the hot path.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs labels", name))
	}
	return &CounterVec{f: r.register(name, help, counterKind, nil, labels)}
}

// With returns the child counter for the given label values (in the
// labels' registration order). It allocates on first use of a label set;
// callers cache the result.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(childKey(v.f, values)).(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs labels", name))
	}
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: unsorted buckets on %q", name))
	}
	b := append([]float64(nil), buckets...)
	return &HistogramVec{f: r.register(name, help, histogramKind, b, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(childKey(v.f, values)).(*Histogram)
}

// childKey canonicalizes one label-value assignment. Values are stored
// escaped, ready for exposition.
func childKey(f *family, values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	var sb strings.Builder
	for i, l := range f.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Reset zeroes every instrument in the registry — counters and gauges to
// 0, histogram buckets and sums cleared. Registration (names, labels,
// children) is preserved. Meant for benchmark harnesses that measure
// per-phase deltas; resetting under live traffic skews in-flight gauges.
func (r *Registry) Reset() {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for _, c := range f.children {
			switch c := c.(type) {
			case *Counter:
				c.v.Store(0)
			case *Gauge:
				c.v.Store(0)
			case *Histogram:
				for i := range c.counts {
					c.counts[i].Store(0)
				}
				c.sum.Store(0)
			}
		}
		f.mu.Unlock()
	}
}

// Package-level constructors over the Default registry.

// NewCounter registers an unlabeled counter in the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers an unlabeled gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers an unlabeled histogram in the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, buckets)
}

// NewCounterVec registers a labeled counter family in the default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, labels...)
}

// NewHistogramVec registers a labeled histogram family in the default
// registry.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.NewHistogramVec(name, help, buckets, labels...)
}
