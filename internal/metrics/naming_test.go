package metrics_test

import (
	"bufio"
	"bytes"
	"regexp"
	"strings"
	"testing"

	"nab/internal/metrics"

	// Each instrumented layer registers its instruments in package vars;
	// importing them here puts every family the daemons expose into the
	// default registry so the naming sweep below covers the real set.
	_ "nab"
	_ "nab/internal/cluster"
	_ "nab/internal/runtime"
	_ "nab/internal/transport"
	_ "nab/internal/wal"
)

// namePattern is the repo's metric naming convention: a nab_ prefix and
// lowercase snake case, per Prometheus guidance. The registry panics on
// violations at registration time; this sweep pins the convention over
// every family the instrumented packages actually register.
var namePattern = regexp.MustCompile(`^nab_[a-z0-9_]+$`)

func TestAllRegisteredFamiliesFollowNamingConvention(t *testing.T) {
	var buf bytes.Buffer
	if err := metrics.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "# TYPE <name> <kind>" announces each family exactly once.
		if len(fields) != 4 || fields[0] != "#" || fields[1] != "TYPE" {
			continue
		}
		families++
		name, kind := fields[2], fields[3]
		if !namePattern.MatchString(name) {
			t.Errorf("metric %q violates the nab_* snake_case convention", name)
		}
		switch kind {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("metric %q has unknown type %q", name, kind)
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %q should end in _total", name)
		}
		if kind == "histogram" && !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_records") {
			t.Errorf("histogram %q should carry a unit suffix (_seconds or _records)", name)
		}
	}
	// The instrumented layers register well over a dozen families; a low
	// count means an import above went missing and the sweep is hollow.
	if families < 15 {
		t.Errorf("only %d families registered; expected the full instrumented set (>= 15)", families)
	}
}
