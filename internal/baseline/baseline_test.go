package baseline

import (
	"bytes"
	"testing"

	"nab/internal/topo"
)

func TestRunEIGDelivers(t *testing.T) {
	g := topo.CompleteBi(4, 2)
	input := []byte("payload!")
	res, err := RunEIG(g, 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if !bytes.Equal(out, input) {
			t.Errorf("node %d decided %q", v, out)
		}
	}
	if res.Time <= 0 || res.TotalBits <= 0 {
		t.Errorf("stats not accounted: time=%v bits=%d", res.Time, res.TotalBits)
	}
	if res.Throughput(len(input)*8) <= 0 {
		t.Error("throughput not positive")
	}
}

func TestRunFloodDelivers(t *testing.T) {
	g := topo.CompleteBi(5, 2)
	input := []byte("flooded")
	res, err := RunFlood(g, 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if !bytes.Equal(out, input) {
			t.Errorf("node %d got %q", v, out)
		}
	}
	if res.Time <= 0 {
		t.Error("no time accounted")
	}
}

func TestBaselinesConnectivityValidation(t *testing.T) {
	g := topo.Fig1a() // connectivity 2 < 3
	if _, err := RunEIG(g, 1, 1, []byte{1}); err == nil {
		t.Error("EIG on low-connectivity graph: expected error")
	}
	if _, err := RunFlood(g, 1, 1, []byte{1}); err == nil {
		t.Error("Flood on low-connectivity graph: expected error")
	}
}

func TestEIGObliviousToCapacity(t *testing.T) {
	// Doubling every capacity should at least halve the time (the baseline
	// is *charged* by capacity, it just doesn't adapt its routes).
	input := make([]byte, 64)
	thin, err := RunEIG(topo.CompleteBi(4, 1), 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	fat, err := RunEIG(topo.CompleteBi(4, 2), 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	if fat.Time >= thin.Time {
		t.Errorf("fat network not faster: %v vs %v", fat.Time, thin.Time)
	}
}

func TestHeterogeneousPenalty(t *testing.T) {
	// On a network with one thin link, the flood baseline pays the thin
	// price while total capacity is large: time should be dominated by the
	// thin link relative to a uniform network of the same fat capacity.
	input := make([]byte, 32)
	het, err := topo.Heterogeneous(5, 3, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform := topo.CompleteBi(5, 64)
	slow, err := RunFlood(het, 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunFlood(uniform, 1, 1, input)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Time < 4*fast.Time {
		t.Errorf("heterogeneous penalty too small: %v vs %v", slow.Time, fast.Time)
	}
}

func BenchmarkRunEIG5(b *testing.B) {
	g := topo.CompleteBi(5, 2)
	input := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunEIG(g, 1, 1, input); err != nil {
			b.Fatal(err)
		}
	}
}
