// Package baseline implements capacity-oblivious Byzantine broadcast
// algorithms from the prior literature the paper compares against
// conceptually: they solve BB correctly but ignore link capacities, so
// their throughput collapses on heterogeneous networks ("one can easily
// construct example networks in which previously proposed algorithms
// achieve throughput that is arbitrarily worse than the optimal" — §1).
//
// Two comparators are provided, with the same deterministic capacity-model
// time accounting as NAB:
//
//   - EIG: the source broadcasts its full L-bit input with classic
//     Exponential Information Gathering over the 2f+1-disjoint-path
//     complete-graph emulation. Fully Byzantine-tolerant, every bit is
//     replicated across paths and EIG rounds.
//
//   - Flood: the source sends the input along 2f+1 node-disjoint paths to
//     every node, which takes a majority. Tolerates faulty relays (not a
//     faulty source); it is the natural "cheap" comparator for the
//     fault-free-throughput ceiling.
//
// Throughputs are measured on fault-free executions: the baselines' costs
// are structural (replication), not adversarial.
package baseline

import (
	"fmt"

	"nab/internal/bb"
	"nab/internal/graph"
	"nab/internal/relay"
	"nab/internal/sim"
)

// Result reports one baseline broadcast.
type Result struct {
	Outputs   map[graph.NodeID][]byte
	Time      float64 // cut-through time units
	TotalBits int64
}

// Throughput returns bits per time unit for an input of lenBits.
func (r *Result) Throughput(lenBits int) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(lenBits) / r.Time
}

// RunEIG broadcasts input from source to all nodes of g using EIG over the
// relay emulation, tolerating f faults structurally (the run itself is
// fault-free; correctness under faults is covered by the bb package).
func RunEIG(g *graph.Directed, source graph.NodeID, f int, input []byte) (*Result, error) {
	tab, err := relay.NewTable(g, 2*f+1)
	if err != nil {
		return nil, fmt.Errorf("baseline: relay table: %w", err)
	}
	engine := sim.New(g)
	engine.SetRecording(false)
	participants := g.Nodes()
	nodes := map[graph.NodeID]*bb.Node{}
	var rounds int
	for _, v := range participants {
		var value []byte
		if v == source {
			value = input
		}
		nd, err := bb.NewNode(v, participants, f, relay.NewRouter(v, tab), value)
		if err != nil {
			return nil, fmt.Errorf("baseline: node %d: %w", v, err)
		}
		nodes[v] = nd
		rounds = nd.Rounds()
		if err := engine.SetProcess(v, nd); err != nil {
			return nil, err
		}
	}
	stats, err := engine.RunPhase("baseline-eig", rounds)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: map[graph.NodeID][]byte{}, Time: stats.CutThroughTime(), TotalBits: stats.TotalBits()}
	for v, nd := range nodes {
		nd.Finish()
		res.Outputs[v] = nd.Decide(source)
	}
	return res, nil
}

// RunFlood sends input from source to every node along 2f+1 node-disjoint
// paths; receivers take the majority.
func RunFlood(g *graph.Directed, source graph.NodeID, f int, input []byte) (*Result, error) {
	tab, err := relay.NewTable(g, 2*f+1)
	if err != nil {
		return nil, fmt.Errorf("baseline: relay table: %w", err)
	}
	engine := sim.New(g)
	engine.SetRecording(false)
	routers := map[graph.NodeID]*relay.Router{}
	for _, v := range g.Nodes() {
		v := v
		r := relay.NewRouter(v, tab)
		routers[v] = r
		if err := engine.SetProcess(v, sim.StepFunc(func(round int, inbox []sim.Message) []sim.Message {
			out := r.HandleAll(inbox)
			if v == source && round == 0 {
				for _, d := range g.Nodes() {
					if d != v {
						out = append(out, r.Send(d, "flood", input)...)
					}
				}
			}
			return out
		})); err != nil {
			return nil, err
		}
	}
	stats, err := engine.RunPhase("baseline-flood", tab.Rounds()+1)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: map[graph.NodeID][]byte{}, Time: stats.CutThroughTime(), TotalBits: stats.TotalBits()}
	for v, r := range routers {
		if v == source {
			res.Outputs[v] = input
			continue
		}
		got, ok := r.Majority(source, "flood")
		if !ok {
			return nil, fmt.Errorf("baseline: node %d missing majority on fault-free run", v)
		}
		res.Outputs[v] = got
	}
	return res, nil
}
