package sim

import (
	"sort"

	"nab/internal/graph"
)

// NewPhaseStats returns an empty phase accumulator over topology g for an
// execution of the given number of rounds. It is the constructor used by
// engines other than the lockstep Engine (internal/runtime's actor engine)
// to produce capacity charges with identical semantics; Charge is safe for
// concurrent use.
func NewPhaseStats(name string, g *graph.Directed, rounds int) *PhaseStats {
	ps := &PhaseStats{
		Name:        name,
		Rounds:      rounds,
		BitsPerLink: map[[2]graph.NodeID]int64{},
		caps:        map[[2]graph.NodeID]int64{},
		roundMax:    make([]float64, rounds),
		roundBits:   make([]map[[2]graph.NodeID]int64, rounds),
	}
	for _, ed := range g.Edges() {
		ps.caps[[2]graph.NodeID{ed.From, ed.To}] = ed.Cap
	}
	for r := range ps.roundBits {
		ps.roundBits[r] = map[[2]graph.NodeID]int64{}
	}
	return ps
}

// Charge records bits transmitted on link (from, to) during the 0-based
// emission round, updating both the cut-through and store-and-forward
// accountings. Rounds beyond the constructor's count are grown on demand.
func (ps *PhaseStats) Charge(round int, from, to graph.NodeID, bits int64) {
	key := [2]graph.NodeID{from, to}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.roundBits) <= round {
		ps.roundBits = append(ps.roundBits, map[[2]graph.NodeID]int64{})
		ps.roundMax = append(ps.roundMax, 0)
	}
	ps.BitsPerLink[key] += bits
	ps.totalBits += bits
	rb := ps.roundBits[round]
	rb[key] += bits
	if c := ps.caps[key]; c > 0 {
		if t := float64(rb[key]) / float64(c); t > ps.roundMax[round] {
			ps.roundMax[round] = t
		}
	}
}

// SortInbox orders one recipient's inbox exactly as the lockstep engine
// delivers it: stable by sender, so messages from one sender keep their
// per-link emission order. Message-driven engines apply it before invoking
// a Process so protocol state evolves identically under both substrates.
func SortInbox(msgs []Message) {
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
}
