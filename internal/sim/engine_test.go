package sim

import (
	"sync"
	"testing"

	"nab/internal/graph"
)

func lineGraph(n int, c int64) *graph.Directed {
	g := graph.NewDirected()
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), c)
	}
	return g
}

func TestSetProcessValidation(t *testing.T) {
	e := New(lineGraph(3, 1))
	if err := e.SetProcess(99, Silent); err == nil {
		t.Error("missing node: expected error")
	}
	if err := e.SetProcess(1, nil); err == nil {
		t.Error("nil process: expected error")
	}
	if err := e.SetProcess(1, Silent); err != nil {
		t.Errorf("valid: %v", err)
	}
}

func TestRunPhaseValidation(t *testing.T) {
	e := New(lineGraph(2, 1))
	if _, err := e.RunPhase("p", 0); err == nil {
		t.Error("rounds=0: expected error")
	}
}

func TestMessageFlowAndTiming(t *testing.T) {
	// 1 -> 2 -> 3 relay of an 8-bit message over capacity-2 links.
	g := lineGraph(3, 2)
	e := New(g)
	var got []Message
	var mu sync.Mutex
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		if round == 0 {
			return []Message{{From: 1, To: 2, Bits: 8, Body: "hello"}}
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.SetProcess(2, StepFunc(func(round int, inbox []Message) []Message {
		var out []Message
		for _, m := range inbox {
			out = append(out, Message{From: 2, To: 3, Bits: m.Bits, Body: m.Body})
		}
		return out
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.SetProcess(3, StepFunc(func(round int, inbox []Message) []Message {
		mu.Lock()
		got = append(got, inbox...)
		mu.Unlock()
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	ps, err := e.RunPhase("relay", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Body != "hello" {
		t.Fatalf("node 3 received %v", got)
	}
	// Each link carried 8 bits at capacity 2 -> cut-through 4 time units.
	if ct := ps.CutThroughTime(); ct != 4 {
		t.Errorf("cut-through = %v, want 4", ct)
	}
	// Rounds sequential: round 0 charges link (1,2) 8/2=4; round 1 charges
	// (2,3) 4; round 2 nothing. Store-and-forward = 8.
	if sf := ps.StoreForwardTime(); sf != 8 {
		t.Errorf("store-and-forward = %v, want 8", sf)
	}
	if ps.TotalBits() != 16 {
		t.Errorf("total bits = %d, want 16", ps.TotalBits())
	}
	if e.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", e.Dropped())
	}
}

func TestPhysicsEnforcement(t *testing.T) {
	g := lineGraph(3, 1) // edges 1->2, 2->3 only
	e := New(g)
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		if round != 0 {
			return nil
		}
		return []Message{
			{From: 1, To: 3, Bits: 1},  // no such link
			{From: 2, To: 3, Bits: 1},  // forged sender
			{From: 1, To: 2, Bits: -1}, // negative bits
			{From: 1, To: 2, Bits: 1},  // legitimate
		}
	})); err != nil {
		t.Fatal(err)
	}
	ps, err := e.RunPhase("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", e.Dropped())
	}
	if ps.TotalBits() != 1 {
		t.Errorf("total bits = %d, want 1", ps.TotalBits())
	}
}

func TestDeterministicInboxOrder(t *testing.T) {
	// Nodes 1, 2, 3 all send to 4; inbox must arrive sorted by sender
	// regardless of goroutine scheduling. Run repeatedly to catch races.
	g := graph.NewDirected()
	g.MustAddEdge(1, 4, 1)
	g.MustAddEdge(2, 4, 1)
	g.MustAddEdge(3, 4, 1)
	for trial := 0; trial < 20; trial++ {
		e := New(g)
		for _, v := range []graph.NodeID{1, 2, 3} {
			v := v
			if err := e.SetProcess(v, StepFunc(func(round int, inbox []Message) []Message {
				if round == 0 {
					return []Message{{From: v, To: 4, Bits: 1, Body: int(v)}}
				}
				return nil
			})); err != nil {
				t.Fatal(err)
			}
		}
		var order []int
		var mu sync.Mutex
		if err := e.SetProcess(4, StepFunc(func(round int, inbox []Message) []Message {
			mu.Lock()
			for _, m := range inbox {
				order = append(order, m.Body.(int))
			}
			mu.Unlock()
			return nil
		})); err != nil {
			t.Fatal(err)
		}
		if _, err := e.RunPhase("p", 2); err != nil {
			t.Fatal(err)
		}
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("trial %d: inbox order %v", trial, order)
		}
	}
}

func TestSeedDelivery(t *testing.T) {
	g := lineGraph(2, 1)
	e := New(g)
	e.Seed([]Message{{From: 1, To: 1, Bits: 0, Body: "input"}})
	var got []Message
	var mu sync.Mutex
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		mu.Lock()
		got = append(got, inbox...)
		mu.Unlock()
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	ps, err := e.RunPhase("p", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Body != "input" {
		t.Fatalf("seeded message not delivered: %v", got)
	}
	if ps.TotalBits() != 0 {
		t.Errorf("seed charged %d bits", ps.TotalBits())
	}
}

func TestPendingCrossesPhases(t *testing.T) {
	g := lineGraph(2, 1)
	e := New(g)
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		return []Message{{From: 1, To: 2, Bits: 1, Body: round}}
	})); err != nil {
		t.Fatal(err)
	}
	var got []int
	var mu sync.Mutex
	if err := e.SetProcess(2, StepFunc(func(round int, inbox []Message) []Message {
		mu.Lock()
		for _, m := range inbox {
			got = append(got, m.Body.(int))
		}
		mu.Unlock()
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPhase("a", 1); err != nil {
		t.Fatal(err)
	}
	// Message from phase a round 0 is still pending; delivered in phase b.
	if _, err := e.RunPhase("b", 1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("cross-phase delivery: %v", got)
	}
}

func TestTranscriptRecording(t *testing.T) {
	g := lineGraph(2, 1)
	e := New(g)
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		if round == 0 {
			return []Message{{From: 1, To: 2, Bits: 3}}
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPhase("x", 2); err != nil {
		t.Fatal(err)
	}
	recs := e.Records()
	if len(recs) != 1 || recs[0].Phase != "x" || recs[0].Round != 0 || recs[0].Msg.Bits != 3 {
		t.Fatalf("records = %+v", recs)
	}
	// Recording can be disabled.
	e2 := New(g)
	e2.SetRecording(false)
	if err := e2.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		return []Message{{From: 1, To: 2, Bits: 1}}
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunPhase("x", 1); err != nil {
		t.Fatal(err)
	}
	if len(e2.Records()) != 0 {
		t.Error("recording disabled but records present")
	}
}

func TestGraphIsolation(t *testing.T) {
	g := lineGraph(2, 1)
	e := New(g)
	g.MustAddEdge(2, 1, 5) // mutate original after engine construction
	if e.Graph().HasEdge(2, 1) {
		t.Error("engine shares graph storage with caller")
	}
	eg := e.Graph()
	eg.MustAddEdge(2, 1, 5)
	if e.Graph().HasEdge(2, 1) {
		t.Error("Graph() exposes internal storage")
	}
}

func TestByzantineBodyCorruption(t *testing.T) {
	// A Byzantine relay corrupts payloads but cannot touch the direct link:
	// node 3 receives the true value from 1 directly and the corrupted one
	// via 2.
	g := graph.NewDirected()
	g.MustAddEdge(1, 2, 8)
	g.MustAddEdge(1, 3, 8)
	g.MustAddEdge(2, 3, 8)
	e := New(g)
	if err := e.SetProcess(1, StepFunc(func(round int, inbox []Message) []Message {
		if round == 0 {
			return []Message{
				{From: 1, To: 2, Bits: 8, Body: byte(42)},
				{From: 1, To: 3, Bits: 8, Body: byte(42)},
			}
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.SetProcess(2, StepFunc(func(round int, inbox []Message) []Message {
		var out []Message
		for range inbox {
			out = append(out, Message{From: 2, To: 3, Bits: 8, Body: byte(13)}) // lie
		}
		return out
	})); err != nil {
		t.Fatal(err)
	}
	direct := map[graph.NodeID]byte{}
	var mu sync.Mutex
	if err := e.SetProcess(3, StepFunc(func(round int, inbox []Message) []Message {
		mu.Lock()
		for _, m := range inbox {
			direct[m.From] = m.Body.(byte)
		}
		mu.Unlock()
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPhase("p", 3); err != nil {
		t.Fatal(err)
	}
	if direct[1] != 42 {
		t.Errorf("direct copy corrupted: %d", direct[1])
	}
	if direct[2] != 13 {
		t.Errorf("relay copy = %d, want the adversary's 13", direct[2])
	}
}

func BenchmarkRunPhase(b *testing.B) {
	g := lineGraph(10, 4)
	e := New(g)
	e.SetRecording(false)
	for i := 1; i < 10; i++ {
		v := graph.NodeID(i)
		if err := e.SetProcess(v, StepFunc(func(round int, inbox []Message) []Message {
			var out []Message
			for _, m := range inbox {
				out = append(out, Message{From: v, To: v + 1, Bits: m.Bits, Body: m.Body})
			}
			return out
		})); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seed([]Message{{From: 1, To: 1, Bits: 0, Body: "x"}})
		if _, err := e.RunPhase("bench", 10); err != nil {
			b.Fatal(err)
		}
	}
}
