// Package sim is a synchronous point-to-point network simulator matching
// the paper's system model: nodes execute in lockstep rounds, each directed
// link has a fixed capacity z_e, and transmitting b bits over a link is
// charged b/z_e time units.
//
// Node behaviour is supplied as Process implementations; each round every
// process runs in its own goroutine, consumes the messages delivered to it
// and emits messages for the next round. Byzantine nodes are ordinary
// Process implementations that happen to lie — the engine enforces only
// physics: a node can send solely on its own outgoing links in the current
// topology, and every transmitted bit is charged to the link.
//
// Two time accountings are exposed per phase, matching the paper's two
// regimes:
//
//   - cut-through (zero propagation delay, the paper's default): a phase
//     lasts max over links of total-bits/capacity, regardless of hop count;
//   - store-and-forward: rounds are sequential, each lasting the max over
//     links of that round's bits/capacity (the regime that motivates the
//     Appendix D pipelining construction).
package sim

import (
	"fmt"
	"sort"
	"sync"

	"nab/internal/graph"
)

// Message is one transmission over a directed link. Bits is the
// information-theoretic size charged against the link capacity; Body is the
// payload, opaque to the engine.
type Message struct {
	From graph.NodeID
	To   graph.NodeID
	Bits int64
	Body any
}

// Process is per-node behaviour. Step is called once per round with the
// messages delivered this round (sorted by sender) and returns the messages
// to be delivered next round. Step must be safe to run concurrently with
// other nodes' Step calls (it is invoked from its own goroutine) but is
// never invoked concurrently with itself.
type Process interface {
	Step(round int, inbox []Message) []Message
}

// StepFunc adapts a function to the Process interface.
type StepFunc func(round int, inbox []Message) []Message

// Step implements Process.
func (f StepFunc) Step(round int, inbox []Message) []Message { return f(round, inbox) }

// Silent is a Process that never sends anything (a crashed node, or a node
// that ignores a phase).
var Silent Process = StepFunc(func(int, []Message) []Message { return nil })

// PhaseStats aggregates the capacity charges of one phase. The lockstep
// engine fills one in during RunPhase; message-driven engines build one via
// NewPhaseStats/Charge.
type PhaseStats struct {
	Name        string
	Rounds      int
	BitsPerLink map[[2]graph.NodeID]int64
	caps        map[[2]graph.NodeID]int64
	roundMax    []float64 // per-round max bits/capacity
	totalBits   int64

	// Accumulator state (NewPhaseStats path only).
	mu        sync.Mutex
	roundBits []map[[2]graph.NodeID]int64
}

// CutThroughTime returns the phase duration in the zero-propagation-delay
// model: max over links of total bits / capacity.
func (ps *PhaseStats) CutThroughTime() float64 {
	return ps.maxOverLinks(ps.BitsPerLink)
}

// StoreForwardTime returns the phase duration when rounds are sequential:
// the sum over rounds of each round's max bits/capacity.
func (ps *PhaseStats) StoreForwardTime() float64 {
	var sum float64
	for _, m := range ps.roundMax {
		sum += m
	}
	return sum
}

// TotalBits returns the number of bits transmitted during the phase.
func (ps *PhaseStats) TotalBits() int64 { return ps.totalBits }

func (ps *PhaseStats) maxOverLinks(bits map[[2]graph.NodeID]int64) float64 {
	var out float64
	for key, b := range bits {
		if t := float64(b) / float64(ps.caps[key]); t > out {
			out = t
		}
	}
	return out
}

// SentRecord is one transcript entry (for tests and metrics; protocol code
// must never read the global transcript — honest nodes only see their own
// links).
type SentRecord struct {
	Phase string
	Round int
	Msg   Message
}

// Engine drives one topology. It is not safe for concurrent use.
type Engine struct {
	g       *graph.Directed
	procs   map[graph.NodeID]Process
	pending []Message // queued for delivery at the next round
	record  bool
	records []SentRecord
	dropped int
}

// New returns an engine over topology g. All nodes default to Silent.
func New(g *graph.Directed) *Engine {
	e := &Engine{g: g.Clone(), procs: map[graph.NodeID]Process{}, record: true}
	for _, v := range g.Nodes() {
		e.procs[v] = Silent
	}
	return e
}

// Graph returns a copy of the engine's topology.
func (e *Engine) Graph() *graph.Directed { return e.g.Clone() }

// SetProcess installs the behaviour for node v.
func (e *Engine) SetProcess(v graph.NodeID, p Process) error {
	if !e.g.HasNode(v) {
		return fmt.Errorf("sim: node %d not in topology", v)
	}
	if p == nil {
		return fmt.Errorf("sim: nil process for node %d", v)
	}
	e.procs[v] = p
	return nil
}

// SetRecording toggles transcript recording (on by default).
func (e *Engine) SetRecording(on bool) { e.record = on }

// Records returns the transcript so far.
func (e *Engine) Records() []SentRecord { return e.records }

// Dropped returns how many messages were discarded for violating physics
// (sent on a non-existent link). Nonzero values with honest-only processes
// indicate protocol bugs; tests assert on this.
func (e *Engine) Dropped() int { return e.dropped }

// Seed injects messages for delivery in the first round of the next phase;
// used to hand a phase its inputs without charging any link (e.g. the
// source's own value "received from itself").
func (e *Engine) Seed(msgs []Message) {
	e.pending = append(e.pending, msgs...)
}

// RunPhase executes rounds lockstep rounds under the given phase label and
// returns the phase's capacity charges. Messages emitted in the final round
// remain pending and are delivered in the next phase's first round.
func (e *Engine) RunPhase(name string, rounds int) (*PhaseStats, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("sim: rounds = %d must be positive", rounds)
	}
	ps := &PhaseStats{
		Name:        name,
		Rounds:      rounds,
		BitsPerLink: map[[2]graph.NodeID]int64{},
		caps:        map[[2]graph.NodeID]int64{},
	}
	for _, ed := range e.g.Edges() {
		ps.caps[[2]graph.NodeID{ed.From, ed.To}] = ed.Cap
	}

	nodes := e.g.Nodes()
	for round := 0; round < rounds; round++ {
		inboxes := e.routePending()

		outs := make([][]Message, len(nodes))
		var wg sync.WaitGroup
		for i, v := range nodes {
			wg.Add(1)
			go func(i int, v graph.NodeID) {
				defer wg.Done()
				outs[i] = e.procs[v].Step(round, inboxes[v])
			}(i, v)
		}
		wg.Wait()

		var roundBits = map[[2]graph.NodeID]int64{}
		e.pending = e.pending[:0]
		for i, v := range nodes {
			for _, m := range outs[i] {
				if m.From != v {
					// A node cannot forge another sender; physics drops it.
					e.dropped++
					continue
				}
				if !e.g.HasEdge(m.From, m.To) {
					e.dropped++
					continue
				}
				if m.Bits < 0 {
					e.dropped++
					continue
				}
				key := [2]graph.NodeID{m.From, m.To}
				ps.BitsPerLink[key] += m.Bits
				roundBits[key] += m.Bits
				ps.totalBits += m.Bits
				e.pending = append(e.pending, m)
				if e.record {
					e.records = append(e.records, SentRecord{Phase: name, Round: round, Msg: m})
				}
			}
		}
		var rm float64
		for key, b := range roundBits {
			if t := float64(b) / float64(ps.caps[key]); t > rm {
				rm = t
			}
		}
		ps.roundMax = append(ps.roundMax, rm)
	}
	return ps, nil
}

// routePending distributes queued messages into per-recipient inboxes with
// deterministic ordering (by sender, then destination, then queue order).
func (e *Engine) routePending() map[graph.NodeID][]Message {
	inboxes := map[graph.NodeID][]Message{}
	msgs := append([]Message(nil), e.pending...)
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].From != msgs[j].From {
			return msgs[i].From < msgs[j].From
		}
		return msgs[i].To < msgs[j].To
	})
	for _, m := range msgs {
		inboxes[m.To] = append(inboxes[m.To], m)
	}
	e.pending = e.pending[:0]
	return inboxes
}
