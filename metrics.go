package nab

import (
	"time"

	"nab/internal/metrics"
	"nab/internal/wal"
)

// Session-layer instruments: end-to-end commit accounting as the client
// sees it, one layer above the runtime's launch-to-commit view.
var (
	mCommits = metrics.NewCounter("nab_commits_total",
		"Broadcast instances committed and delivered to the session consumer.")
	mCommitsReplayed = metrics.NewCounter("nab_commits_replayed_total",
		"Recovered commits re-delivered from the write-ahead log.")
	mCommitLatency = metrics.NewHistogram("nab_commit_latency_seconds",
		"Submit-to-commit latency per broadcast payload.", metrics.LatencyBuckets)
	mSubmitWait = metrics.NewHistogram("nab_submit_wait_seconds",
		"Time Submit spent blocked on pipeline backpressure.", metrics.LatencyBuckets)
)

// SessionMetrics is a point-in-time snapshot of the observability layer's
// commit and durability instruments — the same numbers /metrics exposes,
// in API form for embedders and bench harnesses. The counters are
// process-wide (all sessions share the default registry); a process
// hosting one session reads them as its own.
type SessionMetrics struct {
	// Commits is the number of instances committed and delivered live.
	Commits int64
	// ReplayedCommits counts recovered commits re-delivered at open.
	ReplayedCommits int64
	// CommitLatencyP50/P99 are submit-to-commit latency quantiles
	// (bucket upper bounds, so conservative estimates).
	CommitLatencyP50 time.Duration
	CommitLatencyP99 time.Duration
	// SubmitWaitP99 is the backpressure wait quantile seen by Submit.
	SubmitWaitP99 time.Duration
	// WALFsyncP99 is the WAL group-commit fsync latency quantile.
	WALFsyncP99 time.Duration
	// WALAppendBytes is the total bytes framed into WAL buffers.
	WALAppendBytes int64
	// WALSyncLag is this session's appended-but-not-yet-durable record
	// count (0 without durability).
	WALSyncLag uint64
	// Snapshots is how many engine-state snapshot records this session
	// wrote (interval-driven and forced); each one anchored a segment
	// compaction. 0 without durability.
	Snapshots int64
}

// Metrics snapshots the session-visible instruments.
func (s *Session) Metrics() SessionMetrics {
	return SessionMetrics{
		Commits:          mCommits.Value(),
		ReplayedCommits:  mCommitsReplayed.Value(),
		CommitLatencyP50: secondsToDuration(mCommitLatency.Quantile(0.50)),
		CommitLatencyP99: secondsToDuration(mCommitLatency.Quantile(0.99)),
		SubmitWaitP99:    secondsToDuration(mSubmitWait.Quantile(0.99)),
		WALFsyncP99:      secondsToDuration(wal.FsyncQuantile(0.99)),
		WALAppendBytes:   wal.AppendedBytes(),
		WALSyncLag:       s.WALSyncLag(),
		Snapshots:        s.Snapshots(),
	}
}

// Snapshots returns how many engine-state snapshot records this session
// has written (see WithSnapshotInterval and the cluster's
// SnapshotInterval). Sessions without durability report 0.
func (s *Session) Snapshots() int64 {
	if s.slog == nil {
		return 0
	}
	return s.slog.snapshots()
}

// WALSyncLag returns how many of this session's WAL records are appended
// but not yet known durable — the sync-lag health signal surfaced by
// /healthz. Sessions without durability report 0.
func (s *Session) WALSyncLag() uint64 {
	if s.slog == nil {
		return 0
	}
	return s.slog.log.Lag()
}

func secondsToDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
