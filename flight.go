package nab

import (
	"strconv"
	"time"

	"nab/internal/flight"
)

// FlightEvent re-exports the flight recorder's event record for
// embedders that want programmatic access to a trace (tools consume the
// binary TraceDump form instead).
type FlightEvent = flight.Event

// WithFlightRecorder arms the process-global flight recorder with a
// ring of at least capacity events (rounded up to a power of two,
// minimum 1024; pass 0 for the 64k default). Every layer then records
// causal events — instance launches, phase transitions, per-frame
// send/recv with the cross-process stitch index, dispute barriers,
// WAL appends/fsyncs, cluster rejoin/join rounds — into the ring at
// zero allocations per event, and anomaly sites (dispute barrier
// opened, join digest tripwire, rejoin/join entered) write black-box
// dumps next to the WAL when the session is durable.
//
// Like the metrics registry, the recorder is process-wide: one enabled
// session traces every engine in the process. Recording is passive —
// commit sequences stay byte-identical with the recorder on.
func WithFlightRecorder(capacity int) SessionOption {
	return func(o *sessionOptions) {
		if capacity <= 0 {
			capacity = 1 << 16
		}
		o.flightCapacity = capacity
	}
}

// WithFlightPredicate installs a user anomaly predicate on the flight
// recorder: any recorded event it returns true for triggers a
// black-box dump (reason "predicate"). The predicate never sees the
// anomaly events triggers themselves record, runs on the record hot
// path (keep it cheap and non-blocking), and is cleared again when the
// session that installed it closes. Implies WithFlightRecorder's
// default capacity unless one was set.
func WithFlightPredicate(f func(FlightEvent) bool) SessionOption {
	return func(o *sessionOptions) {
		if o.flightCapacity == 0 {
			o.flightCapacity = 1 << 16
		}
		o.flightPredicate = f
	}
}

// TraceDump serializes the flight recorder's current contents as a
// binary dump (reason "manual") for tools/nabtrace. Returns nil when
// no recorder is armed.
func (s *Session) TraceDump() []byte {
	return flight.Default().DumpBytes("manual", time.Now().UnixNano())
}

// FlightEvents snapshots the recorder's surviving events in record
// order — the programmatic view of the same data TraceDump encodes.
// Nil when no recorder is armed.
func (s *Session) FlightEvents() []FlightEvent {
	return flight.Default().Events()
}

// armFlight applies the session's flight options at Open: enable the
// ring, label the process, and point black-box dumps at the WAL
// directory when the session is durable. The returned disarm hook —
// nil when there is nothing to undo — clears the predicate and the
// autodump target at Close: both reference session state (the
// predicate may capture it, the dump dir is the session's WAL dir) and
// must not outlive it on the process-global recorder. The ring itself
// stays armed so a post-mortem TraceDump after Close still works.
func armFlight(o *sessionOptions) func() {
	if o.flightCapacity == 0 {
		return nil
	}
	r := flight.Default()
	r.Enable(o.flightCapacity)
	label := "session"
	if o.cluster != nil {
		label = "node-" + strconv.Itoa(int(o.clusterID))
	}
	r.SetLabel(label)
	pred := o.flightPredicate != nil
	if pred {
		r.SetPredicate(o.flightPredicate)
	}
	dump := o.durability != nil && o.durability.dir != ""
	if dump {
		r.SetAutodumpDir(o.durability.dir)
	}
	if !pred && !dump {
		return nil
	}
	return func() {
		if pred {
			r.SetPredicate(nil)
		}
		if dump {
			r.SetAutodumpDir("")
		}
	}
}
