package nab_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"nab"
)

// chaosScenario is the acceptance scenario from the chaos PR: latency +
// jitter + a reorder window on every link, plus an asymmetric partition
// that heals mid-run — composed with a Byzantine adversary. The protocol
// assumes an asynchronous-but-reliable network, so no amount of this may
// change what commits: every engine must stay byte-identical to the
// chaos-free lockstep oracle.
func chaosScenario(seed int64) *nab.ChaosConfig {
	return &nab.ChaosConfig{
		Seed: seed,
		Default: nab.ChaosLink{
			Latency:     nab.ChaosDuration(time.Millisecond),
			Jitter:      nab.ChaosDuration(4 * time.Millisecond),
			ReorderProb: 0.35,
		},
		Partitions: []nab.ChaosPartition{
			// Directed 2->3 severed through the early run; 3->2 stays up.
			{From: []nab.NodeID{2}, To: []nab.NodeID{3},
				Start: nab.ChaosDuration(50 * time.Millisecond),
				Heal:  nab.ChaosDuration(900 * time.Millisecond)},
		},
	}
}

// TestSessionChaosDifferential runs the same Byzantine workload on the
// pipelined engine over the chaos-wrapped in-process bus and over the
// chaos-wrapped TCP substrate, asserting commits and dispute sets match
// the lockstep oracle exactly. This is the per-engine pin of the ordering
// audit: the runtime only relies on per-(link, instance) FIFO, which the
// chaos layer preserves while shuffling everything else.
func TestSessionChaosDifferential(t *testing.T) {
	g := nab.CompleteGraph(4, 2)
	mkCfg := func() nab.Config {
		return nab.Config{
			Graph: g, Source: 1, F: 1, LenBytes: 16, Seed: 7,
			Adversaries: map[nab.NodeID]nab.Adversary{3: nab.BlockFlipperAdversary()},
		}
	}
	payloads := mkPayloads(5, 16)
	ctx := context.Background()

	lockSess, err := nab.Open(ctx, mkCfg(), nab.WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer lockSess.Close()
	want, wantDisputes := feedAndCollect(t, lockSess, payloads)

	compare := func(t *testing.T, got []*nab.InstanceResult, disputes string) {
		t.Helper()
		if disputes != wantDisputes {
			t.Errorf("dispute set %q, want %q", disputes, wantDisputes)
		}
		if len(got) != len(want) {
			t.Fatalf("committed %d instances, want %d", len(got), len(want))
		}
		for i, w := range want {
			gr := got[i]
			if gr.Mismatch != w.Mismatch || gr.Phase3 != w.Phase3 {
				t.Errorf("instance %d: mismatch/phase3 = %v/%v, want %v/%v",
					i+1, gr.Mismatch, gr.Phase3, w.Mismatch, w.Phase3)
			}
			for v, out := range w.Outputs {
				if !bytes.Equal(gr.Outputs[v], out) {
					t.Errorf("instance %d: node %d output %x, want %x", i+1, v, gr.Outputs[v], out)
				}
			}
		}
	}

	t.Run("PipelinedChan", func(t *testing.T) {
		sess, err := nab.Open(ctx, mkCfg(), nab.WithWindow(4),
			nab.WithTransportOptions(nab.TransportOptions{Chaos: chaosScenario(1)}))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		got, disputes := feedAndCollect(t, sess, payloads)
		compare(t, got, disputes)
	})

	t.Run("PipelinedTCP", func(t *testing.T) {
		if testing.Short() {
			t.Skip("real sockets under partition stall")
		}
		tr, err := nab.NewTCPTransportOpts(g, nab.TCPTransportOptions{Chaos: chaosScenario(2)})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := nab.Open(ctx, mkCfg(), nab.WithWindow(4), nab.WithTransport(tr))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		got, disputes := feedAndCollect(t, sess, payloads)
		compare(t, got, disputes)
	})

	t.Run("RejectsBadConfig", func(t *testing.T) {
		bad := &nab.ChaosConfig{Default: nab.ChaosLink{ReorderProb: 2}}
		if _, err := nab.Open(ctx, mkCfg(), nab.WithWindow(2),
			nab.WithTransportOptions(nab.TransportOptions{Chaos: bad})); err == nil {
			t.Error("invalid chaos config accepted by Open")
		}
	})
}

// TestSessionChaosCluster is the multi-process cell: the chaos spec rides
// in cluster.json (every process injects the same seeded physics into its
// mesh links) while the control plane stays polite. Commits and disputes
// must match the chaos-free lockstep oracle.
func TestSessionChaosCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session cluster under chaos")
	}
	g := nab.CompleteGraph(4, 2)
	const procs = 3
	ccfg, rsv := sessionDiffConfig(t, g, 1, 1, procs, map[nab.NodeID]string{3: "flip"})
	ccfg.Chaos = chaosScenario(3)
	if err := ccfg.Validate(); err != nil {
		t.Fatal(err)
	}
	payloads := mkPayloads(4, ccfg.LenBytes)
	ctx := context.Background()

	coreCfg, err := ccfg.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	lockSess, err := nab.Open(ctx, coreCfg, nab.WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer lockSess.Close()
	want, wantDisputes := feedAndCollect(t, lockSess, payloads)

	leads := map[string]nab.NodeID{}
	var order []string
	for _, ns := range ccfg.Nodes {
		if _, ok := leads[ns.Addr]; !ok {
			leads[ns.Addr] = ns.ID
			order = append(order, ns.Addr)
		}
	}
	type procView struct {
		results  []*nab.InstanceResult
		disputes string
	}
	views := make([]procView, len(order))
	var wg sync.WaitGroup
	for i, addr := range order {
		wg.Add(1)
		go func(i int, lead nab.NodeID) {
			defer wg.Done()
			sess, err := nab.Open(ctx, nab.Config{}, nab.WithCluster(ccfg, lead, nab.ClusterOptions{
				BootTimeout: 30 * time.Second, Reservation: rsv,
			}))
			if err != nil {
				t.Errorf("process %d: %v", i, err)
				return
			}
			defer sess.Close()
			rs, ds := feedAndCollect(t, sess, payloads)
			views[i] = procView{results: rs, disputes: ds}
		}(i, leads[addr])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for pi, view := range views {
		if len(view.results) != len(want) {
			t.Fatalf("process %d committed %d instances, want %d", pi, len(view.results), len(want))
		}
		if view.disputes != wantDisputes {
			t.Errorf("process %d dispute set %q, want %q", pi, view.disputes, wantDisputes)
		}
	}
	for i, w := range want {
		merged := map[nab.NodeID][]byte{}
		for pi, view := range views {
			gr := view.results[i]
			if gr.Mismatch != w.Mismatch || gr.Phase3 != w.Phase3 {
				t.Errorf("process %d instance %d: mismatch/phase3 = %v/%v, want %v/%v",
					pi, i+1, gr.Mismatch, gr.Phase3, w.Mismatch, w.Phase3)
			}
			for v, out := range gr.Outputs {
				merged[v] = out
			}
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(merged[v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, merged[v], out)
			}
		}
	}
}
