package nab_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"nab"
)

// runBatch feeds a fixed batch through the pipelined runner's streaming
// entry point and returns once every instance has committed.
func runBatch(rt *nab.PipelinedRunner, inputs [][]byte) (*nab.PipelineResult, error) {
	if err := rt.ValidateInputs(inputs); err != nil {
		return nil, err
	}
	subs := make(chan []byte, len(inputs))
	for _, in := range inputs {
		subs <- in
	}
	close(subs)
	return rt.RunStream(context.Background(), subs, nil)
}

func TestFacadeQuickstart(t *testing.T) {
	g := nab.CompleteGraph(4, 1)
	runner, err := nab.NewRunner(nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("8 bytes!")
	res, err := runner.RunInstance(input)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if !bytes.Equal(out, input) {
			t.Errorf("node %d decided %x", v, out)
		}
	}
}

func TestFacadePipelinedRunner(t *testing.T) {
	g := nab.CompleteGraph(4, 1)
	rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{
		Config: nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 8},
		Window: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	inputs := [][]byte{[]byte("8 bytes!"), []byte("more of!"), []byte("the same")}
	res, err := runBatch(rt, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range res.Instances {
		for v, out := range ir.Outputs {
			if !bytes.Equal(out, inputs[i]) {
				t.Errorf("instance %d: node %d decided %x", i+1, v, out)
			}
		}
	}
	if rep := rt.Report(res, nil); rep.Instances != 3 {
		t.Errorf("report instances = %d", rep.Instances)
	}
}

func TestFacadeTCPTransport(t *testing.T) {
	g := nab.CompleteGraph(4, 1)
	tr, err := nab.NewTCPTransport(g)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{
		Config:    nab.Config{Graph: g, Source: 1, F: 1, LenBytes: 8},
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	input := []byte("via tcp!")
	res, err := runBatch(rt, [][]byte{input})
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Instances[0].Outputs {
		if !bytes.Equal(out, input) {
			t.Errorf("node %d decided %x", v, out)
		}
	}
}

func TestFacadeCapacity(t *testing.T) {
	rep, err := nab.AnalyzeCapacity(nab.PaperFig1Graph(), 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gamma1 != 2 || rep.U1 != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestFacadeTopologies(t *testing.T) {
	if _, err := nab.CirculantGraph(8, 1, 1, 2); err != nil {
		t.Error(err)
	}
	if _, err := nab.RandomGraph(rand.New(rand.NewSource(1)), 6, 3, 2); err != nil {
		t.Error(err)
	}
	if _, err := nab.HeterogeneousGraph(5, 3, 8, 1); err != nil {
		t.Error(err)
	}
	if _, err := nab.OneThinLinkGraph(5, 4, 5, 8, 1); err != nil {
		t.Error(err)
	}
	g, err := nab.ParseGraph("1 2 3\n2 1 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap(1, 2) != 3 {
		t.Error("parse wrong")
	}
}

func TestFacadeAdversariesAndBaselines(t *testing.T) {
	g := nab.CompleteGraph(4, 2)
	runner, err := nab.NewRunner(nab.Config{
		Graph: g, Source: 1, F: 1, LenBytes: 8,
		Adversaries: map[nab.NodeID]nab.Adversary{3: nab.BlockFlipperAdversary()},
	})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("attacked")
	res, err := runner.RunInstance(input)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phase3 {
		t.Error("corruption not detected via facade")
	}
	for _, out := range res.Outputs {
		if !bytes.Equal(out, input) {
			t.Error("validity violated via facade")
		}
	}
	if _, err := nab.BaselineEIG(g, 1, 1, input); err != nil {
		t.Error(err)
	}
	if _, err := nab.BaselineFlood(g, 1, 1, input); err != nil {
		t.Error(err)
	}
	// Remaining adversary constructors exist and satisfy the interface.
	for _, a := range []nab.Adversary{
		nab.CrashAdversary(), nab.CodedCorruptorAdversary(),
		nab.FalseAlarmAdversary(), nab.SeededRandomAdversary(5),
	} {
		if a == nil {
			t.Error("nil adversary from constructor")
		}
	}
}
