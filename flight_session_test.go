package nab_test

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"nab"
	"nab/internal/flight"
)

// TestSessionDifferentialWithFlightRecorder pins the recorder's core
// contract: it is a passive observer. The same dispute-heavy workload
// runs on the lockstep oracle bare and on the pipelined engine with the
// recorder armed, and the commits must stay byte-identical — then the
// trace itself must be a decodable dump that actually captured the run
// (launches, phases, commits, and barrier events when replays happened).
func TestSessionDifferentialWithFlightRecorder(t *testing.T) {
	defer flight.Default().Disable() // the recorder is process-global
	ctx := context.Background()
	mkCfg := func() nab.Config {
		return nab.Config{
			Graph: nab.CompleteGraph(7, 2), Source: 1, F: 2, LenBytes: 24, Seed: 7,
			Adversaries: map[nab.NodeID]nab.Adversary{
				3: nab.FalseAlarmAdversary(),
				5: nab.BlockFlipperAdversary(),
			},
		}
	}
	payloads := mkPayloads(5, 24)

	lockSess, err := nab.Open(ctx, mkCfg(), nab.WithLockstep())
	if err != nil {
		t.Fatal(err)
	}
	defer lockSess.Close()
	want, wantDisputes := feedAndCollect(t, lockSess, payloads)

	// K7 traffic is frame-heavy (thousands of EvFrameSend/Recv per
	// instance), so the ring must be large enough not to lap the five
	// launches this test counts.
	pipeSess, err := nab.Open(ctx, mkCfg(), nab.WithWindow(4), nab.WithFlightRecorder(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	defer pipeSess.Close()
	got, gotDisputes := feedAndCollect(t, pipeSess, payloads)

	if gotDisputes != wantDisputes {
		t.Errorf("recorded run dispute set %q, want %q", gotDisputes, wantDisputes)
	}
	for i, w := range want {
		g := got[i]
		if g.Mismatch != w.Mismatch || g.Phase3 != w.Phase3 {
			t.Errorf("instance %d: mismatch/phase3 = %v/%v, want %v/%v",
				i+1, g.Mismatch, g.Phase3, w.Mismatch, w.Phase3)
		}
		for v, out := range w.Outputs {
			if !bytes.Equal(g.Outputs[v], out) {
				t.Errorf("instance %d: node %d output %x, want %x", i+1, v, g.Outputs[v], out)
			}
		}
	}

	// The trace must have watched the run it did not perturb.
	raw := pipeSess.TraceDump()
	if raw == nil {
		t.Fatal("TraceDump returned nil with the recorder armed")
	}
	dump, err := flight.Decode(raw)
	if err != nil {
		t.Fatalf("TraceDump did not round-trip: %v", err)
	}
	counts := map[flight.EventType]int{}
	for _, ev := range dump.Events {
		counts[ev.Type]++
	}
	if counts[flight.EvCommit] != len(payloads) {
		t.Errorf("trace has %d commits, want %d", counts[flight.EvCommit], len(payloads))
	}
	if counts[flight.EvLaunch] < len(payloads) {
		t.Errorf("trace has %d launches, want at least %d", counts[flight.EvLaunch], len(payloads))
	}
	if counts[flight.EvPhase] == 0 {
		t.Error("trace has no phase transitions")
	}
	if replays := pipeSess.Result().Replays; replays > 0 {
		if counts[flight.EvBarrierOpen] == 0 || counts[flight.EvReplay] != replays {
			t.Errorf("run replayed %d instances but trace has %d barrier-opens / %d replays",
				replays, counts[flight.EvBarrierOpen], counts[flight.EvReplay])
		}
	}
	if evs := pipeSess.FlightEvents(); len(evs) != len(dump.Events) {
		t.Errorf("FlightEvents returned %d events, dump has %d", len(evs), len(dump.Events))
	}
}

// TestCloseDisarmsFlightPredicate pins the session-lifetime contract:
// the predicate a session installs via WithFlightPredicate stops
// running on the process-global record path once that session closes
// (it may capture session state), while the ring itself stays armed for
// post-mortem dumps.
func TestCloseDisarmsFlightPredicate(t *testing.T) {
	defer flight.Default().Disable() // the recorder is process-global
	var calls atomic.Int64
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: 8, Seed: 1}
	sess, err := nab.Open(context.Background(), cfg, nab.WithLockstep(),
		nab.WithFlightPredicate(func(nab.FlightEvent) bool {
			calls.Add(1)
			return false
		}))
	if err != nil {
		t.Fatal(err)
	}
	flight.Default().Record(flight.Event{Type: flight.EvCommit, K: 1, Node: -1})
	if calls.Load() == 0 {
		t.Fatal("predicate not installed while the session is open")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	before := calls.Load()
	flight.Default().Record(flight.Event{Type: flight.EvCommit, K: 2, Node: -1})
	if got := calls.Load(); got != before {
		t.Fatalf("predicate ran %d more times after Close", got-before)
	}
	if !flight.Default().Enabled() {
		t.Fatal("Close disabled the ring; it must stay armed for post-mortem dumps")
	}
}
