package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nab/internal/flight"
)

var update = flag.Bool("update", false, "regenerate testdata fixtures")

// genDumps builds the checked-in two-process fixture: node-0 hosts the
// source and opens a dispute barrier after instance 2's commit; node-1
// receives node-0's frames (stitchable on the (link, inst, index) key)
// and goes through a rejoin round. Timestamps are synthetic nanoseconds
// on a shared clock, so the golden output is stable by construction.
func genDumps() (node0, node1 flight.Dump) {
	base := int64(1_000_000_000)
	ms := func(m int64) int64 { return base + m*1_000_000 }
	var seq0, seq1 uint64
	ev0 := func(e flight.Event) flight.Event {
		e.Seq = seq0
		seq0++
		node0.Events = append(node0.Events, e)
		return e
	}
	ev1 := func(e flight.Event) flight.Event {
		e.Seq = seq1
		seq1++
		node1.Events = append(node1.Events, e)
		return e
	}

	// Instance 1 on both processes: launch, phases, frames 0→1, commit.
	for k := int32(1); k <= 2; k++ {
		t := ms(int64(k-1) * 40)
		inst := uint64(k)
		ev0(flight.Event{Type: flight.EvLaunch, TS: t, Node: -1, Inst: inst, K: k, Gen: 0})
		ev1(flight.Event{Type: flight.EvLaunch, TS: t + 1_000_000, Node: -1, Inst: inst, K: k, Gen: 0})
		ev0(flight.Event{Type: flight.EvPhase, TS: t + 2_000_000, Node: -1, K: k, Step: flight.Phase1})
		ev1(flight.Event{Type: flight.EvPhase, TS: t + 3_000_000, Node: -1, K: k, Step: flight.Phase1})
		for idx := uint64(0); idx < 2; idx++ {
			st := t + 4_000_000 + int64(idx)*2_000_000
			ev0(flight.Event{Type: flight.EvFrameSend, TS: st, Node: 0, Peer: 1, Inst: inst, Step: 1, Arg: idx})
			ev1(flight.Event{Type: flight.EvFrameRecv, TS: st + 1_500_000, Node: 1, Peer: 0, Inst: inst, Step: 1, Arg: idx})
		}
		ev0(flight.Event{Type: flight.EvPhase, TS: t + 10_000_000, Node: -1, K: k, Step: flight.PhaseEquality})
		ev1(flight.Event{Type: flight.EvPhase, TS: t + 11_000_000, Node: -1, K: k, Step: flight.PhaseEquality})
		ev0(flight.Event{Type: flight.EvPhase, TS: t + 14_000_000, Node: -1, K: k, Step: flight.PhaseFlags})
		ev1(flight.Event{Type: flight.EvPhase, TS: t + 15_000_000, Node: -1, K: k, Step: flight.PhaseFlags})
		ev0(flight.Event{Type: flight.EvWALAppend, TS: t + 16_000_000, Node: -1, Arg: 128})
		ev0(flight.Event{Type: flight.EvCommit, TS: t + 20_000_000, Node: -1, Inst: inst, K: k, Gen: 0, Arg: 4096})
		ev1(flight.Event{Type: flight.EvCommit, TS: t + 21_000_000, Node: -1, Inst: inst, K: k, Gen: 0, Arg: 4096})
	}
	ev0(flight.Event{Type: flight.EvWALFsync, TS: ms(81), Node: -1, Arg: 3})

	// Instance 2's commit tripped dispute control on node-0: barrier
	// opens, instance 3's speculation is reaped and replayed.
	ev0(flight.Event{Type: flight.EvLaunch, TS: ms(82), Node: -1, Inst: 3, K: 3, Gen: 0})
	ev0(flight.Event{Type: flight.EvBarrierOpen, TS: ms(84), Node: -1, Inst: 2, K: 2, Gen: 1})
	ev0(flight.Event{Type: flight.EvAnomaly, TS: ms(84), Node: -1, Arg: flight.ReasonDispute})
	ev0(flight.Event{Type: flight.EvReplay, TS: ms(85), Node: -1, Inst: 3, K: 3, Gen: 0})
	ev0(flight.Event{Type: flight.EvBarrierClose, TS: ms(88), Node: -1, K: 3, Gen: 1})

	// node-1 was killed and rejoins: announce → sync → rewind → resume.
	ev1(flight.Event{Type: flight.EvAnomaly, TS: ms(90), Node: -1, Arg: flight.ReasonRejoin})
	ev1(flight.Event{Type: flight.EvRejoinRound, TS: ms(90), Node: -1, Step: flight.RoundAnnounce, Arg: 1, Inst: 2})
	ev1(flight.Event{Type: flight.EvRejoinRound, TS: ms(93), Node: -1, Step: flight.RoundSync, Arg: 1, Inst: 2})
	ev1(flight.Event{Type: flight.EvRejoinRound, TS: ms(97), Node: -1, Step: flight.RoundRewind, Arg: 1, Inst: 2})
	ev1(flight.Event{Type: flight.EvRejoinRound, TS: ms(104), Node: -1, Step: flight.RoundResume, Arg: 1, Inst: 2})

	// The replayed instance 3 relaunches under gen 1 and commits on both.
	for i, ev := range []func(flight.Event) flight.Event{ev0, ev1} {
		off := int64(i)
		ev(flight.Event{Type: flight.EvLaunch, TS: ms(106 + off), Node: -1, Inst: 4, K: 3, Gen: 1})
		ev(flight.Event{Type: flight.EvPhase, TS: ms(108 + off), Node: -1, K: 3, Step: flight.Phase1})
		ev(flight.Event{Type: flight.EvPhase, TS: ms(114 + off), Node: -1, K: 3, Step: flight.PhaseEquality})
		ev(flight.Event{Type: flight.EvPhase, TS: ms(118 + off), Node: -1, K: 3, Step: flight.PhaseFlags})
		ev(flight.Event{Type: flight.EvPhase, TS: ms(121 + off), Node: -1, K: 3, Step: flight.PhaseClaims})
		ev(flight.Event{Type: flight.EvCommit, TS: ms(127 + off), Node: -1, Inst: 4, K: 3, Gen: 1, Arg: 6144})
	}
	ev0(flight.Event{Type: flight.EvFrameSend, TS: ms(109), Node: 0, Peer: 1, Inst: 4, Step: 1, Arg: 0})
	ev1(flight.Event{Type: flight.EvFrameRecv, TS: ms(110), Node: 1, Peer: 0, Inst: 4, Step: 1, Arg: 0})
	// One frame node-0 sent that node-1's ring lost: stays an orphan.
	ev0(flight.Event{Type: flight.EvFrameSend, TS: ms(111), Node: 0, Peer: 1, Inst: 4, Step: 2, Arg: 1})

	node0.Meta = flight.Meta{Label: "node-0", Reason: "manual", WallNS: ms(130), Total: seq0, Capacity: 1024}
	node1.Meta = flight.Meta{Label: "node-1", Reason: "dispute-barrier", WallNS: ms(131), Total: seq1 + 5, Capacity: 1024}
	return node0, node1
}

func fixturePaths(t *testing.T) (d0, d1, goldenJSON, goldenTxt string) {
	t.Helper()
	return filepath.Join("testdata", "node-0.dump"),
		filepath.Join("testdata", "node-1.dump"),
		filepath.Join("testdata", "trace.golden.json"),
		filepath.Join("testdata", "report.golden.txt")
}

// TestGolden locks the tool's full output — Chrome trace JSON and text
// report — against checked-in fixtures built from a two-process dump
// pair. Regenerate with: go test ./tools/nabtrace -update
func TestGolden(t *testing.T) {
	d0, d1, goldenJSON, goldenTxt := fixturePaths(t)
	if *update {
		n0, n1 := genDumps()
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(d0, flight.Encode(n0), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d1, flight.Encode(n1), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tmp := t.TempDir()
	traceOut := filepath.Join(tmp, "trace.json")
	var report bytes.Buffer
	if err := run([]string{"-o", traceOut, d0, d1}, &report); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the "wrote N events" line (it names the temp path) before
	// comparing the report.
	gotTxt := report.String()
	if i := strings.Index(gotTxt, "\n"); i >= 0 && strings.HasPrefix(gotTxt, "nabtrace: wrote") {
		gotTxt = gotTxt[i+1:]
	}

	if *update {
		if err := os.WriteFile(goldenJSON, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTxt, []byte(gotTxt), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	wantJSON, err := os.ReadFile(goldenJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("trace JSON drifted from %s (regenerate with -update if intended)\ngot:  %.400s\nwant: %.400s",
			goldenJSON, gotJSON, wantJSON)
	}
	wantTxt, err := os.ReadFile(goldenTxt)
	if err != nil {
		t.Fatal(err)
	}
	if gotTxt != string(wantTxt) {
		t.Errorf("report drifted from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			goldenTxt, gotTxt, wantTxt)
	}
}

// TestTraceIsValidChromeJSON decodes the generated trace and asserts
// the structural claims the fixture encodes: both processes present,
// the dispute barrier and rejoin round appear as complete spans, and
// cross-process frames were stitched into flow pairs.
func TestTraceIsValidChromeJSON(t *testing.T) {
	d0, d1, _, _ := fixturePaths(t)
	tmp := t.TempDir()
	traceOut := filepath.Join(tmp, "trace.json")
	var report bytes.Buffer
	if err := run([]string{"-o", traceOut, d0, d1}, &report); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var sawBarrier, sawRejoin, sawFlowStart, sawFlowEnd bool
	procs := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if ph == "M" && name == "process_name" {
			args := ev["args"].(map[string]any)
			procs[args["name"].(string)] = true
		}
		if ph == "X" && strings.HasPrefix(name, "dispute barrier") {
			sawBarrier = true
			if ev["dur"].(float64) <= 0 {
				t.Errorf("dispute barrier span has non-positive dur: %v", ev)
			}
		}
		if ph == "X" && strings.HasPrefix(name, "rejoin round") {
			sawRejoin = true
		}
		if ph == "s" {
			sawFlowStart = true
		}
		if ph == "f" {
			sawFlowEnd = true
		}
	}
	if !procs["node-0"] || !procs["node-1"] {
		t.Errorf("missing process metadata, got %v", procs)
	}
	if !sawBarrier {
		t.Error("no dispute barrier span in trace")
	}
	if !sawRejoin {
		t.Error("no rejoin round span in trace")
	}
	if !sawFlowStart || !sawFlowEnd {
		t.Errorf("frame flows not stitched: start=%v end=%v", sawFlowStart, sawFlowEnd)
	}
	if !strings.Contains(report.String(), "frame stitching") {
		t.Error("report missing frame stitching section")
	}
}

// TestRejectsForeignFile keeps the magic check honest.
func TestRejectsForeignFile(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "not-a-dump")
	if err := os.WriteFile(tmp, []byte("definitely not NABFLT01 content"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-o", "", tmp}, &buf); err == nil {
		t.Fatal("expected an error for a non-dump file")
	}
}
