// Command nabtrace merges flight-recorder dumps from one or many NAB
// processes into a single causal timeline. It reads NABFLT01 dump files
// (Session.TraceDump, GET /debug/flight, or the black-box
// flight-<reason>.dump files an anomaly drops next to a WAL), stitches
// frame sends to their receives across process boundaries on the
// deterministic (link, instance, frame-index) key, and emits:
//
//   - a Chrome trace-event JSON file (-o, default trace.json) loadable
//     in Perfetto / chrome://tracing: one track per process, one lane
//     per instance with nested phase spans (launch -> phase1 ->
//     equality -> flags -> claims -> commit), dispute barriers and
//     rejoin/join rounds as spans on a control lane, anomalies and WAL
//     syncs as instants, and stitched frames as flow arrows between
//     processes;
//   - an aligned-text report on stdout: per-process event counts, the
//     per-phase latency breakdown over committed instances, and frame
//     stitching statistics (cross-process frame flight times).
//
// Usage:
//
//	nabtrace [-o trace.json] [-max-flows 5000] dump1 [dump2 ...]
//
// Timestamps are wall-clock nanoseconds stamped at record time; dumps
// captured on one machine (the multi-process cluster's deployment
// model) share a clock, so cross-process spans line up without skew
// correction. Dumps with torn tails (a crash mid-black-box-write)
// decode to their surviving prefix and merge like any other.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"nab/internal/flight"
	"nab/internal/texttab"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nabtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nabtrace", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "write Chrome trace-event JSON here (\"-\" for stdout, \"\" to skip)")
	maxFlows := fs.Int("max-flows", 5000, "cap on stitched frame flow arrows in the JSON (earliest kept; the text report always counts all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no dump files given (capture one with /debug/flight or Session.TraceDump)")
	}

	procs, err := loadDumps(fs.Args())
	if err != nil {
		return err
	}
	tl := buildTimeline(procs, *maxFlows)

	if *out != "" {
		raw, err := json.Marshal(traceFile{TraceEvents: tl.events, DisplayTimeUnit: "ms"})
		if err != nil {
			return err
		}
		if *out == "-" {
			w.Write(raw)
			fmt.Fprintln(w)
		} else {
			if err := os.WriteFile(*out, raw, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "nabtrace: wrote %d trace events to %s\n", len(tl.events), *out)
		}
	}
	writeReport(w, procs, tl)
	return nil
}

// process is one loaded dump plus its assigned Chrome pid.
type process struct {
	path string
	pid  int
	dump flight.Dump
	stat procStat
}

// loadDumps reads and decodes every dump, assigning pids in a
// deterministic order (label, then path) so output is stable no matter
// how the shell expanded the arguments.
func loadDumps(paths []string) ([]*process, error) {
	procs := make([]*process, 0, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		d, err := flight.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		sort.Slice(d.Events, func(i, j int) bool { return d.Events[i].Seq < d.Events[j].Seq })
		procs = append(procs, &process{path: p, dump: d})
	}
	sort.Slice(procs, func(i, j int) bool {
		a, b := procs[i], procs[j]
		if a.dump.Meta.Label != b.dump.Meta.Label {
			return a.dump.Meta.Label < b.dump.Meta.Label
		}
		return a.path < b.path
	})
	for i, p := range procs {
		p.pid = i + 1
	}
	return procs, nil
}

// Lane (Chrome tid) assignment inside one process track: a control lane
// for barriers/rounds/anomalies/WAL, a lane for frames whose launch
// event the ring already overwrote, and one lane per instance.
const (
	laneCtrl     = 0
	laneOrphan   = 1
	laneInstBase = 2
)

// traceEvent is one Chrome trace-event JSON object. Field order is the
// struct order; encoding/json keeps it stable for golden output.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// procStat aggregates what the text report prints per process.
type procStat struct {
	commits, replays, barriers, anomalies int
	sends, recvs                          int
	fsyncs                                int
	// seg accumulates per-phase-segment durations (seconds) over
	// committed instances; keys are the fixed column labels below.
	seg map[string]*segStat
}

type segStat struct {
	sum float64
	n   int
}

func (s *procStat) addSeg(label string, ns int64) {
	if s.seg == nil {
		s.seg = map[string]*segStat{}
	}
	st := s.seg[label]
	if st == nil {
		st = &segStat{}
		s.seg[label] = st
	}
	st.sum += float64(ns) / 1e6 // ms
	st.n++
}

// segColumns is the fixed order of the latency-breakdown table; the
// phase chain is linear, so segments are simply consecutive pairs.
var segColumns = []string{
	"launch→phase1", "phase1→equality", "equality→flags",
	"flags→claims", "→commit", "total",
}

// frameKey is the deterministic cross-process stitch key: the FIFO
// transport invariant means the sender's n-th frame on (from,to) for an
// instance is the receiver's n-th, so independent counters at both ends
// agree without any wire change.
type frameKey struct {
	from, to int32
	inst     uint64
	idx      uint64
}

type frameRef struct {
	pid  int
	ts   int64
	step uint32
	lane int64
}

// timeline is the merged result: the Chrome events plus the stitching
// statistics the report prints.
type timeline struct {
	events []traceEvent
	t0     int64 // earliest timestamp across all dumps; JSON ts are relative

	stitched, dupKeys         int
	orphanSends, orphanRecvs  int
	flightSumMS, flightMaxMS  float64
	flowsEmitted, flowsCapped int
}

func buildTimeline(procs []*process, maxFlows int) *timeline {
	tl := &timeline{t0: 1<<63 - 1}
	for _, p := range procs {
		for _, ev := range p.dump.Events {
			if ev.TS < tl.t0 {
				tl.t0 = ev.TS
			}
		}
	}
	if tl.t0 == 1<<63-1 {
		tl.t0 = 0
	}
	us := func(ns int64) float64 { return float64(ns-tl.t0) / 1e3 }

	sends := map[frameKey]frameRef{}
	recvs := map[frameKey]frameRef{}

	for _, p := range procs {
		tl.events = append(tl.events, traceEvent{
			Name: "process_name", Ph: "M", PID: p.pid, TID: laneCtrl,
			Args: map[string]any{"name": p.dump.Meta.Label},
		})
	}

	for _, p := range procs {
		tl.emitProcess(p, us, sends, recvs)
	}
	tl.stitchFlows(sends, recvs, us, maxFlows)
	return tl
}

// instOpen tracks one launched-but-uncommitted instance while walking a
// process's events in record order.
type instOpen struct {
	inst     uint64
	gen      int32
	launchTS int64
	phases   []flight.Event
}

func (tl *timeline) emitProcess(p *process, us func(int64) float64, sends, recvs map[frameKey]frameRef) {
	st := &p.stat
	open := map[int32]*instOpen{} // K -> open instance
	launchK := map[uint64]int32{} // launch id -> K, for frame lanes
	var barrierTS int64           // open dispute barrier
	var barrierGen int32
	var roundStart int64 // open rejoin/join round
	var roundName string

	lane := func(k int32) int64 { return int64(k) + laneInstBase }
	instant := func(name string, ts int64, tid int64, args map[string]any) {
		tl.events = append(tl.events, traceEvent{
			Name: name, Ph: "i", TS: us(ts), PID: p.pid, TID: tid, S: "t", Args: args,
		})
	}
	span := func(name string, from, to int64, tid int64, args map[string]any) {
		tl.events = append(tl.events, traceEvent{
			Name: name, Ph: "X", TS: us(from), Dur: float64(to-from) / 1e3,
			PID: p.pid, TID: tid, Args: args,
		})
	}

	commitInstance := func(o *instOpen, k int32, commitTS int64) {
		span(fmt.Sprintf("inst %d", k), o.launchTS, commitTS, lane(k),
			map[string]any{"gen": o.gen, "launch": o.inst})
		prevName, prevTS := "launch", o.launchTS
		for _, ph := range o.phases {
			name := flight.PhaseName(ph.Step)
			st.addSeg(prevName+"→"+name, ph.TS-prevTS)
			prevName, prevTS = name, ph.TS
		}
		st.addSeg("→commit", commitTS-prevTS)
		st.addSeg("total", commitTS-o.launchTS)
		for i, ph := range o.phases {
			end := commitTS
			if i+1 < len(o.phases) {
				end = o.phases[i+1].TS
			}
			span(flight.PhaseName(ph.Step), ph.TS, end, lane(k), nil)
		}
	}

	for _, ev := range p.dump.Events {
		switch ev.Type {
		case flight.EvLaunch:
			open[ev.K] = &instOpen{inst: ev.Inst, gen: ev.Gen, launchTS: ev.TS}
			launchK[ev.Inst] = ev.K
		case flight.EvPhase:
			if o := open[ev.K]; o != nil {
				o.phases = append(o.phases, ev)
			}
		case flight.EvCommit:
			st.commits++
			if o := open[ev.K]; o != nil {
				commitInstance(o, ev.K, ev.TS)
				delete(open, ev.K)
			} else {
				instant(fmt.Sprintf("commit inst %d", ev.K), ev.TS, lane(ev.K), nil)
			}
		case flight.EvBarrierOpen:
			st.barriers++
			barrierTS, barrierGen = ev.TS, ev.Gen
		case flight.EvReplay:
			st.replays++
			instant(fmt.Sprintf("replay inst %d", ev.K), ev.TS, laneCtrl,
				map[string]any{"gen": ev.Gen})
			// The replayed speculation is dead; its relaunch opens fresh.
			if o := open[ev.K]; o != nil && o.gen == ev.Gen {
				delete(open, ev.K)
			}
		case flight.EvBarrierClose:
			if barrierTS != 0 {
				span(fmt.Sprintf("dispute barrier gen %d", barrierGen),
					barrierTS, ev.TS, laneCtrl, map[string]any{"resume_k": ev.K})
				barrierTS = 0
			}
		case flight.EvRejoinRound, flight.EvJoinRound:
			kind := "rejoin"
			if ev.Type == flight.EvJoinRound {
				kind = "join"
			}
			step := flight.RoundName(ev.Step)
			instant(kind+":"+step, ev.TS, laneCtrl,
				map[string]any{"round": ev.Arg, "watermark": ev.Inst})
			switch ev.Step {
			case flight.RoundAnnounce, flight.RoundSync:
				if roundStart == 0 {
					roundStart, roundName = ev.TS, kind
				}
			case flight.RoundResume:
				if roundStart != 0 {
					span(fmt.Sprintf("%s round %d", roundName, ev.Arg),
						roundStart, ev.TS, laneCtrl, map[string]any{"watermark": ev.Inst})
					roundStart = 0
				}
			}
		case flight.EvWALFsync:
			st.fsyncs++
			instant("wal-fsync", ev.TS, laneCtrl, map[string]any{"records": ev.Arg})
		case flight.EvWALSnapshot:
			instant("wal-snapshot", ev.TS, laneCtrl, nil)
		case flight.EvAnomaly:
			st.anomalies++
			instant("anomaly: "+flight.ReasonName(ev.Arg), ev.TS, laneCtrl, nil)
		case flight.EvFrameSend, flight.EvFrameRecv:
			var key frameKey
			if ev.Type == flight.EvFrameSend {
				st.sends++
				key = frameKey{from: ev.Node, to: ev.Peer, inst: ev.Inst, idx: ev.Arg}
			} else {
				st.recvs++
				key = frameKey{from: ev.Peer, to: ev.Node, inst: ev.Inst, idx: ev.Arg}
			}
			fl := int64(laneOrphan)
			if k, ok := launchK[ev.Inst]; ok {
				fl = lane(k)
			}
			ref := frameRef{pid: p.pid, ts: ev.TS, step: ev.Step, lane: fl}
			m := sends
			if ev.Type == flight.EvFrameRecv {
				m = recvs
			}
			if _, dup := m[key]; dup {
				tl.dupKeys++
			} else {
				m[key] = ref
			}
		}
	}
	// Lane names come last per process so the walk above resolved K.
	lanes := map[int64]string{laneCtrl: "control", laneOrphan: "frames"}
	for inst, k := range launchK {
		_ = inst
		lanes[lane(k)] = fmt.Sprintf("inst %d", k)
	}
	tids := make([]int64, 0, len(lanes))
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		tl.events = append(tl.events, traceEvent{
			Name: "thread_name", Ph: "M", PID: p.pid, TID: tid,
			Args: map[string]any{"name": lanes[tid]},
		})
	}
}

// stitchFlows joins each send to its receive on the frame key and emits
// paired flow arrows (with 1µs anchor slices, which Chrome flows bind
// to). The earliest maxFlows pairs by send time go into the JSON; the
// statistics always cover every pair.
func (tl *timeline) stitchFlows(sends, recvs map[frameKey]frameRef, us func(int64) float64, maxFlows int) {
	type pair struct {
		key  frameKey
		s, r frameRef
	}
	var pairs []pair
	for key, s := range sends {
		r, ok := recvs[key]
		if !ok {
			tl.orphanSends++
			continue
		}
		pairs = append(pairs, pair{key, s, r})
	}
	tl.orphanRecvs = len(recvs) - len(pairs)
	tl.stitched = len(pairs)
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.s.ts != b.s.ts {
			return a.s.ts < b.s.ts
		}
		ka, kb := a.key, b.key
		if ka.from != kb.from {
			return ka.from < kb.from
		}
		if ka.to != kb.to {
			return ka.to < kb.to
		}
		if ka.inst != kb.inst {
			return ka.inst < kb.inst
		}
		return ka.idx < kb.idx
	})
	for i, pr := range pairs {
		ms := float64(pr.r.ts-pr.s.ts) / 1e6
		tl.flightSumMS += ms
		if ms > tl.flightMaxMS {
			tl.flightMaxMS = ms
		}
		if i >= maxFlows {
			tl.flowsCapped++
			continue
		}
		tl.flowsEmitted++
		name := fmt.Sprintf("frame %d→%d #%d", pr.key.from, pr.key.to, pr.key.idx)
		id := i + 1
		tl.events = append(tl.events,
			traceEvent{Name: name, Ph: "X", TS: us(pr.s.ts), Dur: 1,
				PID: pr.s.pid, TID: pr.s.lane, Cat: "frame",
				Args: map[string]any{"step": pr.s.step}},
			traceEvent{Name: name, Ph: "s", TS: us(pr.s.ts),
				PID: pr.s.pid, TID: pr.s.lane, Cat: "frame", ID: id},
			traceEvent{Name: name, Ph: "X", TS: us(pr.r.ts), Dur: 1,
				PID: pr.r.pid, TID: pr.r.lane, Cat: "frame",
				Args: map[string]any{"step": pr.r.step}},
			traceEvent{Name: name, Ph: "f", BP: "e", TS: us(pr.r.ts),
				PID: pr.r.pid, TID: pr.r.lane, Cat: "frame", ID: id},
		)
	}
}

func writeReport(w io.Writer, procs []*process, tl *timeline) {
	pt := texttab.New("flight processes",
		"process", "pid", "events", "lost", "commits", "replays", "barriers", "anomalies", "sends", "recvs", "fsyncs")
	for _, p := range procs {
		lost := int64(p.dump.Meta.Total) - int64(len(p.dump.Events))
		if lost < 0 {
			lost = 0
		}
		pt.Addf(p.dump.Meta.Label, p.pid, len(p.dump.Events), lost,
			p.stat.commits, p.stat.replays, p.stat.barriers, p.stat.anomalies,
			p.stat.sends, p.stat.recvs, p.stat.fsyncs)
	}
	fmt.Fprint(w, pt.String())

	// Phase populations differ by design: a phase1-only plan (every
	// remaining node proven fault-free) commits straight after phase 1,
	// so equality/flags segments cover only the instances that ran the
	// full protocol — cells carry their own ×n when it is smaller.
	lt := texttab.New("per-phase latency, ms (mean over committed instances)",
		append([]string{"process", "inst"}, segColumns...)...)
	for _, p := range procs {
		row := []string{p.dump.Meta.Label, fmt.Sprint(p.stat.commits)}
		for _, col := range segColumns {
			st := p.stat.seg[col]
			switch {
			case st == nil || st.n == 0:
				row = append(row, "-")
			case st.n != p.stat.commits:
				row = append(row, fmt.Sprintf("%s ×%d", texttab.F(st.sum/float64(st.n)), st.n))
			default:
				row = append(row, texttab.F(st.sum/float64(st.n)))
			}
		}
		lt.Add(row...)
	}
	fmt.Fprint(w, lt.String())

	ft := texttab.New("frame stitching",
		"stitched", "orphan-sends", "orphan-recvs", "dup-keys", "mean-flight-ms", "max-flight-ms", "flows-in-json")
	mean := 0.0
	if tl.stitched > 0 {
		mean = tl.flightSumMS / float64(tl.stitched)
	}
	ft.Addf(tl.stitched, tl.orphanSends, tl.orphanRecvs, tl.dupKeys,
		mean, tl.flightMaxMS, tl.flowsEmitted)
	fmt.Fprint(w, ft.String())
	if tl.flowsCapped > 0 {
		fmt.Fprintf(w, "nabtrace: %d stitched frames beyond -max-flows omitted from the JSON (stats above cover all)\n", tl.flowsCapped)
	}
}
