// Command bench2json measures lockstep vs pipelined instance rates on the
// benchmark topologies and writes a machine-readable BENCH_pipeline.json,
// seeding the repo's performance trajectory. EXPERIMENTS.md quotes its
// output.
//
//	go run ./tools/bench2json -q 32 -window 4 -out BENCH_pipeline.json
//
// With -cluster it additionally builds cmd/nabnode (via the go tool) and
// measures a true multi-process cluster — one OS process per node over
// real TCP — on the same workloads, recording loopback-vs-multi-process
// throughput side by side.
//
// Every run also records the coding hot-path kernel rows (ns_per_op and
// allocs_per_op for the GF products, the coded-symbol vector product and
// the Encode+Check round trip), so the kernel trajectory is tracked in the
// same file as the engine rows.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"nab"
	"nab/internal/coding"
	"nab/internal/core"
	"nab/internal/flight"
	"nab/internal/gf"
	"nab/internal/graph"
	"nab/internal/linalg"
	"nab/internal/metrics"
	"nab/internal/wal"
)

// Row is one topology's lockstep-vs-pipelined measurement.
type Row struct {
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	F            int     `json:"f"`
	LenBytes     int     `json:"lenBytes"`
	Instances    int     `json:"instances"`
	Window       int     `json:"window"`
	LockstepIPS  float64 `json:"lockstep_instances_per_sec"`
	PipelinedIPS float64 `json:"pipelined_instances_per_sec"`
	Speedup      float64 `json:"speedup"`
	Replays      int     `json:"replays"`
	// ClusterIPS is the multi-process rate (one OS process per node over
	// real TCP), present only with -cluster.
	ClusterIPS float64 `json:"cluster_instances_per_sec,omitempty"`
	// StreamSubmitIPS / StreamCommitIPS measure a sustained Session fed
	// open-loop (submit as fast as backpressure admits, commits consumed
	// concurrently): the accepted-submission rate and the end-to-end
	// commit rate. Present only with -stream.
	StreamSubmitIPS float64 `json:"stream_submit_per_sec,omitempty"`
	StreamCommitIPS float64 `json:"stream_commit_per_sec,omitempty"`
	// DurableCommitIPS is the end-to-end commit rate of the same stream
	// with a write-ahead log underneath (submissions fsynced on accept,
	// commits batch-synced) — the price of crash-recovery. Present only
	// with -wal.
	DurableCommitIPS float64 `json:"durable_commit_per_sec,omitempty"`
	// FlightPipelinedIPS is the pipelined rate of the same workload with
	// the flight recorder armed — compared against PipelinedIPS it is the
	// recorder's whole-run overhead. Present only with -flight.
	FlightPipelinedIPS float64 `json:"flight_pipelined_instances_per_sec,omitempty"`
}

// KernelRow is one arithmetic/coding kernel measurement, recorded so the
// hot-path performance trajectory is machine-readable alongside the
// engine throughput rows.
type KernelRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MetricsRow is one topology's live-instrument snapshot (present with
// -metrics): latency quantiles read from the session's histograms plus
// wire totals from the per-link transport counters, captured over one
// pipelined streaming run with the metrics registry reset beforehand —
// the same numbers a /metrics scrape of a live daemon reports.
type MetricsRow struct {
	Topology        string  `json:"topology"`
	CommitP50Ms     float64 `json:"commit_p50_ms"`
	CommitP99Ms     float64 `json:"commit_p99_ms"`
	SubmitWaitP99Ms float64 `json:"submit_wait_p99_ms"`
	// FsyncP99Ms / WALAppendBytes are present when the measured stream is
	// durable (-wal): the group-committed fsync tail latency and total
	// bytes appended to the log.
	FsyncP99Ms     float64 `json:"fsync_p99_ms,omitempty"`
	WALAppendBytes int64   `json:"wal_append_bytes,omitempty"`
	// LinkBits is the capacity-charged bits sent per directed link,
	// keyed "from->to" as in the nab_transport_link_bits_total labels.
	LinkBits map[string]int64 `json:"link_bits,omitempty"`
}

// SnapshotRow compares the two ways a blank process reconstructs the
// engine state at watermark n during a join (present with -snapshot):
// folding the full commit history record by record — the WAL-tail
// fallback — versus decoding one snapshot and seeding the builder from
// it. The byte columns are what the control plane would ship either way.
type SnapshotRow struct {
	Instances     int     `json:"instances"`
	ReplayMs      float64 `json:"full_replay_ms"`
	ReplayBytes   int     `json:"full_replay_bytes"`
	SnapshotMs    float64 `json:"snapshot_restore_ms"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	Speedup       float64 `json:"speedup"`
}

// Output is the file's top-level shape.
type Output struct {
	Bench   string      `json:"bench"`
	Seed    int64       `json:"seed"`
	Rows    []Row       `json:"rows"`
	Kernels []KernelRow `json:"kernels,omitempty"`
	// Wal rows (present with -wal) track the durability subsystem: the
	// zero-allocation commit-record append, the serial vs group-committed
	// fsync path, and session recovery replay per committed instance.
	Wal []KernelRow `json:"wal,omitempty"`
	// Metrics rows (present with -metrics) carry the latency trajectory:
	// commit/submit-wait quantiles and per-link wire totals.
	Metrics []MetricsRow `json:"metrics,omitempty"`
	// Snapshot rows (present with -snapshot) compare join-time state
	// reconstruction: snapshot restore vs full fold-record replay.
	Snapshot []SnapshotRow `json:"snapshot,omitempty"`
	// Flight rows (present with -flight) track the flight recorder's hot
	// path: record cost armed and disarmed, and full-ring dump latency.
	Flight []KernelRow `json:"flight,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench2json", flag.ContinueOnError)
	out := fs.String("out", "BENCH_pipeline.json", "output path (- for stdout)")
	q := fs.Int("q", 32, "instances per measurement")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	window := fs.Int("window", 4, "pipeline window")
	seed := fs.Int64("seed", 2012, "coding-matrix seed")
	withCluster := fs.Bool("cluster", false, "also measure a multi-process cluster (builds cmd/nabnode)")
	withStream := fs.Bool("stream", false, "also measure sustained streaming-session throughput (open-loop submit vs commit rate)")
	withWal := fs.Bool("wal", false, "also measure the durability subsystem: WAL append/fsync-batching rows, durable commit rate per topology, recovery replay time")
	withMetrics := fs.Bool("metrics", false, "also record live-instrument rows per topology: commit-latency p50/p99, submit-wait p99, fsync p99 (with -wal) and per-link wire bits")
	withSnapshot := fs.Bool("snapshot", false, "also measure join-time state reconstruction: snapshot restore vs full fold-record replay at 1k/10k/100k committed instances")
	withFlight := fs.Bool("flight", false, "also measure the flight recorder: record ns/op armed and disarmed, full-ring dump latency, and per-topology commit rate with the recorder on")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var nabnode string
	if *withCluster {
		bin, cleanup, err := buildNabnode()
		if err != nil {
			return err
		}
		defer cleanup()
		nabnode = bin
	}

	circ, err := nab.CirculantGraph(9, 1, 1, 2)
	if err != nil {
		return err
	}
	thin, err := nab.OneThinLinkGraph(7, 2, 3, 8, 1)
	if err != nil {
		return err
	}
	topos := []struct {
		name string
		g    *nab.Graph
		f    int
	}{
		{"CompleteGraph(7,1)", nab.CompleteGraph(7, 1), 2},
		{"Circulant(9,1,{1,2})", circ, 1},
		{"OneThinLink(7)", thin, 1},
	}

	inputs := make([][]byte, *q)
	for i := range inputs {
		inputs[i] = make([]byte, *lenBytes)
		for j := range inputs[i] {
			inputs[i][j] = byte(i + j)
		}
	}

	res := Output{Bench: "lockstep-vs-pipelined", Seed: *seed}
	for _, tp := range topos {
		cfg := nab.Config{Graph: tp.g, Source: 1, F: tp.f, LenBytes: *lenBytes, Seed: *seed}

		runner, err := nab.NewRunner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", tp.name, err)
		}
		start := time.Now()
		if _, err := runner.Run(inputs); err != nil {
			return fmt.Errorf("%s: lockstep: %w", tp.name, err)
		}
		lockIPS := float64(*q) / time.Since(start).Seconds()

		pres, err := sessionRun(cfg, inputs, nab.WithWindow(*window))
		if err != nil {
			return fmt.Errorf("%s: pipelined: %w", tp.name, err)
		}

		row := Row{
			Topology: tp.name, Nodes: tp.g.NumNodes(), F: tp.f,
			LenBytes: *lenBytes, Instances: *q, Window: *window,
			LockstepIPS:  lockIPS,
			PipelinedIPS: pres.InstancesPerSec(),
			Speedup:      pres.InstancesPerSec() / lockIPS,
			Replays:      pres.Replays,
		}
		if nabnode != "" {
			row.ClusterIPS, err = clusterIPS(nabnode, tp.g, tp.f, *lenBytes, *q, *window, *seed)
			if err != nil {
				return fmt.Errorf("%s: cluster: %w", tp.name, err)
			}
		}
		if *withStream {
			row.StreamSubmitIPS, row.StreamCommitIPS, err = streamIPS(cfg, *window, inputs, "")
			if err != nil {
				return fmt.Errorf("%s: stream: %w", tp.name, err)
			}
		}
		if *withWal {
			dir, err := os.MkdirTemp("", "bench2json-wal-*")
			if err != nil {
				return err
			}
			_, row.DurableCommitIPS, err = streamIPS(cfg, *window, inputs, dir)
			os.RemoveAll(dir)
			if err != nil {
				return fmt.Errorf("%s: durable stream: %w", tp.name, err)
			}
		}
		if *withFlight {
			fres, err := sessionRun(cfg, inputs, nab.WithWindow(*window), nab.WithFlightRecorder(1<<16))
			flight.Default().Disable() // the recorder is process-global; disarm between rows
			if err != nil {
				return fmt.Errorf("%s: flight-recorded: %w", tp.name, err)
			}
			row.FlightPipelinedIPS = fres.InstancesPerSec()
		}
		if *withMetrics {
			walDir := ""
			if *withWal {
				dir, err := os.MkdirTemp("", "bench2json-metrics-wal-*")
				if err != nil {
					return err
				}
				walDir = dir
			}
			mrow, err := metricsRow(tp.name, cfg, *window, inputs, walDir)
			if walDir != "" {
				os.RemoveAll(walDir)
			}
			if err != nil {
				return fmt.Errorf("%s: metrics: %w", tp.name, err)
			}
			res.Metrics = append(res.Metrics, mrow)
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(w, "%-22s lockstep %7.1f/s  pipelined %7.1f/s  speedup %.2fx",
			row.Topology, row.LockstepIPS, row.PipelinedIPS, row.Speedup)
		if nabnode != "" {
			fmt.Fprintf(w, "  multiprocess %7.1f/s", row.ClusterIPS)
		}
		if *withStream {
			fmt.Fprintf(w, "  stream submit %7.1f/s commit %7.1f/s", row.StreamSubmitIPS, row.StreamCommitIPS)
		}
		if *withWal {
			fmt.Fprintf(w, "  durable commit %7.1f/s", row.DurableCommitIPS)
		}
		if *withFlight {
			fmt.Fprintf(w, "  flight-on %7.1f/s (%.1f%%)", row.FlightPipelinedIPS,
				100*row.FlightPipelinedIPS/row.PipelinedIPS)
		}
		fmt.Fprintln(w)
		if *withMetrics {
			m := res.Metrics[len(res.Metrics)-1]
			fmt.Fprintf(w, "%-22s commit p50 %6.2fms  p99 %6.2fms  submit-wait p99 %6.2fms",
				"", m.CommitP50Ms, m.CommitP99Ms, m.SubmitWaitP99Ms)
			if *withWal {
				fmt.Fprintf(w, "  fsync p99 %6.2fms", m.FsyncP99Ms)
			}
			fmt.Fprintf(w, "  links %d\n", len(m.LinkBits))
		}
	}

	if *withWal {
		res.Wal, err = walRows(*lenBytes)
		if err != nil {
			return err
		}
		for _, kr := range res.Wal {
			fmt.Fprintf(w, "%-34s %10.1f ns/op  %3d allocs/op\n", kr.Name, kr.NsPerOp, kr.AllocsPerOp)
		}
	}

	if *withSnapshot {
		res.Snapshot, err = snapshotRows()
		if err != nil {
			return err
		}
		for _, sr := range res.Snapshot {
			fmt.Fprintf(w, "join-state @%-7d replay %9.3fms (%8d B)  snapshot %7.3fms (%4d B)  %.0fx\n",
				sr.Instances, sr.ReplayMs, sr.ReplayBytes, sr.SnapshotMs, sr.SnapshotBytes, sr.Speedup)
		}
	}

	if *withFlight {
		res.Flight = flightRows()
		for _, kr := range res.Flight {
			fmt.Fprintf(w, "%-34s %10.1f ns/op  %3d allocs/op\n", kr.Name, kr.NsPerOp, kr.AllocsPerOp)
		}
	}

	res.Kernels, err = kernelRows(*seed)
	if err != nil {
		return err
	}
	for _, kr := range res.Kernels {
		fmt.Fprintf(w, "%-34s %10.1f ns/op  %3d allocs/op\n", kr.Name, kr.NsPerOp, kr.AllocsPerOp)
	}

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = w.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", *out)
	return nil
}

// kernelRows measures the coding hot-path kernels in-process via
// testing.Benchmark: the scalar field product in both regimes (tables for
// GF(2^16), carry-less windows for GF(2^64)), the coded-symbol vector
// product at OneThinLink dimensions, and the per-edge Encode+Check round
// trip — the operations every NAB equality check reduces to. allocs_per_op
// of the steady-state rows is pinned at 0 by TestEncodeCheckZeroAlloc.
func kernelRows(seed int64) ([]KernelRow, error) {
	rng := rand.New(rand.NewSource(seed))

	f16 := gf.MustNew(16)
	f64 := gf.MustNew(64)
	elems := func(f *gf.Field, n int) []gf.Elem {
		out := make([]gf.Elem, n)
		for i := range out {
			for out[i] == 0 {
				out[i] = f.Rand(rng)
			}
		}
		return out
	}

	// A rho x z_e matrix at the OneThinLink(7) shape: 33 symbols encoded
	// onto a capacity-8 edge over GF(2^16).
	mat, err := linalg.Random(f16, 33, 8, rng)
	if err != nil {
		return nil, err
	}
	vec := elems(f16, 33)
	vecDst := make([]gf.Elem, 8)

	// A verified scheme on a small complete graph for the Encode+Check
	// round trip (rho = 2, unit capacities).
	g := graph.NewDirected()
	for _, pair := range [][2]graph.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		if err := g.AddBiEdge(pair[0], pair[1], 2); err != nil {
			return nil, err
		}
	}
	scheme, _, err := coding.GenerateVerified(g, 2, f16, []*graph.Directed{g}, rng, 16)
	if err != nil {
		return nil, err
	}
	x := elems(f16, 2)
	enc := make([]gf.Elem, 2)
	if err := scheme.EncodeInto(1, 2, x, enc); err != nil {
		return nil, err
	}
	y := append([]gf.Elem(nil), enc...)
	scratch := make([]gf.Elem, scheme.MaxCap())

	xs16, xs64 := elems(f16, 1024), elems(f64, 1024)
	var sink gf.Elem
	bench := func(name string, fn func(b *testing.B)) KernelRow {
		r := testing.Benchmark(fn)
		return KernelRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	rows := []KernelRow{
		bench("gf.Mul/GF16-table", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink ^= f16.Mul(xs16[i&1023], xs16[(i+7)&1023])
			}
		}),
		bench("gf.Mul/GF64-clmul", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink ^= f64.Mul(xs64[i&1023], xs64[(i+7)&1023])
			}
		}),
		bench("linalg.MulVecInto/GF16-33x8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := mat.MulVecInto(vec, vecDst); err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("coding.EncodeInto+Check/GF16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := scheme.EncodeInto(1, 2, x, enc); err != nil {
					b.Fatal(err)
				}
				mm, err := scheme.CheckInto(1, 2, x, y, scratch)
				if err != nil || mm {
					b.Fatalf("check: mismatch=%v err=%v", mm, err)
				}
			}
		}),
	}
	_ = sink
	return rows, nil
}

// sessionRun executes the workload on one Session and returns the
// aggregate result — the streaming-first replacement for the deprecated
// batch Run entrypoints.
func sessionRun(cfg nab.Config, inputs [][]byte, opts ...nab.SessionOption) (*nab.PipelineResult, error) {
	ctx := context.Background()
	sess, err := nab.Open(ctx, cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	go func() {
		for _, in := range inputs {
			if _, err := sess.Submit(ctx, in); err != nil {
				return
			}
		}
		sess.Drain(ctx)
	}()
	for range sess.Commits() {
	}
	if err := sess.Err(); err != nil {
		return nil, err
	}
	res := sess.Result()
	if res == nil || len(res.Instances) != len(inputs) {
		return nil, fmt.Errorf("session committed %d instances, want %d", len(res.Instances), len(inputs))
	}
	return res, nil
}

// streamIPS drives a Session open-loop over the workload: a producer
// submits as fast as backpressure admits while the consumer drains
// commits concurrently. Returns the accepted-submission rate and the
// end-to-end commit rate (both wall-clock). A non-empty walDir opens the
// session durably — the fsync-batched crash-recovery configuration.
func streamIPS(cfg nab.Config, window int, inputs [][]byte, walDir string) (submitPerSec, commitPerSec float64, err error) {
	opts := []nab.SessionOption{nab.WithWindow(window)}
	if walDir != "" {
		opts = append(opts, nab.WithDurability(walDir))
	}
	sess, err := nab.Open(context.Background(), cfg, opts...)
	if err != nil {
		return 0, 0, err
	}
	defer sess.Close()
	ctx := context.Background()
	start := time.Now()
	var submitWall time.Duration
	submitErr := make(chan error, 1)
	go func() {
		for _, in := range inputs {
			if _, err := sess.Submit(ctx, in); err != nil {
				submitErr <- err
				return
			}
		}
		submitWall = time.Since(start)
		submitErr <- sess.Drain(ctx)
	}()
	got := 0
	for range sess.Commits() {
		got++
	}
	commitWall := time.Since(start)
	if err := <-submitErr; err != nil {
		return 0, 0, err
	}
	if err := sess.Err(); err != nil {
		return 0, 0, err
	}
	if got != len(inputs) {
		return 0, 0, fmt.Errorf("streamed %d commits, want %d", got, len(inputs))
	}
	return float64(len(inputs)) / submitWall.Seconds(), float64(got) / commitWall.Seconds(), nil
}

// metricsRow streams the workload once with the metrics registry reset
// and reads the resulting instruments back — latency quantiles through
// the Session.Metrics snapshot API, per-link wire counters through the
// registry's own text exposition, exactly as a /metrics scrape would.
func metricsRow(name string, cfg nab.Config, window int, inputs [][]byte, walDir string) (MetricsRow, error) {
	metrics.Default().Reset()
	opts := []nab.SessionOption{nab.WithWindow(window)}
	if walDir != "" {
		opts = append(opts, nab.WithDurability(walDir))
	}
	ctx := context.Background()
	sess, err := nab.Open(ctx, cfg, opts...)
	if err != nil {
		return MetricsRow{}, err
	}
	defer sess.Close()
	go func() {
		for _, in := range inputs {
			if _, err := sess.Submit(ctx, in); err != nil {
				return
			}
		}
		sess.Drain(ctx)
	}()
	got := 0
	for range sess.Commits() {
		got++
	}
	if err := sess.Err(); err != nil {
		return MetricsRow{}, err
	}
	if got != len(inputs) {
		return MetricsRow{}, fmt.Errorf("streamed %d commits, want %d", got, len(inputs))
	}
	sm := sess.Metrics()
	row := MetricsRow{
		Topology:        name,
		CommitP50Ms:     millis(sm.CommitLatencyP50),
		CommitP99Ms:     millis(sm.CommitLatencyP99),
		SubmitWaitP99Ms: millis(sm.SubmitWaitP99),
		LinkBits:        scrapeLinkBits(),
	}
	if walDir != "" {
		row.FsyncP99Ms = millis(sm.WALFsyncP99)
		row.WALAppendBytes = sm.WALAppendBytes
	}
	return row, nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// scrapeLinkBits reads the per-link bit counters out of the registry's
// text exposition.
func scrapeLinkBits() map[string]int64 {
	var buf bytes.Buffer
	if err := metrics.Default().WritePrometheus(&buf); err != nil {
		return nil
	}
	out := map[string]int64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		rest, ok := strings.CutPrefix(line, `nab_transport_link_bits_total{link="`)
		if !ok {
			continue
		}
		link, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f <= 0 {
			// Zero-valued children are links an earlier topology dialed;
			// Reset keeps them registered but this run never used them.
			continue
		}
		out[link] = int64(f)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// walRows measures the durability subsystem in-process: the
// zero-allocation commit-record append, the fsync path serial (one
// fsync per record) vs group-committed under 16 concurrent submitters
// (many records per fsync), and a full session recovery — WAL replay,
// dispute-state restore, re-delivery — per committed instance.
func walRows(lenBytes int) ([]KernelRow, error) {
	bench := func(name string, fn func(b *testing.B)) KernelRow {
		r := testing.Benchmark(fn)
		return KernelRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	ir := &nab.InstanceResult{
		K: 1, Gamma: 6, Rho: 3, SymBits: 16, Stripes: 2,
		Outputs: map[nab.NodeID][]byte{
			1: bytes.Repeat([]byte{0x17}, lenBytes),
			2: bytes.Repeat([]byte{0x2a}, lenBytes),
			4: bytes.Repeat([]byte{0x99}, lenBytes),
		},
		TotalBits: 4096,
	}
	payload := bytes.Repeat([]byte{0x42}, lenBytes)

	var rows []KernelRow
	appendRow := func(name string, opt wal.Options, fn func(l *wal.Log, b *testing.B)) error {
		dir, err := os.MkdirTemp("", "bench2json-walrow-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(dir, opt)
		if err != nil {
			return err
		}
		defer l.Close()
		rows = append(rows, bench(name, func(b *testing.B) { fn(l, b) }))
		return nil
	}
	if err := appendRow("wal.Append/commit-record", wal.Options{NoSync: true}, func(l *wal.Log, b *testing.B) {
		buf := make([]byte, 0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wal.AppendCommit(buf[:0], ir)
			if _, err := l.Append(wal.TypeCommit, buf); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return nil, err
	}
	if err := appendRow("wal.AppendSync/serial-fsync", wal.Options{}, func(l *wal.Log, b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := l.AppendSync(wal.TypeSubmit, payload); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return nil, err
	}
	if err := appendRow("wal.AppendSync/group-commit-16", wal.Options{}, func(l *wal.Log, b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(16)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := l.AppendSync(wal.TypeSubmit, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}); err != nil {
		return nil, err
	}

	// Recovery: replay a durable lockstep session of recoverQ committed
	// instances — WAL scan, dispute-state restore, re-delivery of every
	// commit — and charge the wall time per recovered instance.
	const recoverQ = 64
	dir, err := os.MkdirTemp("", "bench2json-walrec-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg := nab.Config{Graph: nab.CompleteGraph(4, 1), Source: 1, F: 1, LenBytes: lenBytes, Seed: 9}
	inputs := make([][]byte, recoverQ)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(i + 1)}, lenBytes)
	}
	if _, err := sessionRun(cfg, inputs, nab.WithLockstep(), nab.WithDurability(dir)); err != nil {
		return nil, err
	}
	start := time.Now()
	const recoverRuns = 8
	for i := 0; i < recoverRuns; i++ {
		sess, err := nab.Open(context.Background(), cfg, nab.WithLockstep(), nab.Recover(dir))
		if err != nil {
			return nil, err
		}
		go sess.Drain(context.Background())
		n := 0
		for c := range sess.Commits() {
			if c.Replayed {
				n++
			}
		}
		sess.Close()
		if n != recoverQ {
			return nil, fmt.Errorf("recovery replayed %d commits, want %d", n, recoverQ)
		}
	}
	rows = append(rows, KernelRow{
		Name:    "session.Recover/replay-per-instance",
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(recoverRuns*recoverQ),
	})
	return rows, nil
}

// flightRows measures the flight recorder's hot path in-process: the
// record cost with a ring armed (pinned at 0 allocs/op by
// TestFlightRecordZeroAlloc), the disarmed cost every engine pays when
// tracing is off (one atomic load), and the latency of serializing a
// full 64k-event ring into a dump — the /debug/flight response time.
func flightRows() []KernelRow {
	bench := func(name string, fn func(b *testing.B)) KernelRow {
		r := testing.Benchmark(fn)
		return KernelRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	rec := flight.Default()
	rec.Enable(1 << 16)
	defer rec.Disable()
	ev := flight.Event{Type: flight.EvFrameSend, Node: 1, Peer: 2, Inst: 3, Step: 1, Arg: 4}
	rows := []KernelRow{
		bench("flight.Record/armed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				flight.Record(ev)
			}
		}),
	}
	// The record benchmark left the ring full, so the dump row measures
	// the worst case: every slot serialized.
	rows = append(rows, bench("flight.DumpBytes/full-64k-ring", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rec.DumpBytes("manual", 1) == nil {
				b.Fatal("recorder disarmed mid-benchmark")
			}
		}
	}))
	rec.Disable()
	rows = append(rows, bench("flight.Record/disarmed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flight.Record(ev)
		}
	}))
	return rows
}

// snapshotRows measures join-time state reconstruction at growing
// watermarks: the blank joiner either folds the full commit history —
// uvarint-framed fold records, exactly as the control plane's WAL-tail
// fallback ships them — or decodes one snapshot and seeds the builder
// from it. The history is synthetic but dispute-bearing (every 97th
// instance runs dispute control), so the restored state is non-trivial.
func snapshotRows() ([]SnapshotRow, error) {
	g := nab.CompleteGraph(7, 2)
	pairs := [][2]graph.NodeID{{2, 3}, {4, 5}, {2, 6}, {3, 7}, {5, 6}}
	var rows []SnapshotRow
	for _, n := range []int{1_000, 10_000, 100_000} {
		b := core.NewSnapshotBuilder(g)
		var tail, frame []byte
		for k := 1; k <= n; k++ {
			ir := &nab.InstanceResult{K: k}
			if k%97 == 0 {
				ir.Phase3 = true
				ir.NewDisputes = [][2]graph.NodeID{pairs[(k/97)%len(pairs)]}
			}
			frame = wal.AppendCommitFold(frame[:0], ir)
			tail = binary.AppendUvarint(tail, uint64(len(frame)))
			tail = append(tail, frame...)
			if err := b.Fold(ir); err != nil {
				return nil, err
			}
		}
		state := b.State()
		snap := wal.Snapshot{K: state.K, Gen: state.Gen, Disputes: state.Disputes, Faulty: state.Faulty}
		snap.Digest = wal.SnapshotDigest(snap)
		snapBytes := wal.AppendSnapshot(nil, snap)

		// Full replay: decode and fold every record into a fresh builder.
		start := time.Now()
		rb := core.NewSnapshotBuilder(g)
		rest := tail
		for len(rest) > 0 {
			ln, sz := binary.Uvarint(rest)
			if sz <= 0 || uint64(len(rest)-sz) < ln {
				return nil, fmt.Errorf("snapshot bench: torn tail frame")
			}
			ir, err := wal.DecodeCommitFold(rest[sz : sz+int(ln)])
			if err != nil {
				return nil, err
			}
			if err := rb.Fold(ir); err != nil {
				return nil, err
			}
			rest = rest[sz+int(ln):]
		}
		replayMs := float64(time.Since(start).Nanoseconds()) / 1e6
		if rb.K() != state.K || rb.Gen() != state.Gen {
			return nil, fmt.Errorf("snapshot bench: replayed state diverged at n=%d", n)
		}

		// Snapshot restore: decode and seed — the joiner's fetch path.
		// Loop it; a single restore is microseconds.
		const restores = 200
		start = time.Now()
		for i := 0; i < restores; i++ {
			dec, err := wal.DecodeSnapshot(snapBytes)
			if err != nil {
				return nil, err
			}
			seed := core.SnapshotState{K: dec.K, Gen: dec.Gen, Disputes: dec.Disputes, Faulty: dec.Faulty}
			if _, err := core.NewSnapshotBuilder(g).Seed(seed); err != nil {
				return nil, err
			}
		}
		snapMs := float64(time.Since(start).Nanoseconds()) / 1e6 / restores
		rows = append(rows, SnapshotRow{
			Instances: n, ReplayMs: replayMs, ReplayBytes: len(tail),
			SnapshotMs: snapMs, SnapshotBytes: len(snapBytes),
			Speedup: replayMs / snapMs,
		})
	}
	return rows, nil
}

// buildNabnode compiles cmd/nabnode into a temp dir.
func buildNabnode() (bin string, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "bench2json-nabnode-*")
	if err != nil {
		return "", nil, err
	}
	cleanup = func() { os.RemoveAll(dir) }
	bin = filepath.Join(dir, "nabnode")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nabnode")
	if outB, err := cmd.CombinedOutput(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("go build ./cmd/nabnode: %v\n%s", err, outB)
	}
	return bin, cleanup, nil
}

// clusterIPS runs the workload on a true multi-process cluster — one
// nabnode OS process per topology node — and derives instances/sec from
// the source process's reported wall time (boot and teardown excluded).
func clusterIPS(nabnode string, g *nab.Graph, f, lenBytes, q, window int, seed int64) (float64, error) {
	dir, err := os.MkdirTemp("", "bench2json-cluster-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	topoPath := filepath.Join(dir, "topo.txt")
	if err := os.WriteFile(topoPath, []byte(g.Marshal()), 0o644); err != nil {
		return 0, err
	}
	cmd := exec.Command(nabnode,
		"-spawn-local", "-file", topoPath, "-source", "1",
		"-f", fmt.Sprint(f), "-len", fmt.Sprint(lenBytes),
		"-q", fmt.Sprint(q), "-window", fmt.Sprint(window),
		"-seed", fmt.Sprint(seed), "-out", filepath.Join(dir, "cluster.json"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("nabnode -spawn-local: %v\n%s", err, stderr.String())
	}
	// The source node's summary line carries the run's wall seconds.
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, `"done":true`) {
			continue
		}
		var sum struct {
			Node      int     `json:"node"`
			Instances int     `json:"instances"`
			WallSecs  float64 `json:"wallSecs"`
		}
		if err := json.Unmarshal([]byte(line), &sum); err != nil {
			continue
		}
		if sum.Node == 1 && sum.WallSecs > 0 {
			return float64(sum.Instances) / sum.WallSecs, nil
		}
	}
	return 0, fmt.Errorf("no source summary line in nabnode output")
}
