// Command bench2json measures lockstep vs pipelined instance rates on the
// benchmark topologies and writes a machine-readable BENCH_pipeline.json,
// seeding the repo's performance trajectory. EXPERIMENTS.md quotes its
// output.
//
//	go run ./tools/bench2json -q 32 -window 4 -out BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nab"
)

// Row is one topology's lockstep-vs-pipelined measurement.
type Row struct {
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	F            int     `json:"f"`
	LenBytes     int     `json:"lenBytes"`
	Instances    int     `json:"instances"`
	Window       int     `json:"window"`
	LockstepIPS  float64 `json:"lockstep_instances_per_sec"`
	PipelinedIPS float64 `json:"pipelined_instances_per_sec"`
	Speedup      float64 `json:"speedup"`
	Replays      int     `json:"replays"`
}

// Output is the file's top-level shape.
type Output struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed"`
	Rows  []Row  `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench2json", flag.ContinueOnError)
	out := fs.String("out", "BENCH_pipeline.json", "output path (- for stdout)")
	q := fs.Int("q", 32, "instances per measurement")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	window := fs.Int("window", 4, "pipeline window")
	seed := fs.Int64("seed", 2012, "coding-matrix seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	circ, err := nab.CirculantGraph(9, 1, 1, 2)
	if err != nil {
		return err
	}
	thin, err := nab.OneThinLinkGraph(7, 2, 3, 8, 1)
	if err != nil {
		return err
	}
	topos := []struct {
		name string
		g    *nab.Graph
		f    int
	}{
		{"CompleteGraph(7,1)", nab.CompleteGraph(7, 1), 2},
		{"Circulant(9,1,{1,2})", circ, 1},
		{"OneThinLink(7)", thin, 1},
	}

	inputs := make([][]byte, *q)
	for i := range inputs {
		inputs[i] = make([]byte, *lenBytes)
		for j := range inputs[i] {
			inputs[i][j] = byte(i + j)
		}
	}

	res := Output{Bench: "lockstep-vs-pipelined", Seed: *seed}
	for _, tp := range topos {
		cfg := nab.Config{Graph: tp.g, Source: 1, F: tp.f, LenBytes: *lenBytes, Seed: *seed}

		runner, err := nab.NewRunner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", tp.name, err)
		}
		start := time.Now()
		if _, err := runner.Run(inputs); err != nil {
			return fmt.Errorf("%s: lockstep: %w", tp.name, err)
		}
		lockIPS := float64(*q) / time.Since(start).Seconds()

		rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{Config: cfg, Window: *window})
		if err != nil {
			return fmt.Errorf("%s: %w", tp.name, err)
		}
		pres, err := rt.Run(inputs)
		rt.Close()
		if err != nil {
			return fmt.Errorf("%s: pipelined: %w", tp.name, err)
		}

		row := Row{
			Topology: tp.name, Nodes: tp.g.NumNodes(), F: tp.f,
			LenBytes: *lenBytes, Instances: *q, Window: *window,
			LockstepIPS:  lockIPS,
			PipelinedIPS: pres.InstancesPerSec(),
			Speedup:      pres.InstancesPerSec() / lockIPS,
			Replays:      pres.Replays,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(w, "%-22s lockstep %7.1f/s  pipelined %7.1f/s  speedup %.2fx\n",
			row.Topology, row.LockstepIPS, row.PipelinedIPS, row.Speedup)
	}

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = w.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", *out)
	return nil
}
