// Command bench2json measures lockstep vs pipelined instance rates on the
// benchmark topologies and writes a machine-readable BENCH_pipeline.json,
// seeding the repo's performance trajectory. EXPERIMENTS.md quotes its
// output.
//
//	go run ./tools/bench2json -q 32 -window 4 -out BENCH_pipeline.json
//
// With -cluster it additionally builds cmd/nabnode (via the go tool) and
// measures a true multi-process cluster — one OS process per node over
// real TCP — on the same workloads, recording loopback-vs-multi-process
// throughput side by side.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"nab"
)

// Row is one topology's lockstep-vs-pipelined measurement.
type Row struct {
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	F            int     `json:"f"`
	LenBytes     int     `json:"lenBytes"`
	Instances    int     `json:"instances"`
	Window       int     `json:"window"`
	LockstepIPS  float64 `json:"lockstep_instances_per_sec"`
	PipelinedIPS float64 `json:"pipelined_instances_per_sec"`
	Speedup      float64 `json:"speedup"`
	Replays      int     `json:"replays"`
	// ClusterIPS is the multi-process rate (one OS process per node over
	// real TCP), present only with -cluster.
	ClusterIPS float64 `json:"cluster_instances_per_sec,omitempty"`
	// StreamSubmitIPS / StreamCommitIPS measure a sustained Session fed
	// open-loop (submit as fast as backpressure admits, commits consumed
	// concurrently): the accepted-submission rate and the end-to-end
	// commit rate. Present only with -stream.
	StreamSubmitIPS float64 `json:"stream_submit_per_sec,omitempty"`
	StreamCommitIPS float64 `json:"stream_commit_per_sec,omitempty"`
}

// Output is the file's top-level shape.
type Output struct {
	Bench string `json:"bench"`
	Seed  int64  `json:"seed"`
	Rows  []Row  `json:"rows"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench2json", flag.ContinueOnError)
	out := fs.String("out", "BENCH_pipeline.json", "output path (- for stdout)")
	q := fs.Int("q", 32, "instances per measurement")
	lenBytes := fs.Int("len", 64, "input length in bytes")
	window := fs.Int("window", 4, "pipeline window")
	seed := fs.Int64("seed", 2012, "coding-matrix seed")
	withCluster := fs.Bool("cluster", false, "also measure a multi-process cluster (builds cmd/nabnode)")
	withStream := fs.Bool("stream", false, "also measure sustained streaming-session throughput (open-loop submit vs commit rate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var nabnode string
	if *withCluster {
		bin, cleanup, err := buildNabnode()
		if err != nil {
			return err
		}
		defer cleanup()
		nabnode = bin
	}

	circ, err := nab.CirculantGraph(9, 1, 1, 2)
	if err != nil {
		return err
	}
	thin, err := nab.OneThinLinkGraph(7, 2, 3, 8, 1)
	if err != nil {
		return err
	}
	topos := []struct {
		name string
		g    *nab.Graph
		f    int
	}{
		{"CompleteGraph(7,1)", nab.CompleteGraph(7, 1), 2},
		{"Circulant(9,1,{1,2})", circ, 1},
		{"OneThinLink(7)", thin, 1},
	}

	inputs := make([][]byte, *q)
	for i := range inputs {
		inputs[i] = make([]byte, *lenBytes)
		for j := range inputs[i] {
			inputs[i][j] = byte(i + j)
		}
	}

	res := Output{Bench: "lockstep-vs-pipelined", Seed: *seed}
	for _, tp := range topos {
		cfg := nab.Config{Graph: tp.g, Source: 1, F: tp.f, LenBytes: *lenBytes, Seed: *seed}

		runner, err := nab.NewRunner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", tp.name, err)
		}
		start := time.Now()
		if _, err := runner.Run(inputs); err != nil {
			return fmt.Errorf("%s: lockstep: %w", tp.name, err)
		}
		lockIPS := float64(*q) / time.Since(start).Seconds()

		rt, err := nab.NewPipelinedRunner(nab.PipelineConfig{Config: cfg, Window: *window})
		if err != nil {
			return fmt.Errorf("%s: %w", tp.name, err)
		}
		pres, err := rt.Run(inputs)
		rt.Close()
		if err != nil {
			return fmt.Errorf("%s: pipelined: %w", tp.name, err)
		}

		row := Row{
			Topology: tp.name, Nodes: tp.g.NumNodes(), F: tp.f,
			LenBytes: *lenBytes, Instances: *q, Window: *window,
			LockstepIPS:  lockIPS,
			PipelinedIPS: pres.InstancesPerSec(),
			Speedup:      pres.InstancesPerSec() / lockIPS,
			Replays:      pres.Replays,
		}
		if nabnode != "" {
			row.ClusterIPS, err = clusterIPS(nabnode, tp.g, tp.f, *lenBytes, *q, *window, *seed)
			if err != nil {
				return fmt.Errorf("%s: cluster: %w", tp.name, err)
			}
		}
		if *withStream {
			row.StreamSubmitIPS, row.StreamCommitIPS, err = streamIPS(cfg, *window, inputs)
			if err != nil {
				return fmt.Errorf("%s: stream: %w", tp.name, err)
			}
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(w, "%-22s lockstep %7.1f/s  pipelined %7.1f/s  speedup %.2fx",
			row.Topology, row.LockstepIPS, row.PipelinedIPS, row.Speedup)
		if nabnode != "" {
			fmt.Fprintf(w, "  multiprocess %7.1f/s", row.ClusterIPS)
		}
		if *withStream {
			fmt.Fprintf(w, "  stream submit %7.1f/s commit %7.1f/s", row.StreamSubmitIPS, row.StreamCommitIPS)
		}
		fmt.Fprintln(w)
	}

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "-" {
		_, err = w.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", *out)
	return nil
}

// streamIPS drives a Session open-loop over the workload: a producer
// submits as fast as backpressure admits while the consumer drains
// commits concurrently. Returns the accepted-submission rate and the
// end-to-end commit rate (both wall-clock).
func streamIPS(cfg nab.Config, window int, inputs [][]byte) (submitPerSec, commitPerSec float64, err error) {
	sess, err := nab.Open(context.Background(), cfg, nab.WithWindow(window))
	if err != nil {
		return 0, 0, err
	}
	defer sess.Close()
	ctx := context.Background()
	start := time.Now()
	var submitWall time.Duration
	submitErr := make(chan error, 1)
	go func() {
		for _, in := range inputs {
			if _, err := sess.Submit(ctx, in); err != nil {
				submitErr <- err
				return
			}
		}
		submitWall = time.Since(start)
		submitErr <- sess.Drain(ctx)
	}()
	got := 0
	for range sess.Commits() {
		got++
	}
	commitWall := time.Since(start)
	if err := <-submitErr; err != nil {
		return 0, 0, err
	}
	if err := sess.Err(); err != nil {
		return 0, 0, err
	}
	if got != len(inputs) {
		return 0, 0, fmt.Errorf("streamed %d commits, want %d", got, len(inputs))
	}
	return float64(len(inputs)) / submitWall.Seconds(), float64(got) / commitWall.Seconds(), nil
}

// buildNabnode compiles cmd/nabnode into a temp dir.
func buildNabnode() (bin string, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "bench2json-nabnode-*")
	if err != nil {
		return "", nil, err
	}
	cleanup = func() { os.RemoveAll(dir) }
	bin = filepath.Join(dir, "nabnode")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nabnode")
	if outB, err := cmd.CombinedOutput(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("go build ./cmd/nabnode: %v\n%s", err, outB)
	}
	return bin, cleanup, nil
}

// clusterIPS runs the workload on a true multi-process cluster — one
// nabnode OS process per topology node — and derives instances/sec from
// the source process's reported wall time (boot and teardown excluded).
func clusterIPS(nabnode string, g *nab.Graph, f, lenBytes, q, window int, seed int64) (float64, error) {
	dir, err := os.MkdirTemp("", "bench2json-cluster-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	topoPath := filepath.Join(dir, "topo.txt")
	if err := os.WriteFile(topoPath, []byte(g.Marshal()), 0o644); err != nil {
		return 0, err
	}
	cmd := exec.Command(nabnode,
		"-spawn-local", "-file", topoPath, "-source", "1",
		"-f", fmt.Sprint(f), "-len", fmt.Sprint(lenBytes),
		"-q", fmt.Sprint(q), "-window", fmt.Sprint(window),
		"-seed", fmt.Sprint(seed), "-out", filepath.Join(dir, "cluster.json"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("nabnode -spawn-local: %v\n%s", err, stderr.String())
	}
	// The source node's summary line carries the run's wall seconds.
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, `"done":true`) {
			continue
		}
		var sum struct {
			Node      int     `json:"node"`
			Instances int     `json:"instances"`
			WallSecs  float64 `json:"wallSecs"`
		}
		if err := json.Unmarshal([]byte(line), &sum); err != nil {
			continue
		}
		if sum.Node == 1 && sum.WallSecs > 0 {
			return float64(sum.Instances) / sum.WallSecs, nil
		}
	}
	return 0, fmt.Errorf("no source summary line in nabnode output")
}
