package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var log strings.Builder
	if err := run([]string{"-q", "4", "-len", "16", "-window", "2", "-metrics", "-out", out}, &log); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res Output
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LockstepIPS <= 0 || row.PipelinedIPS <= 0 {
			t.Errorf("%s: non-positive rates: %+v", row.Topology, row)
		}
	}
	if !strings.Contains(log.String(), "speedup") {
		t.Errorf("missing summary output:\n%s", log.String())
	}
	if len(res.Metrics) != 3 {
		t.Fatalf("got %d metrics rows, want 3", len(res.Metrics))
	}
	for _, m := range res.Metrics {
		if m.CommitP99Ms <= 0 || m.CommitP50Ms <= 0 {
			t.Errorf("%s: non-positive commit quantiles: %+v", m.Topology, m)
		}
		if m.CommitP99Ms < m.CommitP50Ms {
			t.Errorf("%s: p99 %.3fms below p50 %.3fms", m.Topology, m.CommitP99Ms, m.CommitP50Ms)
		}
		if len(m.LinkBits) == 0 {
			t.Errorf("%s: no per-link bit counters", m.Topology)
		}
		for link, bits := range m.LinkBits {
			if bits <= 0 {
				t.Errorf("%s: link %s carried %d bits", m.Topology, link, bits)
			}
		}
	}
	if len(res.Kernels) < 4 {
		t.Fatalf("got %d kernel rows, want >= 4", len(res.Kernels))
	}
	for _, kr := range res.Kernels {
		if kr.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op: %+v", kr.Name, kr)
		}
		if kr.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op in steady state, want 0", kr.Name, kr.AllocsPerOp)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-q", "notanum"}, &log); err == nil {
		t.Error("bad flag accepted")
	}
}
