package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var log strings.Builder
	if err := run([]string{"-q", "4", "-len", "16", "-window", "2", "-out", out}, &log); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res Output
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LockstepIPS <= 0 || row.PipelinedIPS <= 0 {
			t.Errorf("%s: non-positive rates: %+v", row.Topology, row)
		}
	}
	if !strings.Contains(log.String(), "speedup") {
		t.Errorf("missing summary output:\n%s", log.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var log strings.Builder
	if err := run([]string{"-q", "notanum"}, &log); err == nil {
		t.Error("bad flag accepted")
	}
}
