// Package load turns Go packages into analysis.Units without
// golang.org/x/tools/go/packages: module packages are enumerated with
// `go list -export -deps -json`, parsed from source, and type-checked
// with dependencies imported from the build cache's export data — the
// same artifacts the compiler itself consumes, so loading needs no
// network and no pre-installed archives.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"nab/tools/nabvet/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// Package is one loaded, type-checked target package.
type Package struct {
	Path string
	Unit *analysis.Unit
}

// Packages runs `go list -export -deps -json` in dir and loads every
// package matching patterns (dependencies feed the importer only).
// Pattern matching and build constraints are entirely the go command's;
// _test.go files are not loaded — the repo's analyzers are
// production-path checks (and under `go vet -vettool` they skip test
// files by name for the same reason).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		if t.Incomplete || len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		unit, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Unit: unit})
	}
	return pkgs, nil
}

// ExportImporter returns a gc-compiled-export-data importer: resolve maps
// a package path to its export file (from `go list -export` or a
// vet.cfg's PackageFile table).
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses files and type-checks them as package path, resolving
// imports through imp.
func Check(fset *token.FileSet, path string, files []string, imp types.Importer) (*analysis.Unit, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Unit{Fset: fset, Files: syntax, Pkg: pkg, Info: info}, nil
}

// Testdata loads an analysistest-style source tree: root is a directory
// whose src/ subdirectory holds packages by import path (src/a/b is
// importable as "a/b"), so fixtures can impersonate the real repo paths
// an analyzer scopes to. Imports resolve first inside the tree, then to
// the standard library via export data. Every package in the tree is
// returned, in dependency order.
func Testdata(root string) ([]*Package, error) {
	src := filepath.Join(root, "src")
	dirs := map[string][]string{} // import path -> files
	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(src, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		dirs[ip] = append(dirs[ip], path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("walking %s: %w", src, err)
	}
	for _, files := range dirs {
		sort.Strings(files)
	}

	// Collect every import named by the tree that the tree itself does
	// not provide; those must come from the standard library.
	fset := token.NewFileSet()
	parsed := map[string][]*ast.File{}
	stdNeeded := map[string]bool{}
	imports := map[string][]string{}
	for ip, files := range dirs {
		for _, name := range files {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[ip] = append(parsed[ip], f)
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					return nil, err
				}
				imports[ip] = append(imports[ip], dep)
				if _, intree := dirs[dep]; !intree {
					stdNeeded[dep] = true
				}
			}
		}
	}
	exports, err := stdExports(stdNeeded)
	if err != nil {
		return nil, err
	}
	stdImp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	// Type-check in dependency order, letting in-tree imports resolve to
	// the already-checked packages.
	checked := map[string]*analysis.Unit{}
	var order []string
	var visit func(ip string, stack []string) error
	visit = func(ip string, stack []string) error {
		if _, done := checked[ip]; done {
			return nil
		}
		for _, s := range stack {
			if s == ip {
				return fmt.Errorf("import cycle through %q", ip)
			}
		}
		for _, dep := range imports[ip] {
			if _, intree := dirs[dep]; intree {
				if err := visit(dep, append(stack, ip)); err != nil {
					return err
				}
			}
		}
		imp := importerFunc(func(path string) (*types.Package, error) {
			if u, ok := checked[path]; ok {
				return u.Pkg, nil
			}
			return stdImp.Import(path)
		})
		unit, err := Check(fset, ip, dirs[ip], imp)
		if err != nil {
			return fmt.Errorf("testdata package %s: %w", ip, err)
		}
		checked[ip] = unit
		order = append(order, ip)
		return nil
	}
	var ips []string
	for ip := range dirs {
		ips = append(ips, ip)
	}
	sort.Strings(ips)
	for _, ip := range ips {
		if err := visit(ip, nil); err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, ip := range order {
		pkgs = append(pkgs, &Package{Path: ip, Unit: checked[ip]})
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExports resolves standard-library import paths to export-data files
// with one go list invocation.
func stdExports(paths map[string]bool) (map[string]string, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	cmd := exec.Command("go", append(args, sorted...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(sorted, " "), err, stderr.Bytes())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
