// Package analysis is nabvet's analyzer framework: a deliberately small,
// dependency-free mirror of golang.org/x/tools/go/analysis (which this
// repo does not vendor), just large enough to host the five project
// analyzers in both driver modes — the standalone CLI and the `go vet
// -vettool` unitchecker protocol.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. There is no cross-package fact store: the repo's analyzers
// are written against stable stdlib signatures plus in-package fixpoints,
// which keeps every package's analysis independent and cacheable by the
// go command.
//
// # Suppression
//
// A finding can be silenced only with a justification, on the offending
// line or the line above it:
//
//	l.f.Sync() //nab:ignore lockedblock -- rotation must seal the old segment before appends resume
//
// The comment names the analyzers being suppressed (comma-separated) and
// the text after “--” is the mandatory reason; an ignore directive with
// no reason is itself reported, so silent suppressions cannot accrete.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //nab:ignore
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `nabvet -help`.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records one finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  message,
	})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The repo's invariants are production-path properties; analyzers use
// this to stay out of test scaffolding, which deliberately sleeps, races
// and corrupts.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Filename returns the base filename containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ignoreDirective is one parsed //nab:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Pos
	used      bool
}

const ignorePrefix = "//nab:ignore"

// parseIgnores collects the //nab:ignore directives of every file,
// keyed by filename.
func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]*ignoreDirective {
	out := map[string][]*ignoreDirective{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				dir := &ignoreDirective{analyzers: map[string]bool{}, pos: c.Pos()}
				if i := strings.Index(rest, "--"); i >= 0 {
					dir.reason = strings.TrimSpace(rest[i+2:])
					rest = rest[:i]
				}
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						dir.analyzers[name] = true
					}
				}
				p := fset.Position(c.Pos())
				dir.line = p.Line
				out[p.Filename] = append(out[p.Filename], dir)
			}
		}
	}
	return out
}

// Unit is the per-package input to Run: parsed syntax plus type
// information, however it was produced (source loader or vet.cfg).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies analyzers to one package and returns the surviving
// diagnostics in file/line order: suppressed findings are dropped,
// directives with no justification or naming no known analyzer are
// themselves reported.
func Run(unit *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := parseIgnores(unit.Fset, unit.Files)
	known := map[string]bool{}
	var diags []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      unit.Fset,
			Files:     unit.Files,
			Pkg:       unit.Pkg,
			TypesInfo: unit.Info,
		}
		pass.report = func(d Diagnostic) {
			if dir := match(ignores[d.Pos.Filename], d.Pos.Line, d.Analyzer); dir != nil {
				dir.used = true
				if dir.reason == "" {
					diags = append(diags, Diagnostic{
						Analyzer: d.Analyzer,
						Pos:      unit.Fset.Position(dir.pos),
						Message:  "//nab:ignore without a justification (append “-- reason”)",
					})
				}
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", unit.Pkg.Path(), a.Name, err)
		}
	}
	// An ignore naming only unknown analyzers is a typo that would
	// silently do nothing; with a partial analyzer set (driver flags)
	// the directive may legitimately target a disabled check, so only
	// unused directives whose names are all unknown are flagged.
	for file, dirs := range ignores {
		_ = file
		for _, dir := range dirs {
			if dir.used {
				continue
			}
			unknown := len(dir.analyzers) > 0
			for name := range dir.analyzers {
				if known[name] {
					unknown = false
				}
			}
			if unknown {
				diags = append(diags, Diagnostic{
					Analyzer: "nabvet",
					Pos:      unit.Fset.Position(dir.pos),
					Message:  fmt.Sprintf("//nab:ignore names no known analyzer (have %s)", names(dir.analyzers)),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

func match(dirs []*ignoreDirective, line int, analyzer string) *ignoreDirective {
	for _, dir := range dirs {
		if (dir.line == line || dir.line == line-1) && dir.analyzers[analyzer] {
			return dir
		}
	}
	return nil
}

func names(set map[string]bool) string {
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
